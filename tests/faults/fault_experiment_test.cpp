// Fault injection through the full experiment pipeline: determinism of
// the exported artifacts under parallel execution, and the availability
// headline (replication shortens the post-rejoin re-warm).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/obs_export.h"
#include "core/parallel_runner.h"

namespace prord::core {
namespace {

ExperimentConfig faulty_config(PolicyKind kind, std::uint64_t seed = 5) {
  ExperimentConfig config;
  config.workload = trace::synthetic_spec(seed);
  config.workload.site.sections = 3;
  config.workload.site.pages_per_section = 20;
  config.workload.gen.target_requests = 2500;
  config.workload.gen.duration_sec = 250;
  config.policy = kind;
  config.faults.plan = "crash@60s:srv1,restart@120s:srv1";
  config.faults.heartbeat_interval = sim::sec(2.0);
  config.faults.max_retries = 3;
  return config;
}

TEST(FaultExperiment, ExportsAreByteIdenticalAcrossJobCounts) {
  std::vector<ExperimentCell> cells;
  for (const auto kind : {PolicyKind::kWrr, PolicyKind::kLard,
                          PolicyKind::kPrord}) {
    ExperimentCell cell;
    cell.label = policy_label(kind);
    cell.config = faulty_config(kind, /*seed=*/11);
    cell.config.workload.gen.target_requests = 1500;
    cell.config.workload.gen.duration_sec = 150;
    cell.config.faults.plan = "crash@40s:srv1,restart@80s:srv1";
    cell.config.obs.metrics = true;
    cell.config.obs.trace_sample_rate = 0.05;
    cells.push_back(std::move(cell));
  }
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions threaded;
  threaded.jobs = 4;
  const auto a = run_cells(cells, serial);
  const auto b = run_cells(cells, threaded);

  const auto prom = render_metrics(a, /*csv=*/false);
  EXPECT_EQ(prom, render_metrics(b, /*csv=*/false));
  EXPECT_EQ(render_metrics(a, /*csv=*/true), render_metrics(b, /*csv=*/true));
  EXPECT_EQ(render_trace_jsonl(a), render_trace_jsonl(b));

  // The fault surface made it into the export, with the plan's edges.
  EXPECT_NE(prom.find("prord_fault_crashes_total"), std::string::npos);
  EXPECT_NE(prom.find("prord_fault_down_detections_total"), std::string::npos);
  for (const auto& cell : a) {
    EXPECT_EQ(cell.primary().fault_stats.crashes, 1u) << cell.label;
    EXPECT_EQ(cell.primary().fault_stats.restarts, 1u) << cell.label;
  }
}

TEST(FaultExperiment, SampledModelRunsAreDeterministic) {
  ExperimentConfig config = faulty_config(PolicyKind::kLard, /*seed=*/3);
  config.faults.plan.clear();
  config.faults.use_model = true;
  config.faults.model.mtbf_sec = 80.0;
  config.faults.model.mttr_sec = 10.0;
  config.faults.model.seed = 17;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_GT(a.fault_stats.crashes, 0u);
  EXPECT_EQ(a.fault_stats.crashes, b.fault_stats.crashes);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.metrics.failed, b.metrics.failed);
  EXPECT_EQ(a.metrics.last_completion, b.metrics.last_completion);
  EXPECT_EQ(a.metrics.completed + a.metrics.failed, a.num_requests);
}

TEST(FaultExperiment, ReplicationShortensPostRejoinRewarm) {
  const auto with = run_experiment(faulty_config(PolicyKind::kPrord));
  const auto without =
      run_experiment(faulty_config(PolicyKind::kPrordNoReplication));

  // Algorithm 3's push round ran only for the replicating variant.
  EXPECT_GT(with.rewarm_pushes, 0u);
  EXPECT_EQ(without.rewarm_pushes, 0u);

  ASSERT_EQ(with.rewarms.size(), 1u);
  ASSERT_EQ(without.rewarms.size(), 1u);
  // The replication push refills the rejoined cache over the interconnect,
  // so PRORD must reach the re-warm target before the run ends — and
  // strictly sooner than the ablation's demand-miss refill through the
  // disk, if that finishes at all.
  ASSERT_TRUE(with.rewarms[0].completed());
  if (without.rewarms[0].completed())
    EXPECT_LT(with.rewarms[0].duration(), without.rewarms[0].duration());

  // Conservation holds for both variants under the crash-and-rejoin.
  EXPECT_EQ(with.metrics.completed + with.metrics.failed, with.num_requests);
  EXPECT_EQ(without.metrics.completed + without.metrics.failed,
            without.num_requests);
}

}  // namespace
}  // namespace prord::core
