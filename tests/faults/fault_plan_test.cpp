// FaultPlan grammar, validation and sampling.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_plan.h"

namespace prord::faults {
namespace {

TEST(FaultPlanParse, CrashRestartPair) {
  const auto plan = parse_fault_plan("crash@30s:srv2,restart@45s:srv2");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].at, sim::sec(30.0));
  EXPECT_EQ(plan.events[0].server, 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[1].at, sim::sec(45.0));
  EXPECT_EQ(plan.events[1].kind, FaultKind::kRestart);
}

TEST(FaultPlanParse, TimeUnitsAndBareServerIds) {
  const auto plan = parse_fault_plan("crash@250ms:0,restart@500000us:0");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].at, sim::msec(250.0));
  EXPECT_EQ(plan.events[1].at, sim::SimTime{500000});
  // Default unit is seconds.
  EXPECT_EQ(parse_fault_plan("crash@2:1").events[0].at, sim::sec(2.0));
}

TEST(FaultPlanParse, SlowExpandsToWindow) {
  const auto plan = parse_fault_plan("slow@10s:srv0:4x10s");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSlowStart);
  EXPECT_EQ(plan.events[0].at, sim::sec(10.0));
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 4.0);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kSlowEnd);
  EXPECT_EQ(plan.events[1].at, sim::sec(20.0));
}

TEST(FaultPlanParse, FlapExpandsToCycles) {
  const auto plan = parse_fault_plan("flap@5s:srv1:3x2s/5s");
  ASSERT_EQ(plan.events.size(), 6u);
  const double crash_at[] = {5, 12, 19};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.events[2 * i].kind, FaultKind::kCrash);
    EXPECT_EQ(plan.events[2 * i].at, sim::sec(crash_at[i]));
    EXPECT_EQ(plan.events[2 * i + 1].kind, FaultKind::kRestart);
    EXPECT_EQ(plan.events[2 * i + 1].at, sim::sec(crash_at[i] + 2));
    EXPECT_EQ(plan.events[2 * i].server, 1u);
  }
}

TEST(FaultPlanParse, NormalizeSortsOutOfOrderSpecs) {
  const auto plan = parse_fault_plan("restart@45s:srv2,crash@30s:srv2");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kRestart);
}

TEST(FaultPlanParse, TrailingCrashIsLegal) {
  EXPECT_NO_THROW(parse_fault_plan("crash@10s:0"));
}

TEST(FaultPlanParse, RejectsMalformedAndInvalidPlans) {
  // Grammar errors.
  EXPECT_THROW(parse_fault_plan("melt@5s:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@5s"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@5s:0:0.5x10s"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("flap@5s:0:0x1s/1s"), std::invalid_argument);
  // Per-server sanity.
  EXPECT_THROW(parse_fault_plan("crash@10s:0,crash@20s:0"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("restart@10s:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@10s:0:2x20s,slow@15s:0:2x2s"),
               std::invalid_argument);
}

TEST(FaultPlan, ScaledCompressesAndClampsToOneMicrosecond) {
  const auto plan = parse_fault_plan("crash@10s:0,restart@20s:0");
  const auto half = plan.scaled(2.0);
  EXPECT_EQ(half.events[0].at, sim::sec(5.0));
  EXPECT_EQ(half.events[1].at, sim::sec(10.0));
  // Extreme compression collapses onto the 1 us floor but keeps the
  // canonical (time, server, kind) order, so crash still precedes restart.
  const auto tiny = plan.scaled(1e9);
  EXPECT_EQ(tiny.events[0].at, sim::SimTime{1});
  EXPECT_EQ(tiny.events[1].at, sim::SimTime{1});
  EXPECT_EQ(tiny.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(tiny.events[1].kind, FaultKind::kRestart);
}

TEST(FaultPlan, CrashRestartSpecsRoundTripThroughToString) {
  const auto plan = parse_fault_plan("crash@30s:srv2,restart@45s:srv2,flap@5s:srv1:2x2s/5s");
  const auto reparsed = parse_fault_plan(plan.to_string());
  EXPECT_EQ(reparsed.events, plan.events);
}

TEST(FaultPlanSample, DeterministicForFixedSeed) {
  FaultModel model;
  model.mtbf_sec = 40.0;
  model.mttr_sec = 5.0;
  model.seed = 7;
  const auto a = sample_fault_plan(model, 4, sim::sec(600.0));
  const auto b = sample_fault_plan(model, 4, sim::sec(600.0));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.events, b.events);
}

TEST(FaultPlanSample, PerServerStreamsSurviveClusterGrowth) {
  FaultModel model;
  model.mtbf_sec = 40.0;
  model.mttr_sec = 5.0;
  model.seed = 7;
  const auto small = sample_fault_plan(model, 4, sim::sec(600.0));
  const auto large = sample_fault_plan(model, 8, sim::sec(600.0));
  // Adding servers must not perturb the existing per-server streams:
  // filtering the 8-server plan down to servers 0..3 recovers the
  // 4-server plan exactly (the sort key is identical on both sides).
  std::vector<FaultEvent> filtered;
  for (const auto& e : large.events)
    if (e.server < 4) filtered.push_back(e);
  EXPECT_EQ(filtered, small.events);
}

TEST(FaultPlanSample, RejectsNonPositiveRates) {
  FaultModel model;
  model.mtbf_sec = 0.0;
  EXPECT_THROW(sample_fault_plan(model, 2, sim::sec(100.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace prord::faults
