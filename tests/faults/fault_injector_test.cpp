// FaultInjector, HealthMonitor and RecoveryModel event-level behaviour.
//
// These tests drive a bare cluster (no workload) with millisecond-scale
// plans so every detection and accounting edge lands on a known heartbeat
// tick: heartbeats fire at 10, 20, 30 ms, ..., so a crash at 13 ms is
// detected at 20 ms with exactly 7 ms of latency.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "faults/fault_injector.h"
#include "simcore/simulator.h"

namespace prord::faults {
namespace {

constexpr std::uint64_t kDemandBytes = 1 << 20;
constexpr std::uint64_t kPinnedBytes = 1 << 18;

struct Rig {
  sim::Simulator sim;
  cluster::ClusterParams params;
  std::unique_ptr<cluster::Cluster> cl;

  explicit Rig(std::uint32_t backends = 3) {
    params.num_backends = backends;
    cl = std::make_unique<cluster::Cluster>(sim, params, kDemandBytes,
                                            kPinnedBytes);
  }

  FaultSessionOptions options(double rewarm_fraction = 0.0) {
    FaultSessionOptions o;
    o.heartbeat_interval = sim::msec(10.0);
    o.rewarm_target_fraction = rewarm_fraction;
    return o;
  }
};

TEST(FaultInjector, AppliesCrashAndRestartAtPlanTimes) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@10ms:0,restart@30ms:0"),
                    rig.options());
  inj.start();
  rig.sim.schedule_at(sim::msec(15.0),
                      [&] { EXPECT_FALSE(rig.cl->backend(0).alive()); });
  rig.sim.schedule_at(sim::msec(35.0),
                      [&] { EXPECT_TRUE(rig.cl->backend(0).alive()); });
  rig.sim.schedule_at(sim::msec(50.0), [&] { inj.finish(); });
  rig.sim.run();
  EXPECT_EQ(inj.stats().crashes, 1u);
  EXPECT_EQ(inj.stats().restarts, 1u);
}

TEST(FaultInjector, DetectionLatencyIsGapToNextHeartbeat) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@13ms:0,restart@33ms:0"),
                    rig.options());
  inj.start();
  rig.sim.schedule_at(sim::msec(50.0), [&] { inj.finish(); });
  rig.sim.run();

  const auto& stats = inj.stats();
  EXPECT_EQ(stats.down_detections, 1u);
  EXPECT_EQ(stats.up_detections, 1u);
  // Crash at 13 ms, first probe after it at 20 ms.
  EXPECT_DOUBLE_EQ(stats.detection_latency_us.mean(), 7000.0);
  // Belief window: down-detect at 20 ms, up-detect at 40 ms.
  EXPECT_EQ(stats.believed_unavailable, sim::msec(20.0));
  // Ground truth: dead from 13 ms to 33 ms.
  EXPECT_EQ(stats.actual_unavailable, sim::msec(20.0));
}

TEST(FaultInjector, BeliefLagsGroundTruthOnBothEdges) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@13ms:0,restart@33ms:0"),
                    rig.options());
  inj.start();
  // Dead but not yet detected: routing still believes the server is up.
  rig.sim.schedule_at(sim::msec(15.0), [&] {
    EXPECT_FALSE(rig.cl->backend(0).alive());
    EXPECT_TRUE(rig.cl->backend(0).available());
    EXPECT_TRUE(inj.monitor().believed_up(0));
  });
  // Detected dead.
  rig.sim.schedule_at(sim::msec(25.0), [&] {
    EXPECT_FALSE(rig.cl->backend(0).available());
    EXPECT_FALSE(inj.monitor().believed_up(0));
  });
  // Restarted but the rejoin is not yet detected.
  rig.sim.schedule_at(sim::msec(35.0), [&] {
    EXPECT_TRUE(rig.cl->backend(0).alive());
    EXPECT_FALSE(rig.cl->backend(0).available());
  });
  // Rejoin detected.
  rig.sim.schedule_at(sim::msec(45.0), [&] {
    EXPECT_TRUE(rig.cl->backend(0).available());
    inj.finish();
  });
  rig.sim.run();
}

TEST(FaultInjector, HooksFireAtDetectionTime) {
  Rig rig;
  std::vector<std::pair<char, sim::SimTime>> log;
  FaultHooks hooks;
  hooks.server_down = [&](cluster::ServerId s) {
    EXPECT_EQ(s, 0u);
    log.emplace_back('d', rig.sim.now());
  };
  hooks.server_up = [&](cluster::ServerId s) {
    EXPECT_EQ(s, 0u);
    log.emplace_back('u', rig.sim.now());
  };
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@13ms:0,restart@33ms:0"),
                    rig.options(), std::move(hooks));
  inj.start();
  rig.sim.schedule_at(sim::msec(50.0), [&] { inj.finish(); });
  rig.sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<char, sim::SimTime>{'d', sim::msec(20.0)}));
  EXPECT_EQ(log[1], (std::pair<char, sim::SimTime>{'u', sim::msec(40.0)}));
}

TEST(FaultInjector, RewarmCompletesWhenCacheRefills) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@10ms:0,restart@25ms:0"),
                    rig.options(/*rewarm_fraction=*/0.2));
  inj.start();
  // Refill past the 20% target (0.2 * (1 MiB + 256 KiB) = 262 KiB)
  // between the 30 ms and 40 ms heartbeat polls.
  rig.sim.schedule_at(sim::msec(31.0), [&] {
    rig.cl->backend(0).cache().insert_demand(trace::FileId{1}, 300'000);
  });
  rig.sim.schedule_at(sim::msec(50.0), [&] { inj.finish(); });
  rig.sim.run();

  ASSERT_EQ(inj.rewarms().size(), 1u);
  const auto& rec = inj.rewarms()[0];
  EXPECT_EQ(rec.server, 0u);
  EXPECT_EQ(rec.rejoin_at, sim::msec(25.0));
  ASSERT_TRUE(rec.completed());
  EXPECT_EQ(rec.warmed_at, sim::msec(40.0));
  EXPECT_EQ(rec.duration(), sim::msec(15.0));
  EXPECT_EQ(inj.stats().rewarms_completed, 1u);
  EXPECT_EQ(inj.stats().rewarms_unfinished, 0u);
  EXPECT_DOUBLE_EQ(inj.stats().rewarm_time_us.mean(), 15000.0);
}

TEST(FaultInjector, RewarmLeftOpenIsCountedUnfinished) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("crash@10ms:0,restart@25ms:0"),
                    rig.options(/*rewarm_fraction=*/0.2));
  inj.start();
  rig.sim.schedule_at(sim::msec(50.0), [&] { inj.finish(); });
  rig.sim.run();
  ASSERT_EQ(inj.rewarms().size(), 1u);
  EXPECT_FALSE(inj.rewarms()[0].completed());
  EXPECT_EQ(inj.rewarms()[0].duration(), sim::SimTime{-1});
  EXPECT_EQ(inj.stats().rewarms_completed, 0u);
  EXPECT_EQ(inj.stats().rewarms_unfinished, 1u);
}

TEST(FaultInjector, SlowdownWindowAppliesAndClears) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl,
                    parse_fault_plan("slow@10ms:1:4x20ms"), rig.options());
  inj.start();
  rig.sim.schedule_at(sim::msec(15.0), [&] {
    EXPECT_DOUBLE_EQ(rig.cl->backend(1).slowdown(), 4.0);
  });
  rig.sim.schedule_at(sim::msec(35.0), [&] {
    EXPECT_DOUBLE_EQ(rig.cl->backend(1).slowdown(), 1.0);
    inj.finish();
  });
  rig.sim.run();
  EXPECT_EQ(inj.stats().slowdowns, 1u);
}

TEST(FaultInjector, FinishCancelsPendingEventsAndIsIdempotent) {
  Rig rig;
  FaultInjector inj(rig.sim, *rig.cl, parse_fault_plan("crash@100ms:0"),
                    rig.options());
  inj.start();
  rig.sim.schedule_at(sim::msec(5.0), [&] {
    inj.finish();
    inj.finish();
  });
  rig.sim.run();
  EXPECT_TRUE(rig.cl->backend(0).alive());
  EXPECT_EQ(inj.stats().crashes, 0u);
  EXPECT_EQ(rig.sim.now(), sim::msec(5.0));  // nothing kept the queue alive
}

TEST(FaultInjector, EventsForAbsentServersAreIgnored) {
  Rig rig(/*backends=*/3);
  FaultInjector inj(rig.sim, *rig.cl, parse_fault_plan("crash@1ms:srv7"),
                    rig.options());
  inj.start();
  rig.sim.schedule_at(sim::msec(5.0), [&] { inj.finish(); });
  rig.sim.run();
  EXPECT_EQ(inj.stats().crashes, 0u);
  for (cluster::ServerId s = 0; s < rig.cl->size(); ++s)
    EXPECT_TRUE(rig.cl->backend(s).alive());
}

}  // namespace
}  // namespace prord::faults
