// Regression anchors for the paper's qualitative results.
//
// These tests run the real evaluation configurations (full cs-dept trace,
// warm caches) and assert the *shapes* EXPERIMENTS.md documents, so any
// future change that silently breaks a reproduced figure fails CI. They
// are the most expensive tests in the suite (~10 s total) by design.
#include <gtest/gtest.h>

#include <map>

#include "core/experiment.h"

namespace prord::core {
namespace {

class PaperShapes : public ::testing::Test {
 protected:
  static const ExperimentResult& result(PolicyKind kind) {
    static std::map<PolicyKind, ExperimentResult> cache;
    const auto it = cache.find(kind);
    if (it != cache.end()) return it->second;
    ExperimentConfig config;
    config.workload = trace::cs_dept_spec();
    config.policy = kind;
    return cache.emplace(kind, run_experiment(config)).first->second;
  }
};

TEST_F(PaperShapes, Fig6DispatchCollapse) {
  EXPECT_DOUBLE_EQ(result(PolicyKind::kLard).dispatch_frequency(), 1.0);
  EXPECT_LT(result(PolicyKind::kPrord).dispatch_frequency(), 0.25);
}

TEST_F(PaperShapes, Fig7ThroughputOrdering) {
  const double wrr = result(PolicyKind::kWrr).throughput_rps();
  const double lard = result(PolicyKind::kLard).throughput_rps();
  const double prord = result(PolicyKind::kPrord).throughput_rps();
  EXPECT_GT(lard, wrr);
  EXPECT_GT(prord, lard * 1.10);  // the paper's 10-45% band, lower edge
  EXPECT_LT(prord, lard * 2.00);  // and not absurdly beyond it
}

TEST_F(PaperShapes, Fig9AblationOrdering) {
  const double lard = result(PolicyKind::kLard).throughput_rps();
  const double bundle = result(PolicyKind::kLardBundle).throughput_rps();
  const double dist = result(PolicyKind::kLardDistribution).throughput_rps();
  const double nav = result(PolicyKind::kLardPrefetchNav).throughput_rps();
  const double prord = result(PolicyKind::kPrord).throughput_rps();
  // Every enhancement at least matches LARD...
  EXPECT_GE(bundle, lard * 0.98);
  EXPECT_GE(dist, lard * 0.98);
  EXPECT_GE(nav, lard);
  // ...prefetch-nav is the strongest single one, PRORD best overall.
  EXPECT_GE(nav, bundle * 0.95);
  EXPECT_GE(nav, dist);
  EXPECT_GE(prord, nav * 0.95);
  EXPECT_GT(prord, lard * 1.10);
}

TEST_F(PaperShapes, HitRateClaim) {
  // "~30% of the site in memory yields ~85% hit rates with LARD and a
  // ~10% boost with our scheme."
  const double lard = result(PolicyKind::kLard).hit_rate();
  const double prord = result(PolicyKind::kPrord).hit_rate();
  EXPECT_GT(lard, 0.70);
  EXPECT_LT(lard, 0.92);
  EXPECT_GT(prord - lard, 0.04);
}

TEST_F(PaperShapes, ResponseTimeOrdering) {
  EXPECT_LT(result(PolicyKind::kPrord).metrics.mean_response_ms(),
            result(PolicyKind::kLard).metrics.mean_response_ms());
}

}  // namespace
}  // namespace prord::core
