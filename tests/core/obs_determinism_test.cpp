// Determinism contract of the observability exports: the rendered metric,
// time-series, and trace artifacts of a grid are byte-identical whether
// the (cell, replication) tasks ran serially or across worker threads —
// the satellite guarantee that makes `--metrics-out` / `--trace-out`
// diffable in CI (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "core/obs_export.h"
#include "core/parallel_runner.h"

namespace prord::core {
namespace {

trace::WorkloadSpec small_spec() {
  auto spec = trace::synthetic_spec();
  spec.site.sections = 3;
  spec.site.pages_per_section = 20;
  spec.gen.target_requests = 2000;
  spec.gen.duration_sec = 300;
  return spec;
}

/// A small Fig. 8 cell pair (LARD vs PRORD at one memory point) with every
/// observability collector enabled.
std::vector<ExperimentCell> obs_grid() {
  std::vector<ExperimentCell> cells;
  for (const auto kind : {PolicyKind::kLard, PolicyKind::kPrord}) {
    ExperimentConfig config;
    config.workload = small_spec();
    config.policy = kind;
    config.memory_fraction = 0.20;
    config.obs.metrics = true;
    config.obs.sample_interval = sim::msec(200);
    config.obs.trace_sample_rate = 1.0;
    cells.push_back(ExperimentCell{policy_label(kind), config});
  }
  return cells;
}

struct Artifacts {
  std::string prometheus;
  std::string csv;
  std::string series;
  std::string trace;
};

Artifacts render_all(const std::vector<CellResult>& results) {
  return Artifacts{render_metrics(results, /*csv=*/false),
                   render_metrics(results, /*csv=*/true),
                   render_series_csv(results), render_trace_jsonl(results)};
}

TEST(ObsDeterminism, ExportsAreByteIdenticalAcrossJobCounts) {
  RunnerOptions options;
  options.replications = 2;
  const auto cells = obs_grid();

  options.jobs = 1;
  const Artifacts serial = render_all(run_cells(cells, options));
  ASSERT_FALSE(serial.prometheus.empty());
  ASSERT_FALSE(serial.trace.empty());

  options.jobs = 4;
  const Artifacts parallel = render_all(run_cells(cells, options));
  EXPECT_EQ(serial.prometheus, parallel.prometheus);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.series, parallel.series);
  EXPECT_EQ(serial.trace, parallel.trace);
}

TEST(ObsDeterminism, BatchedMetricsExportIdenticalBytes) {
  // The player's counters flow through obs::MetricBatch epoch flushes by
  // default and through the registry's per-request path when batching is
  // off (bench_perf's baseline). The exported artifacts must be
  // byte-identical between the two modes at any job count — batching is a
  // cost optimization, never an observable one. This also pins the
  // end-of-run tail flush: counts accumulated after the last epoch flush
  // would go missing from the batched export and break the comparison.
  RunnerOptions options;
  options.replications = 2;
  const auto batched_cells = obs_grid();
  auto through_cells = obs_grid();
  for (auto& cell : through_cells) cell.config.obs.batch_metrics = false;

  options.jobs = 1;
  const Artifacts batched = render_all(run_cells(batched_cells, options));
  const Artifacts through = render_all(run_cells(through_cells, options));
  ASSERT_FALSE(batched.prometheus.empty());
  EXPECT_EQ(batched.prometheus, through.prometheus);
  EXPECT_EQ(batched.csv, through.csv);
  EXPECT_EQ(batched.series, through.series);
  EXPECT_EQ(batched.trace, through.trace);

  options.jobs = 4;
  const Artifacts through4 = render_all(run_cells(through_cells, options));
  EXPECT_EQ(batched.prometheus, through4.prometheus);
  EXPECT_EQ(batched.csv, through4.csv);
}

TEST(ObsDeterminism, CollectedCatalogueSpansEverySubsystem) {
  RunnerOptions options;
  options.jobs = 2;
  const auto results = run_cells(obs_grid(), options);
  ASSERT_EQ(results.size(), 2u);

  // The PRORD cell's registry carries the full catalogue: >= 30 distinct
  // names across dispatcher, back-end, cache, prefetch, and replication.
  const auto& reg = results[1].primary().registry;
  EXPECT_GE(reg.distinct_names(), 30u);
  for (const char* name :
       {"prord_requests_completed_total", "prord_dispatcher_contacts_total",
        "prord_backend_requests_served_total", "prord_cache_hits_total",
        "prord_prefetch_issued_total", "prord_replication_rounds_total",
        "prord_response_time_us", "prord_bundle_forwards_total"}) {
    bool found = false;
    for (const auto& [key, m] : reg.series())
      if (m.name == name) {
        found = true;
        break;
      }
    EXPECT_TRUE(found) << "missing metric: " << name;
  }

  // Full-rate tracing yields exactly one span per evaluation request,
  // recorded in completion order, with the per-request timeline ordered
  // arrival <= backend <= completion.
  const auto& prord = results[1].primary();
  EXPECT_EQ(prord.spans.size(), prord.num_requests);
  std::unordered_set<std::uint64_t> seen;
  sim::SimTime prev_done = 0;
  for (const auto& s : prord.spans) {
    EXPECT_TRUE(seen.insert(s.request).second)
        << "request " << s.request << " traced twice";
    EXPECT_GE(s.completion, prev_done);
    prev_done = s.completion;
    EXPECT_LE(s.arrival, s.backend_start);
    EXPECT_LE(s.backend_start, s.completion);
  }

  // Sampling produced per-backend gauge series with monotone timestamps.
  EXPECT_FALSE(prord.series.empty());
  for (const auto& s : prord.series) {
    sim::SimTime prev = -1;
    for (const auto& pt : s.points) {
      EXPECT_GT(pt.at, prev);
      prev = pt.at;
    }
  }
}

TEST(ObsDeterminism, DisabledObsLeavesArtifactsEmpty) {
  // The obs hooks must be pay-for-what-you-use: a run without ObsOptions
  // collects nothing (and, by the invariant tests, perturbs nothing).
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kPrord;
  const ExperimentResult r = run_experiment(config);
  EXPECT_TRUE(r.registry.empty());
  EXPECT_TRUE(r.series.empty());
  EXPECT_TRUE(r.spans.empty());
}

}  // namespace
}  // namespace prord::core
