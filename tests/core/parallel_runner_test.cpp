// Determinism contract of the parallel experiment engine: a serial run and
// a parallel run of the same grid produce byte-identical tables regardless
// of thread count or scheduling order.
#include "core/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace prord::core {
namespace {

trace::WorkloadSpec small_spec() {
  auto spec = trace::synthetic_spec();
  spec.site.sections = 3;
  spec.site.pages_per_section = 20;
  spec.gen.target_requests = 2000;
  spec.gen.duration_sec = 300;
  return spec;
}

std::vector<ExperimentCell> small_grid() {
  std::vector<ExperimentCell> cells;
  for (const auto kind : {PolicyKind::kWrr, PolicyKind::kLard,
                          PolicyKind::kPrord}) {
    ExperimentConfig config;
    config.workload = small_spec();
    config.policy = kind;
    cells.push_back(ExperimentCell{policy_label(kind), config});
  }
  return cells;
}

std::string render(const std::vector<CellResult>& results) {
  std::ostringstream os;
  summary_table(results).print(os);
  return os.str();
}

TEST(ParallelRunner, SerialAndParallelTablesAreByteIdentical) {
  RunnerOptions options;
  options.replications = 2;
  const auto cells = small_grid();

  options.jobs = 1;
  const std::string serial = render(run_cells(cells, options));
  for (const unsigned jobs : {2u, 8u}) {
    options.jobs = jobs;
    EXPECT_EQ(serial, render(run_cells(cells, options)))
        << "table diverged at jobs=" << jobs;
  }
}

TEST(ParallelRunner, ReplicationMetricsAreBitEqualAcrossJobCounts) {
  // Stronger than the rendered table: every raw metric of every
  // replication must match bit-for-bit between job counts.
  RunnerOptions options;
  options.replications = 3;
  const auto cells = small_grid();

  options.jobs = 1;
  const auto serial = run_cells(cells, options);
  options.jobs = 8;
  const auto parallel = run_cells(cells, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].replications.size(), parallel[c].replications.size());
    for (std::size_t r = 0; r < serial[c].replications.size(); ++r) {
      const auto& a = serial[c].replications[r];
      const auto& b = parallel[c].replications[r];
      EXPECT_EQ(a.metrics.completed, b.metrics.completed);
      EXPECT_EQ(a.metrics.dispatches, b.metrics.dispatches);
      EXPECT_EQ(a.metrics.disk_reads, b.metrics.disk_reads);
      EXPECT_DOUBLE_EQ(a.throughput_rps(), b.throughput_rps());
      EXPECT_DOUBLE_EQ(a.hit_rate(), b.hit_rate());
      EXPECT_DOUBLE_EQ(a.metrics.mean_response_ms(),
                       b.metrics.mean_response_ms());
    }
  }
}

TEST(ParallelRunner, ReplicationZeroKeepsConfiguredSeed) {
  // With the default base_seed, replication 0 is the verbatim config run,
  // so single-replication engine output equals a direct run_experiment.
  const auto cells = small_grid();
  RunnerOptions options;
  options.jobs = 2;
  const auto results = run_cells(cells, options);
  const auto direct = run_experiment(cells.front().config);
  EXPECT_DOUBLE_EQ(results.front().primary().throughput_rps(),
                   direct.throughput_rps());
  EXPECT_EQ(results.front().primary().metrics.dispatches,
            direct.metrics.dispatches);
}

TEST(ParallelRunner, ReplicationsUseDistinctSeeds) {
  std::vector<ExperimentCell> cells(1);
  cells[0].label = "cell";
  cells[0].config.workload = small_spec();
  cells[0].config.policy = PolicyKind::kLard;
  RunnerOptions options;
  options.jobs = 2;
  options.replications = 3;
  const auto results = run_cells(cells, options);
  const auto& reps = results.front().replications;
  // Different trace seeds make different simulations; identical numbers
  // would mean the derivation collapsed.
  EXPECT_NE(reps[0].metrics.response_time_us.mean(),
            reps[1].metrics.response_time_us.mean());
  EXPECT_NE(reps[1].metrics.response_time_us.mean(),
            reps[2].metrics.response_time_us.mean());
}

TEST(SeedDerivation, NoCollisionsAcrossGrid) {
  std::unordered_set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const std::uint64_t base : {0ULL, 1ULL, 2006ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
      for (std::uint64_t rep = 0; rep < 16; ++rep) {
        seen.insert(derive_seed(base, cell, rep));
        ++total;
      }
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(SeedDerivation, PureAndCoordinateSensitive) {
  const auto s = derive_seed(42, 7, 3);
  EXPECT_EQ(s, derive_seed(42, 7, 3));
  EXPECT_NE(s, derive_seed(43, 7, 3));
  EXPECT_NE(s, derive_seed(42, 8, 3));
  EXPECT_NE(s, derive_seed(42, 7, 4));
  // Swapping cell and replication must land in a different stream.
  EXPECT_NE(derive_seed(42, 3, 7), derive_seed(42, 7, 3));
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, SerialExceptionIsFirstFailingIndex) {
  try {
    parallel_for(16, 1, [](std::size_t i) {
      if (i >= 5) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 5");
  }
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for(64, 4,
                            [&](std::size_t i) {
                              if (i == 10)
                                throw std::runtime_error("worker failure");
                              completed.fetch_add(1);
                            }),
               std::runtime_error);
  // The failure stops new tasks: nothing near the tail of the range ran.
  EXPECT_LT(completed.load(), 64);
}

TEST(ParallelFor, NonStdExceptionAlsoPropagates) {
  EXPECT_THROW(parallel_for(8, 2, [](std::size_t i) {
                 if (i == 3) throw 42;
               }),
               int);
}

TEST(Summarize, MeanStddevAndConfidence) {
  const auto empty = summarize({});
  EXPECT_EQ(empty.n, 0u);

  const auto one = summarize({5.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.ci95, 0.0);

  // n=4, mean 5, sample stddev 2; t(3, 97.5%) = 3.182.
  const auto s = summarize({3.0, 7.0, 3.0, 7.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.3094, 1e-4);
  EXPECT_NEAR(s.ci95, 3.182 * 2.3094 / 2.0, 1e-3);
}

}  // namespace
}  // namespace prord::core
