#include "core/experiment.h"

#include <gtest/gtest.h>

namespace prord::core {
namespace {

trace::WorkloadSpec small_spec() {
  auto spec = trace::synthetic_spec();
  spec.site.sections = 3;
  spec.site.pages_per_section = 20;
  spec.gen.target_requests = 3000;
  spec.gen.duration_sec = 300;
  return spec;
}

TEST(PolicyLabels, MatchPaperLegends) {
  EXPECT_STREQ(policy_label(PolicyKind::kWrr), "WRR");
  EXPECT_STREQ(policy_label(PolicyKind::kLard), "LARD");
  EXPECT_STREQ(policy_label(PolicyKind::kLardReplicated), "LARD/R");
  EXPECT_STREQ(policy_label(PolicyKind::kExtLardPhttp), "Ext-LARD-PHTTP");
  EXPECT_STREQ(policy_label(PolicyKind::kPress), "PRESS");
  EXPECT_STREQ(policy_label(PolicyKind::kPrord), "PRORD");
  EXPECT_STREQ(policy_label(PolicyKind::kLardBundle), "LARD-bundle");
  EXPECT_STREQ(policy_label(PolicyKind::kLardDistribution),
               "LARD-distribution");
  EXPECT_STREQ(policy_label(PolicyKind::kLardPrefetchNav),
               "LARD-prefetch-nav");
}

TEST(PolicyUsesMining, OnlyPrordFamily) {
  EXPECT_FALSE(policy_uses_mining(PolicyKind::kWrr));
  EXPECT_FALSE(policy_uses_mining(PolicyKind::kLard));
  EXPECT_FALSE(policy_uses_mining(PolicyKind::kExtLardPhttp));
  EXPECT_TRUE(policy_uses_mining(PolicyKind::kPrord));
  EXPECT_TRUE(policy_uses_mining(PolicyKind::kLardBundle));
}

TEST(Experiment, RunsEveryPolicyToCompletion) {
  for (const auto kind :
       {PolicyKind::kWrr, PolicyKind::kLard, PolicyKind::kLardReplicated,
        PolicyKind::kExtLardPhttp, PolicyKind::kPrord, PolicyKind::kLardBundle,
        PolicyKind::kLardDistribution, PolicyKind::kLardPrefetchNav}) {
    ExperimentConfig config;
    config.workload = small_spec();
    config.policy = kind;
    const auto r = run_experiment(config);
    EXPECT_EQ(r.policy, policy_label(kind));
    EXPECT_EQ(r.metrics.completed, r.num_requests) << r.policy;
    EXPECT_GT(r.throughput_rps(), 0.0) << r.policy;
    EXPECT_GT(r.hit_rate(), 0.0) << r.policy;
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kPrord;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_DOUBLE_EQ(a.throughput_rps(), b.throughput_rps());
  EXPECT_EQ(a.metrics.dispatches, b.metrics.dispatches);
  EXPECT_EQ(a.metrics.disk_reads, b.metrics.disk_reads);
}

TEST(Experiment, MemoryFractionSizesCaches) {
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kLard;
  config.memory_fraction = 0.10;
  const auto small = run_experiment(config);
  config.memory_fraction = 0.80;
  const auto large = run_experiment(config);
  EXPECT_LT(small.cache_bytes, large.cache_bytes);
  EXPECT_LE(small.hit_rate(), large.hit_rate() + 0.02);
}

TEST(Experiment, WarmupImprovesHitRate) {
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kLard;
  config.warmup = false;
  const auto cold = run_experiment(config);
  config.warmup = true;
  const auto warm = run_experiment(config);
  EXPECT_GT(warm.hit_rate(), cold.hit_rate());
}

TEST(Experiment, ExplicitTimeScaleHonored) {
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kWrr;
  config.time_scale = 123.0;
  const auto r = run_experiment(config);
  EXPECT_DOUBLE_EQ(r.time_scale, 123.0);
}

TEST(Experiment, DispatchFrequencyShape) {
  // The Fig. 6 claim: PRORD contacts the dispatcher far less than LARD.
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kLard;
  const auto lard = run_experiment(config);
  config.policy = PolicyKind::kPrord;
  const auto prord = run_experiment(config);
  EXPECT_DOUBLE_EQ(lard.dispatch_frequency(), 1.0);
  EXPECT_LT(prord.dispatch_frequency(), 0.5);
}

TEST(Experiment, PrordBeatsLardOnThroughput) {
  // The headline Fig. 7 shape on the paper's full synthetic workload
  // (30,000 requests). Shorter traces do not saturate LARD's front-end,
  // which is precisely the overhead PRORD attacks.
  ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.policy = PolicyKind::kLard;
  const auto lard = run_experiment(config);
  config.policy = PolicyKind::kPrord;
  const auto prord = run_experiment(config);
  config.policy = PolicyKind::kWrr;
  const auto wrr = run_experiment(config);
  EXPECT_GT(prord.throughput_rps(), lard.throughput_rps());
  EXPECT_GT(lard.throughput_rps(), wrr.throughput_rps());
}

TEST(Experiment, PrordCountersPopulated) {
  ExperimentConfig config;
  config.workload = small_spec();
  config.policy = PolicyKind::kPrord;
  const auto r = run_experiment(config);
  EXPECT_GT(r.bundle_forwards, 0u);
  // Non-mining policies report zeros.
  config.policy = PolicyKind::kLard;
  const auto lard = run_experiment(config);
  EXPECT_EQ(lard.bundle_forwards, 0u);
  EXPECT_EQ(lard.prefetches_triggered, 0u);
}

TEST(Experiment, DecentralizedDistributorsRelieveLardFrontend) {
  // Aron et al. [4]: parallel distributors raise multiple-handoff LARD's
  // throughput, but every request still contacts the dispatcher.
  ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.gen.target_requests = 6000;
  config.policy = PolicyKind::kLard;
  config.params.num_frontends = 1;
  const auto one = run_experiment(config);
  config.params.num_frontends = 4;
  const auto four = run_experiment(config);
  EXPECT_GT(four.throughput_rps(), one.throughput_rps());
  EXPECT_DOUBLE_EQ(four.dispatch_frequency(), 1.0);
}

TEST(Experiment, ScalesBackendCount) {
  for (std::uint32_t n : {6u, 16u}) {
    ExperimentConfig config;
    config.workload = small_spec();
    config.policy = PolicyKind::kPrord;
    config.params.num_backends = n;
    const auto r = run_experiment(config);
    EXPECT_EQ(r.metrics.per_server_served.size(), n);
    EXPECT_EQ(r.metrics.completed, r.num_requests);
  }
}

}  // namespace
}  // namespace prord::core
