// Cross-policy simulation conservation checks.
//
// Every PolicyKind drives a small workload through the cluster behind a
// checking decorator that verifies, at every routing and completion event:
//   - per-back-end cache occupancy never exceeds capacity in either region
//     (evictions only happen inside event processing, and an over-capacity
//     state would persist to the next callback, so this brackets every
//     eviction),
// and at drain:
//   - requests injected == completions + in-flight (in-flight == 0 once
//     the event set drains),
//   - dispatcher contacts <= requests routed.
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "core/workload_player.h"
#include "logmining/mining_model.h"
#include "policies/ext_lard_phttp.h"
#include "policies/press.h"
#include "policies/prord.h"
#include "policies/wrr.h"
#include "trace/models.h"

namespace prord::core {
namespace {

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kWrr,          PolicyKind::kLard,
    PolicyKind::kLardReplicated, PolicyKind::kExtLardPhttp,
    PolicyKind::kPress,        PolicyKind::kPrord,
    PolicyKind::kLardBundle,   PolicyKind::kLardDistribution,
    PolicyKind::kLardPrefetchNav};

trace::WorkloadSpec small_spec() {
  auto spec = trace::synthetic_spec();
  spec.site.sections = 3;
  spec.site.pages_per_section = 20;
  spec.gen.target_requests = 2000;
  spec.gen.duration_sec = 300;
  return spec;
}

/// Forwards to the real policy; checks cache occupancy against capacity on
/// every callback and counts routes/dispatches for the drain invariants.
class InvariantCheckingPolicy final : public policies::DistributionPolicy {
 public:
  explicit InvariantCheckingPolicy(
      std::unique_ptr<policies::DistributionPolicy> inner)
      : inner_(std::move(inner)) {}

  std::string_view name() const override { return inner_->name(); }
  void start(cluster::Cluster& cluster) override { inner_->start(cluster); }
  void finish(cluster::Cluster& cluster) override { inner_->finish(cluster); }
  void reset_counters() override { inner_->reset_counters(); }

  policies::RouteDecision route(policies::RouteContext& ctx,
                                cluster::Cluster& cluster) override {
    ++routed_;
    const auto decision = inner_->route(ctx, cluster);
    if (decision.contacted_dispatcher) ++dispatches_;
    check_occupancy(cluster);
    return decision;
  }

  void on_routed(const trace::Request& req, policies::ServerId server,
                 cluster::Cluster& cluster) override {
    inner_->on_routed(req, server, cluster);
    check_occupancy(cluster);
  }

  void on_complete(const trace::Request& req, policies::ServerId server,
                   cluster::Cluster& cluster) override {
    inner_->on_complete(req, server, cluster);
    check_occupancy(cluster);
  }

  std::uint64_t routed() const { return routed_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t occupancy_violations() const { return violations_; }

 private:
  void check_occupancy(cluster::Cluster& cluster) {
    for (std::uint32_t s = 0; s < cluster.size(); ++s) {
      const auto& cache = cluster.backend(s).cache();
      if (cache.demand_bytes() > cache.demand_capacity() ||
          cache.pinned_bytes() > cache.pinned_capacity())
        ++violations_;
    }
  }

  std::unique_ptr<policies::DistributionPolicy> inner_;
  std::uint64_t routed_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t violations_ = 0;
};

std::unique_ptr<policies::DistributionPolicy> make_inner(
    PolicyKind kind, std::shared_ptr<logmining::MiningModel> model,
    const trace::FileTable& files) {
  switch (kind) {
    case PolicyKind::kWrr:
      return std::make_unique<policies::WeightedRoundRobin>();
    case PolicyKind::kLard:
      return std::make_unique<policies::Lard>();
    case PolicyKind::kLardReplicated: {
      policies::LardOptions opts;
      opts.replication = true;
      return std::make_unique<policies::Lard>(opts);
    }
    case PolicyKind::kExtLardPhttp:
      return std::make_unique<policies::ExtLardPhttp>();
    case PolicyKind::kPress:
      return std::make_unique<policies::Press>();
    case PolicyKind::kPrord:
      return std::make_unique<policies::Prord>(std::move(model), files,
                                               policies::prord_full_options());
    case PolicyKind::kLardBundle:
      return std::make_unique<policies::Prord>(std::move(model), files,
                                               policies::lard_bundle_options());
    case PolicyKind::kLardDistribution:
      return std::make_unique<policies::Prord>(
          std::move(model), files, policies::lard_distribution_options());
    case PolicyKind::kLardPrefetchNav:
      return std::make_unique<policies::Prord>(
          std::move(model), files, policies::lard_prefetch_nav_options());
  }
  return nullptr;
}

struct DrainReport {
  RunMetrics metrics;
  std::uint64_t routed = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t occupancy_violations = 0;
  std::uint32_t in_flight_at_drain = 0;
  std::uint64_t demand_evictions = 0;
  std::size_t requests = 0;
};

DrainReport play_checked(PolicyKind kind) {
  const auto spec = small_spec();
  const trace::SiteModel site = trace::build_site(spec.site);
  const trace::GeneratedTrace eval_trace = trace::generate_trace(site, spec.gen);
  auto train_gen = spec.gen;
  train_gen.seed += 1000;
  const trace::GeneratedTrace train_trace =
      trace::generate_trace(site, train_gen);
  trace::Workload train = trace::build_workload(train_trace.records);
  trace::Workload eval =
      trace::build_workload(eval_trace.records, {}, train.files);

  std::shared_ptr<logmining::MiningModel> model;
  if (policy_uses_mining(kind))
    model = std::make_shared<logmining::MiningModel>(train.requests,
                                                     logmining::MiningConfig{});

  // Cache small enough (10% of the site, split 8 ways) that the demand
  // region must evict, exercising the occupancy invariant for real.
  cluster::ClusterParams params;
  const std::uint64_t capacity = std::max<std::uint64_t>(
      64 * 1024,
      static_cast<std::uint64_t>(0.10 * static_cast<double>(site.total_bytes()) /
                                 params.num_backends));
  const std::uint64_t pinned = capacity / 4;

  sim::Simulator simulator;
  cluster::Cluster cl(simulator, params, capacity - pinned, pinned);
  InvariantCheckingPolicy policy(make_inner(kind, model, eval.files));

  PlayerOptions opts;
  opts.time_scale = 50.0;
  DrainReport report;
  report.metrics = play_workload(simulator, cl, policy, eval, opts);
  report.routed = policy.routed();
  report.dispatches = policy.dispatches();
  report.occupancy_violations = policy.occupancy_violations();
  for (std::uint32_t s = 0; s < cl.size(); ++s) {
    report.in_flight_at_drain += cl.backend(s).load();
    report.demand_evictions += cl.backend(s).cache().stats().demand_evictions;
  }
  report.requests = eval.requests.size();
  return report;
}

TEST(SimulationInvariants, HoldForEveryPolicy) {
  for (const auto kind : kAllPolicies) {
    SCOPED_TRACE(policy_label(kind));
    const auto r = play_checked(kind);

    // Conservation: everything injected either completed or is in flight,
    // and nothing is in flight once the event set drains.
    EXPECT_EQ(r.in_flight_at_drain, 0u);
    EXPECT_EQ(r.metrics.completed + r.in_flight_at_drain, r.requests);
    EXPECT_EQ(r.routed, r.requests);

    // The distributor contacts the dispatcher at most once per request.
    EXPECT_LE(r.dispatches, r.routed);
    EXPECT_EQ(r.dispatches, r.metrics.dispatches);

    // Cache occupancy stayed within capacity at every observed event.
    EXPECT_EQ(r.occupancy_violations, 0u);
  }
}

TEST(SimulationInvariants, SmallCacheActuallyEvicts) {
  // Guard against the occupancy check passing vacuously: the 10% cache
  // must be under enough pressure that demand evictions happen.
  const auto r = play_checked(PolicyKind::kLard);
  EXPECT_GT(r.demand_evictions, 0u);
}

TEST(SimulationInvariants, MiningPoliciesStayConservative) {
  // PRORD's proactive machinery (prefetch + replication) moves bytes into
  // pinned regions; conservation and occupancy must still hold — covered
  // above — and its dispatch rate must stay below LARD's 1-per-request.
  const auto lard = play_checked(PolicyKind::kLard);
  const auto prord = play_checked(PolicyKind::kPrord);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(lard.dispatches) / static_cast<double>(lard.requests),
      1.0);
  EXPECT_LT(prord.dispatches, prord.requests);
}

}  // namespace
}  // namespace prord::core
