// BENCH_*.json contract test: renders a PerfReport the way bench_perf
// does, parses it back, and validates it against the checked-in
// docs/perf_schema.json with a mini JSON-Schema validator covering
// exactly the subset the schema uses (type, required, enum, minItems,
// minimum, properties/items recursion). Semantic rules the schema cannot
// express — monotonic scenario timestamps, non-zero throughput — are
// asserted here too, so a CI artifact that validates is actually usable
// for cross-commit comparison.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/perf_report.h"
#include "util/json.h"

namespace prord::core {
namespace {

using util::JsonValue;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JsonValue load_schema() {
  const auto path = std::filesystem::path(__FILE__)
                        .parent_path()  // tests/core
                        .parent_path()  // tests
                        .parent_path() /
                    "docs" / "perf_schema.json";
  return util::json_parse(read_file(path));
}

// ---------------------------------------------------------------------------
// Mini validator for the schema subset docs/perf_schema.json uses.
// ---------------------------------------------------------------------------

void validate(const JsonValue& value, const JsonValue& schema,
              const std::string& where, std::vector<std::string>& errors) {
  if (const JsonValue* type = schema.find("type")) {
    const std::string& t = type->as_string();
    bool ok = true;
    if (t == "object") ok = value.is_object();
    else if (t == "array") ok = value.is_array();
    else if (t == "string") ok = value.is_string();
    else if (t == "number") ok = value.is_number();
    else if (t == "boolean") ok = value.is_bool();
    else if (t == "integer")
      ok = value.is_number() &&
           value.as_number() == std::floor(value.as_number());
    if (!ok) {
      errors.push_back(where + ": expected " + t);
      return;
    }
  }
  if (const JsonValue* en = schema.find("enum")) {
    bool hit = false;
    for (const JsonValue& option : en->items())
      if (value.is_string() && option.is_string() &&
          value.as_string() == option.as_string())
        hit = true;
    if (!hit) errors.push_back(where + ": value not in enum");
  }
  if (const JsonValue* min = schema.find("minimum")) {
    if (value.is_number() && value.as_number() < min->as_number())
      errors.push_back(where + ": below minimum");
  }
  if (const JsonValue* required = schema.find("required")) {
    for (const JsonValue& key : required->items())
      if (!value.find(key.as_string()))
        errors.push_back(where + ": missing required key '" +
                         key.as_string() + "'");
  }
  if (const JsonValue* props = schema.find("properties")) {
    for (const auto& [key, prop_schema] : props->members())
      if (const JsonValue* member = value.find(key))
        validate(*member, prop_schema, where + "." + key, errors);
  }
  if (value.is_array()) {
    if (const JsonValue* min_items = schema.find("minItems"))
      if (value.items().size() <
          static_cast<std::size_t>(min_items->as_number()))
        errors.push_back(where + ": fewer than minItems entries");
    if (const JsonValue* items = schema.find("items")) {
      std::size_t i = 0;
      for (const JsonValue& item : value.items())
        validate(item, *items, where + "[" + std::to_string(i++) + "]",
                 errors);
    }
  }
}

std::vector<std::string> validate_report(const JsonValue& doc) {
  std::vector<std::string> errors;
  validate(doc, load_schema(), "$", errors);
  return errors;
}

/// A report shaped exactly like bench_perf's sim suite output.
PerfReport sample_report() {
  PerfReport report;
  report.suite = "sim";
  report.git_sha = "0123456789abcdef0123456789abcdef01234567";
  report.generated_unix_ms = 1754650000000ull;

  PerfScenario opt;
  opt.name = "fig8_memory_sweep";
  opt.mode = "optimized";
  opt.t_start_ms = 1754649990000ull;
  opt.t_end_ms = 1754649993000ull;
  opt.wall_seconds = 3.0;
  opt.sim_wall_seconds = 2.4;
  opt.sim_events = 6'000'000;
  opt.events_per_sec = 2'000'000.0;
  opt.requests = 120'000;
  opt.requests_per_sec = 18'500.0;
  opt.p50_response_ms = 1.2;
  opt.p99_response_ms = 9.8;
  opt.allocations = 480'000;
  opt.allocations_per_event = 0.08;

  PerfScenario base = opt;
  base.mode = "baseline";
  base.t_start_ms = opt.t_end_ms;
  base.t_end_ms = opt.t_end_ms + 7000;
  base.wall_seconds = 7.0;
  base.events_per_sec = 857'142.0;
  base.allocations = 19'000'000;
  base.allocations_per_event = 3.1;

  report.scenarios = {opt, base};
  report.speedups = {{"fig8_memory_sweep_events_per_sec_speedup", 2.33}};
  return report;
}

// Semantic checks bench_perf's consumers rely on, mirrored from the
// schema description.
void check_semantics(const JsonValue& doc) {
  std::uint64_t prev_start = 0;
  for (const JsonValue& s : doc.find("scenarios")->items()) {
    const auto start =
        static_cast<std::uint64_t>(s.find("t_start_ms")->as_number());
    const auto end =
        static_cast<std::uint64_t>(s.find("t_end_ms")->as_number());
    EXPECT_GE(start, prev_start) << "scenario list not time-ordered";
    EXPECT_GE(end, start) << "scenario ends before it starts";
    prev_start = start;
    EXPECT_GT(s.find("requests_per_sec")->as_number(), 0.0)
        << "scenario carries zero throughput";
  }
}

TEST(PerfReportSchema, RenderedReportValidates) {
  const JsonValue doc =
      util::json_parse(render_perf_report(sample_report()));
  const auto errors = validate_report(doc);
  EXPECT_TRUE(errors.empty()) << "schema violations:\n"
                              << [&] {
                                   std::string all;
                                   for (const auto& e : errors)
                                     all += "  " + e + "\n";
                                   return all;
                                 }();
  check_semantics(doc);
  EXPECT_EQ(static_cast<int>(doc.find("schema_version")->as_number()),
            kPerfSchemaVersion);
}

TEST(PerfReportSchema, RoundTripPreservesValues) {
  const PerfReport report = sample_report();
  const JsonValue doc = util::json_parse(render_perf_report(report));
  EXPECT_EQ(doc.find("suite")->as_string(), "sim");
  EXPECT_EQ(doc.find("git_sha")->as_string(), report.git_sha);
  // Integral fields survive bit-exact (the writer renders them as
  // integers, not scientific notation).
  EXPECT_EQ(static_cast<std::uint64_t>(
                doc.find("generated_unix_ms")->as_number()),
            report.generated_unix_ms);
  const JsonValue& s0 = doc.find("scenarios")->items()[0];
  EXPECT_EQ(static_cast<std::uint64_t>(s0.find("sim_events")->as_number()),
            report.scenarios[0].sim_events);
  EXPECT_DOUBLE_EQ(s0.find("p99_response_ms")->as_number(), 9.8);
  const JsonValue* speedup =
      doc.find("speedups")->find("fig8_memory_sweep_events_per_sec_speedup");
  ASSERT_NE(speedup, nullptr);
  EXPECT_DOUBLE_EQ(speedup->as_number(), 2.33);
}

TEST(PerfReportSchema, ValidatorHasTeeth) {
  // Mutations a drifting emitter could produce must be caught — otherwise
  // the CI validation step is theater.
  PerfReport report = sample_report();
  report.scenarios[0].mode = "turbo";  // not in the mode enum
  JsonValue doc = util::json_parse(render_perf_report(report));
  EXPECT_FALSE(validate_report(doc).empty());

  // Empty scenario list violates minItems.
  PerfReport empty = sample_report();
  empty.scenarios.clear();
  EXPECT_FALSE(
      validate_report(util::json_parse(render_perf_report(empty))).empty());

  // A document missing a required top-level key.
  JsonValue bare = JsonValue::object();
  bare.set("schema_version", 1);
  EXPECT_FALSE(validate_report(bare).empty());
}

TEST(PerfReportSchema, ParserRejectsMalformedInput) {
  EXPECT_THROW(util::json_parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(util::json_parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(util::json_parse("[1, 2"), std::runtime_error);
}

}  // namespace
}  // namespace prord::core
