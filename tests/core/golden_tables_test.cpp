// Golden-snapshot tests for the paper-figure result tables.
//
// Each test runs a small pinned grid (fixed workload spec, fixed seeds,
// fixed cluster params), renders the fig7/8/9-shaped result table, and
// byte-compares it against a committed golden file in
// tests/core/golden/. The hot-path optimizations (timing-wheel queue,
// pooled records, batched metrics) promise *identical results* — these
// snapshots catch any numeric drift the invariant tests are too coarse
// to see, down to the last rendered digit.
//
// Intentional result changes: regenerate with
//   PRORD_UPDATE_GOLDEN=1 ctest -R GoldenTables
// and commit the updated files with the change that caused them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "util/table.h"

namespace prord::core {
namespace {

std::filesystem::path golden_dir() {
  // __FILE__ is absolute under CMake, so the goldens live next to the
  // test source regardless of the build directory.
  return std::filesystem::path(__FILE__).parent_path() / "golden";
}

trace::WorkloadSpec pinned_spec() {
  auto spec = trace::synthetic_spec();
  spec.site.sections = 4;
  spec.site.pages_per_section = 25;
  spec.gen.target_requests = 3000;
  spec.gen.duration_sec = 300;
  return spec;
}

ExperimentConfig pinned_config(PolicyKind policy, double memory_fraction) {
  ExperimentConfig config;
  config.workload = pinned_spec();
  config.policy = policy;
  config.memory_fraction = memory_fraction;
  return config;
}

std::string render_table(const std::vector<CellResult>& results) {
  util::Table table({"cell", "throughput(req/s)", "hit-rate",
                     "response-p99(ms)", "dispatch-freq"});
  for (const auto& cell : results) {
    const ExperimentResult& r = cell.primary();
    table.add_row(
        {cell.label, util::Table::num(r.throughput_rps(), 1),
         util::Table::num(r.hit_rate(), 4),
         util::Table::num(
             static_cast<double>(r.metrics.response_hist.p99()) / 1000.0, 3),
         util::Table::num(r.dispatch_frequency(), 4)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

void check_against_golden(const std::string& name,
                          const std::string& rendered) {
  const auto path = golden_dir() / (name + ".txt");
  if (std::getenv("PRORD_UPDATE_GOLDEN")) {
    std::filesystem::create_directories(golden_dir());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run with PRORD_UPDATE_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), rendered)
      << "table drifted from " << path
      << "; if the change is intentional, regenerate with "
         "PRORD_UPDATE_GOLDEN=1 and commit the new golden";
}

std::vector<CellResult> run_pinned(std::vector<ExperimentCell> cells) {
  RunnerOptions options;
  options.jobs = 1;
  options.replications = 1;
  return run_cells(cells, options);
}

TEST(GoldenTables, Fig7ThroughputByPolicy) {
  std::vector<ExperimentCell> cells;
  for (const auto kind : {PolicyKind::kWrr, PolicyKind::kLard,
                          PolicyKind::kPress, PolicyKind::kPrord})
    cells.push_back({policy_label(kind), pinned_config(kind, 0.30)});
  check_against_golden("fig7_throughput", render_table(run_pinned(cells)));
}

TEST(GoldenTables, Fig8MemorySweep) {
  std::vector<ExperimentCell> cells;
  for (const double fraction : {0.10, 0.20, 0.30})
    for (const auto kind : {PolicyKind::kLard, PolicyKind::kPrord}) {
      std::string label = std::string(policy_label(kind)) + "@" +
                          util::Table::num(fraction, 2);
      cells.push_back({std::move(label), pinned_config(kind, fraction)});
    }
  check_against_golden("fig8_memory_sweep", render_table(run_pinned(cells)));
}

TEST(GoldenTables, Fig9AblationLadder) {
  std::vector<ExperimentCell> cells;
  for (const auto kind :
       {PolicyKind::kLard, PolicyKind::kLardBundle,
        PolicyKind::kLardDistribution, PolicyKind::kLardPrefetchNav,
        PolicyKind::kPrord})
    cells.push_back({policy_label(kind), pinned_config(kind, 0.30)});
  check_against_golden("fig9_ablation", render_table(run_pinned(cells)));
}

}  // namespace
}  // namespace prord::core
