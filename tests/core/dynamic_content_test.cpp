// Dynamic-content extension tests (the paper's Section 6 future work).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "policies/prord.h"

namespace prord {
namespace {

TEST(DynamicUrl, Classification) {
  EXPECT_TRUE(trace::is_dynamic_url("/search.cgi"));
  EXPECT_TRUE(trace::is_dynamic_url("/s1/p3.cgi?q=x"));
  EXPECT_TRUE(trace::is_dynamic_url("/index.php"));
  EXPECT_TRUE(trace::is_dynamic_url("/cgi-bin/form"));
  EXPECT_FALSE(trace::is_dynamic_url("/index.html"));
  EXPECT_FALSE(trace::is_dynamic_url("/img/logo.gif"));
}

TEST(DynamicSite, BuilderMarksRequestedFraction) {
  trace::SiteBuildParams p;
  p.sections = 4;
  p.pages_per_section = 50;
  p.dynamic_page_fraction = 0.3;
  p.seed = 5;
  const auto site = trace::build_site(p);
  std::size_t dynamic = 0, content = 0;
  for (const auto& page : site.pages()) {
    if (page.url.find("/p") == std::string::npos) continue;  // indexes
    ++content;
    dynamic += page.is_dynamic;
    EXPECT_EQ(page.is_dynamic,
              page.url.find(".cgi") != std::string::npos)
        << page.url;
  }
  EXPECT_NEAR(static_cast<double>(dynamic) / static_cast<double>(content),
              0.3, 0.08);
}

TEST(DynamicSite, ZeroFractionByDefault) {
  trace::SiteBuildParams p;
  p.sections = 2;
  p.pages_per_section = 20;
  const auto site = trace::build_site(p);
  for (const auto& page : site.pages()) EXPECT_FALSE(page.is_dynamic);
}

TEST(DynamicWorkload, RequestsCarryFlag) {
  trace::SiteBuildParams sp;
  sp.sections = 3;
  sp.pages_per_section = 20;
  sp.dynamic_page_fraction = 0.4;
  sp.seed = 9;
  const auto site = trace::build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 3000;
  gp.duration_sec = 300;
  gp.seed = 10;
  const auto t = trace::generate_trace(site, gp);
  const auto w = trace::build_workload(t.records);
  std::size_t dynamic = 0;
  for (const auto& r : w.requests) {
    if (r.is_dynamic) {
      EXPECT_FALSE(r.is_embedded);
      ++dynamic;
    }
  }
  // Traffic concentrates on (static) index pages, so the dynamic share of
  // requests is well below the dynamic share of pages — but present.
  EXPECT_GT(dynamic, 20u);
}

TEST(DynamicBackend, ServedFromCpuNotDiskAndNeverCached) {
  sim::Simulator sim;
  cluster::ClusterParams params;
  cluster::BackendServer server(sim, 0, params, 1 << 20, 1 << 18);
  sim::SimTime done1 = 0, done2 = 0;
  server.serve(1, 2048, 0, [&](sim::SimTime t) { done1 = t; }, true);
  sim.run();
  EXPECT_FALSE(server.caches(1));
  EXPECT_EQ(server.stats().disk_reads, 0u);
  EXPECT_EQ(server.stats().dynamic_served, 1u);
  // Latency is CPU-scale (ms), far below a disk miss.
  EXPECT_GE(done1, params.dynamic_cpu);
  EXPECT_LT(done1, params.disk_fixed);
  // Serving it again costs the same (no caching benefit).
  const auto t0 = sim.now();
  server.serve(1, 2048, 0, [&](sim::SimTime t) { done2 = t; }, true);
  sim.run();
  EXPECT_NEAR(static_cast<double>(done2 - t0), static_cast<double>(done1),
              1.0);
}

TEST(DynamicExperiment, AllPoliciesComplete) {
  for (const auto kind :
       {core::PolicyKind::kWrr, core::PolicyKind::kLard,
        core::PolicyKind::kPrord}) {
    core::ExperimentConfig config;
    config.workload = trace::synthetic_spec();
    config.workload.site.sections = 3;
    config.workload.site.pages_per_section = 20;
    config.workload.site.dynamic_page_fraction = 0.3;
    config.workload.gen.target_requests = 3000;
    config.workload.gen.duration_sec = 300;
    config.policy = kind;
    const auto r = core::run_experiment(config);
    EXPECT_EQ(r.metrics.completed, r.num_requests) << r.policy;
  }
}

TEST(DynamicExperiment, PrordBalancesDynamicLoad) {
  // With a large dynamic share, PRORD's dynamic-aware routing should
  // spread CPU work rather than pin hot dynamic pages to one server.
  core::ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.site.dynamic_page_fraction = 0.5;
  config.workload.gen.target_requests = 10'000;
  config.policy = core::PolicyKind::kPrord;
  const auto prord = core::run_experiment(config);
  config.policy = core::PolicyKind::kLard;
  const auto lard = core::run_experiment(config);

  auto imbalance = [](const core::ExperimentResult& r) {
    std::uint64_t max = 0, total = 0;
    for (const auto c : r.metrics.per_server_served) {
      max = std::max(max, c);
      total += c;
    }
    return static_cast<double>(max) * r.metrics.per_server_served.size() /
           static_cast<double>(total);
  };
  EXPECT_LT(imbalance(prord), imbalance(lard) + 0.5);
  EXPECT_GT(prord.throughput_rps(), lard.throughput_rps());
}

}  // namespace
}  // namespace prord
