#include "core/workload_player.h"

#include <gtest/gtest.h>

#include "policies/lard.h"
#include "policies/wrr.h"

namespace prord::core {
namespace {

trace::Workload tiny_workload() {
  trace::Workload w;
  auto add = [&](sim::SimTime at, std::uint32_t client, std::uint32_t conn,
                 const char* url, std::uint32_t bytes, bool embedded,
                 bool starts) {
    trace::Request r;
    r.at = at;
    r.client = client;
    r.conn = conn;
    r.file = w.files.intern(url, bytes);
    r.bytes = bytes;
    r.is_embedded = embedded;
    r.starts_connection = starts;
    w.requests.push_back(r);
  };
  add(0, 0, 0, "/a.html", 2048, false, true);
  add(sim::usec(100), 0, 0, "/a.gif", 1024, true, false);
  add(sim::usec(200), 1, 1, "/b.html", 2048, false, true);
  add(sim::sec(1.0), 0, 0, "/c.html", 2048, false, false);
  w.num_connections = 2;
  w.num_clients = 2;
  w.num_main_pages = 3;
  return w;
}

class PlayerTest : public ::testing::Test {
 protected:
  PlayerTest() {
    params_.num_backends = 2;
    cluster_ = std::make_unique<cluster::Cluster>(sim_, params_, 1 << 20,
                                                  1 << 18);
  }

  sim::Simulator sim_;
  cluster::ClusterParams params_;
  std::unique_ptr<cluster::Cluster> cluster_;
};

TEST_F(PlayerTest, CompletesAllRequests) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  const auto m = play_workload(sim_, *cluster_, wrr, w);
  EXPECT_EQ(m.completed, w.requests.size());
  EXPECT_EQ(m.response_time_us.count(), w.requests.size());
  EXPECT_GT(m.last_completion, m.first_issue);
  EXPECT_EQ(m.per_server_served.size(), 2u);
  EXPECT_EQ(m.per_server_served[0] + m.per_server_served[1],
            w.requests.size());
}

TEST_F(PlayerTest, DispatchAndHandoffCounting) {
  const auto w = tiny_workload();
  policies::Lard lard;
  const auto m = play_workload(sim_, *cluster_, lard, w);
  // Plain LARD: every request contacts the dispatcher and hands off.
  EXPECT_EQ(m.dispatches, w.requests.size());
  EXPECT_EQ(m.handoffs, w.requests.size());
}

TEST_F(PlayerTest, WrrDispatchesNothing) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  const auto m = play_workload(sim_, *cluster_, wrr, w);
  EXPECT_EQ(m.dispatches, 0u);
  EXPECT_EQ(m.handoffs, w.num_connections);  // one per connection
}

TEST_F(PlayerTest, TimeScaleCompressesArrivals) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr1;
  const auto slow = play_workload(sim_, *cluster_, wrr1, w);

  sim::Simulator sim2;
  cluster::Cluster cl2(sim2, params_, 1 << 20, 1 << 18);
  policies::WeightedRoundRobin wrr2;
  PlayerOptions opts;
  opts.time_scale = 100.0;
  const auto fast = play_workload(sim2, cl2, wrr2, w, opts);
  EXPECT_LT(fast.last_completion - fast.first_issue,
            slow.last_completion - slow.first_issue);
}

TEST_F(PlayerTest, ConnectionRequestsSerialized) {
  // Two requests on one connection arriving at the same instant: the
  // second must wait for the first response.
  trace::Workload w;
  trace::Request r;
  r.file = w.files.intern("/x.html", 4096);
  r.bytes = 4096;
  r.conn = 0;
  r.at = 0;
  w.requests.push_back(r);
  r.file = w.files.intern("/y.html", 4096);
  r.at = 1;
  w.requests.push_back(r);
  w.num_connections = 1;

  policies::WeightedRoundRobin wrr;
  const auto m = play_workload(sim_, *cluster_, wrr, w);
  // The second response completes at least one full miss-service after the
  // first (they cannot overlap on the same connection).
  EXPECT_GT(m.response_hist.max(), m.response_hist.min());
  EXPECT_GE(static_cast<sim::SimTime>(m.response_time_us.max()),
            params_.disk_fixed);
}

TEST_F(PlayerTest, SecondPlayStartsFromCurrentSimTime) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  const auto first = play_workload(sim_, *cluster_, wrr, w);
  // Replaying on the same simulator (warm-up then measure) must not throw
  // "time in the past".
  policies::WeightedRoundRobin wrr2;
  const auto second = play_workload(sim_, *cluster_, wrr2, w);
  EXPECT_GT(second.first_issue, first.last_completion - sim::usec(1));
  EXPECT_EQ(second.completed, w.requests.size());
}

TEST_F(PlayerTest, RejectsBadTimeScale) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  PlayerOptions opts;
  opts.time_scale = 0.0;
  EXPECT_THROW(play_workload(sim_, *cluster_, wrr, w, opts),
               std::invalid_argument);
}

TEST_F(PlayerTest, OpenLoopIgnoresConnectionSerialization) {
  // Two same-instant requests on one connection: open-loop issues both at
  // t~0 and they overlap across servers; closed-loop serializes them.
  trace::Workload w;
  trace::Request r;
  r.file = w.files.intern("/x.html", 4096);
  r.bytes = 4096;
  r.conn = 0;
  r.at = 0;
  w.requests.push_back(r);
  r.file = w.files.intern("/y.html", 4096);
  r.at = 1;
  w.requests.push_back(r);
  w.num_connections = 1;

  policies::WeightedRoundRobin closed_wrr;
  const auto closed = play_workload(sim_, *cluster_, closed_wrr, w);

  sim::Simulator sim2;
  cluster::Cluster cl2(sim2, params_, 1 << 20, 1 << 18);
  policies::WeightedRoundRobin open_wrr;
  PlayerOptions opts;
  opts.open_loop = true;
  const auto open = play_workload(sim2, cl2, open_wrr, w, opts);

  EXPECT_EQ(open.completed, w.requests.size());
  // Open loop overlaps the two disk misses: earlier final completion.
  EXPECT_LT(open.last_completion, closed.last_completion);
}

TEST_F(PlayerTest, TimelineSamplingWindows) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  PlayerOptions opts;
  opts.sample_interval = sim::msec(100);
  const auto m = play_workload(sim_, *cluster_, wrr, w, opts);
  ASSERT_FALSE(m.timeline.empty());
  // Windowed completions sum to at most the total (the tail after the
  // last full window is uncounted), samples are time-ordered and loads
  // are sane.
  std::uint64_t windowed = 0;
  sim::SimTime prev = -1;
  for (const auto& s : m.timeline) {
    EXPECT_GT(s.at, prev);
    prev = s.at;
    windowed += s.completed;
    EXPECT_GE(s.max_load, static_cast<std::uint32_t>(s.mean_load));
  }
  EXPECT_LE(windowed, m.completed);
}

TEST_F(PlayerTest, TimelineDisabledByDefault) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  const auto m = play_workload(sim_, *cluster_, wrr, w);
  EXPECT_TRUE(m.timeline.empty());
}

TEST_F(PlayerTest, ThroughputAndResponseAccessors) {
  const auto w = tiny_workload();
  policies::WeightedRoundRobin wrr;
  const auto m = play_workload(sim_, *cluster_, wrr, w);
  EXPECT_GT(m.throughput_rps(), 0.0);
  EXPECT_GT(m.mean_response_ms(), 0.0);
  EXPECT_GE(m.response_hist.p99(), m.response_hist.p50());
}

}  // namespace
}  // namespace prord::core
