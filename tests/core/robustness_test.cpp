// Failure injection and cross-policy property sweeps.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/workload_player.h"
#include "policies/ext_lard_phttp.h"
#include "policies/prord.h"
#include "policies/wrr.h"

namespace prord::core {
namespace {

trace::Workload small_workload(std::uint64_t seed = 41) {
  trace::SiteBuildParams sp;
  sp.sections = 3;
  sp.pages_per_section = 15;
  sp.seed = seed;
  const auto site = trace::build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 2500;
  gp.duration_sec = 250;
  gp.seed = seed + 1;
  return trace::build_workload(trace::generate_trace(site, gp).records);
}

std::shared_ptr<logmining::MiningModel> mining_for(
    const trace::Workload& w) {
  return std::make_shared<logmining::MiningModel>(w.requests,
                                                  logmining::MiningConfig{});
}

// ---------------------------------------------------------------------------
// Failure injection.

TEST(Robustness, ServerDownBeforeRunIsNeverUsed) {
  const auto w = small_workload();
  for (int which = 0; which < 2; ++which) {
    sim::Simulator sim;
    cluster::ClusterParams params;
    params.num_backends = 4;
    cluster::Cluster cl(sim, params, 1 << 21, 1 << 19);
    cl.backend(2).set_power_state(cluster::PowerState::kOff);

    std::unique_ptr<policies::DistributionPolicy> policy;
    if (which == 0)
      policy = std::make_unique<policies::WeightedRoundRobin>();
    else
      policy = std::make_unique<policies::Lard>();
    const auto m = play_workload(sim, cl, *policy, w);
    EXPECT_EQ(m.completed, w.requests.size());
    EXPECT_EQ(m.per_server_served[2], 0u) << "policy " << which;
  }
}

// ---------------------------------------------------------------------------
// Shared crash-and-rejoin schedule, every headline policy. One fixture
// replaces the old per-policy mid-run failure tests: the same abrupt
// fault plan (server 1 dies a quarter in, rejoins cold at the half-way
// mark) must leave every policy with conservation intact and the fault
// accounting consistent.

class PolicyFaultTolerance : public ::testing::TestWithParam<PolicyKind> {
 protected:
  static ExperimentConfig faulty_config(PolicyKind kind) {
    ExperimentConfig config;
    config.workload = trace::synthetic_spec(7);
    config.workload.site.sections = 3;
    config.workload.site.pages_per_section = 20;
    config.workload.gen.target_requests = 2500;
    config.workload.gen.duration_sec = 250;
    config.policy = kind;
    config.faults.plan = "crash@60s:srv1,restart@120s:srv1";
    config.faults.heartbeat_interval = sim::sec(2.0);
    config.faults.max_retries = 3;
    return config;
  }
};

TEST_P(PolicyFaultTolerance, CrashAndRejoinConservesRequests) {
  const auto r = run_experiment(faulty_config(GetParam()));

  // Conservation: every issued request settles exactly once.
  EXPECT_EQ(r.metrics.completed + r.metrics.failed, r.num_requests);
  std::uint64_t served = 0;
  for (const auto c : r.metrics.per_server_served) served += c;
  EXPECT_EQ(served, r.metrics.completed);

  // The plan fired and the detector saw both edges.
  EXPECT_EQ(r.fault_stats.crashes, 1u);
  EXPECT_EQ(r.fault_stats.restarts, 1u);
  EXPECT_EQ(r.fault_stats.down_detections, 1u);
  EXPECT_EQ(r.fault_stats.up_detections, 1u);
  EXPECT_GT(r.fault_stats.detection_latency_us.count(), 0u);
  EXPECT_GT(r.fault_stats.believed_unavailable, 0);
  EXPECT_GT(r.fault_stats.actual_unavailable, 0);
  // The cold rejoin opened exactly one re-warm episode.
  ASSERT_EQ(r.rewarms.size(), 1u);
  EXPECT_EQ(r.rewarms[0].server, 1u);
}

TEST_P(PolicyFaultTolerance, FaultRunIsDeterministic) {
  const auto config = faulty_config(GetParam());
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.metrics.failed, b.metrics.failed);
  EXPECT_EQ(a.metrics.retries, b.metrics.retries);
  EXPECT_EQ(a.metrics.redispatches, b.metrics.redispatches);
  EXPECT_EQ(a.metrics.last_completion, b.metrics.last_completion);
  EXPECT_EQ(a.fault_stats.down_detections, b.fault_stats.down_detections);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyFaultTolerance,
    ::testing::Values(PolicyKind::kWrr, PolicyKind::kLard,
                      PolicyKind::kExtLardPhttp, PolicyKind::kPress,
                      PolicyKind::kPrord),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name = policy_label(info.param);
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Robustness, HibernatedServerRejoins) {
  const auto w = small_workload();
  sim::Simulator sim;
  cluster::ClusterParams params;
  params.num_backends = 3;
  cluster::Cluster cl(sim, params, 1 << 21, 1 << 19);
  // WRR cycles over available servers, so the rejoining node picks up new
  // connections as soon as it wakes.
  policies::WeightedRoundRobin wrr;
  cl.backend(2).set_power_state(cluster::PowerState::kHibernate);
  sim.schedule(sim::sec(30.0), [&] {
    cl.backend(2).set_power_state(cluster::PowerState::kOn);
  });
  const auto m = play_workload(sim, cl, wrr, w);
  EXPECT_EQ(m.completed, w.requests.size());
  EXPECT_GT(m.per_server_served[2], 0u);  // picked up work after waking
  EXPECT_GT(m.energy_full_power_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Property sweep: invariants that must hold for every policy and seed.

struct SweepParam {
  PolicyKind policy;
  std::uint64_t seed;
};

class PolicyInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicyInvariants, ConservationAndAccounting) {
  const auto [kind, seed] = GetParam();
  ExperimentConfig config;
  config.workload = trace::synthetic_spec(seed);
  config.workload.site.sections = 3;
  config.workload.site.pages_per_section = 20;
  config.workload.gen.target_requests = 2500;
  config.workload.gen.duration_sec = 250;
  config.policy = kind;
  const auto r = run_experiment(config);

  // Conservation: every request completes exactly once, on some server.
  EXPECT_EQ(r.metrics.completed, r.num_requests);
  std::uint64_t served = 0;
  for (const auto c : r.metrics.per_server_served) served += c;
  EXPECT_EQ(served, r.num_requests);

  // Accounting: cache lookups can only come from non-dynamic requests.
  EXPECT_LE(r.metrics.cache.hits + r.metrics.cache.misses, r.num_requests);
  // Dispatches and handoffs are bounded by requests.
  EXPECT_LE(r.metrics.dispatches, r.num_requests);
  EXPECT_LE(r.metrics.handoffs, r.num_requests);
  // Time sanity.
  EXPECT_GT(r.metrics.last_completion, r.metrics.first_issue);
  EXPECT_GT(r.metrics.response_time_us.min(), 0.0);
  // Histogram and stats agree on the sample count.
  EXPECT_EQ(r.metrics.response_hist.count(),
            r.metrics.response_time_us.count());
}

TEST_P(PolicyInvariants, Deterministic) {
  const auto [kind, seed] = GetParam();
  ExperimentConfig config;
  config.workload = trace::synthetic_spec(seed);
  config.workload.site.sections = 3;
  config.workload.site.pages_per_section = 20;
  config.workload.gen.target_requests = 1500;
  config.workload.gen.duration_sec = 150;
  config.policy = kind;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.metrics.dispatches, b.metrics.dispatches);
  EXPECT_EQ(a.metrics.handoffs, b.metrics.handoffs);
  EXPECT_EQ(a.metrics.disk_reads, b.metrics.disk_reads);
  EXPECT_EQ(a.metrics.last_completion, b.metrics.last_completion);
}

std::string sweep_name(
    const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = policy_label(info.param.policy);
  for (auto& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesSeeds, PolicyInvariants,
    ::testing::Values(SweepParam{PolicyKind::kWrr, 1},
                      SweepParam{PolicyKind::kWrr, 2},
                      SweepParam{PolicyKind::kLard, 1},
                      SweepParam{PolicyKind::kLard, 2},
                      SweepParam{PolicyKind::kLardReplicated, 1},
                      SweepParam{PolicyKind::kExtLardPhttp, 1},
                      SweepParam{PolicyKind::kExtLardPhttp, 2},
                      SweepParam{PolicyKind::kPress, 1},
                      SweepParam{PolicyKind::kPress, 2},
                      SweepParam{PolicyKind::kPrord, 1},
                      SweepParam{PolicyKind::kPrord, 2},
                      SweepParam{PolicyKind::kLardBundle, 1},
                      SweepParam{PolicyKind::kLardDistribution, 1},
                      SweepParam{PolicyKind::kLardPrefetchNav, 1}),
    sweep_name);

}  // namespace
}  // namespace prord::core
