// End-to-end determinism of the --scenario path: a zoo scenario run
// through the experiment grid must export byte-identical observability
// artifacts whether the (cell, replication) tasks ran serially or across
// worker threads — the same contract obs_determinism_test.cpp pins for
// hand-built specs, extended to profile-compiled workloads (and, below,
// to the trace the generator emits for a scenario).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/obs_export.h"
#include "core/parallel_runner.h"
#include "trace/clf.h"
#include "trace/models.h"
#include "zoo/scenario_registry.h"

namespace prord::zoo {
namespace {

/// One small cell per builtin scenario, every collector on.
std::vector<core::ExperimentCell> zoo_grid() {
  std::vector<core::ExperimentCell> cells;
  for (const auto& name : builtin_scenario_names()) {
    core::ExperimentConfig config;
    config.workload = scenario_spec(name);
    config.workload.gen.target_requests = 2'000;
    config.policy = core::PolicyKind::kPrord;
    config.obs.metrics = true;
    config.obs.sample_interval = sim::msec(500);
    cells.push_back(core::ExperimentCell{name, config});
  }
  return cells;
}

std::string render_all(const std::vector<core::CellResult>& results) {
  return core::render_metrics(results, /*csv=*/false) +
         core::render_metrics(results, /*csv=*/true) +
         core::render_series_csv(results);
}

TEST(ZooDeterminism, ScenarioExportsByteIdenticalAcrossJobCounts) {
  core::RunnerOptions options;
  options.replications = 2;
  const auto cells = zoo_grid();

  options.jobs = 1;
  const auto serial = render_all(core::run_cells(cells, options));
  ASSERT_FALSE(serial.empty());

  options.jobs = 4;
  EXPECT_EQ(render_all(core::run_cells(cells, options)), serial);
}

TEST(ZooDeterminism, EmittedTraceIsReproducible) {
  // The `prord_zoo emit` path: same profile + seed => byte-identical CLF.
  const auto emit = [] {
    auto spec = scenario_spec("cdn-flash");
    spec.gen.target_requests = 3'000;
    std::stringstream out;
    trace::write_clf(out, trace::build(spec).trace.records);
    return out.str();
  };
  const auto first = emit();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(emit(), first);
}

TEST(ZooDeterminism, DriftingScenarioShiftsItsHotSet) {
  // The acceptance hook for "--scenario X exhibits measurable drift": the
  // cdn-flash trace's most-requested pages in the first phase and the
  // last phase must differ substantially (the generator honors the
  // fitted PhaseProfile, which the adaptation bench then reacts to).
  auto spec = scenario_spec("cdn-flash");
  spec.gen.target_requests = 8'000;
  const auto built = trace::build(spec);
  const auto& recs = built.trace.records;
  ASSERT_GT(recs.size(), 1'000u);

  const auto top_pages = [&](double lo, double hi) {
    const auto t0 = recs.front().time, t1 = recs.back().time;
    std::unordered_map<std::string, std::size_t> counts;
    for (const auto& r : recs) {
      const double pos = static_cast<double>(r.time - t0) /
                         static_cast<double>(t1 - t0 + 1);
      if (pos >= lo && pos < hi && r.url.find(".html") != std::string::npos)
        ++counts[r.url];
    }
    std::vector<std::pair<std::size_t, std::string>> ranked;
    for (auto& [url, c] : counts) ranked.emplace_back(c, url);
    std::sort(ranked.rbegin(), ranked.rend());
    std::set<std::string> top;
    for (std::size_t i = 0; i < ranked.size() && i < 20; ++i)
      top.insert(ranked[i].second);
    return top;
  };

  const auto first = top_pages(0.0, 0.33);
  const auto last = top_pages(0.67, 1.0);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(last.empty());
  std::size_t shared = 0;
  for (const auto& url : first) shared += last.count(url);
  // 3 phases at rotation 0.45: well under half the early hot set survives.
  EXPECT_LT(shared, first.size() / 2);
}

}  // namespace
}  // namespace prord::zoo
