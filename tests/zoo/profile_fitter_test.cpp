// ProfileFitter: Zipf MLE unit behavior and the fit round-trip property —
// generate a trace from a known profile, re-mine and re-fit it, and
// recover the headline parameters within tolerance.
//
// Tolerances are deliberately wide where the measured observable differs
// from the generator parameter by construction: the fitter measures
// request-level popularity (entry-skew plus navigation bias), page-view
// dynamics (not page-universe fractions), and hot-set *mass* rotation
// (the generator's DriftSpec rotation is a cyclic hot-set replacement, so
// the estimate saturates high). What must hold tightly: stationary
// sources fit as stationary, drifting sources as drifting, flash crowds
// are detected, and the session/think/diurnal shapes land close.
#include "zoo/profile_fitter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "trace/models.h"
#include "zoo/scenario_registry.h"

namespace prord::zoo {
namespace {

TEST(ZipfMle, RecoversKnownExponent) {
  for (const double alpha : {0.7, 1.0, 1.4}) {
    std::vector<std::uint64_t> counts;
    for (int r = 1; r <= 400; ++r) {
      const auto c = static_cast<std::uint64_t>(
          std::llround(100000.0 / std::pow(r, alpha)));
      counts.push_back(c > 0 ? c : 1);
    }
    EXPECT_NEAR(fit_zipf_alpha_mle(counts), alpha, 0.1) << "alpha " << alpha;
  }
}

TEST(ZipfMle, DegenerateInputsReturnZero) {
  EXPECT_EQ(fit_zipf_alpha_mle({}), 0.0);
  const std::vector<std::uint64_t> two{10, 5};
  EXPECT_EQ(fit_zipf_alpha_mle(two), 0.0);
}

TEST(ProfileFitter, ThrowsOnTinyLogs) {
  const std::vector<trace::LogRecord> none;
  MinedTemplates empty;
  EXPECT_THROW(fit_profile(none, empty), std::runtime_error);
}

/// Generates a trace from `source` (at its native request volume unless
/// overridden — the phase/diurnal analysis needs the full-density trace,
/// its segment count scales with page views) and fits it back.
WorkloadProfile refit(const WorkloadProfile& source, std::uint64_t seed,
                      std::uint64_t requests = 0,
                      FitDiagnostics* diag = nullptr) {
  auto p = source;
  p.seed = seed;
  if (requests > 0) p.target_requests = requests;
  const auto built = trace::build(to_workload_spec(p));
  TemplateMiner miner;
  for (const auto& rec : built.trace.records) miner.observe(rec);
  return fit_profile(built.trace.records, miner.mine(), {}, diag);
}

TEST(ProfileFitter, RoundTripRecoversEcommerceAcrossSeeds) {
  // Seeds are chosen so the generated trace spans the first phase
  // boundary: the generator stops at target_requests, and a seed whose
  // heavy sessions exhaust the budget early leaves no drift evidence in
  // the log at all (nothing to recover).
  const auto source = builtin_profile("ecommerce-diurnal");
  for (const std::uint64_t seed : {7700u, 11u, 33u}) {
    FitDiagnostics diag;
    const auto fitted = refit(source, seed, 0, &diag);
    SCOPED_TRACE("seed " + std::to_string(seed));

    EXPECT_GT(diag.sessions, 100u);
    EXPECT_GT(diag.think_samples, 8u);

    // Popularity skew: request-level measurement vs entry-skew parameter.
    EXPECT_NEAR(fitted.zipf_alpha, source.zipf_alpha, 0.5);
    // Session length (geometric mean page views).
    EXPECT_NEAR(fitted.mean_pages_per_session, source.mean_pages_per_session,
                3.0);
    // Think-time fit: bounded-Pareto with sane ordering and a tail index
    // inside the fitter's clamp range.
    EXPECT_LT(fitted.think_lo_sec, fitted.think_hi_sec);
    EXPECT_GE(fitted.think_alpha, 0.6);
    EXPECT_LE(fitted.think_alpha, 3.0);
    // The source rotates its catalog across 2 phases and swings
    // diurnally: the fit must classify it as drifting and see a clearly
    // nonzero swing (the trace may cover a partial cycle, which bounds
    // how exactly the amplitude can come back).
    EXPECT_TRUE(fitted.phase.drifting());
    EXPECT_GE(fitted.phase.rotation, 0.2);
    EXPECT_GE(fitted.phase.diurnal_amplitude, 0.2);
    EXPECT_LE(fitted.phase.diurnal_amplitude, 0.85);
  }
}

TEST(ProfileFitter, StationarySourceFitsAsStationary) {
  const auto source = builtin_profile("api-gateway");
  const auto fitted = refit(source, 7u);
  EXPECT_FALSE(fitted.phase.drifting());
  EXPECT_EQ(fitted.phase.phases, 1u);
  EXPECT_LE(fitted.phase.flash_multiplier, 1.5);
  // Dynamic-heavy source shows a clearly nonzero dynamic page-view share
  // (measured on page views, not the page universe, hence no equality).
  EXPECT_GT(fitted.dynamic_fraction, 0.05);
}

TEST(ProfileFitter, FlashCrowdDetectedOnCdnSource) {
  const auto source = builtin_profile("cdn-flash");
  FitDiagnostics diag;
  const auto fitted = refit(source, 5u, 0, &diag);
  // Phase kickoff spikes: the rate analysis must flag a flash crowd and
  // the rotation analysis must keep the profile drifting.
  EXPECT_GT(diag.flash_ratio, 2.0);
  EXPECT_GT(fitted.phase.flash_multiplier, 2.0);
  EXPECT_GT(fitted.phase.flash_duration_sec, 0.0);
  EXPECT_TRUE(fitted.phase.drifting());
  // Static CDN content: essentially no dynamic page views.
  EXPECT_LT(fitted.dynamic_fraction, 0.05);
}

TEST(ProfileFitter, FitIsDeterministic) {
  const auto source = builtin_profile("ecommerce-diurnal");
  const auto a = refit(source, 11u, 6'000);
  const auto b = refit(source, 11u, 6'000);
  EXPECT_EQ(profile_to_json(a).dump(), profile_to_json(b).dump());
}

}  // namespace
}  // namespace prord::zoo
