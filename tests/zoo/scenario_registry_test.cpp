// ScenarioRegistry: builtin catalog, JSON round-trips, file resolution,
// and the generator bridge that --scenario rides on.
#include "zoo/scenario_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace prord::zoo {
namespace {

TEST(ScenarioRegistry, BuiltinCatalogIsSortedAndResolvable) {
  const auto names = builtin_scenario_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "api-gateway");
  EXPECT_EQ(names[1], "cdn-flash");
  EXPECT_EQ(names[2], "ecommerce-diurnal");
  for (const auto& name : names) {
    const auto p = builtin_profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_EQ(p.source, "builtin");
    EXPECT_GT(p.target_requests, 0u);
    EXPECT_FALSE(p.templates.empty());
  }
  EXPECT_THROW(builtin_profile("no-such-scenario"), std::runtime_error);
}

TEST(ScenarioRegistry, ProfileJsonRoundTripsByteExact) {
  for (const auto& name : builtin_scenario_names()) {
    const auto p = builtin_profile(name);
    const auto json = profile_to_json(p);
    const auto back = profile_from_json(json);
    EXPECT_EQ(profile_to_json(back).dump(), json.dump()) << name;
  }
}

TEST(ScenarioRegistry, ParseRejectsMissingFields) {
  auto json = profile_to_json(builtin_profile("api-gateway"));
  // Drop a required top-level member and the parse must name the problem.
  util::JsonValue pruned = util::JsonValue::object();
  for (const auto& [key, value] : json.members())
    if (key != "name") pruned.set(key, value);
  EXPECT_THROW(profile_from_json(pruned), std::runtime_error);
}

TEST(ScenarioRegistry, ResolvesNamesAndPaths) {
  const auto registry = ScenarioRegistry::with_builtins();
  EXPECT_EQ(registry.names(), builtin_scenario_names());
  EXPECT_NE(registry.find("cdn-flash"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);

  const auto by_name = registry.resolve("cdn-flash");
  EXPECT_EQ(by_name.name, "cdn-flash");

  // A saved profile resolves by path, identical to its in-memory source.
  const std::string path = "zoo_registry_test_profile.json";
  ASSERT_TRUE(save_profile(by_name, path));
  const auto by_path = registry.resolve(path);
  EXPECT_EQ(profile_to_json(by_path).dump(), profile_to_json(by_name).dump());
  std::remove(path.c_str());

  try {
    registry.resolve("definitely-not-a-scenario");
    FAIL() << "resolve should throw on unknown names";
  } catch (const std::runtime_error& e) {
    // The error must teach: it lists the known scenario names.
    EXPECT_NE(std::string(e.what()).find("cdn-flash"), std::string::npos);
  }
}

TEST(ScenarioRegistry, AddReplacesByName) {
  auto registry = ScenarioRegistry::with_builtins();
  auto custom = builtin_profile("api-gateway");
  custom.target_requests = 123;
  registry.add(custom);
  ASSERT_NE(registry.find("api-gateway"), nullptr);
  EXPECT_EQ(registry.find("api-gateway")->target_requests, 123u);
  EXPECT_EQ(registry.names().size(), 3u);
}

TEST(ScenarioRegistry, GeneratorBridgeCarriesPhaseStructure) {
  const auto p = builtin_profile("cdn-flash");
  const auto spec = to_workload_spec(p);
  EXPECT_EQ(spec.name, "cdn-flash");
  EXPECT_EQ(spec.gen.target_requests, p.target_requests);
  EXPECT_EQ(spec.gen.drift.phases, p.phase.phases);
  EXPECT_DOUBLE_EQ(spec.gen.drift.rotation, p.phase.rotation);
  EXPECT_DOUBLE_EQ(spec.gen.drift.flash_multiplier, p.phase.flash_multiplier);
  EXPECT_DOUBLE_EQ(spec.site.entry_zipf_alpha, p.zipf_alpha);
  EXPECT_EQ(spec.site.sections, p.sections);

  const auto stationary = to_workload_spec(builtin_profile("api-gateway"));
  EXPECT_LE(stationary.gen.drift.phases, 1u);

  // scenario_spec is the one-shot form the --scenario flags use.
  const auto spec2 = scenario_spec("cdn-flash");
  EXPECT_EQ(spec2.name, spec.name);
  EXPECT_EQ(spec2.gen.target_requests, spec.gen.target_requests);
  EXPECT_THROW(scenario_spec("missing-thing"), std::runtime_error);
}

}  // namespace
}  // namespace prord::zoo
