// TemplateMiner: LogClusterC-style clustering of access-log URLs, and its
// determinism contract (dump() is byte-identical regardless of observation
// order — the property the zoo CI job diffs on).
#include "zoo/template_miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace prord::zoo {
namespace {

/// A small synthetic log: one parameterized page family, two static
/// assets, one dynamic endpoint with per-request query strings. Each
/// product id appears once so it falls below min_support and wildcards.
std::vector<std::string> sample_urls() {
  std::vector<std::string> urls;
  for (int i = 0; i < 60; ++i)
    urls.push_back("/product/" + std::to_string(1000 + i) + "/view.html");
  for (int i = 0; i < 30; ++i) urls.push_back("/css/site.css");
  for (int i = 0; i < 20; ++i) urls.push_back("/img/logo.gif");
  for (int i = 0; i < 20; ++i)
    urls.push_back("/search.cgi?q=term" + std::to_string(i));
  return urls;
}

MinedTemplates mine(const std::vector<std::string>& urls,
                    TemplateMinerOptions opts = {}) {
  TemplateMiner miner(opts);
  for (const auto& u : urls) miner.observe(u, 1024);
  return miner.mine();
}

const UrlTemplate* find_template(const MinedTemplates& mined,
                                 std::string_view pattern) {
  for (const auto& t : mined.templates())
    if (t.pattern == pattern) return &t;
  return nullptr;
}

TEST(TemplateMiner, WildcardsInfrequentSegments) {
  const auto mined = mine(sample_urls());
  ASSERT_EQ(mined.lines(), 130u);
  // threshold = max(min_support=2, 0.005 * 130) = 2; every product id
  // appears once, so the family collapses into one wildcard template.
  EXPECT_EQ(mined.support_threshold(), 2u);

  const auto* product = find_template(mined, "/product/*/view.html");
  ASSERT_NE(product, nullptr);
  EXPECT_EQ(product->support, 60u);
  EXPECT_EQ(product->distinct_urls, 60u);
  EXPECT_EQ(product->wildcards, 1u);
  EXPECT_EQ(product->cls, TemplateClass::kParameterized);
}

TEST(TemplateMiner, ClassifiesStaticAndDynamic) {
  const auto mined = mine(sample_urls());

  const auto* css = find_template(mined, "/css/site.css");
  ASSERT_NE(css, nullptr);
  EXPECT_EQ(css->support, 30u);
  EXPECT_EQ(css->distinct_urls, 1u);
  EXPECT_EQ(css->wildcards, 0u);
  EXPECT_EQ(css->cls, TemplateClass::kStatic);

  // The query string is split off before segmenting, so all 20 distinct
  // search URLs share one pattern; the .cgi extension + query strings
  // classify it dynamic.
  const auto* search = find_template(mined, "/search.cgi");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->support, 20u);
  EXPECT_EQ(search->cls, TemplateClass::kDynamic);
  EXPECT_DOUBLE_EQ(search->query_fraction(), 1.0);
}

TEST(TemplateMiner, OutputSortedBySupportThenPattern) {
  const auto mined = mine(sample_urls());
  const auto& ts = mined.templates();
  ASSERT_GE(ts.size(), 2u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (ts[i - 1].support == ts[i].support)
      EXPECT_LT(ts[i - 1].pattern, ts[i].pattern);
    else
      EXPECT_GT(ts[i - 1].support, ts[i].support);
  }
}

TEST(TemplateMiner, ClusterOfMapsSeenAndUnseenUrls) {
  const auto mined = mine(sample_urls());
  const auto product = mined.cluster_of("/product/1007/view.html");
  ASSERT_NE(product, MinedTemplates::kNoCluster);
  EXPECT_EQ(mined.templates()[product].pattern, "/product/*/view.html");
  // An id never observed still lands in the family: the frequent-segment
  // set, not the URL list, defines the mapping.
  EXPECT_EQ(mined.cluster_of("/product/999999/view.html"), product);
  // Structurally alien URLs have no retained pattern.
  EXPECT_EQ(mined.cluster_of("/totally/unknown/path"),
            MinedTemplates::kNoCluster);
}

TEST(TemplateMiner, MaxTemplatesAggregatesTailIntoRest) {
  TemplateMinerOptions opts;
  opts.max_templates = 1;
  const auto mined = mine(sample_urls(), opts);
  ASSERT_EQ(mined.templates().size(), 1u);
  EXPECT_EQ(mined.templates()[0].pattern, "/product/*/view.html");
  // Conservation: kept support + rest == observed lines.
  EXPECT_EQ(mined.templates()[0].support + mined.rest_support(),
            mined.lines());
}

TEST(TemplateMiner, DumpIsByteIdenticalAcrossObservationOrders) {
  auto urls = sample_urls();
  const auto baseline = mine(urls).dump();
  ASSERT_FALSE(baseline.empty());

  std::reverse(urls.begin(), urls.end());
  EXPECT_EQ(mine(urls).dump(), baseline);

  std::mt19937 rng(42);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(urls.begin(), urls.end(), rng);
    EXPECT_EQ(mine(urls).dump(), baseline) << "round " << round;
  }
}

TEST(TemplateMiner, EmptyAndRootUrls) {
  TemplateMiner miner;
  miner.observe("/");
  miner.observe("/");
  miner.observe("");
  const auto mined = miner.mine();
  EXPECT_EQ(mined.lines(), 3u);
  // "/" and "" both segment to nothing and share the root pattern.
  const auto* root = find_template(mined, "/");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->support, 3u);
}

}  // namespace
}  // namespace prord::zoo
