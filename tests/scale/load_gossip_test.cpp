// Deterministic unit tests for the gossip merge math and the seqlocked
// board (docs/SCALING.md). The merge must be a pure function of its
// inputs: idempotent, order-independent, and monotonically decaying with
// snapshot age — those three properties are what make "periodically
// recompute external load from whatever snapshots are readable" safe.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "scale/load_gossip.h"

namespace prord::scale {
namespace {

ShardLoadSnapshot make_snapshot(std::uint32_t shard, std::uint64_t version,
                                std::int64_t published_us,
                                std::vector<std::uint32_t> inflight) {
  ShardLoadSnapshot snap;
  snap.shard = shard;
  snap.backends = static_cast<std::uint32_t>(inflight.size());
  snap.version = version;
  snap.published_us = published_us;
  std::copy(inflight.begin(), inflight.end(), snap.inflight.begin());
  return snap;
}

TEST(GossipDecay, LinearAndClamped) {
  const std::int64_t horizon = 100'000;
  EXPECT_EQ(gossip_decay_num(0, horizon), horizon);          // fresh: full
  EXPECT_EQ(gossip_decay_num(50'000, horizon), 50'000);      // half-way
  EXPECT_EQ(gossip_decay_num(horizon, horizon), 0);          // at horizon
  EXPECT_EQ(gossip_decay_num(horizon + 1, horizon), 0);      // beyond
  EXPECT_EQ(gossip_decay_num(-5, horizon), horizon);         // clock race
}

TEST(GossipDecay, MonotoneInAge) {
  const std::int64_t horizon = 100'000;
  std::int64_t prev = gossip_decay_num(0, horizon);
  for (std::int64_t age = 1; age <= horizon + 10'000; age += 997) {
    const std::int64_t cur = gossip_decay_num(age, horizon);
    EXPECT_LE(cur, prev) << "decay increased at age " << age;
    prev = cur;
  }
  EXPECT_EQ(prev, 0);
}

TEST(GossipMerge, SumsPeersSkipsSelfAndUnpublished) {
  const GossipOptions opts;
  std::vector<ShardLoadSnapshot> snaps = {
      make_snapshot(0, 3, 1000, {10, 20}),  // self: must not count
      make_snapshot(1, 5, 1000, {4, 8}),
      make_snapshot(2, 0, 1000, {100, 100}),  // version 0: never published
      make_snapshot(3, 1, 1000, {1, 2}),
  };
  const auto external = merge_external_load(snaps, /*self_shard=*/0,
                                            /*backends=*/2,
                                            /*now_us=*/1000, opts);
  // Fresh snapshots carry full weight: 4+1 and 8+2.
  EXPECT_EQ(external[0], 5u);
  EXPECT_EQ(external[1], 10u);
}

TEST(GossipMerge, Idempotent) {
  const GossipOptions opts;
  std::vector<ShardLoadSnapshot> snaps = {
      make_snapshot(1, 2, 500, {7, 3, 9}),
      make_snapshot(2, 9, 2500, {1, 0, 4}),
  };
  const auto first =
      merge_external_load(snaps, 0, 3, /*now_us=*/40'000, opts);
  for (int i = 0; i < 10; ++i) {
    const auto again =
        merge_external_load(snaps, 0, 3, /*now_us=*/40'000, opts);
    EXPECT_EQ(again, first) << "merge changed on re-evaluation " << i;
  }
}

TEST(GossipMerge, OrderIndependent) {
  const GossipOptions opts;
  std::vector<ShardLoadSnapshot> snaps = {
      make_snapshot(1, 2, 100, {7, 3}),
      make_snapshot(2, 4, 30'000, {5, 11}),
      make_snapshot(3, 1, 60'000, {13, 2}),
      make_snapshot(4, 8, 99'000, {40, 40}),
  };
  const auto reference =
      merge_external_load(snaps, 0, 2, /*now_us=*/100'000, opts);
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.shard < b.shard; });
  do {
    const auto merged =
        merge_external_load(snaps, 0, 2, /*now_us=*/100'000, opts);
    EXPECT_EQ(merged, reference);
  } while (std::next_permutation(
      snaps.begin(), snaps.end(),
      [](const auto& a, const auto& b) { return a.shard < b.shard; }));
}

TEST(GossipMerge, StaleSnapshotsDecayToZero) {
  GossipOptions opts;
  opts.staleness_us = 10'000;
  std::vector<ShardLoadSnapshot> snaps = {
      make_snapshot(1, 1, /*published_us=*/0, {100, 100}),
  };
  // Contribution shrinks monotonically as the snapshot ages...
  std::uint32_t prev = 0xFFFFFFFFu;
  for (std::int64_t now = 0; now <= opts.staleness_us; now += 1000) {
    const auto external = merge_external_load(snaps, 0, 2, now, opts);
    EXPECT_LE(external[0], prev);
    prev = external[0];
  }
  // ...and a snapshot past the horizon contributes exactly nothing.
  const auto gone =
      merge_external_load(snaps, 0, 2, opts.staleness_us + 1, opts);
  EXPECT_EQ(gone[0], 0u);
  EXPECT_EQ(gone[1], 0u);
}

TEST(GossipBoard, ReadReturnsFalseBeforeFirstPublish) {
  LoadGossipBoard board(4);
  ShardLoadSnapshot out;
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_FALSE(board.read(s, out)) << "shard " << s;
}

TEST(GossipBoard, PublishReadRoundTrip) {
  LoadGossipBoard board(2);
  const ShardLoadSnapshot snap =
      make_snapshot(1, 7, 123'456, {3, 1, 4, 1, 5});
  board.publish(1, snap);
  ShardLoadSnapshot out;
  ASSERT_TRUE(board.read(1, out));
  EXPECT_EQ(out.shard, 1u);
  EXPECT_EQ(out.backends, 5u);
  EXPECT_EQ(out.version, 7u);
  EXPECT_EQ(out.published_us, 123'456);
  EXPECT_EQ(out.inflight, snap.inflight);
  // The other slot is untouched.
  EXPECT_FALSE(board.read(0, out));
}

TEST(GossipBoard, LatestPublishWins) {
  LoadGossipBoard board(1);
  for (std::uint64_t v = 1; v <= 100; ++v)
    board.publish(0, make_snapshot(0, v, static_cast<std::int64_t>(v), {
                                       static_cast<std::uint32_t>(v)}));
  ShardLoadSnapshot out;
  ASSERT_TRUE(board.read(0, out));
  EXPECT_EQ(out.version, 100u);
  EXPECT_EQ(out.inflight[0], 100u);
}

TEST(GossipBoard, MergedExternalMatchesPureMerge) {
  LoadGossipBoard board(3);
  const auto s1 = make_snapshot(1, 2, 1000, {6, 0});
  const auto s2 = make_snapshot(2, 3, 1000, {0, 9});
  board.publish(1, s1);
  board.publish(2, s2);
  const GossipOptions opts;
  std::uint32_t torn = 99;
  const auto via_board = board.merged_external(0, 2, 1000, opts, &torn);
  EXPECT_EQ(torn, 0u);
  const std::vector<ShardLoadSnapshot> snaps = {s1, s2};
  const auto direct = merge_external_load(snaps, 0, 2, 1000, opts);
  EXPECT_EQ(via_board, direct);
  EXPECT_EQ(via_board[0], 6u);
  EXPECT_EQ(via_board[1], 9u);
}

TEST(GossipBoard, RoutingCountersSurviveRoundTrip) {
  LoadGossipBoard board(2);
  ShardLoadSnapshot snap = make_snapshot(0, 4, 50, {2});
  snap.routed = 1111;
  snap.dispatches = 700;
  snap.handoffs = 300;
  snap.forwards = 111;
  board.publish(0, snap);
  ShardLoadSnapshot out;
  ASSERT_TRUE(board.read(0, out));
  EXPECT_EQ(out.routed, 1111u);
  EXPECT_EQ(out.dispatches, 700u);
  EXPECT_EQ(out.handoffs, 300u);
  EXPECT_EQ(out.forwards, 111u);
}

}  // namespace
}  // namespace prord::scale
