// End-to-end tests for the sharded front end (docs/SCALING.md): real
// loopback sockets, N distributor shards on one port, backend worker
// threads, multi-threaded load generation. The contract under test is
// conservation across shards — every issued request is parsed by exactly
// one shard and answered — plus the shard bookkeeping (per-shard
// snapshots, handoff accounting, gossip liveness) and 1-shard parity
// with the unsharded runner.

#include <gtest/gtest.h>

#include <string>

#include "net/live_cluster.h"
#include "scale/sharded_live.h"
#include "trace/models.h"
#include "trace/workload.h"

namespace prord::scale {
namespace {

trace::WorkloadSpec small_spec() {
  trace::WorkloadSpec spec = trace::synthetic_spec(/*seed=*/7);
  spec.gen.target_requests = 3000;
  return spec;
}

net::LiveConfig sharded_config(std::uint32_t shards,
                               core::PolicyKind policy) {
  net::LiveConfig cfg;
  cfg.policy = policy;
  cfg.backends = 2;
  cfg.requests = 2000;
  cfg.concurrency = 8;
  cfg.workload = small_spec();
  cfg.replication_interval = sim::msec(200);
  cfg.shards = shards;
  cfg.gossip_interval_us = 1000;
  cfg.load_threads = 0;  // one generator thread per shard
  return cfg;
}

void expect_conserved(const net::LiveRunResult& r, std::uint32_t shards) {
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.shard_count, shards);
  EXPECT_TRUE(r.conserved());
  EXPECT_TRUE(r.shard_conserved());
  EXPECT_EQ(r.load.issued, 2000u);
  EXPECT_EQ(r.load.completed, 2000u);
  EXPECT_EQ(r.load.failed, 0u);
  ASSERT_EQ(r.shards.size(), shards);
  // The per-shard ledger adds up to the aggregate.
  std::uint64_t requests = 0, routed = 0;
  for (const auto& s : r.shards) {
    requests += s.requests;
    routed += s.routed;
  }
  EXPECT_EQ(requests, r.dist_requests);
  EXPECT_EQ(routed, r.routed);
  EXPECT_EQ(r.routed, r.dist_requests);
}

TEST(ShardedLive, OneShardMatchesRunLiveBehaviour) {
  // shards == 1 is the parity anchor: same assembly as net::run_live,
  // same counters, no gossip, no handoff.
  const net::LiveRunResult r =
      run_live_sharded(sharded_config(1, core::PolicyKind::kPrord));
  expect_conserved(r, 1);
  EXPECT_EQ(r.shards[0].adopted, 0u);
  EXPECT_EQ(r.shards[0].gossip_publishes, 0u);
  // The unsharded runner on the same config conserves identically.
  const net::LiveRunResult plain =
      net::run_live(sharded_config(1, core::PolicyKind::kPrord));
  ASSERT_TRUE(plain.started);
  EXPECT_TRUE(plain.conserved());
  EXPECT_EQ(plain.dist_requests, r.dist_requests);
  EXPECT_EQ(plain.routed, r.routed);
}

TEST(ShardedLive, TwoShardsHandoffModeSpreadsAcceptsConserves) {
  // Forced handoff mode (reuseport off) round-robins accepted fds, so
  // every shard must see traffic — the kernel's reuseport hash offers no
  // such guarantee, which is why this assertion lives here and not in
  // the reuseport test.
  net::LiveConfig cfg = sharded_config(2, core::PolicyKind::kWrr);
  cfg.reuseport = false;
  const net::LiveRunResult r = run_live_sharded(cfg);
  expect_conserved(r, 2);
  EXPECT_FALSE(r.reuseport_used);
  std::uint64_t adopted = 0;
  for (const auto& s : r.shards) {
    EXPECT_GT(s.requests, 0u) << "shard " << s.shard << " starved";
    adopted += s.adopted;
  }
  // Shard 0 accepted everything and handed roughly half across; shard 1
  // has no listener of its own in handoff mode.
  EXPECT_GT(adopted, 0u);
  EXPECT_EQ(r.shards[0].adopted, 0u);
  EXPECT_EQ(r.shards[1].accepts, 0u);
  EXPECT_EQ(r.shards[1].adopted, adopted);
}

TEST(ShardedLive, FourShardsReuseportConservesAndGossips) {
  const net::LiveRunResult r =
      run_live_sharded(sharded_config(4, core::PolicyKind::kPrord));
  expect_conserved(r, 4);
  // Gossip ran on every shard (liveness, not load values — those depend
  // on timing).
  std::uint64_t publishes = 0, merges = 0;
  for (const auto& s : r.shards) {
    publishes += s.gossip_publishes;
    merges += s.gossip_merges;
  }
  EXPECT_GT(publishes, 0u);
  EXPECT_GT(merges, 0u);
}

TEST(ShardedLive, ShardLabeledScrapeAndSlo) {
  net::LiveConfig cfg = sharded_config(2, core::PolicyKind::kLard);
  cfg.reuseport = false;  // deterministic: both shards serve traffic
  const net::LiveRunResult r = run_live_sharded(cfg);
  expect_conserved(r, 2);
  // /metrics carries shard-labeled counters plus the aggregate series
  // the 1-shard dashboards already use.
  EXPECT_NE(r.metrics_scrape.find("prord_scale_shards 2"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find(
                "prord_live_shard_requests_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find(
                "prord_live_shard_requests_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_live_requests_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_live_accepts_total"),
            std::string::npos);
  // /slo aggregates across shards and names the serving shard.
  EXPECT_NE(r.slo_scrape.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(r.slo_scrape.find("\"per_shard\":["), std::string::npos);
  EXPECT_NE(r.slo_scrape.find("\"aggregate\""), std::string::npos);
}

TEST(ShardedLive, TracedSpansCarryShardIds) {
  net::LiveConfig cfg = sharded_config(2, core::PolicyKind::kWrr);
  cfg.reuseport = false;
  cfg.trace_sample_rate = 1.0;
  const net::LiveRunResult r = run_live_sharded(cfg);
  expect_conserved(r, 2);
  ASSERT_GT(r.spans.size(), 0u);
  bool saw_shard1 = false;
  for (const auto& span : r.spans) {
    EXPECT_LT(span.shard, 2u);
    if (span.shard == 1) saw_shard1 = true;
  }
  EXPECT_TRUE(saw_shard1) << "no span ever routed through shard 1";
}

}  // namespace
}  // namespace prord::scale
