// Concurrency torture for the LoadGossipBoard seqlock: N writer threads
// (one per slot, matching the one-writer-per-slot contract) publishing as
// fast as they can while reader threads continuously read() and
// merged_external(). The assertions check the seqlock's actual promise —
// every successful read observes a snapshot some writer really published,
// never a torn mix of two — and the whole test must run clean under
// ThreadSanitizer (CI builds the suite with -fsanitize=thread; the
// atomic-word payload is what makes that possible).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "scale/load_gossip.h"

namespace prord::scale {
namespace {

// Derive every word of a snapshot from (shard, version) so a reader can
// verify integrity: any torn read mixes two versions and breaks the
// relation between version and the derived fields.
ShardLoadSnapshot derived_snapshot(std::uint32_t shard, std::uint64_t version,
                                   std::uint32_t backends) {
  ShardLoadSnapshot snap;
  snap.shard = shard;
  snap.backends = backends;
  snap.version = version;
  snap.published_us = static_cast<std::int64_t>(version * 3 + shard);
  for (std::uint32_t b = 0; b < backends; ++b)
    snap.inflight[b] = static_cast<std::uint32_t>(version + shard * 1000 + b);
  snap.routed = version * 7;
  snap.dispatches = version * 5;
  snap.handoffs = version * 2;
  snap.forwards = version;
  return snap;
}

::testing::AssertionResult snapshot_consistent(const ShardLoadSnapshot& s) {
  const ShardLoadSnapshot want =
      derived_snapshot(s.shard, s.version, s.backends);
  if (s.published_us != want.published_us)
    return ::testing::AssertionFailure()
           << "published_us torn: shard " << s.shard << " v" << s.version;
  for (std::uint32_t b = 0; b < s.backends; ++b) {
    if (s.inflight[b] != want.inflight[b])
      return ::testing::AssertionFailure()
             << "inflight[" << b << "] torn: shard " << s.shard << " v"
             << s.version << " got " << s.inflight[b] << " want "
             << want.inflight[b];
  }
  if (s.routed != want.routed || s.dispatches != want.dispatches ||
      s.handoffs != want.handoffs || s.forwards != want.forwards)
    return ::testing::AssertionFailure()
           << "counters torn: shard " << s.shard << " v" << s.version;
  return ::testing::AssertionSuccess();
}

TEST(GossipTorture, ConcurrentPublishReadMerge) {
  constexpr std::uint32_t kShards = 4;
  constexpr std::uint32_t kBackends = 8;
  constexpr std::uint64_t kPublishes = 20'000;
  LoadGossipBoard board(kShards);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_ok{0};
  std::atomic<std::uint64_t> reads_failed{0};
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> writers;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&board, s] {
      for (std::uint64_t v = 1; v <= kPublishes; ++v)
        board.publish(s, derived_snapshot(s, v, kBackends));
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      ShardLoadSnapshot out;
      std::uint64_t last_version[kShards] = {0};
      while (!stop.load(std::memory_order_acquire)) {
        for (std::uint32_t s = 0; s < kShards; ++s) {
          if (!board.read(s, out)) {
            reads_failed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          reads_ok.fetch_add(1, std::memory_order_relaxed);
          if (!snapshot_consistent(out) || out.shard != s ||
              out.version < last_version[s] || out.version > kPublishes) {
            corrupt.store(true, std::memory_order_release);
            return;
          }
          last_version[s] = out.version;  // versions never go backwards
        }
      }
    });
  }

  // A merger thread exercises the full read-all-and-sum path concurrently.
  std::thread merger([&] {
    const GossipOptions opts{.interval_us = 1, .staleness_us = 1'000'000'000};
    while (!stop.load(std::memory_order_acquire)) {
      std::uint32_t torn = 0;
      const auto ext =
          board.merged_external(0, kBackends, /*now_us=*/0, opts, &torn);
      // With a huge staleness horizon every readable peer contributes its
      // raw inflight; backend 1's external load always exceeds backend
      // 0's by exactly the number of merged peers (inflight[b] = v +
      // 1000*s + b). We can't know v, but the invariant ext[1] >= ext[0]
      // holds for every subset of consistent snapshots.
      if (ext[1] < ext[0]) {
        corrupt.store(true, std::memory_order_release);
        return;
      }
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  merger.join();

  EXPECT_FALSE(corrupt.load()) << "torn or regressed snapshot observed";
  // Correctness only: bounded-retry reads are ALLOWED to fail under
  // contention (on an oversubscribed host a descheduled reader can lose
  // many rounds in a row), but successful reads must never be torn, and
  // some reads must succeed over the whole run.
  EXPECT_GT(reads_ok.load(), 0u);
  (void)reads_failed;

  // Quiescent state: the final snapshot of every slot is the last publish.
  ShardLoadSnapshot out;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(board.read(s, out));
    EXPECT_EQ(out.version, kPublishes);
    EXPECT_TRUE(snapshot_consistent(out));
  }
}

}  // namespace
}  // namespace prord::scale
