#include "trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "trace/models.h"
#include "trace/workload.h"

namespace prord::trace {
namespace {

SiteModel test_site() {
  SiteBuildParams p;
  p.sections = 3;
  p.pages_per_section = 15;
  p.num_groups = 3;
  p.seed = 5;
  return build_site(p);
}

TraceGenParams test_params() {
  TraceGenParams p;
  p.target_requests = 5000;
  p.duration_sec = 600;
  p.seed = 99;
  return p;
}

TEST(Generator, ProducesRequestedVolume) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  EXPECT_GE(t.records.size(), 5000u);
  EXPECT_LT(t.records.size(), 5200u);  // at most one page view of overshoot
}

TEST(Generator, RecordsAreTimeSorted) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  EXPECT_TRUE(std::is_sorted(
      t.records.begin(), t.records.end(),
      [](const LogRecord& a, const LogRecord& b) { return a.time < b.time; }));
}

TEST(Generator, DeterministicForSeed) {
  const auto site = test_site();
  const auto a = generate_trace(site, test_params());
  const auto b = generate_trace(site, test_params());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].time, b.records[i].time);
    EXPECT_EQ(a.records[i].url, b.records[i].url);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto site = test_site();
  auto p1 = test_params();
  auto p2 = test_params();
  p2.seed = 100;
  const auto a = generate_trace(site, p1);
  const auto b = generate_trace(site, p2);
  std::size_t same = 0;
  const std::size_t n = std::min(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < n; ++i)
    same += (a.records[i].url == b.records[i].url);
  EXPECT_LT(same, n / 2);
}

TEST(Generator, AllUrlsBelongToSite) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  std::set<std::string> known;
  for (const auto& p : site.pages()) {
    known.insert(p.url);
    for (const auto& e : p.embedded) known.insert(e.url);
  }
  for (const auto& r : t.records) EXPECT_TRUE(known.count(r.url)) << r.url;
}

TEST(Generator, EmbeddedObjectsFollowTheirPage) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  // For each client, an embedded record must be preceded (not necessarily
  // immediately) by its page's main request.
  std::map<std::string, std::string> owner;  // embedded url -> page url
  for (const auto& p : site.pages())
    for (const auto& e : p.embedded) owner[e.url] = p.url;

  std::map<std::uint32_t, std::set<std::string>> seen_pages;
  std::size_t checked = 0;
  for (const auto& r : t.records) {
    auto it = owner.find(r.url);
    if (it == owner.end()) {
      seen_pages[r.client].insert(r.url);
    } else {
      EXPECT_TRUE(seen_pages[r.client].count(it->second))
          << "embedded " << r.url << " before page " << it->second;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);  // the property was actually exercised
}

TEST(Generator, SessionsNavigateAlongLinks) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  // Reconstruct each client's page-view sequence and verify consecutive
  // pages are linked in the site graph.
  std::map<std::string, PageIndex> page_of;
  for (std::size_t i = 0; i < site.pages().size(); ++i)
    page_of[site.pages()[i].url] = static_cast<PageIndex>(i);

  std::map<std::uint32_t, PageIndex> last;
  std::size_t transitions = 0;
  for (const auto& r : t.records) {
    auto it = page_of.find(r.url);
    if (it == page_of.end()) continue;  // embedded object
    auto lit = last.find(r.client);
    if (lit != last.end()) {
      const auto& links = site.pages()[lit->second].links;
      EXPECT_NE(std::find(links.begin(), links.end(), it->second), links.end())
          << site.pages()[lit->second].url << " -> " << r.url;
      ++transitions;
    }
    last[r.client] = it->second;
  }
  EXPECT_GT(transitions, 500u);
}

TEST(Generator, PopularityIsSkewed) {
  const auto site = test_site();
  auto params = test_params();
  params.target_requests = 20000;
  const auto t = generate_trace(site, params);
  std::map<std::string, std::size_t> hits;
  for (const auto& r : t.records) ++hits[r.url];
  std::vector<std::size_t> counts;
  for (const auto& [url, c] : hits) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // Top 10% of files draw more than 40% of requests (heavy-tailed).
  const std::size_t top = counts.size() / 10;
  std::size_t top_sum = 0, total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < top) top_sum += counts[i];
  }
  EXPECT_GT(static_cast<double>(top_sum) / static_cast<double>(total), 0.4);
}

TEST(Generator, GroupsRecorded) {
  const auto site = test_site();
  const auto t = generate_trace(site, test_params());
  EXPECT_EQ(t.session_group.size(), t.num_sessions);
  for (auto g : t.session_group) EXPECT_LT(g, site.groups().size());
}

TEST(Generator, RejectsZeroTarget) {
  const auto site = test_site();
  TraceGenParams p;
  p.target_requests = 0;
  EXPECT_THROW(generate_trace(site, p), std::invalid_argument);
}

TEST(Generator, FlashEventConcentratesArrivals) {
  const auto site = test_site();
  auto params = test_params();
  params.target_requests = 12000;
  params.duration_sec = 1000;
  params.flash_multiplier = 8.0;
  params.flash_start_sec = 400;
  params.flash_duration_sec = 100;
  const auto t = generate_trace(site, params);
  std::size_t in_flash = 0, before = 0;
  for (const auto& r : t.records) {
    const double sec = sim::to_seconds(r.time);
    if (sec >= 400 && sec < 500) ++in_flash;
    if (sec >= 200 && sec < 300) ++before;  // same-length control window
  }
  EXPECT_GT(in_flash, 3 * before);
}

TEST(Generator, DiurnalModulationSwingsTheRate) {
  const auto site = test_site();
  auto params = test_params();
  params.target_requests = 20000;
  params.duration_sec = 2000;
  params.diurnal_amplitude = 0.9;
  params.diurnal_period_sec = 2000;  // one full cycle over the trace
  const auto t = generate_trace(site, params);
  // First half (sin > 0) must carry clearly more than the second half.
  std::size_t first = 0, second = 0;
  for (const auto& r : t.records) {
    const double sec = sim::to_seconds(r.time);
    if (sec < 1000)
      ++first;
    else if (sec < 2000)
      ++second;
  }
  EXPECT_GT(first, second + second / 2);
}

TEST(Generator, ModulationRejectsBadParams) {
  const auto site = test_site();
  auto params = test_params();
  params.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(site, params), std::invalid_argument);
  params = test_params();
  params.flash_multiplier = 0.5;
  EXPECT_THROW(generate_trace(site, params), std::invalid_argument);
}

TEST(Generator, UnmodulatedPathUnchangedByNewKnobs) {
  const auto site = test_site();
  const auto a = generate_trace(site, test_params());
  auto params = test_params();
  params.diurnal_period_sec = 123.0;  // irrelevant while amplitude is 0
  const auto b = generate_trace(site, params);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); i += 97)
    EXPECT_EQ(a.records[i].time, b.records[i].time);
}

TEST(PaperModels, CsDeptMatchesPublishedShape) {
  const auto spec = cs_dept_spec();
  auto built = build(spec);
  const auto w = build_workload(built.trace.records);
  EXPECT_GE(built.trace.records.size(), 27'000u);
  // Site universe of ~4,700 files (paper: "4,700 files of average size
  // 12Kb"); the 27k-request trace touches a large subset of them.
  EXPECT_GT(built.site.num_files(), 4'200u);
  EXPECT_LT(built.site.num_files(), 5'300u);
  EXPECT_GT(w.files.count(), 1'500u);
  // Mean file size ~12 KB (within 35% — lognormal sampling noise).
  const double mean_size =
      static_cast<double>(built.site.total_bytes()) / built.site.num_files();
  EXPECT_GT(mean_size, 12.0 * 1024 * 0.65);
  EXPECT_LT(mean_size, 12.0 * 1024 * 1.35);
}

TEST(PaperModels, SyntheticMatchesPublishedShape) {
  auto built = build(synthetic_spec());
  EXPECT_GE(built.trace.records.size(), 30'000u);
  EXPECT_GT(built.site.num_files(), 2'500u);
  EXPECT_LT(built.site.num_files(), 3'600u);
}

TEST(PaperModels, WorldCupScalesRequestCount) {
  const auto spec = world_cup_spec(0.01);
  auto built = build(spec);
  EXPECT_GE(built.trace.records.size(), 8'000u);  // ~0.01 * 897k
  EXPECT_LT(built.trace.records.size(), 12'000u);
  EXPECT_THROW(world_cup_spec(0.0), std::invalid_argument);
  EXPECT_THROW(world_cup_spec(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace prord::trace
