#include "trace/clf.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prord::trace {
namespace {

TEST(ClfTimestamp, ParsesKnownValue) {
  // 1998-06-18 00:00:12 UTC = 898128012 epoch seconds.
  const auto us = parse_clf_timestamp("18/Jun/1998:00:00:12 +0000");
  ASSERT_TRUE(us.has_value());
  EXPECT_EQ(*us, 898128012LL * 1'000'000);
}

TEST(ClfTimestamp, HonorsTimezoneOffset) {
  const auto utc = parse_clf_timestamp("10/Oct/2000:13:55:36 +0000");
  const auto pst = parse_clf_timestamp("10/Oct/2000:13:55:36 -0700");
  ASSERT_TRUE(utc && pst);
  EXPECT_EQ(*pst - *utc, 7LL * 3600 * 1'000'000);
}

TEST(ClfTimestamp, RoundTripsThroughFormat) {
  const char* kStamp = "05/Mar/2004:23:59:59 +0000";
  const auto us = parse_clf_timestamp(kStamp);
  ASSERT_TRUE(us.has_value());
  EXPECT_EQ(format_clf_timestamp(*us), kStamp);
}

TEST(ClfTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_clf_timestamp(""));
  EXPECT_FALSE(parse_clf_timestamp("18-Jun-1998:00:00:12 +0000"));
  EXPECT_FALSE(parse_clf_timestamp("18/Xxx/1998:00:00:12 +0000"));
  EXPECT_FALSE(parse_clf_timestamp("aa/Jun/1998:00:00:12 +0000"));
  EXPECT_FALSE(parse_clf_timestamp("18/Jun/1998:00:00:12X+0000"));
  EXPECT_FALSE(parse_clf_timestamp("18/Jun/1998:00:00:12 0000"));
  EXPECT_FALSE(parse_clf_timestamp("18/Jun/1998:24:00:12 +0000"));
  EXPECT_FALSE(parse_clf_timestamp("32/Jun/1998:00:00:12 +0000"));
  EXPECT_FALSE(parse_clf_timestamp("00/Jun/1998:00:00:12 +0000"));
}

TEST(ClfTimestamp, ToleratesMissingTimezoneAsUtc) {
  // Some log shippers strip the timezone; the bare form reads as UTC.
  const auto bare = parse_clf_timestamp("18/Jun/1998:00:00:12");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(*bare, 898128012LL * 1'000'000);
  EXPECT_EQ(*bare, *parse_clf_timestamp("18/Jun/1998:00:00:12 +0000"));
}

TEST(ClfParser, ParsesCanonicalLine) {
  ClfParser p;
  const auto rec = p.parse_line(
      R"(host1.example.com - - [18/Jun/1998:00:00:12 +0000] "GET /index.html HTTP/1.0" 200 3185)");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->url, "/index.html");
  EXPECT_EQ(rec->status, 200);
  EXPECT_EQ(rec->bytes, 3185u);
  EXPECT_EQ(rec->client, 0u);
  EXPECT_EQ(p.host(0), "host1.example.com");
}

TEST(ClfParser, AssignsDenseClientIds) {
  ClfParser p;
  const char* kFmt =
      R"( - - [18/Jun/1998:00:00:12 +0000] "GET / HTTP/1.0" 200 1)";
  auto a = p.parse_line(std::string("alpha") + kFmt);
  auto b = p.parse_line(std::string("beta") + kFmt);
  auto a2 = p.parse_line(std::string("alpha") + kFmt);
  ASSERT_TRUE(a && b && a2);
  EXPECT_EQ(a->client, 0u);
  EXPECT_EQ(b->client, 1u);
  EXPECT_EQ(a2->client, 0u);
  EXPECT_EQ(p.num_hosts(), 2u);
}

TEST(ClfParser, TimeRebasedToFirstRecord) {
  ClfParser p;
  auto a = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /a HTTP/1.0" 200 1)");
  auto b = p.parse_line(
      R"(h - - [18/Jun/1998:00:01:12 +0000] "GET /b HTTP/1.0" 200 1)");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->time, 0);
  EXPECT_EQ(b->time, 60'000'000);
}

TEST(ClfParser, DashBytesMeansZero) {
  ClfParser p;
  const auto rec = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /x HTTP/1.0" 304 -)");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->bytes, 0u);
  EXPECT_EQ(rec->status, 304);
  EXPECT_FALSE(rec->ok());
}

TEST(ClfParser, RejectsGarbage) {
  ClfParser p;
  EXPECT_FALSE(p.parse_line(""));
  EXPECT_FALSE(p.parse_line("not a log line"));
  EXPECT_FALSE(p.parse_line(R"(h - - [bad] "GET / HTTP/1.0" 200 1)"));
  EXPECT_FALSE(p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET / HTTP/1.0" 99x 1)"));
}

TEST(ClfParser, ParsesCombinedFormatAndIpv6) {
  // NCSA combined format appends "referrer" "user-agent"; IPv6 hosts and
  // hostnames are plain tokens. Both must parse as ordinary CLF.
  ClfParser p;
  const auto rec = p.parse_line(
      R"x(2001:db8::8a2e:370:7334 - - [18/Jun/1998:00:00:12 +0000] )x"
      R"x("GET /a.html HTTP/1.1" 200 512 "http://ref.example.com/" )x"
      R"x("Mozilla/5.0 (X11; Linux)")x");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->url, "/a.html");
  EXPECT_EQ(rec->bytes, 512u);
  EXPECT_EQ(p.host(rec->client), "2001:db8::8a2e:370:7334");
  EXPECT_EQ(p.malformed_lines(), 0u);
}

TEST(ClfParser, KeepsQueryStringsAndDecodesEscapes) {
  ClfParser p;
  const auto q = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /search.cgi?q=a+b&x=1 HTTP/1.1" 200 10)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->url, "/search.cgi?q=a+b&x=1");

  const auto esc = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /docs/annual%20report.pdf HTTP/1.1" 200 10)");
  ASSERT_TRUE(esc.has_value());
  EXPECT_EQ(esc->url, "/docs/annual report.pdf");

  // %2F and %25 keep their escaped form: decoding would change path
  // structure / re-escape meaning.
  const auto keep = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /a%2Fb%25c.html HTTP/1.1" 200 10)");
  ASSERT_TRUE(keep.has_value());
  EXPECT_EQ(keep->url, "/a%2Fb%25c.html");
}

TEST(ClfParser, RecoversAbsoluteFormUrls) {
  // Proxy logs carry absolute-form request targets; the path is kept.
  ClfParser p;
  const auto rec = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET http://www.example.com:8080/x/y.html HTTP/1.0" 200 10)");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->url, "/x/y.html");

  const auto bare = p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET http://www.example.com HTTP/1.0" 200 10)");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->url, "/");
}

TEST(ClfParser, CountsBadEscapeAndBadUrl) {
  ClfParser p;
  EXPECT_FALSE(p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /bad%zz.html HTTP/1.1" 200 10)"));
  EXPECT_FALSE(p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /trunc%4 HTTP/1.1" 200 10)"));
  EXPECT_EQ(p.skips().bad_escape, 2u);
  EXPECT_FALSE(p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "CONNECT db.example.com:443 HTTP/1.1" 200 10)"));
  EXPECT_FALSE(p.parse_line(
      R"(h - - [18/Jun/1998:00:00:12 +0000] "OPTIONS * HTTP/1.0" 200 0)"));
  EXPECT_EQ(p.skips().bad_url, 2u);
  EXPECT_EQ(p.malformed_lines(), 4u);
}

TEST(ClfNormalizeUrl, CategorizesRejections) {
  const char* why = nullptr;
  EXPECT_FALSE(normalize_clf_url("www.example.com:443", &why));
  EXPECT_STREQ(why, "bad_url");
  EXPECT_FALSE(normalize_clf_url("/has\x01control", &why));
  EXPECT_STREQ(why, "bad_url");
  EXPECT_FALSE(normalize_clf_url("/x%G1", &why));
  EXPECT_STREQ(why, "bad_escape");
  // Escapes that would decode to control bytes stay escaped (printable URL).
  const auto ctl = normalize_clf_url("/a%00b.html");
  ASSERT_TRUE(ctl.has_value());
  EXPECT_EQ(*ctl, "/a%00b.html");
}

TEST(ClfRoundTrip, WriteThenParsePreservesRecords) {
  std::vector<LogRecord> recs;
  for (int i = 0; i < 50; ++i) {
    LogRecord r;
    r.time = i * 123'456;  // sub-second offsets survive via the ident field
    r.client = static_cast<std::uint32_t>(i % 7);
    r.url = "/page" + std::to_string(i % 5) + ".html";
    r.bytes = static_cast<std::uint32_t>(100 + i);
    r.status = 200;
    recs.push_back(r);
  }
  std::stringstream ss;
  write_clf(ss, recs);

  ClfParser p;
  const auto parsed = p.parse_stream(ss);
  ASSERT_EQ(parsed.size(), recs.size());
  EXPECT_EQ(p.malformed_lines(), 0u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(parsed[i].time, recs[i].time) << i;
    EXPECT_EQ(parsed[i].url, recs[i].url) << i;
    EXPECT_EQ(parsed[i].bytes, recs[i].bytes) << i;
    EXPECT_EQ(parsed[i].status, recs[i].status) << i;
  }
  // Client identity is preserved as a partition (ids may be renumbered).
  for (std::size_t i = 0; i < recs.size(); ++i)
    for (std::size_t j = 0; j < recs.size(); ++j)
      EXPECT_EQ(recs[i].client == recs[j].client,
                parsed[i].client == parsed[j].client);
}

TEST(ClfParser, StreamSkipsMalformedAndCounts) {
  std::stringstream ss;
  ss << R"(h - - [18/Jun/1998:00:00:12 +0000] "GET /a HTTP/1.0" 200 10)"
     << "\nthis line is garbage\n"
     << R"(h - - [18/Jun/1998:00:00:13 +0000] "GET /b HTTP/1.0" 200 20)"
     << "\n";
  ClfParser p;
  const auto recs = p.parse_stream(ss);
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_EQ(p.malformed_lines(), 1u);
}

}  // namespace
}  // namespace prord::trace
