#include "trace/site_model.h"

#include <gtest/gtest.h>

#include <set>

namespace prord::trace {
namespace {

SiteBuildParams small_params() {
  SiteBuildParams p;
  p.sections = 3;
  p.pages_per_section = 10;
  p.num_groups = 3;
  p.seed = 11;
  return p;
}

TEST(SiteBuilder, PageCountMatchesStructure) {
  const auto site = build_site(small_params());
  // root + 3 section indexes + 3*10 content pages
  EXPECT_EQ(site.pages().size(), 1u + 3u + 30u);
  EXPECT_EQ(site.num_sections(), 3u);
}

TEST(SiteBuilder, AllLinksValid) {
  const auto site = build_site(small_params());
  for (const auto& p : site.pages())
    for (PageIndex l : p.links) EXPECT_LT(l, site.pages().size());
}

TEST(SiteBuilder, NoSelfLinksNoDuplicates) {
  const auto site = build_site(small_params());
  for (std::size_t i = 0; i < site.pages().size(); ++i) {
    const auto& links = site.pages()[i].links;
    std::set<PageIndex> uniq(links.begin(), links.end());
    EXPECT_EQ(uniq.size(), links.size()) << "page " << i;
  }
}

TEST(SiteBuilder, EveryContentPageReachableFromRoot) {
  const auto site = build_site(small_params());
  std::vector<bool> seen(site.pages().size(), false);
  std::vector<PageIndex> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const PageIndex p = stack.back();
    stack.pop_back();
    for (PageIndex l : site.pages()[p].links)
      if (!seen[l]) {
        seen[l] = true;
        stack.push_back(l);
      }
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_TRUE(seen[i]) << "page " << i << " unreachable";
}

TEST(SiteBuilder, UrlsAreUnique) {
  const auto site = build_site(small_params());
  std::set<std::string> urls;
  for (const auto& p : site.pages()) {
    EXPECT_TRUE(urls.insert(p.url).second) << p.url;
    for (const auto& e : p.embedded)
      EXPECT_TRUE(urls.insert(e.url).second) << e.url;
  }
}

TEST(SiteBuilder, EmbeddedObjectsLookEmbedded) {
  const auto site = build_site(small_params());
  for (const auto& p : site.pages()) {
    EXPECT_NE(p.url.find(".html"), std::string::npos);
    for (const auto& e : p.embedded) {
      const bool img = e.url.find(".gif") != std::string::npos ||
                       e.url.find(".jpg") != std::string::npos ||
                       e.url.find(".png") != std::string::npos;
      EXPECT_TRUE(img) << e.url;
    }
  }
}

TEST(SiteBuilder, GroupVectorsWellFormed) {
  const auto site = build_site(small_params());
  ASSERT_EQ(site.groups().size(), 3u);
  for (const auto& g : site.groups()) {
    EXPECT_EQ(g.entry_weights.size(), site.pages().size());
    EXPECT_EQ(g.page_affinity.size(), site.pages().size());
    double total = 0;
    for (double w : g.entry_weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(SiteBuilder, GroupsPreferTheirHomeSection) {
  auto params = small_params();
  params.group_affinity = 8.0;
  const auto site = build_site(params);
  for (std::size_t g = 0; g < site.groups().size(); ++g) {
    const auto home = static_cast<std::uint32_t>(g % site.num_sections());
    double in_home = 0, out_home = 0;
    std::size_t n_in = 0, n_out = 0;
    for (std::size_t p = 0; p < site.pages().size(); ++p) {
      if (site.pages()[p].section == home) {
        in_home += site.groups()[g].page_affinity[p];
        ++n_in;
      } else {
        out_home += site.groups()[g].page_affinity[p];
        ++n_out;
      }
    }
    EXPECT_GT(in_home / n_in, out_home / n_out);
  }
}

TEST(SiteBuilder, DeterministicForSeed) {
  const auto a = build_site(small_params());
  const auto b = build_site(small_params());
  ASSERT_EQ(a.pages().size(), b.pages().size());
  for (std::size_t i = 0; i < a.pages().size(); ++i) {
    EXPECT_EQ(a.pages()[i].url, b.pages()[i].url);
    EXPECT_EQ(a.pages()[i].bytes, b.pages()[i].bytes);
    EXPECT_EQ(a.pages()[i].links, b.pages()[i].links);
  }
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
}

TEST(SiteBuilder, TotalBytesAndFileCountConsistent) {
  const auto site = build_site(small_params());
  std::uint64_t bytes = 0;
  std::size_t files = 0;
  for (const auto& p : site.pages()) {
    bytes += p.bytes;
    ++files;
    for (const auto& e : p.embedded) {
      bytes += e.bytes;
      ++files;
    }
  }
  EXPECT_EQ(site.total_bytes(), bytes);
  EXPECT_EQ(site.num_files(), files);
}

TEST(SiteBuilder, RejectsEmptySite) {
  SiteBuildParams p;
  p.sections = 0;
  EXPECT_THROW(build_site(p), std::invalid_argument);
}

TEST(SiteModel, ValidatesConstruction) {
  std::vector<Page> pages(1);
  pages[0].url = "/";
  pages[0].links.push_back(5);  // dangling
  std::vector<UserGroup> groups(1);
  groups[0].entry_weights.assign(1, 1.0);
  groups[0].page_affinity.assign(1, 1.0);
  EXPECT_THROW(SiteModel(std::move(pages), std::move(groups), 1),
               std::invalid_argument);
}

TEST(SiteModel, MeanRequestsPerViewCountsEmbedded) {
  std::vector<Page> pages(2);
  pages[0].url = "/a.html";
  pages[1].url = "/b.html";
  pages[1].embedded.push_back({"/b.gif", 100});
  pages[1].embedded.push_back({"/b2.gif", 100});
  std::vector<UserGroup> groups(1);
  groups[0].entry_weights.assign(2, 1.0);
  groups[0].page_affinity.assign(2, 1.0);
  SiteModel site(std::move(pages), std::move(groups), 1);
  EXPECT_DOUBLE_EQ(site.mean_requests_per_view(), 2.0);  // (1 + 3) / 2
}

}  // namespace
}  // namespace prord::trace
