// Randomized robustness tests for the Common Log Format parser: arbitrary
// byte salads must never crash, and every accepted line must have sane
// fields.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/clf.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace prord::trace {
namespace {

std::string random_garbage(util::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(static_cast<char>(32 + rng.below(95)));  // printable ASCII
  return s;
}

TEST(ClfFuzz, GarbageNeverCrashesAndRarelyParses) {
  util::Rng rng(2026);
  ClfParser parser;
  std::size_t parsed = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto line = random_garbage(rng, 120);
    const auto rec = parser.parse_line(line);
    if (rec) {
      ++parsed;
      EXPECT_LE(rec->status, 999);
      EXPECT_FALSE(rec->url.empty());
    }
  }
  // Random printable strings essentially never look like CLF.
  EXPECT_LT(parsed, 5u);
}

TEST(ClfFuzz, MutatedValidLinesParseOrRejectCleanly) {
  const std::string valid =
      R"(host7 - - [18/Jun/1998:00:10:12 +0000] "GET /a/b.html HTTP/1.1" 200 5120)";
  util::Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    std::string line = valid;
    // Flip 1-3 random characters.
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < flips; ++f)
      line[rng.below(line.size())] = static_cast<char>(32 + rng.below(95));
    ClfParser parser;
    const auto rec = parser.parse_line(line);  // must not crash
    if (rec) {
      EXPECT_LE(rec->status, 999);
      EXPECT_GE(rec->time, 0);
    }
  }
}

TEST(ClfFuzz, TruncationsRejectCleanly) {
  const std::string valid =
      R"(host7 - - [18/Jun/1998:00:10:12 +0000] "GET /a/b.html HTTP/1.1" 200 5120)";
  for (std::size_t len = 0; len < valid.size(); ++len) {
    ClfParser parser;
    const auto rec = parser.parse_line(valid.substr(0, len));
    // Only near-complete prefixes could possibly parse (missing bytes is
    // missing fields).
    if (rec) EXPECT_GE(len, valid.size() - 6);
  }
}

TEST(ClfFuzz, RandomRecordsRoundTripLosslessly) {
  util::Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<LogRecord> recs;
    sim::SimTime t = 0;
    const std::size_t n = 1 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) {
      LogRecord r;
      t += static_cast<sim::SimTime>(rng.below(10'000'000));
      r.time = t;
      r.client = static_cast<std::uint32_t>(rng.below(20));
      r.url = "/d" + std::to_string(rng.below(9)) + "/f" +
              std::to_string(rng.below(200)) +
              (rng.bernoulli(0.5) ? ".html" : ".gif");
      r.bytes = static_cast<std::uint32_t>(rng.below(1 << 20));
      r.status = rng.bernoulli(0.9) ? 200 : 404;
      recs.push_back(std::move(r));
    }
    std::stringstream ss;
    write_clf(ss, recs);
    ClfParser parser;
    const auto parsed = parser.parse_stream(ss);
    ASSERT_EQ(parsed.size(), recs.size());
    EXPECT_EQ(parser.malformed_lines(), 0u);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(parsed[i].time, recs[i].time);
      EXPECT_EQ(parsed[i].url, recs[i].url);
      EXPECT_EQ(parsed[i].bytes, recs[i].bytes);
      EXPECT_EQ(parsed[i].status, recs[i].status);
    }
  }
}

TEST(ClfFuzz, SkipCountersCategorizeRejections) {
  const struct {
    const char* line;
    const char* category;
  } cases[] = {
      // Garbage / lowercase / oversized methods.
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "get /a HTTP/1.1" 200 10)",
       "bad_request"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "G3T /a HTTP/1.1" 200 10)",
       "bad_request"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GETGETGETGETGETGET /a HTTP/1.1" 200 10)",
       "bad_request"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "/a" 200 10)", "bad_request"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a FTP/1.1" 200 10)",
       "bad_request"},
      // Quote problems.
      {R"(h - - [18/Jun/1998:00:10:12 +0000] GET /a HTTP/1.1 200 10)",
       "missing_quotes"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a HTTP/1.1 200 10)",
       "missing_quotes"},
      // Timestamp problems. (A missing timezone is tolerated as UTC, so it
      // is no longer in this list.)
      {R"(h - - [99/Xxx/1998:00:10:12 +0000] "GET /a HTTP/1.1" 200 10)",
       "bad_timestamp"},
      {R"(h - - [18/Jun/1998:99:10:12 +0000] "GET /a HTTP/1.1" 200 10)",
       "bad_timestamp"},
      // Structural truncation.
      {"h", "truncated"},
      {"h -", "truncated"},
      {R"(h - - "GET /a HTTP/1.1" 200 10)", "truncated"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a HTTP/1.1" 200)",
       "truncated"},
      // Status / bytes fields.
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a HTTP/1.1" 999 10)",
       "bad_status"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a HTTP/1.1" 42 10)",
       "bad_status"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a HTTP/1.1" 200 ten)",
       "bad_bytes"},
      // URL problems: malformed percent-escapes and non-path targets.
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /a%zz.html HTTP/1.1" 200 10)",
       "bad_escape"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "GET /trunc%4 HTTP/1.1" 200 10)",
       "bad_escape"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "CONNECT db:443 HTTP/1.1" 200 10)",
       "bad_url"},
      {R"(h - - [18/Jun/1998:00:10:12 +0000] "OPTIONS * HTTP/1.0" 200 0)",
       "bad_url"},
  };
  for (const auto& c : cases) {
    ClfParser p;
    EXPECT_FALSE(p.parse_line(c.line).has_value()) << c.line;
    EXPECT_EQ(p.malformed_lines(), 1u) << c.line;
    const auto& s = p.skips();
    const std::string_view want = c.category;
    EXPECT_EQ(s.bad_request, want == "bad_request" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.missing_quotes, want == "missing_quotes" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.bad_timestamp, want == "bad_timestamp" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.truncated, want == "truncated" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.bad_status, want == "bad_status" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.bad_bytes, want == "bad_bytes" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.bad_escape, want == "bad_escape" ? 1u : 0u) << c.line;
    EXPECT_EQ(s.bad_url, want == "bad_url" ? 1u : 0u) << c.line;
  }
}

TEST(ClfFuzz, MutatedStreamConservesLineAccounting) {
  // Every non-empty line of a mutated stream must end up either parsed or
  // in exactly one skip bucket: parsed + skips().total() == lines fed.
  const std::string valid =
      R"(host7 - - [18/Jun/1998:00:10:12 +0000] "GET /a/b.html HTTP/1.1" 200 5120)";
  util::Rng rng(2027);
  for (int round = 0; round < 200; ++round) {
    std::stringstream ss;
    std::size_t fed = 0;
    const std::size_t n = 1 + rng.below(50);
    for (std::size_t i = 0; i < n; ++i) {
      std::string line = valid;
      const int flips = static_cast<int>(rng.below(6));  // 0 = keep valid
      for (int f = 0; f < flips; ++f)
        line[rng.below(line.size())] = static_cast<char>(32 + rng.below(95));
      if (!util::trim(line).empty()) ++fed;
      ss << line << '\n';
    }
    ClfParser p;
    const auto recs = p.parse_stream(ss);
    EXPECT_EQ(recs.size() + p.malformed_lines(), fed);
    EXPECT_EQ(p.skips().total(), p.malformed_lines());
  }
}

TEST(ClfFuzz, TruncatedStreamCountsEveryPrefix) {
  const std::string valid =
      R"(host7 - - [18/Jun/1998:00:10:12 +0000] "GET /a/b.html HTTP/1.1" 200 5120)";
  std::stringstream ss;
  std::size_t fed = 0;
  for (std::size_t len = 1; len < valid.size(); ++len) {
    ss << valid.substr(0, len) << '\n';
    ++fed;
  }
  ClfParser p;
  const auto recs = p.parse_stream(ss);
  EXPECT_EQ(recs.size() + p.malformed_lines(), fed);
  // Nearly all prefixes are invalid; the parser must say why.
  EXPECT_GT(p.skips().truncated, 0u);
  EXPECT_GT(p.skips().total(), fed - 5);
}

TEST(ClfFuzz, TimestampRoundTripOverWideRange) {
  util::Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    // 1990..2100, whole seconds (CLF granularity).
    const std::int64_t secs =
        631'152'000LL + static_cast<std::int64_t>(rng.below(3'470'000'000ULL));
    const std::int64_t us = secs * 1'000'000;
    const auto text = format_clf_timestamp(us);
    const auto back = parse_clf_timestamp(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(*back, us) << text;
  }
}

}  // namespace
}  // namespace prord::trace
