#include "trace/worldcup_format.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/workload.h"
#include "util/rng.h"

namespace prord::trace {
namespace {

WorldCupRecord rec(std::uint32_t ts, std::uint32_t client, std::uint32_t obj,
                   std::uint32_t size, WcType type = WcType::kHtml,
                   std::uint8_t status = 2 /* -> 200 */) {
  WorldCupRecord r;
  r.timestamp = ts;
  r.client_id = client;
  r.object_id = obj;
  r.size = size;
  r.status = status;
  r.type = static_cast<std::uint8_t>(type);
  return r;
}

TEST(WorldCupFormat, BinaryRoundTrip) {
  std::vector<WorldCupRecord> in{
      rec(898000000, 7, 42, 1234),
      rec(898000001, 8, 43, 99999, WcType::kImage),
      rec(898000002, 0xFFFFFFFF, 0xDEADBEEF, 0, WcType::kDynamic, 8),
  };
  std::stringstream ss;
  write_worldcup_records(ss, in);
  EXPECT_EQ(ss.str().size(), in.size() * 20);

  bool truncated = true;
  const auto out = read_worldcup_records(ss, &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].timestamp, in[i].timestamp);
    EXPECT_EQ(out[i].client_id, in[i].client_id);
    EXPECT_EQ(out[i].object_id, in[i].object_id);
    EXPECT_EQ(out[i].size, in[i].size);
    EXPECT_EQ(out[i].status, in[i].status);
    EXPECT_EQ(out[i].type, in[i].type);
  }
}

TEST(WorldCupFormat, RandomizedRoundTripProperty) {
  // Property: write(read) is the identity on all 8 fields for arbitrary
  // record values, independent of host endianness (the on-disk layout is
  // explicitly big-endian; the BigEndianLayout test below pins the byte
  // order, this one pins value fidelity).
  util::Rng rng(20260805);
  for (int round = 0; round < 40; ++round) {
    std::vector<WorldCupRecord> in;
    const std::size_t n = 1 + rng.below(1000);
    in.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      WorldCupRecord r;
      r.timestamp = static_cast<std::uint32_t>(rng());
      r.client_id = static_cast<std::uint32_t>(rng());
      r.object_id = static_cast<std::uint32_t>(rng());
      r.size = static_cast<std::uint32_t>(rng());
      r.method = static_cast<std::uint8_t>(rng.below(256));
      r.status = static_cast<std::uint8_t>(rng.below(256));
      r.type = static_cast<std::uint8_t>(rng.below(256));
      r.server = static_cast<std::uint8_t>(rng.below(256));
      in.push_back(r);
    }
    std::stringstream ss;
    write_worldcup_records(ss, in);
    ASSERT_EQ(ss.str().size(), in.size() * 20);

    bool truncated = true;
    const auto out = read_worldcup_records(ss, &truncated);
    EXPECT_FALSE(truncated);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(out[i].timestamp, in[i].timestamp) << "round " << round;
      ASSERT_EQ(out[i].client_id, in[i].client_id);
      ASSERT_EQ(out[i].object_id, in[i].object_id);
      ASSERT_EQ(out[i].size, in[i].size);
      ASSERT_EQ(out[i].method, in[i].method);
      ASSERT_EQ(out[i].status, in[i].status);
      ASSERT_EQ(out[i].type, in[i].type);
      ASSERT_EQ(out[i].server, in[i].server);
    }
  }
}

TEST(WorldCupFormat, RoundTripSurvivesTruncatedTail) {
  util::Rng rng(41);
  std::vector<WorldCupRecord> in;
  for (int i = 0; i < 25; ++i)
    in.push_back(rec(static_cast<std::uint32_t>(rng()),
                     static_cast<std::uint32_t>(rng()),
                     static_cast<std::uint32_t>(rng()),
                     static_cast<std::uint32_t>(rng())));
  std::stringstream full;
  write_worldcup_records(full, in);
  // Chop 1..19 bytes off: the partial trailing record must be dropped and
  // flagged, the complete prefix preserved exactly.
  for (std::size_t chop = 1; chop < 20; ++chop) {
    std::stringstream cut(full.str().substr(0, in.size() * 20 - chop));
    bool truncated = false;
    const auto out = read_worldcup_records(cut, &truncated);
    EXPECT_TRUE(truncated) << "chop " << chop;
    ASSERT_EQ(out.size(), in.size() - 1);
    EXPECT_EQ(out.back().object_id, in[in.size() - 2].object_id);
  }
}

TEST(WorldCupFormat, BigEndianLayout) {
  std::stringstream ss;
  write_worldcup_records(ss, std::vector<WorldCupRecord>{
                                 rec(0x01020304, 0x05060708, 0, 0)});
  const std::string bytes = ss.str();
  ASSERT_EQ(bytes.size(), 20u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 0x05);
}

TEST(WorldCupFormat, TruncatedTrailingRecordDetected) {
  std::vector<WorldCupRecord> in{rec(1, 2, 3, 4)};
  std::stringstream ss;
  write_worldcup_records(ss, in);
  ss << "extra";  // 5 stray bytes
  bool truncated = false;
  const auto out = read_worldcup_records(ss, &truncated);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(truncated);
}

TEST(WorldCupFormat, StatusDecoding) {
  EXPECT_EQ(wc_status_code(2), 200);
  EXPECT_EQ(wc_status_code(8), 206);
  EXPECT_EQ(wc_status_code(19), 404);
  EXPECT_EQ(wc_status_code(13), 304);
  // Version bits in the top of the byte do not disturb the code.
  EXPECT_EQ(wc_status_code(0x80 | 2), 200);
  EXPECT_EQ(wc_status_code(63), 0);  // out of table
}

TEST(WorldCupFormat, ToLogRecordsRebasedAndTyped) {
  std::vector<WorldCupRecord> in{
      rec(898000100, 7, 42, 1234, WcType::kHtml),
      rec(898000101, 7, 43, 555, WcType::kImage),
      rec(898000102, 9, 44, 10, WcType::kDynamic),
  };
  const auto logs = to_log_records(in);
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0].time, 0);
  EXPECT_EQ(logs[1].time, sim::sec(1.0));
  EXPECT_EQ(logs[0].url, "/obj42.html");
  EXPECT_EQ(logs[1].url, "/obj43.gif");
  EXPECT_EQ(logs[2].url, "/obj44.cgi");
  EXPECT_EQ(logs[0].status, 200);
  EXPECT_EQ(logs[0].bytes, 1234u);
  // The synthesized URLs classify correctly downstream.
  EXPECT_FALSE(is_embedded_url(logs[0].url));
  EXPECT_TRUE(is_embedded_url(logs[1].url));
  EXPECT_TRUE(is_dynamic_url(logs[2].url));
}

TEST(WorldCupFormat, FeedsTheWorkloadBuilder) {
  std::vector<WorldCupRecord> in;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const std::uint32_t obj = 100 + i % 17;
    // Type is a property of the object, as in the real trace.
    in.push_back(rec(898000000 + i / 4, i % 9, obj, 500 + i % 3000,
                     obj % 5 == 0 ? WcType::kHtml : WcType::kImage));
  }
  const auto logs = to_log_records(in);
  const auto w = build_workload(logs);
  EXPECT_EQ(w.requests.size(), logs.size());
  EXPECT_EQ(w.files.count(), 17u);
  EXPECT_GT(w.num_connections, 0u);
}

TEST(WorldCupFormat, UnknownTypeGetsFallbackExtension) {
  std::vector<WorldCupRecord> in{rec(1, 1, 1, 1)};
  in[0].type = 200;  // out of enum range
  const auto logs = to_log_records(in);
  EXPECT_EQ(logs[0].url, "/obj1.dat");
}

TEST(WorldCupFormat, EmptyInput) {
  std::stringstream ss;
  EXPECT_TRUE(read_worldcup_records(ss).empty());
  EXPECT_TRUE(to_log_records({}).empty());
}

}  // namespace
}  // namespace prord::trace
