#include "trace/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"
#include "trace/models.h"

namespace prord::trace {
namespace {

TEST(ZipfFit, RecoversKnownExponent) {
  // Synthesize exact Zipf counts: c_k = C / k^alpha.
  for (const double alpha : {0.7, 1.0, 1.4}) {
    std::vector<std::uint64_t> counts;
    for (int k = 1; k <= 100; ++k)
      counts.push_back(static_cast<std::uint64_t>(
          1e6 / std::pow(static_cast<double>(k), alpha)));
    EXPECT_NEAR(fit_zipf_alpha(counts), alpha, 0.05) << alpha;
  }
}

TEST(ZipfFit, UniformCountsGiveZero) {
  std::vector<std::uint64_t> counts(50, 1000);
  EXPECT_NEAR(fit_zipf_alpha(counts), 0.0, 1e-9);
}

TEST(ZipfFit, TooFewRanks) {
  std::vector<std::uint64_t> counts{10, 5};
  EXPECT_EQ(fit_zipf_alpha(counts), 0.0);
  EXPECT_EQ(fit_zipf_alpha({}), 0.0);
}

TEST(ZipfFit, IgnoresZeroTail) {
  std::vector<std::uint64_t> counts{1000, 500, 333, 250, 0, 0, 0};
  EXPECT_NEAR(fit_zipf_alpha(counts), 1.0, 0.05);
}

TEST(Characterize, EmptyWorkload) {
  Workload w;
  const auto s = characterize(w);
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.mean_rps, 0.0);
  EXPECT_EQ(s.embedded_fraction(), 0.0);
}

TEST(Characterize, CountsAndMix) {
  Workload w;
  auto add = [&](sim::SimTime at, const char* url, std::uint32_t bytes) {
    Request r;
    r.at = at;
    r.file = w.files.intern(url, bytes);
    r.bytes = bytes;
    r.is_embedded = is_embedded_url(url);
    r.is_dynamic = !r.is_embedded && is_dynamic_url(url);
    w.requests.push_back(r);
  };
  add(0, "/a.html", 1000);
  add(sim::sec(1.0), "/a.gif", 500);
  add(sim::sec(2.0), "/b.cgi", 2000);
  add(sim::sec(10.0), "/a.html", 1000);
  w.num_connections = 2;
  w.num_clients = 2;

  const auto s = characterize(w);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.distinct_files, 3u);
  EXPECT_EQ(s.total_bytes_transferred, 4500u);
  EXPECT_EQ(s.footprint_bytes, 3500u);
  EXPECT_EQ(s.embedded_requests, 1u);
  EXPECT_EQ(s.dynamic_requests, 1u);
  EXPECT_EQ(s.span, sim::sec(10.0));
  EXPECT_NEAR(s.mean_rps, 0.4, 1e-9);
  EXPECT_NEAR(s.embedded_fraction(), 0.25, 1e-9);
}

TEST(Characterize, SkewMetricsOnGeneratedTrace) {
  auto built = build(synthetic_spec());
  const auto w = build_workload(built.trace.records);
  const auto s = characterize(w);
  // Heavy-tailed: hottest 10% of files draw the majority of requests and
  // far fewer than 90% of files cover 90% of requests.
  EXPECT_GT(s.top10pct_share, 0.5);
  EXPECT_LT(s.files_for_90pct, s.distinct_files / 2);
  EXPECT_GT(s.zipf_alpha, 0.5);
  EXPECT_LT(s.zipf_alpha, 2.5);
  // Bundle-heavy traffic.
  EXPECT_GT(s.embedded_fraction(), 0.4);
}

TEST(Characterize, PaperTraceShapes) {
  // The cs-dept stand-in must match the published aggregate shape (this is
  // the programmatic record of DESIGN.md section 2's substitution).
  auto built = build(cs_dept_spec());
  const auto w = build_workload(built.trace.records);
  const auto s = characterize(w);
  EXPECT_GE(s.requests, 27'000u);
  EXPECT_GT(built.site.num_files(), 4'200u);
  EXPECT_LT(built.site.num_files(), 5'300u);
  const double site_mean_kb = static_cast<double>(built.site.total_bytes()) /
                              built.site.num_files() / 1024.0;
  EXPECT_NEAR(site_mean_kb, 12.0, 4.0);
}

}  // namespace
}  // namespace prord::trace
