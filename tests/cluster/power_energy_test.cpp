// Power-state and energy-accounting sequences (Table 1's power rows).
#include <gtest/gtest.h>

#include "cluster/backend_server.h"

namespace prord::cluster {
namespace {

class PowerTest : public ::testing::Test {
 protected:
  PowerTest() : server_(sim_, 0, params_, 1 << 20, 1 << 18) {}

  void advance_to(sim::SimTime t) {
    sim_.schedule_at(t, [] {});
    sim_.run();
  }

  sim::Simulator sim_;
  ClusterParams params_;
  BackendServer server_;
};

TEST_F(PowerTest, FullPowerBaseline) {
  advance_to(sim::sec(5.0));
  EXPECT_NEAR(server_.energy(sim_.now()), 5.0, 1e-9);
}

TEST_F(PowerTest, OffConsumesNothing) {
  server_.set_power_state(PowerState::kOff);
  advance_to(sim::sec(10.0));
  EXPECT_NEAR(server_.energy(sim_.now()), 0.0, 1e-9);
}

TEST_F(PowerTest, HibernateAtFivePercent) {
  server_.set_power_state(PowerState::kHibernate);
  advance_to(sim::sec(20.0));
  EXPECT_NEAR(server_.energy(sim_.now()), 1.0, 1e-9);  // 20 s * 0.05
}

TEST_F(PowerTest, MixedSequenceAccumulates) {
  advance_to(sim::sec(4.0));                       // 4 s on       -> 4.0
  server_.set_power_state(PowerState::kHibernate);
  advance_to(sim::sec(14.0));                      // 10 s at 5%   -> 0.5
  server_.set_power_state(PowerState::kOff);
  advance_to(sim::sec(24.0));                      // 10 s off     -> 0.0
  server_.set_power_state(PowerState::kOn);
  advance_to(sim::sec(25.0));                      // 1 s on       -> 1.0
  EXPECT_NEAR(server_.energy(sim_.now()), 5.5, 1e-9);
}

TEST_F(PowerTest, RedundantTransitionsAreNoops) {
  server_.set_power_state(PowerState::kOn);
  server_.set_power_state(PowerState::kOn);
  advance_to(sim::sec(2.0));
  EXPECT_NEAR(server_.energy(sim_.now()), 2.0, 1e-9);
}

TEST_F(PowerTest, OffClearsBothCacheRegions) {
  server_.install_replica(1, 1000);   // pinned
  server_.serve(2, 1000, 0, {});      // demand, via disk
  sim_.run();
  ASSERT_TRUE(server_.caches(1));
  ASSERT_TRUE(server_.caches(2));
  server_.set_power_state(PowerState::kOff);
  EXPECT_FALSE(server_.caches(1));
  EXPECT_FALSE(server_.caches(2));
  // Waking gives an empty, working cache.
  server_.set_power_state(PowerState::kOn);
  server_.serve(2, 1000, 0, {});
  sim_.run();
  EXPECT_TRUE(server_.caches(2));
  EXPECT_EQ(server_.stats().disk_reads, 2u);  // re-read after the blackout
}

TEST_F(PowerTest, HibernateKeepsCacheContents) {
  server_.install_replica(1, 1000);
  server_.set_power_state(PowerState::kHibernate);
  EXPECT_TRUE(server_.caches(1));  // DRAM refresh continues in hibernation
  EXPECT_FALSE(server_.available());
  server_.set_power_state(PowerState::kOn);
  EXPECT_TRUE(server_.caches(1));
  EXPECT_TRUE(server_.available());
}

}  // namespace
}  // namespace prord::cluster
