// Greedy-Dual-Size-Frequency replacement tests ([30]/[20] extension).
#include <gtest/gtest.h>

#include "cluster/cache.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace prord::cluster {
namespace {

MemoryCache gdsf(std::uint64_t demand, std::uint64_t pinned = 0) {
  return MemoryCache(demand, pinned, DemandEviction::kGdsf);
}

TEST(Gdsf, BasicHitMiss) {
  auto c = gdsf(10'000);
  EXPECT_FALSE(c.lookup(1));
  c.insert_demand(1, 1000);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_EQ(c.eviction_policy(), DemandEviction::kGdsf);
}

TEST(Gdsf, EvictsLowestPriorityFirst) {
  auto c = gdsf(3000);
  // Same size; file 1 accessed twice (higher frequency) survives.
  c.insert_demand(1, 1000);
  c.insert_demand(2, 1000);
  c.insert_demand(3, 1000);
  EXPECT_TRUE(c.lookup(1));
  c.insert_demand(4, 1000);  // evicts 2 or 3 (freq 1), never 1 (freq 2)
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.stats().demand_evictions, 1u);
}

TEST(Gdsf, PrefersKeepingSmallObjects) {
  auto c = gdsf(10'000);
  c.insert_demand(1, 8000);  // big, priority ~ 1/8
  c.insert_demand(2, 1000);  // small, priority ~ 1
  c.insert_demand(3, 4000);  // needs space: evicts the big one first
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Gdsf, FrequencyOutweighsSizeEventually) {
  auto c = gdsf(10'000);
  c.insert_demand(1, 8000);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(c.lookup(1));  // freq 21
  c.insert_demand(2, 1000);  // freq 1, small: priority 1
  // Big-but-hot (21/8 = 2.6) beats small-but-cold (1.0).
  c.insert_demand(3, 1500);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(Gdsf, InflationClockAgesOldContent) {
  auto c = gdsf(2000);
  c.insert_demand(1, 1000);
  for (int i = 0; i < 50; ++i) c.lookup(1);  // very hot early on
  c.insert_demand(2, 1000);
  // Fill/evict cycles inflate the clock; eventually even the former
  // hot object is displaced by fresh content despite its history.
  for (trace::FileId f = 10; f < 200; ++f) c.insert_demand(f, 1000);
  EXPECT_FALSE(c.contains(1));
}

TEST(Gdsf, CapacityInvariantUnderChurn) {
  auto c = gdsf(20'000, 5'000);
  util::Rng rng(12);
  for (int op = 0; op < 5000; ++op) {
    const auto f = static_cast<trace::FileId>(rng.below(300));
    const auto bytes = 200 + rng.below(3000);
    switch (rng.below(4)) {
      case 0:
        c.insert_demand(f, bytes);
        break;
      case 1:
        c.insert_pinned(f, bytes);
        break;
      case 2:
        c.erase(f);
        break;
      default:
        c.lookup(f);
    }
    ASSERT_LE(c.demand_bytes(), c.demand_capacity());
    ASSERT_LE(c.pinned_bytes(), c.pinned_capacity());
  }
}

TEST(Gdsf, PinnedUpgradeAndEraseKeepIndexConsistent) {
  auto c = gdsf(10'000, 10'000);
  c.insert_demand(1, 1000);
  EXPECT_TRUE(c.insert_pinned(1, 1000));  // upgrade removes GDSF entry
  c.erase(1);
  c.insert_demand(2, 1000);
  c.erase(2);
  c.insert_demand(3, 1000);
  // Forcing evictions must not touch stale index entries.
  for (trace::FileId f = 10; f < 40; ++f) c.insert_demand(f, 1000);
  EXPECT_LE(c.demand_bytes(), c.demand_capacity());
}

TEST(Gdsf, ClearResetsIndex) {
  auto c = gdsf(5000);
  c.insert_demand(1, 1000);
  c.clear();
  EXPECT_EQ(c.num_files(), 0u);
  c.insert_demand(2, 1000);
  EXPECT_TRUE(c.contains(2));
}

// GDSF should beat LRU on a skewed, size-varied workload (the reason [20]
// adopts it): many small hot files + large cold ones.
TEST(Gdsf, BeatsLruOnSkewedSizeVariedWorkload) {
  MemoryCache lru(60'000, 0, DemandEviction::kLru);
  auto gd = gdsf(60'000);
  util::Rng rng(99);
  util::ZipfDistribution zipf(200, 1.0);
  std::vector<std::uint32_t> sizes(200);
  for (auto& s : sizes) s = 500 + static_cast<std::uint32_t>(rng.below(20'000));

  for (int i = 0; i < 30'000; ++i) {
    const auto f = static_cast<trace::FileId>(zipf(rng));
    for (auto* c : {&lru, &gd})
      if (!c->lookup(f)) c->insert_demand(f, sizes[f]);
  }
  EXPECT_GT(gd.stats().hit_rate(), lru.stats().hit_rate());
}

}  // namespace
}  // namespace prord::cluster
