#include "cluster/backend_server.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace prord::cluster {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() : server_(sim_, 0, params_, 1 << 20, 1 << 18) {}

  sim::Simulator sim_;
  ClusterParams params_;
  BackendServer server_;
};

TEST_F(BackendTest, MissPaysDiskHitDoesNot) {
  sim::SimTime first = 0, second = 0;
  server_.serve(1, 1024, 0, [&](sim::SimTime t) { first = t; });
  sim_.run();
  server_.serve(1, 1024, 0, [&](sim::SimTime t) { second = t; });
  const sim::SimTime start2 = sim_.now();
  sim_.run();
  const sim::SimTime miss_latency = first;
  const sim::SimTime hit_latency = second - start2;
  EXPECT_GT(miss_latency, params_.disk_fixed);
  EXPECT_LT(hit_latency, params_.disk_fixed);
  EXPECT_EQ(server_.stats().requests_served, 2u);
  EXPECT_EQ(server_.stats().disk_reads, 1u);
}

TEST_F(BackendTest, ExtraLatencyDelaysCompletion) {
  sim::SimTime base = 0, delayed = 0;
  server_.serve(1, 1024, 0, [&](sim::SimTime t) { base = t; });
  sim_.run();
  BackendServer other(sim_, 1, params_, 1 << 20, 1 << 18);
  other.serve(1, 1024, sim::usec(500), [&](sim::SimTime t) { delayed = t; });
  sim_.run();
  EXPECT_EQ(delayed - sim_.dispatched_events() * 0, delayed);  // sanity
  EXPECT_GE(delayed - base, sim::usec(500));
}

TEST_F(BackendTest, LoadTracksOutstandingRequests) {
  EXPECT_EQ(server_.load(), 0u);
  server_.serve(1, 1024, 0, {});
  server_.serve(2, 1024, 0, {});
  EXPECT_EQ(server_.load(), 2u);
  sim_.run();
  EXPECT_EQ(server_.load(), 0u);
}

TEST_F(BackendTest, ConcurrentMissesShareOneDiskRead) {
  int done = 0;
  for (int i = 0; i < 5; ++i)
    server_.serve(7, 2048, 0, [&](sim::SimTime) { ++done; });
  sim_.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(server_.stats().disk_reads, 1u);
}

TEST_F(BackendTest, PrefetchWarmsCache) {
  server_.prefetch(3, 4096);
  sim_.run();
  EXPECT_TRUE(server_.caches(3));
  EXPECT_EQ(server_.stats().prefetches_issued, 1u);
  // Subsequent request is a hit.
  server_.serve(3, 4096, 0, {});
  sim_.run();
  EXPECT_EQ(server_.cache().stats().hits, 1u);
  EXPECT_EQ(server_.stats().disk_reads, 1u);  // the prefetch read only
}

TEST_F(BackendTest, PrefetchSkippedUnderDiskBacklog) {
  // Pile up disk work until the backlog gate closes (limit 20 ms; each
  // read costs ~10 ms), then verify further prefetches are dropped.
  for (trace::FileId f = 100; f < 110; ++f) server_.prefetch(f, 1024);
  EXPECT_GT(server_.stats().prefetches_skipped, 0u);
  const auto issued = server_.stats().prefetches_issued;
  EXPECT_LT(issued, 10u);
  server_.prefetch(3, 1024);
  EXPECT_EQ(server_.stats().prefetches_issued, issued);  // gate still shut
  sim_.run();
  EXPECT_FALSE(server_.caches(3));
}

TEST_F(BackendTest, PrefetchDemandRegionOption) {
  server_.prefetch(5, 1000, /*pinned=*/false);
  sim_.run();
  EXPECT_TRUE(server_.caches(5));
  EXPECT_EQ(server_.cache().pinned_bytes(), 0u);
  EXPECT_GT(server_.cache().demand_bytes(), 0u);
}

TEST_F(BackendTest, DemandMissJoinsInflightPrefetch) {
  server_.prefetch(9, 1024);
  int done = 0;
  server_.serve(9, 1024, 0, [&](sim::SimTime) { ++done; });
  sim_.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(server_.stats().disk_reads, 1u);  // shared
}

TEST_F(BackendTest, InstallReplicaIsImmediateAndPinned) {
  server_.install_replica(11, 2048);
  EXPECT_TRUE(server_.caches(11));
  EXPECT_GT(server_.cache().pinned_bytes(), 0u);
  EXPECT_EQ(server_.stats().replications_received, 1u);
}

TEST_F(BackendTest, RelayConsumesCpu) {
  const auto before = server_.cpu().busy_time();
  server_.relay(10 * 1024);
  EXPECT_EQ(server_.cpu().busy_time() - before,
            10 * params_.be_copy_per_kb);
}

TEST_F(BackendTest, PowerStatesAccumulateEnergy) {
  server_.set_power_state(PowerState::kOn);  // no-op
  sim_.schedule(sim::sec(10.0), [&] {
    server_.set_power_state(PowerState::kHibernate);
  });
  sim_.schedule(sim::sec(20.0), [&] {
    server_.set_power_state(PowerState::kOn);
  });
  sim_.run();
  // 10 s full power + 10 s at 5%.
  EXPECT_NEAR(server_.energy(sim_.now()), 10.0 + 0.5, 1e-6);
  EXPECT_TRUE(server_.available());
}

TEST_F(BackendTest, PowerOffDropsCache) {
  server_.install_replica(1, 100);
  server_.set_power_state(PowerState::kOff);
  EXPECT_FALSE(server_.caches(1));
  EXPECT_FALSE(server_.available());
}

TEST_F(BackendTest, ResetStatsKeepsCacheWarm) {
  server_.serve(1, 1024, 0, {});
  sim_.run();
  server_.reset_stats();
  EXPECT_EQ(server_.stats().requests_served, 0u);
  EXPECT_EQ(server_.cpu().busy_time(), 0);
  EXPECT_TRUE(server_.caches(1));
}

TEST(FifoResource, SerializesJobs) {
  sim::Simulator sim;
  FifoResource r;
  std::vector<sim::SimTime> completions;
  r.submit(sim, sim::usec(100), [&] { completions.push_back(sim.now()); });
  r.submit(sim, sim::usec(100), [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 200);
  EXPECT_EQ(r.busy_time(), 200);
  EXPECT_EQ(r.jobs(), 2u);
}

TEST(FifoResource, IdleGapsNotCounted) {
  sim::Simulator sim;
  FifoResource r;
  r.submit(sim, sim::usec(50), [] {});
  sim.run();  // clock now at 50
  sim.schedule(sim::usec(1000), [&] { r.submit(sim, sim::usec(50), [] {}); });
  sim.run();
  EXPECT_EQ(r.busy_time(), 100);                // idle gap not accumulated
  EXPECT_EQ(r.busy_until(), sim::usec(1100));   // 50 + 1000 + 50
}

TEST(FifoResource, BacklogReflectsQueuedWork) {
  sim::Simulator sim;
  FifoResource r;
  r.submit(sim, sim::usec(300), [] {});
  EXPECT_EQ(r.backlog(sim.now()), 300);
  sim.run();  // completion event advances the clock to 300
  EXPECT_EQ(r.backlog(sim.now()), 0);
}

}  // namespace
}  // namespace prord::cluster
