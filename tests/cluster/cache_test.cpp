#include "cluster/cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace prord::cluster {
namespace {

TEST(Cache, MissThenHit) {
  MemoryCache c(10'000, 0);
  EXPECT_FALSE(c.lookup(1));
  c.insert_demand(1, 100);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST(Cache, LruEvictionOrder) {
  MemoryCache c(300, 0);
  c.insert_demand(1, 100);
  c.insert_demand(2, 100);
  c.insert_demand(3, 100);
  // Touch 1 so 2 becomes LRU.
  EXPECT_TRUE(c.lookup(1));
  c.insert_demand(4, 100);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.stats().demand_evictions, 1u);
}

TEST(Cache, CapacityNeverExceeded) {
  MemoryCache c(1000, 500);
  util::Rng rng(4);
  for (trace::FileId f = 0; f < 500; ++f) {
    const auto bytes = 50 + rng.below(200);
    if (f % 3 == 0)
      c.insert_pinned(f, bytes);
    else
      c.insert_demand(f, bytes);
    EXPECT_LE(c.demand_bytes(), c.demand_capacity());
    EXPECT_LE(c.pinned_bytes(), c.pinned_capacity());
  }
}

TEST(Cache, OversizedFileNotCached) {
  MemoryCache c(1000, 0);
  c.insert_demand(1, 5000);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.demand_bytes(), 0u);
}

TEST(Cache, PinnedRegionSeparateFromDemand) {
  MemoryCache c(200, 200);
  c.insert_demand(1, 200);
  EXPECT_TRUE(c.insert_pinned(2, 200));
  // Both fit: separate budgets.
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  // A new pinned insert evicts pinned LRU, not demand.
  EXPECT_TRUE(c.insert_pinned(3, 200));
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.stats().pinned_evictions, 1u);
}

TEST(Cache, PinnedRejectsWhenNoPinnedCapacity) {
  MemoryCache c(1000, 0);
  EXPECT_FALSE(c.insert_pinned(1, 100));
  EXPECT_FALSE(c.contains(1));
}

TEST(Cache, PinnedUpgradeRemovesDemandCopy) {
  MemoryCache c(1000, 1000);
  c.insert_demand(1, 300);
  EXPECT_TRUE(c.insert_pinned(1, 300));
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.demand_bytes(), 0u);
  EXPECT_EQ(c.pinned_bytes(), 300u);
  EXPECT_EQ(c.num_files(), 1u);
}

TEST(Cache, InsertDemandWhilePinnedIsNoop) {
  MemoryCache c(1000, 1000);
  c.insert_pinned(1, 300);
  c.insert_demand(1, 300);
  EXPECT_EQ(c.pinned_bytes(), 300u);
  EXPECT_EQ(c.demand_bytes(), 0u);
}

TEST(Cache, DoubleInsertDemandKeepsOneCopy) {
  MemoryCache c(1000, 0);
  c.insert_demand(1, 300);
  c.insert_demand(1, 300);
  EXPECT_EQ(c.demand_bytes(), 300u);
  EXPECT_EQ(c.num_files(), 1u);
}

TEST(Cache, EraseRemovesEitherRegion) {
  MemoryCache c(1000, 1000);
  c.insert_demand(1, 100);
  c.insert_pinned(2, 100);
  c.erase(1);
  c.erase(2);
  c.erase(3);  // non-resident: no-op
  EXPECT_EQ(c.num_files(), 0u);
  EXPECT_EQ(c.demand_bytes(), 0u);
  EXPECT_EQ(c.pinned_bytes(), 0u);
}

TEST(Cache, ErasePinnedLeavesDemandCopy) {
  MemoryCache c(1000, 1000);
  c.insert_demand(1, 100);
  c.erase_pinned(1);
  EXPECT_TRUE(c.contains(1));
  c.insert_pinned(2, 100);
  c.erase_pinned(2);
  EXPECT_FALSE(c.contains(2));
}

TEST(Cache, ClearDropsEverything) {
  MemoryCache c(1000, 1000);
  c.insert_demand(1, 100);
  c.insert_pinned(2, 100);
  c.clear();
  EXPECT_EQ(c.num_files(), 0u);
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(Cache, ResetStatsKeepsContents) {
  MemoryCache c(1000, 0);
  c.insert_demand(1, 100);
  c.lookup(1);
  c.lookup(99);
  c.reset_stats();
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.contains(1));
}

TEST(Cache, RejectsZeroDemandCapacity) {
  EXPECT_THROW(MemoryCache(0, 100), std::invalid_argument);
}

TEST(Cache, LookupRefreshesPinnedLru) {
  MemoryCache c(100, 300);
  c.insert_pinned(1, 100);
  c.insert_pinned(2, 100);
  c.insert_pinned(3, 100);
  EXPECT_TRUE(c.lookup(1));         // refresh 1
  c.insert_pinned(4, 100);          // evicts 2 (LRU)
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(Cache, ByteAccountingInvariant) {
  MemoryCache c(5000, 2000);
  util::Rng rng(77);
  std::uint64_t expected_demand = 0, expected_pinned = 0;
  for (int op = 0; op < 3000; ++op) {
    const trace::FileId f = static_cast<trace::FileId>(rng.below(60));
    const std::uint32_t bytes = 100 + static_cast<std::uint32_t>(rng.below(400));
    switch (rng.below(4)) {
      case 0:
        c.insert_demand(f, bytes);
        break;
      case 1:
        c.insert_pinned(f, bytes);
        break;
      case 2:
        c.erase(f);
        break;
      default:
        c.lookup(f);
    }
    EXPECT_LE(c.demand_bytes(), c.demand_capacity());
    EXPECT_LE(c.pinned_bytes(), c.pinned_capacity());
  }
  (void)expected_demand;
  (void)expected_pinned;
}

}  // namespace
}  // namespace prord::cluster
