#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace prord::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    params_.num_backends = 4;
    cluster_ = std::make_unique<Cluster>(sim_, params_, 1 << 20, 1 << 18);
  }

  sim::Simulator sim_;
  ClusterParams params_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, SizeAndIds) {
  EXPECT_EQ(cluster_->size(), 4u);
  for (ServerId s = 0; s < 4; ++s) EXPECT_EQ(cluster_->backend(s).id(), s);
}

TEST_F(ClusterTest, LeastLoadedPrefersIdle) {
  cluster_->backend(0).serve(1, 1024, 0, {});
  cluster_->backend(1).serve(2, 1024, 0, {});
  const ServerId least = cluster_->least_loaded();
  EXPECT_TRUE(least == 2 || least == 3);
}

TEST_F(ClusterTest, LeastLoadedTieBreaksLowestId) {
  EXPECT_EQ(cluster_->least_loaded(), 0u);
}

TEST_F(ClusterTest, LeastLoadedSkipsUnavailable) {
  cluster_->backend(0).set_power_state(PowerState::kOff);
  EXPECT_EQ(cluster_->least_loaded(), 1u);
}

TEST_F(ClusterTest, LeastLoadedOfCandidates) {
  cluster_->backend(2).serve(1, 1024, 0, {});
  const std::vector<ServerId> cands{2, 3};
  EXPECT_EQ(cluster_->least_loaded_of(cands), 3u);
  const std::vector<ServerId> bogus{99};
  EXPECT_EQ(cluster_->least_loaded_of(bogus), kNoServer);
}

TEST_F(ClusterTest, AverageLoadOverAvailable) {
  cluster_->backend(0).serve(1, 1024, 0, {});
  cluster_->backend(0).serve(2, 1024, 0, {});
  EXPECT_DOUBLE_EQ(cluster_->average_load(), 0.5);
  cluster_->backend(3).set_power_state(PowerState::kOff);
  EXPECT_NEAR(cluster_->average_load(), 2.0 / 3.0, 1e-9);
}

TEST_F(ClusterTest, PushReplicaTransfersOverNic) {
  EXPECT_TRUE(cluster_->push_replica(1, 42, 4096));
  EXPECT_FALSE(cluster_->backend(1).caches(42));  // still in flight
  sim_.run();
  EXPECT_TRUE(cluster_->backend(1).caches(42));
  EXPECT_GT(cluster_->backend(1).nic().busy_time(), 0);
}

TEST_F(ClusterTest, PushReplicaDedupsInflight) {
  EXPECT_TRUE(cluster_->push_replica(1, 42, 4096));
  EXPECT_FALSE(cluster_->push_replica(1, 42, 4096));  // duplicate
  sim_.run();
  EXPECT_FALSE(cluster_->push_replica(1, 42, 4096));  // already cached
  EXPECT_EQ(cluster_->backend(1).stats().replications_received, 1u);
}

TEST_F(ClusterTest, PushReplicaRespectsNicBacklog) {
  // Large transfers (~5.1 ms each) close the 20 ms backlog gate after a
  // handful of pushes.
  std::size_t accepted = 0;
  for (trace::FileId f = 0; f < 10; ++f)
    accepted += cluster_->push_replica(1, f, 64 * 1024);
  EXPECT_GE(accepted, 2u);
  EXPECT_LT(accepted, 10u);
  EXPECT_FALSE(cluster_->push_replica(1, 100, 1024));
  sim_.run();
}

TEST_F(ClusterTest, TransferTimeMatchesTable1) {
  // 80 us per KB.
  EXPECT_EQ(cluster_->transfer_time(1024), sim::usec(80));
  EXPECT_EQ(cluster_->transfer_time(10 * 1024), sim::usec(800));
  EXPECT_EQ(cluster_->transfer_time(1), sim::usec(80));  // rounds up
}

TEST_F(ClusterTest, TotalServedAggregates) {
  cluster_->backend(0).serve(1, 1024, 0, {});
  cluster_->backend(2).serve(2, 1024, 0, {});
  sim_.run();
  EXPECT_EQ(cluster_->total_served(), 2u);
}

TEST_F(ClusterTest, ResetAccountingClearsEverything) {
  cluster_->backend(0).serve(1, 1024, 0, {});
  cluster_->dispatcher().lookup(1);
  cluster_->frontend_cpu().submit(sim_, sim::usec(10), {});
  sim_.run();
  cluster_->reset_accounting();
  EXPECT_EQ(cluster_->backend(0).stats().requests_served, 0u);
  EXPECT_EQ(cluster_->dispatcher().lookups(), 0u);
  EXPECT_EQ(cluster_->frontend_cpu().busy_time(), 0);
  EXPECT_TRUE(cluster_->backend(0).caches(1));  // cache stays warm
}

TEST_F(ClusterTest, MultipleFrontends) {
  ClusterParams p;
  p.num_backends = 2;
  p.num_frontends = 3;
  Cluster cl(sim_, p, 1 << 20, 0);
  EXPECT_EQ(cl.num_frontends(), 3u);
  cl.frontend_cpu(0).submit(sim_, sim::usec(10), [] {});
  cl.frontend_cpu(2).submit(sim_, sim::usec(30), [] {});
  sim_.run();
  EXPECT_EQ(cl.frontend_busy(), sim::usec(40));
  cl.reset_accounting();
  EXPECT_EQ(cl.frontend_busy(), 0);
}

TEST_F(ClusterTest, RejectsZeroFrontends) {
  ClusterParams p;
  p.num_backends = 2;
  p.num_frontends = 0;
  EXPECT_THROW(Cluster(sim_, p, 1 << 20, 0), std::invalid_argument);
}

TEST_F(ClusterTest, RejectsZeroBackends) {
  ClusterParams p;
  p.num_backends = 0;
  EXPECT_THROW(Cluster(sim_, p, 1 << 20, 0), std::invalid_argument);
}

TEST(Dispatcher, AssignLookupUnassign) {
  Dispatcher d;
  EXPECT_TRUE(d.lookup(1).empty());
  EXPECT_EQ(d.lookups(), 1u);
  d.assign(1, 3);
  d.assign(1, 5);
  d.assign(1, 3);  // duplicate ignored
  const auto servers = d.lookup(1);
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(d.lookups(), 2u);
  d.unassign(1, 3);
  EXPECT_EQ(d.peek(1).size(), 1u);
  EXPECT_EQ(d.lookups(), 2u);  // peek not counted
  d.unassign(1, 5);
  EXPECT_TRUE(d.peek(1).empty());
  EXPECT_EQ(d.num_files_tracked(), 0u);
}

TEST(Dispatcher, UnassignAllServer) {
  Dispatcher d;
  d.assign(1, 2);
  d.assign(2, 2);
  d.assign(2, 3);
  d.unassign_all(2);
  EXPECT_TRUE(d.peek(1).empty());
  ASSERT_EQ(d.peek(2).size(), 1u);
  EXPECT_EQ(d.peek(2).front(), 3u);
}

TEST(Dispatcher, ResetLookups) {
  Dispatcher d;
  d.lookup(1);
  d.reset_lookups();
  EXPECT_EQ(d.lookups(), 0u);
}

}  // namespace
}  // namespace prord::cluster
