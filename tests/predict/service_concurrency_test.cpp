// Concurrency torture for the PredictionService: producers feeding
// through per-thread links while the mining thread drains, readers pull
// predictions, and links register/unregister mid-flight. Run under TSan
// in CI (docs/PREDICTOR.md "Threading"); the assertions here pin the
// accounting invariants, TSan pins the absence of races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "predict/predictor_iface.h"

namespace prord::predict {
namespace {

using trace::FileId;

Observation obs(std::uint32_t conn, FileId file) {
  Observation o;
  o.conn = conn;
  o.file = file;
  return o;
}

PredictorParams torture_params(Algo algo) {
  PredictorParams p;
  p.algo = algo;
  p.threads = 1;
  p.mine_interval_us = 500;  // aggressive cadence: maximal overlap
  p.feed_queue_capacity = 256;
  p.record_table_rows = 64;
  p.mining_table_rows = 512;
  p.prefetch_table_rows = 64;
  return p;
}

class ServiceConcurrencyTest : public ::testing::TestWithParam<Algo> {};

TEST_P(ServiceConcurrencyTest, FeedUnderConcurrentMine) {
  constexpr int kProducers = 4;
  constexpr std::uint32_t kFeedsPerProducer = 20'000;

  auto service = make_prediction_service(torture_params(GetParam()));
  service->start();

  std::atomic<std::uint64_t> accepted{0}, rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      auto link = service->register_link("producer" + std::to_string(t));
      for (std::uint32_t i = 0; i < kFeedsPerProducer; ++i) {
        const std::uint32_t conn = static_cast<std::uint32_t>(t) * 8 + i % 8;
        if (link->feed(obs(conn, i % 97)))
          accepted.fetch_add(1, std::memory_order_relaxed);
        else
          rejected.fetch_add(1, std::memory_order_relaxed);
        // Read the published snapshot from the producer thread too.
        if (i % 64 == 0) {
          const FileId context[] = {i % 97};
          (void)link->best(context, 0.4);
        }
      }
    });
  }

  // A reader hammering the published snapshot through its own link.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    auto link = service->register_link("reader");
    std::uint32_t i = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const FileId context[] = {i++ % 97};
      (void)link->associations(context, 4);
      (void)service->stats();
    }
  });

  // Links churning: register and drop while mining prunes.
  std::atomic<bool> stop_churn{false};
  std::thread churner([&] {
    std::uint32_t n = 0;
    while (!stop_churn.load(std::memory_order_acquire)) {
      auto link = service->register_link("churn" + std::to_string(n++));
      link->feed(obs(1000 + n % 4, n % 97));
      // link dropped here -> unregistered; the miner must tolerate it.
    }
  });

  // Explicit mine_now() racing the background cadence.
  for (int i = 0; i < 50; ++i) service->mine_now();

  for (auto& p : producers) p.join();
  stop_churn.store(true, std::memory_order_release);
  churner.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  service->stop();

  const auto stats = service->stats();
  // Every producer feed was either accepted or rejected, and the service
  // counted it the same way the caller saw it.
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<std::uint64_t>(kProducers) * kFeedsPerProducer);
  EXPECT_GE(stats.feeds, accepted.load());  // churner feeds add on top
  EXPECT_GE(stats.drops, rejected.load());
  EXPECT_GE(stats.mine_passes, 50u);

  // Bounded tables stayed bounded under the torture.
  const auto& params = service->params();
  EXPECT_LE(stats.record_rows, params.record_table_rows);
  if (GetParam() == Algo::kMithril) {
    EXPECT_LE(stats.prefetch_rows, params.prefetch_table_rows);
  }
}

TEST_P(ServiceConcurrencyTest, RegisterUnregisterRace) {
  auto service = make_prediction_service(torture_params(GetParam()));
  service->start();

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRoundsPerThread; ++i) {
        auto link = service->register_link("t" + std::to_string(t));
        link->feed(obs(static_cast<std::uint32_t>(t), i % 31));
        if (i % 3 == 0) {
          const FileId context[] = {static_cast<FileId>(i % 31)};
          (void)link->best(context, 0.5);
        }
        // shared_ptr dropped: unregisters while the miner may be draining
      }
    });
  }
  for (auto& t : threads) t.join();
  service->stop();

  // All transient links are gone; no leak of dead weak_ptrs after a pass.
  service->mine_now();
  EXPECT_EQ(service->stats().links, 0u);
}

TEST_P(ServiceConcurrencyTest, StopWhileFeeding) {
  auto service = make_prediction_service(torture_params(GetParam()));
  service->start();
  auto link = service->register_link("feeder");
  std::thread feeder([&] {
    for (std::uint32_t i = 0; i < 50'000; ++i) link->feed(obs(1, i % 13));
  });
  service->stop();  // stop mid-stream: feeds keep landing in the queue
  feeder.join();
  // The link outlives the stopped service thread; feeding after stop only
  // fills the bounded queue (drops), it never crashes or blocks.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceConcurrencyTest,
                         ::testing::Values(Algo::kPrordGraph, Algo::kMithril),
                         [](const auto& info) {
                           return info.param == Algo::kPrordGraph
                                      ? "PrordGraph"
                                      : "Mithril";
                         });

}  // namespace
}  // namespace prord::predict
