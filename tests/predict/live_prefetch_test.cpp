// Live prefetch over real sockets (docs/PREDICTOR.md "Live path").
//
// The accounting regression the satellite demands: a prefetch-heavy run
// must keep client request conservation *exact* — warming traffic is
// distributor-generated, excluded from client counters, SLO samples, and
// the load generator's completed/failed totals.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/live_cluster.h"
#include "trace/models.h"

namespace prord::net {
namespace {

LiveConfig prefetch_config(predict::Algo algo) {
  LiveConfig cfg;
  cfg.policy = core::PolicyKind::kPrord;
  cfg.backends = 2;
  cfg.requests = 3000;
  cfg.concurrency = 8;
  trace::WorkloadSpec spec = trace::synthetic_spec(/*seed=*/7);
  spec.gen.target_requests = 3000;
  cfg.workload = spec;
  cfg.replication_interval = sim::msec(200);
  // Prefetch-heavy: low confidence bar, wide fanout, fast mining.
  cfg.prefetch = true;
  cfg.predictor.algo = algo;
  cfg.predictor.confidence = 0.05;
  cfg.predictor.max_associations = 6;
  cfg.predictor.min_support = 2;
  cfg.predictor.mine_interval_us = 2'000;
  return cfg;
}

class LivePrefetchTest : public ::testing::TestWithParam<predict::Algo> {};

TEST_P(LivePrefetchTest, PrefetchHeavyRunKeepsConservationExact) {
  const LiveRunResult r = run_live(prefetch_config(GetParam()));
  ASSERT_TRUE(r.started);
  EXPECT_TRUE(r.prefetch_enabled);
  EXPECT_EQ(r.prefetch_algo, predict::algo_name(GetParam()));

  // The warming traffic actually flowed...
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_GT(r.predictor.feeds, 0u);
  EXPECT_GT(r.predictor.mine_passes, 0u);
  std::uint64_t prefetch_served = 0;
  for (const auto& w : r.workers) prefetch_served += w.prefetch_requests;
  EXPECT_GT(prefetch_served, 0u);
  // A response the distributor tore down before reading still served.
  EXPECT_GE(prefetch_served, r.prefetch_responses);
  EXPECT_LE(r.prefetch_responses, r.prefetch_issued);

  // ...and never leaked into client accounting: conservation is exact,
  // and every request a worker counted as *client* traffic is one the
  // distributor parsed off a client socket (a leak of warming requests
  // into the client counters would break this equality).
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.load.issued, 3000u);
  EXPECT_EQ(r.load.completed + r.load.failed, r.load.issued);
  EXPECT_LE(r.dist_requests, r.load.issued);
  std::uint64_t client_served = 0;
  for (const auto& w : r.workers) client_served += w.requests;
  EXPECT_EQ(client_served, r.dist_requests);

  // Waste bookkeeping closes: issued = hits + wasted (computed at stop).
  EXPECT_EQ(r.prefetch_hits + r.prefetch_wasted, r.prefetch_issued);

  // The metrics catalogue carries the predict series.
  EXPECT_NE(r.metrics_scrape.find("prord_predict_feeds_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_predict_prefetch_issued_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_predict_algo"), std::string::npos);
}

TEST(LivePrefetch, OffByDefaultLeavesNoTrace) {
  LiveConfig cfg = prefetch_config(predict::Algo::kMithril);
  cfg.prefetch = false;
  const LiveRunResult r = run_live(cfg);
  ASSERT_TRUE(r.started);
  EXPECT_FALSE(r.prefetch_enabled);
  EXPECT_EQ(r.prefetch_issued, 0u);
  EXPECT_TRUE(r.conserved());
  std::uint64_t prefetch_served = 0;
  for (const auto& w : r.workers) prefetch_served += w.prefetch_requests;
  EXPECT_EQ(prefetch_served, 0u);
  // No predict series in the scrape when the service never ran.
  EXPECT_EQ(r.metrics_scrape.find("prord_predict_feeds_total"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Backends, LivePrefetchTest,
                         ::testing::Values(predict::Algo::kPrordGraph,
                                           predict::Algo::kMithril),
                         [](const auto& info) {
                           return info.param == predict::Algo::kPrordGraph
                                      ? "PrordGraph"
                                      : "Mithril";
                         });

}  // namespace
}  // namespace prord::net
