// MithrilMiner unit tests: support band, confidence ranking, bounded
// tables, and — the property the live deployment leans on — deterministic
// eviction: the same observation stream against the same params always
// yields byte-identical tables (docs/PREDICTOR.md "Bounded memory").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "predict/mithril.h"
#include "util/rng.h"

namespace prord::predict {
namespace {

using trace::FileId;

Observation obs(std::uint32_t conn, FileId file) {
  Observation o;
  o.conn = conn;
  o.file = file;
  return o;
}

PredictorParams small_params() {
  PredictorParams p;
  p.algo = Algo::kMithril;
  p.lookahead_range = 3;
  p.min_support = 2;
  p.max_support = 64;
  p.record_table_rows = 8;     // force record-row LRU eviction
  p.mining_table_rows = 64;    // force pair-table pressure aging
  p.prefetch_table_rows = 16;  // force FIFO prefetch eviction
  p.max_associations = 2;
  return p;
}

TEST(MithrilMiner, PromotesPairAboveMinSupport) {
  MithrilMiner miner(small_params());
  // Pair (1 -> 2) seen once: below min_support, not promoted.
  miner.observe(obs(0, 1));
  miner.observe(obs(0, 2));
  EXPECT_EQ(miner.mine(), 0u);
  EXPECT_EQ(miner.snapshot()->find(1), nullptr);

  // Second sighting on another connection crosses the band.
  miner.observe(obs(1, 1));
  miner.observe(obs(1, 2));
  EXPECT_GT(miner.mine(), 0u);
  const auto snap = miner.snapshot();
  const auto* row = snap->find(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->front().file, 2u);
  EXPECT_GT(row->front().confidence, 0.0);
}

TEST(MithrilMiner, LookaheadWindowBoundsPairing) {
  PredictorParams p = small_params();
  p.lookahead_range = 2;
  MithrilMiner miner(p);
  // 9 is 3 steps before 5 on the same connection: outside the window.
  for (std::uint32_t conn = 0; conn < 4; ++conn) {
    miner.observe(obs(conn, 9));
    miner.observe(obs(conn, 3));
    miner.observe(obs(conn, 4));
    miner.observe(obs(conn, 5));
  }
  miner.mine();
  const auto snap = miner.snapshot();
  const auto* row = snap->find(9);
  if (row != nullptr) {
    for (const auto& assoc : *row) EXPECT_NE(assoc.file, 5u);
  }
  // 4 -> 5 is adjacent: always mined.
  const auto* adjacent = snap->find(4);
  ASSERT_NE(adjacent, nullptr);
  EXPECT_EQ(adjacent->front().file, 5u);
}

TEST(MithrilMiner, ConfidenceRanksAssociations) {
  PredictorParams p = small_params();
  p.max_associations = 4;
  MithrilMiner miner(p);
  // From 7: to 8 six times, to 9 twice — 8 must rank first.
  std::uint32_t conn = 0;
  for (int i = 0; i < 6; ++i) {
    miner.observe(obs(conn, 7));
    miner.observe(obs(conn, 8));
    ++conn;
  }
  for (int i = 0; i < 2; ++i) {
    miner.observe(obs(conn, 7));
    miner.observe(obs(conn, 9));
    ++conn;
  }
  miner.mine();
  const auto snap = miner.snapshot();
  const auto* row = snap->find(7);
  ASSERT_NE(row, nullptr);
  ASSERT_GE(row->size(), 2u);
  EXPECT_EQ((*row)[0].file, 8u);
  EXPECT_EQ((*row)[1].file, 9u);
  EXPECT_GT((*row)[0].confidence, (*row)[1].confidence);
}

TEST(MithrilMiner, TablesStayBounded) {
  const PredictorParams p = small_params();
  MithrilMiner miner(p);
  util::Rng rng(42);
  for (std::uint32_t i = 0; i < 20'000; ++i) {
    const auto conn = static_cast<std::uint32_t>(rng.below(64));
    const auto file = static_cast<FileId>(rng.below(512));
    miner.observe(obs(conn, file));
    if (i % 512 == 0) miner.mine();
  }
  miner.mine();
  EXPECT_LE(miner.record_rows(), p.record_table_rows);
  EXPECT_LE(miner.mining_rows(), p.mining_table_rows);
  EXPECT_LE(miner.prefetch_rows(), p.prefetch_table_rows);
  // The tiny mining table must have refused pairs at some point.
  EXPECT_GT(miner.pair_drops(), 0u);
}

// The determinism pin: identical streams + identical mine() points ->
// identical tables, including every eviction decision.
TEST(MithrilMiner, EvictionIsDeterministic) {
  const PredictorParams p = small_params();
  const std::uint64_t seeds[] = {1, 7, 1234567};
  for (const std::uint64_t seed : seeds) {
    MithrilMiner a(p);
    MithrilMiner b(p);
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const auto step = [](MithrilMiner& m, util::Rng& rng, std::uint32_t i) {
      const auto conn = static_cast<std::uint32_t>(rng.below(32));
      const auto file = static_cast<FileId>(rng.below(128));
      m.observe(obs(conn, file));
      if (i % 257 == 0) m.mine();
    };
    for (std::uint32_t i = 0; i < 10'000; ++i) {
      step(a, rng_a, i);
      step(b, rng_b, i);
    }
    a.mine();
    b.mine();

    EXPECT_EQ(a.record_rows(), b.record_rows());
    EXPECT_EQ(a.mining_rows(), b.mining_rows());
    EXPECT_EQ(a.prefetch_rows(), b.prefetch_rows());
    EXPECT_EQ(a.pair_drops(), b.pair_drops());

    const auto snap_a = a.snapshot();
    const auto snap_b = b.snapshot();
    ASSERT_EQ(snap_a->table.size(), snap_b->table.size());
    for (const auto& [source, row_a] : snap_a->table) {
      const auto* row_b = snap_b->find(source);
      ASSERT_NE(row_b, nullptr) << "source " << source << " seed " << seed;
      ASSERT_EQ(row_a.size(), row_b->size());
      for (std::size_t i = 0; i < row_a.size(); ++i) {
        EXPECT_EQ(row_a[i].file, (*row_b)[i].file);
        EXPECT_DOUBLE_EQ(row_a[i].confidence, (*row_b)[i].confidence);
      }
    }
  }
}

TEST(MithrilMiner, SnapshotIsImmutable) {
  MithrilMiner miner(small_params());
  for (std::uint32_t conn = 0; conn < 4; ++conn) {
    miner.observe(obs(conn, 1));
    miner.observe(obs(conn, 2));
  }
  miner.mine();
  const auto before = miner.snapshot();
  ASSERT_NE(before->find(1), nullptr);
  const auto pinned = before->find(1)->front();

  // Keep mining a different association; the old snapshot must not move.
  for (std::uint32_t conn = 10; conn < 30; ++conn) {
    miner.observe(obs(conn, 1));
    miner.observe(obs(conn, 3));
  }
  miner.mine();
  EXPECT_EQ(before->find(1)->front().file, pinned.file);
  EXPECT_DOUBLE_EQ(before->find(1)->front().confidence, pinned.confidence);
}

}  // namespace
}  // namespace prord::predict
