// PredictionService unit tests: sync-mode determinism, threaded
// publication, bounded feed queues (drop, never block), link lifecycle,
// and warm-start seeding (docs/PREDICTOR.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "logmining/mining_model.h"
#include "predict/prediction_service.h"
#include "predict/predictor_iface.h"

namespace prord::predict {
namespace {

using trace::FileId;

Observation obs(std::uint32_t conn, FileId file, bool main_page = true) {
  Observation o;
  o.conn = conn;
  o.file = file;
  o.main_page = main_page;
  return o;
}

PredictorParams sync_graph_params() {
  PredictorParams p;
  p.algo = Algo::kPrordGraph;
  p.threads = 0;
  return p;
}

TEST(PredictionService, SyncGraphFeedIsImmediatelyVisible) {
  auto service = make_prediction_service(sync_graph_params());
  auto link = service->register_link("test");

  // Walk 1 -> 2 -> 3 on one connection, repeatedly: the graph learns the
  // chain and best({1}) must answer without any mine pass.
  for (int round = 0; round < 8; ++round)
    for (FileId f : {FileId{1}, FileId{2}, FileId{3}})
      ASSERT_TRUE(link->feed(obs(7, f)));

  const std::vector<FileId> context{1};
  const auto best = link->best(context, 0.4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->file, 2u);
  EXPECT_GT(best->confidence, 0.4);

  const auto all = link->associations(context, 4);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().file, 2u);
}

TEST(PredictionService, SyncFeedSkipsEmbeddedObjects) {
  auto service = make_prediction_service(sync_graph_params());
  auto link = service->register_link("test");
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(link->feed(obs(1, 10)));
    ASSERT_TRUE(link->feed(obs(1, 99, /*main_page=*/false)));  // ignored
    ASSERT_TRUE(link->feed(obs(1, 11)));
  }
  const std::vector<FileId> context{10};
  const auto best = link->best(context, 0.4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->file, 11u);  // 99 never entered the graph
}

TEST(PredictionService, ThreadedGraphPublishesOnMineNow) {
  PredictorParams p;
  p.algo = Algo::kPrordGraph;
  p.threads = 1;  // queued mode, but we drive passes by hand via mine_now
  auto service = make_prediction_service(p);
  auto link = service->register_link("test");

  for (int round = 0; round < 8; ++round)
    for (FileId f : {FileId{1}, FileId{2}})
      ASSERT_TRUE(link->feed(obs(3, f)));

  // Nothing published yet: feeds are queued, not applied.
  const std::vector<FileId> context{1};
  EXPECT_FALSE(link->best(context, 0.4).has_value());

  service->mine_now();
  const auto best = link->best(context, 0.4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->file, 2u);

  const auto stats = service->stats();
  EXPECT_EQ(stats.feeds, 16u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_GE(stats.mine_passes, 1u);
  EXPECT_GE(stats.publishes, 1u);
}

TEST(PredictionService, FullQueueDropsAndCounts) {
  PredictorParams p;
  p.algo = Algo::kMithril;
  p.threads = 1;
  p.feed_queue_capacity = 4;
  auto service = make_prediction_service(p);  // never started: queue fills
  auto link = service->register_link("test");

  int accepted = 0, dropped = 0;
  for (std::uint32_t i = 0; i < 10; ++i)
    (link->feed(obs(1, i)) ? accepted : dropped)++;

  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(dropped, 6);
  const auto stats = service->stats();
  EXPECT_EQ(stats.feeds, 4u);
  EXPECT_EQ(stats.drops, 6u);
}

TEST(PredictionService, DroppedLinkUnregisters) {
  auto service = make_prediction_service(sync_graph_params());
  auto a = service->register_link("a");
  auto b = service->register_link("b");
  EXPECT_EQ(service->stats().links, 2u);
  a.reset();
  EXPECT_EQ(service->stats().links, 1u);
  service->mine_now();  // prunes the expired weak_ptr
  EXPECT_EQ(service->stats().links, 1u);
  b.reset();
  EXPECT_EQ(service->stats().links, 0u);
}

TEST(PredictionService, WarmStartSeedsGraphBackend) {
  // Offline-mined model: sessions walking 5 -> 6 repeatedly.
  std::vector<trace::Request> history;
  for (int s = 0; s < 12; ++s) {
    trace::Request a;
    a.client = static_cast<std::uint32_t>(s);
    a.file = 5;
    a.at = sim::sec(s * 100.0);
    history.push_back(a);
    trace::Request b = a;
    b.file = 6;
    b.at = a.at + sim::sec(1.0);
    history.push_back(b);
  }
  logmining::MiningConfig config;
  config.predictor = logmining::PredictorKind::kCandidatePath;
  config.predictor_order = 2;
  auto model = std::make_shared<logmining::MiningModel>(
      std::span<const trace::Request>(history), config);

  PredictorParams p;
  p.algo = Algo::kPrordGraph;
  p.threads = 1;
  auto service = make_prediction_service(p, model);
  auto link = service->register_link("test");

  // The warm-start state must answer before any feed or mine pass.
  const std::vector<FileId> context{5};
  const auto best = link->best(context, 0.4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->file, 6u);
}

TEST(PredictionService, MithrilSyncLearnsAssociations) {
  PredictorParams p;
  p.algo = Algo::kMithril;
  p.threads = 0;
  p.min_support = 2;
  auto service = make_prediction_service(p);
  auto link = service->register_link("test");

  for (std::uint32_t conn = 0; conn < 6; ++conn) {
    ASSERT_TRUE(link->feed(obs(conn, 20)));
    ASSERT_TRUE(link->feed(obs(conn, 21)));
  }
  service->mine_now();  // Mithril always needs a mine pass to promote

  const std::vector<FileId> context{20};
  const auto best = link->best(context, 0.4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->file, 21u);
}

TEST(PredictionService, StartStopIdempotent) {
  PredictorParams p;
  p.algo = Algo::kMithril;
  p.threads = 1;
  p.mine_interval_us = 1'000;
  auto service = make_prediction_service(p);
  service->start();
  service->start();  // no-op
  auto link = service->register_link("test");
  for (std::uint32_t i = 0; i < 100; ++i) link->feed(obs(1, i % 5));
  service->stop();
  service->stop();  // no-op
  // The final drain applied everything that was queued.
  const auto stats = service->stats();
  EXPECT_EQ(stats.feeds + stats.drops, 100u);
}

TEST(PredictionService, AlgoNames) {
  EXPECT_STREQ(algo_name(Algo::kPrordGraph), "prord-graph");
  EXPECT_STREQ(algo_name(Algo::kMithril), "mithril");
}

}  // namespace
}  // namespace prord::predict
