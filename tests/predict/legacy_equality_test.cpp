// Equality fuzz: the PRORD-graph backend of the PredictionService in
// synchronous mode must be *prediction-identical* to driving the legacy
// logmining predictor by hand with the same per-connection context rule —
// the refactor of the Prord policy onto the predict seam rides on this
// (and the golden routing tables pin it end-to-end).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "logmining/predictor.h"
#include "predict/predictor_iface.h"
#include "util/rng.h"

namespace prord::predict {
namespace {

using trace::FileId;

// Mirror of the service's graph-backend apply rule: per-connection
// history rows of length max(order + 1, lookahead_range), main pages
// only, observe_transition(prior context, file).
class LegacyHarness {
 public:
  LegacyHarness(unsigned order, std::size_t history_cap)
      : predictor_(order), cap_(history_cap) {}

  void feed(std::uint32_t conn, FileId file) {
    auto& pages = history_[conn];
    if (!pages.empty()) predictor_.observe_transition(pages, file);
    pages.push_back(file);
    if (pages.size() > cap_) pages.erase(pages.begin());
  }

  std::optional<logmining::Prediction> predict(
      std::span<const FileId> context, double min_confidence) const {
    return predictor_.predict(context, min_confidence);
  }

  std::vector<logmining::Prediction> predict_all(
      std::span<const FileId> context, std::size_t k) const {
    return predictor_.predict_all(context, k);
  }

 private:
  logmining::CandidatePathPredictor predictor_;
  std::size_t cap_;
  std::unordered_map<std::uint32_t, std::vector<FileId>> history_;
};

TEST(LegacyEquality, SyncGraphMatchesCandidatePathPredictor) {
  const std::uint64_t seeds[] = {3, 17, 2006, 987654321};
  for (const std::uint64_t seed : seeds) {
    PredictorParams params;
    params.algo = Algo::kPrordGraph;
    params.threads = 0;       // synchronous: feeds apply immediately
    params.order = 2;
    params.record_table_rows = 1 << 20;  // no history eviction: the legacy
    params.mining_table_rows = 1 << 20;  // harness has no caps to mirror
    auto service = make_prediction_service(params);
    auto link = service->register_link("fuzz");

    const std::size_t cap = std::max<std::size_t>(params.order + 1,
                                                  params.lookahead_range);
    LegacyHarness legacy(params.order, cap);

    util::Rng rng(seed);
    constexpr std::uint32_t kConns = 12;
    constexpr FileId kFiles = 40;
    for (int i = 0; i < 6'000; ++i) {
      const auto conn = static_cast<std::uint32_t>(rng.below(kConns));
      const auto file = static_cast<FileId>(rng.below(kFiles));

      Observation o;
      o.conn = conn;
      o.file = file;
      ASSERT_TRUE(link->feed(o));
      legacy.feed(conn, file);

      // Interleave queries with training so every intermediate model
      // state is compared, not just the final one.
      if (i % 7 == 0) {
        std::vector<FileId> context;
        const auto len = 1 + rng.below(3);
        for (std::uint64_t j = 0; j < len; ++j)
          context.push_back(static_cast<FileId>(rng.below(kFiles)));
        const double threshold = rng.uniform(0.0, 0.8);

        const auto got = link->best(context, threshold);
        const auto want = legacy.predict(context, threshold);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed " << seed << " step " << i;
        if (got) {
          EXPECT_EQ(got->file, want->page) << "seed " << seed;
          EXPECT_DOUBLE_EQ(got->confidence, want->confidence);
        }

        const auto got_all = link->associations(context, 4);
        const auto want_all = legacy.predict_all(context, 4);
        ASSERT_EQ(got_all.size(), want_all.size()) << "seed " << seed;
        for (std::size_t j = 0; j < got_all.size(); ++j) {
          EXPECT_EQ(got_all[j].file, want_all[j].page);
          EXPECT_DOUBLE_EQ(got_all[j].confidence, want_all[j].confidence);
        }
      }
    }
  }
}

TEST(LegacyEquality, EmbeddedObjectsNeverTrainEitherSide) {
  PredictorParams params;
  params.algo = Algo::kPrordGraph;
  params.threads = 0;
  auto service = make_prediction_service(params);
  auto link = service->register_link("fuzz");
  const std::size_t cap = std::max<std::size_t>(params.order + 1,
                                                params.lookahead_range);
  LegacyHarness legacy(params.order, cap);

  util::Rng rng(99);
  for (int i = 0; i < 2'000; ++i) {
    const auto conn = static_cast<std::uint32_t>(rng.below(6));
    const auto file = static_cast<FileId>(rng.below(30));
    const bool embedded = rng.below(3) == 0;
    Observation o;
    o.conn = conn;
    o.file = file;
    o.main_page = !embedded;
    link->feed(o);
    if (!embedded) legacy.feed(conn, file);  // legacy rule: main pages only
  }
  for (FileId f = 0; f < 30; ++f) {
    const std::vector<FileId> context{f};
    const auto got = link->best(context, 0.3);
    const auto want = legacy.predict(context, 0.3);
    ASSERT_EQ(got.has_value(), want.has_value()) << "context " << f;
    if (got) {
      EXPECT_EQ(got->file, want->page);
    }
  }
}

}  // namespace
}  // namespace prord::predict
