// Property tests pinning the log-bucketed histogram against ground truth:
// every reported quantile must sit within the documented relative-error
// bound of the exact (sorted-array) quantile, and merge() must be exactly
// equivalent to recording the union of the inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "util/rng.h"

namespace prord::metrics {
namespace {

constexpr double kQuantiles[] = {0.01, 0.10, 0.25, 0.50,
                                 0.75, 0.90, 0.99, 0.999};

std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  const auto idx = static_cast<std::size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

void check_against_exact(const std::vector<std::uint64_t>& values,
                         const std::string& label) {
  Histogram h;
  std::vector<std::uint64_t> sorted = values;
  for (const std::uint64_t v : values) h.record(v);
  std::sort(sorted.begin(), sorted.end());

  ASSERT_EQ(h.count(), values.size()) << label;
  EXPECT_EQ(h.min(), sorted.front()) << label;
  EXPECT_EQ(h.max(), sorted.back()) << label;
  for (const double q : kQuantiles) {
    const double exact = static_cast<double>(exact_quantile(sorted, q));
    const double approx = static_cast<double>(h.quantile(q));
    // Bucket width is bounded by 1/2^5 of the value; allow 2.5 widths
    // (half for the bucket-midpoint representative, up to two for a
    // 1-rank step across a region boundary where widths double) plus
    // absolute slack for the exact sub-bucket region.
    const double tolerance = std::max(2.5 * exact / 32.0, 2.0);
    EXPECT_NEAR(approx, exact, tolerance) << label << " q=" << q;
  }
}

TEST(HistogramProperty, QuantilesTrackExactSortAcrossDistributions) {
  util::Rng rng(2026);
  constexpr int kSamples = 50'000;

  std::vector<std::uint64_t> uniform, heavy_tail, bimodal, constant, tiny;
  for (int i = 0; i < kSamples; ++i) {
    uniform.push_back(50 + rng.below(500'000));
    // Log-uniform magnitudes: exercises every bucket region.
    heavy_tail.push_back((1ULL << rng.below(30)) + rng.below(1'000));
    bimodal.push_back(rng.below(10) < 8 ? 200 + rng.below(100)
                                        : 1'000'000 + rng.below(50'000));
    constant.push_back(12'345);
    tiny.push_back(rng.below(64));  // the exact sub-bucket region
  }
  check_against_exact(uniform, "uniform");
  check_against_exact(heavy_tail, "heavy_tail");
  check_against_exact(bimodal, "bimodal");
  check_against_exact(constant, "constant");
  check_against_exact(tiny, "tiny");
}

TEST(HistogramProperty, MergeIsExactlyRecordingTheUnion) {
  util::Rng rng(7);
  Histogram merged;
  Histogram all_at_once;
  std::vector<Histogram> parts;
  for (int p = 0; p < 4; ++p) parts.emplace_back();

  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = (1ULL << rng.below(24)) + rng.below(10'000);
    parts[static_cast<std::size_t>(i % 4)].record(v);
    all_at_once.record(v);
  }
  for (const Histogram& part : parts) merged.merge(part);

  EXPECT_EQ(merged.count(), all_at_once.count());
  EXPECT_EQ(merged.min(), all_at_once.min());
  EXPECT_EQ(merged.max(), all_at_once.max());
  EXPECT_DOUBLE_EQ(merged.mean(), all_at_once.mean());
  // Same bucket counts => identical quantiles, not merely close ones.
  for (double q = 0.0; q <= 1.0; q += 0.01)
    ASSERT_EQ(merged.quantile(q), all_at_once.quantile(q)) << "q=" << q;
}

TEST(HistogramProperty, MergeMatchesWeightedRecordN) {
  Histogram weighted;
  Histogram merged;
  Histogram a, b;
  weighted.record_n(777, 10);
  weighted.record_n(31, 3);
  a.record_n(777, 4);
  a.record_n(31, 3);
  b.record_n(777, 6);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), weighted.count());
  EXPECT_DOUBLE_EQ(merged.mean(), weighted.mean());
  for (const double q : kQuantiles)
    EXPECT_EQ(merged.quantile(q), weighted.quantile(q)) << q;
}

TEST(HistogramProperty, ResetRestoresEmptyState) {
  Histogram h;
  util::Rng rng(3);
  for (int i = 0; i < 1'000; ++i) h.record(rng.below(1 << 20));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  // Usable again after reset, with no residue from the first pass.
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.5), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

}  // namespace
}  // namespace prord::metrics
