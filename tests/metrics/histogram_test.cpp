#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace prord::metrics {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Sub-bucket region is exact for values < 2*2^5 = 64.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  util::Rng rng(5);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = 100 + rng.below(1'000'000);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto exact = vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, RecordNWeightsCounts) {
  Histogram h;
  h.record_n(100, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  h.record_n(42, 0);  // no-op
  EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, ClampsAboveMax) {
  Histogram h(1 << 16);
  h.record(1ULL << 40);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1ULL << 40);  // max tracks raw value
  EXPECT_LE(h.quantile(1.0), 1ULL << 40);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.record(10);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(1 << 20), b(1 << 30);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1 << 20, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1 << 20, 17), std::invalid_argument);
  EXPECT_THROW(Histogram(4, 5), std::invalid_argument);
}

TEST(Histogram, MonotoneQuantiles) {
  Histogram h;
  util::Rng rng(9);
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1 << 20));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace prord::metrics
