#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace prord::metrics {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Sub-bucket region is exact for values < 2*2^5 = 64.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  util::Rng rng(5);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = 100 + rng.below(1'000'000);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto exact = vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, RecordNWeightsCounts) {
  Histogram h;
  h.record_n(100, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  h.record_n(42, 0);  // no-op
  EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, ClampsAboveMax) {
  Histogram h(1 << 16);
  h.record(1ULL << 40);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1ULL << 40);  // max tracks raw value
  EXPECT_LE(h.quantile(1.0), 1ULL << 40);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.record(10);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(1 << 20), b(1 << 30);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1 << 20, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1 << 20, 17), std::invalid_argument);
  EXPECT_THROW(Histogram(4, 5), std::invalid_argument);
}

TEST(Histogram, QuantileEdgeCases) {
  // Empty: every quantile is 0, including the extremes.
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);

  // q=0 / q=1 land on the recorded extremes even when the bucket midpoint
  // would round elsewhere (the clamp to [min_seen, max_seen]).
  Histogram h;
  h.record(3);
  h.record(1000);
  h.record(999'983);
  EXPECT_EQ(h.quantile(0.0), 3u);
  EXPECT_EQ(h.quantile(1.0), 999'983u);
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));  // out-of-range q clamps
  EXPECT_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(Histogram, TopBucketQuantileClampsToMaxSeen) {
  // Values beyond max_value share the saturated top bucket; its reported
  // quantile must still be bounded by the largest raw value recorded.
  Histogram h(1 << 16);
  h.record((1ULL << 16) + 123);  // clamped into the top bucket
  h.record(1ULL << 30);          // also clamped, much larger raw value
  const auto p100 = h.quantile(1.0);
  EXPECT_LE(p100, 1ULL << 30);
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_GE(p100, h.quantile(0.5));
}

TEST(Histogram, MergeThenQuantileMatchesCombinedRecording) {
  // Splitting a stream across two histograms and merging must yield the
  // exact same quantiles as recording everything into one (the registry's
  // cross-replication merge relies on this).
  Histogram whole, a, b;
  util::Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.below(1 << 22);
    whole.record(v);
    (i % 3 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  for (double q = 0.0; q <= 1.0; q += 0.01)
    EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
}

TEST(Histogram, MonotoneQuantiles) {
  Histogram h;
  util::Rng rng(9);
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1 << 20));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace prord::metrics
