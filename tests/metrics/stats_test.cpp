#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace prord::metrics {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats whole, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    whole.add(x);
    (i < 42 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(TimeWeightedMean, PiecewiseConstantSignal) {
  TimeWeightedMean g;
  g.update(0, 2.0);    // value 2 over [0, 100)
  g.update(100, 4.0);  // value 4 over [100, 200)
  EXPECT_DOUBLE_EQ(g.average(200), 3.0);
  EXPECT_DOUBLE_EQ(g.current(), 4.0);
}

TEST(TimeWeightedMean, UnchangedValueExtends) {
  TimeWeightedMean g;
  g.update(0, 5.0);
  EXPECT_DOUBLE_EQ(g.average(50), 5.0);
  EXPECT_DOUBLE_EQ(g.average(1000), 5.0);
}

TEST(TimeWeightedMean, NonzeroStart) {
  TimeWeightedMean g(100);
  g.update(100, 1.0);
  g.update(150, 3.0);
  EXPECT_DOUBLE_EQ(g.average(200), 2.0);
}

TEST(TimeWeightedMean, ZeroSpanReturnsCurrent) {
  TimeWeightedMean g;
  g.update(0, 7.0);
  EXPECT_DOUBLE_EQ(g.average(0), 7.0);
}

TEST(TimeWeightedMean, ZeroSpanAtNonzeroStartReturnsCurrent) {
  // Regression: average(now) with now == start_ must be current(), not a
  // 0/0 division — a sampler reading a gauge at its creation instant.
  TimeWeightedMean g(500);
  g.update(500, 3.0);
  g.update(500, 9.0);  // same-instant overwrite: level is now 9
  EXPECT_DOUBLE_EQ(g.average(500), g.current());
  EXPECT_DOUBLE_EQ(g.average(500), 9.0);
  EXPECT_FALSE(std::isnan(g.average(500)));
}

TEST(TimeWeightedMean, FreshGaugeZeroSpanIsZero) {
  TimeWeightedMean g(42);
  EXPECT_DOUBLE_EQ(g.average(42), 0.0);  // current() of an untouched gauge
}

}  // namespace
}  // namespace prord::metrics
