#include "obs/exporters.h"

#include <gtest/gtest.h>

#include <string>

namespace prord::obs {
namespace {

TEST(FormatValue, IntegralValuesPrintWithoutDecimalPoint) {
  EXPECT_EQ(format_value(0.0), "0");
  EXPECT_EQ(format_value(12345.0), "12345");
  EXPECT_EQ(format_value(-3.0), "-3");
}

TEST(FormatValue, FractionalValuesUseFixedPrecision) {
  EXPECT_EQ(format_value(0.25), "0.25");
  EXPECT_EQ(format_value(1.0 / 3.0), "0.333333333");
}

TEST(EscapeLabelValue, EscapesQuotesBackslashesNewlines) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

MetricRegistry sample_registry() {
  MetricRegistry reg;
  reg.set_help("req_total", "total requests");
  reg.counter_add("req_total", {{"policy", "PRORD"}}, 42);
  reg.gauge_set("load", {{"backend", "0"}}, 2.5);
  reg.stats_add("resp_summary", {}, 10);
  reg.stats_add("resp_summary", {}, 30);
  metrics::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<std::uint64_t>(i));
  reg.histogram_merge("resp_us", {}, h);
  return reg;
}

TEST(Prometheus, EmitsHelpTypeAndSeriesLines) {
  const std::string text = to_prometheus(sample_registry());
  EXPECT_NE(text.find("# HELP req_total total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{policy=\"PRORD\"} 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE load gauge\n"), std::string::npos);
  EXPECT_NE(text.find("load{backend=\"0\"} 2.5\n"), std::string::npos);
  // Summaries: _count/_sum pairs for stats, quantiles for histograms.
  EXPECT_NE(text.find("resp_summary_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("resp_summary_sum 40\n"), std::string::npos);
  EXPECT_NE(text.find("resp_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("resp_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("resp_us_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("resp_us_sum 5050\n"), std::string::npos);
}

TEST(Prometheus, OutputIsDeterministic) {
  EXPECT_EQ(to_prometheus(sample_registry()), to_prometheus(sample_registry()));
}

TEST(MetricsCsv, OneRowPerSeriesWithKindColumns) {
  const std::string csv = to_metrics_csv(sample_registry());
  EXPECT_EQ(csv.find("name,labels,kind,value,count,sum,min,max,mean,"
                     "p50,p90,p99\n"),
            0u);
  EXPECT_NE(csv.find("req_total,policy=PRORD,counter,42,,,,,,,,\n"),
            std::string::npos);
  EXPECT_NE(csv.find("load,backend=0,gauge,2.5,,,,,,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("resp_summary,,summary,,2,40,10,30,20,,,\n"),
            std::string::npos);
  // Histogram rows populate count/sum/min/max/mean and the quantiles.
  EXPECT_NE(csv.find("resp_us,,histogram,,100,5050,1,100,50.5,"),
            std::string::npos);
}

TEST(SeriesCsv, SortsByCanonicalKeyAndKeepsTimeOrder) {
  std::vector<Series> series;
  series.push_back(Series{"zeta", {}, {{100, 1.0}, {200, 2.0}}});
  series.push_back(Series{"alpha", {{"b", "1"}}, {{100, 5.0}}});
  const std::string csv = to_series_csv(series);
  EXPECT_EQ(csv.find("metric,labels,t_us,value\n"), 0u);
  const auto alpha = csv.find("alpha,b=1,100,5");
  const auto zeta1 = csv.find("zeta,,100,1");
  const auto zeta2 = csv.find("zeta,,200,2");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta1, std::string::npos);
  ASSERT_NE(zeta2, std::string::npos);
  EXPECT_LT(alpha, zeta1);
  EXPECT_LT(zeta1, zeta2);
}

}  // namespace
}  // namespace prord::obs
