#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/json.h"

namespace prord::obs {
namespace {

FlightEvent ev(std::int64_t t, std::uint64_t c) {
  FlightEvent e;
  e.t_us = t;
  e.type = FlightEventType::kRouteDecision;
  e.a = static_cast<std::uint32_t>(c & 0xFFFFFFFFu);
  e.b = 0;
  e.c = c;
  return e;
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRing("r", 0).capacity(), 8u);
  EXPECT_EQ(FlightRing("r", 8).capacity(), 8u);
  EXPECT_EQ(FlightRing("r", 10).capacity(), 16u);
  EXPECT_EQ(FlightRing("r", 4096).capacity(), 4096u);
}

TEST(FlightRing, KeepsMostRecentEventsAcrossWraparound) {
  FlightRing ring("wrap", 16);
  for (std::uint64_t i = 0; i < 40; ++i) ring.record(ev(100 + static_cast<std::int64_t>(i), i));
  EXPECT_EQ(ring.recorded(), 40u);
  EXPECT_EQ(ring.overwritten(), 24u);

  const std::vector<FlightEvent> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  // Oldest-first: the surviving window is exactly events 24..39.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].c, 24 + i);
    EXPECT_EQ(snap[i].t_us, 124 + static_cast<std::int64_t>(i));
  }
}

TEST(FlightRing, SnapshotBelowCapacityReturnsEverything) {
  FlightRing ring("partial", 64);
  for (std::uint64_t i = 0; i < 5; ++i) ring.record(ev(1, i));
  EXPECT_EQ(ring.overwritten(), 0u);
  const std::vector<FlightEvent> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 0; i < snap.size(); ++i) EXPECT_EQ(snap[i].c, i);
}

// Torture: one owner thread records flat out while this thread snapshots
// concurrently. Every snapshot must be torn-free — a contiguous,
// strictly-ascending window of the sequence the writer produced.
TEST(FlightRing, ConcurrentSnapshotsNeverObserveTornEvents) {
  FlightRing ring("torture", 64);
  // The reader paces the run: the writer keeps lapping the ring until
  // 500 concurrent snapshots have been validated.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> written{0};

  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire) || i < 1'000) {
      ring.record(ev(static_cast<std::int64_t>(i), i));
      ++i;
    }
    written.store(i, std::memory_order_release);
  });

  for (int snapshots = 0; snapshots < 500; ++snapshots) {
    const std::vector<FlightEvent> snap = ring.snapshot();
    ASSERT_LE(snap.size(), ring.capacity());
    for (std::size_t i = 0; i < snap.size(); ++i) {
      // A torn slot would break the writer's c == t_us == a invariant.
      ASSERT_EQ(snap[i].c, static_cast<std::uint64_t>(snap[i].t_us));
      ASSERT_EQ(snap[i].a, static_cast<std::uint32_t>(snap[i].c));
      if (i > 0) {
        ASSERT_EQ(snap[i].c, snap[i - 1].c + 1);
      }
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  const std::uint64_t total = written.load(std::memory_order_acquire);
  ASSERT_GE(total, 1'000u);
  const std::vector<FlightEvent> last = ring.snapshot();
  ASSERT_EQ(last.size(), ring.capacity());
  EXPECT_EQ(last.back().c, total - 1);
  EXPECT_EQ(ring.recorded(), total);
}

TEST(FlightEventType, NamesAreComplete) {
  for (unsigned t = 0; t < kNumFlightEventTypes; ++t)
    EXPECT_STRNE(flight_event_name(static_cast<FlightEventType>(t)), "?");
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { FlightRecorder::instance().reset(); }
  void TearDown() override { FlightRecorder::instance().reset(); }
};

TEST_F(FlightRecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorder& fr = FlightRecorder::instance();
  EXPECT_FALSE(fr.enabled());
  EXPECT_EQ(fr.now_us(), 0);
  flight_record(FlightEventType::kCacheEvict, 1, 2, 3);  // must not crash
  const util::JsonValue doc = util::json_parse(fr.dump_json("idle"));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("rings")->items().size(), 0u);
}

TEST_F(FlightRecorderTest, RecordsIntoNamedPerThreadRings) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.enable(/*ring_capacity=*/32);
  fr.name_thread_ring("distributor");
  fr.record(FlightEventType::kRouteDecision, 2, 17, 99);
  fr.record(FlightEventType::kSloViolation, 1000, 2000);

  std::thread backend([&fr] {
    fr.name_thread_ring("backend0");
    fr.record(FlightEventType::kCacheEvict, 0, 5, 4096);
  });
  backend.join();

  const util::JsonValue doc = util::json_parse(fr.dump_json("test"));
  EXPECT_EQ(doc.find("reason")->as_string(), "test");
  ASSERT_NE(doc.find("dumped_at_us"), nullptr);
  const util::JsonValue* rings = doc.find("rings");
  ASSERT_NE(rings, nullptr);
  ASSERT_EQ(rings->items().size(), 2u);

  bool saw_distributor = false, saw_backend = false;
  for (const util::JsonValue& ring : rings->items()) {
    const std::string name = ring.find("name")->as_string();
    EXPECT_EQ(ring.find("capacity")->as_number(), 32.0);
    EXPECT_EQ(ring.find("overwritten")->as_number(), 0.0);
    const auto& events = ring.find("events")->items();
    if (name == "distributor") {
      saw_distributor = true;
      ASSERT_EQ(events.size(), 2u);
      EXPECT_EQ(events[0].find("type")->as_string(), "route");
      EXPECT_EQ(events[0].find("a")->as_number(), 2.0);
      EXPECT_EQ(events[0].find("b")->as_number(), 17.0);
      EXPECT_EQ(events[0].find("c")->as_number(), 99.0);
      EXPECT_EQ(events[1].find("type")->as_string(), "slo_violation");
    } else if (name == "backend0") {
      saw_backend = true;
      ASSERT_EQ(events.size(), 1u);
      EXPECT_EQ(events[0].find("type")->as_string(), "cache_evict");
    }
  }
  EXPECT_TRUE(saw_distributor);
  EXPECT_TRUE(saw_backend);
}

TEST_F(FlightRecorderTest, DumpRequestIsConsumedExactlyOnce) {
  FlightRecorder& fr = FlightRecorder::instance();
  EXPECT_FALSE(fr.consume_dump_request());
  fr.request_dump();
  fr.request_dump();  // coalesces
  EXPECT_TRUE(fr.consume_dump_request());
  EXPECT_FALSE(fr.consume_dump_request());
}

TEST_F(FlightRecorderTest, ResetDropsRingsForTestIsolation) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.enable(16);
  fr.record(FlightEventType::kHealthDown, 3);
  fr.reset();
  EXPECT_FALSE(fr.enabled());

  fr.enable(16);
  fr.name_thread_ring("fresh");
  const util::JsonValue doc = util::json_parse(fr.dump_json("after-reset"));
  const util::JsonValue* rings = doc.find("rings");
  // Only this thread's freshly-created ring, with no stale events.
  ASSERT_EQ(rings->items().size(), 1u);
  EXPECT_EQ(rings->items()[0].find("name")->as_string(), "fresh");
  EXPECT_EQ(rings->items()[0].find("events")->items().size(), 0u);
}

}  // namespace
}  // namespace prord::obs
