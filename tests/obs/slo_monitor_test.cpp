#include "obs/slo_monitor.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace prord::obs {
namespace {

// Small windows so tests drive the slice ring directly: 1 ms slices, a
// 5 ms short window and a 50 ms long window.
SloOptions test_options() {
  SloOptions opts;
  opts.slice_us = 1'000;
  opts.short_window_us = 5'000;
  opts.long_window_us = 50'000;
  opts.latency_objective_us = 100;
  opts.availability_objective = 0.9;  // error budget 0.1
  opts.burn_alert = 5.0;              // error rate >= 0.5 in both windows
  return opts;
}

TEST(SloMonitor, OptionsAreClampedSane) {
  SloOptions bad;
  bad.slice_us = 0;
  bad.short_window_us = -5;
  bad.long_window_us = -10;
  bad.availability_objective = 1.0;
  const SloMonitor mon(bad);
  EXPECT_GT(mon.options().slice_us, 0);
  EXPECT_GE(mon.options().short_window_us, mon.options().slice_us);
  EXPECT_GE(mon.options().long_window_us, mon.options().short_window_us);
  // Budget is floored away from zero: burn rates stay finite even for a
  // 100% availability objective.
  EXPECT_GT(mon.error_budget(), 0.0);
}

TEST(SloMonitor, ClassifiesFailuresAndSlowRequestsAsBad) {
  SloMonitor mon(test_options());
  mon.record(0, 50, true);    // fast success: good
  mon.record(0, 100, true);   // exactly at the objective: good
  mon.record(0, 101, true);   // over the latency objective: bad
  mon.record(0, 10, false);   // fast failure: bad
  EXPECT_EQ(mon.total(), 4u);
  EXPECT_EQ(mon.bad(), 2u);

  const SloEval eval = mon.evaluate(0);
  EXPECT_EQ(eval.short_window.total, 4u);
  EXPECT_EQ(eval.short_window.bad, 2u);
  EXPECT_DOUBLE_EQ(eval.short_window.error_rate, 0.5);
  // burn = error rate / (1 - availability objective) = 0.5 / 0.1.
  EXPECT_NEAR(eval.short_window.burn_rate, 5.0, 1e-9);
}

TEST(SloMonitor, EmptyWindowsDoNotViolate) {
  const SloMonitor mon(test_options());
  const SloEval eval = mon.evaluate(10'000);
  EXPECT_EQ(eval.short_window.total, 0u);
  EXPECT_DOUBLE_EQ(eval.short_window.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.long_window.burn_rate, 0.0);
  EXPECT_FALSE(eval.violating);
}

TEST(SloMonitor, WindowsRollOffOldSlices) {
  SloMonitor mon(test_options());
  for (int i = 0; i < 10; ++i) mon.record(1'000, 500, true);  // slice 1: bad

  // Still inside both windows at t=4ms...
  SloEval eval = mon.evaluate(4'000);
  EXPECT_EQ(eval.short_window.total, 10u);
  EXPECT_EQ(eval.long_window.total, 10u);

  // ...out of the 5ms short window by t=8ms, still in the 50ms long one...
  eval = mon.evaluate(8'000);
  EXPECT_EQ(eval.short_window.total, 0u);
  EXPECT_EQ(eval.long_window.total, 10u);

  // ...and gone entirely once the long window has passed.
  eval = mon.evaluate(80'000);
  EXPECT_EQ(eval.long_window.total, 0u);
  // Cumulative accounting never rolls off.
  EXPECT_EQ(mon.total(), 10u);
  EXPECT_EQ(mon.bad(), 10u);
}

TEST(SloMonitor, SliceRingSurvivesWraparound) {
  SloMonitor mon(test_options());
  // Drive far more slices than the ring holds (long/slice + 2 = 52); the
  // reused slots must reset instead of accumulating stale counts.
  for (std::int64_t slice = 0; slice < 500; ++slice)
    mon.record(slice * 1'000, 10, slice % 2 == 0);
  const SloEval eval = mon.evaluate(499'000);
  EXPECT_EQ(eval.long_window.total, 50u);
  EXPECT_EQ(eval.long_window.bad, 25u);
  EXPECT_EQ(mon.total(), 500u);
}

TEST(SloMonitor, ViolationRequiresBothWindowsBurning) {
  SloMonitor mon(test_options());
  // A long stretch of healthy traffic dilutes the long window.
  for (std::int64_t t = 0; t < 40'000; t += 1'000)
    for (int i = 0; i < 10; ++i) mon.record(t, 10, true);

  // One short burst of errors: the short window burns hot, but the long
  // window is still mostly good traffic -> no page.
  for (int i = 0; i < 30; ++i) mon.record(41'000, 10, false);
  SloEval eval = mon.evaluate(41'000);
  EXPECT_GE(eval.short_window.burn_rate, 5.0);
  EXPECT_LT(eval.long_window.burn_rate, 5.0);
  EXPECT_FALSE(eval.violating);

  // Sustained errors push both windows over the alert threshold.
  for (std::int64_t t = 42'000; t <= 95'000; t += 1'000)
    for (int i = 0; i < 10; ++i) mon.record(t, 10, false);
  eval = mon.evaluate(95'000);
  EXPECT_GE(eval.short_window.burn_rate, 5.0);
  EXPECT_GE(eval.long_window.burn_rate, 5.0);
  EXPECT_TRUE(eval.violating);
}

TEST(SloMonitor, ToJsonParsesWithExpectedShape) {
  SloMonitor mon(test_options());
  mon.record(500, 40, true);
  mon.record(1'500, 400, true);
  const std::string body = mon.to_json(2'000);
  const util::JsonValue doc = util::json_parse(body);
  ASSERT_TRUE(doc.is_object());

  const util::JsonValue* objectives = doc.find("objectives");
  ASSERT_NE(objectives, nullptr);
  EXPECT_EQ(objectives->find("latency_us")->as_number(), 100.0);
  EXPECT_EQ(objectives->find("availability")->as_number(), 0.9);
  EXPECT_NEAR(objectives->find("error_budget")->as_number(), 0.1, 1e-9);

  for (const char* window : {"short", "long"}) {
    const util::JsonValue* w = doc.find(window);
    ASSERT_NE(w, nullptr) << window;
    EXPECT_EQ(w->find("total")->as_number(), 2.0);
    EXPECT_EQ(w->find("bad")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(w->find("error_rate")->as_number(), 0.5);
  }
  ASSERT_NE(doc.find("violating"), nullptr);
  const util::JsonValue* cumulative = doc.find("cumulative");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_EQ(cumulative->find("total")->as_number(), 2.0);
  EXPECT_EQ(cumulative->find("bad")->as_number(), 1.0);
  EXPECT_GT(cumulative->find("latency_max_us")->as_number(), 0.0);
}

}  // namespace
}  // namespace prord::obs
