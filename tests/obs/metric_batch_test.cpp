// MetricBatch unit contract: interning, export-set stability (a series
// registered but never hit still exports), flush-order/value equivalence
// with write-through updates, and the tail-flush property — pending
// deltas must be zero after the final flush and the registry must carry
// every count, or play_workload's end-of-run flush has regressed.
#include <gtest/gtest.h>

#include "obs/exporters.h"
#include "obs/metric_batch.h"

namespace prord::obs {
namespace {

TEST(MetricBatch, RegistrationUpsertsSeriesImmediately) {
  MetricBatch batch;
  batch.counter("prord_test_total", {{"policy", "prord"}}, "help text");
  // Never incremented — the series must still exist, at zero, with help.
  const Metric* m =
      batch.registry().find("prord_test_total", {{"policy", "prord"}});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 0.0);
  EXPECT_EQ(batch.registry().help().at("prord_test_total"), "help text");
}

TEST(MetricBatch, FlushFoldsPendingIntoRegistry) {
  MetricBatch batch;
  const auto a = batch.counter("prord_a_total", {});
  const auto b = batch.counter("prord_b_total", {{"via", "sticky"}});

  for (int i = 0; i < 5; ++i) batch.add(a);
  batch.add(b, 3.0);
  // Pre-flush: deltas are pending, registry still shows the upsert zeros.
  EXPECT_EQ(batch.pending_total(), 8.0);
  EXPECT_EQ(batch.registry().find("prord_a_total")->value, 0.0);

  batch.flush();
  EXPECT_EQ(batch.pending_total(), 0.0);
  EXPECT_EQ(batch.flushes(), 1u);
  EXPECT_EQ(batch.registry().find("prord_a_total")->value, 5.0);
  EXPECT_EQ(
      batch.registry().find("prord_b_total", {{"via", "sticky"}})->value,
      3.0);

  // Tail-flush regression shape: counts landing after an epoch flush must
  // survive a final flush (this is play_workload's end-of-run flush).
  batch.add(a, 2.0);
  EXPECT_EQ(batch.pending_total(), 2.0);
  batch.flush();
  EXPECT_EQ(batch.pending_total(), 0.0);
  EXPECT_EQ(batch.registry().find("prord_a_total")->value, 7.0);
}

TEST(MetricBatch, BatchedExportMatchesWriteThroughByteForByte) {
  // Identical add streams through both modes; the Prometheus rendering of
  // the two registries must be byte-identical (the experiment-level
  // version of this is ObsDeterminism.BatchedMetricsExportIdenticalBytes).
  const auto drive = [](MetricBatch& batch) {
    const auto completed =
        batch.counter("prord_requests_completed_total", {{"policy", "prord"}},
                      "Requests served to completion");
    const auto routed =
        batch.counter("prord_requests_routed_total",
                      {{"policy", "prord"}, {"via", "dispatcher"}});
    const auto never_hit = batch.counter("prord_failed_total", {});
    (void)never_hit;
    for (int i = 0; i < 1000; ++i) {
      batch.add(completed);
      if (i % 3 == 0) batch.add(routed);
      if (i % 250 == 0) batch.flush();  // epoch flushes mid-stream
    }
    batch.flush();  // tail flush
  };

  MetricBatch batched;
  drive(batched);
  MetricBatch through;
  through.set_write_through(true);
  drive(through);

  EXPECT_EQ(batched.adds(), through.adds());
  EXPECT_EQ(to_prometheus(batched.registry()),
            to_prometheus(through.registry()));
}

TEST(MetricBatch, FlushIsIdempotentWhenNothingIsPending) {
  MetricBatch batch;
  const auto h = batch.counter("prord_x_total", {});
  batch.add(h);
  batch.flush();
  const std::string before = to_prometheus(batch.registry());
  batch.flush();
  batch.flush();
  EXPECT_EQ(to_prometheus(batch.registry()), before);
}

}  // namespace
}  // namespace prord::obs
