#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "util/json.h"

namespace prord::obs {
namespace {

TEST(TraceId, DerivationIsDeterministicAndCollisionFree) {
  const TraceId a = derive_trace_id(42, 7);
  const TraceId b = derive_trace_id(42, 7);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());

  // Different indices / seeds give different ids (SplitMix64 streams).
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const TraceId id = derive_trace_id(42, i);
    EXPECT_TRUE(id.valid()) << i;
    EXPECT_TRUE(seen.insert({id.hi, id.lo}).second) << i;
  }
  EXPECT_NE(derive_trace_id(1, 0), derive_trace_id(2, 0));
}

TEST(TraceId, HexIs32LowercaseChars) {
  const TraceId id{0x00A52C3F9D0E11AAull, 0x55EE77CC00112233ull};
  const std::string hex = trace_id_hex(id);
  ASSERT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "00a52c3f9d0e11aa55ee77cc00112233");
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

TEST(TraceHeader, FormatParseRoundTrip) {
  for (const std::uint32_t hop : {0u, 1u, 2u, 17u, 4'000'000'000u}) {
    const TraceContext ctx{derive_trace_id(99, hop), hop};
    const std::string header = format_trace_header(ctx);
    const auto parsed = parse_trace_header(header);
    ASSERT_TRUE(parsed.has_value()) << header;
    EXPECT_EQ(parsed->id, ctx.id);
    EXPECT_EQ(parsed->hop, ctx.hop);
  }
}

TEST(TraceHeader, StrictParseRejectsMalformedValues) {
  EXPECT_FALSE(parse_trace_header(""));
  EXPECT_FALSE(parse_trace_header("-0"));
  EXPECT_FALSE(parse_trace_header("00a52c3f9d0e11aa-0"));  // id too short
  EXPECT_FALSE(
      parse_trace_header("00a52c3f9d0e11aa55ee77cc00112233"));  // no hop
  EXPECT_FALSE(
      parse_trace_header("00a52c3f9d0e11aa55ee77cc00112233-"));  // empty hop
  EXPECT_FALSE(
      parse_trace_header("zza52c3f9d0e11aa55ee77cc00112233-0"));  // bad hex
  EXPECT_FALSE(
      parse_trace_header("00a52c3f9d0e11aa55ee77cc00112233-x"));  // bad hop
  EXPECT_FALSE(
      parse_trace_header("00a52c3f9d0e11aa55ee77cc001122334-0"));  // no dash@32
}

TEST(LiveHop, NamesAreDistinctAndComplete) {
  std::set<std::string> names;
  for (unsigned h = 0; h < kNumLiveHops; ++h) {
    const char* name = live_hop_name(static_cast<LiveHop>(h));
    EXPECT_STRNE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), kNumLiveHops);
  EXPECT_EQ(names.count("parse"), 1u);
  EXPECT_EQ(names.count("reorder_hold"), 1u);
}

LiveSpan sample_span() {
  LiveSpan span;
  span.id = derive_trace_id(7, 3);
  span.request = 3;
  span.conn = 1;
  span.file = 17;
  span.bytes = 2048;
  span.server = 2;
  span.status = 200;
  span.via = RouteVia::kBundle;
  span.cache_resident = true;
  span.arrival = 1000;
  span.hop_us = {5, 2, 1, 120, 8, 30, 3, 11};
  span.completion = span.arrival + span.hop_sum();
  return span;
}

TEST(LiveSpan, HopsTelescopeToResponseTime) {
  const LiveSpan span = sample_span();
  EXPECT_EQ(span.hop_sum(), 180);
  EXPECT_EQ(span.response_time(), span.hop_sum());
}

TEST(LiveSpan, JsonSharesSimSchemaWithWallClockDiscriminator) {
  const LiveSpan span = sample_span();
  std::ostringstream os;
  write_live_span_json(os, span);
  const std::string json = os.str();
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const util::JsonValue doc = util::json_parse(json);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("clock"), nullptr);
  EXPECT_EQ(doc.find("clock")->as_string(), "wall");
  EXPECT_EQ(doc.find("trace")->as_string(), trace_id_hex(span.id));
  // Common keys shared with the sim span schema (obs/span.h).
  for (const char* key : {"req", "conn", "file", "bytes", "server",
                          "t_arrival_us", "t_done_us", "resp_us", "via"})
    ASSERT_NE(doc.find(key), nullptr) << key;
  EXPECT_EQ(doc.find("req")->as_number(), 3.0);
  EXPECT_EQ(doc.find("resp_us")->as_number(), 180.0);
  EXPECT_EQ(doc.find("via")->as_string(), "bundle");
  EXPECT_EQ(doc.find("status")->as_number(), 200.0);

  const util::JsonValue* hops = doc.find("hops");
  ASSERT_NE(hops, nullptr);
  ASSERT_TRUE(hops->is_object());
  double sum = 0.0;
  for (unsigned h = 0; h < kNumLiveHops; ++h) {
    const util::JsonValue* hop =
        hops->find(live_hop_name(static_cast<LiveHop>(h)));
    ASSERT_NE(hop, nullptr) << live_hop_name(static_cast<LiveHop>(h));
    sum += hop->as_number();
  }
  EXPECT_EQ(sum, 180.0);
}

}  // namespace
}  // namespace prord::obs
