#include "obs/sampler.h"

#include <gtest/gtest.h>

namespace prord::obs {
namespace {

TEST(Sampler, SnapshotsEveryProbePerSample) {
  Sampler s(sim::msec(100));
  double level = 1.0;
  s.add_probe("load", {{"backend", "0"}}, [&](sim::SimTime) { return level; });
  s.add_probe("queue", {}, [](sim::SimTime now) {
    return static_cast<double>(now) / 1000.0;
  });

  s.sample(0);
  level = 3.0;
  s.sample(100000);

  EXPECT_EQ(s.num_probes(), 2u);
  EXPECT_EQ(s.num_samples(), 2u);
  ASSERT_EQ(s.series().size(), 2u);
  const Series& load = s.series()[0];
  EXPECT_EQ(load.name, "load");
  ASSERT_EQ(load.labels.size(), 1u);
  ASSERT_EQ(load.points.size(), 2u);
  EXPECT_EQ(load.points[0].at, 0);
  EXPECT_DOUBLE_EQ(load.points[0].value, 1.0);
  EXPECT_EQ(load.points[1].at, 100000);
  EXPECT_DOUBLE_EQ(load.points[1].value, 3.0);
  const Series& queue = s.series()[1];
  EXPECT_DOUBLE_EQ(queue.points[1].value, 100.0);  // probe sees `now`
}

TEST(Sampler, LabelsAreCanonicalized) {
  Sampler s;
  s.add_probe("g", {{"b", "2"}, {"a", "1"}}, [](sim::SimTime) { return 0.0; });
  ASSERT_EQ(s.series().size(), 1u);
  EXPECT_EQ(s.series()[0].labels.front().first, "a");
}

TEST(Sampler, ResetPointsKeepsProbes) {
  Sampler s(sim::msec(10));
  s.add_probe("g", {}, [](sim::SimTime) { return 7.0; });
  s.sample(0);
  s.reset_points();
  EXPECT_EQ(s.num_probes(), 1u);
  EXPECT_EQ(s.num_samples(), 0u);
  EXPECT_TRUE(s.series()[0].points.empty());
  s.sample(50);
  EXPECT_EQ(s.series()[0].points.size(), 1u);
}

TEST(Sampler, TakeSeriesMovesOutHistory) {
  Sampler s;
  s.add_probe("g", {}, [](sim::SimTime) { return 1.0; });
  s.sample(5);
  const auto taken = s.take_series();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].points.size(), 1u);
}

TEST(Sampler, IntervalIsAdjustable) {
  Sampler s;
  EXPECT_EQ(s.interval(), 0);
  s.set_interval(sim::msec(250));
  EXPECT_EQ(s.interval(), sim::msec(250));
}

}  // namespace
}  // namespace prord::obs
