#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace prord::obs {
namespace {

RequestSpan make_span(std::uint64_t req) {
  RequestSpan s;
  s.request = req;
  s.conn = 7;
  s.file = 42;
  s.bytes = 2048;
  s.server = 3;
  s.home = 1;
  s.arrival = 1000;
  s.backend_start = 1100;
  s.completion = 1500;
  s.via = RouteVia::kPrefetch;
  s.contacted_dispatcher = true;
  s.handoff = true;
  s.cache_resident = true;
  return s;
}

TEST(Tracer, RateOneSamplesEveryRequest) {
  Tracer t(1.0);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(t.sampled(i));
}

TEST(Tracer, RateZeroSamplesNothing) {
  Tracer t(0.0);
  EXPECT_FALSE(t.enabled());
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_FALSE(t.sampled(i));
  t.record(make_span(5));  // record() re-checks sampling
  EXPECT_TRUE(t.spans().empty());
}

TEST(Tracer, SamplingIsDeterministicAndRateProportional) {
  Tracer a(0.25), b(0.25);
  std::size_t hits = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    EXPECT_EQ(a.sampled(i), b.sampled(i));  // pure function of the index
    if (a.sampled(i)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.25, 0.01);
}

TEST(Tracer, LowerRateSamplesSubset) {
  // The hash threshold is monotone in the rate, so every request traced at
  // 10% is also traced at 50% — sample sets nest across rates.
  Tracer lo(0.1), hi(0.5);
  for (std::uint64_t i = 0; i < 20000; ++i)
    if (lo.sampled(i)) EXPECT_TRUE(hi.sampled(i));
}

TEST(Tracer, RateIsClamped) {
  EXPECT_DOUBLE_EQ(Tracer(7.0).sample_rate(), 1.0);
  EXPECT_DOUBLE_EQ(Tracer(-2.0).sample_rate(), 0.0);
}

TEST(Tracer, RecordKeepsSampledSpansInOrder) {
  Tracer t(1.0);
  t.record(make_span(1));
  t.record(make_span(2));
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].request, 1u);
  EXPECT_EQ(t.spans()[1].request, 2u);
  const auto taken = Tracer(t).take_spans();
  EXPECT_EQ(taken.size(), 2u);
}

TEST(Tracer, SpanJsonIsWellFormedAndStable) {
  std::ostringstream os;
  write_span_json(os, make_span(9));
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Single-line object, fixed field order, no raw control characters.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  // Sim spans carry the clock discriminator first (live wall spans say
  // "wall"; both flavors share one JSONL schema).
  EXPECT_NE(json.find("\"clock\":\"sim\""), std::string::npos);
  EXPECT_LT(json.find("\"clock\""), json.find("\"req\""));
  EXPECT_NE(json.find("\"req\":9"), std::string::npos);
  EXPECT_NE(json.find("\"via\":\"prefetch\""), std::string::npos);
  EXPECT_NE(json.find("\"resp_us\":500"), std::string::npos);
  EXPECT_NE(json.find("\"handoff\":true"), std::string::npos);
  EXPECT_NE(json.find("\"forwarded\":false"), std::string::npos);
  EXPECT_LT(json.find("\"req\""), json.find("\"conn\""));
  EXPECT_LT(json.find("\"t_arrival_us\""), json.find("\"t_done_us\""));

  // Same span renders to the same bytes.
  std::ostringstream again;
  write_span_json(again, make_span(9));
  EXPECT_EQ(json, again.str());
}

TEST(Tracer, SpanFieldsAreJsonBodyOfSpanJson) {
  std::ostringstream fields, json;
  write_span_fields(fields, make_span(4));
  write_span_json(json, make_span(4));
  EXPECT_EQ("{" + fields.str() + "}", json.str());
}

TEST(Tracer, UnroutedServerRendersAsMinusOne) {
  RequestSpan s;  // server/home left at the kNoServer sentinel
  std::ostringstream os;
  write_span_json(os, s);
  EXPECT_NE(os.str().find("\"server\":-1"), std::string::npos);
  EXPECT_NE(os.str().find("\"home\":-1"), std::string::npos);
}

TEST(RouteViaNames, AreDistinctAndStable) {
  EXPECT_STREQ(route_via_name(RouteVia::kDispatcher), "dispatcher");
  EXPECT_STREQ(route_via_name(RouteVia::kSticky), "sticky");
  EXPECT_STREQ(route_via_name(RouteVia::kBundle), "bundle");
  EXPECT_STREQ(route_via_name(RouteVia::kPrefetch), "prefetch");
  EXPECT_STREQ(route_via_name(RouteVia::kReplica), "replica");
  EXPECT_STREQ(route_via_name(RouteVia::kBalance), "balance");
}

}  // namespace
}  // namespace prord::obs
