#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prord::obs {
namespace {

TEST(Labels, CanonicalizationSortsAndDedupes) {
  Labels raw{{"policy", "PRORD"}, {"backend", "3"}, {"policy", "LARD"}};
  const Labels canon = canonical_labels(raw);
  ASSERT_EQ(canon.size(), 2u);
  EXPECT_EQ(canon[0].first, "backend");
  EXPECT_EQ(canon[1].first, "policy");
  EXPECT_EQ(canon[1].second, "LARD");  // duplicate keys: last wins
}

TEST(Labels, CanonicalKeyFormat) {
  EXPECT_EQ(canonical_key("m", {}), "m");
  EXPECT_EQ(canonical_key("m", {{"a", "1"}, {"b", "2"}}), "m{a=1,b=2}");
}

TEST(MetricRegistry, CountersAccumulate) {
  MetricRegistry reg;
  reg.counter_add("req_total", {}, 3);
  reg.counter_add("req_total", {}, 4);
  const Metric* m = reg.find("req_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(m->value, 7.0);
}

TEST(MetricRegistry, NegativeCounterDeltaThrows) {
  MetricRegistry reg;
  EXPECT_THROW(reg.counter_add("x", {}, -1.0), std::invalid_argument);
}

TEST(MetricRegistry, GaugeLastWriteWins) {
  MetricRegistry reg;
  reg.gauge_set("load", 5.0);
  reg.gauge_set("load", 2.5);
  EXPECT_DOUBLE_EQ(reg.find("load")->value, 2.5);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter_add("x");
  EXPECT_THROW(reg.gauge_set("x", 1.0), std::logic_error);
}

TEST(MetricRegistry, LabelOrderDoesNotSplitSeries) {
  MetricRegistry reg;
  reg.counter_add("hits", {{"a", "1"}, {"b", "2"}}, 1);
  reg.counter_add("hits", {{"b", "2"}, {"a", "1"}}, 1);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg.find("hits", {{"b", "2"}, {"a", "1"}})->value, 2.0);
}

TEST(MetricRegistry, IterationIsCanonicalKeyOrdered) {
  MetricRegistry reg;
  reg.gauge_set("zeta", {}, 1);
  reg.gauge_set("alpha", {{"k", "2"}}, 1);
  reg.gauge_set("alpha", {{"k", "1"}}, 1);
  std::vector<std::string> keys;
  for (const auto& [key, m] : reg.series()) keys.push_back(key);
  const std::vector<std::string> want{"alpha{k=1}", "alpha{k=2}", "zeta"};
  EXPECT_EQ(keys, want);
}

TEST(MetricRegistry, DistinctNamesIgnoresLabelSets) {
  MetricRegistry reg;
  reg.counter_add("a", {{"x", "1"}});
  reg.counter_add("a", {{"x", "2"}});
  reg.gauge_set("b", 0);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.distinct_names(), 2u);
}

TEST(MetricRegistry, MergeSemanticsPerKind) {
  MetricRegistry a, b;
  a.counter_add("c", {}, 10);
  b.counter_add("c", {}, 5);
  a.gauge_set("g", 1.0);
  b.gauge_set("g", 9.0);
  a.stats_add("s", {}, 2.0);
  b.stats_add("s", {}, 4.0);
  metrics::Histogram h1, h2;
  h1.record(100);
  h2.record(300);
  a.histogram_merge("h", {}, h1);
  b.histogram_merge("h", {}, h2);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.find("c")->value, 15.0);  // counters add
  EXPECT_DOUBLE_EQ(a.find("g")->value, 9.0);   // gauges: other wins
  EXPECT_EQ(a.find("s")->stats.count(), 2u);   // stats accumulate
  EXPECT_DOUBLE_EQ(a.find("s")->stats.mean(), 3.0);
  EXPECT_EQ(a.find("h")->hist->count(), 2u);   // histograms accumulate
  EXPECT_DOUBLE_EQ(a.find("h")->hist->mean(), 200.0);
}

TEST(MetricRegistry, MergeKindMismatchThrows) {
  MetricRegistry a, b;
  a.counter_add("x");
  b.gauge_set("x", 1.0);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(MetricRegistry, MergeCopiesDisjointSeriesDeeply) {
  MetricRegistry a, b;
  metrics::Histogram h;
  h.record(50);
  b.histogram_merge("h", {}, h);
  a.merge(b);
  // a's histogram must be an independent copy, not shared with b.
  ASSERT_NE(a.find("h")->hist.get(), nullptr);
  EXPECT_NE(a.find("h")->hist.get(), b.find("h")->hist.get());
  EXPECT_EQ(a.find("h")->hist->count(), 1u);
}

TEST(MetricRegistry, WithLabelsRebuildsKeys) {
  MetricRegistry reg;
  reg.counter_add("c", {{"policy", "PRORD"}}, 2);
  reg.set_help("c", "help text");
  const MetricRegistry tagged = reg.with_labels({{"cell", "A"}, {"rep", "0"}});
  const Metric* m =
      tagged.find("c", {{"policy", "PRORD"}, {"cell", "A"}, {"rep", "0"}});
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 2.0);
  EXPECT_EQ(tagged.find("c", {{"policy", "PRORD"}}), nullptr);
  EXPECT_EQ(tagged.help().at("c"), "help text");
}

TEST(MetricRegistry, StatsMergeLiftsAccumulator) {
  metrics::RunningStats s;
  s.add(10);
  s.add(20);
  MetricRegistry reg;
  reg.stats_merge("resp", {}, s);
  reg.stats_add("resp", {}, 30);
  EXPECT_EQ(reg.find("resp")->stats.count(), 3u);
  EXPECT_DOUBLE_EQ(reg.find("resp")->stats.mean(), 20.0);
}

}  // namespace
}  // namespace prord::obs
