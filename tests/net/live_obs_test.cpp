// Live-path observability tests: run-stable trace structure, /metrics
// framing under persistent connections, the /slo endpoint, JSONL span
// export, and SLO-triggered flight-recorder dumps (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cerrno>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "net/backend_worker.h"
#include "net/distributor.h"
#include "net/http.h"
#include "net/live_cluster.h"
#include "net/live_router.h"
#include "net/site_store.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/trace_context.h"
#include "trace/models.h"
#include "trace/workload.h"
#include "util/json.h"

namespace prord::net {
namespace {

trace::WorkloadSpec obs_spec() {
  trace::WorkloadSpec spec = trace::synthetic_spec(/*seed=*/7);
  spec.gen.target_requests = 2000;
  return spec;
}

LiveConfig obs_config() {
  LiveConfig cfg;
  // WRR + a single in-order client: routing and cache state depend only
  // on the request sequence, so the trace *structure* must be identical
  // run to run even though wall-clock durations are not.
  cfg.policy = core::PolicyKind::kWrr;
  cfg.backends = 2;
  cfg.requests = 600;
  cfg.concurrency = 1;
  cfg.workload = obs_spec();
  cfg.trace_sample_rate = 1.0;
  cfg.trace_seed = 1234;
  return cfg;
}

TEST(LiveObs, TraceStructureIsRunStable) {
  const LiveRunResult a = run_live(obs_config());
  const LiveRunResult b = run_live(obs_config());
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);
  ASSERT_EQ(a.load.failed, 0u);
  ASSERT_EQ(b.load.failed, 0u);

  // Full sampling: every forwarded request completes as one span.
  ASSERT_EQ(a.spans.size(), a.load.completed);
  ASSERT_EQ(a.trace_spans, a.spans.size());
  ASSERT_EQ(a.spans.size(), b.spans.size());

  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    const obs::LiveSpan& sa = a.spans[i];
    const obs::LiveSpan& sb = b.spans[i];
    // Identity and routing structure are deterministic...
    EXPECT_EQ(sa.request, sb.request) << i;
    EXPECT_EQ(sa.id, sb.id) << i;
    EXPECT_EQ(sa.id, obs::derive_trace_id(1234, sa.request)) << i;
    EXPECT_EQ(sa.file, sb.file) << i;
    EXPECT_EQ(sa.bytes, sb.bytes) << i;
    EXPECT_EQ(sa.server, sb.server) << i;
    EXPECT_EQ(sa.via, sb.via) << i;
    EXPECT_EQ(sa.status, sb.status) << i;
    EXPECT_EQ(sa.status, 200) << i;
    // ...while the wall-clock stamps only need to satisfy causality and
    // exact telescoping.
    for (const std::int64_t hop : sa.hop_us) EXPECT_GE(hop, 0) << i;
    EXPECT_GE(sa.completion, sa.arrival) << i;
    EXPECT_EQ(sa.hop_sum(), sa.response_time()) << i;
    if (i > 0) {
      EXPECT_GT(sa.request, a.spans[i - 1].request) << i;
    }
  }
}

// Sends `wire` to 127.0.0.1:`port` on one connection and reads until
// `expected` responses have been parsed.
std::vector<HttpResponse> pipelined_exchange(std::uint16_t port,
                                             const std::string& wire,
                                             std::size_t expected) {
  std::vector<HttpResponse> responses;
  Fd fd = connect_loopback(port);
  if (!fd.valid()) return responses;
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd.get(), wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return responses;
    }
    off += static_cast<std::size_t>(n);
  }
  ResponseParser parser;
  char buf[64 * 1024];
  while (responses.size() < expected) {
    const ssize_t r = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return responses;
    if (!parser.consume(std::string_view(buf, static_cast<std::size_t>(r))))
      return responses;
    while (auto resp = parser.pop()) responses.push_back(std::move(*resp));
  }
  return responses;
}

TEST(LiveObs, MetricsFramingSurvivesPersistentConnections) {
  // Minimal standalone cluster: one worker, WRR belief router, the
  // distributor's built-in /metrics snapshot.
  const trace::BuiltWorkload built = trace::build(obs_spec());
  const trace::Workload wl = trace::build_workload(built.trace.records);
  SiteStore store(wl.files);
  BackendWorker worker(0, store, /*cache_capacity=*/1 << 20);
  ASSERT_TRUE(worker.start());
  core::ExperimentConfig cfg;
  cfg.workload = obs_spec();
  cfg.policy = core::PolicyKind::kWrr;
  cfg.params.num_backends = 1;
  LiveRouter router(cfg, nullptr, wl.files, /*demand_bytes=*/1 << 20,
                    /*pinned_bytes=*/0);
  Distributor dist(router, store, {&worker});
  ASSERT_TRUE(dist.start());

  // Two pipelined /metrics scrapes plus /slo on ONE keep-alive
  // connection: a wrong Content-Length would mis-frame every response
  // after the first.
  const std::string wire = format_request("/metrics") +
                           format_request("/metrics") +
                           format_request("/slo");
  const std::vector<HttpResponse> responses =
      pipelined_exchange(dist.port(), wire, 3);
  ASSERT_EQ(responses.size(), 3u);

  for (int i = 0; i < 2; ++i) {
    const HttpResponse& resp = responses[static_cast<std::size_t>(i)];
    EXPECT_EQ(resp.status, 200) << i;
    EXPECT_TRUE(resp.keep_alive) << i;
    const std::string* type = resp.header("Content-Type");
    ASSERT_NE(type, nullptr) << i;
    EXPECT_EQ(*type, "text/plain; version=0.0.4; charset=utf-8") << i;
    const std::string* length = resp.header("Content-Length");
    ASSERT_NE(length, nullptr) << i;
    EXPECT_EQ(std::stoul(*length), resp.body.size()) << i;
    EXPECT_NE(resp.body.find("prord_live_requests_total"), std::string::npos)
        << i;
  }

  const HttpResponse& slo = responses[2];
  EXPECT_EQ(slo.status, 200);
  const std::string* type = slo.header("Content-Type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(*type, "application/json");
  const util::JsonValue doc = util::json_parse(slo.body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("objectives"), nullptr);
  EXPECT_NE(doc.find("violating"), nullptr);

  dist.stop();
  worker.stop();
}

TEST(LiveObs, SloScrapeAndSpanExportEndToEnd) {
  const std::string trace_path = ::testing::TempDir() + "live_obs_spans.jsonl";
  LiveConfig cfg = obs_config();
  cfg.trace_out = trace_path;
  const LiveRunResult r = run_live(cfg);
  ASSERT_TRUE(r.started);
  ASSERT_GT(r.trace_spans, 0u);

  // The live /slo scrape is valid JSON with both burn-rate windows.
  ASSERT_FALSE(r.slo_scrape.empty());
  const util::JsonValue slo = util::json_parse(r.slo_scrape);
  ASSERT_NE(slo.find("short"), nullptr);
  ASSERT_NE(slo.find("long"), nullptr);
  EXPECT_GT(slo.find("cumulative")->find("total")->as_number(), 0.0);

  // The tracing/SLO series made it into the Prometheus scrape.
  EXPECT_NE(r.metrics_scrape.find("prord_live_trace_spans_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_live_slo_burn_rate"),
            std::string::npos);

  // Exported JSONL: one parseable wall-clock line per span.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::JsonValue span = util::json_parse(line);
    ASSERT_TRUE(span.is_object()) << lines;
    EXPECT_EQ(span.find("clock")->as_string(), "wall") << lines;
    ASSERT_NE(span.find("trace"), nullptr) << lines;
    ASSERT_NE(span.find("hops"), nullptr) << lines;
    ++lines;
  }
  EXPECT_EQ(lines, r.spans.size());
}

TEST(LiveObs, SloViolationDumpsFlightRecorder) {
  obs::FlightRecorder::instance().reset();
  const std::string dump_path = ::testing::TempDir() + "live_obs_flight.json";
  LiveConfig cfg = obs_config();
  cfg.requests = 3000;
  cfg.concurrency = 8;
  cfg.flight_dump_path = dump_path;
  // An impossible objective: every request is bad, so both burn-rate
  // windows exceed the alert as soon as they hold any traffic.
  cfg.slo.latency_objective_us = 0;
  cfg.slo.availability_objective = 0.9;
  cfg.slo.burn_alert = 1.0;
  cfg.slo.slice_us = 10'000;
  cfg.slo.short_window_us = 20'000;
  cfg.slo.long_window_us = 40'000;
  const LiveRunResult r = run_live(cfg);
  ASSERT_TRUE(r.started);
  EXPECT_GE(r.slo_violations, 1u);
  ASSERT_GE(r.flight_dumps, 1u);
  EXPECT_TRUE(r.slo.violating);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.is_open());
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const util::JsonValue doc = util::json_parse(body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("reason")->as_string(), "slo");
  const util::JsonValue* rings = doc.find("rings");
  ASSERT_NE(rings, nullptr);
  ASSERT_FALSE(rings->items().empty());
  bool saw_distributor = false;
  bool saw_events = false;
  for (const util::JsonValue& ring : rings->items()) {
    if (ring.find("name")->as_string() == "distributor") saw_distributor = true;
    if (!ring.find("events")->items().empty()) saw_events = true;
  }
  EXPECT_TRUE(saw_distributor);
  EXPECT_TRUE(saw_events);
  obs::FlightRecorder::instance().reset();
}

}  // namespace
}  // namespace prord::net
