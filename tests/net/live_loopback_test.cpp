// End-to-end tests over real loopback sockets: distributor + worker
// threads + load generator, small request budgets. These assert the
// operational contract — conservation, correct payloads, parseable
// /metrics — not performance.
#include <gtest/gtest.h>

#include <string>

#include "net/backend_worker.h"
#include "net/live_cluster.h"
#include "net/site_store.h"
#include "trace/models.h"
#include "trace/workload.h"

namespace prord::net {
namespace {

trace::WorkloadSpec small_spec() {
  trace::WorkloadSpec spec = trace::synthetic_spec(/*seed=*/7);
  spec.gen.target_requests = 3000;
  return spec;
}

LiveConfig small_config(core::PolicyKind policy) {
  LiveConfig cfg;
  cfg.policy = policy;
  cfg.backends = 2;
  cfg.requests = 1500;
  cfg.concurrency = 8;
  cfg.workload = small_spec();
  cfg.replication_interval = sim::msec(200);
  return cfg;
}

TEST(LiveLoopback, WrrConservesAndServes) {
  const LiveRunResult r = run_live(small_config(core::PolicyKind::kWrr));
  ASSERT_TRUE(r.started);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.load.issued, 1500u);
  EXPECT_EQ(r.load.completed, 1500u);
  EXPECT_EQ(r.load.failed, 0u);
  EXPECT_GT(r.load.status_ok, 0u);
  EXPECT_GT(r.load.throughput_rps(), 0.0);
  // Every routed request reached a worker and came back.
  EXPECT_EQ(r.routed, r.dist_requests);
  std::uint64_t worker_requests = 0;
  for (const auto& w : r.workers) worker_requests += w.requests;
  EXPECT_EQ(worker_requests, r.dist_requests);
}

TEST(LiveLoopback, PrordConservesAndMirrorsProactivePlacement) {
  const LiveRunResult r = run_live(small_config(core::PolicyKind::kPrord));
  ASSERT_TRUE(r.started);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.load.failed, 0u);
  EXPECT_GT(r.load.status_ok, 0u);
  // The mining policy's prefetch/replication directives must have been
  // mirrored into the real worker caches.
  std::uint64_t preloads = 0;
  for (const auto& w : r.workers) preloads += w.preloads;
  EXPECT_GT(preloads, 0u);
  // PRORD's selling point: far fewer dispatcher contacts than requests.
  EXPECT_LT(r.dispatches, r.routed / 2);
}

TEST(LiveLoopback, MetricsScrapeIsParseable) {
  const LiveRunResult r = run_live(small_config(core::PolicyKind::kLard));
  ASSERT_TRUE(r.started);
  ASSERT_FALSE(r.metrics_scrape.empty());
  // Prometheus text format: TYPE lines plus our counter families.
  EXPECT_NE(r.metrics_scrape.find("# TYPE"), std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_live_requests_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_scrape.find("prord_live_backend_requests_total"),
            std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  std::size_t pos = 0;
  while (pos < r.metrics_scrape.size()) {
    std::size_t eol = r.metrics_scrape.find('\n', pos);
    if (eol == std::string::npos) eol = r.metrics_scrape.size();
    const std::string_view line(r.metrics_scrape.data() + pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      const auto space = line.rfind(' ');
      ASSERT_NE(space, std::string_view::npos) << line;
      EXPECT_GT(space, 0u) << line;
    }
    pos = eol + 1;
  }
  // The final registry mirrors the scrape and adds client-side series.
  EXPECT_FALSE(r.registry.empty());
}

TEST(LiveLoopback, WorkerServesPayloadsDirectly) {
  // One worker, no distributor: check payload framing + cache behavior.
  const trace::BuiltWorkload built = trace::build(small_spec());
  const trace::Workload wl = trace::build_workload(built.trace.records);
  SiteStore store(wl.files);
  BackendWorker worker(0, store, /*cache_capacity=*/1 << 20);
  ASSERT_TRUE(worker.start());

  const trace::FileId file = wl.requests.front().file;
  const std::string url = store.url(file);
  const std::string body = http_get(worker.port(), url);
  EXPECT_EQ(body.size(), store.size_bytes(file));
  EXPECT_EQ(body, store.make_payload(file));
  // Second hit should be served from the worker cache.
  (void)http_get(worker.port(), url);
  EXPECT_GE(worker.stats().cache_hits.load(), 1u);
  // Unknown URLs 404; the worker keeps serving afterwards.
  (void)http_get(worker.port(), "/definitely/not/a/file");
  EXPECT_GE(worker.stats().not_found.load(), 1u);
  EXPECT_EQ(http_get(worker.port(), url), body);
  worker.stop();
}

}  // namespace
}  // namespace prord::net
