// Routing parity: the live path must reuse the simulator's exact policy
// decisions. The same trace prefix goes (a) through play_workload — the
// sim dispatcher — with a full-rate tracer recording each request's
// serving back-end, and (b) through a serial LiveRouter/RoutingCore
// replay with the back-ends stubbed (route → forwarded → response, no
// sockets). Both sides build their policy through the single
// core::create_policy factory over identical zero-cost clusters, so any
// divergence in per-request assignments means the live shim drifted from
// the sim semantics.
//
// Zero service/disk/network costs + strictly increasing arrivals keep at
// most one request in flight in the sim, making its callback order
// (route, notify_routed, notify_complete per request) identical to the
// serial live replay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/experiment.h"
#include "core/workload_player.h"
#include "net/live_router.h"
#include "obs/tracer.h"
#include "trace/models.h"
#include "trace/workload.h"

namespace prord {
namespace {

cluster::ClusterParams zero_cost_params(std::uint32_t backends) {
  cluster::ClusterParams p;
  p.num_backends = backends;
  p.fe_analyze = 0;
  p.fe_dispatch = 0;
  p.tcp_handoff = 0;
  p.fe_handoff_cpu = 0;
  p.connection_latency = 0;
  p.be_request_cpu = 0;
  p.be_copy_per_kb = 0;
  p.dynamic_cpu = 0;
  p.disk_fixed = 0;
  p.disk_per_kb = 0;
  p.net_per_kb = 0;
  p.net_latency = 0;
  return p;
}

/// First `n` requests of the spec's workload, re-timed to strictly
/// increasing 10 µs arrivals (the at-most-one-in-flight precondition).
trace::Workload build_prefix(const trace::WorkloadSpec& spec,
                             std::size_t n) {
  const trace::BuiltWorkload built = trace::build(spec);
  trace::Workload wl = trace::build_workload(built.trace.records);
  if (wl.requests.size() > n) wl.requests.resize(n);
  for (std::size_t i = 0; i < wl.requests.size(); ++i)
    wl.requests[i].at = static_cast<sim::SimTime>(10 + i * 10);
  return wl;
}

core::ExperimentConfig parity_config(core::PolicyKind policy,
                                     std::uint32_t backends) {
  core::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.params = zero_cost_params(backends);
  // Short enough that Algorithm 3 replication rounds fire inside the
  // re-timed prefix for the PRORD runs — parity must cover them too.
  cfg.replication_interval = sim::msec(5);
  return cfg;
}

std::shared_ptr<logmining::MiningModel> mine_for(
    const core::ExperimentConfig& cfg, const trace::Workload& train) {
  if (!core::policy_uses_mining(cfg.policy)) return nullptr;
  auto mining = cfg.mining;
  mining.prefetch_threshold = cfg.prefetch_threshold;
  return std::make_shared<logmining::MiningModel>(train.requests, mining);
}

/// (a) Sim dispatcher: play the workload, return per-request server ids.
std::vector<std::uint32_t> sim_assignments(const core::ExperimentConfig& cfg,
                                           const trace::Workload& wl,
                                           std::uint64_t demand,
                                           std::uint64_t pinned) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim, cfg.params, demand, pinned);
  // The model is rebuilt per side: PRORD's predictor learns online, so
  // sharing one instance would leak state across the two replays.
  auto policy = core::create_policy(cfg, mine_for(cfg, wl), wl.files, 1.0);
  obs::Tracer tracer(1.0);
  core::PlayerOptions opts;
  opts.tracer = &tracer;
  core::play_workload(sim, cluster, *policy, wl, opts);

  std::vector<std::uint32_t> servers(wl.requests.size(), 0xFFFFFFFFu);
  for (const auto& span : tracer.spans()) {
    EXPECT_LT(span.request, servers.size());
    servers[span.request] = span.server;
  }
  return servers;
}

/// (b) Live path, back-ends stubbed: serial route/forward/respond replay.
std::vector<std::uint32_t> live_assignments(
    const core::ExperimentConfig& cfg, const trace::Workload& wl,
    std::uint64_t demand, std::uint64_t pinned) {
  net::LiveRouter router(cfg, mine_for(cfg, wl), wl.files, demand, pinned);
  router.start();
  std::vector<std::uint32_t> servers;
  servers.reserve(wl.requests.size());
  for (const auto& req : wl.requests) {
    router.advance_to(req.at);
    const core::RoutedRequest routed = router.route(req);
    EXPECT_TRUE(routed.valid);
    servers.push_back(routed.decision.server);
    if (!routed.valid) continue;
    router.on_forwarded(req, routed.decision.server);
    router.on_response(req, routed.decision.server);
  }
  router.finish();
  return servers;
}

class RoutingParity : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(RoutingParity, LiveReplayMatchesSimDispatcher) {
  constexpr std::uint32_t kBackends = 4;
  constexpr std::size_t kPrefix = 1500;
  const core::ExperimentConfig cfg = parity_config(GetParam(), kBackends);
  const trace::Workload wl = build_prefix(trace::synthetic_spec(), kPrefix);

  // Cache sizing as run_experiment does it, on the trace footprint.
  const std::uint64_t capacity = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          0.30 * static_cast<double>(wl.files.total_bytes()) / kBackends),
      64 * 1024);
  const std::uint64_t pinned =
      core::policy_uses_mining(cfg.policy)
          ? static_cast<std::uint64_t>(0.25 * static_cast<double>(capacity))
          : 0;
  const std::uint64_t demand = capacity - pinned;

  const auto sim_seq = sim_assignments(cfg, wl, demand, pinned);
  const auto live_seq = live_assignments(cfg, wl, demand, pinned);

  ASSERT_EQ(sim_seq.size(), live_seq.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < sim_seq.size(); ++i) {
    if (sim_seq[i] != live_seq[i]) {
      ++mismatches;
      ADD_FAILURE() << core::policy_label(cfg.policy) << ": request " << i
                    << " sim->" << sim_seq[i] << " live->" << live_seq[i];
      if (mismatches > 5) break;  // keep the log readable
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, RoutingParity,
    ::testing::Values(core::PolicyKind::kWrr, core::PolicyKind::kLard,
                      core::PolicyKind::kExtLardPhttp,
                      core::PolicyKind::kPress, core::PolicyKind::kPrord),
    [](const ::testing::TestParamInfo<core::PolicyKind>& info) {
      switch (info.param) {
        case core::PolicyKind::kWrr: return "Wrr";
        case core::PolicyKind::kLard: return "Lard";
        case core::PolicyKind::kExtLardPhttp: return "ExtLardPhttp";
        case core::PolicyKind::kPress: return "Press";
        default: return "Prord";
      }
    });

}  // namespace
}  // namespace prord
