// HTTP/1.1 incremental parser unit tests: framing, keep-alive semantics,
// byte-at-a-time feeding, pipelining, and malformed-input rejection.
#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace prord::net {
namespace {

TEST(RequestParser, ParsesSimpleGet) {
  RequestParser p;
  ASSERT_TRUE(p.consume("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"));
  const auto req = p.pop();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_TRUE(req->keep_alive);
  ASSERT_NE(req->header("host"), nullptr);
  EXPECT_EQ(*req->header("host"), "x");
  EXPECT_FALSE(p.pop().has_value());
}

TEST(RequestParser, ByteAtATime) {
  const std::string raw =
      "GET /a/b.gif HTTP/1.1\r\nHost: prord\r\nX-Test: 1\r\n\r\n";
  RequestParser p;
  for (char c : raw) ASSERT_TRUE(p.consume(std::string_view(&c, 1)));
  const auto req = p.pop();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/a/b.gif");
  ASSERT_NE(req->header("x-test"), nullptr);
  EXPECT_EQ(*req->header("x-test"), "1");
}

TEST(RequestParser, PipelinedRequests) {
  RequestParser p;
  ASSERT_TRUE(
      p.consume("GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n"));
  auto a = p.pop();
  auto b = p.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->target, "/1");
  EXPECT_EQ(b->target, "/2");
}

TEST(RequestParser, ConnectionCloseHonored) {
  RequestParser p;
  ASSERT_TRUE(p.consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  const auto req = p.pop();
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->keep_alive);
}

TEST(RequestParser, Http10DefaultsToClose) {
  RequestParser p;
  ASSERT_TRUE(p.consume("GET / HTTP/1.0\r\n\r\n"));
  const auto req = p.pop();
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->keep_alive);
}

TEST(RequestParser, RejectsGarbageMethod) {
  RequestParser p;
  EXPECT_FALSE(p.consume("get / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsMissingVersion) {
  RequestParser p;
  EXPECT_FALSE(p.consume("GET /\r\n\r\n"));
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsOversizedHeader) {
  RequestParser p;
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(kMaxHeaderBytes, 'a');
  EXPECT_FALSE(p.consume(raw));
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, SkipsContentLengthBody) {
  RequestParser p;
  ASSERT_TRUE(p.consume(
      "POST /f HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next "
      "HTTP/1.1\r\n\r\n"));
  auto a = p.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->method, "POST");
  auto b = p.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->target, "/next");
}

TEST(ResponseParser, FramesByContentLength) {
  ResponseParser p;
  ASSERT_TRUE(p.consume(
      "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody"));
  const auto resp = p.pop();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "body");
}

TEST(ResponseParser, SplitAcrossReads) {
  ResponseParser p;
  ASSERT_TRUE(p.consume("HTTP/1.1 404 Not Fo"));
  EXPECT_FALSE(p.pop().has_value());
  ASSERT_TRUE(p.consume("und\r\nContent-Length: 2\r\n\r\nn"));
  EXPECT_FALSE(p.pop().has_value());
  ASSERT_TRUE(p.consume("o"));
  const auto resp = p.pop();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->body, "no");
}

TEST(ResponseParser, PipelinedResponses) {
  ResponseParser p;
  ASSERT_TRUE(p.consume(
      "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\naHTTP/1.1 200 "
      "OK\r\nContent-Length: 1\r\n\r\nb"));
  auto a = p.pop();
  auto b = p.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->body, "a");
  EXPECT_EQ(b->body, "b");
}

TEST(ResponseParser, RejectsBadStatus) {
  ResponseParser p;
  EXPECT_FALSE(p.consume("HTTP/1.1 999 Huh\r\n\r\n"));
  EXPECT_TRUE(p.failed());
}

TEST(Formatters, RoundTrip) {
  ResponseParser rp;
  ASSERT_TRUE(rp.consume(
      format_response(200, "OK", "payload", "X-Backend: 3\r\n")));
  const auto resp = rp.pop();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "payload");
  ASSERT_NE(resp->header("x-backend"), nullptr);
  EXPECT_EQ(*resp->header("x-backend"), "3");

  RequestParser qp;
  ASSERT_TRUE(qp.consume(format_request("/x.html")));
  const auto req = qp.pop();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/x.html");
}

}  // namespace
}  // namespace prord::net
