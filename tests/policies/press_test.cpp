#include "policies/press.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/workload_player.h"

namespace prord::policies {
namespace {

trace::Request make_request(trace::FileId file, std::uint32_t conn) {
  trace::Request r;
  r.file = file;
  r.conn = conn;
  r.bytes = 2048;
  return r;
}

class PressTest : public ::testing::Test {
 protected:
  PressTest() {
    params_.num_backends = 4;
    cluster_ = std::make_unique<cluster::Cluster>(sim_, params_, 1 << 20,
                                                  1 << 18);
    press_.start(*cluster_);
  }

  RouteDecision route(trace::FileId file, ConnectionState& conn) {
    const auto req = make_request(file, 0);
    RouteContext ctx{req, conn};
    return press_.route(ctx, *cluster_);
  }

  sim::Simulator sim_;
  cluster::ClusterParams params_;
  std::unique_ptr<cluster::Cluster> cluster_;
  Press press_;
};

TEST_F(PressTest, ConnectionsSpreadRoundRobinAndStick) {
  std::vector<cluster::ServerId> first;
  for (int c = 0; c < 4; ++c) {
    ConnectionState conn;
    const auto d = route(100 + c, conn);
    EXPECT_TRUE(d.handoff);
    first.push_back(d.server);
    conn.server = d.server;
    const auto d2 = route(200 + c, conn);
    EXPECT_EQ(d2.server, d.server);  // sticky
    EXPECT_FALSE(d2.handoff);
    EXPECT_FALSE(d2.contacted_dispatcher);  // PRESS never dispatches
  }
  std::sort(first.begin(), first.end());
  EXPECT_EQ(first, (std::vector<cluster::ServerId>{0, 1, 2, 3}));
}

TEST_F(PressTest, FirstServerBecomesOwnerOthersPull) {
  ConnectionState c1;
  const auto d1 = route(7, c1);
  EXPECT_EQ(d1.fetch_from, cluster::kNoServer);  // first sight: owner = self
  ConnectionState c2;
  const auto d2 = route(7, c2);
  if (d2.server != d1.server) {
    EXPECT_EQ(d2.fetch_from, d1.server);
  } else {
    EXPECT_EQ(d2.fetch_from, cluster::kNoServer);
  }
}

TEST_F(PressTest, UnavailableOwnerNotUsedAsSource) {
  ConnectionState c1;
  const auto d1 = route(7, c1);
  cluster_->backend(d1.server).set_power_state(cluster::PowerState::kOff);
  ConnectionState c2;
  const auto d2 = route(7, c2);
  EXPECT_NE(d2.server, d1.server);
  EXPECT_EQ(d2.fetch_from, cluster::kNoServer);
}

TEST(PressServe, CooperativePullUsesNicNotDisk) {
  sim::Simulator sim;
  cluster::ClusterParams params;
  cluster::BackendServer owner(sim, 0, params, 1 << 20, 0);
  cluster::BackendServer node(sim, 1, params, 1 << 20, 0);
  owner.serve(7, 4096, 0, {});
  sim.run();
  ASSERT_TRUE(owner.caches(7));

  sim::SimTime done = 0;
  const auto t0 = sim.now();
  node.serve_cooperative(7, 4096, 0, &owner, [&](sim::SimTime t) { done = t; });
  sim.run();
  EXPECT_EQ(node.stats().cooperative_pulls, 1u);
  EXPECT_EQ(node.stats().disk_reads, 0u);
  EXPECT_TRUE(node.caches(7));
  EXPECT_GT(owner.nic().busy_time(), 0);
  EXPECT_LT(done - t0, params.disk_fixed);  // far cheaper than a disk read
}

TEST(PressServe, FallsBackToDiskWhenSourceLacksFile) {
  sim::Simulator sim;
  cluster::ClusterParams params;
  cluster::BackendServer owner(sim, 0, params, 1 << 20, 0);
  cluster::BackendServer node(sim, 1, params, 1 << 20, 0);
  int done = 0;
  node.serve_cooperative(7, 4096, 0, &owner, [&](sim::SimTime) { ++done; });
  sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(node.stats().cooperative_pulls, 0u);
  EXPECT_EQ(node.stats().disk_reads, 1u);
}

TEST(PressServe, LocalHitSkipsTheSource) {
  sim::Simulator sim;
  cluster::ClusterParams params;
  cluster::BackendServer owner(sim, 0, params, 1 << 20, 0);
  cluster::BackendServer node(sim, 1, params, 1 << 20, 0);
  node.install_replica(7, 4096);
  owner.install_replica(7, 4096);
  node.serve_cooperative(7, 4096, 0, &owner, {});
  sim.run();
  EXPECT_EQ(node.stats().cooperative_pulls, 0u);
  EXPECT_EQ(owner.nic().busy_time(), 0);
}

TEST(PressExperiment, CompletesAndNeverDispatches) {
  core::ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.gen.target_requests = 4000;
  config.policy = core::PolicyKind::kPress;
  const auto r = core::run_experiment(config);
  EXPECT_EQ(r.policy, "PRESS");
  EXPECT_EQ(r.metrics.completed, r.num_requests);
  EXPECT_EQ(r.metrics.dispatches, 0u);
  EXPECT_GT(r.metrics.interconnect_busy, 0);
}

}  // namespace
}  // namespace prord::policies
