#include <gtest/gtest.h>

#include "policies/ext_lard_phttp.h"
#include "policies/lard.h"
#include "policies/wrr.h"

namespace prord::policies {
namespace {

trace::Request make_request(trace::FileId file, std::uint32_t conn = 0,
                            bool embedded = false) {
  trace::Request r;
  r.file = file;
  r.conn = conn;
  r.bytes = 1024;
  r.is_embedded = embedded;
  return r;
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() {
    params_.num_backends = 4;
    cluster_ = std::make_unique<cluster::Cluster>(sim_, params_, 1 << 20,
                                                  1 << 18);
  }

  RouteDecision route(DistributionPolicy& p, const trace::Request& req,
                      ConnectionState& conn) {
    RouteContext ctx{req, conn};
    return p.route(ctx, *cluster_);
  }

  sim::Simulator sim_;
  cluster::ClusterParams params_;
  std::unique_ptr<cluster::Cluster> cluster_;
};

// ---------------------------------------------------------------------------
// WRR

TEST_F(PolicyTest, WrrCyclesThroughServers) {
  WeightedRoundRobin wrr;
  wrr.start(*cluster_);
  std::vector<cluster::ServerId> picks;
  for (std::uint32_t c = 0; c < 8; ++c) {
    ConnectionState conn;
    const auto d = route(wrr, make_request(1, c), conn);
    picks.push_back(d.server);
    EXPECT_TRUE(d.handoff);
    EXPECT_FALSE(d.contacted_dispatcher);
  }
  EXPECT_EQ(picks, (std::vector<cluster::ServerId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST_F(PolicyTest, WrrKeepsConnectionOnItsServer) {
  WeightedRoundRobin wrr;
  wrr.start(*cluster_);
  ConnectionState conn;
  const auto first = route(wrr, make_request(1, 0), conn);
  conn.server = first.server;
  const auto second = route(wrr, make_request(2, 0), conn);
  EXPECT_EQ(second.server, first.server);
  EXPECT_FALSE(second.handoff);
}

TEST_F(PolicyTest, WrrStickyConnectionLeavesMarkedDownServer) {
  // Same-tick failover: once the health monitor marks the connection's
  // server down, the very next request on that connection must rebalance
  // instead of following the sticky assignment to the corpse.
  WeightedRoundRobin wrr;
  wrr.start(*cluster_);
  ConnectionState conn;
  const auto first = route(wrr, make_request(1, 0), conn);
  conn.server = first.server;
  cluster_->backend(first.server).set_marked_down(true);
  const auto second = route(wrr, make_request(2, 0), conn);
  EXPECT_NE(second.server, first.server);
  EXPECT_TRUE(cluster_->backend(second.server).available());
  EXPECT_TRUE(second.handoff);
}

TEST_F(PolicyTest, WrrHonorsWeights) {
  WeightedRoundRobin wrr({2, 1, 1, 1});
  wrr.start(*cluster_);
  std::vector<cluster::ServerId> picks;
  for (std::uint32_t c = 0; c < 5; ++c) {
    ConnectionState conn;
    picks.push_back(route(wrr, make_request(1, c), conn).server);
  }
  EXPECT_EQ(picks, (std::vector<cluster::ServerId>{0, 0, 1, 2, 3}));
}

TEST_F(PolicyTest, WrrSkipsUnavailableServer) {
  WeightedRoundRobin wrr;
  wrr.start(*cluster_);
  cluster_->backend(1).set_power_state(cluster::PowerState::kOff);
  std::vector<cluster::ServerId> picks;
  for (std::uint32_t c = 0; c < 3; ++c) {
    ConnectionState conn;
    picks.push_back(route(wrr, make_request(1, c), conn).server);
  }
  for (auto s : picks) EXPECT_NE(s, 1u);
}

TEST_F(PolicyTest, WrrRejectsBadWeights) {
  EXPECT_THROW(WeightedRoundRobin({1, 0}), std::invalid_argument);
  WeightedRoundRobin wrong({1, 1});
  EXPECT_THROW(wrong.start(*cluster_), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LARD

TEST_F(PolicyTest, LardStickyFileAssignment) {
  Lard lard;
  ConnectionState c1, c2;
  const auto d1 = route(lard, make_request(7, 0), c1);
  c1.server = d1.server;
  const auto d2 = route(lard, make_request(7, 1), c2);
  EXPECT_EQ(d1.server, d2.server);
  EXPECT_TRUE(d1.contacted_dispatcher);
  EXPECT_TRUE(d2.contacted_dispatcher);
}

TEST_F(PolicyTest, LardFirstAssignmentIsLeastLoaded) {
  Lard lard;
  cluster_->backend(0).serve(99, 1024, 0, {});
  ConnectionState conn;
  const auto d = route(lard, make_request(7, 0), conn);
  EXPECT_NE(d.server, 0u);
}

TEST_F(PolicyTest, LardMultipleHandoffEveryRequest) {
  // Section 2.1.1: plain LARD under P-HTTP hands off per request.
  Lard lard;
  ConnectionState conn;
  const auto d1 = route(lard, make_request(7, 0), conn);
  conn.server = d1.server;
  const auto d2 = route(lard, make_request(7, 0), conn);
  EXPECT_TRUE(d1.handoff);
  EXPECT_TRUE(d2.handoff);  // same server, still a handoff
}

TEST_F(PolicyTest, LardRebalancesOverloadedServer) {
  LardOptions opt;
  opt.t_low = 1;
  opt.t_high = 3;
  Lard lard(opt);
  ConnectionState conn;
  const auto d1 = route(lard, make_request(7, 0), conn);
  // Overload the assigned server well past 2*t_high.
  for (int i = 0; i < 8; ++i) cluster_->backend(d1.server).serve(50 + i, 1024, 0, {});
  const auto d2 = route(lard, make_request(7, 1), conn);
  EXPECT_NE(d2.server, d1.server);
  // The reassignment is remembered.
  const auto d3 = route(lard, make_request(7, 2), conn);
  EXPECT_EQ(d3.server, d2.server);
}

TEST_F(PolicyTest, LardAvoidsUnavailableServer) {
  Lard lard;
  ConnectionState conn;
  const auto d1 = route(lard, make_request(7, 0), conn);
  cluster_->backend(d1.server).set_power_state(cluster::PowerState::kOff);
  const auto d2 = route(lard, make_request(7, 1), conn);
  EXPECT_NE(d2.server, d1.server);
}

TEST_F(PolicyTest, LardReplicationGrowsSetUnderPressure) {
  LardOptions opt;
  opt.t_low = 1;
  opt.t_high = 2;
  opt.replication = true;
  Lard lard(opt);
  ConnectionState conn;
  const auto d1 = route(lard, make_request(7, 0), conn);
  for (int i = 0; i < 6; ++i) cluster_->backend(d1.server).serve(60 + i, 1024, 0, {});
  const auto d2 = route(lard, make_request(7, 1), conn);
  EXPECT_NE(d2.server, d1.server);
  // Replica set now contains both.
  EXPECT_EQ(cluster_->dispatcher().peek(7).size(), 2u);
}

TEST_F(PolicyTest, LardRejectsBadThresholds) {
  LardOptions opt;
  opt.t_low = 10;
  opt.t_high = 10;
  EXPECT_THROW(Lard{opt}, std::invalid_argument);
  LardOptions opt2;
  opt2.imbalance_factor = 0.5;
  EXPECT_THROW(Lard{opt2}, std::invalid_argument);
}

TEST(ShouldRebalance, AbsoluteAndRelativeTriggers) {
  LardOptions opt;  // t_low 8, t_high 24, factor 2, slack 4
  // Absolute: overloaded and an idle node exists.
  EXPECT_TRUE(should_rebalance(25, 3, 10, opt));
  // Absolute: pathological even without idle nodes.
  EXPECT_TRUE(should_rebalance(48, 20, 30, opt));
  // Relative: double the average with a lighter node available.
  EXPECT_TRUE(should_rebalance(25, 5, 10, opt));
  // Balanced cluster: no trigger.
  EXPECT_FALSE(should_rebalance(12, 9, 10, opt));
  // Above average but no lighter target.
  EXPECT_FALSE(should_rebalance(25, 11, 10, opt));
}

// ---------------------------------------------------------------------------
// Ext-LARD-PHTTP

TEST_F(PolicyTest, ExtLardSingleHandoffThenForwarding) {
  ExtLardPhttp ext;
  ConnectionState conn;
  // Seed two files on different servers.
  ConnectionState tmp;
  const auto home = route(ext, make_request(1, 9), tmp);
  cluster_->backend(home.server).serve(1, 1024, 0, {});

  const auto d1 = route(ext, make_request(1, 0), conn);
  EXPECT_TRUE(d1.handoff);
  EXPECT_FALSE(d1.forwarded);
  conn.server = d1.server;

  // Force file 2 to a different server by loading d1.server.
  for (int i = 0; i < 3; ++i) cluster_->backend(d1.server).serve(70 + i, 1024, 0, {});
  const auto d2 = route(ext, make_request(2, 0), conn);
  if (d2.server != conn.server) {
    EXPECT_TRUE(d2.forwarded);
    EXPECT_FALSE(d2.handoff);
  } else {
    EXPECT_FALSE(d2.forwarded);
  }
}

TEST_F(PolicyTest, ExtLardSameServerNoForwardNoHandoff) {
  ExtLardPhttp ext;
  ConnectionState conn;
  const auto d1 = route(ext, make_request(1, 0), conn);
  conn.server = d1.server;
  const auto d2 = route(ext, make_request(1, 0), conn);
  EXPECT_EQ(d2.server, conn.server);
  EXPECT_FALSE(d2.handoff);
  EXPECT_FALSE(d2.forwarded);
}

}  // namespace
}  // namespace prord::policies
