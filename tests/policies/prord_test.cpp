#include "policies/prord.h"

#include <gtest/gtest.h>

namespace prord::policies {
namespace {

/// Builds a tiny mining model: pages 0 -> 1 -> 2 with bundle {10, 11} on
/// page 0 and {12} on page 1.
struct Fixture {
  Fixture() {
    params.num_backends = 4;
    cluster = std::make_unique<cluster::Cluster>(sim, params, 1 << 20,
                                                 1 << 18);
    files.intern("/p0.html", 2048);   // id 0
    files.intern("/p1.html", 2048);   // id 1
    files.intern("/p2.html", 2048);   // id 2
    files.intern("/a.gif", 1024);     // id 10? no: id 3
    files.intern("/b.gif", 1024);     // id 4
    files.intern("/c.gif", 1024);     // id 5

    std::vector<trace::Request> history;
    for (std::uint32_t s = 0; s < 40; ++s) {
      const sim::SimTime base = sim::sec(s * 10.0);
      history.push_back(req(base, s, 0, false));
      history.push_back(obj(base + 1, s, 3, 0));
      history.push_back(obj(base + 2, s, 4, 0));
      history.push_back(req(base + sim::sec(1.0), s, 1, false));
      history.push_back(obj(base + sim::sec(1.0) + 1, s, 5, 1));
      history.push_back(req(base + sim::sec(2.0), s, 2, false));
    }
    model = std::make_shared<logmining::MiningModel>(history,
                                                     logmining::MiningConfig{});
  }

  static trace::Request req(sim::SimTime at, std::uint32_t client,
                            trace::FileId file, bool embedded) {
    trace::Request r;
    r.at = at;
    r.client = client;
    r.conn = client;
    r.file = file;
    r.bytes = 1024;
    r.is_embedded = embedded;
    return r;
  }
  static trace::Request obj(sim::SimTime at, std::uint32_t client,
                            trace::FileId file, trace::FileId parent) {
    auto r = req(at, client, file, true);
    r.parent_page = parent;
    return r;
  }

  RouteDecision route(Prord& p, const trace::Request& r,
                      ConnectionState& conn) {
    RouteContext ctx{r, conn};
    return p.route(ctx, *cluster);
  }

  sim::Simulator sim;
  cluster::ClusterParams params;
  std::unique_ptr<cluster::Cluster> cluster;
  trace::FileTable files;
  std::shared_ptr<logmining::MiningModel> model;
};

TEST(Prord, RejectsBadConstruction) {
  Fixture f;
  EXPECT_THROW(Prord(nullptr, f.files), std::invalid_argument);
  PrordOptions opt;
  opt.prefetch_threshold = 0.0;
  EXPECT_THROW(Prord(f.model, f.files, opt), std::invalid_argument);
}

TEST(Prord, NameReflectsAblation) {
  Fixture f;
  EXPECT_EQ(Prord(f.model, f.files).name(), "PRORD");
  EXPECT_EQ(Prord(f.model, f.files, lard_bundle_options()).name(),
            "LARD-bundle");
  EXPECT_EQ(Prord(f.model, f.files, lard_distribution_options()).name(),
            "LARD-distribution");
  EXPECT_EQ(Prord(f.model, f.files, lard_prefetch_nav_options()).name(),
            "LARD-prefetch-nav");
}

TEST(Prord, EmbeddedForwardedToConnectionServer) {
  Fixture f;
  Prord prord(f.model, f.files);
  // The connection's server has the object staged (bundle prefetch).
  f.cluster->backend(2).install_replica(3, 1024);
  ConnectionState conn;
  conn.server = 2;
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_EQ(d.server, 2u);
  EXPECT_FALSE(d.contacted_dispatcher);
  EXPECT_FALSE(d.handoff);
  EXPECT_EQ(prord.bundle_forwards(), 1u);
}

TEST(Prord, EmbeddedNotForwardedToMarkedDownServer) {
  // Same-tick failover: the moment the health monitor marks the
  // connection's server down, bundle forwarding must stop targeting it
  // even though the object is (was) resident there.
  Fixture f;
  Prord prord(f.model, f.files);
  f.cluster->backend(2).install_replica(3, 1024);
  f.cluster->backend(2).set_marked_down(true);
  ConnectionState conn;
  conn.server = 2;
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_NE(d.server, 2u);
  EXPECT_TRUE(d.contacted_dispatcher);
  EXPECT_EQ(prord.bundle_forwards(), 0u);
}

TEST(Prord, ServerDownPurgesProactiveRegistries) {
  // A crashed holder loses its cache; on_server_down must forget the
  // prefetch registration so later requests for the page do not chase the
  // dead (or cold-restarted) server.
  Fixture f;
  Prord prord(f.model, f.files);
  prord.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  f.sim.run();
  prord.on_routed(Fixture::req(sim::sec(1.0), 0, 1, false), 1, *f.cluster);
  f.sim.run();
  ASSERT_TRUE(f.cluster->backend(1).caches(2));

  f.cluster->backend(1).crash();
  f.cluster->backend(1).set_marked_down(true);
  prord.on_server_down(1, *f.cluster);

  ConnectionState other;
  const auto d = f.route(prord, Fixture::req(sim::sec(2.0), 9, 2, false),
                         other);
  EXPECT_NE(d.server, 1u);
  EXPECT_TRUE(d.contacted_dispatcher);
}

TEST(Prord, EmbeddedNotResidentFallsBackToDispatcher) {
  // Fig. 8 low-memory behaviour: when the connection's server evicted the
  // object, the front-end uses per-object locality instead of thrashing.
  Fixture f;
  Prord prord(f.model, f.files);
  ConnectionState conn;
  conn.server = 2;
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_TRUE(d.contacted_dispatcher);
  EXPECT_EQ(prord.bundle_forwards(), 0u);
}

TEST(Prord, EmbeddedForwardedWhileFetchInFlight) {
  Fixture f;
  Prord prord(f.model, f.files);
  f.cluster->backend(2).prefetch(3, 1024);  // read still in flight
  ConnectionState conn;
  conn.server = 2;
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_EQ(d.server, 2u);
  EXPECT_FALSE(d.contacted_dispatcher);
}

TEST(Prord, EmbeddedWithoutConnectionFallsToDispatcher) {
  Fixture f;
  Prord prord(f.model, f.files);
  ConnectionState conn;  // no server yet
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_TRUE(d.contacted_dispatcher);
  EXPECT_NE(d.server, cluster::kNoServer);
}

TEST(Prord, BundleForwardingDisabledUsesDispatcher) {
  Fixture f;
  Prord prord(f.model, f.files, lard_prefetch_nav_options());
  ConnectionState conn;
  conn.server = 2;
  const auto d = f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_TRUE(d.contacted_dispatcher);
}

TEST(Prord, ConnectionAffinityForCachedPage) {
  Fixture f;
  Prord prord(f.model, f.files);
  f.cluster->backend(1).install_replica(2, 2048);
  ConnectionState conn;
  conn.server = 1;
  const auto d = f.route(prord, Fixture::req(0, 0, 2, false), conn);
  EXPECT_EQ(d.server, 1u);
  EXPECT_FALSE(d.contacted_dispatcher);
}

TEST(Prord, OnRoutedStagesBundleOfRequestedPage) {
  Fixture f;
  Prord prord(f.model, f.files);
  const trace::FileId a = f.files.lookup("/a.gif");
  const trace::FileId b = f.files.lookup("/b.gif");
  ASSERT_NE(a, trace::kInvalidFile);
  prord.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  f.sim.run();
  EXPECT_TRUE(f.cluster->backend(1).caches(a));
  EXPECT_TRUE(f.cluster->backend(1).caches(b));
}

TEST(Prord, PredictionPrefetchesNextPage) {
  Fixture f;
  Prord prord(f.model, f.files);
  // Session history 0 -> 1 strongly predicts 2. Let staged disk work drain
  // between the page views (the prefetch gate throttles bursts).
  prord.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  f.sim.run();
  prord.on_routed(Fixture::req(sim::sec(1.0), 0, 1, false), 1, *f.cluster);
  f.sim.run();
  EXPECT_GT(prord.prefetches_triggered(), 0u);
  EXPECT_TRUE(f.cluster->backend(1).caches(2));
}

TEST(Prord, PrefetchedPageRoutedWithoutDispatcher) {
  Fixture f;
  Prord prord(f.model, f.files);
  prord.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  f.sim.run();
  prord.on_routed(Fixture::req(sim::sec(1.0), 0, 1, false), 1, *f.cluster);
  f.sim.run();
  ASSERT_TRUE(f.cluster->backend(1).caches(2));
  // A different connection asking for page 2 goes straight to server 1.
  ConnectionState other;
  other.server = 3;
  const auto d = f.route(prord, Fixture::req(sim::sec(2.0), 9, 2, false), other);
  EXPECT_EQ(d.server, 1u);
  EXPECT_FALSE(d.contacted_dispatcher);
  EXPECT_TRUE(d.handoff);
  EXPECT_GT(prord.prefetch_hits(), 0u);
}

TEST(Prord, OverloadedProactiveHolderFallsBack) {
  Fixture f;
  PrordOptions opt;
  opt.lard.t_low = 1;
  opt.lard.t_high = 2;
  Prord prord(f.model, f.files, std::move(opt));
  prord.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  f.sim.run();
  prord.on_routed(Fixture::req(sim::sec(1.0), 0, 1, false), 1, *f.cluster);
  f.sim.run();
  ASSERT_TRUE(f.cluster->backend(1).caches(2));
  for (int i = 0; i < 8; ++i) f.cluster->backend(1).serve(80 + i, 1024, 0, {});
  ConnectionState other;
  const auto d = f.route(prord, Fixture::req(sim::sec(2.0), 9, 2, false),
                         other);
  EXPECT_NE(d.server, 1u);  // holder too hot: dispatcher path used
  EXPECT_TRUE(d.contacted_dispatcher);
}

TEST(Prord, ReplicationRoundPushesHotFiles) {
  Fixture f;
  PrordOptions opt;
  opt.replication_interval = sim::sec(1.0);
  opt.replication_plan.min_rank = 1.0;
  Prord prord(f.model, f.files, std::move(opt));
  prord.start(*f.cluster);
  // Heat one file well past the others.
  for (int i = 0; i < 200; ++i)
    prord.on_routed(Fixture::req(0, 0, 0, false), 0, *f.cluster);
  f.sim.schedule(sim::sec(5.0), [&] { prord.finish(*f.cluster); });
  f.sim.run();
  EXPECT_GT(prord.replication_rounds(), 0u);
  EXPECT_GT(prord.replicas_pushed(), 0u);
  // Page 0 should now be on several back-ends.
  int holders = 0;
  for (cluster::ServerId s = 0; s < f.cluster->size(); ++s)
    holders += f.cluster->backend(s).caches(0);
  EXPECT_GE(holders, 2);
}

TEST(Prord, FinishStopsReplication) {
  Fixture f;
  PrordOptions opt;
  opt.replication_interval = sim::sec(1.0);
  Prord prord(f.model, f.files, std::move(opt));
  prord.start(*f.cluster);
  prord.finish(*f.cluster);
  f.sim.run();  // must drain without periodic wakeups
  EXPECT_TRUE(f.sim.idle());
}

TEST(Prord, ResetCountersZeroes) {
  Fixture f;
  Prord prord(f.model, f.files);
  f.cluster->backend(0).install_replica(3, 1024);
  ConnectionState conn;
  conn.server = 0;
  f.route(prord, Fixture::obj(0, 0, 3, 0), conn);
  EXPECT_GT(prord.bundle_forwards(), 0u);
  prord.reset_counters();
  EXPECT_EQ(prord.bundle_forwards(), 0u);
  EXPECT_EQ(prord.prefetches_triggered(), 0u);
}

TEST(Prord, AdaptiveThresholdRisesOnWastedPrefetches) {
  // Note: while the maintenance PeriodicTask is armed, the event set never
  // drains on its own — use bounded run(horizon) and finish() to stop it.
  Fixture f;
  PrordOptions opt;
  opt.adaptive_threshold = true;
  opt.replication = false;
  opt.replication_interval = sim::sec(1.0);
  Prord prord(f.model, f.files, std::move(opt));
  prord.start(*f.cluster);
  EXPECT_DOUBLE_EQ(prord.current_threshold(), 0.4);
  // Trigger predictions (0 -> 1 predicts 2) for many connections whose
  // predicted pages are never actually requested: pure waste.
  for (std::uint32_t c = 0; c < 12; ++c) {
    auto r0 = Fixture::req(0, c, 0, false);
    r0.conn = c;
    prord.on_routed(r0, c % 4, *f.cluster);
    f.sim.run(f.sim.now() + sim::msec(50));
    auto r1 = Fixture::req(sim::sec(0.1), c, 1, false);
    r1.conn = c;
    prord.on_routed(r1, c % 4, *f.cluster);
    f.sim.run(f.sim.now() + sim::msec(50));
  }
  ASSERT_GE(prord.prefetches_triggered(), 4u);
  // Let a few maintenance periods elapse, then stop the task and drain.
  f.sim.run(f.sim.now() + sim::sec(3.5));
  prord.finish(*f.cluster);
  f.sim.run();
  EXPECT_GT(prord.current_threshold(), 0.4);
}

TEST(Prord, FixedThresholdStaysPut) {
  Fixture f;
  PrordOptions opt;
  opt.replication = true;
  opt.replication_interval = sim::sec(1.0);
  Prord prord(f.model, f.files, std::move(opt));
  prord.start(*f.cluster);
  for (std::uint32_t c = 0; c < 12; ++c) {
    auto r0 = Fixture::req(0, c, 0, false);
    r0.conn = c;
    prord.on_routed(r0, c % 4, *f.cluster);
    f.sim.run(f.sim.now() + sim::msec(50));
  }
  f.sim.run(f.sim.now() + sim::sec(3.5));
  prord.finish(*f.cluster);
  f.sim.run();
  EXPECT_DOUBLE_EQ(prord.current_threshold(), 0.4);
}

TEST(Prord, AblationTogglesDisableMechanisms) {
  Fixture f;
  // Distribution-only: no prefetch staging on_routed.
  Prord dist(f.model, f.files, lard_distribution_options());
  dist.on_routed(Fixture::req(0, 0, 0, false), 1, *f.cluster);
  dist.on_routed(Fixture::req(sim::sec(1.0), 0, 1, false), 1, *f.cluster);
  f.sim.run();
  EXPECT_EQ(dist.prefetches_triggered(), 0u);
  EXPECT_FALSE(f.cluster->backend(1).caches(2));
}

}  // namespace
}  // namespace prord::policies
