// DriftMonitor: rolling-horizon hit-rate with sentinel values, the
// min-sample guard, threshold triggering, and the cooldown that keeps one
// drift episode from causing a re-mining storm.
#include "adapt/drift_monitor.h"

#include <gtest/gtest.h>

namespace prord::adapt {
namespace {

DriftMonitorOptions opts(double threshold = 0.5,
                         std::uint64_t min_samples = 10) {
  DriftMonitorOptions o;
  o.horizon = sim::sec(1.0);
  o.threshold = threshold;
  o.min_samples = min_samples;
  o.cooldown = sim::sec(1.0);
  return o;
}

void feed(DriftMonitor& m, sim::SimTime at, std::uint64_t hits,
          std::uint64_t misses) {
  for (std::uint64_t i = 0; i < hits; ++i) m.on_prediction(true, at);
  for (std::uint64_t i = 0; i < misses; ++i) m.on_prediction(false, at);
}

TEST(DriftMonitor, SentinelsBeforeAnySample) {
  DriftMonitor m(opts());
  EXPECT_DOUBLE_EQ(m.hit_rate(sim::sec(1.0)), -1.0);
  EXPECT_DOUBLE_EQ(m.prefetch_waste(sim::sec(1.0)), -1.0);
}

TEST(DriftMonitor, HitRateUntrustedUnderMinSamples) {
  DriftMonitor m(opts(0.5, /*min_samples=*/10));
  feed(m, sim::msec(100), 2, 7);  // 9 < 10 samples, rate would be 0.22
  EXPECT_DOUBLE_EQ(m.hit_rate(sim::msec(100)), -1.0);
  EXPECT_FALSE(m.should_trigger(sim::msec(100)));

  m.on_prediction(false, sim::msec(100));  // 10th sample
  EXPECT_NEAR(m.hit_rate(sim::msec(100)), 0.2, 1e-9);
}

TEST(DriftMonitor, HitRateForgetsBeyondHorizon) {
  DriftMonitor m(opts(/*threshold=*/0.0, /*min_samples=*/1));
  feed(m, sim::msec(100), 10, 0);       // all hits early
  feed(m, sim::msec(900), 0, 10);       // all misses late
  EXPECT_NEAR(m.hit_rate(sim::msec(900)), 0.5, 1e-9);
  // Two horizons later the early hits have rolled out of the ring; with
  // nothing left inside the window the rate reverts to the sentinel.
  EXPECT_DOUBLE_EQ(m.hit_rate(sim::sec(3.0)), -1.0);
}

TEST(DriftMonitor, PrefetchWasteIsUnusedFraction) {
  DriftMonitor m(opts());
  for (int i = 0; i < 8; ++i) m.on_prefetch_issued(sim::msec(100));
  for (int i = 0; i < 2; ++i) m.on_prefetch_used(sim::msec(200));
  EXPECT_NEAR(m.prefetch_waste(sim::msec(200)), 0.75, 1e-9);
}

TEST(DriftMonitor, TriggersBelowThresholdAfterCooldown) {
  DriftMonitor m(opts(/*threshold=*/0.5, /*min_samples=*/10));
  // Cold start counts as "just re-mined": nothing triggers inside the
  // first cooldown even with a terrible rate.
  feed(m, sim::msec(100), 0, 20);
  EXPECT_FALSE(m.should_trigger(sim::msec(100)));

  // Past the cooldown the bad rate (still inside the horizon) triggers.
  feed(m, sim::msec(1200), 0, 20);
  EXPECT_TRUE(m.should_trigger(sim::msec(1200)));
}

TEST(DriftMonitor, GoodRateNeverTriggers) {
  DriftMonitor m(opts(/*threshold=*/0.5, /*min_samples=*/10));
  feed(m, sim::msec(1200), 20, 5);  // 0.8 >= 0.5
  EXPECT_FALSE(m.should_trigger(sim::msec(1200)));
}

TEST(DriftMonitor, TriggerArmsItsOwnCooldown) {
  DriftMonitor m(opts(/*threshold=*/0.5, /*min_samples=*/10));
  feed(m, sim::msec(1200), 0, 20);
  ASSERT_TRUE(m.should_trigger(sim::msec(1200)));
  // Same drift episode, an instant later: suppressed by the cooldown the
  // first trigger armed.
  feed(m, sim::msec(1300), 0, 20);
  EXPECT_FALSE(m.should_trigger(sim::msec(1300)));
  // A full cooldown later it may fire again.
  feed(m, sim::msec(2400), 0, 20);
  EXPECT_TRUE(m.should_trigger(sim::msec(2400)));
}

TEST(DriftMonitor, NoteRemineClearsRingAndRestartsCooldown) {
  DriftMonitor m(opts(/*threshold=*/0.5, /*min_samples=*/10));
  feed(m, sim::msec(1200), 0, 20);
  ASSERT_TRUE(m.should_trigger(sim::msec(1200)));

  m.note_remine(sim::msec(1300));
  // The old model's misses are gone: the new model starts with a clean
  // verdict (sentinel rate) and a fresh cooldown.
  EXPECT_DOUBLE_EQ(m.hit_rate(sim::msec(1300)), -1.0);
  feed(m, sim::msec(1400), 0, 20);
  EXPECT_FALSE(m.should_trigger(sim::msec(1400)));
  feed(m, sim::msec(2400), 0, 20);
  EXPECT_TRUE(m.should_trigger(sim::msec(2400)));
}

TEST(DriftMonitor, ZeroThresholdDisablesTriggering) {
  DriftMonitor m(opts(/*threshold=*/0.0, /*min_samples=*/1));
  feed(m, sim::sec(5.0), 0, 100);
  EXPECT_FALSE(m.should_trigger(sim::sec(5.0)));
  // The gauges still report.
  EXPECT_NEAR(m.hit_rate(sim::sec(5.0)), 0.0, 1e-9);
}

}  // namespace
}  // namespace prord::adapt
