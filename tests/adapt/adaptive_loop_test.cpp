// End-to-end contracts of the online adaptation loop:
//  - determinism: exports of an adapt-enabled drifting grid are
//    byte-identical whether the runner used 1 worker or 4;
//  - recovery: after a hot-set rotation the published model re-learns the
//    new transition structure within one epoch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/controller.h"
#include "adapt/model_swap.h"
#include "cluster/cluster.h"
#include "core/obs_export.h"
#include "core/parallel_runner.h"
#include "simcore/simulator.h"

namespace prord::adapt {
namespace {

// --- Determinism across worker counts ---------------------------------

core::ExperimentConfig drifting_adaptive_config() {
  core::ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.site.sections = 3;
  config.workload.site.pages_per_section = 20;
  config.workload.gen.target_requests = 2500;
  config.workload.gen.duration_sec = 400;
  config.workload.gen.drift.phases = 4;
  config.workload.gen.drift.rotation = 0.5;
  config.workload.gen.drift.flash_multiplier = 2.0;
  config.workload.gen.drift.flash_duration_sec = 30.0;
  config.policy = core::PolicyKind::kPrord;
  config.memory_fraction = 0.20;
  config.adapt.enabled = true;
  config.adapt.epoch = sim::sec(40.0);
  config.adapt.window = sim::sec(100.0);
  config.adapt.drift_threshold = 0.3;
  config.obs.metrics = true;
  config.obs.sample_interval = sim::msec(200);
  config.obs.trace_sample_rate = 1.0;
  return config;
}

TEST(AdaptiveLoop, ExportsAreByteIdenticalAcrossJobCounts) {
  std::vector<core::ExperimentCell> cells;
  cells.push_back(core::ExperimentCell{"adaptive", drifting_adaptive_config()});
  auto oracle = drifting_adaptive_config();
  oracle.adapt.enabled = false;
  oracle.adapt.oracle = true;
  cells.push_back(core::ExperimentCell{"oracle", oracle});

  core::RunnerOptions options;
  options.replications = 2;

  options.jobs = 1;
  const auto serial = core::run_cells(cells, options);
  // The loop must actually have run: models re-mined and published.
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_GT(serial[0].primary().adapt_stats.remines, 0u);
  EXPECT_GT(serial[1].primary().adapt_stats.remines, 0u);

  options.jobs = 4;
  const auto parallel = core::run_cells(cells, options);

  EXPECT_EQ(core::render_metrics(serial, /*csv=*/false),
            core::render_metrics(parallel, /*csv=*/false));
  EXPECT_EQ(core::render_metrics(serial, /*csv=*/true),
            core::render_metrics(parallel, /*csv=*/true));
  EXPECT_EQ(core::render_series_csv(serial),
            core::render_series_csv(parallel));
  EXPECT_EQ(core::render_trace_jsonl(serial),
            core::render_trace_jsonl(parallel));
}

// --- Drift recovery within one epoch ----------------------------------

// Synthetic hot-set rotation at the controller level: clients walk a
// deterministic page chain (phase A: i -> i+1, phase B: i -> i+2). The
// sim and trace clocks coincide (time_scale 1).
constexpr trace::FileId kPages = 10;

trace::FileId successor(trace::FileId page, unsigned stride) {
  return static_cast<trace::FileId>((page + stride) % kPages);
}

/// Feeds one 8-page chain session starting at `start_sec`, one page per
/// second, into the controller (scheduled on the sim clock).
void schedule_session(sim::Simulator& sim, AdaptiveController& ctrl,
                      std::uint32_t client, double start_sec,
                      unsigned stride) {
  trace::FileId page = static_cast<trace::FileId>(client % kPages);
  for (int hop = 0; hop < 8; ++hop) {
    const double at = start_sec + hop;
    trace::Request r;
    r.client = client;
    r.conn = client;
    r.file = page;
    r.at = sim::sec(at);
    sim.schedule_at(sim::sec(at), [&ctrl, r] { ctrl.on_request(r); });
    page = successor(page, stride);
  }
}

/// Fraction of pages whose argmax prediction under the published model is
/// the given phase's successor.
double probe_accuracy(const ModelSwap& swap, unsigned stride) {
  const auto snap = swap.current();
  int correct = 0;
  for (trace::FileId p = 0; p < kPages; ++p) {
    const auto guess = snap->model->predictor().predict(
        std::vector<trace::FileId>{p}, 0.0);
    if (guess && guess->page == successor(p, stride)) ++correct;
  }
  return static_cast<double>(correct) / kPages;
}

TEST(AdaptiveLoop, PublishedModelRecoversWithinOneEpochOfRotation) {
  sim::Simulator sim;
  cluster::ClusterParams params;
  cluster::Cluster cl(sim, params, 1 << 20, 1 << 20);

  ModelSwap swap(std::make_shared<logmining::MiningModel>(
      std::span<const trace::Request>{}, logmining::MiningConfig{}));
  ControllerOptions copts;
  copts.epoch = sim::sec(20.0);
  // Window shorter than the epoch: the first re-mine after the rotation
  // sees a purely post-rotation window, so recovery completes within one
  // epoch (a window straddling the boundary would need two).
  copts.window = sim::sec(15.0);
  copts.warm_start = false;  // re-mine purely from the window
  AdaptiveController ctrl(sim, cl, swap, copts);

  // Phase A (i -> i+1) for 100 s: one fresh session per second.
  for (int s = 0; s < 100; ++s)
    schedule_session(sim, ctrl, static_cast<std::uint32_t>(s),
                     static_cast<double>(s), /*stride=*/1);
  // Phase B (i -> i+2) from t=100.5 on, same arrival pattern.
  for (int s = 0; s < 50; ++s)
    schedule_session(sim, ctrl, static_cast<std::uint32_t>(1000 + s),
                     100.5 + static_cast<double>(s), /*stride=*/2);

  ctrl.start();

  // Steady phase A: after several epochs the published model nails the
  // A-chain and knows nothing of B. (t=105 sits past the epoch tick at
  // t=100 plus its mining cost.)
  sim.run(sim::sec(105.0));
  const double pre_drift = probe_accuracy(swap, 1);
  EXPECT_DOUBLE_EQ(pre_drift, 1.0);
  EXPECT_LT(probe_accuracy(swap, 2), pre_drift);
  const auto epoch_at_rotation = swap.epoch();

  // One epoch after the rotation the re-mined window is B-dominated and
  // the published model's accuracy on the *new* structure re-crosses the
  // pre-drift level.
  sim.run(sim::sec(125.0));
  EXPECT_GT(swap.epoch(), epoch_at_rotation);
  EXPECT_GE(probe_accuracy(swap, 2), pre_drift);

  ctrl.pause();
  sim.run();
  EXPECT_GT(ctrl.stats().remines, 0u);
}

}  // namespace
}  // namespace prord::adapt
