// ModelSwap: double-buffered publication. The load-bearing property is
// that a reader can never observe a torn model — every snapshot it takes
// is one immutable (epoch, model) pair, valid for as long as it holds the
// handle, across any number of concurrent publishes.
#include "adapt/model_swap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

namespace prord::adapt {
namespace {

using logmining::MiningModel;
using logmining::MiningConfig;

std::shared_ptr<MiningModel> model_predicting(trace::FileId from,
                                              trace::FileId to) {
  auto model = std::make_shared<MiningModel>(
      std::span<const trace::Request>{}, MiningConfig{});
  for (int i = 0; i < 5; ++i)
    model->predictor().observe_transition(std::vector<trace::FileId>{from},
                                          to);
  return model;
}

TEST(ModelSwap, SeedsEpochZeroAndNeverNull) {
  ModelSwap swap(model_predicting(1, 2));
  const auto snap = swap.current();
  ASSERT_NE(snap, nullptr);
  ASSERT_NE(snap->model, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(swap.epoch(), 0u);
}

TEST(ModelSwap, PublishAdvancesEpochAndSwapsModel) {
  ModelSwap swap(model_predicting(1, 2));
  EXPECT_EQ(swap.publish(model_predicting(1, 3)), 1u);
  const auto snap = swap.current();
  EXPECT_EQ(snap->epoch, 1u);
  const auto guess =
      snap->model->predictor().predict(std::vector<trace::FileId>{1}, 0.0);
  ASSERT_TRUE(guess.has_value());
  EXPECT_EQ(guess->page, 3u);
}

TEST(ModelSwap, HeldSnapshotSurvivesPublishUnchanged) {
  // The "no torn model" contract, single-threaded form: an in-flight
  // request that grabbed the model keeps the exact old generation while
  // new requests see the new one.
  ModelSwap swap(model_predicting(1, 2));
  const auto held = swap.current();
  swap.publish(model_predicting(1, 3));

  EXPECT_EQ(held->epoch, 0u);
  const auto old_guess =
      held->model->predictor().predict(std::vector<trace::FileId>{1}, 0.0);
  ASSERT_TRUE(old_guess.has_value());
  EXPECT_EQ(old_guess->page, 2u);

  const auto fresh = swap.current();
  EXPECT_EQ(fresh->epoch, 1u);
  EXPECT_NE(fresh->model.get(), held->model.get());
}

TEST(ModelSwap, PreviousBufferKeepsRetiringModelAlive) {
  ModelSwap swap(model_predicting(1, 2));
  std::weak_ptr<MiningModel> retired = swap.current()->model;

  // One publish: the old generation moves to the one-deep previous buffer
  // and stays alive even with no external handles.
  swap.publish(model_predicting(1, 3));
  EXPECT_FALSE(retired.expired());

  // A second publish pushes it out entirely.
  swap.publish(model_predicting(1, 4));
  EXPECT_TRUE(retired.expired());
}

TEST(ModelSwap, ListenersSeeEachPublication) {
  ModelSwap swap(model_predicting(1, 2));
  swap.publish(model_predicting(1, 3));  // before subscription: not seen

  std::vector<std::uint64_t> seen;
  swap.subscribe([&](const ModelSwap::Snapshot& s) {
    ASSERT_NE(s.model, nullptr);
    seen.push_back(s.epoch);
  });
  swap.publish(model_predicting(1, 4));
  swap.publish(model_predicting(1, 5));
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3}));
}

TEST(ModelSwap, ConcurrentReadersNeverObserveTornState) {
  // Hammer test: while a writer publishes generations tagged by a
  // distinguishable prediction, readers repeatedly take snapshots and
  // verify that the (epoch, model) pair is internally consistent — the
  // model of epoch k always predicts page k.
  constexpr std::uint64_t kGenerations = 200;
  ModelSwap swap(model_predicting(1, 0));

  std::atomic<bool> torn{false};
  std::atomic<bool> stop{false};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = swap.current();
      if (!snap || !snap->model) {
        torn = true;
        return;
      }
      const auto guess = snap->model->predictor().predict(
          std::vector<trace::FileId>{1}, 0.0);
      if (!guess || guess->page != snap->epoch) {
        torn = true;
        return;
      }
    }
  };
  std::thread r1(reader), r2(reader);
  for (std::uint64_t gen = 1; gen <= kGenerations; ++gen)
    swap.publish(model_predicting(1, static_cast<trace::FileId>(gen)));
  stop = true;
  r1.join();
  r2.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(swap.epoch(), kGenerations);
}

}  // namespace
}  // namespace prord::adapt
