// StreamSessionizer: incremental sessionization over the live dispatch
// stream. Everything keys on the trace clock (Request::at), per-client
// timestamps are monotone, and the global stream is only near-sorted.
#include "adapt/stream_sessionizer.h"

#include <gtest/gtest.h>

namespace prord::adapt {
namespace {

trace::Request req(std::uint32_t client, trace::FileId file, double at_sec,
                   bool embedded = false) {
  trace::Request r;
  r.client = client;
  r.conn = client;
  r.file = file;
  r.at = sim::sec(at_sec);
  r.is_embedded = embedded;
  return r;
}

logmining::SessionOptions opts(double inactivity_sec = 60.0) {
  logmining::SessionOptions o;
  o.inactivity_timeout = sim::sec(inactivity_sec);
  return o;
}

TEST(StreamSessionizer, BuildsOneSessionPerClient) {
  StreamSessionizer s(sim::sec(1000.0), opts());
  s.observe(req(1, 10, 0.0));
  s.observe(req(1, 11, 5.0));
  s.observe(req(2, 20, 2.0));

  const auto snap = s.snapshot(sim::sec(10.0));
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_EQ(snap.sessions[0].client, 1u);
  EXPECT_EQ(snap.sessions[0].pages,
            (std::vector<trace::FileId>{10, 11}));
  EXPECT_EQ(snap.sessions[1].client, 2u);
  EXPECT_EQ(snap.requests.size(), 3u);
}

TEST(StreamSessionizer, InactivitySplitsSessions) {
  StreamSessionizer s(sim::sec(10000.0), opts(/*inactivity_sec=*/60.0));
  s.observe(req(1, 10, 0.0));
  s.observe(req(1, 11, 10.0));
  s.observe(req(1, 12, 200.0));  // > 60s gap: new session

  const auto snap = s.snapshot(sim::sec(200.0));
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_EQ(snap.sessions[0].pages, (std::vector<trace::FileId>{10, 11}));
  EXPECT_EQ(snap.sessions[1].pages, (std::vector<trace::FileId>{12}));
}

TEST(StreamSessionizer, EmbeddedObjectsStayOutOfSessions) {
  // Same rule as the offline pass: embedded fetches are browser traffic,
  // not navigation, but they do belong to the windowed request stream
  // (bundle mining needs them).
  StreamSessionizer s(sim::sec(1000.0), opts());
  s.observe(req(1, 10, 0.0));
  s.observe(req(1, 100, 0.1, /*embedded=*/true));
  s.observe(req(1, 11, 5.0));

  const auto snap = s.snapshot(sim::sec(10.0));
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].pages, (std::vector<trace::FileId>{10, 11}));
  EXPECT_EQ(snap.requests.size(), 3u);
}

TEST(StreamSessionizer, WindowExpiresOldRequests) {
  StreamSessionizer s(sim::sec(100.0), opts(10.0));
  s.observe(req(1, 10, 0.0));
  s.observe(req(2, 20, 150.0));

  const auto snap = s.snapshot(sim::sec(150.0));
  // Client 1's request (age 150s) fell out of the 100s window; its closed
  // session went with it.
  ASSERT_EQ(snap.requests.size(), 1u);
  EXPECT_EQ(snap.requests[0].file, 20u);
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].client, 2u);
}

TEST(StreamSessionizer, NearSortedStreamPrunesCorrectly) {
  // Closed-loop dispatch can interleave clients slightly out of order;
  // pruning must drop exactly the expired requests, not stop at the first
  // fresh one.
  StreamSessionizer s(sim::sec(100.0), opts(1000.0));
  s.observe(req(1, 10, 5.0));
  s.observe(req(2, 20, 3.0));  // out of order across clients
  s.observe(req(1, 11, 80.0));
  s.observe(req(2, 21, 79.0));

  const auto snap = s.snapshot(sim::sec(120.0));
  // Window is [20, 120]: the two t<20 requests expire, both later ones
  // survive regardless of interleaving.
  ASSERT_EQ(snap.requests.size(), 2u);
  EXPECT_EQ(snap.requests[0].file, 11u);
  EXPECT_EQ(snap.requests[1].file, 21u);
}

TEST(StreamSessionizer, OpenSessionsExpireWithTheWindow) {
  // One-shot clients never trip the inactivity rule (nothing follows),
  // so open sessions must also expire once their pages leave the window —
  // otherwise every client ever seen trains every future re-mine.
  StreamSessionizer s(sim::sec(100.0), opts(/*inactivity_sec=*/3600.0));
  s.observe(req(1, 10, 0.0));
  s.observe(req(1, 11, 5.0));
  s.observe(req(2, 20, 150.0));

  const auto snap = s.snapshot(sim::sec(150.0));
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].client, 2u);
  ASSERT_EQ(snap.requests.size(), 1u);
  EXPECT_EQ(snap.requests[0].file, 20u);
}

TEST(StreamSessionizer, SnapshotOrderIsDeterministic) {
  // Sessions come out sorted by (start, client) so re-mining is
  // byte-reproducible no matter how clients interleaved.
  StreamSessionizer s(sim::sec(1000.0), opts());
  s.observe(req(3, 30, 1.0));
  s.observe(req(1, 10, 1.0));
  s.observe(req(2, 20, 0.5));

  const auto snap = s.snapshot(sim::sec(5.0));
  ASSERT_EQ(snap.sessions.size(), 3u);
  EXPECT_EQ(snap.sessions[0].client, 2u);
  EXPECT_EQ(snap.sessions[1].client, 1u);
  EXPECT_EQ(snap.sessions[2].client, 3u);
}

TEST(StreamSessionizer, ClearForgetsEverything) {
  StreamSessionizer s(sim::sec(1000.0), opts());
  s.observe(req(1, 10, 0.0));
  s.observe(req(2, 20, 1.0));
  EXPECT_GT(s.window_requests(), 0u);

  s.clear();
  EXPECT_EQ(s.window_requests(), 0u);
  EXPECT_EQ(s.window_sessions(), 0u);
  const auto snap = s.snapshot(0);
  EXPECT_TRUE(snap.sessions.empty());
  EXPECT_TRUE(snap.requests.empty());

  // The stream restarts cleanly at trace time zero (measurement boundary).
  s.observe(req(1, 42, 0.0));
  const auto again = s.snapshot(0);
  ASSERT_EQ(again.requests.size(), 1u);
  EXPECT_EQ(again.requests[0].file, 42u);
}

TEST(StreamSessionizer, TotalObservedCountsAcrossPruning) {
  StreamSessionizer s(sim::sec(10.0), opts());
  for (int i = 0; i < 50; ++i)
    s.observe(req(1, 10, static_cast<double>(i)));
  s.prune(sim::sec(49.0));
  EXPECT_EQ(s.total_observed(), 50u);
  EXPECT_LT(s.window_requests(), 50u);
}

}  // namespace
}  // namespace prord::adapt
