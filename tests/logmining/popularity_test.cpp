#include "logmining/popularity.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <sstream>

#include "logmining/replication.h"

namespace prord::logmining {
namespace {

TEST(Popularity, SeedCountsRequests) {
  PopularityTracker t(0);  // no decay
  std::vector<trace::Request> reqs(5);
  for (auto& r : reqs) r.file = 1;
  reqs[4].file = 2;
  t.seed(reqs);
  EXPECT_DOUBLE_EQ(t.rank(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.rank(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.rank(99, 0), 0.0);
  EXPECT_EQ(t.num_files(), 2u);
}

TEST(Popularity, OnlineHitsAccumulate) {
  PopularityTracker t(0);
  t.record_hit(7, sim::sec(1.0));
  t.record_hit(7, sim::sec(2.0));
  EXPECT_DOUBLE_EQ(t.rank(7, sim::sec(2.0)), 2.0);
}

TEST(Popularity, DecayHalvesAtHalflife) {
  PopularityTracker t(sim::sec(10.0));
  t.record_hit(1, 0);
  EXPECT_NEAR(t.rank(1, sim::sec(10.0)), 0.5, 1e-9);
  EXPECT_NEAR(t.rank(1, sim::sec(20.0)), 0.25, 1e-9);
}

TEST(Popularity, RecentHitsOutweighOldOnes) {
  PopularityTracker t(sim::sec(10.0));
  for (int i = 0; i < 10; ++i) t.record_hit(1, 0);  // old burst
  t.record_hit(2, sim::sec(60.0));
  t.record_hit(2, sim::sec(60.0));
  EXPECT_GT(t.rank(2, sim::sec(60.0)), t.rank(1, sim::sec(60.0)));
}

TEST(Popularity, RankTableSortedDescending) {
  PopularityTracker t(0);
  for (int i = 0; i < 3; ++i) t.record_hit(10, 0);
  for (int i = 0; i < 5; ++i) t.record_hit(20, 0);
  t.record_hit(30, 0);
  const auto table = t.rank_table(0);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].file, 20u);
  EXPECT_EQ(table[1].file, 10u);
  EXPECT_EQ(table[2].file, 30u);
}

TEST(Popularity, RejectsNegativeHalflife) {
  EXPECT_THROW(PopularityTracker(-1), std::invalid_argument);
}

TEST(Popularity, AgeScalesEveryCounter) {
  PopularityTracker t(0);
  for (int i = 0; i < 4; ++i) t.record_hit(1, 0);
  t.record_hit(2, 0);
  t.age(0.5);
  EXPECT_DOUBLE_EQ(t.rank(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.rank(2, 0), 0.5);
}

TEST(Popularity, AgeDropsNegligibleEntries) {
  PopularityTracker t(0);
  t.record_hit(1, 0);
  for (int i = 0; i < 30; ++i) t.age(0.5);  // 2^-30 < the drop threshold
  EXPECT_EQ(t.num_files(), 0u);
  EXPECT_DOUBLE_EQ(t.rank(1, 0), 0.0);
}

TEST(Popularity, AgeRejectsOutOfRangeKeep) {
  PopularityTracker t(0);
  EXPECT_THROW(t.age(0.0), std::invalid_argument);
  EXPECT_THROW(t.age(1.5), std::invalid_argument);
}

// Regression: load() is all-or-nothing. A stream that parses part-way and
// then goes bad (truncation, garbage, bad trailer, absurd count) must
// leave the live counters exactly as they were — an earlier version
// cleared the table before parsing and bailed out mid-stream.
class PopularityCorruptLoad : public ::testing::Test {
 protected:
  PopularityCorruptLoad() : tracker_(sim::sec(60.0)) {
    tracker_.record_hit(1, 0);
    tracker_.record_hit(1, sim::sec(5.0));
    tracker_.record_hit(2, sim::sec(9.0));
    baseline_ = tracker_;  // after the hits: the state load() must keep
  }

  void expect_untouched() {
    EXPECT_EQ(tracker_.num_files(), 2u);
    EXPECT_DOUBLE_EQ(tracker_.rank(1, sim::sec(9.0)),
                     baseline_.rank(1, sim::sec(9.0)));
    EXPECT_DOUBLE_EQ(tracker_.rank(2, sim::sec(9.0)),
                     baseline_.rank(2, sim::sec(9.0)));
  }

  std::string saved() const {
    std::stringstream ss;
    tracker_.save(ss);
    return ss.str();
  }

  PopularityTracker tracker_;
  PopularityTracker baseline_{sim::sec(60.0)};
};

TEST_F(PopularityCorruptLoad, TruncatedMidEntries) {
  const std::string full = saved();
  std::stringstream truncated(full.substr(0, full.size() * 2 / 3));
  EXPECT_FALSE(tracker_.load(truncated));
  expect_untouched();
}

TEST_F(PopularityCorruptLoad, GarbageInsideEntries) {
  std::string bad = saved();
  bad.replace(bad.find('\n') + 1, 1, "x");  // first entry's file id
  std::stringstream ss(bad);
  EXPECT_FALSE(tracker_.load(ss));
  expect_untouched();
}

TEST_F(PopularityCorruptLoad, MissingEndTrailer) {
  std::string bad = saved();
  bad.resize(bad.rfind("end"));
  std::stringstream ss(bad);
  EXPECT_FALSE(tracker_.load(ss));
  expect_untouched();
}

TEST_F(PopularityCorruptLoad, AbsurdEntryCount) {
  std::stringstream ss("popularity 60000000 184467440737095516 1 1 0\n");
  EXPECT_FALSE(tracker_.load(ss));
  expect_untouched();
}

TEST_F(PopularityCorruptLoad, HalflifeMismatch) {
  PopularityTracker other(sim::sec(30.0));
  std::stringstream ss;
  other.record_hit(9, 0);
  other.save(ss);
  EXPECT_FALSE(tracker_.load(ss));
  expect_untouched();
}

TEST_F(PopularityCorruptLoad, GoodStreamStillLoads) {
  PopularityTracker other(sim::sec(60.0));
  other.record_hit(9, sim::sec(2.0));
  std::stringstream ss;
  other.save(ss);
  ASSERT_TRUE(tracker_.load(ss));
  EXPECT_EQ(tracker_.num_files(), 1u);
  EXPECT_DOUBLE_EQ(tracker_.rank(9, sim::sec(2.0)),
                   other.rank(9, sim::sec(2.0)));
}

// ---------------------------------------------------------------------------
// Algorithm 3 planning.

std::vector<RankEntry> make_table(std::initializer_list<double> ranks) {
  std::vector<RankEntry> t;
  trace::FileId id = 0;
  for (double r : ranks) t.push_back(RankEntry{id++, r});
  return t;
}

TEST(Replication, TiersFollowAlgorithm3) {
  // T1 = 100 (top). Tiers: >75 all; >50 3/4; >25 1/2; >12.5 keep; else none.
  const auto plan =
      plan_replication(make_table({100, 80, 60, 30, 15, 5}), 8);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan[0].tier, ReplicaTier::kAll);
  EXPECT_EQ(plan[0].target_replicas, 8u);
  EXPECT_EQ(plan[1].tier, ReplicaTier::kAll);
  EXPECT_EQ(plan[2].tier, ReplicaTier::kThreeQuarter);
  EXPECT_EQ(plan[2].target_replicas, 6u);
  EXPECT_EQ(plan[3].tier, ReplicaTier::kHalf);
  EXPECT_EQ(plan[3].target_replicas, 4u);
  EXPECT_EQ(plan[4].tier, ReplicaTier::kNoChange);
  EXPECT_EQ(plan[5].tier, ReplicaTier::kNone);
}

TEST(Replication, TierReplicasRoundsUp) {
  EXPECT_EQ(tier_replicas(ReplicaTier::kAll, 6), 6u);
  EXPECT_EQ(tier_replicas(ReplicaTier::kThreeQuarter, 6), 5u);  // ceil(4.5)
  EXPECT_EQ(tier_replicas(ReplicaTier::kHalf, 7), 4u);          // ceil(3.5)
  EXPECT_EQ(tier_replicas(ReplicaTier::kNone, 8), 0u);
  EXPECT_GE(tier_replicas(ReplicaTier::kHalf, 1), 1u);
}

TEST(Replication, MinRankCutsTail) {
  ReplicationPlanOptions opt;
  opt.min_rank = 10.0;
  const auto plan = plan_replication(make_table({100, 50, 5}), 4, opt);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(Replication, MaxDirectivesCap) {
  ReplicationPlanOptions opt;
  opt.min_rank = 0.5;
  opt.max_directives = 2;
  const auto plan = plan_replication(make_table({10, 9, 8, 7}), 4, opt);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].file, 0u);  // hottest first
}

TEST(Replication, EmptyTableEmptyPlan) {
  EXPECT_TRUE(plan_replication({}, 4).empty());
}

TEST(Replication, AllZeroRanksEmptyPlan) {
  EXPECT_TRUE(plan_replication(make_table({0, 0}), 4).empty());
}

TEST(Replication, RejectsZeroServers) {
  EXPECT_THROW(plan_replication(make_table({1}), 0), std::invalid_argument);
}

TEST(Replication, MonotoneTiersDownTheTable) {
  const auto plan = plan_replication(
      make_table({100, 90, 70, 60, 40, 30, 20, 14, 10, 1}), 8);
  for (std::size_t i = 1; i < plan.size(); ++i)
    EXPECT_GE(static_cast<int>(plan[i].tier),
              static_cast<int>(plan[i - 1].tier));
}

// ---------------------------------------------------------------------------
// top_rank_table must return byte-for-byte the prefix of the full sort —
// the replication planner's byte-identity across the fast and legacy
// selection paths rests on this.
// ---------------------------------------------------------------------------

void expect_prefix_identical(const PopularityTracker& t, sim::SimTime now,
                             std::size_t k) {
  auto expected = t.rank_table(now);
  if (expected.size() > k) expected.resize(k);
  std::vector<RankEntry> got;
  got.reserve(1);  // deliberately tiny: exercise mid-scan compaction
  t.top_rank_table(now, k, got);
  ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].file, expected[i].file) << "k=" << k << " row " << i;
    // Bitwise equality, not tolerance: both paths must evaluate the same
    // decayed() expression on the same entry.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].rank),
              std::bit_cast<std::uint64_t>(expected[i].rank))
        << "k=" << k << " row " << i;
  }
}

TEST(Popularity, TopRankTableMatchesFullSortPrefix) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 8; ++round) {
    PopularityTracker t(round % 2 ? sim::sec(300.0) : 0);
    const int files = 1 + static_cast<int>(rng() % 400);
    const int hits = 1 + static_cast<int>(rng() % 4000);
    for (int i = 0; i < hits; ++i)
      t.record_hit(static_cast<trace::FileId>(rng() % files),
                   static_cast<sim::SimTime>(rng() % sim::sec(3600.0)));
    const auto now = sim::sec(3600.0);
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{7}, std::size_t{64}, std::size_t{256},
                          std::size_t{100000}})
      expect_prefix_identical(t, now, k);
  }
}

TEST(Popularity, TopRankTableTieBreaksByFileId) {
  PopularityTracker t(0);  // no decay: exact rank ties across files
  for (trace::FileId f = 0; f < 50; ++f)
    for (int i = 0; i < 3; ++i) t.record_hit(f, 0);
  for (std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{50}})
    expect_prefix_identical(t, sim::sec(10.0), k);
}

TEST(Popularity, TopRankTableLegacySwitchSameBytes) {
  PopularityTracker t(sim::sec(60.0));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i)
    t.record_hit(static_cast<trace::FileId>(rng() % 128),
                 static_cast<sim::SimTime>(rng() % sim::sec(600.0)));
  std::vector<RankEntry> fast, legacy;
  t.top_rank_table(sim::sec(600.0), 32, fast);
  set_legacy_rank_selection(true);
  t.top_rank_table(sim::sec(600.0), 32, legacy);
  set_legacy_rank_selection(false);
  ASSERT_EQ(fast.size(), legacy.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].file, legacy[i].file);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast[i].rank),
              std::bit_cast<std::uint64_t>(legacy[i].rank));
  }
}

}  // namespace
}  // namespace prord::logmining
