#include "logmining/session.h"

#include <gtest/gtest.h>

namespace prord::logmining {
namespace {

trace::Request req(sim::SimTime t, std::uint32_t client, trace::FileId file,
                   bool embedded = false) {
  trace::Request r;
  r.at = t;
  r.client = client;
  r.file = file;
  r.is_embedded = embedded;
  return r;
}

TEST(Sessions, GroupsByClient) {
  std::vector<trace::Request> reqs{req(0, 0, 1), req(10, 1, 2), req(20, 0, 3)};
  const auto sessions = build_sessions(reqs);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].client, 0u);
  EXPECT_EQ(sessions[0].pages, (std::vector<trace::FileId>{1, 3}));
  EXPECT_EQ(sessions[1].pages, (std::vector<trace::FileId>{2}));
}

TEST(Sessions, EmbeddedRequestsStripped) {
  std::vector<trace::Request> reqs{req(0, 0, 1), req(5, 0, 100, true),
                                   req(10, 0, 2)};
  const auto sessions = build_sessions(reqs);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].pages, (std::vector<trace::FileId>{1, 2}));
}

TEST(Sessions, InactivityTimeoutSplits) {
  SessionOptions opt;
  opt.inactivity_timeout = sim::sec(60.0);
  std::vector<trace::Request> reqs{req(0, 0, 1), req(sim::sec(30.0), 0, 2),
                                   req(sim::sec(120.0), 0, 3)};
  const auto sessions = build_sessions(reqs, opt);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].pages, (std::vector<trace::FileId>{1, 2}));
  EXPECT_EQ(sessions[1].pages, (std::vector<trace::FileId>{3}));
  EXPECT_EQ(sessions[1].start, sim::sec(120.0));
}

TEST(Sessions, MinPagesFilters) {
  SessionOptions opt;
  opt.min_pages = 2;
  std::vector<trace::Request> reqs{req(0, 0, 1), req(10, 1, 2), req(20, 1, 3)};
  const auto sessions = build_sessions(reqs, opt);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].client, 1u);
}

TEST(Sessions, SortedByStartTime) {
  SessionOptions opt;
  opt.inactivity_timeout = sim::sec(1.0);
  std::vector<trace::Request> reqs{
      req(0, 5, 1), req(sim::sec(0.5), 9, 2), req(sim::sec(10.0), 5, 3)};
  const auto sessions = build_sessions(reqs, opt);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_LE(sessions[0].start, sessions[1].start);
  EXPECT_LE(sessions[1].start, sessions[2].start);
}

TEST(Sessions, EmptyInput) {
  EXPECT_TRUE(build_sessions({}).empty());
}

TEST(Sessions, OnlyEmbeddedYieldsNothing) {
  std::vector<trace::Request> reqs{req(0, 0, 1, true), req(5, 0, 2, true)};
  EXPECT_TRUE(build_sessions(reqs).empty());
}

}  // namespace
}  // namespace prord::logmining
