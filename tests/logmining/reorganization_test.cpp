#include "logmining/reorganization.h"

#include <gtest/gtest.h>

namespace prord::logmining {
namespace {

Session sess(std::vector<trace::FileId> pages) {
  Session s;
  s.pages = std::move(pages);
  return s;
}

TEST(Reorganization, SuggestsShortcutForPopularDetour) {
  // Many users take 1 -> 2 -> 9; nobody goes 1 -> 9 directly.
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(sess({1, 2, 9}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  const auto suggestions = suggest_links(miner);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].from, 1u);
  EXPECT_EQ(suggestions[0].to, 9u);
  EXPECT_EQ(suggestions[0].detour_traversals, 10u);
  EXPECT_EQ(suggestions[0].direct_traversals, 0u);
  EXPECT_DOUBLE_EQ(suggestions[0].benefit, 1.0);
  EXPECT_EQ(suggestions[0].detour_length, 3u);
}

TEST(Reorganization, ExistingDirectLinkSuppressesSuggestion) {
  std::vector<Session> sessions;
  // Detour 1->2->9 four times, but direct 1->9 is common (8 times).
  for (int i = 0; i < 4; ++i) sessions.push_back(sess({1, 2, 9}));
  for (int i = 0; i < 8; ++i) sessions.push_back(sess({1, 9}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  const auto suggestions = suggest_links(miner);
  for (const auto& s : suggestions)
    EXPECT_FALSE(s.from == 1 && s.to == 9)
        << "should not suggest an existing well-used link";
}

TEST(Reorganization, MinTraversalsFilters) {
  std::vector<Session> sessions;
  for (int i = 0; i < 2; ++i) sessions.push_back(sess({1, 2, 9}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  ReorganizationOptions opt;
  opt.min_detour_traversals = 3;
  EXPECT_TRUE(suggest_links(miner, opt).empty());
}

TEST(Reorganization, LongerDetoursReported) {
  std::vector<Session> sessions;
  for (int i = 0; i < 6; ++i) sessions.push_back(sess({1, 2, 3, 9}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  const auto suggestions = suggest_links(miner);
  bool found = false;
  for (const auto& s : suggestions)
    if (s.from == 1 && s.to == 9) {
      found = true;
      EXPECT_EQ(s.detour_length, 4u);
    }
  EXPECT_TRUE(found);
}

TEST(Reorganization, SortsByBenefitThenTraffic) {
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(sess({1, 2, 9}));   // pure detour
  for (int i = 0; i < 20; ++i) sessions.push_back(sess({5, 6, 7}));   // detour...
  for (int i = 0; i < 10; ++i) sessions.push_back(sess({5, 7}));      // ...with direct
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  const auto suggestions = suggest_links(miner);
  ASSERT_GE(suggestions.size(), 2u);
  // (1,9) has benefit 1.0 and beats (5,7) at 20/30 despite less traffic.
  EXPECT_EQ(suggestions[0].from, 1u);
  EXPECT_EQ(suggestions[0].to, 9u);
}

TEST(Reorganization, MaxSuggestionsBounds) {
  std::vector<Session> sessions;
  for (trace::FileId f = 0; f < 30; ++f)
    for (int i = 0; i < 4; ++i)
      sessions.push_back(sess({100 + f, 200 + f, 300 + f}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  ReorganizationOptions opt;
  opt.max_suggestions = 5;
  EXPECT_LE(suggest_links(miner, opt).size(), 5u);
}

TEST(Reorganization, RejectsBadOptions) {
  PathMiner miner(2, 4, 2);
  ReorganizationOptions opt;
  opt.min_detour_length = 2;
  EXPECT_THROW(suggest_links(miner, opt), std::invalid_argument);
}

TEST(Reorganization, SelfLoopsIgnored) {
  std::vector<Session> sessions;
  for (int i = 0; i < 6; ++i) sessions.push_back(sess({1, 2, 1}));
  PathMiner miner(2, 4, 2);
  miner.train(sessions);
  for (const auto& s : suggest_links(miner)) EXPECT_NE(s.from, s.to);
}

}  // namespace
}  // namespace prord::logmining
