// Save/load round-trip tests for the mined state (the offline-mining ->
// distributor hand-off artifact).
#include <gtest/gtest.h>

#include <sstream>

#include "logmining/mining_model.h"
#include "trace/generator.h"
#include "trace/workload.h"

namespace prord::logmining {
namespace {

using Seq = std::vector<trace::FileId>;

/// Two predictors answer identically on a probe set.
void expect_equivalent(const Predictor& a, const Predictor& b,
                       std::span<const Seq> probes) {
  EXPECT_EQ(a.num_entries(), b.num_entries());
  for (const auto& ctx : probes) {
    const auto pa = a.predict_all(ctx, 8);
    const auto pb = b.predict_all(ctx, 8);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].page, pb[i].page);
      EXPECT_DOUBLE_EQ(pa[i].confidence, pb[i].confidence);
    }
  }
}

class PredictorRoundTrip
    : public ::testing::TestWithParam<PredictorKind> {};

TEST_P(PredictorRoundTrip, SaveLoadPreservesPredictions) {
  auto original = make_predictor(GetParam(), 2);
  util::Rng rng(5);
  std::vector<Seq> probes;
  for (int s = 0; s < 120; ++s) {
    Seq seq;
    trace::FileId cur = static_cast<trace::FileId>(rng.below(25));
    for (int i = 0; i < 5; ++i) {
      seq.push_back(cur);
      cur = static_cast<trace::FileId>((cur * 7 + 1 + rng.below(3)) % 25);
    }
    original->observe(seq);
    if (s % 10 == 0) probes.push_back(seq);
  }

  std::stringstream ss;
  original->save(ss);
  auto restored = make_predictor(GetParam(), 2);
  ASSERT_TRUE(restored->load(ss));
  expect_equivalent(*original, *restored, probes);
}

TEST_P(PredictorRoundTrip, LoadedPredictorKeepsLearning) {
  auto original = make_predictor(GetParam(), 2);
  for (int i = 0; i < 5; ++i) original->observe(Seq{1, 2});
  std::stringstream ss;
  original->save(ss);
  auto restored = make_predictor(GetParam(), 2);
  ASSERT_TRUE(restored->load(ss));
  // Continue training after the hand-off.
  for (int i = 0; i < 20; ++i) restored->observe(Seq{1, 3});
  const auto pred = restored->predict(Seq{1}, 0.0);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 3u);
}

TEST_P(PredictorRoundTrip, LoadRejectsWrongOrder) {
  auto original = make_predictor(GetParam(), 2);
  original->observe(Seq{1, 2, 3});
  std::stringstream ss;
  original->save(ss);
  auto wrong = make_predictor(GetParam(), 3);
  EXPECT_FALSE(wrong->load(ss));
}

TEST_P(PredictorRoundTrip, LoadRejectsGarbage) {
  auto p = make_predictor(GetParam(), 2);
  std::stringstream ss("this is not a model");
  EXPECT_FALSE(p->load(ss));
}

TEST_P(PredictorRoundTrip, LoadRejectsWrongKind) {
  auto original = make_predictor(GetParam(), 2);
  original->observe(Seq{1, 2, 3});
  std::stringstream ss;
  original->save(ss);
  // Any *other* kind must reject the stream.
  for (const auto other :
       {PredictorKind::kCandidatePath, PredictorKind::kMarkov,
        PredictorKind::kDependencyGraph}) {
    if (other == GetParam()) continue;
    ss.clear();
    ss.seekg(0);
    auto wrong = make_predictor(other, 2);
    EXPECT_FALSE(wrong->load(ss));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PredictorRoundTrip,
                         ::testing::Values(PredictorKind::kCandidatePath,
                                           PredictorKind::kMarkov,
                                           PredictorKind::kDependencyGraph),
                         [](const auto& info) {
                           switch (info.param) {
                             case PredictorKind::kCandidatePath:
                               return "CandidatePath";
                             case PredictorKind::kMarkov:
                               return "Markov";
                             case PredictorKind::kDependencyGraph:
                               return "DependencyGraph";
                           }
                           return "Unknown";
                         });

TEST(BundleRoundTrip, PreservesBundles) {
  BundleMiner m(0.5);
  std::vector<trace::Request> reqs;
  for (int i = 0; i < 10; ++i) {
    trace::Request page;
    page.file = 1;
    reqs.push_back(page);
    trace::Request obj;
    obj.file = 100;
    obj.is_embedded = true;
    obj.parent_page = 1;
    reqs.push_back(obj);
  }
  m.observe(reqs);
  m.finalize();
  std::stringstream ss;
  m.save(ss);
  BundleMiner restored(0.5);
  ASSERT_TRUE(restored.load(ss));
  EXPECT_TRUE(restored.in_bundle(1, 100));
  EXPECT_EQ(restored.num_bundles(), m.num_bundles());
}

TEST(PopularityRoundTrip, PreservesDecayedRanks) {
  PopularityTracker t(sim::sec(60.0));
  t.record_hit(1, 0);
  t.record_hit(1, sim::sec(10.0));
  t.record_hit(2, sim::sec(30.0));
  std::stringstream ss;
  t.save(ss);
  PopularityTracker restored(sim::sec(60.0));
  ASSERT_TRUE(restored.load(ss));
  for (const trace::FileId f : {1u, 2u, 3u})
    EXPECT_DOUBLE_EQ(restored.rank(f, sim::sec(45.0)),
                     t.rank(f, sim::sec(45.0)));
}

TEST(PopularityRoundTrip, RejectsHalflifeMismatch) {
  PopularityTracker t(sim::sec(60.0));
  t.record_hit(1, 0);
  std::stringstream ss;
  t.save(ss);
  PopularityTracker other(sim::sec(30.0));
  EXPECT_FALSE(other.load(ss));
}

TEST(MiningModelRoundTrip, FullModel) {
  trace::SiteBuildParams sp;
  sp.sections = 3;
  sp.pages_per_section = 12;
  sp.seed = 61;
  const auto site = build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 4000;
  gp.duration_sec = 400;
  gp.seed = 62;
  const auto t = generate_trace(site, gp);
  const auto w = trace::build_workload(t.records);

  MiningConfig config;
  MiningModel original(w.requests, config);
  std::stringstream ss;
  original.save(ss);

  auto restored = MiningModel::load(ss, config);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->training_sessions(), original.training_sessions());
  EXPECT_EQ(restored->predictor().num_entries(),
            original.predictor().num_entries());
  EXPECT_EQ(restored->bundles().num_bundles(),
            original.bundles().num_bundles());
  EXPECT_EQ(restored->popularity().num_files(),
            original.popularity().num_files());

  // Predictions agree on real session prefixes.
  const auto sessions = build_sessions(w.requests);
  std::size_t checked = 0;
  for (const auto& s : sessions) {
    if (s.pages.size() < 3 || checked > 50) break;
    const auto ctx = std::span(s.pages).subspan(0, 2);
    const auto a = original.predictor().predict(ctx, 0.0);
    const auto b = restored->predictor().predict(ctx, 0.0);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->page, b->page);
      EXPECT_DOUBLE_EQ(a->confidence, b->confidence);
    }
    ++checked;
  }
}

// Property test over every predictor kind: mine a synthetic trace, save,
// load, and the restored model must answer identically — predictor top-k
// on real session prefixes, bundle table, and the popularity rank table.
class MiningModelRoundTripAllKinds
    : public ::testing::TestWithParam<PredictorKind> {};

TEST_P(MiningModelRoundTripAllKinds, PreservesTopKBundlesAndRanks) {
  trace::SiteBuildParams sp;
  sp.sections = 4;
  sp.pages_per_section = 10;
  sp.seed = 71;
  const auto site = build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 5000;
  gp.duration_sec = 500;
  gp.seed = 72;
  const auto t = generate_trace(site, gp);
  const auto w = trace::build_workload(t.records);

  MiningConfig config;
  config.predictor = GetParam();
  MiningModel original(w.requests, config);
  std::stringstream ss;
  original.save(ss);
  auto restored = MiningModel::load(ss, config);
  ASSERT_TRUE(restored.has_value());

  // Predictor: top-k answers agree on every mined session prefix.
  const auto sessions = build_sessions(w.requests, config.session);
  for (const auto& s : sessions) {
    for (std::size_t len = 1; len < s.pages.size(); ++len) {
      const auto ctx = std::span(s.pages).subspan(0, len);
      const auto a = original.predictor().predict_all(ctx, 4);
      const auto b = restored->predictor().predict_all(ctx, 4);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].page, b[i].page);
        EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
      }
    }
  }

  // Bundle table: same bundles, same members, for every mined page.
  EXPECT_EQ(restored->bundles().num_bundles(), original.bundles().num_bundles());
  for (const auto& req : w.requests) {
    const auto ba = original.bundles().bundle_of(req.file);
    const auto bb = restored->bundles().bundle_of(req.file);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) EXPECT_EQ(ba[i], bb[i]);
  }

  // Popularity rank table: identical order and decayed values.
  const auto ra = original.popularity().rank_table(sim::sec(100.0));
  const auto rb = restored->popularity().rank_table(sim::sec(100.0));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].file, rb[i].file);
    EXPECT_DOUBLE_EQ(ra[i].rank, rb[i].rank);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MiningModelRoundTripAllKinds,
                         ::testing::Values(PredictorKind::kCandidatePath,
                                           PredictorKind::kMarkov,
                                           PredictorKind::kDependencyGraph),
                         [](const auto& info) {
                           switch (info.param) {
                             case PredictorKind::kCandidatePath:
                               return "CandidatePath";
                             case PredictorKind::kMarkov:
                               return "Markov";
                             case PredictorKind::kDependencyGraph:
                               return "DependencyGraph";
                           }
                           return "Unknown";
                         });

TEST(MiningModelRoundTrip, RejectsConfigMismatch) {
  std::vector<trace::Request> reqs(3);
  MiningConfig config;
  MiningModel original(reqs, config);
  std::stringstream ss;
  original.save(ss);
  MiningConfig other = config;
  other.predictor = PredictorKind::kMarkov;
  EXPECT_FALSE(MiningModel::load(ss, other).has_value());
}

TEST(MiningModelRoundTrip, RejectsTruncatedStream) {
  std::vector<trace::Request> reqs(3);
  MiningConfig config;
  MiningModel original(reqs, config);
  std::stringstream ss;
  original.save(ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(MiningModel::load(truncated, config).has_value());
}

}  // namespace
}  // namespace prord::logmining
