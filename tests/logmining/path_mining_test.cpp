#include "logmining/path_mining.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/workload.h"

namespace prord::logmining {
namespace {

Session sess(std::vector<trace::FileId> pages) {
  Session s;
  s.pages = std::move(pages);
  return s;
}

using Path = std::vector<trace::FileId>;

TEST(PathMiner, CountsContiguousFragments) {
  PathMiner m(2, 3, 2);
  std::vector<Session> sessions;
  for (int i = 0; i < 5; ++i) sessions.push_back(sess({1, 2, 3}));
  m.train(sessions);
  EXPECT_EQ(m.count_of(Path{1, 2}), 5u);
  EXPECT_EQ(m.count_of(Path{2, 3}), 5u);
  EXPECT_EQ(m.count_of(Path{1, 2, 3}), 5u);
  EXPECT_EQ(m.count_of(Path{1, 3}), 0u);  // not contiguous
}

TEST(PathMiner, MinCountPrunes) {
  PathMiner m(2, 2, 3);
  std::vector<Session> sessions{sess({1, 2}), sess({1, 2}), sess({7, 8})};
  m.train(sessions);
  EXPECT_EQ(m.count_of(Path{1, 2}), 0u);  // only 2 < min_count 3
  EXPECT_TRUE(m.fragments().empty() ||
              m.fragments().front().count >= 3);
}

TEST(PathMiner, RepeatedTraversalWithinOneSession) {
  PathMiner m(2, 2, 2);
  std::vector<Session> sessions{sess({1, 2, 1, 2})};
  m.train(sessions);
  EXPECT_EQ(m.count_of(Path{1, 2}), 2u);
  EXPECT_EQ(m.count_of(Path{2, 1}), 0u);  // traversed once < min_count 2
}

TEST(PathMiner, FragmentsSortedByCount) {
  PathMiner m(2, 3, 1);
  std::vector<Session> sessions;
  for (int i = 0; i < 9; ++i) sessions.push_back(sess({1, 2}));
  for (int i = 0; i < 4; ++i) sessions.push_back(sess({3, 4}));
  m.train(sessions);
  ASSERT_GE(m.fragments().size(), 2u);
  EXPECT_EQ(m.fragments()[0].pages, (Path{1, 2}));
  for (std::size_t i = 1; i < m.fragments().size(); ++i)
    EXPECT_GE(m.fragments()[i - 1].count, m.fragments()[i].count);
}

TEST(PathMiner, FragmentsOfLengthFilters) {
  PathMiner m(2, 3, 1);
  std::vector<Session> sessions{sess({1, 2, 3, 4})};
  m.train(sessions);
  for (const auto& f : m.fragments_of_length(2)) EXPECT_EQ(f.pages.size(), 2u);
  for (const auto& f : m.fragments_of_length(3)) EXPECT_EQ(f.pages.size(), 3u);
  EXPECT_EQ(m.fragments_of_length(2).size(), 3u);  // (1,2),(2,3),(3,4)
  EXPECT_EQ(m.fragments_of_length(3).size(), 2u);
}

TEST(PathMiner, PathsToTargetPage) {
  PathMiner m(2, 3, 1);
  std::vector<Session> sessions;
  for (int i = 0; i < 6; ++i) sessions.push_back(sess({1, 9}));
  for (int i = 0; i < 3; ++i) sessions.push_back(sess({2, 9}));
  sessions.push_back(sess({9, 5}));
  m.train(sessions);
  const auto paths = m.paths_to(9);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].pages, (Path{1, 9}));  // most common entry path first
  EXPECT_EQ(paths[0].count, 6u);
  EXPECT_EQ(paths[1].pages, (Path{2, 9}));
  for (const auto& p : paths) EXPECT_EQ(p.pages.back(), 9u);
}

TEST(PathMiner, MaxResultsBounds) {
  PathMiner m(2, 2, 1);
  std::vector<Session> sessions;
  for (trace::FileId f = 0; f < 20; ++f) sessions.push_back(sess({f, 99}));
  m.train(sessions);
  EXPECT_LE(m.paths_to(99, 5).size(), 5u);
}

TEST(PathMiner, RejectsBadParams) {
  EXPECT_THROW(PathMiner(1, 3, 1), std::invalid_argument);
  EXPECT_THROW(PathMiner(3, 2, 1), std::invalid_argument);
  EXPECT_THROW(PathMiner(2, 17, 1), std::invalid_argument);
  EXPECT_THROW(PathMiner(2, 3, 0), std::invalid_argument);
}

TEST(PathMiner, DeterministicOrdering) {
  std::vector<Session> sessions;
  for (int i = 0; i < 4; ++i) {
    sessions.push_back(sess({1, 2, 3}));
    sessions.push_back(sess({5, 6, 7}));
  }
  PathMiner a(2, 3, 2), b(2, 3, 2);
  a.train(sessions);
  b.train(sessions);
  ASSERT_EQ(a.fragments().size(), b.fragments().size());
  for (std::size_t i = 0; i < a.fragments().size(); ++i) {
    EXPECT_EQ(a.fragments()[i].pages, b.fragments()[i].pages);
    EXPECT_EQ(a.fragments()[i].count, b.fragments()[i].count);
  }
}

TEST(PathMiner, MinesGeneratedNavigation) {
  trace::SiteBuildParams sp;
  sp.sections = 3;
  sp.pages_per_section = 15;
  sp.seed = 31;
  const auto site = build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 6000;
  gp.duration_sec = 600;
  gp.seed = 32;
  const auto t = generate_trace(site, gp);
  const auto w = trace::build_workload(t.records);
  const auto sessions = build_sessions(w.requests);

  PathMiner m(2, 3, 3);
  m.train(sessions);
  ASSERT_FALSE(m.fragments().empty());
  // Every mined fragment must be a walk along real site links.
  std::unordered_map<std::string, trace::PageIndex> by_url;
  for (std::size_t i = 0; i < site.pages().size(); ++i)
    by_url[site.pages()[i].url] = static_cast<trace::PageIndex>(i);
  for (const auto& f : m.fragments()) {
    for (std::size_t i = 1; i < f.pages.size(); ++i) {
      const auto from = by_url.at(w.files.url(f.pages[i - 1]));
      const auto to = by_url.at(w.files.url(f.pages[i]));
      const auto& links = site.pages()[from].links;
      EXPECT_NE(std::find(links.begin(), links.end(), to), links.end());
    }
  }
}

}  // namespace
}  // namespace prord::logmining
