#include "logmining/bundle.h"

#include <gtest/gtest.h>

namespace prord::logmining {
namespace {

trace::Request page_req(trace::FileId page) {
  trace::Request r;
  r.file = page;
  r.is_embedded = false;
  return r;
}

trace::Request obj_req(trace::FileId obj, trace::FileId parent) {
  trace::Request r;
  r.file = obj;
  r.is_embedded = true;
  r.parent_page = parent;
  return r;
}

TEST(BundleMiner, LearnsConsistentBundle) {
  BundleMiner m(0.5);
  std::vector<trace::Request> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(page_req(1));
    reqs.push_back(obj_req(100, 1));
    reqs.push_back(obj_req(101, 1));
  }
  m.observe(reqs);
  m.finalize();
  const auto bundle = m.bundle_of(1);
  ASSERT_EQ(bundle.size(), 2u);
  EXPECT_TRUE(m.in_bundle(1, 100));
  EXPECT_TRUE(m.in_bundle(1, 101));
  EXPECT_FALSE(m.in_bundle(1, 102));
  EXPECT_EQ(m.num_bundles(), 1u);
}

TEST(BundleMiner, ThresholdExcludesRareObjects) {
  BundleMiner m(0.5);
  std::vector<trace::Request> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(page_req(1));
    reqs.push_back(obj_req(100, 1));
    if (i < 2) reqs.push_back(obj_req(200, 1));  // 20% co-occurrence
  }
  m.observe(reqs);
  m.finalize();
  EXPECT_TRUE(m.in_bundle(1, 100));
  EXPECT_FALSE(m.in_bundle(1, 200));
}

TEST(BundleMiner, UnattributedObjectsIgnored) {
  BundleMiner m;
  std::vector<trace::Request> reqs{page_req(1),
                                   obj_req(100, trace::kInvalidFile)};
  m.observe(reqs);
  m.finalize();
  EXPECT_EQ(m.num_bundles(), 0u);
}

TEST(BundleMiner, UnknownPageHasEmptyBundle) {
  BundleMiner m;
  m.finalize();
  EXPECT_TRUE(m.bundle_of(42).empty());
  EXPECT_FALSE(m.in_bundle(42, 1));
}

TEST(BundleMiner, IncrementalObserveAccumulates) {
  BundleMiner m(0.5);
  std::vector<trace::Request> part1{page_req(1), obj_req(100, 1)};
  std::vector<trace::Request> part2{page_req(1), obj_req(100, 1)};
  m.observe(part1);
  m.observe(part2);
  m.finalize();
  EXPECT_TRUE(m.in_bundle(1, 100));
}

TEST(BundleMiner, BundleBytesSumsSizes) {
  trace::FileTable files;
  const auto page = files.intern("/p.html", 1000);
  const auto a = files.intern("/a.gif", 300);
  const auto b = files.intern("/b.gif", 200);
  BundleMiner m(0.5);
  std::vector<trace::Request> reqs{page_req(page), obj_req(a, page),
                                   obj_req(b, page)};
  m.observe(reqs);
  m.finalize();
  EXPECT_EQ(m.bundle_bytes(page, files), 500u);
}

TEST(BundleMiner, RejectsBadThreshold) {
  EXPECT_THROW(BundleMiner(0.0), std::invalid_argument);
  EXPECT_THROW(BundleMiner(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace prord::logmining
