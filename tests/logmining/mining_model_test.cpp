#include "logmining/mining_model.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/models.h"
#include "trace/workload.h"

namespace prord::logmining {
namespace {

class MiningModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SiteBuildParams sp;
    sp.sections = 3;
    sp.pages_per_section = 15;
    sp.seed = 77;
    site_ = std::make_unique<trace::SiteModel>(build_site(sp));
    trace::TraceGenParams gp;
    gp.target_requests = 8000;
    gp.duration_sec = 800;
    gp.seed = 78;
    const auto t = generate_trace(*site_, gp);
    workload_ = trace::build_workload(t.records);
  }

  std::unique_ptr<trace::SiteModel> site_;
  trace::Workload workload_;
};

TEST_F(MiningModelTest, BuildsAllComponents) {
  MiningModel model(workload_.requests, MiningConfig{});
  EXPECT_GT(model.training_sessions(), 100u);
  EXPECT_GT(model.predictor().num_entries(), 0u);
  EXPECT_GT(model.bundles().num_bundles(), 0u);
  EXPECT_GT(model.popularity().num_files(), 0u);
}

TEST_F(MiningModelTest, PredictorLearnsRealNavigation) {
  MiningModel model(workload_.requests, MiningConfig{});
  // Take actual consecutive page pairs from sessions and check the trained
  // predictor assigns them nonzero probability reasonably often.
  const auto sessions = build_sessions(workload_.requests);
  std::size_t hits = 0, trials = 0;
  for (const auto& s : sessions) {
    for (std::size_t i = 1; i < s.pages.size() && trials < 500; ++i) {
      const auto preds = model.predictor().predict_all(
          std::span(s.pages).subspan(0, i), 5);
      ++trials;
      for (const auto& p : preds)
        if (p.page == s.pages[i]) {
          ++hits;
          break;
        }
    }
  }
  ASSERT_GT(trials, 100u);
  // Top-5 hit rate well above chance (~45 pages per section).
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(trials), 0.3);
}

TEST_F(MiningModelTest, BundlesMatchSiteStructure) {
  MiningConfig cfg;
  cfg.bundle_min_cooccurrence = 0.5;
  MiningModel model(workload_.requests, cfg);
  // For frequently visited pages, mined bundles should contain exactly the
  // site's embedded objects for that page.
  std::size_t checked = 0;
  for (const auto& page : site_->pages()) {
    const auto page_id = workload_.files.lookup(page.url);
    if (page_id == trace::kInvalidFile) continue;
    const auto bundle = model.bundles().bundle_of(page_id);
    if (bundle.empty()) continue;
    for (const auto f : bundle) {
      const auto& url = workload_.files.url(f);
      bool in_site = false;
      for (const auto& e : page.embedded) in_site |= (e.url == url);
      EXPECT_TRUE(in_site) << url << " not embedded in " << page.url;
    }
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(MiningModelTest, ConfigSelectsPredictorKind) {
  MiningConfig cfg;
  cfg.predictor = PredictorKind::kMarkov;
  MiningModel m1(workload_.requests, cfg);
  cfg.predictor = PredictorKind::kDependencyGraph;
  MiningModel m2(workload_.requests, cfg);
  EXPECT_GT(m1.predictor().num_entries(), 0u);
  EXPECT_GT(m2.predictor().num_entries(), 0u);
}

TEST_F(MiningModelTest, PopularitySeededFromHistory) {
  MiningModel model(workload_.requests, MiningConfig{});
  const auto table = model.popularity().rank_table(0);
  ASSERT_FALSE(table.empty());
  // Root page should be among the hottest files.
  const auto root = workload_.files.lookup("/index.html");
  ASSERT_NE(root, trace::kInvalidFile);
  const double root_rank = model.popularity().rank(root, 0);
  EXPECT_GT(root_rank, table.front().rank * 0.05);
}

}  // namespace
}  // namespace prord::logmining
