#include "logmining/categorizer.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/workload.h"

namespace prord::logmining {
namespace {

Session make_session(std::vector<trace::FileId> pages,
                     std::uint32_t client = 0) {
  Session s;
  s.client = client;
  s.pages = std::move(pages);
  return s;
}

TEST(Categorizer, UntrainedReturnsZeroConfidence) {
  UserCategorizer c;
  EXPECT_FALSE(c.trained());
  const auto result = c.classify(std::vector<trace::FileId>{1, 2});
  EXPECT_EQ(result.confidence, 0.0);
}

TEST(Categorizer, SeparatesDisjointGroups) {
  UserCategorizer c;
  std::vector<Session> sessions;
  std::vector<std::uint32_t> labels;
  for (int i = 0; i < 20; ++i) {
    sessions.push_back(make_session({1, 2, 3}));
    labels.push_back(0);
    sessions.push_back(make_session({10, 11, 12}));
    labels.push_back(1);
  }
  c.train(sessions, labels);
  EXPECT_TRUE(c.trained());
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{1, 2}).group, 0u);
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{10, 11}).group, 1u);
}

TEST(Categorizer, LongerPathsRaiseConfidence) {
  UserCategorizer c;
  std::vector<Session> sessions;
  std::vector<std::uint32_t> labels;
  for (int i = 0; i < 20; ++i) {
    sessions.push_back(make_session({1, 2, 3, 4}));
    labels.push_back(0);
    sessions.push_back(make_session({10, 11, 12, 13}));
    labels.push_back(1);
  }
  c.train(sessions, labels);
  const auto short_path = c.classify(std::vector<trace::FileId>{1});
  const auto long_path = c.classify(std::vector<trace::FileId>{1, 2, 3});
  EXPECT_EQ(short_path.group, 0u);
  EXPECT_EQ(long_path.group, 0u);
  EXPECT_GE(long_path.confidence, short_path.confidence);
}

TEST(Categorizer, PriorWinsOnUninformativePath) {
  UserCategorizer c;
  std::vector<Session> sessions;
  std::vector<std::uint32_t> labels;
  // Group 0 is 4x more common; page 5 is shared by both.
  for (int i = 0; i < 40; ++i) {
    sessions.push_back(make_session({5, 1}));
    labels.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    sessions.push_back(make_session({5, 9}));
    labels.push_back(1);
  }
  c.train(sessions, labels);
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{5}).group, 0u);
}

TEST(Categorizer, UnsupervisedTrainBySection) {
  // Pages 0-9 are section 0; 10-19 section 1. Sessions stay in-section.
  std::vector<Session> sessions;
  for (int i = 0; i < 15; ++i) {
    sessions.push_back(make_session({1, 2, 3}));
    sessions.push_back(make_session({11, 12, 13}));
  }
  UserCategorizer c;
  c.train_by_section(
      sessions, [](trace::FileId f) { return f / 10; }, 2);
  EXPECT_TRUE(c.trained());
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{2, 3}).group, 0u);
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{12, 13}).group, 1u);
}

TEST(Categorizer, TrainBySectionMajorityVote) {
  // A session mostly in section 1 with one stray page labels as 1.
  std::vector<Session> sessions{make_session({11, 12, 1, 13})};
  UserCategorizer c;
  c.train_by_section(
      sessions, [](trace::FileId f) { return f / 10; }, 2);
  EXPECT_EQ(c.classify(std::vector<trace::FileId>{11}).group, 1u);
}

TEST(Categorizer, TrainRejectsSizeMismatch) {
  UserCategorizer c;
  std::vector<Session> sessions{make_session({1})};
  std::vector<std::uint32_t> labels{0, 1};
  EXPECT_THROW(c.train(sessions, labels), std::invalid_argument);
}

TEST(Categorizer, RecoversGeneratorGroundTruthGroups) {
  // End-to-end: synthetic sessions carry ground-truth groups; a categorizer
  // trained on half the sessions should beat chance clearly on the rest.
  trace::SiteBuildParams sp;
  sp.sections = 4;
  sp.pages_per_section = 20;
  sp.num_groups = 4;
  sp.group_affinity = 12.0;
  sp.seed = 21;
  const auto site = build_site(sp);
  trace::TraceGenParams gp;
  gp.target_requests = 12000;
  gp.duration_sec = 1200;
  gp.seed = 22;
  const auto t = generate_trace(site, gp);
  const auto w = trace::build_workload(t.records);
  const auto sessions = build_sessions(w.requests);

  // Client id == session index in the generator, so labels line up.
  std::vector<Session> train_set, test_set;
  std::vector<std::uint32_t> train_labels, test_labels;
  for (const auto& s : sessions) {
    if (s.pages.size() < 3) continue;
    if (s.client % 2 == 0) {
      train_set.push_back(s);
      train_labels.push_back(t.session_group[s.client]);
    } else {
      test_set.push_back(s);
      test_labels.push_back(t.session_group[s.client]);
    }
  }
  ASSERT_GT(train_set.size(), 50u);
  ASSERT_GT(test_set.size(), 50u);

  UserCategorizer c;
  c.train(train_set, train_labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const auto r = c.classify(test_set[i].pages);
    correct += (r.group == test_labels[i]);
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(test_set.size());
  EXPECT_GT(accuracy, 0.5);  // chance is 0.25 with 4 groups
}

}  // namespace
}  // namespace prord::logmining
