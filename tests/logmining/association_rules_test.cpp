#include "logmining/association_rules.h"

#include <gtest/gtest.h>

namespace prord::logmining {
namespace {

Session txn(std::vector<trace::FileId> pages) {
  Session s;
  s.pages = std::move(pages);
  return s;
}

TEST(Apriori, FindsObviousRule) {
  AprioriOptions opt;
  opt.min_support = 0.3;
  opt.min_confidence = 0.6;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(txn({1, 2}));
  for (int i = 0; i < 3; ++i) sessions.push_back(txn({3}));
  m.train(sessions);
  ASSERT_FALSE(m.rules().empty());
  bool found = false;
  for (const auto& r : m.rules())
    if (r.antecedent == std::vector<trace::FileId>{1} && r.consequent == 2)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Apriori, SupportThresholdPrunes) {
  AprioriOptions opt;
  opt.min_support = 0.5;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(txn({1, 2}));
  sessions.push_back(txn({8, 9}));  // support 1/11 < 0.5
  m.train(sessions);
  for (const auto& r : m.rules()) {
    EXPECT_NE(r.consequent, 8u);
    EXPECT_NE(r.consequent, 9u);
  }
}

TEST(Apriori, ConfidenceComputedCorrectly) {
  AprioriOptions opt;
  opt.min_support = 0.1;
  opt.min_confidence = 0.1;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 8; ++i) sessions.push_back(txn({1, 2}));
  for (int i = 0; i < 2; ++i) sessions.push_back(txn({1, 3}));
  m.train(sessions);
  for (const auto& r : m.rules()) {
    if (r.antecedent == std::vector<trace::FileId>{1} && r.consequent == 2)
      EXPECT_NEAR(r.confidence, 0.8, 1e-9);
    if (r.antecedent == std::vector<trace::FileId>{1} && r.consequent == 3)
      EXPECT_NEAR(r.confidence, 0.2, 1e-9);
  }
}

TEST(Apriori, MinesTripleItemsets) {
  AprioriOptions opt;
  opt.min_support = 0.5;
  opt.min_confidence = 0.5;
  opt.max_itemset = 3;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(txn({1, 2, 3}));
  m.train(sessions);
  ASSERT_GE(m.level_sizes().size(), 3u);
  EXPECT_EQ(m.level_sizes()[0], 3u);  // {1},{2},{3}
  EXPECT_EQ(m.level_sizes()[1], 3u);  // {1,2},{1,3},{2,3}
  EXPECT_EQ(m.level_sizes()[2], 1u);  // {1,2,3}
  bool pair_rule = false;
  for (const auto& r : m.rules())
    if (r.antecedent.size() == 2) pair_rule = true;
  EXPECT_TRUE(pair_rule);
}

TEST(Apriori, DuplicatePageViewsCollapse) {
  AprioriOptions opt;
  opt.min_support = 0.9;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions{txn({1, 1, 1, 2})};
  m.train(sessions);
  // Support of {1} must be 1.0 (one transaction), not 3.
  ASSERT_FALSE(m.level_sizes().empty());
  EXPECT_EQ(m.level_sizes()[0], 2u);
}

TEST(Apriori, PredictFiresMatchingRule) {
  AprioriOptions opt;
  opt.min_support = 0.2;
  opt.min_confidence = 0.5;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(txn({1, 2, 5}));
  m.train(sessions);
  const auto pred =
      m.predict(std::vector<trace::FileId>{1, 2}, 0.5);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 5u);
}

TEST(Apriori, PredictSkipsAlreadyVisited) {
  AprioriOptions opt;
  opt.min_support = 0.2;
  opt.min_confidence = 0.5;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) sessions.push_back(txn({1, 2}));
  m.train(sessions);
  // Context already contains 2, the only possible consequent.
  EXPECT_FALSE(m.predict(std::vector<trace::FileId>{1, 2}, 0.1).has_value());
}

TEST(Apriori, EmptyTrainingNoRules) {
  AssociationRuleMiner m;
  m.train({});
  EXPECT_TRUE(m.rules().empty());
  EXPECT_FALSE(m.predict(std::vector<trace::FileId>{1}, 0.0).has_value());
}

TEST(Apriori, RejectsBadOptions) {
  AprioriOptions bad;
  bad.min_support = 0.0;
  EXPECT_THROW(AssociationRuleMiner{bad}, std::invalid_argument);
  bad = {};
  bad.min_confidence = 1.5;
  EXPECT_THROW(AssociationRuleMiner{bad}, std::invalid_argument);
  bad = {};
  bad.max_itemset = 1;
  EXPECT_THROW(AssociationRuleMiner{bad}, std::invalid_argument);
}

TEST(Apriori, RulesSortedByConfidence) {
  AprioriOptions opt;
  opt.min_support = 0.05;
  opt.min_confidence = 0.05;
  AssociationRuleMiner m(opt);
  std::vector<Session> sessions;
  for (int i = 0; i < 9; ++i) sessions.push_back(txn({1, 2}));
  for (int i = 0; i < 1; ++i) sessions.push_back(txn({1, 3}));
  m.train(sessions);
  for (std::size_t i = 1; i < m.rules().size(); ++i)
    EXPECT_GE(m.rules()[i - 1].confidence, m.rules()[i].confidence);
}

}  // namespace
}  // namespace prord::logmining
