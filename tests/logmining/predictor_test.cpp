#include "logmining/predictor.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "logmining/mining_model.h"
#include "util/rng.h"

namespace prord::logmining {
namespace {

using Seq = std::vector<trace::FileId>;

// ---------------------------------------------------------------------------
// Parameterized conformance tests: every predictor must satisfy these.

class PredictorConformance
    : public ::testing::TestWithParam<PredictorKind> {
 protected:
  std::unique_ptr<Predictor> make(unsigned order = 2) const {
    return make_predictor(GetParam(), order);
  }
};

TEST_P(PredictorConformance, EmptyPredictorPredictsNothing) {
  auto p = make();
  const Seq ctx{1, 2};
  EXPECT_FALSE(p->predict(ctx, 0.0).has_value());
  EXPECT_TRUE(p->predict_all(ctx, 5).empty());
  EXPECT_EQ(p->num_entries(), 0u);
}

TEST_P(PredictorConformance, LearnsSimpleChain) {
  auto p = make();
  for (int i = 0; i < 10; ++i) p->observe(Seq{1, 2, 3});
  const auto pred = p->predict(Seq{1, 2}, 0.5);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 3u);
  EXPECT_GE(pred->confidence, 0.99);
}

TEST_P(PredictorConformance, ConfidenceReflectsFrequency) {
  auto p = make();
  for (int i = 0; i < 7; ++i) p->observe(Seq{1, 2});
  for (int i = 0; i < 3; ++i) p->observe(Seq{1, 3});
  const auto all = p->predict_all(Seq{1}, 10);
  ASSERT_GE(all.size(), 2u);
  EXPECT_EQ(all[0].page, 2u);
  EXPECT_NEAR(all[0].confidence, 0.7, 0.01);
  EXPECT_EQ(all[1].page, 3u);
  EXPECT_NEAR(all[1].confidence, 0.3, 0.01);
}

TEST_P(PredictorConformance, MinConfidenceGates) {
  auto p = make();
  for (int i = 0; i < 6; ++i) p->observe(Seq{1, 2});
  for (int i = 0; i < 4; ++i) p->observe(Seq{1, 3});
  EXPECT_TRUE(p->predict(Seq{1}, 0.5).has_value());
  EXPECT_FALSE(p->predict(Seq{1}, 0.9).has_value());
}

TEST_P(PredictorConformance, OnlineTransitionUpdates) {
  auto p = make();
  p->observe_transition(Seq{1}, 2);
  p->observe_transition(Seq{1}, 2);
  const auto pred = p->predict(Seq{1}, 0.0);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 2u);
}

TEST_P(PredictorConformance, PredictAllRespectsK) {
  auto p = make();
  for (trace::FileId f = 10; f < 20; ++f) p->observe(Seq{1, f});
  EXPECT_LE(p->predict_all(Seq{1}, 3).size(), 3u);
}

TEST_P(PredictorConformance, NumEntriesGrowsWithData) {
  auto p = make();
  p->observe(Seq{1, 2, 3, 4});
  const auto before = p->num_entries();
  p->observe(Seq{5, 6, 7, 8});
  EXPECT_GT(p->num_entries(), before);
}

TEST_P(PredictorConformance, EmptyContextHandled) {
  auto p = make();
  p->observe(Seq{1, 2});
  EXPECT_FALSE(p->predict(Seq{}, 0.0).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorConformance,
                         ::testing::Values(PredictorKind::kCandidatePath,
                                           PredictorKind::kMarkov,
                                           PredictorKind::kDependencyGraph),
                         [](const auto& info) {
                           switch (info.param) {
                             case PredictorKind::kCandidatePath:
                               return "CandidatePath";
                             case PredictorKind::kMarkov:
                               return "Markov";
                             case PredictorKind::kDependencyGraph:
                               return "DependencyGraph";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Markov-specific behaviour.

TEST(Markov, HigherOrderContextDisambiguates) {
  // Fig. 3's scenario: sequences through D depend on where they started.
  // A -> D -> C (70%), B -> D -> E (60%). An order-2 predictor keyed on
  // (A, D) vs (B, D) separates them; order-1 cannot.
  MarkovPredictor p(2);
  for (int i = 0; i < 7; ++i) p.observe(Seq{'A', 'D', 'C'});
  for (int i = 0; i < 3; ++i) p.observe(Seq{'A', 'D', 'E'});
  for (int i = 0; i < 6; ++i) p.observe(Seq{'B', 'D', 'E'});
  for (int i = 0; i < 4; ++i) p.observe(Seq{'B', 'D', 'C'});

  const auto from_a = p.predict(Seq{'A', 'D'}, 0.0);
  const auto from_b = p.predict(Seq{'B', 'D'}, 0.0);
  ASSERT_TRUE(from_a && from_b);
  EXPECT_EQ(from_a->page, static_cast<trace::FileId>('C'));
  EXPECT_NEAR(from_a->confidence, 0.7, 0.01);
  EXPECT_EQ(from_a->matched_order, 2u);
  EXPECT_EQ(from_b->page, static_cast<trace::FileId>('E'));
  EXPECT_NEAR(from_b->confidence, 0.6, 0.01);
}

TEST(Markov, BacksOffToShorterContext) {
  MarkovPredictor p(3);
  for (int i = 0; i < 5; ++i) p.observe(Seq{1, 2});
  // Context {9, 1} was never seen at order 2; order-1 context {1} was.
  const auto pred = p.predict(Seq{9, 1}, 0.0);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 2u);
  EXPECT_EQ(pred->matched_order, 1u);
}

TEST(Markov, ContextLongerThanOrderUsesSuffix) {
  MarkovPredictor p(2);
  for (int i = 0; i < 5; ++i) p.observe(Seq{7, 8, 9});
  const auto pred = p.predict(Seq{1, 2, 3, 7, 8}, 0.0);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->page, 9u);
}

TEST(Markov, RejectsBadOrder) {
  EXPECT_THROW(MarkovPredictor(0), std::invalid_argument);
  EXPECT_THROW(MarkovPredictor(9), std::invalid_argument);
}

TEST(Markov, DeterministicTieBreakByPageId) {
  MarkovPredictor p(1);
  p.observe(Seq{1, 5});
  p.observe(Seq{1, 3});
  const auto all = p.predict_all(Seq{1}, 2);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].page, 3u);  // equal confidence: lower id first
  EXPECT_EQ(all[1].page, 5u);
}

// ---------------------------------------------------------------------------
// Dependency-graph-specific behaviour.

TEST(DependencyGraph, WindowCountsNonAdjacentSuccessors) {
  DependencyGraphPredictor p(2);  // lookahead 2
  for (int i = 0; i < 10; ++i) p.observe(Seq{1, 2, 3});
  // With window 2, page 3 is credited to page 1 as well as page 2.
  const auto all = p.predict_all(Seq{1}, 10);
  ASSERT_EQ(all.size(), 2u);
  bool saw3 = false;
  for (const auto& pr : all) saw3 |= (pr.page == 3u);
  EXPECT_TRUE(saw3);
}

TEST(DependencyGraph, WindowOneIsFirstOrder) {
  DependencyGraphPredictor p(1);
  for (int i = 0; i < 10; ++i) p.observe(Seq{1, 2, 3});
  const auto all = p.predict_all(Seq{1}, 10);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].page, 2u);
}

TEST(DependencyGraph, RejectsZeroWindow) {
  EXPECT_THROW(DependencyGraphPredictor(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Candidate-path (Algorithms 1 & 2) specific behaviour.

TEST(CandidatePath, PredictionsRestrictedToLinkedPages) {
  CandidatePathPredictor p(2);
  // 1 -> 2 always; 2 -> 3 or 4.
  for (int i = 0; i < 5; ++i) p.observe(Seq{1, 2, 3});
  for (int i = 0; i < 5; ++i) p.observe(Seq{1, 2, 4});
  const auto all = p.predict_all(Seq{1, 2}, 10);
  for (const auto& pred : all) EXPECT_TRUE(pred.page == 3 || pred.page == 4);
}

TEST(CandidatePath, CandidatePathsFollowLinks) {
  CandidatePathPredictor p(2);
  p.observe(Seq{1, 2, 3});
  p.observe(Seq{1, 4});
  const auto paths = p.candidate_paths(1);
  // Expected order-2 paths from 1: [1,2,3] and [1,4] (4 is a leaf).
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), 1u);
    EXPECT_LE(path.size(), 3u);
  }
}

TEST(CandidatePath, CandidatePathsAvoidCycles) {
  CandidatePathPredictor p(3);
  p.observe(Seq{1, 2, 1, 2, 1});  // 1 <-> 2 cycle
  for (const auto& path : p.candidate_paths(1)) {
    std::set<trace::FileId> uniq(path.begin(), path.end());
    EXPECT_EQ(uniq.size(), path.size());
  }
}

TEST(CandidatePath, CandidatePathsBounded) {
  CandidatePathPredictor p(3);
  // Dense graph: every page links to many others.
  for (trace::FileId a = 0; a < 12; ++a)
    for (trace::FileId b = 0; b < 12; ++b)
      if (a != b) p.observe(Seq{a, b});
  EXPECT_LE(p.candidate_paths(0, 50).size(), 50u);
}

TEST(CandidatePath, MemoryBoundedVsUnrestrictedMarkov) {
  // The linked-only restriction (Section 4.1.1(i)) must not store more
  // successor entries than the unrestricted table.
  CandidatePathPredictor cp(2);
  MarkovPredictor mk(2);
  util::Rng rng(3);
  for (int s = 0; s < 200; ++s) {
    Seq seq;
    trace::FileId cur = static_cast<trace::FileId>(rng.below(30));
    for (int i = 0; i < 6; ++i) {
      seq.push_back(cur);
      cur = static_cast<trace::FileId>((cur + 1 + rng.below(3)) % 30);
    }
    cp.observe(seq);
    mk.observe(seq);
  }
  EXPECT_GT(cp.num_linked_pages(), 0u);
  // Sanity: both predict something for a seen context.
  EXPECT_FALSE(mk.predict_all(Seq{0}, 3).empty());
}

TEST_P(PredictorConformance, AgingShrinksCounts) {
  auto p = make();
  for (int i = 0; i < 10; ++i) p->observe(Seq{1, 2});
  for (int i = 0; i < 2; ++i) p->observe(Seq{1, 3});
  p->age(0.25);  // 10 -> 2, 2 -> 0 (pruned)
  const auto all = p->predict_all(Seq{1}, 10);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].page, 2u);
  for (const auto& pr : all) EXPECT_NE(pr.page, 3u);
}

TEST_P(PredictorConformance, AgingToNothingForgetsEverything) {
  auto p = make();
  p->observe(Seq{1, 2});
  p->age(0.1);  // single observation drops to zero
  EXPECT_TRUE(p->predict_all(Seq{1}, 5).empty());
}

TEST_P(PredictorConformance, AgingRejectsBadFraction) {
  auto p = make();
  EXPECT_THROW(p->age(0.0), std::invalid_argument);
  EXPECT_THROW(p->age(1.5), std::invalid_argument);
}

TEST_P(PredictorConformance, AgingKeepsConfidencesNormalized) {
  auto p = make();
  for (int i = 0; i < 8; ++i) p->observe(Seq{1, 2});
  for (int i = 0; i < 8; ++i) p->observe(Seq{1, 3});
  p->age(0.5);
  const auto all = p->predict_all(Seq{1}, 10);
  double total = 0;
  for (const auto& pr : all) total += pr.confidence;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_NEAR(all[0].confidence, 0.5, 0.01);
}

TEST(MakePredictor, FactoryCoversAllKinds) {
  EXPECT_NE(make_predictor(PredictorKind::kCandidatePath, 2), nullptr);
  EXPECT_NE(make_predictor(PredictorKind::kMarkov, 2), nullptr);
  EXPECT_NE(make_predictor(PredictorKind::kDependencyGraph, 2), nullptr);
}

}  // namespace
}  // namespace prord::logmining
