#include "util/string_util.h"

#include <gtest/gtest.h>

namespace prord::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(EndsWith, Basics) {
  EXPECT_TRUE(ends_with("index.html", ".html"));
  EXPECT_FALSE(ends_with("index.html", ".htm"));
  EXPECT_FALSE(ends_with("a", "abc"));
  EXPECT_TRUE(ends_with("abc", ""));
}

TEST(ParseU64, ValidNumbers) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, ~0ULL);
}

TEST(ParseU64, RejectsMalformed) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-5", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
}

TEST(UrlExtension, Basics) {
  EXPECT_EQ(url_extension("/a/b/index.html"), "html");
  EXPECT_EQ(url_extension("/img/logo.GIF"), "gif");
  EXPECT_EQ(url_extension("/a/b/noext"), "");
  EXPECT_EQ(url_extension("/dir.d/file"), "");
  EXPECT_EQ(url_extension("/x.png?width=3"), "png");
  EXPECT_EQ(url_extension("/trailingdot."), "");
}

TEST(UrlPath, StripsQueryAndFragment) {
  EXPECT_EQ(url_path("/a/b.html?q=1"), "/a/b.html");
  EXPECT_EQ(url_path("/a/b.html#top"), "/a/b.html");
  EXPECT_EQ(url_path("/a/b.html"), "/a/b.html");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(12.0 * 1024), "12.0 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

}  // namespace
}  // namespace prord::util
