#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prord::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"policy", "throughput"});
  t.add_row({"LARD", "123.4"});
  t.add_row({"PRORD", "456.7"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("policy"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("PRORD"), std::string::npos);
  // Column 2 starts at the same offset in every row.
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const auto col = line.find("throughput");
  std::getline(is, line);  // rule
  std::getline(is, line);
  EXPECT_EQ(line.find("123.4"), col);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST(Table, AccessorsRoundTrip) {
  Table t({"x"});
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.cell(0, 0), "v");
}

TEST(Sparkline, EmptyAndConstant) {
  EXPECT_EQ(sparkline({}), "");
  const auto flat = sparkline({5.0, 5.0, 5.0});
  EXPECT_EQ(flat, "\u2581\u2581\u2581");
}

TEST(Sparkline, MonotoneRamp) {
  const auto s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(s, "\u2581\u2582\u2583\u2584\u2585\u2586\u2587\u2588");
}

TEST(Sparkline, ExtremesMapToEnds) {
  const auto s = sparkline({0.0, 100.0});
  EXPECT_EQ(s, "\u2581\u2588");
}

}  // namespace
}  // namespace prord::util
