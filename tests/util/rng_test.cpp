#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace prord::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, BelowCoversFullRangeWithoutBias) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - kDraws / 50);
    EXPECT_LT(c, kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughFrequency) {
  Rng rng(3);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1() == c2());
  EXPECT_LT(same, 3);
  // Forking is deterministic: same tag gives the same stream.
  Rng c1b = parent.fork(1);
  Rng c1a = parent.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1a(), c1b());
}

TEST(Rng, SplitMixKnownToProgress) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace prord::util
