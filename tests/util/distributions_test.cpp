#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace prord::util {
namespace {

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double total = 0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotonicallyDecreasing) {
  ZipfDistribution z(50, 0.8);
  for (std::size_t k = 1; k < z.size(); ++k)
    EXPECT_LE(z.pmf(k), z.pmf(k - 1) + 1e-12);
}

TEST(Zipf, SamplesMatchPmf) {
  ZipfDistribution z(20, 1.2);
  Rng rng(17);
  std::vector<int> counts(20, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    const double observed = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(observed, z.pmf(k), 0.01) << "rank " << k;
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(Zipf, RejectsBadArgs) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -1.0), std::invalid_argument);
  ZipfDistribution z(3, 1.0);
  EXPECT_THROW(z.pmf(3), std::out_of_range);
}

TEST(Pareto, SamplesWithinBounds) {
  ParetoDistribution p(1.5, 0.5, 60.0);
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = p(rng);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 60.0);
  }
}

TEST(Pareto, HeavyTailMeanAboveMinimum) {
  ParetoDistribution p(1.2, 1.0, 1000.0);
  Rng rng(29);
  double sum = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += p(rng);
  const double mean = sum / kDraws;
  EXPECT_GT(mean, 2.0);   // well above lo
  EXPECT_LT(mean, 50.0);  // but far below hi (tail is rare)
}

TEST(Pareto, RejectsBadArgs) {
  EXPECT_THROW(ParetoDistribution(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(ParetoDistribution(1.0, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(ParetoDistribution(1.0, 2.0, 2.0), std::invalid_argument);
}

TEST(LogNormal, FromMeanCvHitsTargetMean) {
  const double target_mean = 12.0 * 1024;
  auto d = LogNormalDistribution::from_mean_cv(target_mean, 1.5);
  Rng rng(31);
  double sum = 0;
  const int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) sum += d(rng);
  EXPECT_NEAR(sum / kDraws / target_mean, 1.0, 0.05);
}

TEST(LogNormal, AllPositive) {
  auto d = LogNormalDistribution::from_mean_cv(100.0, 2.0);
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d(rng), 0.0);
}

TEST(LogNormal, RejectsBadArgs) {
  EXPECT_THROW(LogNormalDistribution(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalDistribution::from_mean_cv(-1.0, 1.0),
               std::invalid_argument);
}

TEST(Exponential, MeanIsInverseRate) {
  ExponentialDistribution e(0.25);
  Rng rng(41);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += e(rng);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.1);
}

TEST(Exponential, RejectsBadArgs) {
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDistribution(-1.0), std::invalid_argument);
}

TEST(Discrete, MatchesWeights) {
  DiscreteDistribution d({1.0, 3.0, 6.0});
  Rng rng(43);
  std::vector<int> counts(3, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[d(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(Discrete, ZeroWeightNeverSampled) {
  DiscreteDistribution d({0.0, 1.0, 0.0});
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(d(rng), 1u);
}

TEST(Discrete, SingleOutcome) {
  DiscreteDistribution d({5.0});
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d(rng), 0u);
}

TEST(Discrete, RejectsBadArgs) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-1.0, 2.0}), std::invalid_argument);
}

TEST(Geometric, MeanMatches) {
  Rng rng(59);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(sample_geometric(rng, 0.2));
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Geometric, AlwaysAtLeastOne) {
  Rng rng(61);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(sample_geometric(rng, 0.9), 1u);
}

TEST(Geometric, POneIsAlwaysOne) {
  Rng rng(67);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 1.0), 1u);
}

TEST(Geometric, RejectsBadArgs) {
  Rng rng(71);
  EXPECT_THROW(sample_geometric(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_geometric(rng, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace prord::util
