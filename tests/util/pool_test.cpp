// FixedPool contract tests: exhaustion/regrow, eager double-free
// detection, deterministic reuse order, the perf-baseline bypass switch,
// and straggler destruction (the property the sanitizer CI job's ASan
// leak check rides on — an abandoned pool must destroy what's still
// live in it).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/pool.h"

namespace prord::util {
namespace {

struct Tracked {
  static int live;
  static int constructed;
  int value = 0;

  explicit Tracked(int v = 0) : value(v) {
    ++live;
    ++constructed;
  }
  ~Tracked() { --live; }
};

int Tracked::live = 0;
int Tracked::constructed = 0;

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracked::live = 0;
    Tracked::constructed = 0;
    set_pool_bypass(false);
  }
  void TearDown() override { set_pool_bypass(false); }
};

TEST_F(PoolTest, ExhaustionGrowsGeometrically) {
  FixedPool<Tracked> pool(4);
  EXPECT_EQ(pool.capacity(), 0u);  // slabs are lazy

  std::vector<Tracked*> objs;
  for (int i = 0; i < 9; ++i) objs.push_back(pool.acquire(i));

  // 4 -> +4 -> +8: each slab matches the prior total.
  EXPECT_EQ(pool.capacity(), 16u);
  EXPECT_EQ(pool.chunk_count(), 3u);
  EXPECT_EQ(pool.in_use(), 9u);
  EXPECT_EQ(pool.high_water(), 9u);
  EXPECT_EQ(pool.total_acquires(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(objs[i]->value, i);

  for (Tracked* t : objs) pool.release(t);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.high_water(), 9u);  // high-water survives the drain
  EXPECT_EQ(Tracked::live, 0);

  // Re-acquiring the drained population must not grow new slabs.
  for (int i = 0; i < 16; ++i) pool.acquire(i);
  EXPECT_EQ(pool.capacity(), 16u);
  EXPECT_EQ(pool.chunk_count(), 3u);
}

TEST_F(PoolTest, DoubleReleaseThrowsEagerly) {
  FixedPool<Tracked> pool(4);
  Tracked* t = pool.acquire(7);
  pool.release(t);
  EXPECT_THROW(pool.release(t), std::logic_error);
  // The failed release must not have corrupted accounting.
  EXPECT_EQ(pool.in_use(), 0u);
  Tracked* again = pool.acquire(8);
  EXPECT_EQ(again->value, 8);
  pool.release(again);
}

TEST_F(PoolTest, ReleaseOfNullIsANoOp) {
  FixedPool<Tracked> pool(4);
  pool.release(nullptr);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(PoolTest, ReuseOrderIsDeterministic) {
  // Fresh pool: ascending slot order within a slab.
  FixedPool<Tracked> pool(8);
  Tracked* a = pool.acquire(1);
  Tracked* b = pool.acquire(2);
  Tracked* c = pool.acquire(3);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);

  // LIFO freelist: last released is first reacquired, exactly.
  pool.release(a);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.acquire(4), c);
  EXPECT_EQ(pool.acquire(5), b);
  EXPECT_EQ(pool.acquire(6), a);
}

TEST_F(PoolTest, BypassRoutesThroughHeap) {
  FixedPool<Tracked> pool(4);
  set_pool_bypass(true);
  Tracked* heap_obj = pool.acquire(1);
  EXPECT_EQ(pool.heap_fallbacks(), 1u);
  EXPECT_EQ(pool.capacity(), 0u);  // no slab was grown
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release(heap_obj);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(Tracked::live, 0);

  // Back to pooled mode: slabs grow again and fallbacks stop counting.
  set_pool_bypass(false);
  Tracked* pooled = pool.acquire(2);
  EXPECT_EQ(pool.heap_fallbacks(), 1u);
  EXPECT_GT(pool.capacity(), 0u);
  pool.release(pooled);
}

TEST_F(PoolTest, OptedOutPoolIgnoresBypass) {
  // The event queue's node pool keeps slot memory mapped for stale cancel
  // handles; it must never fall through to the heap.
  FixedPool<Tracked> pool(4, /*honor_bypass=*/false);
  set_pool_bypass(true);
  Tracked* t = pool.acquire(1);
  EXPECT_EQ(pool.heap_fallbacks(), 0u);
  EXPECT_GT(pool.capacity(), 0u);
  pool.release(t);
}

TEST_F(PoolTest, DestructorDestroysStragglers) {
  {
    FixedPool<Tracked> pool(4);
    pool.acquire(1);
    pool.acquire(2);
    pool.acquire(3);
    EXPECT_EQ(Tracked::live, 3);
    // Abandon the pool with objects still live (exception-unwind path).
  }
  // ~FixedPool ran the stragglers' destructors — ASan sees no leak and
  // the object count balances.
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(Tracked::constructed, 3);
}

}  // namespace
}  // namespace prord::util
