#include "simcore/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace prord::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule(usec(100), [&] { seen.push_back(sim.now()); });
  sim.schedule(usec(50), [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule(usec(10), chain);
  };
  sim.schedule(usec(10), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule(usec(10), [&] { ++fired; });
  sim.schedule(usec(1000), [&] { ++fired; });
  const auto n = sim.run(usec(100));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);  // clock parked at horizon
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleRejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(usec(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtRejectsPast) {
  Simulator sim;
  sim.schedule(usec(100), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(usec(50), [] {}), std::invalid_argument);
}

TEST(Simulator, StepDispatchesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(usec(5), [&] { ++fired; });
  sim.schedule(usec(6), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule(usec(10), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, DispatchedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(usec(i), [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 7u);
}

TEST(Simulator, PendingEventsTracksQueue) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  const auto h = sim.schedule(usec(5), [] {});
  sim.schedule(usec(6), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleAtNowIsAllowed) {
  Simulator sim;
  sim.schedule(usec(10), [] {});
  sim.run();
  int fired = 0;
  sim.schedule_at(sim.now(), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTask, FiresEveryPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, usec(100), [&] { fires.push_back(sim.now()); });
  sim.schedule(usec(450), [&] { task.stop(); });
  sim.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300, 400}));
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopInsideCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask* ptr = nullptr;
  PeriodicTask task(sim, usec(10), [&] {
    if (++count == 3) ptr->stop();
  });
  ptr = &task;
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, usec(10), [&] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, usec(0), [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace prord::sim
