// Analytic validation of the queueing substrate.
//
// The simulator's FIFO resources should match textbook queueing formulas;
// these tests drive them with controlled arrival processes and compare
// against closed-form results. This validates the *engine* independently
// of the web-cluster models built on top.
#include <gtest/gtest.h>

#include "cluster/resources.h"
#include "metrics/stats.h"
#include "simcore/simulator.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace prord {
namespace {

/// Drives a FifoResource with Poisson(lambda) arrivals of deterministic
/// service D and returns the mean wait (queueing delay, excluding
/// service).
double md1_mean_wait_us(double lambda_per_us, sim::SimTime service,
                        std::size_t jobs, std::uint64_t seed) {
  sim::Simulator sim;
  cluster::FifoResource r;
  util::Rng rng(seed);
  util::ExponentialDistribution inter(lambda_per_us);
  metrics::RunningStats wait;

  sim::SimTime at = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    at += static_cast<sim::SimTime>(inter(rng));
    sim.schedule_at(at, [&sim, &r, &wait, service] {
      const sim::SimTime arrival = sim.now();
      const sim::SimTime completion =
          r.submit(sim, service, [] {});
      wait.add(static_cast<double>(completion - service - arrival));
    });
  }
  sim.run();
  return wait.mean();
}

TEST(QueueingValidation, MD1MeanWaitMatchesPollaczekKhinchine) {
  // M/D/1: Wq = rho * D / (2 * (1 - rho)).
  const sim::SimTime service = sim::usec(100);
  for (const double rho : {0.3, 0.6, 0.8}) {
    const double lambda = rho / static_cast<double>(service);
    const double expected =
        rho * static_cast<double>(service) / (2.0 * (1.0 - rho));
    const double measured = md1_mean_wait_us(lambda, service, 200'000, 17);
    EXPECT_NEAR(measured, expected, expected * 0.08 + 0.5)
        << "rho=" << rho;
  }
}

TEST(QueueingValidation, UtilizationMatchesOfferedLoad) {
  sim::Simulator sim;
  cluster::FifoResource r;
  util::Rng rng(3);
  util::ExponentialDistribution inter(0.005);  // lambda = 1/200us
  const sim::SimTime service = sim::usec(120);  // rho = 0.6

  sim::SimTime at = 0;
  const std::size_t jobs = 100'000;
  for (std::size_t i = 0; i < jobs; ++i) {
    at += static_cast<sim::SimTime>(inter(rng));
    sim.schedule_at(at, [&sim, &r, service] { r.submit(sim, service, [] {}); });
  }
  sim.run();
  const double util =
      static_cast<double>(r.busy_time()) / static_cast<double>(sim.now());
  EXPECT_NEAR(util, 0.6, 0.02);
}

TEST(QueueingValidation, OverloadedQueueGrowsLinearly) {
  // rho > 1: the backlog at the end must be ~ (rho - 1) * horizon.
  sim::Simulator sim;
  cluster::FifoResource r;
  const sim::SimTime service = sim::usec(150);
  const sim::SimTime spacing = sim::usec(100);  // rho = 1.5
  const std::size_t jobs = 10'000;
  for (std::size_t i = 1; i <= jobs; ++i)
    sim.schedule_at(static_cast<sim::SimTime>(i) * spacing,
                    [&sim, &r, service] { r.submit(sim, service, [] {}); });
  sim.run(static_cast<sim::SimTime>(jobs) * spacing);
  const double horizon = static_cast<double>(jobs) * spacing;
  EXPECT_NEAR(static_cast<double>(r.backlog(sim.now())), 0.5 * horizon,
              0.02 * horizon);
}

TEST(QueueingValidation, TandemQueuesConserveJobs) {
  // CPU -> disk tandem as in BackendServer: all jobs traverse both.
  sim::Simulator sim;
  cluster::FifoResource cpu, disk;
  std::size_t done = 0;
  const std::size_t jobs = 5'000;
  util::Rng rng(11);
  for (std::size_t i = 0; i < jobs; ++i) {
    const auto at = static_cast<sim::SimTime>(rng.below(1'000'000));
    sim.schedule_at(at, [&] {
      cpu.submit(sim, sim::usec(50), [&] {
        disk.submit(sim, sim::usec(200), [&done] { ++done; });
      });
    });
  }
  sim.run();
  EXPECT_EQ(done, jobs);
  EXPECT_EQ(cpu.jobs(), jobs);
  EXPECT_EQ(disk.jobs(), jobs);
  EXPECT_EQ(disk.busy_time(), static_cast<sim::SimTime>(jobs) * 200);
}

}  // namespace
}  // namespace prord
