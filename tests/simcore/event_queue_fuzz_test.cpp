// Randomized stress test for sim::EventQueue against a reference model.
//
// Interleaves schedule/cancel/pop drawn from a seeded Rng and checks every
// pop against a sorted reference: events come out in (time, scheduling
// order) — i.e. stable FIFO for equal timestamps — and cancelled events
// never fire. Timestamps are drawn from a tiny range so ties are the
// common case, not the corner case.
#include "simcore/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace prord::sim {
namespace {

struct RefEvent {
  SimTime at = 0;
  std::uint64_t order = 0;  ///< global scheduling order (push counter)
  std::uint64_t id = 0;     ///< payload identity
  EventHandle handle;
};

/// Reference model: a plain vector, scanned for min(time, order) at pop.
class ReferenceQueue {
 public:
  void push(RefEvent e) { events_.push_back(e); }

  bool cancel(std::uint64_t id) {
    const auto it =
        std::find_if(events_.begin(), events_.end(),
                     [&](const RefEvent& e) { return e.id == id; });
    if (it == events_.end()) return false;
    events_.erase(it);
    return true;
  }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Earliest event, FIFO among equal timestamps.
  RefEvent pop() {
    auto best = events_.begin();
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->at < best->at || (it->at == best->at && it->order < best->order))
        best = it;
    }
    const RefEvent e = *best;
    events_.erase(best);
    return e;
  }

  /// A uniformly random live event (for cancel targeting).
  const RefEvent& sample(util::Rng& rng) const {
    return events_[rng.below(events_.size())];
  }

 private:
  std::vector<RefEvent> events_;
};

void fuzz_round(std::uint64_t seed, std::size_t ops) {
  util::Rng rng(seed);
  EventQueue queue;
  ReferenceQueue ref;

  std::uint64_t next_order = 0;
  std::uint64_t last_popped_id = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.55 || ref.empty()) {
      // Schedule. Times land in [0, 16) so equal timestamps dominate.
      RefEvent e;
      e.at = static_cast<SimTime>(rng.below(16));
      e.order = next_order++;
      e.id = e.order + 1;
      const std::uint64_t id = e.id;
      e.handle = queue.push(e.at, [&last_popped_id, id] {
        last_popped_id = id;
      });
      ref.push(e);
    } else if (roll < 0.75) {
      // Cancel a random live event; both models must agree it was live.
      const RefEvent victim = ref.sample(rng);
      EXPECT_TRUE(queue.cancel(victim.handle));
      EXPECT_TRUE(ref.cancel(victim.id));
      // A second cancel through a stale handle must be a no-op.
      EXPECT_FALSE(queue.cancel(victim.handle));
    } else {
      // Pop: time and identity must match the reference exactly, which
      // pins stable FIFO ordering for equal timestamps.
      const RefEvent expected = ref.pop();
      EXPECT_EQ(queue.next_time(), expected.at);
      SimTime at = 0;
      EventFn fn = queue.pop(at);
      ASSERT_TRUE(static_cast<bool>(fn));
      fn();
      EXPECT_EQ(at, expected.at);
      EXPECT_EQ(last_popped_id, expected.id);
    }
    EXPECT_EQ(queue.size(), ref.size());
    EXPECT_EQ(queue.empty(), ref.empty());
  }

  // Drain: the survivors must come out in exact (time, FIFO) order.
  while (!ref.empty()) {
    const RefEvent expected = ref.pop();
    SimTime at = 0;
    EventFn fn = queue.pop(at);
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    EXPECT_EQ(at, expected.at);
    EXPECT_EQ(last_popped_id, expected.id);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueFuzz, MatchesReferenceModel) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 2006ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz_round(seed, 10'000);
  }
}

TEST(EventQueueFuzz, HeavyCancellationChurn) {
  // Bias the operation mix toward cancels by cancelling immediately after
  // every push half the time; exercises tombstone cleanup in the heap.
  util::Rng rng(7);
  EventQueue queue;
  std::vector<std::pair<EventHandle, std::uint64_t>> live;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < 5'000; ++i) {
    const auto at = static_cast<SimTime>(rng.below(8));
    const auto handle = queue.push(at, [&fired] { ++fired; });
    if (rng.bernoulli(0.5)) {
      EXPECT_TRUE(queue.cancel(handle));
      ++cancelled;
    } else {
      live.push_back({handle, at});
    }
  }
  EXPECT_EQ(queue.size(), live.size());
  SimTime last = 0;
  while (!queue.empty()) {
    SimTime at = 0;
    queue.pop(at)();
    EXPECT_GE(at, last);  // never goes backwards in time
    last = at;
  }
  EXPECT_EQ(fired, live.size());
  EXPECT_EQ(fired + cancelled, 5'000u);
}

}  // namespace
}  // namespace prord::sim
