#include "simcore/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace prord::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  SimTime at;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(100, [&order, i] { order.push_back(i); });
  SimTime at;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ReportsEventTime) {
  EventQueue q;
  q.push(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  SimTime at;
  q.pop(at);
  EXPECT_EQ(at, 42);
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  int fired = 0;
  const auto h = q.push(10, [&] { ++fired; });
  q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 1u);
  SimTime at;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(at, 20);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const auto h = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const auto h = q.push(10, [] {});
  SimTime at;
  q.pop(at)();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, EmptyThrowsOnPop) {
  EventQueue q;
  SimTime at;
  EXPECT_THROW(q.pop(at), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const auto h1 = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
  SimTime at;
  q.pop(at);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedHeapOrderProperty) {
  EventQueue q;
  util::Rng rng(2024);
  for (int i = 0; i < 5000; ++i)
    q.push(static_cast<SimTime>(rng.below(100000)), [] {});
  SimTime prev = -1;
  while (!q.empty()) {
    SimTime at;
    q.pop(at);
    EXPECT_GE(at, prev);
    prev = at;
  }
}

TEST(EventQueue, RandomizedWithCancellations) {
  EventQueue q;
  util::Rng rng(7);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 2000; ++i)
    handles.push_back(q.push(static_cast<SimTime>(rng.below(10000)), [] {}));
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3)
    cancelled += q.cancel(handles[i]);
  EXPECT_EQ(q.size(), handles.size() - cancelled);
  SimTime prev = -1;
  std::size_t popped = 0;
  while (!q.empty()) {
    SimTime at;
    q.pop(at);
    EXPECT_GE(at, prev);
    prev = at;
    ++popped;
  }
  EXPECT_EQ(popped, handles.size() - cancelled);
}

}  // namespace
}  // namespace prord::sim
