// Equivalence fuzz: the timing-wheel queue must be operation-for-operation
// indistinguishable from the reference binary heap — same pop order, same
// pop times, same cancel outcomes, same sizes — under randomized streams
// of pushes (leaf-window, mid-wheel, overflow-range, and below-clock
// "past" times), cancels, and pops. This is the contract that lets every
// figure table stay byte-identical after the queue swap: the simulator
// orders simultaneous events by sequence number, and both implementations
// must honour it exactly.
#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "simcore/event_queue.h"

namespace prord::sim {
namespace {

void run_fuzz(std::uint64_t seed, int ops) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  EventQueue wheel(QueueImpl::kBucketed);
  EventQueue heap(QueueImpl::kHeapReference);
  ASSERT_EQ(wheel.impl(), QueueImpl::kBucketed);
  ASSERT_EQ(heap.impl(), QueueImpl::kHeapReference);

  std::mt19937_64 rng(seed);
  std::vector<EventHandle> wheel_handles, heap_handles;
  std::vector<std::pair<SimTime, int>> wheel_fired, heap_fired;
  SimTime horizon = 0;  // max time popped so far
  int next_id = 0;

  const auto push_both = [&](SimTime at) {
    const int id = next_id++;
    wheel_handles.push_back(wheel.push(
        at, [&wheel_fired, at, id] { wheel_fired.emplace_back(at, id); }));
    heap_handles.push_back(heap.push(
        at, [&heap_fired, at, id] { heap_fired.emplace_back(at, id); }));
  };

  const auto pop_both = [&] {
    SimTime wheel_at = -1, heap_at = -2;
    EventFn wheel_fn = wheel.pop(wheel_at);
    EventFn heap_fn = heap.pop(heap_at);
    ASSERT_EQ(wheel_at, heap_at);
    wheel_fn();
    heap_fn();
    ASSERT_FALSE(wheel_fired.empty());
    ASSERT_EQ(wheel_fired.back(), heap_fired.back());
    if (wheel_at > horizon) horizon = wheel_at;
  };

  for (int op = 0; op < ops; ++op) {
    const auto roll = rng() % 100;
    if (roll < 50 || wheel.empty()) {
      // Push — spread times across every wheel region.
      SimTime at = 0;
      switch (rng() % 8) {
        case 0:  // same-leaf collisions (sequence order decides)
          at = horizon + static_cast<SimTime>(rng() % 4);
          break;
        case 1:  // leaf window
          at = horizon + static_cast<SimTime>(rng() % 2000);
          break;
        case 2:
        case 3:  // L1/L2 windows (~2 ms .. ~4.3 s)
          at = horizon + static_cast<SimTime>(rng() % (1u << 22));
          break;
        case 4:  // beyond the wheel span: overflow heap
          at = horizon + static_cast<SimTime>(rng() % (1ull << 34));
          break;
        default:  // at or below the clock: the "past" mini-heap
          at = static_cast<SimTime>(
              rng() % (static_cast<std::uint64_t>(horizon) + 1));
          break;
      }
      push_both(at);
    } else if (roll < 70 && !wheel_handles.empty()) {
      // Cancel a random handle (live, already fired, or already cancelled
      // — outcomes must agree in every case).
      const std::size_t i = rng() % wheel_handles.size();
      const bool wheel_ok = wheel.cancel(wheel_handles[i]);
      const bool heap_ok = heap.cancel(heap_handles[i]);
      ASSERT_EQ(wheel_ok, heap_ok) << "cancel of handle " << i;
    } else {
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(wheel.next_time(), heap.next_time());
      ASSERT_NO_FATAL_FAILURE(pop_both());
    }
    ASSERT_EQ(wheel.size(), heap.size());
    ASSERT_EQ(wheel.empty(), heap.empty());
  }

  // Drain everything that's left; full fire logs must match exactly.
  while (!heap.empty()) {
    ASSERT_FALSE(wheel.empty());
    ASSERT_EQ(wheel.next_time(), heap.next_time());
    ASSERT_NO_FATAL_FAILURE(pop_both());
  }
  ASSERT_TRUE(wheel.empty());
  ASSERT_EQ(wheel_fired, heap_fired);
}

TEST(EventQueueEquivalence, RandomizedStreamsMatchHeapReference) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    run_fuzz(seed, 20'000);
    if (HasFatalFailure()) return;
  }
}

TEST(EventQueueEquivalence, CancelHeavyStreamsMatchHeapReference) {
  // A second pass with fewer ops and a different seed band; cancels are
  // already covered above, but small streams tickle the wheel's cascade
  // boundaries differently (the clock crosses blocks in bigger jumps
  // relative to the live population).
  for (const std::uint64_t seed : {1000ull, 2026ull, 9999ull}) {
    run_fuzz(seed, 4'000);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace prord::sim
