// prord_zoo: the workload-zoo CLI — any access log in, a named scenario out.
//
//   prord_zoo mine <access.log>            cluster URLs into line templates
//   prord_zoo fit  <access.log> --name N   fit a WorkloadProfile, emit JSON
//   prord_zoo emit <name|profile.json>     generate a CLF trace from a profile
//   prord_zoo describe [name|profile.json] list scenarios / show one profile
//   prord_zoo export <name> [-o FILE]      dump a builtin profile as JSON
//                                          (CI diffs examples/profiles/*.json
//                                          against this)
//
// mine/fit read Common or Combined Log Format (the parser tolerates
// missing timezones, IPv6 hosts, %-escapes, absolute-form URLs; skipped
// lines are accounted per category). fit pipes the same records through
// TemplateMiner and ProfileFitter and writes the profile JSON that
// `--scenario` in prord_sim / prord_live consumes. emit closes the loop:
// profile -> synthetic CLF, so a fitted scenario can be re-mined
// (the round-trip the zoo tests assert on).
//
// Options:
//   mine:  --support-fraction F  --min-support N  --max-templates N
//   fit:   --name NAME  -o FILE  --target-requests N  --seed S  [mine opts]
//   emit:  -o FILE  --requests N  --seed S
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/clf.h"
#include "trace/models.h"
#include "zoo/profile.h"
#include "zoo/profile_fitter.h"
#include "zoo/scenario_registry.h"
#include "zoo/template_miner.h"

namespace {

using namespace prord;

int usage() {
  std::fprintf(stderr,
               "usage: prord_zoo <mine|fit|emit|describe> ...\n"
               "  mine <access.log> [--support-fraction F] [--min-support N] "
               "[--max-templates N]\n"
               "  fit <access.log> --name NAME [-o profile.json] "
               "[--target-requests N] [--seed S]\n"
               "  emit <name|profile.json> [-o trace.log] [--requests N] "
               "[--seed S]\n"
               "  export <name> [-o profile.json]\n"
               "  describe [name|profile.json]\n");
  return 2;
}

bool next_arg(int argc, char** argv, int& i, const char* flag,
              std::string& out) {
  if (std::strcmp(argv[i], flag) != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "prord_zoo: %s needs a value\n", flag);
    std::exit(2);
  }
  out = argv[++i];
  return true;
}

std::vector<trace::LogRecord> parse_log(const std::string& path,
                                        trace::ClfParser& parser) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "prord_zoo: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  auto records = parser.parse_stream(in);
  const auto& skips = parser.skips();
  std::fprintf(stderr,
               "parsed %zu records from %s (skipped %llu: truncated=%llu "
               "bad_timestamp=%llu missing_quotes=%llu bad_request=%llu "
               "bad_status=%llu bad_bytes=%llu bad_escape=%llu bad_url=%llu)\n",
               records.size(), path.c_str(),
               static_cast<unsigned long long>(skips.total()),
               static_cast<unsigned long long>(skips.truncated),
               static_cast<unsigned long long>(skips.bad_timestamp),
               static_cast<unsigned long long>(skips.missing_quotes),
               static_cast<unsigned long long>(skips.bad_request),
               static_cast<unsigned long long>(skips.bad_status),
               static_cast<unsigned long long>(skips.bad_bytes),
               static_cast<unsigned long long>(skips.bad_escape),
               static_cast<unsigned long long>(skips.bad_url));
  if (records.empty()) {
    std::fprintf(stderr, "prord_zoo: no parsable records in %s\n",
                 path.c_str());
    std::exit(1);
  }
  return records;
}

zoo::TemplateMinerOptions miner_options(int argc, char** argv, int start) {
  zoo::TemplateMinerOptions opts;
  std::string v;
  for (int i = start; i < argc; ++i) {
    if (next_arg(argc, argv, i, "--support-fraction", v))
      opts.support_fraction = std::stod(v);
    else if (next_arg(argc, argv, i, "--min-support", v))
      opts.min_support = std::stoull(v);
    else if (next_arg(argc, argv, i, "--max-templates", v))
      opts.max_templates = std::stoull(v);
  }
  return opts;
}

zoo::MinedTemplates mine_records(
    const std::vector<trace::LogRecord>& records,
    const zoo::TemplateMinerOptions& opts) {
  zoo::TemplateMiner miner(opts);
  for (const auto& rec : records) miner.observe(rec);
  return miner.mine();
}

int cmd_mine(int argc, char** argv) {
  if (argc < 3) return usage();
  trace::ClfParser parser;
  const auto records = parse_log(argv[2], parser);
  const auto mined = mine_records(records, miner_options(argc, argv, 3));
  std::fputs(mined.dump().c_str(), stdout);
  return 0;
}

int cmd_fit(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string name, out_path, v;
  std::uint64_t target_requests = 0, seed = 0;
  for (int i = 3; i < argc; ++i) {
    if (next_arg(argc, argv, i, "--name", name)) continue;
    if (next_arg(argc, argv, i, "-o", out_path)) continue;
    if (next_arg(argc, argv, i, "--target-requests", v))
      target_requests = std::stoull(v);
    else if (next_arg(argc, argv, i, "--seed", v))
      seed = std::stoull(v);
  }
  trace::ClfParser parser;
  const auto records = parse_log(argv[2], parser);
  const auto mined = mine_records(records, miner_options(argc, argv, 3));

  zoo::FitDiagnostics diag;
  auto profile = zoo::fit_profile(records, mined, {}, &diag);
  profile.name = name.empty() ? "fitted" : name;
  profile.source = std::string("fitted:") + argv[2];
  if (target_requests > 0) profile.target_requests = target_requests;
  if (seed > 0) profile.seed = seed;
  std::fprintf(stderr,
               "fit: sessions=%zu think_samples=%zu page_views=%zu "
               "cross=%zu/%zu flash_ratio=%.2f overlap=%.2f boundaries=%zu\n",
               diag.sessions, diag.think_samples, diag.page_views,
               diag.cross_transitions, diag.transitions, diag.flash_ratio,
               diag.mean_segment_overlap, diag.phase_boundaries);

  if (out_path.empty()) {
    std::cout << zoo::profile_to_json(profile).dump() << '\n';
  } else if (!zoo::save_profile(profile, out_path)) {
    std::fprintf(stderr, "prord_zoo: cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

int cmd_emit(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string out_path, v;
  std::uint64_t requests = 0, seed = 0;
  for (int i = 3; i < argc; ++i) {
    if (next_arg(argc, argv, i, "-o", out_path)) continue;
    if (next_arg(argc, argv, i, "--requests", v)) requests = std::stoull(v);
    else if (next_arg(argc, argv, i, "--seed", v)) seed = std::stoull(v);
  }
  auto spec = zoo::scenario_spec(argv[2]);
  if (requests > 0) spec.gen.target_requests = requests;
  if (seed > 0) {
    spec.site.seed = seed;
    spec.gen.seed = seed * 31 + 1;
  }
  const auto built = trace::build(spec);
  std::fprintf(stderr, "emit: scenario=%s records=%zu sessions=%zu\n",
               built.name.c_str(), built.trace.records.size(),
               built.trace.num_sessions);
  if (out_path.empty()) {
    trace::write_clf(std::cout, built.trace.records);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "prord_zoo: cannot write %s\n", out_path.c_str());
      return 1;
    }
    trace::write_clf(out, built.trace.records);
  }
  return 0;
}

void describe_profile(const zoo::WorkloadProfile& p) {
  std::printf("%s (%s)\n", p.name.c_str(), p.source.c_str());
  std::printf("  volume: %llu requests over %.0f s (source: %llu reqs, %llu "
              "files)\n",
              static_cast<unsigned long long>(p.target_requests),
              p.duration_sec,
              static_cast<unsigned long long>(p.source_requests),
              static_cast<unsigned long long>(p.source_files));
  std::printf("  popularity: zipf_alpha=%.2f bias=%.2f\n", p.zipf_alpha,
              p.popularity_bias);
  std::printf("  site: %u sections x %u pages, page=%.1fKB (cv %.1f), "
              "%.1f embedded x %.1fKB, dynamic=%.0f%%, cross-section=%.2f\n",
              p.sections, p.pages_per_section, p.mean_page_kb, p.page_size_cv,
              p.mean_embedded, p.mean_embedded_kb, p.dynamic_fraction * 100.0,
              p.cross_section_link_prob);
  std::printf("  sessions: %.1f pages, think pareto(a=%.2f, %.2f..%.0f s)\n",
              p.mean_pages_per_session, p.think_alpha, p.think_lo_sec,
              p.think_hi_sec);
  std::printf("  phases: %zu%s", p.phase.phases,
              p.phase.drifting() ? " (drifting)" : " (stationary)");
  if (p.phase.drifting()) std::printf(" rotation=%.2f", p.phase.rotation);
  if (p.phase.flash_multiplier > 1.0)
    std::printf(" flash=x%.1f/%.0fs", p.phase.flash_multiplier,
                p.phase.flash_duration_sec);
  if (p.phase.diurnal_amplitude > 0.0)
    std::printf(" diurnal=%.2f@%.0fs", p.phase.diurnal_amplitude,
                p.phase.diurnal_period_sec);
  std::printf("\n");
  for (const auto& t : p.templates)
    std::printf("  template: %-40s %8llu %s\n", t.pattern.c_str(),
                static_cast<unsigned long long>(t.support), t.cls.c_str());
}

int cmd_export(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string out_path;
  for (int i = 3; i < argc; ++i) next_arg(argc, argv, i, "-o", out_path);
  const auto profile =
      zoo::ScenarioRegistry::with_builtins().resolve(argv[2]);
  if (out_path.empty()) {
    std::cout << zoo::profile_to_json(profile).dump() << '\n';
    return 0;
  }
  if (!zoo::save_profile(profile, out_path)) {
    std::fprintf(stderr, "prord_zoo: cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

int cmd_describe(int argc, char** argv) {
  const auto registry = zoo::ScenarioRegistry::with_builtins();
  if (argc < 3) {
    for (const auto& name : registry.names()) {
      describe_profile(*registry.find(name));
      std::printf("\n");
    }
    return 0;
  }
  describe_profile(registry.resolve(argv[2]));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "mine") return cmd_mine(argc, argv);
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "emit") return cmd_emit(argc, argv);
    if (cmd == "export") return cmd_export(argc, argv);
    if (cmd == "describe") return cmd_describe(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prord_zoo: %s\n", e.what());
    return 1;
  }
  return usage();
}
