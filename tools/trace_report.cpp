// trace_report: critical-path analysis of live trace JSONL.
//
// Reads span files produced by the live cluster (prord_live --trace-out,
// LiveConfig::trace_out), keeps the wall-clock spans ("clock":"wall" —
// sim spans in a mixed file are counted and skipped), and decomposes
// end-to-end latency into the named hops recorded by the distributor:
// parse, route, upstream_send, upstream_wait, backend_cache,
// backend_serve, relay, reorder_hold. Because the hops telescope by
// construction, the per-hop p50/p99 table is a faithful answer to "where
// does the live p99 go?" (docs/OBSERVABILITY.md).
//
// Usage: trace_report [options] <spans.jsonl>...
//   --json            machine-readable report on stdout
//   --require-hops N  exit 1 unless >= N hops have nonzero time (CI gate)
//   --max-skew F      exit 1 if any span's |hop sum - resp_us| exceeds
//                     F * resp_us (telescoping check; default 0.05)
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "obs/trace_context.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using prord::metrics::Histogram;
using prord::metrics::RunningStats;
using prord::util::JsonValue;

struct HopAgg {
  Histogram hist{1ULL << 32};
  RunningStats stats;
  std::uint64_t total_us = 0;
};

/// One front-end shard's slice of the trace (sharded runs label every
/// span with the shard that routed it; unsharded files are all shard 0).
struct ShardAgg {
  std::array<HopAgg, prord::obs::kNumLiveHops> hops;
  Histogram e2e{1ULL << 32};
  RunningStats e2e_stats;
  std::uint64_t spans = 0;
};

struct Report {
  std::array<HopAgg, prord::obs::kNumLiveHops> hops;
  Histogram e2e{1ULL << 32};
  RunningStats e2e_stats;
  std::map<std::string, std::uint64_t> via_counts;
  std::map<std::uint32_t, ShardAgg> shards;
  std::uint64_t spans = 0;
  std::uint64_t sim_spans_skipped = 0;
  std::uint64_t bad_lines = 0;
  std::uint64_t skew_violations = 0;
  double worst_skew = 0.0;
};

int hop_index(const std::string& name) {
  for (unsigned h = 0; h < prord::obs::kNumLiveHops; ++h)
    if (name == prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(h)))
      return static_cast<int>(h);
  return -1;
}

void consume_line(const std::string& line, double max_skew, Report& report) {
  JsonValue doc;
  try {
    doc = prord::util::json_parse(line);
  } catch (const std::exception&) {
    ++report.bad_lines;
    return;
  }
  if (!doc.is_object()) {
    ++report.bad_lines;
    return;
  }
  const JsonValue* clock = doc.find("clock");
  if (clock == nullptr || !clock->is_string() ||
      clock->as_string() != "wall") {
    ++report.sim_spans_skipped;
    return;
  }
  const JsonValue* resp = doc.find("resp_us");
  const JsonValue* hops = doc.find("hops");
  if (resp == nullptr || !resp->is_number() || hops == nullptr ||
      !hops->is_object()) {
    ++report.bad_lines;
    return;
  }
  const double resp_us = resp->as_number();
  // Sharded front ends label each span with the shard that routed it;
  // files from unsharded runs simply land in shard 0.
  std::uint32_t shard = 0;
  if (const JsonValue* sh = doc.find("shard");
      sh != nullptr && sh->is_number())
    shard = static_cast<std::uint32_t>(std::max(0.0, sh->as_number()));
  ShardAgg& per_shard = report.shards[shard];
  double hop_sum = 0.0;
  for (const auto& [name, value] : hops->members()) {
    if (!value.is_number()) continue;
    const int h = hop_index(name);
    if (h < 0) continue;
    const double us = std::max(0.0, value.as_number());
    hop_sum += us;
    HopAgg& agg = report.hops[static_cast<std::size_t>(h)];
    agg.hist.record(static_cast<std::uint64_t>(us));
    agg.stats.add(us);
    agg.total_us += static_cast<std::uint64_t>(us);
    HopAgg& sagg = per_shard.hops[static_cast<std::size_t>(h)];
    sagg.hist.record(static_cast<std::uint64_t>(us));
    sagg.stats.add(us);
    sagg.total_us += static_cast<std::uint64_t>(us);
  }
  ++report.spans;
  ++per_shard.spans;
  report.e2e.record(static_cast<std::uint64_t>(std::max(0.0, resp_us)));
  report.e2e_stats.add(resp_us);
  per_shard.e2e.record(static_cast<std::uint64_t>(std::max(0.0, resp_us)));
  per_shard.e2e_stats.add(resp_us);
  if (const JsonValue* via = doc.find("via");
      via != nullptr && via->is_string())
    ++report.via_counts[via->as_string()];
  // Telescoping check: the hop sum must reconstruct the measured
  // end-to-end latency (within max_skew, to tolerate clock granularity).
  const double denom = std::max(1.0, resp_us);
  const double skew = std::abs(hop_sum - resp_us) / denom;
  report.worst_skew = std::max(report.worst_skew, skew);
  if (skew > max_skew) ++report.skew_violations;
}

void print_text(const Report& report) {
  std::uint64_t grand_total = 0;
  for (const HopAgg& agg : report.hops) grand_total += agg.total_us;

  prord::util::Table hops({"hop", "count", "p50_us", "p99_us", "mean_us",
                           "total_share"});
  for (unsigned h = 0; h < prord::obs::kNumLiveHops; ++h) {
    const HopAgg& agg = report.hops[h];
    const double share =
        grand_total ? 100.0 * static_cast<double>(agg.total_us) /
                          static_cast<double>(grand_total)
                    : 0.0;
    hops.add_row(
        {prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(h)),
         std::to_string(agg.hist.count()),
         std::to_string(agg.hist.quantile(0.50)),
         std::to_string(agg.hist.quantile(0.99)),
         prord::util::Table::num(agg.stats.mean(), 1),
         prord::util::Table::num(share, 1) + "%"});
  }
  std::cout << "Per-hop latency decomposition (" << report.spans
            << " live spans):\n";
  hops.print(std::cout);

  std::cout << "\nEnd-to-end: p50=" << report.e2e.quantile(0.50)
            << "us p99=" << report.e2e.quantile(0.99)
            << "us mean=" << prord::util::Table::num(report.e2e_stats.mean(), 1)
            << "us max=" << report.e2e.max() << "us\n";

  if (!report.via_counts.empty()) {
    prord::util::Table via({"via", "spans"});
    for (const auto& [name, count] : report.via_counts)
      via.add_row({name, std::to_string(count)});
    std::cout << "\nRouting decision breakdown:\n";
    via.print(std::cout);
  }

  // Per-shard breakdown, shown only when the file actually came from a
  // sharded front end (docs/SCALING.md): one row per shard plus that
  // shard's slowest hop, so a skewed shard is visible at a glance.
  if (report.shards.size() > 1) {
    prord::util::Table shards({"shard", "spans", "e2e_p50_us", "e2e_p99_us",
                               "slowest_hop", "hop_p99_us"});
    for (const auto& [id, agg] : report.shards) {
      unsigned top = 0;
      for (unsigned h = 1; h < prord::obs::kNumLiveHops; ++h)
        if (agg.hops[h].total_us > agg.hops[top].total_us) top = h;
      shards.add_row(
          {std::to_string(id), std::to_string(agg.spans),
           std::to_string(agg.e2e.quantile(0.50)),
           std::to_string(agg.e2e.quantile(0.99)),
           prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(top)),
           std::to_string(agg.hops[top].hist.quantile(0.99))});
    }
    std::cout << "\nPer-shard hop latency:\n";
    shards.print(std::cout);
  }

  // Critical path: the hop that contributes the most total time is where
  // optimization effort pays off first.
  unsigned top = 0;
  for (unsigned h = 1; h < prord::obs::kNumLiveHops; ++h)
    if (report.hops[h].total_us > report.hops[top].total_us) top = h;
  if (grand_total > 0) {
    std::cout << "\nCritical path: '"
              << prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(top))
              << "' dominates with "
              << prord::util::Table::num(
                     100.0 * static_cast<double>(report.hops[top].total_us) /
                         static_cast<double>(grand_total),
                     1)
              << "% of traced time\n";
  }
  std::cout << "telescoping: worst skew "
            << prord::util::Table::num(100.0 * report.worst_skew, 2) << "% ("
            << report.skew_violations << " spans over limit)\n";
  if (report.sim_spans_skipped > 0)
    std::cout << "(skipped " << report.sim_spans_skipped
              << " non-wall-clock spans)\n";
  if (report.bad_lines > 0)
    std::cout << "(ignored " << report.bad_lines << " malformed lines)\n";
}

void print_json(const Report& report) {
  JsonValue doc = JsonValue::object();
  doc.set("spans", report.spans);
  doc.set("sim_spans_skipped", report.sim_spans_skipped);
  doc.set("bad_lines", report.bad_lines);
  JsonValue e2e = JsonValue::object();
  e2e.set("p50_us", report.e2e.quantile(0.50));
  e2e.set("p99_us", report.e2e.quantile(0.99));
  e2e.set("mean_us", report.e2e_stats.mean());
  e2e.set("max_us", report.e2e.max());
  doc.set("e2e", std::move(e2e));
  JsonValue hops = JsonValue::object();
  for (unsigned h = 0; h < prord::obs::kNumLiveHops; ++h) {
    const HopAgg& agg = report.hops[h];
    JsonValue hop = JsonValue::object();
    hop.set("count", agg.hist.count());
    hop.set("p50_us", agg.hist.quantile(0.50));
    hop.set("p99_us", agg.hist.quantile(0.99));
    hop.set("mean_us", agg.stats.mean());
    hop.set("total_us", agg.total_us);
    hops.set(prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(h)),
             std::move(hop));
  }
  doc.set("hops", std::move(hops));
  JsonValue shards = JsonValue::object();
  for (const auto& [id, agg] : report.shards) {
    JsonValue s = JsonValue::object();
    s.set("spans", agg.spans);
    s.set("e2e_p50_us", agg.e2e.quantile(0.50));
    s.set("e2e_p99_us", agg.e2e.quantile(0.99));
    JsonValue shard_hops = JsonValue::object();
    for (unsigned h = 0; h < prord::obs::kNumLiveHops; ++h) {
      const HopAgg& hagg = agg.hops[h];
      if (hagg.hist.count() == 0) continue;
      JsonValue hop = JsonValue::object();
      hop.set("count", hagg.hist.count());
      hop.set("p50_us", hagg.hist.quantile(0.50));
      hop.set("p99_us", hagg.hist.quantile(0.99));
      hop.set("total_us", hagg.total_us);
      shard_hops.set(
          prord::obs::live_hop_name(static_cast<prord::obs::LiveHop>(h)),
          std::move(hop));
    }
    s.set("hops", std::move(shard_hops));
    shards.set(std::to_string(id), std::move(s));
  }
  doc.set("shards", std::move(shards));
  JsonValue via = JsonValue::object();
  for (const auto& [name, count] : report.via_counts) via.set(name, count);
  doc.set("via", std::move(via));
  doc.set("worst_skew", report.worst_skew);
  doc.set("skew_violations", report.skew_violations);
  std::cout << doc.dump() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  unsigned require_hops = 0;
  double max_skew = 0.05;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--require-hops" && i + 1 < argc) {
      require_hops = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--max-skew" && i + 1 < argc) {
      max_skew = std::stod(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: trace_report [--json] [--require-hops N] "
                   "[--max-skew F] <spans.jsonl>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_report: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "trace_report: no input files (try --help)\n";
    return 2;
  }

  Report report;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "trace_report: cannot open " << path << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      consume_line(line, max_skew, report);
    }
  }

  if (as_json)
    print_json(report);
  else
    print_text(report);

  if (report.spans == 0) {
    std::cerr << "trace_report: no live spans found\n";
    return 1;
  }
  unsigned nonzero_hops = 0;
  for (const HopAgg& agg : report.hops)
    if (agg.total_us > 0) ++nonzero_hops;
  if (require_hops > 0 && nonzero_hops < require_hops) {
    std::cerr << "trace_report: only " << nonzero_hops
              << " hops carry time (need " << require_hops << ")\n";
    return 1;
  }
  if (report.skew_violations > 0) {
    std::cerr << "trace_report: " << report.skew_violations
              << " spans exceed the " << max_skew
              << " hop-sum skew limit\n";
    return 1;
  }
  return 0;
}
