// Flash-crowd scenario: the WorldCup'98-style workload — a small, intensely
// hot file set hammered by many concurrent sessions.
//
// Sweeps the offered load and reports each policy's sustained throughput
// and mean response time. The interesting behaviour: multiple-handoff LARD
// saturates its front-end early (every request costs a TCP handoff), while
// PRORD's dispatch-free forwarding keeps scaling with the offered load.
#include <iostream>
#include <memory>

#include "core/experiment.h"
#include "core/workload_player.h"
#include "policies/prord.h"
#include "util/table.h"

int main() {
  using namespace prord;

  const double kOffered[] = {5'000, 15'000, 30'000, 60'000};
  std::cout << "Flash crowd (worldcup98-style trace, 8 back-ends)\n\n";

  util::Table table({"offered(req/s)", "policy", "throughput(req/s)",
                     "mean-resp(ms)", "p99-resp(ms)"});
  for (const double offered : kOffered) {
    for (const auto kind :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = trace::world_cup_spec(0.1);
      config.policy = kind;
      config.target_offered_rps = offered;
      const auto r = core::run_experiment(config);
      table.add_row(
          {util::Table::num(offered, 0), r.policy,
           util::Table::num(r.throughput_rps(), 0),
           util::Table::num(r.metrics.mean_response_ms(), 2),
           util::Table::num(
               static_cast<double>(r.metrics.response_hist.p99()) / 1000.0,
               2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nNote how LARD's throughput flattens once per-request "
               "handoffs saturate the distributor, while PRORD tracks the "
               "offered load.\n";

  // --- Part 2: a kickoff-style flash event, watched over time.
  // The generator's inhomogeneous arrivals multiply the rate 6x for the
  // middle fifth of the trace; timeline sampling shows each policy's
  // completions and queue depth through the spike.
  std::cout << "\n--- Flash event timeline (rate x6 for the middle fifth) "
               "---\n";
  auto spec = trace::world_cup_spec(0.05);
  spec.gen.flash_multiplier = 6.0;
  spec.gen.flash_start_sec = spec.gen.duration_sec * 0.4;
  spec.gen.flash_duration_sec = spec.gen.duration_sec * 0.2;

  const auto site = trace::build_site(spec.site);
  const auto eval = trace::build_workload(
      trace::generate_trace(site, spec.gen).records);
  auto train_gen = spec.gen;
  train_gen.seed += 1000;
  const auto train = trace::build_workload(
      trace::generate_trace(site, train_gen).records, {}, eval.files);

  for (const auto kind : {core::PolicyKind::kLard, core::PolicyKind::kPrord}) {
    core::ExperimentConfig probe;  // reuse the factory via run_experiment?
    sim::Simulator sim;
    cluster::ClusterParams params;
    cluster::Cluster cl(sim, params, 2 << 20, 1 << 19);
    std::unique_ptr<policies::DistributionPolicy> policy;
    std::shared_ptr<logmining::MiningModel> model;
    if (kind == core::PolicyKind::kPrord) {
      model = std::make_shared<logmining::MiningModel>(
          train.requests, logmining::MiningConfig{});
      policy = std::make_unique<policies::Prord>(model, eval.files);
    } else {
      policy = std::make_unique<policies::Lard>();
    }
    core::PlayerOptions opts;
    opts.time_scale = 100.0;
    opts.sample_interval = sim::sec(eval.span() > 0
                                        ? sim::to_seconds(eval.span()) / 100 /
                                              100.0
                                        : 1.0);
    const auto m = core::play_workload(sim, cl, *policy, eval, opts);
    std::vector<double> tput, load;
    for (const auto& s : m.timeline) {
      tput.push_back(static_cast<double>(s.completed));
      load.push_back(s.mean_load);
    }
    std::cout << '\n'
              << policy->name() << "  (mean resp "
              << util::Table::num(m.mean_response_ms(), 2) << " ms)\n"
              << "  completions/window " << util::sparkline(tput) << '\n'
              << "  mean queue depth   " << util::sparkline(load) << '\n';
    (void)probe;
  }
  std::cout << "\nThe spike is visible in both; PRORD's queues stay "
               "shallower through it.\n";
  return 0;
}
