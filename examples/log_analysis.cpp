// Using the library as a standalone web-log mining toolkit.
//
// Demonstrates the file-based workflow a site operator would use:
//   1. write a trace to disk in Common Log Format,
//   2. parse it back with ClfParser (as you would a real access log),
//   3. reconstruct sessions, mine bundles / popularity / association
//      rules, and print a site report.
// Everything downstream of step 2 only sees CLF lines, so the same code
// works on real logs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "logmining/association_rules.h"
#include "logmining/mining_model.h"
#include "trace/clf.h"
#include "trace/models.h"
#include "trace/workload.h"
#include "util/table.h"

int main() {
  using namespace prord;

  // 1. Produce an access log on disk (stand-in for a real server log).
  const char* kLogPath = "prord_access.log";
  {
    auto spec = trace::synthetic_spec();
    spec.gen.target_requests = 12'000;
    const auto built = trace::build(spec);
    std::ofstream out(kLogPath);
    trace::write_clf(out, built.trace.records);
  }

  // 2. Parse it like any Common Log Format file.
  std::ifstream in(kLogPath);
  trace::ClfParser parser;
  const auto records = parser.parse_stream(in);
  std::cout << "Parsed " << records.size() << " records from " << kLogPath
            << " (" << parser.malformed_lines() << " malformed, "
            << parser.num_hosts() << " distinct hosts)\n\n";

  // 3. Mine.
  const auto workload = trace::build_workload(records);
  const auto sessions = logmining::build_sessions(workload.requests);
  logmining::MiningModel model(workload.requests, logmining::MiningConfig{});

  std::cout << "Sessions: " << sessions.size() << ", mean length "
            << util::Table::num(
                   static_cast<double>(workload.num_main_pages) /
                       static_cast<double>(sessions.size()),
                   1)
            << " page views\n\n";

  std::cout << "--- Top pages ---\n";
  util::Table top({"url", "hits", "bundle"});
  const auto rank = model.popularity().rank_table(0);
  for (std::size_t i = 0; i < rank.size() && top.rows() < 8; ++i) {
    const auto& url = workload.files.url(rank[i].file);
    if (trace::is_embedded_url(url)) continue;  // report pages only
    std::ostringstream bundle;
    for (const auto obj : model.bundles().bundle_of(rank[i].file))
      bundle << workload.files.url(obj) << ' ';
    top.add_row({url, util::Table::num(rank[i].rank, 0),
                 bundle.str().empty() ? "-" : bundle.str()});
  }
  top.print(std::cout);

  std::cout << "\n--- Association rules (Apriori) ---\n";
  logmining::AprioriOptions opt;
  opt.min_support = 0.01;
  opt.min_confidence = 0.4;
  logmining::AssociationRuleMiner miner(opt);
  miner.train(sessions);
  util::Table rules({"rule", "support", "confidence"});
  for (std::size_t i = 0; i < miner.rules().size() && i < 8; ++i) {
    const auto& r = miner.rules()[i];
    std::ostringstream lhs;
    for (const auto f : r.antecedent) lhs << workload.files.url(f) << ' ';
    rules.add_row({lhs.str() + "=> " + workload.files.url(r.consequent),
                   util::Table::num(r.support, 3),
                   util::Table::num(r.confidence, 2)});
  }
  rules.print(std::cout);

  std::remove(kLogPath);
  return 0;
}
