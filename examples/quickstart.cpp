// Quickstart: simulate one cluster under all four headline policies on the
// paper's synthetic workload and print the comparison table.
//
//   $ ./examples/quickstart
//
// This is the 30-second tour of the library: build a workload spec, pick a
// policy, call run_experiment, read the metrics.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace prord;

  core::ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.gen.target_requests = 10'000;  // quick demo run
  config.params.num_backends = 8;
  config.memory_fraction = 0.30;  // ~30% of the site fits in each cache

  std::cout << "PRORD quickstart: " << config.workload.name << " trace, "
            << config.params.num_backends << " back-ends, "
            << config.memory_fraction * 100 << "% of site per cache\n\n";

  util::Table table({"policy", "throughput(req/s)", "mean-resp(ms)",
                     "p99-resp(ms)", "hit-rate", "dispatches/req"});

  for (const auto kind :
       {core::PolicyKind::kWrr, core::PolicyKind::kLard,
        core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPrord}) {
    config.policy = kind;
    const auto result = core::run_experiment(config);
    table.add_row({result.policy,
                   util::Table::num(result.throughput_rps(), 0),
                   util::Table::num(result.metrics.mean_response_ms(), 2),
                   util::Table::num(
                       static_cast<double>(result.metrics.response_hist.p99()) /
                           1000.0,
                       2),
                   util::Table::num(result.hit_rate(), 3),
                   util::Table::num(result.dispatch_frequency(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 7): PRORD > Ext-LARD-PHTTP and "
               "LARD > WRR in throughput.\n";
  return 0;
}
