// Site-analysis workbench: the web-usage-mining analyses around PRORD.
//
// Demonstrates the parts of the mining library a site analyst (rather than
// the distributor) would use:
//   * frequent navigation-path fragments (WUM-style, [11][12][28]),
//   * entry paths into a target page of interest,
//   * website-reorganization suggestions ([6]): detours that deserve a
//     direct hyperlink,
//   * unsupervised user categorization by dominant section,
//   * persisting the mined model for the distributor process.
#include <fstream>
#include <iostream>
#include <sstream>

#include "logmining/categorizer.h"
#include "logmining/mining_model.h"
#include "logmining/reorganization.h"
#include "trace/models.h"
#include "util/table.h"

int main() {
  using namespace prord;

  const auto spec = trace::cs_dept_spec();
  const trace::SiteModel site = trace::build_site(spec.site);
  const auto generated = trace::generate_trace(site, spec.gen);
  const auto workload = trace::build_workload(generated.records);
  const auto sessions = logmining::build_sessions(workload.requests);
  std::cout << "Analyzing " << sessions.size() << " sessions over "
            << workload.files.count() << " files\n\n";

  auto url = [&](trace::FileId f) { return workload.files.url(f); };

  // --- Frequent navigation fragments.
  logmining::PathMiner miner(2, 4, 5);
  miner.train(sessions);
  std::cout << "--- Most traversed path fragments ---\n";
  util::Table paths({"path", "traversals"});
  for (const auto& f : miner.fragments()) {
    if (paths.rows() >= 6) break;
    std::ostringstream line;
    for (std::size_t i = 0; i < f.pages.size(); ++i)
      line << (i ? " -> " : "") << url(f.pages[i]);
    paths.add_row({line.str(), std::to_string(f.count)});
  }
  paths.print(std::cout);

  // --- Entry paths into the hottest content page.
  logmining::PopularityTracker popularity(0);
  popularity.seed(workload.requests);
  trace::FileId target = trace::kInvalidFile;
  for (const auto& e : popularity.rank_table(0)) {
    const auto& u = url(e.file);
    if (!trace::is_embedded_url(u) && u.find("/p") != std::string::npos) {
      target = e.file;
      break;
    }
  }
  if (target != trace::kInvalidFile) {
    std::cout << "\n--- How users reach " << url(target) << " ---\n";
    util::Table entry({"entry path", "traversals"});
    for (const auto& f : miner.paths_to(target, 5)) {
      std::ostringstream line;
      for (std::size_t i = 0; i < f.pages.size(); ++i)
        line << (i ? " -> " : "") << url(f.pages[i]);
      entry.add_row({line.str(), std::to_string(f.count)});
    }
    entry.print(std::cout);
  }

  // --- Reorganization: detours that deserve a direct link.
  std::cout << "\n--- Suggested shortcuts ([6]-style reorganization) ---\n";
  util::Table sugg({"add link", "detour users", "direct users", "benefit"});
  for (const auto& s : logmining::suggest_links(miner)) {
    if (sugg.rows() >= 6) break;
    sugg.add_row({url(s.from) + " -> " + url(s.to),
                  std::to_string(s.detour_traversals),
                  std::to_string(s.direct_traversals),
                  util::Table::num(s.benefit, 2)});
  }
  sugg.print(std::cout);

  // --- Unsupervised categorization by dominant site section.
  logmining::UserCategorizer categorizer;
  categorizer.train_by_section(
      sessions,
      [&](trace::FileId f) -> std::uint32_t {
        const auto& u = url(f);
        if (u.size() > 2 && u[1] == 's' && std::isdigit(u[2]))
          return static_cast<std::uint32_t>(u[2] - '0');
        return 0;
      },
      spec.site.sections);
  std::size_t confident = 0;
  for (const auto& s : sessions)
    confident += categorizer.classify(s.pages).confidence > 0.8;
  std::cout << "\nUnsupervised section categorizer: "
            << util::Table::num(
                   100.0 * static_cast<double>(confident) / sessions.size(), 1)
            << "% of sessions classified with confidence > 0.8\n";

  // --- Persist the full mined model for the distributor.
  const char* kModelPath = "prord_model.txt";
  {
    logmining::MiningModel model(workload.requests, logmining::MiningConfig{});
    std::ofstream out(kModelPath);
    model.save(out);
  }
  std::ifstream in(kModelPath);
  const auto restored = logmining::MiningModel::load(in, logmining::MiningConfig{});
  std::cout << "\nSaved and restored the mined model ("
            << (restored ? "ok" : "FAILED") << ", "
            << (restored ? restored->predictor().num_entries() : 0)
            << " predictor entries)\n";
  std::remove(kModelPath);
  return restored ? 0 : 1;
}
