// prord_live — the live loopback cluster (docs/LIVE_CLUSTER.md).
//
// Runs the real-socket prototype: one epoll distributor, N back-end
// worker threads serving the synthetic site from in-memory caches, and a
// trace-replay load generator, all over 127.0.0.1. Routing goes through
// the same core::RoutingCore + DistributionPolicy objects the simulator
// uses.
//
//   prord_live [--policy wrr|lard|ext-lard|press|prord|lard-bundle|all]  (repeatable)
//              [--trace cs-dept|worldcup98|synthetic | --clf FILE |
//               --scenario NAME|profile.json]
//              [--backends N] [--requests N] [--concurrency N]
//              [--pipeline N] [--open-loop] [--time-scale X]
//              [--port P] [--seed S] [--memory FRACTION]
//              [--replication-ms MS] [--duration-s S]
//              [--trace-out FILE] [--trace-sample-rate R]
//              [--slo-latency-ms MS] [--slo-availability A]
//              [--slo-windows SHORT_S,LONG_S] [--flight-out FILE]
//              [--prefetch off|prord|mithril] [--prefetch-fanout N]
//              [--prefetch-confidence C]
//              [--shards N] [--gossip-ms MS] [--no-reuseport]
//              [--load-threads N]
//
// --requests N cycles the trace until N requests have been issued
// (0 = one pass). --duration-s caps a run by wall time via the idle
// timeout only; the primary budget is request-count. Exits non-zero if
// any run fails request conservation (completed + failed != issued) or
// serves zero throughput.
//
// Observability (docs/OBSERVABILITY.md): --trace-sample-rate R traces a
// deterministic R fraction of forwarded requests hop-by-hop; --trace-out
// writes them as JSONL for tools/trace_report (multi-policy runs append
// ".<policy>" to the path). --flight-out arms the flight recorder and
// installs a SIGUSR2 handler that dumps it to the given file; the
// distributor also dumps on SLO violations and upstream faults.
//
// Live proactive prefetch (docs/PREDICTOR.md): --prefetch runs a
// PredictionService next to the distributor and warms predicted files
// into the backend LRUs over the same sockets ("prord" = paper path
// graph, "mithril" = association miner). Prefetch traffic is excluded
// from client accounting; the summary reports issued/hit/wasted.
//
// Sharded front end (docs/SCALING.md): --shards N runs N distributor
// shards behind one port via scale::run_live_sharded — SO_REUSEPORT when
// the kernel has it, accept handoff otherwise (--no-reuseport forces the
// handoff path). --gossip-ms sets the load-gossip cadence between shard
// beliefs; --load-threads sizes the client side (0 = one per shard). The
// summary prints a per-shard table and the run fails if conservation
// across shards breaks.
//
// Examples:
//   prord_live --policy prord --backends 4 --requests 100000
//   prord_live --policy all --requests 20000 --concurrency 32
//   prord_live --prefetch mithril --requests 10000
//   prord_live --trace-sample-rate 0.01 --trace-out spans.jsonl
//              --flight-out flight.json
//   prord_live --shards 4 --requests 50000 --concurrency 64
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "net/live_cluster.h"
#include "obs/flight_recorder.h"
#include "scale/sharded_live.h"
#include "util/table.h"
#include "zoo/scenario_registry.h"

namespace {

using namespace prord;

std::optional<core::PolicyKind> parse_policy(std::string_view s) {
  if (s == "wrr") return core::PolicyKind::kWrr;
  if (s == "lard") return core::PolicyKind::kLard;
  if (s == "ext-lard") return core::PolicyKind::kExtLardPhttp;
  if (s == "press") return core::PolicyKind::kPress;
  if (s == "prord") return core::PolicyKind::kPrord;
  // Fig. 9 ablation: bundle forwarding without PRORD's native prefetch or
  // replication — the clean substrate for measuring --prefetch, since the
  // policy itself never warms caches yet keeps connections pinned to the
  // back-end the prefetches went to.
  if (s == "lard-bundle") return core::PolicyKind::kLardBundle;
  return std::nullopt;
}

void usage() {
  std::cerr
      << "usage: prord_live [--policy wrr|lard|ext-lard|press|prord|lard-bundle|all]\n"
         "                  [--trace cs-dept|worldcup98|synthetic | --clf "
         "FILE\n"
         "                   | --scenario NAME|profile.json]\n"
         "                  [--backends N] [--requests N] [--concurrency N]\n"
         "                  [--pipeline N] [--open-loop] [--time-scale X]\n"
         "                  [--port P] [--seed S] [--memory FRACTION]\n"
         "                  [--replication-ms MS]\n"
         "                  [--trace-out FILE] [--trace-sample-rate R]\n"
         "                  [--slo-latency-ms MS] [--slo-availability A]\n"
         "                  [--slo-windows SHORT_S,LONG_S] [--flight-out "
         "FILE]\n"
         "                  [--prefetch off|prord|mithril] "
         "[--prefetch-fanout N]\n"
         "                  [--prefetch-confidence C]\n"
         "                  [--shards N] [--gossip-ms MS] [--no-reuseport]\n"
         "                  [--load-threads N]\n";
}

void on_sigusr2(int) {
  // Async-signal-safe: one atomic store; the distributor's event loop
  // polls the flag and performs the dump.
  prord::obs::FlightRecorder::instance().request_dump();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<core::PolicyKind> policies;
  net::LiveConfig base;
  base.requests = 20'000;
  std::string trace_name = "synthetic";
  std::string scenario;  // workload-zoo name or profile JSON (src/zoo/)
  std::uint64_t seed = 0;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      const std::string_view v = next();
      if (v == "all") {
        policies = {core::PolicyKind::kWrr, core::PolicyKind::kLard,
                    core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPress,
                    core::PolicyKind::kPrord};
      } else if (auto p = parse_policy(v)) {
        policies.push_back(*p);
      } else {
        std::cerr << "unknown policy: " << v << "\n";
        return 2;
      }
    } else if (arg == "--trace") {
      trace_name = next();
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--clf") {
      base.clf_path = next();
    } else if (arg == "--backends") {
      base.backends = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--requests") {
      base.requests = std::stoull(next());
    } else if (arg == "--concurrency") {
      base.concurrency = std::stoull(next());
    } else if (arg == "--pipeline") {
      base.pipeline_depth = std::stoull(next());
    } else if (arg == "--open-loop") {
      base.open_loop = true;
    } else if (arg == "--time-scale") {
      base.time_scale = std::stod(next());
    } else if (arg == "--port") {
      base.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--memory") {
      base.memory_fraction = std::stod(next());
    } else if (arg == "--replication-ms") {
      base.replication_interval = sim::msec(std::stoll(next()));
    } else if (arg == "--duration-s") {
      base.idle_timeout_us =
          static_cast<std::int64_t>(std::stod(next()) * 1e6);
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--trace-sample-rate") {
      base.trace_sample_rate = std::stod(next());
    } else if (arg == "--slo-latency-ms") {
      base.slo.latency_objective_us =
          static_cast<std::int64_t>(std::stod(next()) * 1000.0);
    } else if (arg == "--slo-availability") {
      base.slo.availability_objective = std::stod(next());
    } else if (arg == "--slo-windows") {
      const std::string v = next();
      const std::size_t comma = v.find(',');
      if (comma == std::string::npos) {
        std::cerr << "--slo-windows wants SHORT_S,LONG_S\n";
        return 2;
      }
      base.slo.short_window_us =
          static_cast<std::int64_t>(std::stod(v.substr(0, comma)) * 1e6);
      base.slo.long_window_us =
          static_cast<std::int64_t>(std::stod(v.substr(comma + 1)) * 1e6);
    } else if (arg == "--flight-out") {
      base.flight_dump_path = next();
      base.flight_recorder = true;
    } else if (arg == "--prefetch") {
      const std::string_view v = next();
      if (v == "off") {
        base.prefetch = false;
      } else if (v == "prord") {
        base.prefetch = true;
        base.predictor.algo = predict::Algo::kPrordGraph;
      } else if (v == "mithril") {
        base.prefetch = true;
        base.predictor.algo = predict::Algo::kMithril;
      } else {
        std::cerr << "unknown prefetch backend: " << v << "\n";
        return 2;
      }
    } else if (arg == "--prefetch-fanout") {
      base.predictor.max_associations =
          static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--prefetch-confidence") {
      base.predictor.confidence = std::stod(next());
    } else if (arg == "--shards") {
      base.shards = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--gossip-ms") {
      base.gossip_interval_us =
          static_cast<std::int64_t>(std::stod(next()) * 1000.0);
    } else if (arg == "--no-reuseport") {
      base.reuseport = false;
    } else if (arg == "--load-threads") {
      base.load_threads = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (policies.empty()) policies.push_back(core::PolicyKind::kPrord);
  // Tracing without an explicit rate still works (spans stay in memory);
  // a --trace-out without a rate implies full sampling so the file is
  // never silently empty.
  if (!trace_out.empty() && base.trace_sample_rate <= 0.0)
    base.trace_sample_rate = 1.0;
  if (base.flight_recorder) std::signal(SIGUSR2, on_sigusr2);

  if (base.clf_path.empty()) {
    if (!scenario.empty()) {
      // Workload-zoo scenario drives the LoadGenerator instead of one of
      // the paper traces.
      try {
        base.workload = zoo::scenario_spec(scenario);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
      if (seed) {
        base.workload.site.seed = seed;
        base.workload.gen.seed = seed * 31 + 1;
      }
    } else if (trace_name == "synthetic") {
      base.workload = trace::synthetic_spec(seed ? seed : 8);
    } else if (trace_name == "cs-dept") {
      base.workload = trace::cs_dept_spec(seed ? seed : 2006);
    } else if (trace_name == "worldcup98") {
      base.workload = trace::world_cup_spec(0.25, seed ? seed : 1998);
    } else {
      std::cerr << "unknown trace: " << trace_name << "\n";
      return 2;
    }
  }

  util::Table table({"policy", "issued", "completed", "failed", "req/s",
                     "p50(us)", "p99(us)", "hit-rate", "dispatch/req"});
  bool ok = true;
  const bool multi = policies.size() > 1;
  for (const auto policy : policies) {
    net::LiveConfig cfg = base;
    cfg.policy = policy;
    if (!trace_out.empty())
      cfg.trace_out = multi ? trace_out + "." + core::policy_label(policy)
                            : trace_out;
    std::cerr << "running " << core::policy_label(policy) << " ("
              << cfg.requests << " requests, " << cfg.backends
              << " backends)...\n";
    const net::LiveRunResult r = cfg.shards > 1
                                     ? scale::run_live_sharded(cfg)
                                     : net::run_live(cfg);
    if (!r.started) {
      std::cerr << core::policy_label(policy) << ": setup failed\n";
      ok = false;
      continue;
    }
    const auto& l = r.load;
    const double dispatch_per_req =
        r.routed ? static_cast<double>(r.dispatches) /
                       static_cast<double>(r.routed)
                 : 0.0;
    table.add_row({r.policy, std::to_string(l.issued),
                   std::to_string(l.completed), std::to_string(l.failed),
                   util::Table::num(l.throughput_rps(), 0),
                   std::to_string(l.latency_hist.p50()),
                   std::to_string(l.latency_hist.p99()),
                   util::Table::num(r.worker_hit_rate(), 3),
                   util::Table::num(dispatch_per_req, 3)});
    if (!r.conserved()) {
      std::cerr << r.policy << ": conservation violated (issued=" << l.issued
                << " completed=" << l.completed << " failed=" << l.failed
                << ")\n";
      ok = false;
    }
    if (r.shard_count > 1) {
      // Per-shard ledger + conservation across shards: every issued
      // request was parsed by exactly one shard and answered.
      util::Table st({"shard", "requests", "responses", "accepts", "adopted",
                      "routed", "gossip-pub", "gossip-merge"});
      for (const auto& s : r.shards)
        st.add_row({std::to_string(s.shard), std::to_string(s.requests),
                    std::to_string(s.responses), std::to_string(s.accepts),
                    std::to_string(s.adopted), std::to_string(s.routed),
                    std::to_string(s.gossip_publishes),
                    std::to_string(s.gossip_merges)});
      std::cerr << r.policy << ": " << r.shard_count << " shards ("
                << (r.reuseport_used ? "SO_REUSEPORT" : "accept handoff")
                << ")\n";
      st.print(std::cerr);
      if (!r.shard_conserved()) {
        std::cerr << r.policy
                  << ": conservation across shards violated (issued="
                  << l.issued << " parsed=" << r.dist_requests << ")\n";
        ok = false;
      }
    }
    if (l.completed == 0 || l.throughput_rps() <= 0) {
      std::cerr << r.policy << ": no throughput\n";
      ok = false;
    }
    if (r.metrics_scrape.find("prord_live_requests_total") ==
        std::string::npos) {
      std::cerr << r.policy << ": /metrics scrape missing counters\n";
      ok = false;
    }
    if (cfg.trace_sample_rate > 0.0) {
      std::cerr << r.policy << ": " << r.trace_spans << " spans traced ("
                << r.trace_dropped << " dropped)";
      if (!cfg.trace_out.empty()) std::cerr << " -> " << cfg.trace_out;
      std::cerr << "\n";
      if (r.trace_spans == 0 && l.completed > 0) {
        std::cerr << r.policy << ": tracing enabled but no spans collected\n";
        ok = false;
      }
    }
    if (r.prefetch_enabled) {
      std::cerr << r.policy << ": prefetch[" << r.prefetch_algo
                << "] issued=" << r.prefetch_issued
                << " hits=" << r.prefetch_hits
                << " wasted=" << r.prefetch_wasted
                << " waste-ratio="
                << util::Table::num(r.prefetch_waste_ratio(), 3)
                << " drops=" << r.predict_drops
                << " (feeds=" << r.predictor.feeds
                << " mine-passes=" << r.predictor.mine_passes
                << " publishes=" << r.predictor.publishes << ")\n";
    }
    std::cerr << r.policy << ": slo short-burn="
              << util::Table::num(r.slo.short_window.burn_rate, 2)
              << " long-burn="
              << util::Table::num(r.slo.long_window.burn_rate, 2)
              << (r.slo.violating ? " VIOLATING" : " ok") << " (violations="
              << r.slo_violations << ", flight dumps=" << r.flight_dumps
              << ")\n";
  }
  table.print(std::cout);
  return ok ? 0 : 1;
}
