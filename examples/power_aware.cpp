// Power-aware operation (extension).
//
// Table 1 specifies power states (ON 100%, hibernate 5%, OFF 0%) because
// the paper positions PRORD alongside PARD-style power-aware distribution
// [3]. PRORD itself never powers nodes down; this example exercises the
// power model the cluster substrate carries: it runs the same workload on
// a full cluster and on one where half the back-ends hibernate through a
// low-traffic period, and reports the energy/throughput trade.
#include <iostream>

#include "core/workload_player.h"
#include "policies/prord.h"
#include "trace/models.h"
#include "util/table.h"

int main() {
  using namespace prord;

  auto spec = trace::synthetic_spec();
  spec.gen.target_requests = 10'000;
  const auto site = trace::build_site(spec.site);
  const auto t = trace::generate_trace(site, spec.gen);
  const auto workload = trace::build_workload(t.records);

  auto gen2 = spec.gen;
  gen2.seed += 1000;
  const auto train = trace::build_workload(
      trace::generate_trace(site, gen2).records, {}, workload.files);
  auto model = std::make_shared<logmining::MiningModel>(
      train.requests, logmining::MiningConfig{});

  util::Table table({"configuration", "throughput(req/s)", "mean-resp(ms)",
                     "energy(full-power-sec)", "energy/request(mJ-equiv)"});

  for (const bool hibernate_half : {false, true}) {
    sim::Simulator sim;
    cluster::ClusterParams params;
    params.num_backends = 8;
    cluster::Cluster cl(sim, params, 4 << 20, 1 << 20);
    if (hibernate_half)
      for (cluster::ServerId s = 4; s < 8; ++s)
        cl.backend(s).set_power_state(cluster::PowerState::kHibernate);

    policies::Prord prord(model, workload.files);
    core::PlayerOptions opts;
    opts.time_scale = 2000.0;  // moderate load: headroom for consolidation
    const auto m = core::play_workload(sim, cl, prord, workload, opts);

    table.add_row(
        {hibernate_half ? "4 on + 4 hibernating" : "8 on",
         util::Table::num(m.throughput_rps(), 0),
         util::Table::num(m.mean_response_ms(), 2),
         util::Table::num(m.energy_full_power_seconds, 2),
         util::Table::num(
             1000.0 * m.energy_full_power_seconds /
                 static_cast<double>(m.completed),
             3)});
  }
  table.print(std::cout);
  std::cout << "\nHibernating idle nodes trades response time for energy — "
               "the PARD [3] design point the cluster model supports.\n";
  return 0;
}
