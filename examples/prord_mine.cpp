// prord_mine — offline web-log mining tool.
//
// The deployment pipeline the paper implies: the mining scripts run
// periodically over the server logs and hand the distributor a model.
//
//   prord_mine --clf access.log -o model.txt [--order N] [--threshold T]
//   prord_mine --demo -o model.txt            (mine a generated demo log)
//
// The saved model is loaded by the distributor process via
// logmining::MiningModel::load (see site_analysis.cpp for the round trip).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "logmining/mining_model.h"
#include "trace/clf.h"
#include "trace/models.h"
#include "trace/stats.h"
#include "util/table.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--clf FILE | --demo) -o MODEL [--order N] [--threshold T]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prord;

  std::optional<std::string> clf_path, out_path;
  bool demo = false;
  logmining::MiningConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--clf") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      clf_path = v;
    } else if (arg == "-o" || arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--order") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.predictor_order = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.prefetch_threshold = std::atof(v);
    } else if (arg == "--demo") {
      demo = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!out_path || (demo == clf_path.has_value())) return usage(argv[0]);

  std::vector<trace::LogRecord> records;
  if (demo) {
    const auto built = trace::build(trace::cs_dept_spec());
    records = built.trace.records;
    std::cout << "Generated demo log: " << records.size() << " records\n";
  } else {
    std::ifstream in(*clf_path);
    if (!in) {
      std::cerr << "cannot open " << *clf_path << '\n';
      return 1;
    }
    trace::ClfParser parser;
    records = parser.parse_stream(in);
    std::stable_sort(records.begin(), records.end(),
                     [](const trace::LogRecord& a, const trace::LogRecord& b) {
                       return a.time < b.time;
                     });
    std::cout << "Parsed " << records.size() << " records ("
              << parser.malformed_lines() << " malformed)\n";
  }

  const auto workload = trace::build_workload(records);
  const auto stats = trace::characterize(workload);
  logmining::MiningModel model(workload.requests, config);

  std::ofstream out(*out_path);
  if (!out) {
    std::cerr << "cannot write " << *out_path << '\n';
    return 1;
  }
  model.save(out);
  out.close();

  util::Table report({"mined artifact", "size"});
  report.add_row({"training sessions", std::to_string(model.training_sessions())});
  report.add_row({"predictor entries", std::to_string(model.predictor().num_entries())});
  report.add_row({"bundles", std::to_string(model.bundles().num_bundles())});
  report.add_row({"ranked files", std::to_string(model.popularity().num_files())});
  report.add_row({"distinct files", std::to_string(stats.distinct_files)});
  report.add_row({"zipf alpha (fit)", util::Table::num(stats.zipf_alpha, 2)});
  report.print(std::cout);
  std::cout << "\nModel written to " << *out_path << '\n';
  return 0;
}
