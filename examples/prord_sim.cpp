// prord_sim — command-line cluster simulator.
//
// The whole experiment pipeline behind one flag-driven binary:
//
//   prord_sim [--trace cs-dept|worldcup98|synthetic | --clf FILE |
//              --scenario NAME|profile.json]
//             [--policy wrr|lard|lard-r|ext-lard|prord|bundle|distribution|
//                       prefetch]  (repeatable; default: all headline four)
//             [--backends N] [--memory FRACTION] [--offered RPS]
//             [--dynamic FRACTION] [--gdsf] [--no-warmup] [--seed S]
//             [--jobs N] [--replications N]
//             [--metrics-out FILE|-] [--series-out FILE]
//             [--trace-out FILE|-] [--trace-sample-rate R]
//             [--sample-interval-ms MS]
//
// The policy cells run through the deterministic parallel experiment
// engine (core/parallel_runner.h): --jobs fans them across worker threads
// (0 = all cores, 1 = serial fallback) and --replications N runs N
// independently seeded replications per cell, reported as mean ± 95% CI.
// Tables are byte-identical for any --jobs value.
//
// Observability (docs/OBSERVABILITY.md): --metrics-out exports the full
// metric catalogue (Prometheus text, or CSV when FILE ends in .csv),
// --series-out the sampled gauge time series, --trace-out one JSONL span
// per request. All three are byte-identical at any --jobs value.
//
// Examples:
//   prord_sim --trace cs-dept --policy lard --policy prord --backends 12
//   prord_sim --trace synthetic --jobs 4 --replications 5
//   prord_sim --policy prord --metrics-out - --trace-out trace.jsonl
//   prord_sim --clf access.log --policy prord
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/obs_export.h"
#include "core/parallel_runner.h"
#include "trace/clf.h"
#include "trace/stats.h"
#include "util/string_util.h"
#include "util/table.h"
#include "zoo/scenario_registry.h"

namespace {

using namespace prord;

struct CliOptions {
  std::string trace = "synthetic";
  std::optional<std::string> clf_path;
  /// Workload-zoo scenario: builtin name or profile-JSON path (src/zoo/).
  std::optional<std::string> scenario;
  std::size_t scenario_requests = 0;  ///< 0 = use the profile's target
  std::vector<core::PolicyKind> policies;
  std::uint32_t backends = 8;
  double memory = 0.30;
  double offered = 20'000;
  std::optional<double> dynamic_fraction;  ///< unset = keep the spec's own
  bool gdsf = false;
  bool warmup = true;
  std::uint64_t seed = 0;
  unsigned jobs = 1;
  std::size_t replications = 1;
  core::ObsExportOptions obs;
  core::FaultOptions faults;
  core::AdaptOptions adapt;
  trace::DriftSpec drift;
  bool drift_set = false;  ///< any --drift-* flag given (overrides scenario)
};

std::optional<core::PolicyKind> parse_policy(std::string_view s) {
  if (s == "wrr") return core::PolicyKind::kWrr;
  if (s == "lard") return core::PolicyKind::kLard;
  if (s == "lard-r") return core::PolicyKind::kLardReplicated;
  if (s == "ext-lard") return core::PolicyKind::kExtLardPhttp;
  if (s == "prord") return core::PolicyKind::kPrord;
  if (s == "bundle") return core::PolicyKind::kLardBundle;
  if (s == "distribution") return core::PolicyKind::kLardDistribution;
  if (s == "prefetch") return core::PolicyKind::kLardPrefetchNav;
  if (s == "prord-norepl") return core::PolicyKind::kPrordNoReplication;
  return std::nullopt;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--trace cs-dept|worldcup98|synthetic] [--clf FILE]\n"
         "       [--scenario NAME|profile.json] [--scenario-requests N]\n"
         "       [--policy NAME]... [--backends N] [--memory FRAC]\n"
         "       [--offered RPS] [--dynamic FRAC] [--gdsf] [--no-warmup]\n"
         "       [--seed S] [--jobs N] [--replications N]\n"
         "       [--metrics-out FILE|-] [--series-out FILE]\n"
         "       [--trace-out FILE|-] [--trace-sample-rate R]\n"
         "       [--sample-interval-ms MS]\n"
         "       [--faults SPEC] [--fault-mtbf SEC] [--fault-mttr SEC]\n"
         "       [--heartbeat-ms MS] [--fault-retries N]\n"
         "       [--adapt] [--adapt-epoch-s SEC] [--adapt-window-s SEC]\n"
         "       [--drift-threshold RATE] [--adapt-backend N|-1]\n"
         "       [--adapt-oracle] [--adapt-halflife-s SEC]\n"
         "       [--adapt-pop-halflife-s SEC] [--adapt-cold]\n"
         "       [--drift-phases N] [--drift-rotation FRAC]\n"
         "       [--drift-flash MULT] [--drift-flash-s SEC]\n"
         "  --faults takes a schedule like crash@60s:srv1,restart@120s:srv1\n"
         "  (docs/FAULTS.md); --fault-mtbf/--fault-mttr sample one instead.\n"
         "  --adapt turns on online re-mining for PRORD-family policies and\n"
         "  --drift-phases makes the synthetic workload rotate its hot set\n"
         "  (docs/ADAPTATION.md).\n";
  return 2;
}

std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace = v;
    } else if (arg == "--clf") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.clf_path = v;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.scenario = v;
    } else if (arg == "--scenario-requests") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.scenario_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto p = parse_policy(v);
      if (!p) {
        std::cerr << "unknown policy: " << v << '\n';
        return std::nullopt;
      }
      opt.policies.push_back(*p);
    } else if (arg == "--backends") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.backends = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--memory") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.memory = std::atof(v);
    } else if (arg == "--offered") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.offered = std::atof(v);
    } else if (arg == "--dynamic") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.dynamic_fraction = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.jobs = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--replications") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.replications = static_cast<std::size_t>(std::atoll(v));
      if (opt.replications == 0) opt.replications = 1;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.obs.metrics_out = v;
    } else if (arg == "--series-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.obs.series_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.obs.trace_out = v;
    } else if (arg == "--trace-sample-rate") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.obs.trace_sample_rate = std::atof(v);
    } else if (arg == "--sample-interval-ms") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.obs.sample_interval = sim::msec(std::atof(v));
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.faults.plan = v;
    } else if (arg == "--fault-mtbf") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.faults.model.mtbf_sec = std::atof(v);
      opt.faults.use_model = true;
    } else if (arg == "--fault-mttr") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.faults.model.mttr_sec = std::atof(v);
      opt.faults.use_model = true;
    } else if (arg == "--heartbeat-ms") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.faults.heartbeat_interval = sim::msec(std::atof(v));
    } else if (arg == "--fault-retries") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.faults.max_retries = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--adapt") {
      opt.adapt.enabled = true;
    } else if (arg == "--adapt-oracle") {
      opt.adapt.oracle = true;
    } else if (arg == "--adapt-epoch-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.epoch = sim::sec(std::atof(v));
    } else if (arg == "--adapt-window-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.window = sim::sec(std::atof(v));
    } else if (arg == "--drift-threshold") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.drift_threshold = std::atof(v);
    } else if (arg == "--adapt-cold") {
      opt.adapt.warm_start = false;
    } else if (arg == "--adapt-halflife-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.predictor_halflife_s = std::atof(v);
    } else if (arg == "--adapt-pop-halflife-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.popularity_halflife_s = std::atof(v);
    } else if (arg == "--adapt-backend") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.adapt.mining_backend = static_cast<std::int32_t>(std::atoi(v));
    } else if (arg == "--drift-phases") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.drift.phases = static_cast<std::uint32_t>(std::atoi(v));
      opt.drift_set = true;
    } else if (arg == "--drift-rotation") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.drift.rotation = std::atof(v);
      opt.drift_set = true;
    } else if (arg == "--drift-flash") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.drift.flash_multiplier = std::atof(v);
      opt.drift_set = true;
    } else if (arg == "--drift-flash-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.drift.flash_duration_sec = std::atof(v);
      opt.drift_set = true;
    } else if (arg == "--gdsf") {
      opt.gdsf = true;
    } else if (arg == "--no-warmup") {
      opt.warmup = false;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      return std::nullopt;
    }
  }
  if (opt.policies.empty())
    opt.policies = {core::PolicyKind::kWrr, core::PolicyKind::kLard,
                    core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPrord};
  return opt;
}

std::optional<trace::WorkloadSpec> spec_for(const CliOptions& opt) {
  if (opt.scenario) {
    // Workload-zoo scenario: builtin name or fitted profile JSON.
    try {
      auto spec = zoo::scenario_spec(*opt.scenario);
      if (opt.scenario_requests > 0)
        spec.gen.target_requests = opt.scenario_requests;
      if (opt.seed) {
        spec.site.seed = opt.seed;
        spec.gen.seed = opt.seed * 31 + 1;
      }
      return spec;
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return std::nullopt;
    }
  }
  if (opt.trace == "cs-dept")
    return opt.seed ? trace::cs_dept_spec(opt.seed) : trace::cs_dept_spec();
  if (opt.trace == "worldcup98")
    return opt.seed ? trace::world_cup_spec(0.1, opt.seed)
                    : trace::world_cup_spec(0.1);
  if (opt.trace == "synthetic")
    return opt.seed ? trace::synthetic_spec(opt.seed)
                    : trace::synthetic_spec();
  std::cerr << "unknown trace: " << opt.trace << '\n';
  return std::nullopt;
}

void print_trace_report(const trace::Workload& w) {
  const auto s = trace::characterize(w);
  util::Table t({"metric", "value"});
  t.add_row({"requests", std::to_string(s.requests)});
  t.add_row({"distinct files", std::to_string(s.distinct_files)});
  t.add_row({"footprint", util::format_bytes(
                              static_cast<double>(s.footprint_bytes))});
  t.add_row({"mean file size", util::Table::num(s.mean_file_kb, 1) + " KB"});
  t.add_row({"span", util::Table::num(sim::to_seconds(s.span), 0) + " s"});
  t.add_row({"natural rate", util::Table::num(s.mean_rps, 1) + " req/s"});
  t.add_row({"embedded share", util::Table::num(s.embedded_fraction(), 2)});
  t.add_row({"dynamic requests", std::to_string(s.dynamic_requests)});
  t.add_row({"zipf alpha (fit)", util::Table::num(s.zipf_alpha, 2)});
  t.add_row({"top-10% file share", util::Table::num(s.top10pct_share, 2)});
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse_cli(argc, argv);
  if (!opt) return usage(argv[0]);

  core::ExperimentConfig base;
  base.params.num_backends = opt->backends;
  base.memory_fraction = opt->memory;
  base.target_offered_rps = opt->offered;
  base.warmup = opt->warmup;
  base.obs = core::to_obs_options(opt->obs);
  base.faults = opt->faults;
  base.adapt = opt->adapt;
  if (opt->faults.use_model && opt->seed) base.faults.model.seed = opt->seed;
  if (opt->gdsf)
    base.params.demand_eviction = cluster::DemandEviction::kGdsf;

  if (opt->clf_path) {
    // External-log mode: mine and simulate a real CLF file. The site is
    // unknown, so the "training" history is the log's first half.
    std::ifstream in(*opt->clf_path);
    if (!in) {
      std::cerr << "cannot open " << *opt->clf_path << '\n';
      return 1;
    }
    trace::ClfParser parser;
    auto records = parser.parse_stream(in);
    // Real logs are written at completion time and can be slightly
    // out of order; the workload builder needs arrival order.
    std::stable_sort(records.begin(), records.end(),
                     [](const trace::LogRecord& a, const trace::LogRecord& b) {
                       return a.time < b.time;
                     });
    std::cout << "Parsed " << records.size() << " CLF records ("
              << parser.malformed_lines() << " malformed)\n\n";
    if (records.size() < 100) {
      std::cerr << "log too small to simulate\n";
      return 1;
    }
    const auto workload = trace::build_workload(records);
    print_trace_report(workload);
    std::cout << "(external logs are characterized only; cluster simulation "
                 "of CLF input uses the library API — see "
                 "examples/log_analysis.cpp)\n";
    return 0;
  }

  const auto spec = spec_for(*opt);
  if (!spec) return usage(argv[0]);
  base.workload = *spec;
  if (opt->dynamic_fraction)
    base.workload.site.dynamic_page_fraction = *opt->dynamic_fraction;
  if (opt->drift_set) base.workload.gen.drift = opt->drift;

  {
    const auto built = trace::build(base.workload);
    const auto w = trace::build_workload(built.trace.records);
    std::cout << "Trace: " << base.workload.name << '\n';
    print_trace_report(w);
  }

  // One cell per policy, fanned across workers by the deterministic
  // parallel engine; tables come out byte-identical for any --jobs value.
  std::vector<core::ExperimentCell> cells;
  for (const auto kind : opt->policies) {
    auto config = base;
    config.policy = kind;
    cells.push_back(
        core::ExperimentCell{core::policy_label(kind), std::move(config)});
  }
  core::RunnerOptions runner;
  runner.jobs = opt->jobs;
  runner.replications = opt->replications;
  runner.progress = [](const std::string& label, std::size_t rep) {
    std::cerr << "  [done] " << label << " (rep " << rep << ")\n";
  };
  const auto results = core::run_cells(cells, runner);

  const bool faulty = opt->faults.any();
  std::vector<std::string> headers{"policy", "throughput(req/s)", "hit-rate",
                                   "mean-resp(ms)", "p99-resp(ms)",
                                   "dispatches/req"};
  if (faulty) {
    headers.push_back("failed");
    headers.push_back("success");
  }
  const bool adaptive = opt->adapt.any();
  if (adaptive) {
    headers.push_back("pred-hit");
    headers.push_back("remines");
  }
  util::Table table(headers);
  for (const auto& cell : results) {
    const auto& r = cell.primary();
    std::vector<std::string> row{
        r.policy, util::Table::num(r.throughput_rps(), 0),
        util::Table::num(r.hit_rate(), 3),
        util::Table::num(r.metrics.mean_response_ms(), 2),
        util::Table::num(
            static_cast<double>(r.metrics.response_hist.p99()) / 1000.0, 2),
        util::Table::num(r.dispatch_frequency(), 3)};
    if (faulty) {
      row.push_back(std::to_string(r.metrics.failed));
      row.push_back(util::Table::num(r.metrics.success_ratio(), 4));
    }
    if (adaptive) {
      row.push_back(util::Table::num(r.prediction_hit_rate(), 3));
      row.push_back(std::to_string(r.adapt_stats.remines));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  if (opt->replications > 1) {
    std::cout << "\n--- Replication summary (mean over " << opt->replications
              << " seeded replications) ---\n\n";
    core::summary_table(results).print(std::cout);
  }

  if (opt->obs.any() && !core::export_observability(results, opt->obs))
    return 1;
  return 0;
}
