// The paper's motivating scenario (Section 3.1): a university department
// web site serving distinct user groups — current students, prospective
// students, faculty, staff and others — each with a "highly directional and
// mostly unique access pattern".
//
// This example runs the full mining pipeline on the CS-department workload
// and shows what each component extracts:
//   * user categorization from access-path prefixes,
//   * next-page predictions with confidences (Algorithms 1-2),
//   * mined bundles (page -> embedded objects),
//   * the popularity rank table that drives Algorithm 3,
// then plays the trace through an 8-node cluster under PRORD.
#include <iostream>

#include "core/experiment.h"
#include "logmining/categorizer.h"
#include "util/table.h"

int main() {
  using namespace prord;

  // --- Build the site + a historical trace and mine it.
  const auto spec = trace::cs_dept_spec();
  const trace::SiteModel site = trace::build_site(spec.site);
  const auto history = trace::generate_trace(site, spec.gen);
  const auto workload = trace::build_workload(history.records);
  logmining::MiningModel model(workload.requests, logmining::MiningConfig{});

  std::cout << "Mined " << model.training_sessions() << " sessions, "
            << workload.files.count() << " files, "
            << model.bundles().num_bundles() << " bundles.\n\n";

  // --- User categorization: train on ground-truth groups, classify a few
  // session prefixes of increasing length.
  const auto sessions = logmining::build_sessions(workload.requests);
  logmining::UserCategorizer categorizer;
  {
    std::vector<logmining::Session> train;
    std::vector<std::uint32_t> labels;
    for (const auto& s : sessions) {
      train.push_back(s);
      labels.push_back(history.session_group[s.client]);
    }
    categorizer.train(train, labels);
  }
  std::cout << "--- User categorization (confidence grows with path "
               "length) ---\n";
  util::Table cat({"session", "true-group", "pages-seen", "predicted",
                   "confidence"});
  for (std::size_t i = 0; i < sessions.size() && cat.rows() < 6; ++i) {
    const auto& s = sessions[i];
    if (s.pages.size() < 4) continue;
    for (std::size_t len : {1UL, 3UL}) {
      const auto result =
          categorizer.classify(std::span(s.pages).subspan(0, len));
      cat.add_row({std::to_string(i),
                   "group" + std::to_string(history.session_group[s.client]),
                   std::to_string(len), "group" + std::to_string(result.group),
                   util::Table::num(result.confidence, 2)});
    }
  }
  cat.print(std::cout);

  // --- Predictions for live navigation contexts.
  std::cout << "\n--- Next-page predictions (Algorithms 1-2) ---\n";
  util::Table pred({"context (last pages)", "predicted next", "confidence"});
  for (const auto& s : sessions) {
    if (s.pages.size() < 3 || pred.rows() >= 5) continue;
    const auto ctx = std::span(s.pages).subspan(0, 2);
    const auto p = model.predictor().predict(ctx, 0.2);
    if (!p) continue;
    pred.add_row({workload.files.url(ctx[0]) + " -> " +
                      workload.files.url(ctx[1]),
                  workload.files.url(p->page),
                  util::Table::num(p->confidence, 2)});
  }
  pred.print(std::cout);

  // --- Hottest pages and their bundles.
  std::cout << "\n--- Popularity rank table head (drives Algorithm 3) ---\n";
  util::Table top({"rank", "url", "hits", "bundle-size"});
  const auto table = model.popularity().rank_table(0);
  for (std::size_t i = 0; i < table.size() && i < 5; ++i) {
    top.add_row({std::to_string(i + 1), workload.files.url(table[i].file),
                 util::Table::num(table[i].rank, 0),
                 std::to_string(model.bundles().bundle_of(table[i].file).size())});
  }
  top.print(std::cout);

  // --- Finally: how does PRORD do on this site?
  std::cout << "\n--- Cluster simulation (8 back-ends, 30% of site in "
               "memory) ---\n";
  util::Table sim({"policy", "throughput(req/s)", "hit-rate",
                   "dispatches/req"});
  for (const auto kind : {core::PolicyKind::kLard, core::PolicyKind::kPrord}) {
    core::ExperimentConfig config;
    config.workload = spec;
    config.policy = kind;
    const auto r = core::run_experiment(config);
    sim.add_row({r.policy, util::Table::num(r.throughput_rps(), 0),
                 util::Table::num(r.hit_rate(), 3),
                 util::Table::num(r.dispatch_frequency(), 3)});
  }
  sim.print(std::cout);
  return 0;
}
