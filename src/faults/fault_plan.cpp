#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace prord::faults {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kSlowStart: return "slow_start";
    case FaultKind::kSlowEnd: return "slow_end";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(std::string_view spec, std::size_t pos,
                       const std::string& what) {
  throw std::invalid_argument("fault spec: " + what + " at offset " +
                              std::to_string(pos) + " in \"" +
                              std::string(spec) + "\"");
}

/// Minimal recursive-descent cursor over the spec string.
struct Cursor {
  std::string_view spec;
  std::size_t pos = 0;

  bool done() const noexcept { return pos >= spec.size(); }
  char peek() const noexcept { return done() ? '\0' : spec[pos]; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  void expect(char c, const char* what) {
    if (!eat(c)) fail(spec, pos, std::string("expected '") + c + "' (" +
                                     what + ")");
  }

  double number(const char* what) {
    const std::size_t start = pos;
    while (!done() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.'))
      ++pos;
    if (pos == start) fail(spec, pos, std::string("expected ") + what);
    return std::stod(std::string(spec.substr(start, pos - start)));
  }

  /// NUMBER ('us'|'ms'|'s')?, default unit seconds.
  sim::SimTime duration(const char* what) {
    const double value = number(what);
    if (spec.substr(pos, 2) == "us") {
      pos += 2;
      return static_cast<sim::SimTime>(value);
    }
    if (spec.substr(pos, 2) == "ms") {
      pos += 2;
      return sim::msec(value);
    }
    if (eat('s')) return sim::sec(value);
    return sim::sec(value);
  }

  cluster::ServerId server_id() {
    if (spec.substr(pos, 3) == "srv") pos += 3;
    const std::size_t start = pos;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (pos == start) fail(spec, pos, "expected server id");
    return static_cast<cluster::ServerId>(
        std::stoul(std::string(spec.substr(start, pos - start))));
  }

  std::string_view word() {
    const std::size_t start = pos;
    while (!done() && std::isalpha(static_cast<unsigned char>(peek()))) ++pos;
    return spec.substr(start, pos - start);
  }
};

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  Cursor c{spec};
  while (!c.done()) {
    const std::size_t event_start = c.pos;
    const std::string_view kind = c.word();
    c.expect('@', "event time");
    const sim::SimTime at = c.duration("event time");
    c.expect(':', "server");
    const cluster::ServerId server = c.server_id();

    if (kind == "crash") {
      plan.events.push_back({at, server, FaultKind::kCrash, 1.0});
    } else if (kind == "restart") {
      plan.events.push_back({at, server, FaultKind::kRestart, 1.0});
    } else if (kind == "slow") {
      c.expect(':', "slowdown argument FACTORxDURATION");
      const double factor = c.number("slowdown factor");
      c.expect('x', "slowdown duration");
      const sim::SimTime span = c.duration("slowdown duration");
      if (factor < 1.0 || span <= 0)
        fail(spec, event_start, "slowdown needs factor >= 1 and duration > 0");
      plan.events.push_back({at, server, FaultKind::kSlowStart, factor});
      plan.events.push_back({at + span, server, FaultKind::kSlowEnd, 1.0});
    } else if (kind == "flap") {
      c.expect(':', "flap argument COUNTxDOWN/UP");
      const double count = c.number("flap cycle count");
      c.expect('x', "flap down-time");
      const sim::SimTime down = c.duration("flap down-time");
      c.expect('/', "flap up-time");
      const sim::SimTime up = c.duration("flap up-time");
      if (count < 1 || down <= 0 || up <= 0)
        fail(spec, event_start, "flap needs count >= 1 and positive times");
      sim::SimTime t = at;
      for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(count); ++i) {
        plan.events.push_back({t, server, FaultKind::kCrash, 1.0});
        plan.events.push_back({t + down, server, FaultKind::kRestart, 1.0});
        t += down + up;
      }
    } else {
      fail(spec, event_start,
           "unknown fault kind \"" + std::string(kind) + "\"");
    }
    if (!c.done()) c.expect(',', "next event");
  }
  plan.normalize();
  return plan;
}

void FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.server != b.server) return a.server < b.server;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  // Per-server sanity: crash/restart must alternate (a trailing crash is
  // fine), slowdown windows must pair up without nesting.
  std::vector<cluster::ServerId> seen;
  for (const auto& e : events)
    if (std::find(seen.begin(), seen.end(), e.server) == seen.end())
      seen.push_back(e.server);
  for (const cluster::ServerId s : seen) {
    bool down = false;
    bool slowed = false;
    for (const auto& e : events) {
      if (e.server != s) continue;
      switch (e.kind) {
        case FaultKind::kCrash:
          if (down)
            throw std::invalid_argument(
                "fault plan: srv" + std::to_string(s) +
                " crashes twice without a restart");
          down = true;
          break;
        case FaultKind::kRestart:
          if (!down)
            throw std::invalid_argument(
                "fault plan: srv" + std::to_string(s) +
                " restarts without a preceding crash");
          down = false;
          break;
        case FaultKind::kSlowStart:
          if (slowed)
            throw std::invalid_argument(
                "fault plan: srv" + std::to_string(s) +
                " has overlapping slowdown windows");
          slowed = true;
          break;
        case FaultKind::kSlowEnd:
          slowed = false;
          break;
      }
    }
  }
  for (const auto& e : events)
    if (e.at < 0)
      throw std::invalid_argument("fault plan: negative event time");
}

FaultPlan FaultPlan::scaled(double time_scale) const {
  FaultPlan out = *this;
  for (auto& e : out.events)
    e.at = std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(static_cast<double>(e.at) / time_scale));
  // Compression can collapse distinct times onto one microsecond tick;
  // re-sort so the (time, server, kind) order stays canonical.
  out.normalize();
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += fault_kind_name(e.kind);
    out += '@';
    out += std::to_string(e.at);
    out += "us:srv";
    out += std::to_string(e.server);
    if (e.kind == FaultKind::kSlowStart) {
      out += ":x";
      out += std::to_string(e.factor);
    }
  }
  return out;
}

FaultPlan sample_fault_plan(const FaultModel& model,
                            std::uint32_t num_servers, sim::SimTime horizon) {
  if (model.mtbf_sec <= 0 || model.mttr_sec <= 0)
    throw std::invalid_argument("sample_fault_plan: MTBF/MTTR must be > 0");
  FaultPlan plan;
  for (cluster::ServerId s = 0; s < num_servers; ++s) {
    // One independent stream per server: chain (seed, server) through
    // SplitMix64 so adding servers never perturbs existing streams.
    std::uint64_t chain = model.seed;
    util::splitmix64(chain);
    chain ^= 0x66617561ULL + s;  // distinct lane per server
    util::Rng rng(util::splitmix64(chain));
    auto exponential = [&rng](double mean) {
      const double u =
          static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
      return -mean * std::log1p(-u);
    };
    sim::SimTime t = 0;
    while (true) {
      t += sim::sec(exponential(model.mtbf_sec));
      if (t >= horizon) break;
      plan.events.push_back({t, s, FaultKind::kCrash, 1.0});
      t += sim::sec(exponential(model.mttr_sec));
      if (t >= horizon) break;  // stays down through the end of the run
      plan.events.push_back({t, s, FaultKind::kRestart, 1.0});
    }
  }
  plan.normalize();
  return plan;
}

}  // namespace prord::faults
