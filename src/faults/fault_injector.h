// Fault injection session: replays a FaultPlan into the simulator.
//
// One FaultInjector per measured run. start() schedules every plan event
// relative to the current simulated time and arms the HealthMonitor's
// heartbeat; finish() cancels whatever has not fired yet and closes the
// unavailability accounting (the workload player calls it from its drain
// hook so a heartbeat task never keeps the event set alive).
//
// The RecoveryModel tracks post-rejoin cache re-warm: a restarted server
// comes back with a cold cache, and the model records how long it takes
// the cache to climb back to a target fraction of its capacity — the
// bench_fault_tolerance headline is how much PRORD's replication shortens
// that window versus demand-miss refill.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "faults/fault_plan.h"
#include "faults/health_monitor.h"
#include "simcore/simulator.h"

namespace prord::faults {

struct FaultSessionOptions {
  /// Probe cadence of the failure detector (trace wall-clock; the
  /// experiment runner compresses it together with the plan).
  sim::SimTime heartbeat_interval = sim::sec(1.0);
  /// Cache occupancy (fraction of demand+pinned capacity) at which a
  /// rejoined server counts as re-warmed; <= 0 disables re-warm tracking.
  double rewarm_target_fraction = 0.20;
};

/// One post-restart cache re-warm episode.
struct RewarmRecord {
  cluster::ServerId server = 0;
  sim::SimTime rejoin_at = 0;
  sim::SimTime warmed_at = -1;   ///< -1: run ended before the target
  std::uint64_t target_bytes = 0;

  bool completed() const noexcept { return warmed_at >= 0; }
  sim::SimTime duration() const noexcept {
    return completed() ? warmed_at - rejoin_at : -1;
  }
};

/// Cold-cache rejoin tracking (polled on the heartbeat cadence).
class RecoveryModel {
 public:
  RecoveryModel(cluster::Cluster& cluster, double target_fraction);

  /// A server just restarted (ground-truth time, not detection time).
  void on_rejoin(cluster::ServerId server, sim::SimTime now);

  /// Checks open episodes against the occupancy target.
  void poll(sim::SimTime now, FaultStats& stats);

  /// Marks still-open episodes unfinished (called once, at end of run).
  void finish(FaultStats& stats);

  const std::vector<RewarmRecord>& rewarms() const noexcept {
    return rewarms_;
  }

 private:
  cluster::Cluster& cluster_;
  double fraction_;
  std::vector<RewarmRecord> rewarms_;
};

class FaultInjector {
 public:
  /// `plan` times are offsets from the moment start() is called — pass the
  /// already time-compressed plan when arrivals are compressed.
  FaultInjector(sim::Simulator& sim, cluster::Cluster& cluster,
                FaultPlan plan, FaultSessionOptions options = {},
                FaultHooks hooks = {});

  void start();

  /// Cancels pending fault events, stops the heartbeat and closes the
  /// downtime/re-warm accounting. Idempotent; safe after a drained run.
  void finish();

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultStats& stats() const noexcept { return stats_; }
  HealthMonitor& monitor() noexcept { return monitor_; }
  const std::vector<RewarmRecord>& rewarms() const noexcept {
    return recovery_.rewarms();
  }

 private:
  void apply(const FaultEvent& event);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  FaultPlan plan_;
  FaultSessionOptions options_;
  FaultStats stats_;
  RecoveryModel recovery_;
  HealthMonitor monitor_;
  std::vector<sim::EventHandle> pending_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace prord::faults
