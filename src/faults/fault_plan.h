// Declarative fault schedules (the "what fails when" of a run).
//
// A FaultPlan is a sorted list of per-back-end fault events — crash,
// warm-restart, slowdown window, flapping — that a FaultInjector replays
// into the simulator's event queue. Plans come from two sources:
//
//   1. a CLI spec such as `crash@30s:srv2,restart@45s:srv2`
//      (grammar in docs/FAULTS.md), or
//   2. an MTBF/MTTR renewal model sampled through SplitMix64-seeded
//      streams, one per server, so a sampled plan is a pure function of
//      (seed, server count, horizon) and byte-identical at any --jobs.
//
// Event times are offsets from the start of the measured run, in the same
// wall-clock trace denomination as everything else in ExperimentConfig;
// the experiment runner compresses them with its time_scale via scaled().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/params.h"
#include "simcore/sim_time.h"

namespace prord::faults {

enum class FaultKind : std::uint8_t {
  kCrash,      ///< abrupt process death: cache lost, in-flight work fails
  kRestart,    ///< warm restart after a crash: rejoins with a cold cache
  kSlowStart,  ///< degraded mode begins: CPU/disk service times * factor
  kSlowEnd,    ///< degraded mode ends
};

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  sim::SimTime at = 0;  ///< offset from run start
  cluster::ServerId server = 0;
  FaultKind kind = FaultKind::kCrash;
  double factor = 1.0;  ///< slowdown multiplier (kSlowStart only)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// Sorts by (time, server, kind) and validates per-server sanity:
  /// restarts must follow a crash, crashes must not stack, slowdown
  /// windows must not nest on one server. Throws std::invalid_argument.
  /// A trailing crash with no restart is legal (the server stays down
  /// through the end of the run).
  void normalize();

  /// Copy with every event time divided by `time_scale` (min 1 µs) —
  /// the same arrival-compression treatment the experiment runner applies
  /// to all wall-clock-denominated timers.
  FaultPlan scaled(double time_scale) const;

  /// Canonical spec string. Crash/restart plans round-trip through
  /// parse_fault_plan; slowdown windows print as their expanded
  /// slow_start/slow_end events (debug form, not re-parseable).
  std::string to_string() const;
};

/// Parses the CLI grammar:
///
///   spec    := event (',' event)*
///   event   := kind '@' time ':' server (':' arg)?
///   kind    := 'crash' | 'restart' | 'slow' | 'flap'
///   time    := NUMBER ('us' | 'ms' | 's')?          -- default seconds
///   server  := 'srv'? INT
///   slow arg:= FACTOR 'x' DURATION                  -- e.g. 4x10s
///   flap arg:= COUNT 'x' DOWN '/' UP                -- e.g. 3x2s/5s
///
/// `slow` expands to a kSlowStart/kSlowEnd pair; `flap` expands to COUNT
/// crash/restart cycles (DOWN seconds dead, UP seconds alive between
/// cycles). The result is normalized. Throws std::invalid_argument with a
/// position-annotated message on malformed input.
FaultPlan parse_fault_plan(std::string_view spec);

/// MTBF/MTTR renewal model: per server, alternating exponential up-times
/// (mean `mtbf_sec`) and down-times (mean `mttr_sec`).
struct FaultModel {
  double mtbf_sec = 120.0;  ///< mean time between failures (up-time)
  double mttr_sec = 5.0;    ///< mean time to repair (down-time)
  std::uint64_t seed = 1;
};

/// Samples a normalized plan over [0, horizon). Each server draws from an
/// independent SplitMix64-derived stream, so the plan for server k does
/// not change when the cluster grows.
FaultPlan sample_fault_plan(const FaultModel& model,
                            std::uint32_t num_servers, sim::SimTime horizon);

}  // namespace prord::faults
