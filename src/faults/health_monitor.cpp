#include "faults/health_monitor.h"

#include <stdexcept>

#include "obs/flight_recorder.h"

namespace prord::faults {

HealthMonitor::HealthMonitor(sim::Simulator& sim, cluster::Cluster& cluster,
                             sim::SimTime heartbeat_interval,
                             FaultStats& stats, FaultHooks hooks)
    : sim_(sim),
      cluster_(cluster),
      interval_(heartbeat_interval),
      stats_(stats),
      hooks_(std::move(hooks)),
      views_(cluster.size()) {
  if (interval_ <= 0)
    throw std::invalid_argument("HealthMonitor: heartbeat_interval must be > 0");
}

void HealthMonitor::start() {
  if (task_) return;
  task_.emplace(sim_, interval_, [this] { tick(); });
}

void HealthMonitor::tick() {
  ++ticks_;
  const sim::SimTime now = sim_.now();
  for (cluster::ServerId s = 0; s < cluster_.size(); ++s) {
    auto& be = cluster_.backend(s);
    auto& view = views_[s];
    const bool up = be.alive() && be.power_state() == cluster::PowerState::kOn;
    if (view.up && !up) {
      view.up = false;
      view.down_since = now;
      be.set_marked_down(true);
      ++stats_.down_detections;
      obs::flight_record(obs::FlightEventType::kHealthDown,
                         static_cast<std::uint32_t>(s));
      // Detection latency only makes sense for a crash; a planned
      // power-down updated available() instantly.
      if (!be.alive())
        stats_.detection_latency_us.add(
            static_cast<double>(now - be.down_since()));
      // The dispatcher must stop steering locality at the corpse.
      cluster_.dispatcher().unassign_all(s);
      if (hooks_.server_down) hooks_.server_down(s);
    } else if (!view.up && up) {
      view.up = true;
      stats_.believed_unavailable += now - view.down_since;
      be.set_marked_down(false);
      ++stats_.up_detections;
      obs::flight_record(obs::FlightEventType::kHealthUp,
                         static_cast<std::uint32_t>(s));
      if (hooks_.server_up) hooks_.server_up(s);
    }
  }
  if (on_tick_) on_tick_(now);
}

void HealthMonitor::finish() {
  if (task_) task_.reset();
  const sim::SimTime now = sim_.now();
  for (auto& view : views_) {
    if (view.up) continue;
    stats_.believed_unavailable += now - view.down_since;
    view.down_since = now;  // idempotent on repeated finish()
  }
}

}  // namespace prord::faults
