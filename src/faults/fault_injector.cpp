#include "faults/fault_injector.h"

namespace prord::faults {

RecoveryModel::RecoveryModel(cluster::Cluster& cluster, double target_fraction)
    : cluster_(cluster), fraction_(target_fraction) {}

void RecoveryModel::on_rejoin(cluster::ServerId server, sim::SimTime now) {
  if (fraction_ <= 0) return;
  const auto& cache = cluster_.backend(server).cache();
  RewarmRecord rec;
  rec.server = server;
  rec.rejoin_at = now;
  rec.target_bytes = static_cast<std::uint64_t>(
      fraction_ * static_cast<double>(cache.demand_capacity() +
                                      cache.pinned_capacity()));
  rewarms_.push_back(rec);
}

void RecoveryModel::poll(sim::SimTime now, FaultStats& stats) {
  for (auto& rec : rewarms_) {
    if (rec.completed()) continue;
    const auto& be = cluster_.backend(rec.server);
    if (!be.alive()) continue;  // crashed again before warming up
    const std::uint64_t bytes =
        be.cache().demand_bytes() + be.cache().pinned_bytes();
    if (bytes >= rec.target_bytes) {
      rec.warmed_at = now;
      ++stats.rewarms_completed;
      stats.rewarm_time_us.add(static_cast<double>(rec.duration()));
    }
  }
}

void RecoveryModel::finish(FaultStats& stats) {
  for (const auto& rec : rewarms_)
    if (!rec.completed()) ++stats.rewarms_unfinished;
}

FaultInjector::FaultInjector(sim::Simulator& sim, cluster::Cluster& cluster,
                             FaultPlan plan, FaultSessionOptions options,
                             FaultHooks hooks)
    : sim_(sim),
      cluster_(cluster),
      plan_(std::move(plan)),
      options_(options),
      recovery_(cluster, options.rewarm_target_fraction),
      monitor_(sim, cluster, options.heartbeat_interval, stats_,
               std::move(hooks)) {
  plan_.normalize();
  monitor_.set_on_tick(
      [this](sim::SimTime now) { recovery_.poll(now, stats_); });
}

void FaultInjector::start() {
  if (started_) return;
  started_ = true;
  const sim::SimTime base = sim_.now();
  pending_.reserve(plan_.events.size());
  for (const auto& event : plan_.events)
    pending_.push_back(
        sim_.schedule_at(base + event.at, [this, event] { apply(event); }));
  monitor_.start();
}

void FaultInjector::apply(const FaultEvent& event) {
  if (event.server >= cluster_.size()) return;  // plan for a bigger cluster
  auto& be = cluster_.backend(event.server);
  const sim::SimTime now = sim_.now();
  switch (event.kind) {
    case FaultKind::kCrash:
      if (!be.alive() || be.power_state() != cluster::PowerState::kOn) return;
      be.crash();
      ++stats_.crashes;
      break;
    case FaultKind::kRestart:
      if (be.alive()) return;
      stats_.actual_unavailable += now - be.down_since();
      be.restart();
      ++stats_.restarts;
      recovery_.on_rejoin(event.server, now);
      break;
    case FaultKind::kSlowStart:
      be.set_slowdown(event.factor);
      ++stats_.slowdowns;
      break;
    case FaultKind::kSlowEnd:
      be.set_slowdown(1.0);
      break;
  }
}

void FaultInjector::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& handle : pending_) sim_.cancel(handle);
  pending_.clear();
  monitor_.finish();
  const sim::SimTime now = sim_.now();
  for (cluster::ServerId s = 0; s < cluster_.size(); ++s) {
    const auto& be = cluster_.backend(s);
    if (!be.alive()) stats_.actual_unavailable += now - be.down_since();
  }
  recovery_.finish(stats_);
}

}  // namespace prord::faults
