// Heartbeat-based failure detection.
//
// The front-end does not learn of a back-end death the instant it happens:
// a HealthMonitor probes every back-end on a heartbeat interval and flips
// the front-end's *belief* (BackendServer::marked_down, which feeds
// available()) when ground truth and belief disagree. The gap between a
// crash and the next heartbeat is the detection latency — during it every
// policy keeps routing to the corpse and requests fail into the player's
// retry machinery, which is exactly the availability cost the fault
// benches measure.
//
// On detection the monitor repairs cluster-level routing state (dispatcher
// assignments) and invokes the policy hooks so policy-private state
// (PRORD registries, PRESS ownership) can be repaired too.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "metrics/stats.h"
#include "simcore/simulator.h"

namespace prord::faults {

/// Aggregated fault/recovery accounting for one run.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t slowdowns = 0;      ///< degraded-mode windows entered
  std::uint64_t down_detections = 0;
  std::uint64_t up_detections = 0;
  /// Crash -> heartbeat-detection gap per down-detection (µs).
  metrics::RunningStats detection_latency_us;
  /// Time the front-end *believed* servers unavailable, summed over
  /// servers (includes the rejoin-detection lag after a restart).
  sim::SimTime believed_unavailable = 0;
  /// Ground-truth crashed time, summed over servers.
  sim::SimTime actual_unavailable = 0;
  std::uint64_t rewarms_completed = 0;   ///< cache re-warm reached target
  std::uint64_t rewarms_unfinished = 0;  ///< run ended before target
  metrics::RunningStats rewarm_time_us;  ///< rejoin -> warm durations (µs)
};

/// Notifications fired at *detection* time (not ground-truth fault time):
/// the experiment runner wires these to DistributionPolicy::on_server_down
/// / on_server_up.
struct FaultHooks {
  std::function<void(cluster::ServerId)> server_down;
  std::function<void(cluster::ServerId)> server_up;
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Simulator& sim, cluster::Cluster& cluster,
                sim::SimTime heartbeat_interval, FaultStats& stats,
                FaultHooks hooks = {});

  /// Arms the heartbeat (first probe one interval from now).
  void start();

  /// Stops the heartbeat (so the event set can drain) and closes the
  /// believed-unavailability accounting at the current time. Idempotent.
  void finish();

  /// One probe sweep over all back-ends; normally driven by the heartbeat
  /// task, exposed for deterministic unit tests.
  void tick();

  bool believed_up(cluster::ServerId s) const { return views_.at(s).up; }
  sim::SimTime heartbeat_interval() const noexcept { return interval_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

  /// Extra per-heartbeat work (the injector hangs recovery polling here).
  void set_on_tick(std::function<void(sim::SimTime)> fn) {
    on_tick_ = std::move(fn);
  }

 private:
  struct View {
    bool up = true;
    sim::SimTime down_since = 0;  ///< belief flipped down at this time
  };

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  sim::SimTime interval_;
  FaultStats& stats_;
  FaultHooks hooks_;
  std::vector<View> views_;
  std::optional<sim::PeriodicTask> task_;
  std::function<void(sim::SimTime)> on_tick_;
  std::uint64_t ticks_ = 0;
};

}  // namespace prord::faults
