// Always-on flight recorder: per-thread ring buffers of recent events.
//
// Each thread owns one fixed-size ring (no allocation, no locks on the
// record path — a slot write plus one release store), so recording is
// bounded-overhead by construction and safe from any thread. Dumping
// snapshots every ring from whatever thread asks: the reader copies the
// slots and re-checks the writer's head so any slot overwritten mid-copy
// is discarded rather than emitted torn.
//
// The process-wide instance() is disabled by default (every tap is a
// single relaxed load + branch); the live cluster enables it, and the
// distributor dumps it to disk on SLO violation, upstream-fault
// detection, or SIGUSR2 (request_dump() is async-signal-safe; the event
// loop polls consume_dump_request()). Dump format: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prord::obs {

enum class FlightEventType : std::uint8_t {
  kRouteDecision = 0,  ///< a=server, b=file, c=request index
  kCacheEvict = 1,     ///< a=backend, b=victim file, c=bytes freed
  kHealthDown = 2,     ///< a=server
  kHealthUp = 3,       ///< a=server
  kReplicaPush = 4,    ///< a=server, b=file, c=bytes
  kPrefetchPush = 5,   ///< a=server, b=file, c=bytes
  kUpstreamFail = 6,   ///< a=worker, b=in-flight requests failed
  kSloViolation = 7,   ///< a=short burn x1000, b=long burn x1000
  kDump = 8,           ///< recorded when a dump is taken
  kPrefetchIssue = 9,  ///< a=server, b=file, c=request index (live prefetch)
  kPredictDrop = 10,   ///< a=conn, b=file (predictor feed queue full)
};

inline constexpr unsigned kNumFlightEventTypes = 11;

constexpr const char* flight_event_name(FlightEventType t) noexcept {
  switch (t) {
    case FlightEventType::kRouteDecision: return "route";
    case FlightEventType::kCacheEvict: return "cache_evict";
    case FlightEventType::kHealthDown: return "health_down";
    case FlightEventType::kHealthUp: return "health_up";
    case FlightEventType::kReplicaPush: return "replica_push";
    case FlightEventType::kPrefetchPush: return "prefetch_push";
    case FlightEventType::kUpstreamFail: return "upstream_fail";
    case FlightEventType::kSloViolation: return "slo_violation";
    case FlightEventType::kDump: return "dump";
    case FlightEventType::kPrefetchIssue: return "prefetch_issue";
    case FlightEventType::kPredictDrop: return "predict_drop";
  }
  return "?";
}

/// One recorded event. Plain trivially-copyable value; the payload fields
/// a/b/c are typed per event kind (see the enum comments).
struct FlightEvent {
  std::int64_t t_us = 0;  ///< wall microseconds since enable()
  FlightEventType type = FlightEventType::kRouteDecision;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
};

/// Single-writer, multi-reader ring. The owning thread records; any
/// thread may snapshot.
class FlightRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  FlightRing(std::string name, std::size_t capacity);

  /// Owner thread only. Never blocks, never allocates.
  void record(const FlightEvent& event) noexcept;

  /// Events still resident, oldest first. Slots overwritten while the
  /// copy was in progress are discarded (never returned torn).
  std::vector<FlightEvent> snapshot() const;

  const std::string& name() const noexcept { return name_; }
  /// Rename (dump labelling). Caller provides cross-thread exclusion —
  /// FlightRecorder renames under its creation/dump mutex.
  void set_name(std::string name) { name_ = std::move(name); }
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Total events ever recorded (>= capacity() means wraparound).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound.
  std::uint64_t overwritten() const noexcept;

 private:
  std::string name_;
  std::vector<FlightEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  ///< next write position
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  /// Process-wide instance used by every tap site.
  static FlightRecorder& instance();

  /// Arms the recorder: sets the time epoch and the capacity used for
  /// rings created from here on. Idempotent while enabled.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Wall microseconds since enable() (0 when disabled).
  std::int64_t now_us() const noexcept;

  /// This thread's ring, created on first use (named "thread-<n>" until
  /// name_thread_ring() overrides it). Only meaningful while enabled.
  FlightRing& thread_ring();

  /// Names the calling thread's ring ("distributor", "backend0", ...).
  void name_thread_ring(std::string name);

  /// Records into the calling thread's ring; no-op while disabled.
  void record(FlightEventType type, std::uint32_t a = 0, std::uint32_t b = 0,
              std::uint64_t c = 0) noexcept;

  /// Async-signal-safe dump request (for SIGUSR2 handlers): a later
  /// consume_dump_request() from the polling thread returns true once.
  void request_dump() noexcept {
    dump_requested_.store(1, std::memory_order_release);
  }
  bool consume_dump_request() noexcept {
    return dump_requested_.exchange(0, std::memory_order_acq_rel) != 0;
  }

  /// Snapshot of every ring as one JSON document (see
  /// docs/OBSERVABILITY.md "Flight recorder dump format").
  std::string dump_json(std::string_view reason) const;

  /// dump_json() to `path`; false (with a stderr note) on I/O failure.
  bool dump_to_file(const std::string& path, std::string_view reason) const;

  /// Drops every ring and disables (test isolation). Invalidates rings
  /// handed out earlier — callers must not hold FlightRing pointers
  /// across reset().
  void reset();

 private:
  FlightRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int> dump_requested_{0};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::int64_t> epoch_ns_{0};
  std::size_t ring_capacity_ = kDefaultRingCapacity;

  mutable std::mutex mu_;  ///< guards ring creation/naming/dump, not record
  std::vector<std::unique_ptr<FlightRing>> rings_;
};

/// Tap helper: FlightRecorder::instance().record(...) behind one call.
inline void flight_record(FlightEventType type, std::uint32_t a = 0,
                          std::uint32_t b = 0, std::uint64_t c = 0) noexcept {
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) fr.record(type, a, b, c);
}

}  // namespace prord::obs
