// Request-lifecycle tracer.
//
// Collects one RequestSpan per (sampled) request. Sampling is a pure
// function of the request index — a SplitMix64 hash compared against the
// rate — so the set of traced requests is identical for every run of the
// same workload, at any thread count, with no RNG state threaded through
// the hot path.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/span.h"

namespace prord::obs {

class Tracer {
 public:
  /// `sample_rate` in [0,1]: share of requests traced. 1.0 = every
  /// request; 0 disables the tracer entirely.
  explicit Tracer(double sample_rate = 1.0);

  double sample_rate() const noexcept { return rate_; }
  bool enabled() const noexcept { return rate_ > 0.0; }

  /// Deterministic per-request sampling decision.
  bool sampled(std::uint64_t request_index) const noexcept;

  /// Appends a finished span (caller checks sampled() first; record()
  /// re-checks so call sites may skip the guard).
  void record(const RequestSpan& span);

  const std::vector<RequestSpan>& spans() const noexcept { return spans_; }
  std::vector<RequestSpan> take_spans() { return std::move(spans_); }

  /// Drops collected spans (warm-up boundary).
  void clear() { spans_.clear(); }

 private:
  double rate_;
  std::uint64_t threshold_;  ///< hash < threshold -> sampled
  std::vector<RequestSpan> spans_;
};

/// Renders one span as a single JSON object line (no trailing newline).
/// Field order is fixed; all values are integers/booleans/strings, so the
/// line is byte-stable for a given span.
void write_span_json(std::ostream& os, const RequestSpan& span);

/// Same fields without the surrounding braces, for callers that prepend
/// their own context keys (cell/replication/policy) to the object.
void write_span_fields(std::ostream& os, const RequestSpan& span);

}  // namespace prord::obs
