#include "obs/metric_batch.h"

#include <utility>

namespace prord::obs {

MetricBatch::Handle MetricBatch::counter(std::string name, Labels labels,
                                         std::string help) {
  const Handle h = static_cast<Handle>(cells_.size());
  if (!help.empty()) registry_.set_help(name, std::move(help));
  // Upsert now so the series exists (at zero) even if never incremented —
  // the export must not depend on whether batching is enabled or on
  // whether any request took this path.
  registry_.counter_add(name, labels, 0.0);
  cells_.push_back(Cell{std::move(name), std::move(labels), 0.0});
  return h;
}

void MetricBatch::flush() {
  ++flushes_;
  for (Cell& c : cells_) {
    if (c.pending == 0.0) continue;
    registry_.counter_add(c.name, c.labels, c.pending);
    c.pending = 0.0;
  }
}

double MetricBatch::pending_total() const noexcept {
  double sum = 0.0;
  for (const Cell& c : cells_) sum += c.pending;
  return sum;
}

}  // namespace prord::obs
