// Simulation-wide metric registry.
//
// Named, label-tagged counters / gauges / streaming-stat summaries /
// latency histograms, backed by the existing metrics:: accumulators. The
// registry is the single sink every instrumented component (dispatcher,
// back-ends, cache, prefetch predictor, replication planner) writes into,
// and the single source every exporter reads from.
//
// Determinism contract: metrics are stored in a std::map keyed by the
// canonical "name{k1=v1,k2=v2}" string (labels sorted by key), so
// iteration — and therefore every exporter's output — is a pure function
// of the recorded values, never of insertion or thread order. merge() is
// an ordered merge over that map, which is what lets the parallel runner
// combine per-replication registries into one byte-stable export at any
// --jobs count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/stats.h"

namespace prord::obs {

/// Label set: (key, value) pairs. Canonicalization sorts by key; duplicate
/// keys keep the last value.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Sorted copy of `labels` (by key, stable for equal keys -> last wins).
Labels canonical_labels(Labels labels);

/// "name{k1=v1,k2=v2}" with sorted labels; "name" when label-free.
std::string canonical_key(std::string_view name, const Labels& labels);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kStats, kHistogram };

constexpr const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kStats: return "summary";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// One (name, labels) series.
struct Metric {
  std::string name;
  Labels labels;  // canonical (sorted) form
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                      ///< counter total / gauge level
  metrics::RunningStats stats;             ///< kStats only
  std::shared_ptr<metrics::Histogram> hist;  ///< kHistogram only
};

class MetricRegistry {
 public:
  /// Adds `delta` (>= 0) to a monotone counter, creating it at 0.
  void counter_add(std::string_view name, const Labels& labels = {},
                   double delta = 1.0);

  /// Sets a gauge to `value` (last write wins).
  void gauge_set(std::string_view name, const Labels& labels, double value);
  void gauge_set(std::string_view name, double value) {
    gauge_set(name, {}, value);
  }

  /// Feeds one observation into a RunningStats summary series.
  void stats_add(std::string_view name, const Labels& labels, double x);

  /// Merges a whole accumulator into a summary series (used to lift the
  /// driver's existing RunningStats into the registry without replaying
  /// the stream).
  void stats_merge(std::string_view name, const Labels& labels,
                   const metrics::RunningStats& stats);

  /// Merges `h` into the histogram series, cloning its bucket layout on
  /// first use (merging requires identical layouts, which holds for
  /// replications of one configuration).
  void histogram_merge(std::string_view name, const Labels& labels,
                       const metrics::Histogram& h);

  /// Attaches a HELP string to a metric *name* (shared by all label sets).
  void set_help(std::string_view name, std::string_view help);
  const std::map<std::string, std::string, std::less<>>& help() const {
    return help_;
  }

  /// All series, ordered by canonical key.
  const std::map<std::string, Metric, std::less<>>& series() const {
    return series_;
  }

  std::size_t size() const noexcept { return series_.size(); }
  bool empty() const noexcept { return series_.empty(); }

  /// Number of distinct metric *names* (ignoring label sets).
  std::size_t distinct_names() const;

  /// Lookup by exact (name, labels); nullptr if absent.
  const Metric* find(std::string_view name, const Labels& labels = {}) const;

  /// Deterministic ordered merge: counters add, gauges take `other`'s
  /// value, stats/histograms merge their accumulators. Help strings are
  /// unioned (existing entries win). Merging disagreeing kinds under one
  /// key throws.
  void merge(const MetricRegistry& other);

  /// Copy with `extra` labels appended to every series (and keys rebuilt).
  /// Used by exporters to tag per-cell registries with cell/replication
  /// labels before the cross-run merge.
  MetricRegistry with_labels(const Labels& extra) const;

 private:
  Metric& upsert(std::string_view name, const Labels& labels,
                 MetricKind kind);

  std::map<std::string, Metric, std::less<>> series_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace prord::obs
