#include "obs/tracer.h"

#include <algorithm>
#include <cmath>

namespace prord::obs {
namespace {

/// SplitMix64 finalizer: uniform 64-bit hash of the request index.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Tracer::Tracer(double sample_rate) : rate_(std::clamp(sample_rate, 0.0, 1.0)) {
  // Map the rate onto the hash range; 1.0 gets an always-true sentinel so
  // rounding can never drop a request from a full trace.
  threshold_ = rate_ >= 1.0
                   ? ~0ULL
                   : static_cast<std::uint64_t>(
                         rate_ * 18446744073709551615.0 /* 2^64-1 */);
}

bool Tracer::sampled(std::uint64_t request_index) const noexcept {
  if (rate_ >= 1.0) return true;
  if (rate_ <= 0.0) return false;
  return splitmix64(request_index) < threshold_;
}

void Tracer::record(const RequestSpan& span) {
  if (!sampled(span.request)) return;
  spans_.push_back(span);
}

void write_span_json(std::ostream& os, const RequestSpan& s) {
  os << '{';
  write_span_fields(os, s);
  os << '}';
}

void write_span_fields(std::ostream& os, const RequestSpan& s) {
  auto b = [](bool v) { return v ? "true" : "false"; };
  // `clock` discriminates sim spans from the live cluster's wall-clock
  // spans (obs/trace_context.h), which share this JSONL schema.
  os << "\"clock\":\"sim\",\"req\":" << s.request << ",\"conn\":" << s.conn
     << ",\"file\":" << s.file << ",\"bytes\":" << s.bytes;
  os << ",\"server\":";
  if (s.server == 0xFFFFFFFFu)
    os << -1;
  else
    os << s.server;
  os << ",\"home\":";
  if (s.home == 0xFFFFFFFFu)
    os << -1;
  else
    os << s.home;
  os << ",\"t_arrival_us\":" << s.arrival
     << ",\"t_backend_us\":" << s.backend_start
     << ",\"t_done_us\":" << s.completion
     << ",\"resp_us\":" << s.response_time() << ",\"via\":\""
     << route_via_name(s.via) << "\",\"dispatched\":"
     << b(s.contacted_dispatcher) << ",\"handoff\":" << b(s.handoff)
     << ",\"forwarded\":" << b(s.forwarded)
     << ",\"cache_resident\":" << b(s.cache_resident)
     << ",\"dynamic\":" << b(s.dynamic) << ",\"embedded\":" << b(s.embedded)
     << ",\"failed\":" << b(s.failed) << ",\"attempts\":" << s.attempts;
}

}  // namespace prord::obs
