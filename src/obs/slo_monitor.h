// SLO monitor: log-bucketed latency tracking + multi-window burn rates.
//
// The service-level indicator is the classic "good request" fraction: a
// request is *bad* when it failed (5xx / connection loss) or exceeded the
// latency objective. Requests land in fixed-duration time slices (a ring
// sized to the long window), so evaluating a rolling window is a sum over
// at most window/slice counters — O(1) per request on the record path.
//
// Burn rate per window = observed error rate / error budget, where the
// budget is 1 - availability objective. The alerting rule is the standard
// multi-window policy: a violation requires BOTH the short and long
// windows to burn faster than `burn_alert` — the short window makes the
// alert fast to clear, the long window keeps one latency blip from
// paging (docs/OBSERVABILITY.md "SLO burn-rate semantics").
//
// Single-threaded by contract: the distributor's event loop records and
// evaluates; snapshots for /metrics and /slo render on the same thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/histogram.h"

namespace prord::obs {

struct SloOptions {
  std::int64_t slice_us = 1'000'000;  ///< time-slice granularity
  std::int64_t short_window_us = 5ll * 60 * 1'000'000;   ///< 5 m
  std::int64_t long_window_us = 60ll * 60 * 1'000'000;   ///< 1 h
  std::int64_t latency_objective_us = 50'000;  ///< p99-style "good" bound
  double availability_objective = 0.999;       ///< target good fraction
  double burn_alert = 10.0;  ///< both windows over this => violation
};

struct SloWindowEval {
  std::int64_t window_us = 0;
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  double error_rate = 0.0;  ///< bad / total (0 when empty)
  double burn_rate = 0.0;   ///< error_rate / error budget
};

struct SloEval {
  std::int64_t at_us = 0;
  SloWindowEval short_window;
  SloWindowEval long_window;
  bool violating = false;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloOptions options = {});

  const SloOptions& options() const noexcept { return options_; }
  /// 1 - availability objective, floored away from zero so burn rates
  /// stay finite even for a 100% objective.
  double error_budget() const noexcept { return budget_; }

  /// Feeds one settled request. `now_us` must be monotone non-decreasing
  /// (wall microseconds since run start). A request is bad when !success
  /// or its latency exceeds the objective.
  void record(std::int64_t now_us, std::int64_t latency_us, bool success);

  /// Rolling evaluation of both windows ending at `now_us`.
  SloEval evaluate(std::int64_t now_us) const;

  /// Cumulative (whole-run) accounting.
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bad() const noexcept { return bad_; }
  const metrics::Histogram& latency_hist() const noexcept { return hist_; }

  /// Body of the distributor's /slo endpoint: one JSON object with the
  /// objectives, both window evaluations and cumulative latency
  /// quantiles. Parses with util::json_parse.
  std::string to_json(std::int64_t now_us) const;

 private:
  struct Slice {
    std::int64_t index = -1;  ///< now_us / slice_us; -1 = never used
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };

  SloWindowEval eval_window(std::int64_t now_us,
                            std::int64_t window_us) const;

  SloOptions options_;
  double budget_;
  std::vector<Slice> slices_;  ///< ring indexed by slice index % size
  std::uint64_t total_ = 0;
  std::uint64_t bad_ = 0;
  metrics::Histogram hist_{1ULL << 32};
};

}  // namespace prord::obs
