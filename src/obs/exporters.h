// Deterministic metric / time-series exporters.
//
// Two metric formats — Prometheus text exposition and CSV — plus a CSV
// time-series dump for sampled gauges. All exporters iterate the
// registry's canonical-key order and format numbers with a fixed
// shortest-integer-else-%.9g rule, so the rendered bytes are a pure
// function of the recorded values (the parallel-determinism contract).
//
// Histograms export as Prometheus summaries (p50/p90/p99 + _sum/_count):
// the HdrHistogram bucket layout is an implementation detail and dumping
// hundreds of buckets per series would bury the signal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/sampler.h"

namespace prord::obs {

/// Fixed numeric formatting shared by every exporter: integral values
/// print without a decimal point, others via "%.9g".
std::string format_value(double v);

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string escape_label_value(const std::string& v);

/// Prometheus text exposition format (one # HELP/# TYPE block per metric
/// name, series in canonical order).
void write_prometheus(std::ostream& os, const MetricRegistry& registry);
std::string to_prometheus(const MetricRegistry& registry);

/// CSV: name,labels,kind,value,count,sum,min,max,mean,p50,p90,p99 — one
/// row per series; empty cells where a column does not apply to the kind.
void write_metrics_csv(std::ostream& os, const MetricRegistry& registry);
std::string to_metrics_csv(const MetricRegistry& registry);

/// CSV time series: metric,labels,t_us,value. `series` is sorted by
/// canonical key before writing; points stay in time order.
void write_series_csv(std::ostream& os, std::vector<Series> series);
std::string to_series_csv(std::vector<Series> series);

}  // namespace prord::obs
