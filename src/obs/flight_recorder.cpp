#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "util/json.h"

namespace prord::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRing::FlightRing(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      slots_(round_up_pow2(capacity)),
      mask_(slots_.size() - 1) {}

void FlightRing::record(const FlightEvent& event) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  slots_[head & mask_] = event;
  // Publish after the slot write: a reader that sees head > i knows slot
  // i's bytes are complete (unless it has since wrapped, which the
  // reader's re-check catches).
  head_.store(head + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t begin = head > cap ? head - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t i = begin; i < head; ++i)
    out.push_back(slots_[i & mask_]);
  // Writer may have lapped us mid-copy: discard the prefix that could
  // have been overwritten (slot i is unsafe once head' > i + cap).
  const std::uint64_t head_after = head_.load(std::memory_order_acquire);
  if (head_after > begin + cap) {
    const std::uint64_t unsafe = std::min<std::uint64_t>(
        head_after - cap - begin, static_cast<std::uint64_t>(out.size()));
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(unsafe));
  }
  return out;
}

std::uint64_t FlightRing::overwritten() const noexcept {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  return head > cap ? head - cap : 0;
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = ring_capacity ? ring_capacity : kDefaultRingCapacity;
  if (!enabled_.load(std::memory_order_relaxed)) {
    epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
  }
}

void FlightRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

std::int64_t FlightRecorder::now_us() const noexcept {
  if (!enabled()) return 0;
  return (steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed)) /
         1000;
}

namespace {
/// Per-thread ring cache, invalidated when the recorder generation bumps
/// (reset() in tests).
struct ThreadRingSlot {
  std::uint64_t generation = 0;
  FlightRing* ring = nullptr;
};
thread_local ThreadRingSlot t_ring;
}  // namespace

FlightRing& FlightRecorder::thread_ring() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_ring.ring != nullptr && t_ring.generation == gen)
    return *t_ring.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<FlightRing>(
      "thread-" + std::to_string(rings_.size()), ring_capacity_));
  t_ring.ring = rings_.back().get();
  t_ring.generation = gen;
  return *t_ring.ring;
}

void FlightRecorder::name_thread_ring(std::string name) {
  FlightRing& ring = thread_ring();
  std::lock_guard<std::mutex> lock(mu_);
  ring.set_name(std::move(name));
}

void FlightRecorder::record(FlightEventType type, std::uint32_t a,
                            std::uint32_t b, std::uint64_t c) noexcept {
  if (!enabled()) return;
  FlightEvent event;
  event.t_us = now_us();
  event.type = type;
  event.a = a;
  event.b = b;
  event.c = c;
  thread_ring().record(event);
}

std::string FlightRecorder::dump_json(std::string_view reason) const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("reason", std::string(reason));
  doc.set("dumped_at_us", now_us());
  util::JsonValue rings = util::JsonValue::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      util::JsonValue r = util::JsonValue::object();
      r.set("name", ring->name());
      r.set("capacity", static_cast<std::uint64_t>(ring->capacity()));
      r.set("recorded", ring->recorded());
      r.set("overwritten", ring->overwritten());
      util::JsonValue events = util::JsonValue::array();
      for (const FlightEvent& e : ring->snapshot()) {
        util::JsonValue ev = util::JsonValue::object();
        ev.set("t_us", e.t_us);
        ev.set("type", flight_event_name(e.type));
        ev.set("a", static_cast<std::uint64_t>(e.a));
        ev.set("b", static_cast<std::uint64_t>(e.b));
        ev.set("c", e.c);
        events.push_back(std::move(ev));
      }
      r.set("events", std::move(events));
      rings.push_back(std::move(r));
    }
  }
  doc.set("rings", std::move(rings));
  return doc.dump();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  std::string_view reason) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "flight recorder: cannot open %s\n", path.c_str());
    return false;
  }
  out << dump_json(reason) << '\n';
  return out.good();
}

void FlightRecorder::reset() {
  disable();
  std::lock_guard<std::mutex> lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  rings_.clear();
  dump_requested_.store(0, std::memory_order_relaxed);
}

}  // namespace prord::obs
