// Batched counter updates for hot-path metrics.
//
// The workload player bumps half a dozen counters per request; routing each
// bump through MetricRegistry costs a canonical-key build plus a map probe.
// MetricBatch interns each (name, labels) series once, hands back a dense
// integer handle, and accumulates deltas in a flat array; flush() folds the
// pending deltas into the owned registry in registration order. With an
// epoch-sized flush interval the per-request cost is one array add.
//
// Determinism: every series is upserted (delta 0) at registration time, so
// the exported series set is identical whether a counter was ever hit and
// whether batching is on or off; flush order is registration order, and
// counter addition is associative over doubles that are whole counts, so
// the final values are byte-identical to per-request updates.
//
// The write-through mode exists for bench_perf's baseline pass: add()
// degenerates to an immediate registry update through the full canonical-
// key path, reproducing the pre-batching cost profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_registry.h"

namespace prord::obs {

class MetricBatch {
 public:
  using Handle = std::uint32_t;

  /// Interns a counter series and returns its handle. Upserts the series
  /// immediately (value += 0) so it exports even if never incremented.
  Handle counter(std::string name, Labels labels, std::string help = {});

  /// Adds `delta` to the counter behind `h` (pending until flush, or
  /// immediate in write-through mode).
  void add(Handle h, double delta = 1.0) {
    ++adds_;
    Cell& c = cells_[h];
    if (write_through_) {
      registry_.counter_add(c.name, c.labels, delta);
      return;
    }
    c.pending += delta;
  }

  /// Folds all pending deltas into the registry, in registration order.
  void flush();

  MetricRegistry& registry() noexcept { return registry_; }
  const MetricRegistry& registry() const noexcept { return registry_; }

  /// Baseline switch: bypass batching and update the registry per add().
  void set_write_through(bool on) noexcept { write_through_ = on; }
  bool write_through() const noexcept { return write_through_; }

  std::uint64_t adds() const noexcept { return adds_; }
  std::uint64_t flushes() const noexcept { return flushes_; }
  /// Sum of not-yet-flushed deltas (tests assert 0 after the final flush).
  double pending_total() const noexcept;

 private:
  struct Cell {
    std::string name;
    Labels labels;
    double pending = 0.0;
  };

  std::vector<Cell> cells_;
  MetricRegistry registry_;
  bool write_through_ = false;
  std::uint64_t adds_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace prord::obs
