#include "obs/metric_registry.h"

#include <algorithm>
#include <stdexcept>

namespace prord::obs {

Labels canonical_labels(Labels labels) {
  std::stable_sort(labels.begin(), labels.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Duplicate keys: keep the last-provided value.
  for (std::size_t i = 1; i < labels.size();) {
    if (labels[i - 1].first == labels[i].first)
      labels.erase(labels.begin() + static_cast<std::ptrdiff_t>(i) - 1);
    else
      ++i;
  }
  return labels;
}

std::string canonical_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

Metric& MetricRegistry::upsert(std::string_view name, const Labels& labels,
                               MetricKind kind) {
  Labels canon = canonical_labels(labels);
  std::string key = canonical_key(name, canon);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Metric m;
    m.name = std::string(name);
    m.labels = std::move(canon);
    m.kind = kind;
    it = series_.emplace(std::move(key), std::move(m)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricRegistry: kind mismatch for " + it->first);
  }
  return it->second;
}

void MetricRegistry::counter_add(std::string_view name, const Labels& labels,
                                 double delta) {
  if (delta < 0)
    throw std::invalid_argument("MetricRegistry: negative counter delta");
  upsert(name, labels, MetricKind::kCounter).value += delta;
}

void MetricRegistry::gauge_set(std::string_view name, const Labels& labels,
                               double value) {
  upsert(name, labels, MetricKind::kGauge).value = value;
}

void MetricRegistry::stats_add(std::string_view name, const Labels& labels,
                               double x) {
  upsert(name, labels, MetricKind::kStats).stats.add(x);
}

void MetricRegistry::stats_merge(std::string_view name, const Labels& labels,
                                 const metrics::RunningStats& stats) {
  upsert(name, labels, MetricKind::kStats).stats.merge(stats);
}

void MetricRegistry::histogram_merge(std::string_view name,
                                     const Labels& labels,
                                     const metrics::Histogram& h) {
  auto& m = upsert(name, labels, MetricKind::kHistogram);
  if (!m.hist)
    m.hist = std::make_shared<metrics::Histogram>(h);
  else
    m.hist->merge(h);
}

void MetricRegistry::set_help(std::string_view name, std::string_view help) {
  help_.emplace(std::string(name), std::string(help));
}

std::size_t MetricRegistry::distinct_names() const {
  std::size_t n = 0;
  std::string_view last;
  for (const auto& [key, metric] : series_) {
    if (metric.name != last) {
      ++n;
      last = metric.name;
    }
  }
  return n;
}

const Metric* MetricRegistry::find(std::string_view name,
                                   const Labels& labels) const {
  const auto it = series_.find(canonical_key(name, canonical_labels(labels)));
  return it == series_.end() ? nullptr : &it->second;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [key, m] : other.series_) {
    auto it = series_.find(key);
    if (it == series_.end()) {
      Metric copy = m;
      if (m.hist) copy.hist = std::make_shared<metrics::Histogram>(*m.hist);
      series_.emplace(key, std::move(copy));
      continue;
    }
    Metric& mine = it->second;
    if (mine.kind != m.kind)
      throw std::logic_error("MetricRegistry::merge: kind mismatch for " + key);
    switch (m.kind) {
      case MetricKind::kCounter:
        mine.value += m.value;
        break;
      case MetricKind::kGauge:
        mine.value = m.value;  // snapshot semantics: latest merged wins
        break;
      case MetricKind::kStats:
        mine.stats.merge(m.stats);
        break;
      case MetricKind::kHistogram:
        if (m.hist) {
          if (!mine.hist)
            mine.hist = std::make_shared<metrics::Histogram>(*m.hist);
          else
            mine.hist->merge(*m.hist);
        }
        break;
    }
  }
  for (const auto& [name, help] : other.help_) help_.emplace(name, help);
}

MetricRegistry MetricRegistry::with_labels(const Labels& extra) const {
  MetricRegistry out;
  out.help_ = help_;
  for (const auto& [key, m] : series_) {
    Metric copy = m;
    for (const auto& kv : extra) copy.labels.push_back(kv);
    copy.labels = canonical_labels(std::move(copy.labels));
    if (m.hist) copy.hist = std::make_shared<metrics::Histogram>(*m.hist);
    std::string new_key = canonical_key(copy.name, copy.labels);
    out.series_.emplace(std::move(new_key), std::move(copy));
  }
  return out;
}

}  // namespace prord::obs
