#include "obs/exporters.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace prord::obs {
namespace {

/// labels -> {k1="v1",k2="v2"}; "" when empty.
std::string prom_labels(const Labels& labels, const char* extra = nullptr) {
  if (labels.empty() && !extra) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// labels -> "k1=v1;k2=v2" for the CSV labels column (no commas, so the
/// CSV stays quote-free).
std::string csv_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricRegistry& registry) {
  std::string_view current_name;
  for (const auto& [key, m] : registry.series()) {
    if (m.name != current_name) {
      current_name = m.name;
      const auto help = registry.help().find(m.name);
      if (help != registry.help().end())
        os << "# HELP " << m.name << ' ' << help->second << '\n';
      const char* type = m.kind == MetricKind::kCounter   ? "counter"
                         : m.kind == MetricKind::kGauge   ? "gauge"
                                                          : "summary";
      os << "# TYPE " << m.name << ' ' << type << '\n';
    }
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        os << m.name << prom_labels(m.labels) << ' ' << format_value(m.value)
           << '\n';
        break;
      case MetricKind::kStats:
        os << m.name << "_count" << prom_labels(m.labels) << ' '
           << m.stats.count() << '\n';
        os << m.name << "_sum" << prom_labels(m.labels) << ' '
           << format_value(m.stats.sum()) << '\n';
        break;
      case MetricKind::kHistogram: {
        const metrics::Histogram* h = m.hist.get();
        if (!h) break;
        os << m.name << prom_labels(m.labels, "quantile=\"0.5\"") << ' '
           << h->p50() << '\n';
        os << m.name << prom_labels(m.labels, "quantile=\"0.9\"") << ' '
           << h->p90() << '\n';
        os << m.name << prom_labels(m.labels, "quantile=\"0.99\"") << ' '
           << h->p99() << '\n';
        os << m.name << "_sum" << prom_labels(m.labels) << ' '
           << format_value(h->mean() * static_cast<double>(h->count()))
           << '\n';
        os << m.name << "_count" << prom_labels(m.labels) << ' ' << h->count()
           << '\n';
        break;
      }
    }
  }
}

std::string to_prometheus(const MetricRegistry& registry) {
  std::ostringstream os;
  write_prometheus(os, registry);
  return os.str();
}

void write_metrics_csv(std::ostream& os, const MetricRegistry& registry) {
  os << "name,labels,kind,value,count,sum,min,max,mean,p50,p90,p99\n";
  for (const auto& [key, m] : registry.series()) {
    os << m.name << ',' << csv_labels(m.labels) << ','
       << metric_kind_name(m.kind) << ',';
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        os << format_value(m.value) << ",,,,,,,,";
        break;
      case MetricKind::kStats:
        os << ',' << m.stats.count() << ',' << format_value(m.stats.sum())
           << ',' << format_value(m.stats.min()) << ','
           << format_value(m.stats.max()) << ','
           << format_value(m.stats.mean()) << ",,,";
        break;
      case MetricKind::kHistogram: {
        const metrics::Histogram* h = m.hist.get();
        if (!h) {
          os << ",0,,,,,,,";
          break;
        }
        os << ',' << h->count() << ','
           << format_value(h->mean() * static_cast<double>(h->count())) << ','
           << h->min() << ',' << h->max() << ',' << format_value(h->mean())
           << ',' << h->p50() << ',' << h->p90() << ',' << h->p99();
        break;
      }
    }
    os << '\n';
  }
}

std::string to_metrics_csv(const MetricRegistry& registry) {
  std::ostringstream os;
  write_metrics_csv(os, registry);
  return os.str();
}

void write_series_csv(std::ostream& os, std::vector<Series> series) {
  std::sort(series.begin(), series.end(), [](const Series& a, const Series& b) {
    return canonical_key(a.name, a.labels) < canonical_key(b.name, b.labels);
  });
  os << "metric,labels,t_us,value\n";
  for (const auto& s : series)
    for (const auto& p : s.points)
      os << s.name << ',' << csv_labels(s.labels) << ',' << p.at << ','
         << format_value(p.value) << '\n';
}

std::string to_series_csv(std::vector<Series> series) {
  std::ostringstream os;
  write_series_csv(os, std::move(series));
  return os.str();
}

}  // namespace prord::obs
