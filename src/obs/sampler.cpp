#include "obs/sampler.h"

namespace prord::obs {

void Sampler::add_probe(std::string name, Labels labels, Probe probe) {
  Series s;
  s.name = std::move(name);
  s.labels = canonical_labels(std::move(labels));
  series_.push_back(std::move(s));
  probes_.push_back(std::move(probe));
}

void Sampler::sample(sim::SimTime now) {
  for (std::size_t i = 0; i < probes_.size(); ++i)
    series_[i].points.push_back(SeriesPoint{now, probes_[i](now)});
  ++samples_;
}

void Sampler::reset_points() {
  for (auto& s : series_) s.points.clear();
  samples_ = 0;
}

}  // namespace prord::obs
