#include "obs/slo_monitor.h"

#include <algorithm>

#include "util/json.h"

namespace prord::obs {

SloMonitor::SloMonitor(SloOptions options) : options_(options) {
  if (options_.slice_us <= 0) options_.slice_us = 1'000'000;
  options_.short_window_us =
      std::max(options_.short_window_us, options_.slice_us);
  options_.long_window_us =
      std::max(options_.long_window_us, options_.short_window_us);
  budget_ = std::max(1.0 - options_.availability_objective, 1e-9);
  // +2: the window straddles partial slices at both ends.
  slices_.resize(static_cast<std::size_t>(
      options_.long_window_us / options_.slice_us + 2));
}

void SloMonitor::record(std::int64_t now_us, std::int64_t latency_us,
                        bool success) {
  const bool bad = !success || latency_us > options_.latency_objective_us;
  const std::int64_t idx = now_us / options_.slice_us;
  Slice& slice = slices_[static_cast<std::size_t>(idx) % slices_.size()];
  if (slice.index != idx) {
    slice.index = idx;
    slice.total = 0;
    slice.bad = 0;
  }
  slice.total += 1;
  if (bad) slice.bad += 1;
  total_ += 1;
  if (bad) bad_ += 1;
  hist_.record(static_cast<std::uint64_t>(std::max<std::int64_t>(
      latency_us, 0)));
}

SloWindowEval SloMonitor::eval_window(std::int64_t now_us,
                                      std::int64_t window_us) const {
  SloWindowEval eval;
  eval.window_us = window_us;
  const std::int64_t last = now_us / options_.slice_us;
  const std::int64_t first =
      std::max<std::int64_t>(0, (now_us - window_us) / options_.slice_us + 1);
  for (const Slice& slice : slices_) {
    if (slice.index < first || slice.index > last) continue;
    eval.total += slice.total;
    eval.bad += slice.bad;
  }
  if (eval.total > 0)
    eval.error_rate = static_cast<double>(eval.bad) /
                      static_cast<double>(eval.total);
  eval.burn_rate = eval.error_rate / budget_;
  return eval;
}

SloEval SloMonitor::evaluate(std::int64_t now_us) const {
  SloEval eval;
  eval.at_us = now_us;
  eval.short_window = eval_window(now_us, options_.short_window_us);
  eval.long_window = eval_window(now_us, options_.long_window_us);
  eval.violating = eval.short_window.burn_rate >= options_.burn_alert &&
                   eval.long_window.burn_rate >= options_.burn_alert;
  return eval;
}

namespace {

util::JsonValue window_json(const SloWindowEval& w) {
  util::JsonValue out = util::JsonValue::object();
  out.set("window_us", w.window_us);
  out.set("total", w.total);
  out.set("bad", w.bad);
  out.set("error_rate", w.error_rate);
  out.set("burn_rate", w.burn_rate);
  return out;
}

}  // namespace

std::string SloMonitor::to_json(std::int64_t now_us) const {
  const SloEval eval = evaluate(now_us);
  util::JsonValue doc = util::JsonValue::object();
  doc.set("at_us", eval.at_us);
  util::JsonValue objectives = util::JsonValue::object();
  objectives.set("latency_us", options_.latency_objective_us);
  objectives.set("availability", options_.availability_objective);
  objectives.set("burn_alert", options_.burn_alert);
  objectives.set("error_budget", budget_);
  doc.set("objectives", std::move(objectives));
  doc.set("short", window_json(eval.short_window));
  doc.set("long", window_json(eval.long_window));
  doc.set("violating", eval.violating);
  util::JsonValue cumulative = util::JsonValue::object();
  cumulative.set("total", total_);
  cumulative.set("bad", bad_);
  cumulative.set("latency_p50_us", hist_.quantile(0.50));
  cumulative.set("latency_p99_us", hist_.quantile(0.99));
  cumulative.set("latency_max_us", hist_.max());
  doc.set("cumulative", std::move(cumulative));
  return doc.dump();
}

}  // namespace prord::obs
