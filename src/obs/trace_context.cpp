#include "obs/trace_context.h"

#include <charconv>

namespace prord::obs {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void append_hex16(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xF]);
}

bool parse_hex16(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  out = 0;
  for (const char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9')
      digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
    out = (out << 4) | digit;
  }
  return true;
}

}  // namespace

TraceId derive_trace_id(std::uint64_t seed, std::uint64_t index) noexcept {
  TraceId id;
  id.hi = splitmix64(seed ^ splitmix64(index));
  id.lo = splitmix64(index + 0x632BE59BD9B4E019ULL);
  if (!id.valid()) id.lo = 1;  // zero is the "untraced" sentinel
  return id;
}

std::string trace_id_hex(const TraceId& id) {
  std::string out;
  out.reserve(32);
  append_hex16(out, id.hi);
  append_hex16(out, id.lo);
  return out;
}

std::string format_trace_header(const TraceContext& context) {
  std::string out = trace_id_hex(context.id);
  out.push_back('-');
  out += std::to_string(context.hop);
  return out;
}

std::optional<TraceContext> parse_trace_header(std::string_view value) {
  if (value.size() < 34 || value[32] != '-') return std::nullopt;
  TraceContext context;
  if (!parse_hex16(value.substr(0, 16), context.id.hi)) return std::nullopt;
  if (!parse_hex16(value.substr(16, 16), context.id.lo)) return std::nullopt;
  const std::string_view hop = value.substr(33);
  const auto [p, ec] =
      std::from_chars(hop.data(), hop.data() + hop.size(), context.hop);
  if (ec != std::errc{} || p != hop.data() + hop.size()) return std::nullopt;
  if (!context.valid()) return std::nullopt;
  return context;
}

void write_live_span_json(std::ostream& os, const LiveSpan& s) {
  const auto b = [](bool v) { return v ? "true" : "false"; };
  os << "{\"clock\":\"wall\",\"trace\":\"" << trace_id_hex(s.id)
     << "\",\"req\":" << s.request << ",\"shard\":" << s.shard
     << ",\"conn\":" << s.conn << ",\"file\":" << s.file
     << ",\"bytes\":" << s.bytes;
  os << ",\"server\":";
  if (s.server == 0xFFFFFFFFu)
    os << -1;
  else
    os << s.server;
  os << ",\"status\":" << s.status << ",\"t_arrival_us\":" << s.arrival
     << ",\"t_done_us\":" << s.completion
     << ",\"resp_us\":" << s.response_time() << ",\"via\":\""
     << route_via_name(s.via)
     << "\",\"cache_resident\":" << b(s.cache_resident) << ",\"hops\":{";
  for (unsigned h = 0; h < kNumLiveHops; ++h) {
    if (h > 0) os << ',';
    os << '"' << live_hop_name(static_cast<LiveHop>(h))
       << "\":" << s.hop_us[h];
  }
  os << "}}";
}

}  // namespace prord::obs
