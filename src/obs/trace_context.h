// Distributed trace context + live hop spans for the loopback cluster.
//
// The distributor originates one TraceContext per sampled client request
// (a 128-bit id derived from the request index, so the sampled *set* is
// deterministic even though wall-clock durations are not) and propagates
// it to the serving back-end in an `X-Prord-Trace` header. Every segment
// of the request's path through the cluster is stamped as a named hop;
// the hops telescope — their sum equals the end-to-end span exactly by
// construction — which is what lets tools/trace_report decompose live
// p50/p99 latency into per-hop contributions (docs/OBSERVABILITY.md).
//
// Live spans share the sim span JSONL schema (obs/span.h): common keys
// (req/conn/file/bytes/server/t_arrival_us/t_done_us/resp_us/via) plus a
// `clock` discriminator — "sim" for simulated-time spans, "wall" for
// these — instead of two diverging formats.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/span.h"

namespace prord::obs {

/// Header carrying the trace context distributor -> backend.
inline constexpr std::string_view kTraceHeader = "X-Prord-Trace";
/// Headers carrying the backend's measured serve/cache-lookup time back.
inline constexpr std::string_view kServeUsHeader = "X-Prord-Serve-Us";
inline constexpr std::string_view kCacheUsHeader = "X-Prord-Cache-Us";

/// 128-bit trace identifier. Zero = invalid / untraced.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const noexcept { return hi != 0 || lo != 0; }
  bool operator==(const TraceId&) const = default;
};

/// Deterministic id for request `index`: two SplitMix64 finalizer streams
/// seeded by `seed`. Pure function — the same workload traces the same
/// ids run after run.
TraceId derive_trace_id(std::uint64_t seed, std::uint64_t index) noexcept;

/// Renders the id as 32 lowercase hex chars (hi then lo, zero padded).
std::string trace_id_hex(const TraceId& id);

/// Propagated context: the id plus the per-hop sequence number, bumped at
/// every process boundary (distributor = 0, backend = 1, ...).
struct TraceContext {
  TraceId id;
  std::uint32_t hop = 0;

  bool valid() const noexcept { return id.valid(); }
};

/// Header value: "<32 hex chars>-<hop>", e.g.
/// "00a52c3f9d0e11aa55ee77cc00112233-1".
std::string format_trace_header(const TraceContext& context);

/// Strict parse of a header value produced by format_trace_header;
/// std::nullopt on anything malformed.
std::optional<TraceContext> parse_trace_header(std::string_view value);

/// Named segments of a live request's path. Consecutive on the timeline:
/// the durations telescope to the end-to-end span.
enum class LiveHop : std::uint8_t {
  kParse = 0,         ///< client bytes readable -> request parsed
  kRoute = 1,         ///< routing decision (shared RoutingCore)
  kUpstreamSend = 2,  ///< routed -> forwarded bytes handed to the kernel
  kUpstreamWait = 3,  ///< on the wire + queued at the worker
  kBackendCache = 4,  ///< worker cache lookup / payload materialization
  kBackendServe = 5,  ///< worker handling beyond the cache lookup
  kRelay = 6,         ///< worker response parsed -> client response built
  kReorderHold = 7,   ///< waiting for earlier sequence numbers to flush
};

inline constexpr unsigned kNumLiveHops = 8;

constexpr const char* live_hop_name(LiveHop hop) noexcept {
  switch (hop) {
    case LiveHop::kParse: return "parse";
    case LiveHop::kRoute: return "route";
    case LiveHop::kUpstreamSend: return "upstream_send";
    case LiveHop::kUpstreamWait: return "upstream_wait";
    case LiveHop::kBackendCache: return "backend_cache";
    case LiveHop::kBackendServe: return "backend_serve";
    case LiveHop::kRelay: return "relay";
    case LiveHop::kReorderHold: return "reorder_hold";
  }
  return "?";
}

/// One traced live request. Times are wall-clock microseconds since the
/// distributor started; hop values are durations in microseconds.
struct LiveSpan {
  TraceId id;
  std::uint64_t request = 0;  ///< distributor request index
  std::uint32_t shard = 0;    ///< front-end shard that routed the request
  std::uint32_t conn = 0;
  std::uint32_t file = 0;
  std::uint32_t bytes = 0;
  std::uint32_t server = 0xFFFFFFFFu;
  int status = 0;
  RouteVia via = RouteVia::kDispatcher;
  bool cache_resident = false;  ///< backend answered X-Cache: HIT

  std::int64_t arrival = 0;     ///< client bytes became readable
  std::int64_t completion = 0;  ///< response moved into the client buffer
  std::array<std::int64_t, kNumLiveHops> hop_us{};

  std::int64_t response_time() const noexcept { return completion - arrival; }
  std::int64_t hop_sum() const noexcept {
    std::int64_t sum = 0;
    for (const std::int64_t h : hop_us) sum += h;
    return sum;
  }
};

/// One-line JSON object, schema-aligned with write_span_json (same common
/// keys, `"clock":"wall"`, plus trace/status/hops). No trailing newline.
void write_live_span_json(std::ostream& os, const LiveSpan& span);

}  // namespace prord::obs
