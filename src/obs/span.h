// Request-lifecycle span model.
//
// One span per simulated HTTP request, covering arrival -> routing
// decision -> front-end CPU -> back-end service -> completion. The span is
// deliberately a plain value type keyed entirely on SimTime and dense ids:
// nothing in it depends on wall clock, thread identity, or pointer values,
// so traces are byte-identical across --jobs counts (the same contract as
// docs/PARALLEL_RUNNER.md).
//
// This header sits below cluster/policies on purpose: the policy layer
// reports *how* it routed each request via RouteVia, and the tracer
// serializes it, without either knowing about the other.
#pragma once

#include <cstdint>

#include "simcore/sim_time.h"

namespace prord::obs {

/// Mechanism that produced a routing decision. Policies annotate their
/// RouteDecision with one of these; the tracer records it per request and
/// the registry aggregates counts per mechanism.
enum class RouteVia : std::uint8_t {
  kDispatcher = 0,  ///< counted dispatcher (locality oracle) assignment
  kSticky = 1,      ///< connection stayed on its server, no dispatcher
  kBundle = 2,      ///< embedded-object / same-page forward (PRORD step 1)
  kPrefetch = 3,    ///< front-end prefetch registry hit (PRORD step 2)
  kReplica = 4,     ///< proactive-replica registry hit (PRORD step 2)
  kBalance = 5,     ///< pure load balancing (WRR cycle, dynamic routing)
};

inline constexpr unsigned kNumRouteVia = 6;

/// Stable lowercase label, used in trace JSON and metric labels.
constexpr const char* route_via_name(RouteVia via) noexcept {
  switch (via) {
    case RouteVia::kDispatcher: return "dispatcher";
    case RouteVia::kSticky: return "sticky";
    case RouteVia::kBundle: return "bundle";
    case RouteVia::kPrefetch: return "prefetch";
    case RouteVia::kReplica: return "replica";
    case RouteVia::kBalance: return "balance";
  }
  return "?";
}

/// One request's lifecycle. Times are simulated microseconds; ids are the
/// dense ids the trace/cluster layers already use (0xFFFFFFFF = none).
struct RequestSpan {
  std::uint64_t request = 0;    ///< index of the request within the run
  std::uint32_t conn = 0;       ///< persistent-connection id
  std::uint32_t file = 0;       ///< dense FileId
  std::uint32_t bytes = 0;      ///< response body size
  std::uint32_t server = 0xFFFFFFFFu;  ///< serving back-end
  std::uint32_t home = 0xFFFFFFFFu;    ///< connection's back-end pre-route

  sim::SimTime arrival = 0;        ///< request issued (post HTTP/1.1 gate)
  sim::SimTime backend_start = 0;  ///< front-end CPU done, handed to back-end
  sim::SimTime completion = 0;     ///< response fully sent

  RouteVia via = RouteVia::kDispatcher;
  bool contacted_dispatcher = false;
  bool handoff = false;         ///< TCP handoff charged
  bool forwarded = false;       ///< back-end-forwarded response
  bool cache_resident = false;  ///< file in serving back-end's memory at dispatch
  bool dynamic = false;
  bool embedded = false;
  bool failed = false;          ///< exhausted every retry (fault runs)
  std::uint32_t attempts = 1;   ///< issue attempts (1 = no retries)

  sim::SimTime response_time() const noexcept { return completion - arrival; }
};

}  // namespace prord::obs
