// Sim-time gauge sampler.
//
// Snapshots registered gauge probes (queue depth, cache occupancy, open
// requests, ...) on a fixed *simulated*-time cadence into per-probe time
// series. The sampler itself never schedules events: the driver that owns
// the run (core::play_workload) calls sample() on its cadence while the
// run is live, so a drained event set is never kept alive by the probe
// loop, and the sampled instants are identical at any --jobs count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.h"
#include "simcore/sim_time.h"

namespace prord::obs {

struct SeriesPoint {
  sim::SimTime at = 0;  ///< simulated time of the snapshot
  double value = 0.0;
};

/// One gauge's sampled history.
struct Series {
  std::string name;
  Labels labels;  ///< canonical (sorted) form
  std::vector<SeriesPoint> points;
};

class Sampler {
 public:
  /// Probe: current gauge level at simulated time `now`.
  using Probe = std::function<double(sim::SimTime now)>;

  explicit Sampler(sim::SimTime interval = 0) : interval_(interval) {}

  /// Sampling cadence in simulated time; 0 disables the driver loop.
  sim::SimTime interval() const noexcept { return interval_; }
  void set_interval(sim::SimTime interval) noexcept { interval_ = interval; }

  /// Registers a probe. Series order is fixed at registration; exporters
  /// re-sort by canonical key so registration order never leaks into
  /// output.
  void add_probe(std::string name, Labels labels, Probe probe);

  /// Appends one point per probe at time `now`.
  void sample(sim::SimTime now);

  std::size_t num_probes() const noexcept { return probes_.size(); }
  std::size_t num_samples() const noexcept { return samples_; }

  const std::vector<Series>& series() const noexcept { return series_; }
  std::vector<Series> take_series() { return std::move(series_); }

  /// Drops collected points, keeping the probe set (warm-up boundary).
  void reset_points();

 private:
  sim::SimTime interval_;
  std::vector<Probe> probes_;
  std::vector<Series> series_;  // parallel to probes_
  std::size_t samples_ = 0;
};

}  // namespace prord::obs
