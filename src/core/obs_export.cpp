#include "core/obs_export.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/exporters.h"
#include "obs/tracer.h"
#include "policies/prord.h"

namespace prord::core {
namespace {

obs::Labels with_backend(const obs::Labels& base, std::uint32_t b) {
  obs::Labels labels = base;
  labels.emplace_back("backend", std::to_string(b));
  return labels;
}

}  // namespace

void collect_run_metrics(obs::MetricRegistry& reg,
                         const std::string& policy_name, const RunMetrics& m,
                         cluster::Cluster& cluster,
                         const policies::DistributionPolicy& policy,
                         bool skip_player_counters) {
  const obs::Labels p{{"policy", policy_name}};

  // --- Front-end / dispatcher / run-level. The first eight families are
  // the player's hot-path counters; when a MetricBatch owns them
  // (register_player_counters) they arrive via its registry instead.
  // Export bytes are unaffected by which path emits them: the registry
  // renders from an ordered map.
  if (!skip_player_counters) {
    reg.set_help("prord_requests_completed_total",
                 "Requests served to completion in the measured run");
    reg.counter_add("prord_requests_completed_total", p,
                    static_cast<double>(m.completed));
    reg.set_help("prord_requests_failed_total",
                 "Requests that exhausted every retry (fault runs)");
    reg.counter_add("prord_requests_failed_total", p,
                    static_cast<double>(m.failed));
    reg.counter_add("prord_requests_retried_total", p,
                    static_cast<double>(m.retries));
    reg.set_help("prord_requests_redispatched_total",
                 "Retries the front-end routed away from the failed server");
    reg.counter_add("prord_requests_redispatched_total", p,
                    static_cast<double>(m.redispatches));
    reg.set_help("prord_requests_routed_total",
                 "Requests per routing mechanism (Fig. 4 decision paths)");
    for (unsigned v = 0; v < obs::kNumRouteVia; ++v) {
      obs::Labels labels = p;
      labels.emplace_back("via",
                          obs::route_via_name(static_cast<obs::RouteVia>(v)));
      reg.counter_add("prord_requests_routed_total", labels,
                      static_cast<double>(m.routes_via[v]));
    }
    reg.set_help("prord_dispatcher_contacts_total",
                 "Dispatcher lookups (Fig. 6's frequency of dispatches)");
    reg.counter_add("prord_dispatcher_contacts_total", p,
                    static_cast<double>(m.dispatches));
    reg.counter_add("prord_tcp_handoffs_total", p,
                    static_cast<double>(m.handoffs));
    reg.counter_add("prord_backend_forwards_total", p,
                    static_cast<double>(m.forwards));
  }
  reg.gauge_set("prord_dispatcher_files_tracked", p,
                static_cast<double>(cluster.dispatcher().num_files_tracked()));
  reg.counter_add("prord_frontend_busy_seconds", p,
                  sim::to_seconds(m.frontend_busy));
  reg.counter_add("prord_interconnect_busy_seconds", p,
                  sim::to_seconds(m.interconnect_busy));
  reg.set_help("prord_response_time_us",
               "End-to-end response time per request (microseconds)");
  reg.histogram_merge("prord_response_time_us", p, m.response_hist);
  reg.stats_merge("prord_response_time_summary_us", p, m.response_time_us);
  reg.gauge_set("prord_throughput_rps", p, m.throughput_rps());
  reg.gauge_set("prord_run_span_seconds", p,
                sim::to_seconds(m.last_completion - m.first_issue));
  reg.gauge_set("prord_sim_now_seconds", p,
                sim::to_seconds(cluster.sim().now()));
  reg.counter_add("prord_sim_events_dispatched_total", p,
                  static_cast<double>(cluster.sim().dispatched_events()));
  reg.counter_add("prord_energy_full_power_seconds", p,
                  m.energy_full_power_seconds);
  reg.counter_add("prord_disk_reads_total", p,
                  static_cast<double>(m.disk_reads));
  reg.set_help("prord_prefetch_disk_reads_total",
               "Disk reads initiated by prefetching (proactive I/O cost)");
  reg.counter_add("prord_prefetch_disk_reads_total", p,
                  static_cast<double>(m.prefetch_reads));

  // --- Per-back-end server, cache, prefetch, replication counters.
  for (std::uint32_t b = 0; b < cluster.size(); ++b) {
    const auto& be = cluster.backend(b);
    const auto& st = be.stats();
    const obs::Labels pb = with_backend(p, b);
    reg.counter_add("prord_backend_requests_served_total", pb,
                    static_cast<double>(st.requests_served));
    reg.counter_add("prord_backend_dynamic_served_total", pb,
                    static_cast<double>(st.dynamic_served));
    reg.counter_add("prord_backend_bytes_served_total", pb,
                    static_cast<double>(st.bytes_served));
    reg.counter_add("prord_backend_disk_reads_total", pb,
                    static_cast<double>(st.disk_reads));
    reg.counter_add("prord_backend_cooperative_pulls_total", pb,
                    static_cast<double>(st.cooperative_pulls));
    reg.counter_add("prord_backend_cpu_busy_seconds", pb,
                    sim::to_seconds(be.cpu().busy_time()));
    reg.counter_add("prord_backend_disk_busy_seconds", pb,
                    sim::to_seconds(be.disk().busy_time()));
    reg.counter_add("prord_backend_nic_busy_seconds", pb,
                    sim::to_seconds(be.nic().busy_time()));
    reg.gauge_set("prord_backend_open_requests", pb,
                  static_cast<double>(be.load()));

    const auto& cs = be.cache().stats();
    reg.counter_add("prord_cache_hits_total", pb,
                    static_cast<double>(cs.hits));
    reg.counter_add("prord_cache_misses_total", pb,
                    static_cast<double>(cs.misses));
    reg.counter_add("prord_cache_demand_evictions_total", pb,
                    static_cast<double>(cs.demand_evictions));
    reg.counter_add("prord_cache_pinned_evictions_total", pb,
                    static_cast<double>(cs.pinned_evictions));
    reg.gauge_set("prord_cache_demand_bytes", pb,
                  static_cast<double>(be.cache().demand_bytes()));
    reg.gauge_set("prord_cache_pinned_bytes", pb,
                  static_cast<double>(be.cache().pinned_bytes()));
    reg.gauge_set("prord_cache_demand_capacity_bytes", pb,
                  static_cast<double>(be.cache().demand_capacity()));
    reg.gauge_set("prord_cache_pinned_capacity_bytes", pb,
                  static_cast<double>(be.cache().pinned_capacity()));
    reg.gauge_set("prord_cache_resident_files", pb,
                  static_cast<double>(be.cache().num_files()));

    reg.counter_add("prord_prefetch_issued_total", pb,
                    static_cast<double>(st.prefetches_issued));
    reg.counter_add("prord_prefetch_skipped_total", pb,
                    static_cast<double>(st.prefetches_skipped));
    reg.counter_add("prord_replication_received_total", pb,
                    static_cast<double>(st.replications_received));
  }
  reg.set_help("prord_cache_hit_ratio",
               "Aggregate back-end memory hit ratio over the measured run");
  reg.gauge_set("prord_cache_hit_ratio", p, m.cache.hit_rate());

  // --- Prefetch predictor / replication planner (PRORD family only).
  if (const auto* prord = dynamic_cast<const policies::Prord*>(&policy)) {
    reg.set_help("prord_bundle_forwards_total",
                 "Embedded-object forwards that skipped the dispatcher");
    reg.counter_add("prord_bundle_forwards_total", p,
                    static_cast<double>(prord->bundle_forwards()));
    reg.counter_add("prord_prefetch_route_hits_total", p,
                    static_cast<double>(prord->prefetch_hits()));
    reg.set_help("prord_prefetch_triggered_total",
                 "Navigation predictions that cleared Algorithm 2's "
                 "threshold and triggered a prefetch");
    reg.counter_add("prord_prefetch_triggered_total", p,
                    static_cast<double>(prord->prefetches_triggered()));
    reg.gauge_set("prord_prefetch_threshold", p, prord->current_threshold());
    reg.set_help("prord_replication_rounds_total",
                 "Algorithm 3 planner invocations");
    reg.counter_add("prord_replication_rounds_total", p,
                    static_cast<double>(prord->replication_rounds()));
    reg.counter_add("prord_replication_replicas_pushed_total", p,
                    static_cast<double>(prord->replicas_pushed()));
    reg.set_help("prord_prediction_hits_total",
                 "Navigation predictions whose top guess matched the next "
                 "request on the session");
    reg.counter_add("prord_prediction_hits_total", p,
                    static_cast<double>(prord->prediction_hits()));
    reg.counter_add("prord_prediction_misses_total", p,
                    static_cast<double>(prord->prediction_misses()));
    reg.set_help("prord_prediction_hit_ratio",
                 "hits / (hits + misses) over every scored prediction");
    reg.gauge_set("prord_prediction_hit_ratio", p,
                  prord->prediction_hit_rate());
  }
}

void collect_adapt_metrics(obs::MetricRegistry& reg,
                           const std::string& policy_name,
                           const adapt::AdaptStats& stats) {
  const obs::Labels p{{"policy", policy_name}};
  reg.set_help("prord_adapt_remine_total",
               "Models re-mined and published during the measured run");
  reg.counter_add("prord_adapt_remine_total", p,
                  static_cast<double>(stats.remines));
  reg.set_help("prord_adapt_remine_drift_total",
               "Re-mines triggered early by the drift monitor");
  reg.counter_add("prord_adapt_remine_drift_total", p,
                  static_cast<double>(stats.drift_remines));
  reg.set_help("prord_adapt_remine_skipped_total",
               "Epoch ticks skipped (mining in flight or empty window)");
  reg.counter_add("prord_adapt_remine_skipped_total", p,
                  static_cast<double>(stats.skipped));
  reg.set_help("prord_adapt_epoch",
               "Epoch of the model the policy is serving from");
  reg.gauge_set("prord_adapt_epoch", p, static_cast<double>(stats.epoch));
  reg.set_help("prord_adapt_mining_busy_seconds",
               "Simulated CPU the background mining thread consumed");
  reg.counter_add("prord_adapt_mining_busy_seconds", p,
                  sim::to_seconds(stats.mining_busy));
  reg.set_help("prord_adapt_window_requests",
               "Sliding-window requests captured at the last re-mine");
  reg.gauge_set("prord_adapt_window_requests", p,
                static_cast<double>(stats.window_requests));
  reg.gauge_set("prord_adapt_window_sessions", p,
                static_cast<double>(stats.window_sessions));
  reg.set_help("prord_adapt_publish_delay_seconds",
               "Summed mining-start-to-publish latency across re-mines");
  reg.counter_add("prord_adapt_publish_delay_seconds", p,
                  sim::to_seconds(stats.publish_delay));
  reg.set_help("prord_drift_triggers_total",
               "Times the rolling hit-rate crossed below the drift "
               "threshold and forced an early re-mine");
  reg.counter_add("prord_drift_triggers_total", p,
                  static_cast<double>(stats.drift_triggers));
  reg.set_help("prord_drift_window_hit_rate",
               "Drift monitor's rolling prediction hit-rate at run end "
               "(-1 = under min_samples)");
  reg.gauge_set("prord_drift_window_hit_rate", p, stats.final_hit_rate);
  reg.set_help("prord_drift_prefetch_waste",
               "Rolling share of issued prefetches never used at run end "
               "(-1 = none issued)");
  reg.gauge_set("prord_drift_prefetch_waste", p, stats.final_prefetch_waste);
}

PlayerCounterHandles register_player_counters(obs::MetricBatch& batch,
                                              const std::string& policy_name) {
  const obs::Labels p{{"policy", policy_name}};
  PlayerCounterHandles h;
  h.batch = &batch;
  h.completed =
      batch.counter("prord_requests_completed_total", p,
                    "Requests served to completion in the measured run");
  h.failed =
      batch.counter("prord_requests_failed_total", p,
                    "Requests that exhausted every retry (fault runs)");
  h.retried = batch.counter("prord_requests_retried_total", p);
  h.redispatched = batch.counter(
      "prord_requests_redispatched_total", p,
      "Retries the front-end routed away from the failed server");
  for (unsigned v = 0; v < obs::kNumRouteVia; ++v) {
    obs::Labels labels = p;
    labels.emplace_back("via",
                        obs::route_via_name(static_cast<obs::RouteVia>(v)));
    h.routed_via[v] = batch.counter(
        "prord_requests_routed_total", std::move(labels),
        v == 0 ? "Requests per routing mechanism (Fig. 4 decision paths)"
               : "");
  }
  h.dispatched =
      batch.counter("prord_dispatcher_contacts_total", p,
                    "Dispatcher lookups (Fig. 6's frequency of dispatches)");
  h.handoffs = batch.counter("prord_tcp_handoffs_total", p);
  h.forwards = batch.counter("prord_backend_forwards_total", p);
  return h;
}

void collect_fault_metrics(obs::MetricRegistry& reg,
                           const std::string& policy_name,
                           const faults::FaultStats& stats,
                           const RunMetrics& m) {
  const obs::Labels p{{"policy", policy_name}};
  reg.set_help("prord_fault_crashes_total",
               "Back-end crash events injected into the measured run");
  reg.counter_add("prord_fault_crashes_total", p,
                  static_cast<double>(stats.crashes));
  reg.counter_add("prord_fault_restarts_total", p,
                  static_cast<double>(stats.restarts));
  reg.counter_add("prord_fault_slowdowns_total", p,
                  static_cast<double>(stats.slowdowns));
  reg.set_help("prord_fault_down_detections_total",
               "Heartbeat sweeps that flipped a server's belief to down");
  reg.counter_add("prord_fault_down_detections_total", p,
                  static_cast<double>(stats.down_detections));
  reg.counter_add("prord_fault_up_detections_total", p,
                  static_cast<double>(stats.up_detections));
  reg.set_help("prord_fault_detection_latency_us",
               "Crash-to-detection gap per down-detection (microseconds)");
  reg.stats_merge("prord_fault_detection_latency_us", p,
                  stats.detection_latency_us);
  reg.set_help("prord_fault_believed_unavailable_seconds",
               "Front-end-believed downtime summed over servers");
  reg.gauge_set("prord_fault_believed_unavailable_seconds", p,
                sim::to_seconds(stats.believed_unavailable));
  reg.set_help("prord_fault_actual_unavailable_seconds",
               "Ground-truth crashed time summed over servers");
  reg.gauge_set("prord_fault_actual_unavailable_seconds", p,
                sim::to_seconds(stats.actual_unavailable));
  reg.set_help("prord_fault_rewarm_time_us",
               "Rejoin-to-cache-warm durations (microseconds)");
  reg.counter_add("prord_fault_rewarms_completed_total", p,
                  static_cast<double>(stats.rewarms_completed));
  reg.counter_add("prord_fault_rewarms_unfinished_total", p,
                  static_cast<double>(stats.rewarms_unfinished));
  reg.stats_merge("prord_fault_rewarm_time_us", p, stats.rewarm_time_us);
  reg.set_help("prord_fault_success_ratio",
               "completed / (completed + failed) over the measured run");
  reg.gauge_set("prord_fault_success_ratio", p, m.success_ratio());
}

void register_cluster_probes(obs::Sampler& sampler,
                             cluster::Cluster& cluster) {
  for (std::uint32_t b = 0; b < cluster.size(); ++b) {
    const obs::Labels labels{{"backend", std::to_string(b)}};
    sampler.add_probe("prord_backend_load", labels,
                      [&cluster, b](sim::SimTime) {
                        return static_cast<double>(cluster.backend(b).load());
                      });
    sampler.add_probe("prord_backend_cpu_backlog_us", labels,
                      [&cluster, b](sim::SimTime now) {
                        return static_cast<double>(
                            cluster.backend(b).cpu().backlog(now));
                      });
    sampler.add_probe("prord_backend_disk_backlog_us", labels,
                      [&cluster, b](sim::SimTime now) {
                        return static_cast<double>(
                            cluster.backend(b).disk().backlog(now));
                      });
    sampler.add_probe("prord_cache_demand_bytes", labels,
                      [&cluster, b](sim::SimTime) {
                        return static_cast<double>(
                            cluster.backend(b).cache().demand_bytes());
                      });
    sampler.add_probe("prord_cache_pinned_bytes", labels,
                      [&cluster, b](sim::SimTime) {
                        return static_cast<double>(
                            cluster.backend(b).cache().pinned_bytes());
                      });
  }
  sampler.add_probe("prord_dispatcher_files_tracked", {},
                    [&cluster](sim::SimTime) {
                      return static_cast<double>(
                          cluster.dispatcher().num_files_tracked());
                    });
  sampler.add_probe("prord_cluster_mean_load", {},
                    [&cluster](sim::SimTime) {
                      return cluster.average_load();
                    });
}

ObsOptions to_obs_options(const ObsExportOptions& options) {
  ObsOptions obs;
  obs.metrics = !options.metrics_out.empty();
  if (!options.series_out.empty())
    obs.sample_interval = options.sample_interval;
  if (!options.trace_out.empty())
    obs.trace_sample_rate = options.trace_sample_rate;
  return obs;
}

namespace {

bool ends_with_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Writes `text` to `path` ('-' = stdout); false + stderr note on failure.
bool write_sink(const std::string& path, const std::string& text,
                const char* what) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "obs: cannot write " << what << " to " << path << '\n';
    return false;
  }
  out << text;
  std::cerr << "obs: wrote " << what << " to " << path << '\n';
  return true;
}

}  // namespace

std::string render_metrics(const std::vector<CellResult>& results, bool csv) {
  obs::MetricRegistry merged;
  for (const auto& cell : results) {
    const bool multi_rep = cell.replications.size() > 1;
    for (std::size_t r = 0; r < cell.replications.size(); ++r) {
      obs::Labels extra{{"cell", cell.label}};
      if (multi_rep) extra.emplace_back("rep", std::to_string(r));
      merged.merge(cell.replications[r].registry.with_labels(extra));
    }
  }
  return csv ? obs::to_metrics_csv(merged) : obs::to_prometheus(merged);
}

std::string render_series_csv(const std::vector<CellResult>& results) {
  std::ostringstream os;
  os << "cell,rep,metric,labels,t_us,value\n";
  for (const auto& cell : results) {
    for (std::size_t r = 0; r < cell.replications.size(); ++r) {
      std::vector<obs::Series> series = cell.replications[r].series;
      std::sort(series.begin(), series.end(),
                [](const obs::Series& a, const obs::Series& b) {
                  return obs::canonical_key(a.name, a.labels) <
                         obs::canonical_key(b.name, b.labels);
                });
      for (const auto& s : series) {
        std::string labels;
        for (const auto& [k, v] : s.labels) {
          if (!labels.empty()) labels += ';';
          labels += k;
          labels += '=';
          labels += v;
        }
        for (const auto& pt : s.points)
          os << cell.label << ',' << r << ',' << s.name << ',' << labels
             << ',' << pt.at << ',' << obs::format_value(pt.value) << '\n';
      }
    }
  }
  return os.str();
}

std::string render_trace_jsonl(const std::vector<CellResult>& results) {
  std::ostringstream os;
  for (const auto& cell : results) {
    for (std::size_t r = 0; r < cell.replications.size(); ++r) {
      const auto& result = cell.replications[r];
      for (const auto& span : result.spans) {
        os << "{\"cell\":\"" << json_escape(cell.label) << "\",\"rep\":" << r
           << ",\"policy\":\"" << json_escape(result.policy) << "\",";
        obs::write_span_fields(os, span);
        os << "}\n";
      }
    }
  }
  return os.str();
}

bool export_observability(const std::vector<CellResult>& results,
                          const ObsExportOptions& options) {
  bool ok = true;
  if (!options.metrics_out.empty())
    ok &= write_sink(options.metrics_out,
                     render_metrics(results, ends_with_csv(options.metrics_out)),
                     "metrics");
  if (!options.series_out.empty())
    ok &= write_sink(options.series_out, render_series_csv(results),
                     "gauge time series");
  if (!options.trace_out.empty())
    ok &= write_sink(options.trace_out, render_trace_jsonl(results),
                     "request trace");
  return ok;
}

}  // namespace prord::core
