// RoutingCore: the decision-commit engine shared by the simulated
// workload player and the live networked distributor (src/net/).
//
// A DistributionPolicy only *picks* a back-end; committing that pick means
// mutating per-connection state the exact same way every driver must:
// record the handoff on the connection, bump its request count, append
// main pages to its navigation history, and tally the front-end work the
// decision required. Before this class existed that commit logic lived
// inline in core/workload_player.cpp; extracting it means the epoll
// distributor and the discrete-event simulator route through one code
// path, which is what the routing-parity test pins (docs/LIVE_CLUSTER.md).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "cluster/cluster.h"
#include "obs/span.h"
#include "policies/policy.h"
#include "trace/workload.h"

namespace prord::core {

/// One committed routing decision plus the connection facts the driver
/// needs in order to charge costs (handoff latency, new-connection setup).
struct RoutedRequest {
  policies::RouteDecision decision;
  /// False when the policy produced no routable back-end (every server
  /// believed down). No connection state was mutated in that case.
  bool valid = false;
  /// First request ever committed on this connection.
  bool new_connection = false;
  /// The connection's back-end *before* this commit (forwarding relays
  /// the response through it).
  policies::ServerId home = cluster::kNoServer;
};

class RoutingCore {
 public:
  /// Both references are borrowed and must outlive the core.
  RoutingCore(cluster::Cluster& cluster, policies::DistributionPolicy& policy)
      : cluster_(cluster), policy_(policy) {}

  /// Routes `req` on its connection (`req.conn`) and commits the decision:
  /// connection server/handoff update, request count, navigation history,
  /// and the front-end mechanism counters. Invalid decisions commit
  /// nothing.
  RoutedRequest route(const trace::Request& req);

  /// Driver committed the decision and submitted the request to the
  /// chosen back-end (fires the policy's proactive machinery).
  void notify_routed(const trace::Request& req, policies::ServerId server) {
    policy_.on_routed(req, server, cluster_);
  }

  /// The back-end finished serving the request.
  void notify_complete(const trace::Request& req, policies::ServerId server) {
    policy_.on_complete(req, server, cluster_);
  }

  /// A request died with `failed_server`: unstick the connection so the
  /// next attempt routes fresh instead of chasing the dead back-end.
  void unstick(std::uint32_t conn, policies::ServerId failed_server);

  /// Live path: the client connection closed — drop its state.
  void forget(std::uint32_t conn) { conn_state_.erase(conn); }

  policies::ConnectionState& connection(std::uint32_t conn) {
    return conn_state_[conn];
  }

  cluster::Cluster& cluster() noexcept { return cluster_; }
  policies::DistributionPolicy& policy() noexcept { return policy_; }

  // --- Cumulative front-end counters over every committed decision
  // (the live distributor's /metrics surface; the sim player keeps its
  // own copies inside RunMetrics for the warm-up/measurement reset).
  std::uint64_t routed() const noexcept { return routed_; }
  std::uint64_t dispatches() const noexcept { return dispatches_; }
  std::uint64_t handoffs() const noexcept { return handoffs_; }
  std::uint64_t forwards() const noexcept { return forwards_; }
  const std::array<std::uint64_t, obs::kNumRouteVia>& routes_via()
      const noexcept {
    return routes_via_;
  }

  void reset_counters() {
    routed_ = dispatches_ = handoffs_ = forwards_ = 0;
    routes_via_.fill(0);
  }

 private:
  cluster::Cluster& cluster_;
  policies::DistributionPolicy& policy_;
  std::unordered_map<std::uint32_t, policies::ConnectionState> conn_state_;

  std::uint64_t routed_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t forwards_ = 0;
  std::array<std::uint64_t, obs::kNumRouteVia> routes_via_{};
};

}  // namespace prord::core
