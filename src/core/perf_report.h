// Perf-report model for the BENCH_*.json artifacts (docs/PERF.md).
//
// bench_perf fills one PerfReport per suite ("sim", "live") and renders it
// through util::JsonValue with a STABLE schema — docs/perf_schema.json is
// the contract, tests/core/perf_report_schema_test.cpp enforces it, and
// the CI perf job uploads the files so runs are comparable across
// commits. Schema changes must bump `kPerfSchemaVersion` and update the
// checked-in schema in the same commit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace prord::core {

inline constexpr int kPerfSchemaVersion = 2;

/// One timed scenario run (one mode of one workload).
struct PerfScenario {
  std::string name;  ///< e.g. "fig8_memory_sweep"
  std::string mode;  ///< "optimized" | "baseline"
  /// Wall-clock bracket (unix epoch ms). Monotonic across the scenario
  /// list — the schema test checks it.
  std::uint64_t t_start_ms = 0;
  std::uint64_t t_end_ms = 0;
  double wall_seconds = 0.0;        ///< whole scenario incl. setup
  double sim_wall_seconds = 0.0;    ///< inside the sim loop; 0 for live
  std::uint64_t sim_events = 0;     ///< 0 for live scenarios
  double events_per_sec = 0.0;      ///< sim_events / sim_wall_seconds
  std::uint64_t requests = 0;
  double requests_per_sec = 0.0;    ///< simulated (sim) or wall (live) rate
  double p50_response_ms = 0.0;
  double p99_response_ms = 0.0;
  std::uint64_t allocations = 0;    ///< heap allocations during the run
  double allocations_per_event = 0.0;
  /// Front-end distributor shards the scenario ran with (schema v2).
  /// 0 for sim scenarios; >= 1 for live ones.
  std::uint32_t shards = 0;
};

/// One named optimized/baseline ratio (e.g. fig8 events/sec speedup).
struct PerfRatio {
  std::string name;
  double value = 0.0;
};

struct PerfReport {
  std::string suite;  ///< "sim" | "live"
  std::string git_sha;
  std::uint64_t generated_unix_ms = 0;
  std::vector<PerfScenario> scenarios;
  std::vector<PerfRatio> speedups;
};

/// Report -> JSON document (schema_version, suite, git_sha, timestamps,
/// scenarios[], speedups{}).
util::JsonValue perf_report_to_json(const PerfReport& report);

/// Serialized report (perf_report_to_json().dump()).
std::string render_perf_report(const PerfReport& report);

/// Writes the report to `path`; false (with a stderr note) on I/O failure.
bool write_perf_report(const PerfReport& report, const std::string& path);

/// Commit id for the report: $GITHUB_SHA, else $PRORD_GIT_SHA, else
/// `git rev-parse HEAD`, else "unknown".
std::string detect_git_sha();

/// Wall clock in unix epoch milliseconds.
std::uint64_t unix_now_ms();

}  // namespace prord::core
