#include "core/parallel_runner.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <thread>

#include "util/rng.h"

namespace prord::core {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_index,
                          std::uint64_t replication) {
  // Fold each coordinate into the SplitMix64 stream with a distinct odd
  // multiplier so (a, b, c) and permutations of it land in different
  // streams; every fold passes through a full finalization step.
  std::uint64_t state = base_seed ^ 0xA0761D6478BD642FULL;
  state = util::splitmix64(state);
  state ^= cell_index * 0x9E3779B97F4A7C15ULL;
  state = util::splitmix64(state);
  state ^= replication * 0xD1342543DE82EF95ULL;
  return util::splitmix64(state);
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (static_cast<std::size_t>(jobs) > n)
    jobs = static_cast<unsigned>(n);

  if (jobs <= 1) {
    // Serial fallback: no threads, first failure propagates directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

namespace {

/// Two-sided Student's t critical values at 95% confidence for df = 1..30;
/// beyond that the normal approximation (1.96) is within half a percent.
double t_critical_95(std::size_t df) {
  static constexpr double kT95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kT95[df - 1];
  return 1.96;
}

}  // namespace

MetricSummary summarize(const std::vector<double>& samples) {
  MetricSummary s;
  s.n = samples.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double sq = 0.0;
  for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  s.ci95 = t_critical_95(s.n - 1) * s.stddev /
           std::sqrt(static_cast<double>(s.n));
  return s;
}

MetricSummary CellResult::summary(
    const std::function<double(const ExperimentResult&)>& metric) const {
  std::vector<double> samples;
  samples.reserve(replications.size());
  for (const auto& r : replications) samples.push_back(metric(r));
  return summarize(samples);
}

std::vector<CellResult> run_cells(const std::vector<ExperimentCell>& cells,
                                  const RunnerOptions& options) {
  const std::size_t reps = std::max<std::size_t>(1, options.replications);

  std::vector<CellResult> out(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i].label = cells[i].label;
    out[i].replications.resize(reps);
  }

  std::mutex progress_mutex;
  parallel_for(cells.size() * reps, options.jobs, [&](std::size_t task) {
    const std::size_t cell = task / reps;
    const std::size_t rep = task % reps;

    ExperimentConfig config = cells[cell].config;
    const std::uint64_t base =
        options.base_seed ? options.base_seed : config.workload.gen.seed;
    // With the default base_seed, replication 0 runs the config verbatim
    // so the canonical paper tables are unchanged by the engine.
    if (options.base_seed != 0 || rep != 0)
      config.workload.gen.seed = derive_seed(base, cell, rep);

    out[cell].replications[rep] = run_experiment(config);

    if (options.progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(cells[cell].label, rep);
    }
  });

  return out;
}

util::Table summary_table(const std::vector<CellResult>& results) {
  // ASCII "ci95" (not a ± glyph): Table pads columns by byte length, and a
  // multibyte header would skew every row after it.
  util::Table table({"cell", "policy", "reps", "throughput(req/s)", "ci95",
                     "hit-rate", "mean-resp(ms)", "dispatches/req"});
  for (const auto& cell : results) {
    const auto tput = cell.summary(
        [](const ExperimentResult& r) { return r.throughput_rps(); });
    const auto hit =
        cell.summary([](const ExperimentResult& r) { return r.hit_rate(); });
    const auto resp = cell.summary(
        [](const ExperimentResult& r) { return r.metrics.mean_response_ms(); });
    const auto disp = cell.summary(
        [](const ExperimentResult& r) { return r.dispatch_frequency(); });
    table.add_row({cell.label, cell.primary().policy,
                   std::to_string(tput.n), util::Table::num(tput.mean, 0),
                   util::Table::num(tput.ci95, 1),
                   util::Table::num(hit.mean, 3),
                   util::Table::num(resp.mean, 2),
                   util::Table::num(disp.mean, 3)});
  }
  return table;
}

}  // namespace prord::core
