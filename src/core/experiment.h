// Experiment runner: one call = one cell of a paper table/figure.
//
// Pipeline per run:
//   1. build the site + evaluation trace from a WorkloadSpec,
//   2. generate an independent *training* trace on the same site (the
//      "historical web log" the mining scripts analyze offline),
//   3. mine the training log (MiningModel),
//   4. size the back-end caches as a fraction of the site footprint
//      (Fig. 8's x-axis; default ~30%, the paper's standing assumption),
//   5. compress arrivals until the cluster is saturated and play the
//      evaluation trace under the chosen policy,
//   6. report throughput, response time, dispatch frequency, hit rates.
#pragma once

#include <memory>
#include <string>

#include "adapt/controller.h"
#include "cluster/params.h"
#include "core/workload_player.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "logmining/mining_model.h"
#include "obs/metric_registry.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "policies/lard.h"
#include "trace/models.h"

namespace prord::core {

enum class PolicyKind {
  kWrr,
  kLard,
  kLardReplicated,
  kExtLardPhttp,
  kPress,
  kPrord,
  // Fig. 9 single-enhancement ablations.
  kLardBundle,
  kLardDistribution,
  kLardPrefetchNav,
  /// PRORD minus Algorithm 3 replication: the fault bench's ablation —
  /// without proactive replicas a rejoined server re-warms on demand
  /// misses alone.
  kPrordNoReplication,
};

/// Human-readable policy label (matches the paper's figure legends).
const char* policy_label(PolicyKind kind);

/// True for policies that need the offline mining pass.
bool policy_uses_mining(PolicyKind kind);

/// Observability knobs for one run. Everything keys on simulated time and
/// dense request indices, so enabling any of it never perturbs results
/// and the produced artifacts are byte-identical at any --jobs count.
struct ObsOptions {
  /// Populate ExperimentResult::registry with the instrumented metric
  /// catalogue (see docs/OBSERVABILITY.md).
  bool metrics = false;
  /// Gauge time-series cadence in simulated time; 0 = no sampling.
  sim::SimTime sample_interval = 0;
  /// Share of requests traced into ExperimentResult::spans (0 = off,
  /// 1 = every request). Sampling is a pure hash of the request index.
  double trace_sample_rate = 0.0;
  /// Batch the player's per-request counter updates (obs::MetricBatch)
  /// and fold them into the registry on epoch flushes. Off routes every
  /// bump through the registry's canonical-key path immediately —
  /// bench_perf's baseline mode. Exported bytes are identical either way.
  bool batch_metrics = true;

  bool any() const noexcept {
    return metrics || sample_interval > 0 || trace_sample_rate > 0;
  }
};

/// Fault-injection knobs for one run (docs/FAULTS.md). Faults apply to
/// the *measured* run only — the warm-up plays on a healthy cluster.
/// Everything here is denominated in trace wall-clock time and compressed
/// by the run's time_scale alongside the arrivals.
struct FaultOptions {
  /// Explicit schedule spec, e.g. "crash@30s:srv2,restart@45s:srv2"
  /// (grammar in faults/fault_plan.h). Takes precedence over the model.
  std::string plan;
  /// Sample a plan from the MTBF/MTTR model over the trace horizon when
  /// no explicit plan is given.
  bool use_model = false;
  faults::FaultModel model{};

  sim::SimTime heartbeat_interval = sim::sec(1.0);
  std::uint32_t max_retries = 3;
  sim::SimTime retry_backoff = sim::msec(100);
  double rewarm_target_fraction = 0.20;

  bool any() const noexcept { return !plan.empty() || use_model; }
};

/// Online adaptive mining knobs (docs/ADAPTATION.md). Applies only to
/// PRORD-family policies (everything else ignores it). Like the fault
/// knobs, all times here are trace wall-clock and are compressed by the
/// run's time_scale alongside the arrivals; the mining *cost* is likewise
/// compressed, preserving the mining thread's per-epoch occupancy.
struct AdaptOptions {
  /// Master switch for streaming re-mining (epoch timer + sessionizer).
  bool enabled = false;
  /// Scheduled re-mine period.
  sim::SimTime epoch = sim::sec(60.0);
  /// Sliding window the stream sessionizer retains for re-mining.
  /// Windowed by original trace timestamps (never compressed), so the
  /// online miner samples the same wall-clock span regardless of
  /// time_scale or cluster saturation.
  sim::SimTime window = sim::sec(120.0);
  /// Drift trigger: early re-mine when the rolling prediction hit-rate
  /// drops below this. <= 0 leaves only the epoch schedule.
  double drift_threshold = 0.0;
  /// Rolling horizon for the drift hit-rate.
  sim::SimTime drift_horizon = sim::sec(30.0);
  std::size_t drift_min_samples = 50;
  /// Back-end whose CPU the background mining thread shares; -1 runs it
  /// on a dedicated mining node (no serving capacity stolen).
  std::int32_t mining_backend = -1;
  /// Mining cost model (trace wall-clock CPU): fixed + per windowed
  /// request, paid before each re-mined model publishes.
  double mining_cost_base_ms = 50.0;
  double mining_cost_per_request_us = 20.0;
  /// Re-mined models clone the serving predictor (it learns every
  /// transition online); false disables the warm start (retrain each
  /// model from the window alone).
  bool warm_start = true;
  /// Trace-clock halflife applied to the cloned predictor's counts at
  /// re-mine time; 0 (default) keeps all history — measured best, since
  /// coverage loss costs more than staleness for a clone that keeps
  /// learning online.
  double predictor_halflife_s = 0.0;
  /// Trace-clock halflife for the carried popularity counters — the decay
  /// that lets placement and replication follow a drifting hot set
  /// (the tracker's built-in decay runs on the compressed simulation
  /// clock and is effectively inert). 0 keeps all history.
  double popularity_halflife_s = 600.0;
  /// Per-phase oracle (bench upper bound): pre-mine one model per
  /// trace::DriftSpec phase from the training trace and publish each at
  /// its phase boundary, free of mining cost. Ignores `enabled`.
  bool oracle = false;

  bool any() const noexcept { return enabled || oracle; }
};

struct ExperimentConfig {
  trace::WorkloadSpec workload = trace::synthetic_spec();
  PolicyKind policy = PolicyKind::kPrord;
  cluster::ClusterParams params{};
  ObsOptions obs{};
  FaultOptions faults{};
  AdaptOptions adapt{};

  /// Per-back-end cache capacity as a fraction of the trace's total file
  /// footprint; <= 0 uses params.app_memory_bytes verbatim.
  double memory_fraction = 0.30;
  /// Share of that capacity reserved as the pinned (proactive) region for
  /// policies that place content proactively.
  double pinned_fraction = 0.25;

  /// Arrival compression: 0 = auto-scale so the offered load saturates the
  /// cluster at roughly `target_offered_rps`.
  double time_scale = 0.0;
  double target_offered_rps = 20'000.0;

  /// Play the training trace through the cluster first (caches warm up,
  /// the online model adapts), reset all accounting, then measure on the
  /// evaluation trace. This reproduces the paper's steady-state regime
  /// ("~30% of the site in memory yields 85% hit rates with LARD"); turn
  /// it off to study cold-start behaviour.
  bool warmup = true;

  /// Training-trace seed distance from the evaluation trace.
  std::uint64_t train_seed_offset = 1000;
  logmining::MiningConfig mining{};
  policies::LardOptions lard{};
  double prefetch_threshold = 0.4;
  /// Self-tuning Algorithm 2 threshold (extension; see PrordOptions).
  bool adaptive_threshold = false;
  sim::SimTime replication_interval = sim::sec(30.0);
};

struct ExperimentResult {
  std::string policy;
  std::string workload;
  RunMetrics metrics;
  std::uint64_t site_bytes = 0;        ///< trace file footprint
  std::uint64_t cache_bytes = 0;       ///< per-back-end capacity used
  double time_scale = 1.0;
  std::size_t num_requests = 0;
  std::size_t num_files = 0;
  /// Simulator events dispatched over the whole experiment (warm-up and
  /// measured run). bench_perf's events/sec numerator.
  std::uint64_t sim_events = 0;
  /// Wall-clock seconds spent inside the simulation loop (the two
  /// play_workload calls) — bench_perf's events/sec denominator. Excludes
  /// site/trace generation and offline mining, which are identical in
  /// every queue/pool/metrics mode and would only dilute the comparison.
  double sim_wall_seconds = 0.0;

  // PRORD-family introspection (0 for other policies).
  std::uint64_t bundle_forwards = 0;
  std::uint64_t prefetches_triggered = 0;
  std::uint64_t replicas_pushed = 0;
  std::uint64_t rewarm_pushes = 0;
  std::uint64_t prediction_hits = 0;
  std::uint64_t prediction_misses = 0;

  // Online adaptation accounting (all-zero unless adapt was enabled).
  adapt::AdaptStats adapt_stats;

  // Fault-injection accounting (all-zero unless faults were enabled).
  faults::FaultStats fault_stats;
  std::vector<faults::RewarmRecord> rewarms;

  // Observability artifacts (empty unless the matching ObsOptions field
  // was enabled). Collected per run so the parallel runner can merge and
  // export them deterministically in cell order.
  obs::MetricRegistry registry;
  std::vector<obs::Series> series;
  std::vector<obs::RequestSpan> spans;

  double throughput_rps() const { return metrics.throughput_rps(); }
  double hit_rate() const { return metrics.cache.hit_rate(); }
  /// Share of scored predictions the model got right (PRORD-family only).
  double prediction_hit_rate() const {
    const auto n = prediction_hits + prediction_misses;
    return n ? static_cast<double>(prediction_hits) /
                   static_cast<double>(n)
             : 0.0;
  }
  /// Dispatcher contacts per request: Fig. 6's y-axis, normalized.
  double dispatch_frequency() const {
    return num_requests
               ? static_cast<double>(metrics.dispatches) /
                     static_cast<double>(num_requests)
               : 0.0;
  }
};

/// Builds the DistributionPolicy a config names, with every wall-clock
/// policy timer (replica TTL, Algorithm 3's replication period) compressed
/// by `time_scale` alongside the arrivals. `model` may be null for
/// policies that don't mine (policy_uses_mining). Public so the live
/// cluster (src/net/) constructs the *same* policy objects the simulator
/// runs — the routing-parity test depends on this being the single
/// factory.
std::unique_ptr<policies::DistributionPolicy> create_policy(
    const ExperimentConfig& config,
    std::shared_ptr<logmining::MiningModel> model,
    const trace::FileTable& files, double time_scale);

ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace prord::core
