#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "adapt/controller.h"
#include "adapt/model_swap.h"
#include "core/obs_export.h"
#include "obs/sampler.h"
#include "obs/tracer.h"
#include "policies/ext_lard_phttp.h"
#include "policies/press.h"
#include "policies/prord.h"
#include "policies/wrr.h"

namespace prord::core {

const char* policy_label(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWrr:
      return "WRR";
    case PolicyKind::kLard:
      return "LARD";
    case PolicyKind::kLardReplicated:
      return "LARD/R";
    case PolicyKind::kExtLardPhttp:
      return "Ext-LARD-PHTTP";
    case PolicyKind::kPress:
      return "PRESS";
    case PolicyKind::kPrord:
      return "PRORD";
    case PolicyKind::kLardBundle:
      return "LARD-bundle";
    case PolicyKind::kLardDistribution:
      return "LARD-distribution";
    case PolicyKind::kLardPrefetchNav:
      return "LARD-prefetch-nav";
    case PolicyKind::kPrordNoReplication:
      return "PRORD-norepl";
  }
  return "?";
}

bool policy_uses_mining(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrord:
    case PolicyKind::kLardBundle:
    case PolicyKind::kLardDistribution:
    case PolicyKind::kLardPrefetchNav:
    case PolicyKind::kPrordNoReplication:
      return true;
    default:
      return false;
  }
}

namespace {

policies::PrordOptions ablation_options(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrord:
      return policies::prord_full_options();
    case PolicyKind::kLardBundle:
      return policies::lard_bundle_options();
    case PolicyKind::kLardDistribution:
      return policies::lard_distribution_options();
    case PolicyKind::kLardPrefetchNav:
      return policies::lard_prefetch_nav_options();
    case PolicyKind::kPrordNoReplication:
      return policies::prord_no_replication_options();
    default:
      throw std::logic_error("ablation_options: not a PRORD-family policy");
  }
}

}  // namespace

std::unique_ptr<policies::DistributionPolicy> create_policy(
    const ExperimentConfig& config,
    std::shared_ptr<logmining::MiningModel> model,
    const trace::FileTable& files, double time_scale) {
  // All wall-clock-denominated policy timers compress with the arrivals.
  auto lard = config.lard;
  lard.replica_ttl = std::max<sim::SimTime>(
      sim::msec(1), static_cast<sim::SimTime>(
                        static_cast<double>(lard.replica_ttl) / time_scale));
  switch (config.policy) {
    case PolicyKind::kWrr:
      return std::make_unique<policies::WeightedRoundRobin>();
    case PolicyKind::kLard:
      return std::make_unique<policies::Lard>(lard);
    case PolicyKind::kLardReplicated: {
      auto opts = lard;
      opts.replication = true;
      return std::make_unique<policies::Lard>(opts);
    }
    case PolicyKind::kExtLardPhttp:
      return std::make_unique<policies::ExtLardPhttp>(lard);
    case PolicyKind::kPress:
      return std::make_unique<policies::Press>();
    default: {
      auto opts = ablation_options(config.policy);
      opts.lard = lard;
      opts.prefetch_threshold = config.prefetch_threshold;
      opts.adaptive_threshold = config.adaptive_threshold;
      // Algorithm 3's period is wall-clock; compress it with the arrivals
      // so a saturation run still sees periodic replication rounds.
      opts.replication_interval = std::max<sim::SimTime>(
          sim::msec(1), static_cast<sim::SimTime>(
                            static_cast<double>(config.replication_interval) /
                            time_scale));
      return std::make_unique<policies::Prord>(std::move(model), files,
                                               std::move(opts));
    }
  }
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // 1-2. Evaluation and training traces over the same site.
  const trace::SiteModel site = trace::build_site(config.workload.site);
  const trace::GeneratedTrace eval_trace =
      trace::generate_trace(site, config.workload.gen);

  auto train_gen = config.workload.gen;
  train_gen.seed += config.train_seed_offset;
  const trace::GeneratedTrace train_trace =
      trace::generate_trace(site, train_gen);

  trace::Workload train = trace::build_workload(train_trace.records);
  trace::Workload eval = trace::build_workload(eval_trace.records, {},
                                               train.files);

  // 3. Offline mining pass (only billed to policies that use it).
  std::shared_ptr<logmining::MiningModel> model;
  if (policy_uses_mining(config.policy)) {
    auto mining = config.mining;
    mining.prefetch_threshold = config.prefetch_threshold;
    model = std::make_shared<logmining::MiningModel>(train.requests, mining);
  }

  // 4. Cache sizing. memory_fraction is the *cluster-aggregate* share of
  // the website that fits in memory ("about 30% of the website's data can
  // be accommodated in the backend servers' memory"), split evenly across
  // back-ends. The basis is the full site footprint, not just the files a
  // (possibly scaled-down) trace happens to touch.
  const std::uint64_t site_bytes = site.total_bytes();
  std::uint64_t capacity =
      config.memory_fraction > 0
          ? static_cast<std::uint64_t>(config.memory_fraction *
                                       static_cast<double>(site_bytes) /
                                       config.params.num_backends)
          : config.params.app_memory_bytes;
  capacity = std::max<std::uint64_t>(capacity, 64 * 1024);
  std::uint64_t pinned = 0;
  if (policy_uses_mining(config.policy)) {
    pinned = static_cast<std::uint64_t>(config.pinned_fraction *
                                        static_cast<double>(capacity));
    pinned = std::min(pinned, config.params.pinned_memory_bytes);
  }
  const std::uint64_t demand = capacity - pinned;

  // 5. Assemble and run.
  double time_scale = config.time_scale;
  if (time_scale <= 0) {
    const double natural_span = sim::to_seconds(eval.span());
    const double natural_rps =
        natural_span > 0
            ? static_cast<double>(eval.requests.size()) / natural_span
            : 1.0;
    time_scale = std::max(1.0, config.target_offered_rps / natural_rps);
  }

  sim::Simulator simulator;
  double sim_wall_seconds = 0.0;  // wall time inside the two plays
  cluster::Cluster cl(simulator, config.params, demand, pinned);
  auto policy = create_policy(config, model, eval.files, time_scale);

  // Wall-clock knob -> compressed simulation clock (same treatment as
  // replication_interval and the fault timers).
  const auto compress = [time_scale](sim::SimTime t) {
    return std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(static_cast<double>(t) / time_scale));
  };

  PlayerOptions player_opts;
  player_opts.time_scale = time_scale;

  // Per-phase accounting for drifting workloads (trace-clock starts; the
  // player attributes by each request's trace timestamp).
  const trace::DriftSpec& drift = config.workload.gen.drift;
  const double phase_len_sec =
      drift.phase_length(config.workload.gen.duration_sec);
  if (drift.enabled()) {
    for (std::size_t p = 0; p < drift.phases; ++p)
      player_opts.phase_starts.push_back(
          sim::sec(static_cast<double>(p) * phase_len_sec));
  }

  // Online adaptive mining (docs/ADAPTATION.md): live dispatches feed a
  // stream sessionizer; an epoch timer (and optionally the drift monitor)
  // re-mines over the sliding window and publishes through the
  // double-buffered ModelSwap back into the policy.
  auto* prord = dynamic_cast<policies::Prord*>(policy.get());
  std::unique_ptr<adapt::ModelSwap> swap;
  std::unique_ptr<adapt::AdaptiveController> controller;
  if (config.adapt.any() && prord) {
    swap = std::make_unique<adapt::ModelSwap>(model);
    swap->subscribe([prord](const adapt::ModelSwap::Snapshot& snapshot) {
      prord->set_model(snapshot.model);
    });
    adapt::ControllerOptions copts;
    copts.epoch = compress(config.adapt.epoch);
    // The sessionizer windows by original trace timestamps, so the window
    // stays in trace wall-clock — the online miner then shares the offline
    // mining configuration (session splits, popularity halflife) verbatim.
    copts.window = config.adapt.window;
    copts.drift.threshold = config.adapt.drift_threshold;
    copts.drift.horizon = compress(config.adapt.drift_horizon);
    copts.drift.min_samples = config.adapt.drift_min_samples;
    // One bad stretch must not cause a re-mining storm: at most two
    // drift re-mines per scheduled epoch.
    copts.drift.cooldown = std::max<sim::SimTime>(1, copts.epoch / 2);
    copts.mining_backend = config.adapt.mining_backend;
    copts.mining_cost_base =
        compress(sim::msec(config.adapt.mining_cost_base_ms));
    copts.mining_cost_per_request = std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(config.adapt.mining_cost_per_request_us /
                                     time_scale));
    copts.mining = config.mining;
    copts.mining.prefetch_threshold = config.prefetch_threshold;
    copts.warm_start = config.adapt.warm_start;
    // Both halflives are trace clock, like the window.
    copts.predictor_halflife = sim::sec(config.adapt.predictor_halflife_s);
    copts.popularity_halflife = sim::sec(config.adapt.popularity_halflife_s);
    controller = std::make_unique<adapt::AdaptiveController>(
        simulator, cl, *swap, copts);
    prord->set_adaptation(controller.get());
    auto* ctrl = controller.get();
    player_opts.on_drain = [ctrl] { ctrl->pause(); };
  }

  // Oracle mode: pre-mine one model per workload phase from the training
  // trace (the per-phase upper bound the adaptation bench compares to).
  std::vector<std::shared_ptr<logmining::MiningModel>> phase_models;
  if (controller && config.adapt.oracle && drift.enabled()) {
    auto mining = config.mining;
    mining.prefetch_threshold = config.prefetch_threshold;
    for (std::size_t p = 0; p < drift.phases; ++p) {
      const sim::SimTime lo = sim::sec(static_cast<double>(p) *
                                       phase_len_sec);
      const sim::SimTime hi =
          p + 1 < drift.phases
              ? sim::sec(static_cast<double>(p + 1) * phase_len_sec)
              : std::numeric_limits<sim::SimTime>::max();
      const auto first = std::lower_bound(
          train.requests.begin(), train.requests.end(), lo,
          [](const trace::Request& r, sim::SimTime t) { return r.at < t; });
      const auto last = std::lower_bound(
          first, train.requests.end(), hi,
          [](const trace::Request& r, sim::SimTime t) { return r.at < t; });
      if (first == last) {
        phase_models.push_back(model);  // empty slice: keep the full model
        continue;
      }
      phase_models.push_back(std::make_shared<logmining::MiningModel>(
          std::span<const trace::Request>(&*first,
                                          static_cast<std::size_t>(
                                              last - first)),
          mining));
    }
  }

  if (config.warmup) {
    // Warm-up gets no observability hooks: only the measured run is traced
    // and sampled, and metric collection happens after it. The adaptive
    // loop *does* run (online tracking starts with the first request), but
    // its accounting resets with everything else at the boundary.
    if (controller && config.adapt.enabled) controller->start();
    const auto warm_t0 = std::chrono::steady_clock::now();
    play_workload(simulator, cl, *policy, train, player_opts);
    sim_wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      warm_t0)
            .count();
    cl.reset_accounting();
    policy->reset_counters();
    if (controller) {
      // Measurement starts from the offline-mined full-history model (the
      // static baseline): the warm-up's last windowed model is tuned to
      // the *end* of the training log, while the evaluation log restarts
      // at its first phase.
      if (config.adapt.enabled) swap->publish(model);
      controller->reset_counters();
    }
  }

  obs::Tracer tracer(config.obs.trace_sample_rate);
  obs::Sampler sampler(config.obs.sample_interval);
  if (config.obs.sample_interval > 0) register_cluster_probes(sampler, cl);
  if (tracer.enabled()) player_opts.tracer = &tracer;
  if (config.obs.sample_interval > 0) player_opts.sampler = &sampler;

  // Batched hot-path counters: attached after the warm-up (like the tracer
  // and sampler) so only the measured run counts. The batch owns the eight
  // player counter families; collect_run_metrics skips them below.
  obs::MetricBatch batch;
  if (config.obs.metrics) {
    player_opts.counters =
        register_player_counters(batch, std::string(policy->name()));
    batch.set_write_through(!config.obs.batch_metrics);
  }

  // Fault injection hits only the measured run (the warm-up above played
  // on a healthy cluster). Fault times, the detector heartbeat and the
  // client back-off are trace wall-clock quantities — compress them with
  // the arrivals, exactly like replication_interval.
  std::unique_ptr<faults::FaultInjector> injector;
  if (config.faults.any()) {
    faults::FaultPlan plan =
        !config.faults.plan.empty()
            ? faults::parse_fault_plan(config.faults.plan)
            : faults::sample_fault_plan(config.faults.model,
                                        config.params.num_backends,
                                        eval.span());
    plan = plan.scaled(time_scale);
    faults::FaultSessionOptions fault_opts;
    fault_opts.heartbeat_interval = std::max<sim::SimTime>(
        sim::msec(1),
        static_cast<sim::SimTime>(
            static_cast<double>(config.faults.heartbeat_interval) /
            time_scale));
    fault_opts.rewarm_target_fraction = config.faults.rewarm_target_fraction;
    faults::FaultHooks hooks;
    auto* policy_ptr = policy.get();
    auto* cluster_ptr = &cl;
    hooks.server_down = [policy_ptr, cluster_ptr](cluster::ServerId s) {
      policy_ptr->on_server_down(s, *cluster_ptr);
    };
    hooks.server_up = [policy_ptr, cluster_ptr](cluster::ServerId s) {
      policy_ptr->on_server_up(s, *cluster_ptr);
    };
    injector = std::make_unique<faults::FaultInjector>(
        simulator, cl, std::move(plan), fault_opts, std::move(hooks));
    player_opts.max_retries = config.faults.max_retries;
    player_opts.retry_backoff = std::max<sim::SimTime>(
        sim::usec(10),
        static_cast<sim::SimTime>(
            static_cast<double>(config.faults.retry_backoff) / time_scale));
    auto* injector_ptr = injector.get();
    auto prev_drain = std::move(player_opts.on_drain);
    player_opts.on_drain = [injector_ptr,
                            prev_drain = std::move(prev_drain)] {
      injector_ptr->finish();
      if (prev_drain) prev_drain();
    };
    injector->start();
  }

  if (controller) {
    if (config.adapt.oracle && !phase_models.empty())
      controller->schedule_oracle(std::move(phase_models),
                                  compress(sim::sec(phase_len_sec)));
    else if (config.adapt.enabled)
      controller->start();
  }

  const auto play_t0 = std::chrono::steady_clock::now();
  RunMetrics metrics = play_workload(simulator, cl, *policy, eval,
                                     player_opts);
  sim_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    play_t0)
          .count();
  if (injector) injector->finish();  // idempotent; covers abnormal drains
  if (controller) controller->pause();  // idempotent, same reason

  // 6. Package.
  ExperimentResult result;
  result.policy = std::string(policy->name());
  result.workload = config.workload.name;
  result.metrics = std::move(metrics);
  result.site_bytes = site_bytes;
  result.cache_bytes = capacity;
  result.time_scale = time_scale;
  result.num_requests = eval.requests.size();
  result.num_files = eval.files.count();
  result.sim_events = simulator.dispatched_events();
  result.sim_wall_seconds = sim_wall_seconds;
  if (prord) {
    result.bundle_forwards = prord->bundle_forwards();
    result.prefetches_triggered = prord->prefetches_triggered();
    result.replicas_pushed = prord->replicas_pushed();
    result.rewarm_pushes = prord->rewarm_pushes();
    result.prediction_hits = prord->prediction_hits();
    result.prediction_misses = prord->prediction_misses();
  }
  if (injector) {
    result.fault_stats = injector->stats();
    result.rewarms = injector->rewarms();
  }
  if (controller) result.adapt_stats = controller->finalize_stats();
  if (config.obs.metrics) {
    result.registry.merge(batch.registry());
    collect_run_metrics(result.registry, result.policy, result.metrics, cl,
                        *policy, /*skip_player_counters=*/true);
    if (injector)
      collect_fault_metrics(result.registry, result.policy,
                            result.fault_stats, result.metrics);
    if (controller)
      collect_adapt_metrics(result.registry, result.policy,
                            result.adapt_stats);
  }
  result.series = sampler.take_series();
  result.spans = tracer.take_spans();
  return result;
}

}  // namespace prord::core
