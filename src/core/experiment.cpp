#include "core/experiment.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/obs_export.h"
#include "obs/sampler.h"
#include "obs/tracer.h"
#include "policies/ext_lard_phttp.h"
#include "policies/press.h"
#include "policies/prord.h"
#include "policies/wrr.h"

namespace prord::core {

const char* policy_label(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWrr:
      return "WRR";
    case PolicyKind::kLard:
      return "LARD";
    case PolicyKind::kLardReplicated:
      return "LARD/R";
    case PolicyKind::kExtLardPhttp:
      return "Ext-LARD-PHTTP";
    case PolicyKind::kPress:
      return "PRESS";
    case PolicyKind::kPrord:
      return "PRORD";
    case PolicyKind::kLardBundle:
      return "LARD-bundle";
    case PolicyKind::kLardDistribution:
      return "LARD-distribution";
    case PolicyKind::kLardPrefetchNav:
      return "LARD-prefetch-nav";
    case PolicyKind::kPrordNoReplication:
      return "PRORD-norepl";
  }
  return "?";
}

bool policy_uses_mining(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrord:
    case PolicyKind::kLardBundle:
    case PolicyKind::kLardDistribution:
    case PolicyKind::kLardPrefetchNav:
    case PolicyKind::kPrordNoReplication:
      return true;
    default:
      return false;
  }
}

namespace {

policies::PrordOptions ablation_options(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrord:
      return policies::prord_full_options();
    case PolicyKind::kLardBundle:
      return policies::lard_bundle_options();
    case PolicyKind::kLardDistribution:
      return policies::lard_distribution_options();
    case PolicyKind::kLardPrefetchNav:
      return policies::lard_prefetch_nav_options();
    case PolicyKind::kPrordNoReplication:
      return policies::prord_no_replication_options();
    default:
      throw std::logic_error("ablation_options: not a PRORD-family policy");
  }
}

std::unique_ptr<policies::DistributionPolicy> make_policy(
    const ExperimentConfig& config,
    std::shared_ptr<logmining::MiningModel> model,
    const trace::FileTable& files, double time_scale) {
  // All wall-clock-denominated policy timers compress with the arrivals.
  auto lard = config.lard;
  lard.replica_ttl = std::max<sim::SimTime>(
      sim::msec(1), static_cast<sim::SimTime>(
                        static_cast<double>(lard.replica_ttl) / time_scale));
  switch (config.policy) {
    case PolicyKind::kWrr:
      return std::make_unique<policies::WeightedRoundRobin>();
    case PolicyKind::kLard:
      return std::make_unique<policies::Lard>(lard);
    case PolicyKind::kLardReplicated: {
      auto opts = lard;
      opts.replication = true;
      return std::make_unique<policies::Lard>(opts);
    }
    case PolicyKind::kExtLardPhttp:
      return std::make_unique<policies::ExtLardPhttp>(lard);
    case PolicyKind::kPress:
      return std::make_unique<policies::Press>();
    default: {
      auto opts = ablation_options(config.policy);
      opts.lard = lard;
      opts.prefetch_threshold = config.prefetch_threshold;
      opts.adaptive_threshold = config.adaptive_threshold;
      // Algorithm 3's period is wall-clock; compress it with the arrivals
      // so a saturation run still sees periodic replication rounds.
      opts.replication_interval = std::max<sim::SimTime>(
          sim::msec(1), static_cast<sim::SimTime>(
                            static_cast<double>(config.replication_interval) /
                            time_scale));
      return std::make_unique<policies::Prord>(std::move(model), files,
                                               std::move(opts));
    }
  }
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // 1-2. Evaluation and training traces over the same site.
  const trace::SiteModel site = trace::build_site(config.workload.site);
  const trace::GeneratedTrace eval_trace =
      trace::generate_trace(site, config.workload.gen);

  auto train_gen = config.workload.gen;
  train_gen.seed += config.train_seed_offset;
  const trace::GeneratedTrace train_trace =
      trace::generate_trace(site, train_gen);

  trace::Workload train = trace::build_workload(train_trace.records);
  trace::Workload eval = trace::build_workload(eval_trace.records, {},
                                               train.files);

  // 3. Offline mining pass (only billed to policies that use it).
  std::shared_ptr<logmining::MiningModel> model;
  if (policy_uses_mining(config.policy)) {
    auto mining = config.mining;
    mining.prefetch_threshold = config.prefetch_threshold;
    model = std::make_shared<logmining::MiningModel>(train.requests, mining);
  }

  // 4. Cache sizing. memory_fraction is the *cluster-aggregate* share of
  // the website that fits in memory ("about 30% of the website's data can
  // be accommodated in the backend servers' memory"), split evenly across
  // back-ends. The basis is the full site footprint, not just the files a
  // (possibly scaled-down) trace happens to touch.
  const std::uint64_t site_bytes = site.total_bytes();
  std::uint64_t capacity =
      config.memory_fraction > 0
          ? static_cast<std::uint64_t>(config.memory_fraction *
                                       static_cast<double>(site_bytes) /
                                       config.params.num_backends)
          : config.params.app_memory_bytes;
  capacity = std::max<std::uint64_t>(capacity, 64 * 1024);
  std::uint64_t pinned = 0;
  if (policy_uses_mining(config.policy)) {
    pinned = static_cast<std::uint64_t>(config.pinned_fraction *
                                        static_cast<double>(capacity));
    pinned = std::min(pinned, config.params.pinned_memory_bytes);
  }
  const std::uint64_t demand = capacity - pinned;

  // 5. Assemble and run.
  double time_scale = config.time_scale;
  if (time_scale <= 0) {
    const double natural_span = sim::to_seconds(eval.span());
    const double natural_rps =
        natural_span > 0
            ? static_cast<double>(eval.requests.size()) / natural_span
            : 1.0;
    time_scale = std::max(1.0, config.target_offered_rps / natural_rps);
  }

  sim::Simulator simulator;
  cluster::Cluster cl(simulator, config.params, demand, pinned);
  auto policy = make_policy(config, model, eval.files, time_scale);

  PlayerOptions player_opts;
  player_opts.time_scale = time_scale;

  if (config.warmup) {
    // Warm-up gets no observability hooks: only the measured run is traced
    // and sampled, and metric collection happens after it.
    play_workload(simulator, cl, *policy, train, player_opts);
    cl.reset_accounting();
    policy->reset_counters();
  }

  obs::Tracer tracer(config.obs.trace_sample_rate);
  obs::Sampler sampler(config.obs.sample_interval);
  if (config.obs.sample_interval > 0) register_cluster_probes(sampler, cl);
  if (tracer.enabled()) player_opts.tracer = &tracer;
  if (config.obs.sample_interval > 0) player_opts.sampler = &sampler;

  // Fault injection hits only the measured run (the warm-up above played
  // on a healthy cluster). Fault times, the detector heartbeat and the
  // client back-off are trace wall-clock quantities — compress them with
  // the arrivals, exactly like replication_interval.
  std::unique_ptr<faults::FaultInjector> injector;
  if (config.faults.any()) {
    faults::FaultPlan plan =
        !config.faults.plan.empty()
            ? faults::parse_fault_plan(config.faults.plan)
            : faults::sample_fault_plan(config.faults.model,
                                        config.params.num_backends,
                                        eval.span());
    plan = plan.scaled(time_scale);
    faults::FaultSessionOptions fault_opts;
    fault_opts.heartbeat_interval = std::max<sim::SimTime>(
        sim::msec(1),
        static_cast<sim::SimTime>(
            static_cast<double>(config.faults.heartbeat_interval) /
            time_scale));
    fault_opts.rewarm_target_fraction = config.faults.rewarm_target_fraction;
    faults::FaultHooks hooks;
    auto* policy_ptr = policy.get();
    auto* cluster_ptr = &cl;
    hooks.server_down = [policy_ptr, cluster_ptr](cluster::ServerId s) {
      policy_ptr->on_server_down(s, *cluster_ptr);
    };
    hooks.server_up = [policy_ptr, cluster_ptr](cluster::ServerId s) {
      policy_ptr->on_server_up(s, *cluster_ptr);
    };
    injector = std::make_unique<faults::FaultInjector>(
        simulator, cl, std::move(plan), fault_opts, std::move(hooks));
    player_opts.max_retries = config.faults.max_retries;
    player_opts.retry_backoff = std::max<sim::SimTime>(
        sim::usec(10),
        static_cast<sim::SimTime>(
            static_cast<double>(config.faults.retry_backoff) / time_scale));
    auto* injector_ptr = injector.get();
    player_opts.on_drain = [injector_ptr] { injector_ptr->finish(); };
    injector->start();
  }

  RunMetrics metrics = play_workload(simulator, cl, *policy, eval,
                                     player_opts);
  if (injector) injector->finish();  // idempotent; covers abnormal drains

  // 6. Package.
  ExperimentResult result;
  result.policy = std::string(policy->name());
  result.workload = config.workload.name;
  result.metrics = std::move(metrics);
  result.site_bytes = site_bytes;
  result.cache_bytes = capacity;
  result.time_scale = time_scale;
  result.num_requests = eval.requests.size();
  result.num_files = eval.files.count();
  if (const auto* prord = dynamic_cast<const policies::Prord*>(policy.get())) {
    result.bundle_forwards = prord->bundle_forwards();
    result.prefetches_triggered = prord->prefetches_triggered();
    result.replicas_pushed = prord->replicas_pushed();
    result.rewarm_pushes = prord->rewarm_pushes();
  }
  if (injector) {
    result.fault_stats = injector->stats();
    result.rewarms = injector->rewarms();
  }
  if (config.obs.metrics) {
    collect_run_metrics(result.registry, result.policy, result.metrics, cl,
                        *policy);
    if (injector)
      collect_fault_metrics(result.registry, result.policy,
                            result.fault_stats, result.metrics);
  }
  result.series = sampler.take_series();
  result.spans = tracer.take_spans();
  return result;
}

}  // namespace prord::core
