// Workload player: drives a request trace through the cluster under a
// distribution policy and collects the paper's metrics.
//
// Timing model:
//   - Arrivals are the trace timestamps compressed by `time_scale` (>1
//     speeds the trace up to put the cluster under load — the paper's
//     throughput numbers are saturation throughputs).
//   - HTTP/1.1 semantics: requests of one persistent connection are
//     serialized — request i+1 is issued at max(scaled trace time,
//     completion of request i). Across connections the system is open.
//   - Front-end cost per request: analyze + (dispatch lookup if the policy
//     contacted the dispatcher) + (TCP handoff work if the connection was
//     (re)handed off). All of it occupies the single distributor CPU —
//     this is the front-end bottleneck Section 4.2 talks about.
//   - Back-end forwarding (Ext-LARD-PHTTP): the target back-end serves the
//     request; the connection's home back-end additionally spends relay
//     CPU, and the response takes an extra interconnect hop.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "obs/metric_batch.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "obs/tracer.h"
#include "policies/policy.h"
#include "simcore/simulator.h"
#include "trace/workload.h"

namespace prord::core {

/// Handles into a MetricBatch mirroring the player's per-request counters.
/// When `batch` is set, every counter bump the player records into
/// RunMetrics is also added to the batch (one array add per bump); the
/// experiment layer then exports the batch-owned series instead of
/// re-deriving them from RunMetrics at run end. See docs/PERF.md.
struct PlayerCounterHandles {
  obs::MetricBatch* batch = nullptr;  ///< borrowed; null disables mirroring
  obs::MetricBatch::Handle completed = 0;
  obs::MetricBatch::Handle failed = 0;
  obs::MetricBatch::Handle retried = 0;
  obs::MetricBatch::Handle redispatched = 0;
  obs::MetricBatch::Handle dispatched = 0;
  obs::MetricBatch::Handle handoffs = 0;
  obs::MetricBatch::Handle forwards = 0;
  std::array<obs::MetricBatch::Handle, obs::kNumRouteVia> routed_via{};
};

struct PlayerOptions {
  double time_scale = 1.0;  ///< arrival compression factor (>= 1 speeds up)
  /// Open-loop mode: issue every request at its (scaled) trace time even
  /// if the previous response on the same connection has not returned.
  /// Breaks HTTP/1.1 semantics, but isolates how much of a measured
  /// difference comes from closed-loop self-throttling — a methodology
  /// ablation, not a production mode.
  bool open_loop = false;
  /// When > 0, sample a timeline point every `sample_interval` of
  /// simulated time (completions in the window, mean per-server load).
  sim::SimTime sample_interval = 0;
  /// Request-lifecycle tracer: when set and enabled, one RequestSpan per
  /// (sampled) request is recorded at completion. Borrowed, may be null.
  obs::Tracer* tracer = nullptr;
  /// Gauge sampler: when set with a non-zero interval, the player drives
  /// sampler->sample(now) on that simulated-time cadence while the run is
  /// live (same re-arming discipline as the timeline probe, so a drained
  /// event set is never kept alive). Borrowed, may be null.
  obs::Sampler* sampler = nullptr;

  // --- Fault-injection runs (docs/FAULTS.md).
  /// Attempts after a failed request. 0 keeps the legacy contract: a
  /// failure is terminal and a policy returning no server is a logic
  /// error. With retries, the client re-routes after a back-off; the run
  /// ends when completed + failed == issued (conservation).
  std::uint32_t max_retries = 0;
  /// Client back-off before attempt n+1 (linear: backoff * attempt).
  sim::SimTime retry_backoff = sim::msec(100);
  /// Fired once when the run drains (completed + failed == issued), after
  /// policy finish. Fault harnesses stop their heartbeat here so the
  /// event set can empty.
  std::function<void()> on_drain;

  /// Workload phase starts in *trace* time (ascending, typically starting
  /// at 0). Non-empty enables per-phase accounting: each request is
  /// attributed to the phase containing its trace timestamp, so drifting
  /// workloads (trace::DriftSpec) can be reported phase by phase.
  /// Accounting only — never perturbs the event schedule.
  std::vector<sim::SimTime> phase_starts;

  /// Batched hot-path counters (optional; see PlayerCounterHandles).
  /// Pending deltas are flushed every `counter_flush_interval` of
  /// simulated time, piggybacking on completion callbacks — the flush
  /// never schedules events, so enabling batching cannot perturb the
  /// simulation. The player flushes again at drain and play_workload()
  /// flushes once more after the event set empties, so no tail is lost.
  PlayerCounterHandles counters{};
  sim::SimTime counter_flush_interval = sim::msec(250);
};

/// Per-workload-phase accounting (PlayerOptions::phase_starts).
struct PhaseStats {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;  ///< served with the file already resident
  metrics::RunningStats response_time_us;
  sim::SimTime first_issue = 0;
  sim::SimTime last_completion = 0;

  double hit_rate() const {
    return completed ? static_cast<double>(cache_hits) /
                           static_cast<double>(completed)
                     : 0.0;
  }
  double throughput_rps() const {
    const double span = sim::to_seconds(last_completion - first_issue);
    return span > 0 ? static_cast<double>(completed) / span : 0.0;
  }
};

/// One timeline sample (throughput-over-time style reporting).
struct TimelineSample {
  sim::SimTime at = 0;              ///< end of the sampling window
  std::uint64_t completed = 0;      ///< completions inside the window
  double mean_load = 0.0;           ///< mean open requests per back-end
  std::uint32_t max_load = 0;       ///< hottest back-end's open requests
};

struct RunMetrics {
  std::uint64_t completed = 0;
  /// Fault runs: requests that exhausted every retry. Conservation:
  /// completed + failed == issued always holds at run end.
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;       ///< re-issue attempts after failures
  std::uint64_t redispatches = 0;  ///< retries routed away from the failure
  std::uint64_t dispatches = 0;   ///< dispatcher contacts (Fig. 6)
  std::uint64_t handoffs = 0;     ///< TCP handoffs performed
  std::uint64_t forwards = 0;     ///< back-end-forwarded requests
  sim::SimTime first_issue = 0;
  sim::SimTime last_completion = 0;
  metrics::RunningStats response_time_us;
  metrics::Histogram response_hist{1ULL << 36};
  cluster::CacheStats cache;      ///< aggregated over back-ends
  std::vector<std::uint64_t> per_server_served;
  std::vector<sim::SimTime> per_server_disk_busy;
  std::vector<sim::SimTime> per_server_cpu_busy;
  std::uint64_t disk_reads = 0;        ///< unique disk fetches (all servers)
  std::uint64_t prefetch_reads = 0;    ///< disk fetches initiated by prefetch
  /// Requests routed per mechanism, indexed by obs::RouteVia (how often
  /// the bundle/prefetch/replica shortcuts actually fired).
  std::array<std::uint64_t, obs::kNumRouteVia> routes_via{};
  sim::SimTime frontend_busy = 0;
  sim::SimTime interconnect_busy = 0;
  double energy_full_power_seconds = 0.0;
  std::vector<TimelineSample> timeline;  ///< empty unless sampling enabled
  /// One entry per workload phase; empty unless phase_starts was set.
  std::vector<PhaseStats> phases;

  /// Requests per second of simulated time (the paper's throughput).
  /// `completed` counts successes only, so under faults this is goodput.
  double throughput_rps() const {
    const double span = sim::to_seconds(last_completion - first_issue);
    return span > 0 ? static_cast<double>(completed) / span : 0.0;
  }
  double mean_response_ms() const { return response_time_us.mean() / 1000.0; }
  /// Fraction of issued requests that eventually succeeded.
  double success_ratio() const {
    const auto total = completed + failed;
    return total ? static_cast<double>(completed) / static_cast<double>(total)
                 : 1.0;
  }
};

/// Plays `workload` through `cluster` under `policy`. Runs the simulation
/// to completion and returns the metrics. The cluster and policy must
/// outlive the call; the simulator must be the one the cluster was built
/// on.
RunMetrics play_workload(sim::Simulator& sim, cluster::Cluster& cluster,
                         policies::DistributionPolicy& policy,
                         const trace::Workload& workload,
                         const PlayerOptions& options = {});

}  // namespace prord::core
