#include "core/routing_core.h"

namespace prord::core {

RoutedRequest RoutingCore::route(const trace::Request& req) {
  auto& conn = conn_state_[req.conn];

  policies::RouteContext ctx{req, conn};
  RoutedRequest out;
  out.decision = policy_.route(ctx, cluster_);
  if (out.decision.server == cluster::kNoServer ||
      out.decision.server >= cluster_.size()) {
    // Nothing routable (every back-end believed down). Commit nothing —
    // the driver owns retry/back-off.
    return out;
  }
  out.valid = true;

  // --- The commit. Order matters: policies already saw the connection
  // state *before* this request (route() above); everything below is the
  // post-decision mutation the parity test pins.
  out.new_connection = (conn.requests == 0);
  out.home = conn.server;

  if (out.decision.contacted_dispatcher) ++dispatches_;
  if (out.decision.handoff) {
    ++handoffs_;
    conn.server = out.decision.server;
  }
  if (out.decision.forwarded) ++forwards_;
  ++conn.requests;
  ++routed_;
  ++routes_via_[static_cast<std::size_t>(out.decision.via)];

  // Track navigation history for policies that read it (main pages only;
  // bounded so long-lived live connections cannot grow without limit).
  if (!req.is_embedded) {
    conn.history.push_back(req.file);
    if (conn.history.size() > 16) conn.history.erase(conn.history.begin());
  }
  return out;
}

void RoutingCore::unstick(std::uint32_t conn, policies::ServerId failed) {
  auto it = conn_state_.find(conn);
  if (it != conn_state_.end() && it->second.server == failed)
    it->second.server = cluster::kNoServer;
}

}  // namespace prord::core
