#include "core/workload_player.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "core/routing_core.h"
#include "util/pool.h"

namespace prord::core {
namespace {

/// Everything a request attempt's event chain needs, pooled. The serve
/// pipeline's closures capture {player, record} — 16 bytes — instead of a
/// dozen loose values, which keeps every hot closure inside the event
/// queue's inline buffer. The record lives from route commit to the
/// completion callback and is released exactly once, there.
struct InFlight {
  std::uint32_t request_index = 0;
  std::uint32_t conn = 0;
  std::uint32_t attempt = 0;
  policies::ServerId server = cluster::kNoServer;
  policies::ServerId home = cluster::kNoServer;
  policies::ServerId fetch_from = cluster::kNoServer;
  obs::RouteVia via = obs::RouteVia::kDispatcher;
  bool contacted_dispatcher = false;
  bool handoff = false;
  bool forwarded = false;
  bool traced = false;
  bool resident = false;
  sim::SimTime extra = 0;      ///< pre-service latency charged at the back-end
  sim::SimTime issued_at = 0;  ///< first attempt's issue time
  sim::SimTime handed = 0;     ///< when the front-end handed it off
};

/// Whole-run state shared by the event closures.
struct PlayerState {
  sim::Simulator& sim;
  cluster::Cluster& cluster;
  policies::DistributionPolicy& policy;
  const trace::Workload& workload;
  PlayerOptions options;

  // Per-connection request lists in CSR form: connection c's request
  // indices are conn_reqs[conn_offset[c] .. conn_offset[c+1]); conn_pos is
  // the progress cursor. Connection ids are dense (the sessionizer interns
  // them), so flat arrays replace the per-request hash probes.
  std::vector<std::uint32_t> conn_offset{};
  std::vector<std::uint32_t> conn_reqs{};
  std::vector<std::uint32_t> conn_pos{};
  // Kickoff enumeration for closed-loop mode. Deliberately an
  // unordered_map built with the same key-insertion sequence as the
  // original per-connection map: the hash iteration order decides the
  // scheduling sequence (and thus event seq numbers) of same-timestamp
  // kickoffs, and byte-identical tables require reproducing it exactly.
  std::unordered_map<std::uint32_t, std::uint32_t> kickoff{};

  util::FixedPool<InFlight> inflight_pool{1024};

  // The decision-commit engine shared with the live distributor
  // (src/net/): owns per-connection routing state.
  RoutingCore routing{cluster, policy};

  RunMetrics metrics{};
  bool first_issue_seen = false;
  sim::SimTime base = 0;        ///< sim time when this play started
  sim::SimTime next_flush = 0;  ///< next batched-counter flush time

  sim::SimTime scaled(sim::SimTime t) const {
    // External logs rebased on their first *parsed* record can carry small
    // negative offsets after sorting; clamp into the playable horizon.
    const auto offset = static_cast<sim::SimTime>(static_cast<double>(t) /
                                                  options.time_scale);
    return base + std::max<sim::SimTime>(0, offset);
  }

  /// completed + failed: every issued request ends in exactly one bucket.
  std::uint64_t settled() const {
    return metrics.completed + metrics.failed;
  }

  /// Mirrors a RunMetrics counter bump into the batch, when attached.
  void count(obs::MetricBatch::Handle h) {
    if (options.counters.batch) options.counters.batch->add(h);
  }

  /// Epoch flush for the batched counters. Piggybacks on settle callbacks
  /// (never schedules an event, so the dispatch count stays untouched).
  void tick_counters() {
    auto* b = options.counters.batch;
    if (!b || options.counter_flush_interval <= 0) return;
    if (sim.now() < next_flush) return;
    b->flush();
    next_flush = sim.now() + options.counter_flush_interval;
  }

  /// Per-phase accounting: attribute a settled request to the workload
  /// phase containing its *trace* timestamp (pure bookkeeping — the event
  /// schedule is untouched, so enabling phases never changes results).
  void account_phase(sim::SimTime trace_at, sim::SimTime issued_at,
                     sim::SimTime completion, bool ok, bool resident,
                     double response_us) {
    if (metrics.phases.empty()) return;
    const auto& starts = options.phase_starts;
    auto it = std::upper_bound(starts.begin(), starts.end(), trace_at);
    const std::size_t idx =
        it == starts.begin()
            ? 0
            : static_cast<std::size_t>(it - starts.begin()) - 1;
    PhaseStats& p = metrics.phases[idx];
    const bool first = (p.completed + p.failed) == 0;
    if (ok) {
      ++p.completed;
      if (resident) ++p.cache_hits;
      p.response_time_us.add(response_us);
    } else {
      ++p.failed;
    }
    p.first_issue = first ? issued_at : std::min(p.first_issue, issued_at);
    p.last_completion = std::max(p.last_completion, completion);
  }

  /// Ends the run once every request has settled: cancel policy periodic
  /// work, then tell the fault harness (if any) to stop its heartbeat.
  void maybe_finish() {
    tick_counters();
    if (settled() != workload.requests.size()) return;
    if (options.counters.batch) options.counters.batch->flush();
    policy.finish(cluster);
    if (options.on_drain) options.on_drain();
  }

  void issue(std::size_t request_index);
  void issue_attempt(std::size_t request_index, std::uint32_t attempt,
                     policies::ServerId failed_on, sim::SimTime first_issued);
  void issue_next_of_conn(std::uint32_t conn, sim::SimTime not_before);
  void hand_to_backend(InFlight* rec);
  void begin_service(InFlight* rec);
  void complete(InFlight* rec, sim::SimTime completion, bool ok);
};

void PlayerState::issue_next_of_conn(std::uint32_t conn,
                                     sim::SimTime not_before) {
  if (options.open_loop) return;  // everything was scheduled up front
  std::uint32_t& pos = conn_pos[conn];
  if (pos >= conn_offset[conn + 1]) return;
  const std::size_t idx = conn_reqs[pos];
  ++pos;
  const sim::SimTime at =
      std::max(not_before, scaled(workload.requests[idx].at));
  sim.schedule_at(std::max(at, sim.now()), [this, idx] { issue(idx); });
}

void PlayerState::issue(std::size_t request_index) {
  issue_attempt(request_index, 0, cluster::kNoServer, sim.now());
}

void PlayerState::issue_attempt(std::size_t request_index,
                                std::uint32_t attempt,
                                policies::ServerId failed_on,
                                sim::SimTime first_issued) {
  const trace::Request& req = workload.requests[request_index];

  if (!first_issue_seen) {
    metrics.first_issue = sim.now();
    first_issue_seen = true;
  }
  const sim::SimTime issued_at = first_issued;

  const RoutedRequest routed = routing.route(req);
  const auto& decision = routed.decision;
  if (!routed.valid) {
    if (options.max_retries == 0)
      throw std::logic_error("policy returned invalid server");
    // Nothing routable (every back-end believed down). The client burns
    // the connect timeout; then either backs off and retries or gives up.
    const sim::SimTime at = sim.now() + cluster.params().failure_timeout;
    if (attempt < options.max_retries) {
      ++metrics.retries;
      count(options.counters.retried);
      const sim::SimTime backoff =
          options.retry_backoff * static_cast<sim::SimTime>(attempt + 1);
      sim.schedule_at(at + backoff,
                      [this, request_index, attempt, failed_on,
                       first_issued] {
                        issue_attempt(request_index, attempt + 1, failed_on,
                                      first_issued);
                      });
      return;
    }
    ++metrics.failed;
    count(options.counters.failed);
    metrics.last_completion = std::max(metrics.last_completion, at);
    account_phase(req.at, issued_at, at, /*ok=*/false, /*resident=*/false,
                  0.0);
    if (options.tracer && options.tracer->sampled(request_index)) {
      obs::RequestSpan span;
      span.request = request_index;
      span.conn = req.conn;
      span.file = req.file;
      span.bytes = req.bytes;
      span.arrival = issued_at;
      span.backend_start = at;
      span.completion = at;
      span.failed = true;
      span.attempts = attempt + 1;
      span.dynamic = req.is_dynamic;
      span.embedded = req.is_embedded;
      options.tracer->record(span);
    }
    maybe_finish();
    issue_next_of_conn(req.conn, at);
    return;
  }
  if (attempt > 0 && failed_on != cluster::kNoServer &&
      decision.server != failed_on) {
    ++metrics.redispatches;
    count(options.counters.redispatched);
  }

  const auto& params = cluster.params();

  // Front-end distributor CPU work for this request.
  sim::SimTime fe_service = params.fe_analyze;
  if (decision.contacted_dispatcher) {
    fe_service += params.fe_dispatch;
    ++metrics.dispatches;
    count(options.counters.dispatched);
  }
  if (decision.handoff) fe_service += params.fe_handoff_cpu;

  // Extra pre-service latency charged at the back-end (the handoff's
  // kernel-level state transfer adds Table 1's 200 µs on top of the
  // distributor CPU above). The connection-state mutations themselves
  // (handoff commit, request count, history) happened inside
  // RoutingCore::route — this block only charges their costs.
  sim::SimTime extra = 0;
  if (routed.new_connection) extra += params.connection_latency;
  if (decision.handoff) {
    extra += params.tcp_handoff;
    ++metrics.handoffs;
    count(options.counters.handoffs);
  }

  const policies::ServerId home = routed.home;
  if (decision.forwarded) {
    ++metrics.forwards;
    count(options.counters.forwards);
    extra += 2 * params.net_latency;  // request hop + response hop setup
  }
  ++metrics.routes_via[static_cast<std::size_t>(decision.via)];
  count(options.counters.routed_via[static_cast<std::size_t>(decision.via)]);
  const bool traced =
      options.tracer && options.tracer->sampled(request_index);

  // With several distributors (decentralized architecture [4]) the L4
  // switch pins each connection to one of them; a remote distributor pays
  // a network round trip per dispatcher contact.
  const std::uint32_t conn_id = req.conn;
  const std::uint32_t fe = conn_id % cluster.num_frontends();
  if (decision.contacted_dispatcher && cluster.num_frontends() > 1)
    extra += 2 * params.net_latency;

  InFlight* rec = inflight_pool.acquire();
  rec->request_index = static_cast<std::uint32_t>(request_index);
  rec->conn = conn_id;
  rec->attempt = attempt;
  rec->server = decision.server;
  rec->home = home;
  rec->fetch_from = decision.fetch_from;
  rec->via = decision.via;
  rec->contacted_dispatcher = decision.contacted_dispatcher;
  rec->handoff = decision.handoff;
  rec->forwarded = decision.forwarded;
  rec->traced = traced;
  rec->extra = extra;
  rec->issued_at = issued_at;

  cluster.frontend_cpu(fe).submit(sim, fe_service,
                                  [this, rec] { hand_to_backend(rec); });
}

void PlayerState::hand_to_backend(InFlight* rec) {
  const trace::Request& r = workload.requests[rec->request_index];
  rec->handed = sim.now();

  if (rec->forwarded && rec->home != cluster::kNoServer) {
    // The response crosses the switched interconnect (queueing on the home
    // back-end's NIC) and the home back-end spends relay CPU pushing it to
    // the client socket.
    cluster.backend(rec->home).relay(r.bytes);
    cluster.backend(rec->home).nic().submit(
        sim, cluster.transfer_time(r.bytes),
        [this, rec] { begin_service(rec); });
  } else {
    begin_service(rec);
  }
  routing.notify_routed(r, rec->server);
}

void PlayerState::begin_service(InFlight* rec) {
  const trace::Request& rq = workload.requests[rec->request_index];
  rec->resident =
      !rq.is_dynamic && cluster.backend(rec->server).caches(rq.file);
  auto on_done = [this, rec](sim::SimTime completion, bool ok) {
    complete(rec, completion, ok);
  };
  if (rec->fetch_from != cluster::kNoServer &&
      rec->fetch_from < cluster.size() && !rq.is_dynamic) {
    cluster.backend(rec->server)
        .serve_cooperative(rq.file, rq.bytes, rec->extra,
                           &cluster.backend(rec->fetch_from),
                           std::move(on_done));
  } else {
    cluster.backend(rec->server)
        .serve(rq.file, rq.bytes, rec->extra, std::move(on_done),
               rq.is_dynamic);
  }
}

void PlayerState::complete(InFlight* rec, sim::SimTime completion, bool ok) {
  const trace::Request& rr = workload.requests[rec->request_index];
  metrics.last_completion = std::max(metrics.last_completion, completion);

  if (!ok) {
    // The request died with its server. Unstick the connection so the
    // next attempt routes fresh.
    routing.unstick(rec->conn, rec->server);
    if (rec->attempt < options.max_retries) {
      ++metrics.retries;
      count(options.counters.retried);
      const sim::SimTime backoff =
          options.retry_backoff * static_cast<sim::SimTime>(rec->attempt + 1);
      const std::size_t request_index = rec->request_index;
      const std::uint32_t attempt = rec->attempt;
      const auto failed_server = rec->server;
      const sim::SimTime issued_at = rec->issued_at;
      inflight_pool.release(rec);
      sim.schedule_at(completion + backoff,
                      [this, request_index, attempt, failed_server,
                       issued_at] {
                        issue_attempt(request_index, attempt + 1,
                                      failed_server, issued_at);
                      });
      return;
    }
    ++metrics.failed;
    count(options.counters.failed);
    account_phase(rr.at, rec->issued_at, completion, /*ok=*/false,
                  /*resident=*/false, 0.0);
    if (rec->traced) {
      obs::RequestSpan span;
      span.request = rec->request_index;
      span.conn = rec->conn;
      span.file = rr.file;
      span.bytes = rr.bytes;
      span.server = rec->server;
      span.home = rec->home;
      span.arrival = rec->issued_at;
      span.backend_start = rec->handed;
      span.completion = completion;
      span.via = rec->via;
      span.contacted_dispatcher = rec->contacted_dispatcher;
      span.handoff = rec->handoff;
      span.forwarded = rec->forwarded;
      span.cache_resident = rec->resident;
      span.dynamic = rr.is_dynamic;
      span.embedded = rr.is_embedded;
      span.failed = true;
      span.attempts = rec->attempt + 1;
      options.tracer->record(span);
    }
    const std::uint32_t conn = rec->conn;
    inflight_pool.release(rec);
    maybe_finish();
    issue_next_of_conn(conn, completion);
    return;
  }

  ++metrics.completed;
  count(options.counters.completed);
  const auto rt = static_cast<double>(completion - rec->issued_at);
  metrics.response_time_us.add(rt);
  metrics.response_hist.record(static_cast<std::uint64_t>(rt));
  account_phase(rr.at, rec->issued_at, completion, /*ok=*/true, rec->resident,
                rt);
  if (rec->traced) {
    obs::RequestSpan span;
    span.request = rec->request_index;
    span.conn = rec->conn;
    span.file = rr.file;
    span.bytes = rr.bytes;
    span.server = rec->server;
    span.home = rec->home;
    span.arrival = rec->issued_at;
    span.backend_start = rec->handed;
    span.completion = completion;
    span.via = rec->via;
    span.contacted_dispatcher = rec->contacted_dispatcher;
    span.handoff = rec->handoff;
    span.forwarded = rec->forwarded;
    span.cache_resident = rec->resident;
    span.dynamic = rr.is_dynamic;
    span.embedded = rr.is_embedded;
    span.attempts = rec->attempt + 1;
    options.tracer->record(span);
  }
  routing.notify_complete(rr, rec->server);
  const std::uint32_t conn = rec->conn;
  inflight_pool.release(rec);
  maybe_finish();
  issue_next_of_conn(conn, completion);
}

}  // namespace

RunMetrics play_workload(sim::Simulator& sim, cluster::Cluster& cluster,
                         policies::DistributionPolicy& policy,
                         const trace::Workload& workload,
                         const PlayerOptions& options) {
  if (options.time_scale <= 0)
    throw std::invalid_argument("play_workload: time_scale must be > 0");
  PlayerState state{sim, cluster, policy, workload, options};
  state.base = sim.now();

  // Per-connection CSR tables (ids are dense): counts -> offsets -> fill.
  const std::size_t n = workload.requests.size();
  std::uint32_t num_conns = 0;
  for (const auto& r : workload.requests)
    num_conns = std::max(num_conns, r.conn + 1);
  state.conn_offset.assign(num_conns + 1, 0);
  for (const auto& r : workload.requests) ++state.conn_offset[r.conn + 1];
  for (std::uint32_t c = 0; c < num_conns; ++c)
    state.conn_offset[c + 1] += state.conn_offset[c];
  state.conn_reqs.resize(n);
  state.conn_pos.assign(state.conn_offset.begin(),
                        state.conn_offset.end() - (num_conns ? 1 : 0));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t conn = workload.requests[i].conn;
    state.conn_reqs[state.conn_pos[conn]++] = static_cast<std::uint32_t>(i);
    state.kickoff.emplace(conn, static_cast<std::uint32_t>(i));
  }
  state.conn_pos.assign(state.conn_offset.begin(),
                        state.conn_offset.end() - (num_conns ? 1 : 0));
  state.metrics.phases.resize(options.phase_starts.size());

  policy.start(cluster);

  // Timeline sampling: a self-rescheduling probe that stops once the run
  // drains (it only re-arms while requests are outstanding or pending).
  std::uint64_t completed_at_last_sample = 0;
  std::function<void()> sample = [&] {
    TimelineSample s;
    s.at = sim.now();
    s.completed = state.metrics.completed - completed_at_last_sample;
    completed_at_last_sample = state.metrics.completed;
    double total = 0;
    for (std::uint32_t id = 0; id < cluster.size(); ++id) {
      const auto load = cluster.backend(id).load();
      total += load;
      s.max_load = std::max(s.max_load, load);
    }
    s.mean_load = total / cluster.size();
    state.metrics.timeline.push_back(s);
    if (state.settled() < workload.requests.size())
      sim.schedule(options.sample_interval, sample);
  };
  if (options.sample_interval > 0 && !workload.requests.empty())
    sim.schedule(options.sample_interval, sample);

  // Gauge sampler: same self-rescheduling discipline on its own cadence.
  std::function<void()> obs_sample = [&] {
    options.sampler->sample(sim.now());
    if (state.settled() < workload.requests.size())
      sim.schedule(options.sampler->interval(), obs_sample);
  };
  if (options.sampler && options.sampler->interval() > 0 &&
      !workload.requests.empty())
    sim.schedule(options.sampler->interval(), obs_sample);

  if (options.open_loop) {
    // Every request fires at its own scaled trace time.
    for (std::size_t i = 0; i < workload.requests.size(); ++i)
      sim.schedule_at(state.scaled(workload.requests[i].at),
                      [&state, i] { state.issue(i); });
  } else {
    // Kick off the first request of every connection at its scaled time;
    // completions chain the rest (HTTP/1.1 serialization).
    for (auto& [conn, first] : state.kickoff) {
      state.conn_pos[conn] = state.conn_offset[conn] + 1;
      const std::size_t fi = first;
      const sim::SimTime at = state.scaled(workload.requests[fi].at);
      sim.schedule_at(at, [&state, fi] { state.issue(fi); });
    }
  }

  sim.run();

  // Tail flush: deltas accumulated after the last epoch boundary (or the
  // whole run, if the interval never elapsed).
  if (state.options.counters.batch) state.options.counters.batch->flush();

  // Gather back-end aggregates.
  auto& m = state.metrics;
  m.per_server_served.resize(cluster.size());
  m.per_server_disk_busy.resize(cluster.size());
  m.per_server_cpu_busy.resize(cluster.size());
  for (std::uint32_t s = 0; s < cluster.size(); ++s) {
    const auto& be = cluster.backend(s);
    m.per_server_served[s] = be.stats().requests_served;
    m.per_server_disk_busy[s] = be.disk().busy_time();
    m.per_server_cpu_busy[s] = be.cpu().busy_time();
    m.disk_reads += be.stats().disk_reads;
    m.prefetch_reads += be.stats().prefetches_issued;
    m.cache.hits += be.cache().stats().hits;
    m.cache.misses += be.cache().stats().misses;
    m.cache.demand_evictions += be.cache().stats().demand_evictions;
    m.cache.pinned_evictions += be.cache().stats().pinned_evictions;
    m.energy_full_power_seconds += be.energy(sim.now());
  }
  m.frontend_busy = cluster.frontend_busy();
  m.interconnect_busy = cluster.interconnect_busy();

  // Conservation: every issued request ends exactly once, as a success or
  // (in fault runs) a permanent failure.
  if (m.completed + m.failed != workload.requests.size())
    throw std::logic_error("play_workload: not all requests settled");
  return std::move(state.metrics);
}

}  // namespace prord::core
