// Bridge between the experiment engine and the observability layer.
//
// Three jobs:
//   1. collect_run_metrics: turn one finished run's accounting (driver
//      RunMetrics, back-end/cache/dispatcher stats, PRORD introspection)
//      into the named, label-tagged metric catalogue of
//      docs/OBSERVABILITY.md (~40 distinct metric names).
//   2. register_cluster_probes: attach the standard gauge probes (open
//      requests, cache occupancy, resource backlogs) to a Sampler.
//   3. export_observability: render per-cell artifacts across a whole
//      grid — Prometheus/CSV metrics, CSV time series, JSONL traces — in
//      cell/replication order, which is what makes the files byte-stable
//      at any --jobs count.
#pragma once

#include <string>
#include <vector>

#include "adapt/controller.h"
#include "core/parallel_runner.h"
#include "core/workload_player.h"
#include "faults/health_monitor.h"
#include "obs/metric_batch.h"
#include "obs/metric_registry.h"
#include "obs/sampler.h"

namespace prord::core {

/// Populates `reg` from one finished run. `policy_name` becomes the
/// `policy` label on every series. Per-back-end series carry a `backend`
/// label; route-mechanism counters a `via` label.
///
/// `skip_player_counters` omits the eight counter families the player now
/// owns through a MetricBatch (register_player_counters below): pass true
/// and merge batch.registry() instead — the exported bytes are identical
/// either way, since the registry renders from an ordered map.
void collect_run_metrics(obs::MetricRegistry& reg,
                         const std::string& policy_name, const RunMetrics& m,
                         cluster::Cluster& cluster,
                         const policies::DistributionPolicy& policy,
                         bool skip_player_counters = false);

/// Interns the player's per-request counter series (names, help strings
/// and label sets exactly as collect_run_metrics emits them) into `batch`
/// and returns the handle block the player increments through.
PlayerCounterHandles register_player_counters(obs::MetricBatch& batch,
                                              const std::string& policy_name);

/// Populates `reg` with the fault/recovery catalogue of one fault-injected
/// run: crash/restart/detection counters, detection-latency and downtime
/// gauges, re-warm episode accounting (docs/FAULTS.md).
void collect_fault_metrics(obs::MetricRegistry& reg,
                           const std::string& policy_name,
                           const faults::FaultStats& stats,
                           const RunMetrics& m);

/// Populates `reg` with the online-adaptation catalogue of one adaptive
/// run: re-mine/skip/trigger counters, epoch gauge, mining-thread busy
/// time, window sizes, and the drift monitor's final windowed hit-rate
/// and prefetch-waste gauges (docs/ADAPTATION.md).
void collect_adapt_metrics(obs::MetricRegistry& reg,
                           const std::string& policy_name,
                           const adapt::AdaptStats& stats);

/// Registers the standard cluster gauge probes (per-back-end open
/// requests, cache occupancy, CPU/disk backlog; dispatcher table size;
/// cluster mean load). `cluster` must outlive the sampler.
void register_cluster_probes(obs::Sampler& sampler,
                             cluster::Cluster& cluster);

/// CLI-facing export selection, shared by prord_sim and the benches.
struct ObsExportOptions {
  std::string metrics_out;  ///< "" = off, "-" = stdout; *.csv selects CSV
  std::string series_out;   ///< "" = off; gauge time-series CSV
  std::string trace_out;    ///< "" = off, "-" = stdout; span JSONL
  double trace_sample_rate = 1.0;              ///< share of requests traced
  sim::SimTime sample_interval = sim::msec(100);  ///< series cadence

  bool any() const noexcept {
    return !metrics_out.empty() || !series_out.empty() || !trace_out.empty();
  }
};

/// Per-run ObsOptions implied by the selected exports (metrics collection
/// only when requested, tracing only when a trace sink exists, ...).
ObsOptions to_obs_options(const ObsExportOptions& options);

/// Renderers (exposed for the determinism tests): output is a pure
/// function of the results, iterated in cell order then replication
/// order. Metrics from every cell are merged into one registry with
/// `cell` (and, when replications > 1, `rep`) labels appended.
std::string render_metrics(const std::vector<CellResult>& results, bool csv);
std::string render_series_csv(const std::vector<CellResult>& results);
std::string render_trace_jsonl(const std::vector<CellResult>& results);

/// Writes every requested artifact ('-' = stdout). Returns false if any
/// sink could not be opened (reported on stderr).
bool export_observability(const std::vector<CellResult>& results,
                          const ObsExportOptions& options);

}  // namespace prord::core
