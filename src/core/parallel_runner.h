// Deterministic parallel experiment engine.
//
// Fans independent ExperimentConfig cells (and N statistical replications
// per cell) across a pool of std::thread workers. The hard requirement
// inherited from Simulator's design — same seed -> same result tables —
// survives parallelism because nothing a worker computes depends on which
// thread ran it or when:
//
//   1. each (cell, replication) task's RNG seed is a pure function of
//      (base_seed, cell_index, replication) via a SplitMix64 hash chain,
//   2. every task writes into a pre-allocated slot addressed by its task
//      index — workers never share mutable simulation state (the library
//      itself holds no mutable globals; each run_experiment call builds
//      its own site, traces, cluster and policy),
//   3. aggregation and table rendering iterate slots in index order.
//
// A serial run (jobs = 1) and a parallel run of the same grid therefore
// produce byte-identical tables regardless of thread count or scheduling
// order. docs/PARALLEL_RUNNER.md spells out the full contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/table.h"

namespace prord::core {

/// Stateless SplitMix64 hash chain over (base_seed, cell_index,
/// replication). Each coordinate is folded in with its own odd multiplier
/// before a SplitMix64 finalization step, so flipping any coordinate
/// (including low bits of small indices) reseeds the whole stream.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_index,
                          std::uint64_t replication);

/// Deterministic parallel-for: runs fn(0..n-1) on `jobs` workers
/// (jobs == 0 -> hardware concurrency; jobs <= 1 -> inline serial, no
/// threads spawned). Tasks are claimed from an atomic counter, so thread
/// scheduling never changes *what* any task computes — only when.
///
/// If a task throws, no further tasks are started, in-flight tasks finish,
/// and the exception from the lowest-indexed observed failure is rethrown
/// on the calling thread.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = serial
  /// fallback (run inline on the calling thread).
  unsigned jobs = 1;
  /// Statistical replications per cell (>= 1). Replication r of cell i
  /// runs with a seed derived from (base_seed, i, r).
  std::size_t replications = 1;
  /// Base of the seed derivation. 0 (default) keeps each cell's own
  /// configured seed: replication 0 runs the config verbatim — so the
  /// canonical single-replication paper tables are unchanged — and
  /// replications r >= 1 derive from the cell's configured seed instead.
  std::uint64_t base_seed = 0;
  /// Optional progress hook, invoked once per finished task under an
  /// internal mutex (order follows completion, so it is NOT deterministic;
  /// route it to stderr, never into result tables).
  std::function<void(const std::string& label, std::size_t replication)>
      progress;
};

/// One named grid cell, as benches build them.
struct ExperimentCell {
  std::string label;
  ExperimentConfig config;
};

/// Mean / sample stddev / 95% confidence half-width over replications.
/// The CI uses Student's t for small n and collapses to 0 for n == 1.
struct MetricSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% confidence interval
};

MetricSummary summarize(const std::vector<double>& samples);

struct CellResult {
  std::string label;
  std::vector<ExperimentResult> replications;  ///< index r = replication r

  /// Replication 0: with the default base_seed this is the verbatim
  /// config run, i.e. what the pre-engine serial benches reported.
  const ExperimentResult& primary() const { return replications.front(); }

  /// Aggregates `metric` over all replications.
  MetricSummary summary(
      const std::function<double(const ExperimentResult&)>& metric) const;
};

/// Runs every (cell, replication) task across `options.jobs` workers and
/// returns per-cell results in input order.
std::vector<CellResult> run_cells(const std::vector<ExperimentCell>& cells,
                                  const RunnerOptions& options = {});

/// Canonical aggregate table (mean ± 95% CI over replications) shared by
/// the benches and the determinism tests: one row per cell, in cell order.
util::Table summary_table(const std::vector<CellResult>& results);

}  // namespace prord::core
