#include "core/perf_report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace prord::core {
namespace {

util::JsonValue scenario_to_json(const PerfScenario& s) {
  util::JsonValue v = util::JsonValue::object();
  v.set("name", s.name);
  v.set("mode", s.mode);
  v.set("t_start_ms", s.t_start_ms);
  v.set("t_end_ms", s.t_end_ms);
  v.set("wall_seconds", s.wall_seconds);
  v.set("sim_wall_seconds", s.sim_wall_seconds);
  v.set("sim_events", s.sim_events);
  v.set("events_per_sec", s.events_per_sec);
  v.set("requests", s.requests);
  v.set("requests_per_sec", s.requests_per_sec);
  v.set("p50_response_ms", s.p50_response_ms);
  v.set("p99_response_ms", s.p99_response_ms);
  v.set("allocations", s.allocations);
  v.set("allocations_per_event", s.allocations_per_event);
  v.set("shards", static_cast<std::uint64_t>(s.shards));
  return v;
}

}  // namespace

util::JsonValue perf_report_to_json(const PerfReport& report) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema_version", kPerfSchemaVersion);
  doc.set("suite", report.suite);
  doc.set("git_sha", report.git_sha);
  doc.set("generated_unix_ms", report.generated_unix_ms);
  util::JsonValue scenarios = util::JsonValue::array();
  for (const PerfScenario& s : report.scenarios)
    scenarios.push_back(scenario_to_json(s));
  doc.set("scenarios", std::move(scenarios));
  util::JsonValue speedups = util::JsonValue::object();
  for (const PerfRatio& r : report.speedups) speedups.set(r.name, r.value);
  doc.set("speedups", std::move(speedups));
  return doc;
}

std::string render_perf_report(const PerfReport& report) {
  return perf_report_to_json(report).dump();
}

bool write_perf_report(const PerfReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "perf_report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << render_perf_report(report);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "perf_report: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string detect_git_sha() {
  for (const char* var : {"GITHUB_SHA", "PRORD_GIT_SHA"}) {
    if (const char* sha = std::getenv(var); sha && *sha) return sha;
  }
  // Local runs: ask git. popen is fine here — this is a bench binary, not
  // simulation code.
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof buf, pipe)) sha = buf;
    ::pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
      sha.pop_back();
    if (sha.size() >= 7) return sha;
  }
  return "unknown";
}

std::uint64_t unix_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace prord::core
