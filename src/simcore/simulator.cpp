#include "simcore/simulator.h"

#include <stdexcept>
#include <utility>

namespace prord::sim {

EventHandle Simulator::schedule(SimTime delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  return queue_.push(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime at, EventFn fn) {
  if (at < now_)
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  return queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    SimTime at;
    EventFn fn = queue_.pop(at);
    now_ = at;
    ++dispatched_;
    ++n;
    fn();
  }
  // If we stopped on the horizon rather than drain, advance the clock so a
  // subsequent run(until2) resumes from `until`, not from the last event.
  if (!queue_.empty() && until != std::numeric_limits<SimTime>::max() &&
      now_ < until)
    now_ = until;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  SimTime at;
  EventFn fn = queue_.pop(at);
  now_ = at;
  ++dispatched_;
  fn();
  return true;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, EventFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0)
    throw std::invalid_argument("PeriodicTask: period must be positive");
  arm();
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(next_);
}

void PeriodicTask::arm() {
  next_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace prord::sim
