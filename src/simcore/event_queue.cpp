#include "simcore/event_queue.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace prord::sim {

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  assert(fn && "EventQueue::push: empty function");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(fn)});
  sift_up(heap_.size() - 1);
  pending_.insert(seq);
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Seqs are unique, so a stale handle (event already fired or cancelled)
  // is simply absent from pending_ and the cancel is a no-op.
  if (pending_.erase(h.seq) == 0) return false;
  cancelled_.insert(h.seq);
  return true;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

SimTime EventQueue::next_time() {
  drop_dead_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().at;
}

EventFn EventQueue::pop(SimTime& at) {
  drop_dead_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  at = heap_.front().at;
  EventFn fn = std::move(heap_.front().fn);
  pending_.erase(heap_.front().seq);
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return fn;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && heap_[smallest] > heap_[l]) smallest = l;
    if (r < n && heap_[smallest] > heap_[r]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace prord::sim
