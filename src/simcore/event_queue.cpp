#include "simcore/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace prord::sim {

EventQueue::EventQueue(QueueImpl impl) : impl_(impl) {
  if (impl_ == QueueImpl::kBucketed)
    buckets_.resize(static_cast<std::size_t>(kLevels) * kBucketsPerLevel);
}

EventQueue::~EventQueue() {
  // Pool destruction destroys any still-constructed nodes (and their
  // closures); the side heaps and buckets only hold pointers into it.
}

// ---------------------------------------------------------------------------
// Shared API

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  assert(fn && "EventQueue::push: empty function");
  const std::uint64_t seq = next_seq_++;
  if (impl_ == QueueImpl::kBucketed) {
    Node* n = wheel_push(at, std::move(fn), seq);
    return EventHandle{seq, n};
  }
  heap_.push_back(HeapEntry{at, seq, std::move(fn)});
  heap_sift_up(heap_.size() - 1);
  heap_pending_.insert(seq);
  return EventHandle{seq, nullptr};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (impl_ == QueueImpl::kBucketed) return wheel_cancel(h);
  // Seqs are unique, so a stale handle (event already fired or cancelled)
  // is simply absent from pending_ and the cancel is a no-op.
  if (heap_pending_.erase(h.seq) == 0) return false;
  heap_cancelled_.insert(h.seq);
  return true;
}

SimTime EventQueue::next_time() {
  if (impl_ == QueueImpl::kBucketed) {
    Node* n = find_min(/*take=*/false);
    if (!n) throw std::logic_error("EventQueue::next_time: empty");
    return n->at;
  }
  heap_drop_dead_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().at;
}

EventFn EventQueue::pop(SimTime& at) {
  if (impl_ == QueueImpl::kBucketed) {
    Node* n = find_min(/*take=*/true);
    if (!n) throw std::logic_error("EventQueue::pop: empty");
    at = n->at;
    EventFn fn = std::move(n->fn);
    if (at > cur_) cur_ = at;
    --live_;
    free_node(n);
    return fn;
  }
  heap_drop_dead_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  at = heap_.front().at;
  EventFn fn = std::move(heap_.front().fn);
  heap_pending_.erase(heap_.front().seq);
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
  return fn;
}

// ---------------------------------------------------------------------------
// Timing wheel

namespace {
/// std::push_heap comparator: true when a fires after b, i.e. min-heap on
/// (time, sequence).
struct FiresAfter {
  template <typename NodePtr>
  bool operator()(const NodePtr* a, const NodePtr* b) const noexcept {
    return a->at != b->at ? a->at > b->at : a->seq > b->seq;
  }
};
}  // namespace

EventQueue::Node* EventQueue::wheel_push(SimTime at, EventFn fn,
                                         std::uint64_t seq) {
  Node* n = node_pool_.acquire();
  n->at = at;
  n->seq = seq;
  n->next = nullptr;
  n->fn = std::move(fn);
  place(n);
  ++live_;
  return n;
}

bool EventQueue::wheel_cancel(EventHandle h) {
  Node* n = static_cast<Node*>(h.node);
  if (!n || n->seq != h.seq) return false;  // fired, cancelled, or reused
  n->seq = 0;  // dead; the list/heap entry is reclaimed lazily
  n->fn = nullptr;  // drop captures now, not when the clock passes it
  --live_;
  return true;
}

void EventQueue::place(Node* n) {
  if (n->at < cur_) {
    past_.push_back(n);
    std::push_heap(past_.begin(), past_.end(), FiresAfter{});
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    if (in_window(n->at, level)) {
      append(level, level_index(n->at, level), n);
      return;
    }
  }
  overflow_.push_back(n);
  std::push_heap(overflow_.begin(), overflow_.end(), FiresAfter{});
}

void EventQueue::append(int level, int idx, Node* n) {
  Bucket& b = bucket(level, idx);
  n->next = nullptr;
  if (b.tail) {
    b.tail->next = n;
    b.tail = n;
  } else {
    b.head = b.tail = n;
    bits_[static_cast<std::size_t>(level)][static_cast<std::size_t>(idx) / 64] |=
        1ULL << (static_cast<std::size_t>(idx) % 64);
  }
}

void EventQueue::free_node(Node* n) {
  n->seq = 0;
  node_pool_.release(n);
}

void EventQueue::cascade(int level, int idx) {
  Bucket& b = bucket(level, idx);
  Node* n = b.head;
  b.head = b.tail = nullptr;
  bits_[static_cast<std::size_t>(level)][static_cast<std::size_t>(idx) / 64] &=
      ~(1ULL << (static_cast<std::size_t>(idx) % 64));
  // Re-place in list order: equal timestamps keep their FIFO order because
  // appends preserve it and every push that could tie arrives later (with
  // a larger sequence number) by construction.
  while (n) {
    Node* next = n->next;
    if (n->seq == 0)
      free_node(n);
    else
      place(n);
    n = next;
  }
}

void EventQueue::drain_overflow() {
  while (!overflow_.empty() &&
         (overflow_.front()->at >> (kLevels * kBits)) ==
             (cur_ >> (kLevels * kBits))) {
    std::pop_heap(overflow_.begin(), overflow_.end(), FiresAfter{});
    Node* n = overflow_.back();
    overflow_.pop_back();
    if (n->seq == 0)
      free_node(n);
    else
      place(n);  // heap pops come out in (time, seq) order, keeping FIFO
  }
}

void EventQueue::settle() {
  // Highest level first: draining the overflow block may feed L2/L1/L0,
  // and the per-level cascades below only touch the bucket the clock now
  // sits in.
  if ((cur_ >> (kLevels * kBits)) != top_block_) {
    top_block_ = cur_ >> (kLevels * kBits);
    drain_overflow();
  }
  if ((cur_ >> (2 * kBits)) != l2_block_) {
    l2_block_ = cur_ >> (2 * kBits);
    cascade(2, level_index(cur_, 2));
  }
  if ((cur_ >> kBits) != l1_block_) {
    l1_block_ = cur_ >> kBits;
    cascade(1, level_index(cur_, 1));
  }
}

int EventQueue::scan_bits(int level, int from) const noexcept {
  if (from >= kBucketsPerLevel) return -1;
  const auto& words = bits_[static_cast<std::size_t>(level)];
  int word = from / 64;
  std::uint64_t cur = words[static_cast<std::size_t>(word)] &
                      (~0ULL << (from % 64));
  while (true) {
    if (cur) return word * 64 + __builtin_ctzll(cur);
    if (++word >= kWords) return -1;
    cur = words[static_cast<std::size_t>(word)];
  }
}

EventQueue::Node* EventQueue::find_min(bool take) {
  if (live_ == 0) return nullptr;
  for (;;) {
    settle();

    // Non-monotone pushes (times below the wheel clock) always win.
    while (!past_.empty()) {
      Node* n = past_.front();
      if (n->seq != 0) {
        if (!take) return n;
        std::pop_heap(past_.begin(), past_.end(), FiresAfter{});
        past_.pop_back();
        return n;
      }
      std::pop_heap(past_.begin(), past_.end(), FiresAfter{});
      past_.pop_back();
      free_node(n);
    }

    // Leaf level: first occupied bucket at or after the clock position.
    int idx = scan_bits(0, level_index(cur_, 0));
    while (idx >= 0) {
      Bucket& b = bucket(0, idx);
      while (b.head && b.head->seq == 0) {  // prune cancelled heads
        Node* dead = b.head;
        b.head = dead->next;
        if (!b.head) b.tail = nullptr;
        free_node(dead);
      }
      if (b.head) {
        Node* n = b.head;
        if (take) {
          b.head = n->next;
          if (!b.head) b.tail = nullptr;
          if (!b.head)
            bits_[0][static_cast<std::size_t>(idx) / 64] &=
                ~(1ULL << (static_cast<std::size_t>(idx) % 64));
        }
        return n;
      }
      bits_[0][static_cast<std::size_t>(idx) / 64] &=
          ~(1ULL << (static_cast<std::size_t>(idx) % 64));
      idx = scan_bits(0, idx + 1);
    }

    // Leaf window exhausted: advance the clock to the start of the next
    // occupied window (no live event can precede it) and cascade there.
    bool advanced = false;
    for (int level = 1; level < kLevels && !advanced; ++level) {
      const int j = scan_bits(level, level_index(cur_, level));
      if (j >= 0) {
        const SimTime window = SimTime{1} << ((level + 1) * kBits);
        cur_ = (cur_ & ~(window - 1)) |
               (static_cast<SimTime>(j) << (level * kBits));
        advanced = true;  // settle() cascades the bucket we just reached
      }
    }
    if (advanced) continue;

    while (!overflow_.empty() && overflow_.front()->seq == 0) {
      std::pop_heap(overflow_.begin(), overflow_.end(), FiresAfter{});
      free_node(overflow_.back());
      overflow_.pop_back();
    }
    if (!overflow_.empty()) {
      cur_ = overflow_.front()->at;  // settle() drains this block
      continue;
    }
    return nullptr;  // unreachable while live_ > 0
  }
}

// ---------------------------------------------------------------------------
// Reference heap (the original implementation, verbatim semantics)

void EventQueue::heap_drop_dead_head() {
  while (!heap_.empty()) {
    auto it = heap_cancelled_.find(heap_.front().seq);
    if (it == heap_cancelled_.end()) return;
    heap_cancelled_.erase(it);
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0);
  }
}

void EventQueue::heap_sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && heap_[smallest] > heap_[l]) smallest = l;
    if (r < n && heap_[smallest] > heap_[r]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace prord::sim
