// Discrete-event simulator driver.
//
// The simulator owns the clock and the pending-event set. Model components
// schedule callbacks; `run()` dispatches them in time order until the set
// drains or a stop condition fires. Single-threaded by design: web-cluster
// simulations at this scale are dominated by model logic, and determinism
// (same seed -> same result tables) is a hard requirement for the
// reproduction benches.
#pragma once

#include <cstdint>
#include <limits>

#include "simcore/event_queue.h"
#include "simcore/sim_time.h"

namespace prord::sim {

class Simulator {
 public:
  /// `impl` selects the pending-set implementation; the process default is
  /// the bucketed wheel, bench_perf's baseline pass flips it globally.
  explicit Simulator(QueueImpl impl = default_queue_impl()) : queue_(impl) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` after the current time (delay >= 0).
  EventHandle schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Cancels a scheduled event; returns true if it was still pending.
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Runs until the event set drains or `until` is passed.
  /// Returns the number of events dispatched.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Dispatches exactly one event if any is pending; returns false if idle.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t dispatched_events() const noexcept { return dispatched_; }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::uint64_t dispatched_ = 0;
};

/// Repeating timer: reschedules itself every `period` until stop().
/// Used by the replication planner (Algorithm 3 runs "every t seconds").
class PeriodicTask {
 public:
  /// `fn` is invoked at now+period, now+2*period, ... until stop().
  PeriodicTask(Simulator& sim, SimTime period, EventFn fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const noexcept { return running_; }
  SimTime period() const noexcept { return period_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  EventFn fn_;
  EventHandle next_{};
  bool running_ = true;
};

}  // namespace prord::sim
