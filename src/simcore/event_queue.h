// Pending-event set for the discrete-event simulator.
//
// Two interchangeable implementations behind one API:
//
//  * kBucketed (default) — a three-level timing wheel keyed on SimTime.
//    Leaf buckets are 1 us wide, so every bucket list holds exactly one
//    timestamp and plain FIFO append reproduces the (time, sequence)
//    dispatch order of the old heap bit for bit. Higher levels cover
//    ~2 ms and ~4.3 s windows; events beyond the wheel span wait in a
//    small overflow heap and cascade down as the clock reaches their
//    window. Push/pop/cancel are O(1) amortized, nodes come from a
//    freelist pool (util::FixedPool), and occupancy bitmaps make empty
//    regions skippable at one ctz per 64 buckets. Pushes below the
//    current clock (live-mode horizon replays, fuzz tests) land in a
//    "past" mini-heap that is always drained first, so time order holds
//    even for non-monotone pushes.
//
//  * kHeapReference — the original binary heap keyed on (time, sequence)
//    with unordered_set cancellation bookkeeping. Kept as the reference
//    model for the equivalence fuzz suite and as bench_perf's honest
//    pre-optimization baseline; not intended for production runs.
//
// The sequence number makes simultaneous events fire in scheduling order,
// which keeps runs deterministic regardless of queue internals; both
// implementations honour it exactly, which the equivalence tests pin.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "simcore/sim_time.h"
#include "util/inplace_function.h"
#include "util/pool.h"

namespace prord::sim {

/// Inline capacity for event closures. Sized so the deepest model closure
/// chain (backend serve -> respond -> finish -> player completion) stays
/// on the node; bench_perf's allocations/event metric regresses loudly if
/// a hot closure outgrows it.
inline constexpr std::size_t kEventFnInlineBytes = 152;

using EventFn = util::InplaceFunction<void(), kEventFnInlineBytes>;

enum class QueueImpl : std::uint8_t {
  kBucketed,       ///< timing-wheel production queue
  kHeapReference,  ///< original binary heap (tests, perf baseline)
};

namespace detail {
inline std::atomic<QueueImpl> g_default_queue_impl{QueueImpl::kBucketed};
}  // namespace detail

/// Process-wide default for newly constructed queues/simulators. Used by
/// bench_perf to run its baseline pass; tests pass the impl explicitly.
inline void set_default_queue_impl(QueueImpl impl) noexcept {
  detail::g_default_queue_impl.store(impl, std::memory_order_relaxed);
}
inline QueueImpl default_queue_impl() noexcept {
  return detail::g_default_queue_impl.load(std::memory_order_relaxed);
}

/// Handle for cancelling a scheduled event. Cancellation is lazy: the slot
/// is marked dead and reclaimed when the clock reaches it.
struct EventHandle {
  std::uint64_t seq = 0;
  void* node = nullptr;  ///< wheel node; unused by the reference heap
  bool valid() const noexcept { return seq != 0; }
};

class EventQueue {
 public:
  explicit EventQueue(QueueImpl impl = default_queue_impl());
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle push(SimTime at, EventFn fn);

  /// Cancels a previously scheduled event. Returns true if the event was
  /// still pending. O(1); space is reclaimed when the clock passes it.
  bool cancel(EventHandle h);

  bool empty() const noexcept { return size() == 0; }
  std::size_t size() const noexcept {
    return impl_ == QueueImpl::kBucketed ? live_ : heap_pending_.size();
  }

  /// Time of the earliest live event; queue must be non-empty.
  SimTime next_time();

  /// Pops and returns the earliest live event. Queue must be non-empty.
  /// Returns the event's time through `at`.
  EventFn pop(SimTime& at);

  QueueImpl impl() const noexcept { return impl_; }

 private:
  // ---- timing wheel ----------------------------------------------------
  static constexpr int kBits = 11;                 // 2048 buckets per level
  static constexpr int kLevels = 3;
  static constexpr int kBucketsPerLevel = 1 << kBits;
  static constexpr std::uint64_t kIndexMask = kBucketsPerLevel - 1;
  static constexpr int kWords = kBucketsPerLevel / 64;

  struct Node {
    SimTime at = 0;
    std::uint64_t seq = 0;  // 0 == dead (cancelled or fired)
    Node* next = nullptr;
    EventFn fn;
  };

  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  Bucket& bucket(int level, int idx) noexcept {
    return buckets_[static_cast<std::size_t>(level) * kBucketsPerLevel +
                    static_cast<std::size_t>(idx)];
  }

  static int level_index(SimTime at, int level) noexcept {
    return static_cast<int>(
        (static_cast<std::uint64_t>(at) >> (level * kBits)) & kIndexMask);
  }
  /// True when `at` falls inside the level's current window around cur_.
  bool in_window(SimTime at, int level) const noexcept {
    return (at >> ((level + 1) * kBits)) == (cur_ >> ((level + 1) * kBits));
  }

  void place(Node* n);
  void append(int level, int idx, Node* n);
  void cascade(int level, int idx);
  void drain_overflow();
  void settle();
  void free_node(Node* n);
  int scan_bits(int level, int from) const noexcept;
  Node* find_min(bool take);

  Node* wheel_push(SimTime at, EventFn fn, std::uint64_t seq);
  bool wheel_cancel(EventHandle h);

  util::FixedPool<Node> node_pool_{1024, /*honor_bypass=*/false};
  std::vector<Bucket> buckets_;  // kLevels * kBucketsPerLevel, bucketed only
  std::array<std::array<std::uint64_t, kWords>, kLevels> bits_{};
  std::vector<Node*> past_;      // min-heap: pushes below cur_
  std::vector<Node*> overflow_;  // min-heap: beyond the wheel span
  SimTime cur_ = 0;              // wheel clock: max time handed out so far
  SimTime l1_block_ = 0;         // cur_ >> kBits at last L1 cascade
  SimTime l2_block_ = 0;         // cur_ >> 2*kBits at last L2 cascade
  SimTime top_block_ = 0;        // cur_ >> 3*kBits at last overflow drain
  std::size_t live_ = 0;

  // ---- reference heap (original implementation) ------------------------
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;

    bool operator>(const HeapEntry& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void heap_drop_dead_head();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  std::vector<HeapEntry> heap_;
  std::unordered_set<std::uint64_t> heap_pending_;    // seqs still scheduled
  std::unordered_set<std::uint64_t> heap_cancelled_;  // tombstones in heap_

  QueueImpl impl_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace prord::sim
