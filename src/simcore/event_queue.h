// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence). The sequence number makes
// simultaneous events fire in scheduling order, which keeps runs
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "simcore/sim_time.h"

namespace prord::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event. Cancellation is lazy: the slot
/// is marked dead and skipped at pop time.
struct EventHandle {
  std::uint64_t seq = 0;
  bool valid() const noexcept { return seq != 0; }
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle push(SimTime at, EventFn fn);

  /// Cancels a previously scheduled event. Returns true if the event was
  /// still pending. O(1); space is reclaimed when the slot pops.
  bool cancel(EventHandle h);

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event; queue must be non-empty.
  SimTime next_time();

  /// Pops and returns the earliest live event. Queue must be non-empty.
  /// Returns the event's time through `at`.
  EventFn pop(SimTime& at);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;  // empty == cancelled

    bool operator>(const Entry& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void drop_dead_head();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;    // seqs still scheduled
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones in heap_
  std::uint64_t next_seq_ = 1;
};

}  // namespace prord::sim
