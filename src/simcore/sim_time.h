// Simulation time base.
//
// Time is kept as a 64-bit signed count of microseconds. Every latency in
// the paper's Table 1 is naturally expressed in microseconds (150 us
// connection latency, 200 us TCP handoff, 80 us/KB transfer), and 2^63 us
// is ~292k years of simulated time, so there is no overflow concern.
#pragma once

#include <cstdint>

namespace prord::sim {

/// Opaque-ish time type; arithmetic helpers below keep call sites readable.
using SimTime = std::int64_t;  // microseconds

inline constexpr SimTime kTimeZero = 0;

constexpr SimTime usec(std::int64_t v) noexcept { return v; }
constexpr SimTime msec(std::int64_t v) noexcept { return v * 1000; }
constexpr SimTime sec(double v) noexcept {
  return static_cast<SimTime>(v * 1e6);
}

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-6;
}
constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace prord::sim
