// Mithril-style association mining backend (docs/PREDICTOR.md).
//
// The Mithril prefetcher's insight, transplanted from block storage to
// web navigation: keep a *bounded* record of recent access history, mine
// it periodically for pairs of files that recur close together, and
// promote pairs whose support lands in a band — below min_support is
// noise, above max_support is the Zipf head that every cache already
// holds — into a bounded prefetch table the hot path reads.
//
// Three tables, all capped (PredictorParams::*_table_rows):
//   record   — per-connection recent history rows (LRU-evicted by last
//              touch when the cap is hit);
//   mining   — pair counters (a precedes b within lookahead_range on one
//              connection). When a mine pass finds the table at >= 3/4 of
//              its cap, every counter halves (flooring) and zeros are
//              erased, so stale pairs decay and free their rows under
//              pressure; while the table is full, *new* pairs are dropped
//              (counted), never blocked on.
//   prefetch — promoted associations, at most max_associations per
//              source file, FIFO-evicted by promotion order at the cap.
// Eviction is deterministic everywhere: same observation stream, same
// tables — the eviction-determinism test pins it.
//
// Thread contract: observe()/mine() belong to one thread (the service's
// mining thread); snapshot() hands out an immutable copy for concurrent
// readers.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "predict/predictor_iface.h"

namespace prord::predict {

/// Immutable prediction state published after a mine pass. Readers hold
/// the shared_ptr; the miner never mutates a published snapshot.
struct MithrilSnapshot {
  /// source file -> associations, highest confidence first.
  std::unordered_map<trace::FileId, std::vector<Association>> table;

  const std::vector<Association>* find(trace::FileId file) const {
    const auto it = table.find(file);
    return it == table.end() ? nullptr : &it->second;
  }
};

class MithrilMiner {
 public:
  explicit MithrilMiner(const PredictorParams& params);

  /// Records one observation: extends the connection's history row and
  /// bumps the pair counters for every earlier file within
  /// lookahead_range on the same connection.
  void observe(const Observation& obs);

  /// One mining pass: promotes banded pairs into the prefetch table,
  /// then ages the pair counters when the mining table is under pressure.
  /// Returns the number of associations promoted this pass.
  std::size_t mine();

  /// Immutable copy of the current prefetch table (after mine()).
  std::shared_ptr<const MithrilSnapshot> snapshot() const;

  // Occupancy (for PredictorStats).
  std::size_t record_rows() const noexcept { return records_.size(); }
  std::size_t mining_rows() const noexcept { return pairs_.size(); }
  std::size_t prefetch_rows() const noexcept { return prefetch_.size(); }
  /// Pairs never counted because the mining table was full.
  std::uint64_t pair_drops() const noexcept { return pair_drops_; }

 private:
  struct RecordRow {
    std::vector<trace::FileId> recent;  ///< newest last, <= lookahead_range
    std::list<std::uint32_t>::iterator lru_it;
  };

  static std::uint64_t pair_key(trace::FileId a, trace::FileId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void bump_pair(trace::FileId a, trace::FileId b);
  void promote(trace::FileId source, const Association& assoc);

  PredictorParams params_;

  // Record table: per-connection rows, LRU list front = most recent.
  std::unordered_map<std::uint32_t, RecordRow> records_;
  std::list<std::uint32_t> record_lru_;

  // Mining table: pair counts + per-source totals (for confidence).
  std::unordered_map<std::uint64_t, std::uint32_t> pairs_;
  std::unordered_map<trace::FileId, std::uint32_t> sources_;
  std::uint64_t pair_drops_ = 0;

  // Prefetch table: FIFO promotion order for deterministic eviction.
  std::unordered_map<trace::FileId, std::vector<Association>> prefetch_;
  std::list<trace::FileId> promote_order_;  ///< front = oldest promotion
  std::unordered_map<trace::FileId, std::list<trace::FileId>::iterator>
      promote_pos_;
};

}  // namespace prord::predict
