#include "predict/prediction_service.h"

#include <algorithm>
#include <chrono>

namespace prord::predict {
namespace {

logmining::MiningConfig mining_config_for(const PredictorParams& params) {
  logmining::MiningConfig config;
  config.predictor = logmining::PredictorKind::kCandidatePath;
  config.predictor_order = params.order;
  config.prefetch_threshold = params.confidence;
  return config;
}

/// Empty-window warm-start clone: the second MiningModel constructor with
/// an empty session/request window clones the predictor from `source` and
/// leaves bundles/popularity empty — exactly what a published prediction
/// snapshot needs.
std::shared_ptr<logmining::MiningModel> clone_model(
    const logmining::MiningModel& source) {
  return std::make_shared<logmining::MiningModel>(
      std::span<const logmining::Session>{},
      std::span<const trace::Request>{}, source.config(), &source);
}

std::shared_ptr<logmining::MiningModel> empty_model(
    const logmining::MiningConfig& config) {
  return std::make_shared<logmining::MiningModel>(
      std::span<const trace::Request>{}, config);
}

}  // namespace

const char* algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kPrordGraph: return "prord-graph";
    case Algo::kMithril: return "mithril";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Link

class PredictionService::Link final : public IPredictorLink {
 public:
  Link(PredictionService* service, std::shared_ptr<LinkState> state)
      : service_(service), state_(std::move(state)) {}

  bool feed(const Observation& obs) override {
    if (service_->params_.threads == 0) {
      service_->feed_sync(obs);
      return true;
    }
    if (state_->queue.push(obs)) {
      service_->feeds_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    service_->drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::optional<Association> best(std::span<const trace::FileId> context,
                                  double min_confidence) override {
    return service_->query_best(context, min_confidence);
  }

  std::vector<Association> associations(std::span<const trace::FileId> context,
                                        std::size_t k) override {
    return service_->query_all(context, k);
  }

 private:
  PredictionService* service_;
  std::shared_ptr<LinkState> state_;
};

// ---------------------------------------------------------------------------
// Service

PredictionService::PredictionService(
    const PredictorParams& params,
    std::shared_ptr<logmining::MiningModel> warm_start)
    : params_(params),
      history_cap_(std::max<std::size_t>(params.order + 1,
                                         params.lookahead_range)) {
  if (params_.algo == Algo::kMithril) {
    miner_ = std::make_unique<MithrilMiner>(params_);
    mithril_snap_ = std::make_shared<const MithrilSnapshot>();
  } else {
    const auto config = mining_config_for(params_);
    if (warm_start) {
      // Private working copy: the caller's model keeps serving elsewhere
      // (e.g. the Prord policy) and must never race the mining thread.
      working_ = clone_model(*warm_start);
      swap_ = std::make_unique<adapt::ModelSwap>(std::move(warm_start));
    } else {
      working_ = empty_model(config);
      swap_ = std::make_unique<adapt::ModelSwap>(empty_model(config));
    }
  }
}

PredictionService::~PredictionService() { stop(); }

std::shared_ptr<IPredictorLink> PredictionService::register_link(
    std::string name) {
  auto state = std::make_shared<LinkState>(std::move(name),
                                           params_.feed_queue_capacity);
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links_.push_back(state);
  }
  return std::make_shared<Link>(this, std::move(state));
}

void PredictionService::start() {
  if (params_.threads == 0) return;
  std::lock_guard<std::mutex> lock(cv_mu_);
  if (miner_thread_.joinable()) return;
  stop_requested_ = false;
  miner_thread_ = std::thread([this] { mining_loop(); });
}

void PredictionService::stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (miner_thread_.joinable()) miner_thread_.join();
}

void PredictionService::mining_loop() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(params_.mine_interval_us),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    {
      std::lock_guard<std::mutex> mine_lock(mine_mu_);
      drain_and_mine_locked(/*force_publish=*/false);
    }
    lock.lock();
  }
  lock.unlock();
  // Final drain: everything fed before stop() lands in the model, and the
  // last generation is published for post-run inspection.
  std::lock_guard<std::mutex> mine_lock(mine_mu_);
  drain_and_mine_locked(/*force_publish=*/true);
}

void PredictionService::mine_now() {
  std::lock_guard<std::mutex> lock(mine_mu_);
  drain_and_mine_locked(/*force_publish=*/true);
}

void PredictionService::feed_sync(const Observation& obs) {
  std::lock_guard<std::mutex> lock(mine_mu_);
  apply_locked(obs);
  feeds_.fetch_add(1, std::memory_order_relaxed);
}

void PredictionService::apply_locked(const Observation& obs) {
  ++applied_since_publish_;
  if (params_.algo == Algo::kMithril) {
    miner_->observe(obs);
    return;
  }

  // Graph backend mirrors the Prord policy's online rule: main pages only,
  // transition from the connection's prior context.
  if (!obs.main_page || obs.file == trace::kInvalidFile) return;
  auto it = history_.find(obs.conn);
  if (it == history_.end()) {
    if (history_.size() >= params_.record_table_rows &&
        !history_lru_.empty()) {
      const std::uint32_t victim = history_lru_.back();
      history_lru_.pop_back();
      history_.erase(victim);
    }
    history_lru_.push_front(obs.conn);
    it = history_.emplace(obs.conn, HistoryRow{{}, history_lru_.begin()})
             .first;
  } else {
    history_lru_.splice(history_lru_.begin(), history_lru_,
                        it->second.lru_it);
  }
  auto& pages = it->second.pages;
  if (!pages.empty()) working_->predictor().observe_transition(pages, obs.file);
  pages.push_back(obs.file);
  if (pages.size() > history_cap_) pages.erase(pages.begin());
}

void PredictionService::drain_and_mine_locked(bool force_publish) {
  // Snapshot the live links (pruning the expired) without holding
  // links_mu_ across the drain — register_link never waits on mining.
  std::vector<std::shared_ptr<LinkState>> live;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    std::erase_if(links_, [&live](const std::weak_ptr<LinkState>& weak) {
      auto strong = weak.lock();
      if (!strong) return true;
      live.push_back(std::move(strong));
      return false;
    });
  }
  for (const auto& link : live) {
    scratch_.clear();
    link->queue.drain(scratch_);
    for (const Observation& obs : scratch_) apply_locked(obs);
  }

  bool changed = applied_since_publish_ > 0;
  if (params_.algo == Algo::kMithril) {
    changed = (miner_->mine() > 0) || changed;
  } else if (working_->predictor().num_entries() >
             params_.mining_table_rows) {
    // Bounded memory for the graph: halve counters (dropping zeros) until
    // the table fits — age() is the predictor's own eviction mechanism.
    for (int round = 0;
         round < 8 && working_->predictor().num_entries() >
                          params_.mining_table_rows;
         ++round)
      working_->predictor().age(0.5);
    changed = true;
  }
  mine_passes_.fetch_add(1, std::memory_order_relaxed);
  publish_locked(changed || force_publish);
}

void PredictionService::publish_locked(bool changed) {
  if (!changed) return;
  applied_since_publish_ = 0;
  if (params_.algo == Algo::kMithril) {
    auto snap = miner_->snapshot();
    std::lock_guard<std::mutex> lock(snap_mu_);
    mithril_snap_ = std::move(snap);
  } else {
    swap_->publish(clone_model(*working_));
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<Association> PredictionService::query_best(
    std::span<const trace::FileId> context, double min_confidence) {
  predictions_.fetch_add(1, std::memory_order_relaxed);
  if (context.empty()) return std::nullopt;

  if (params_.algo == Algo::kMithril) {
    std::shared_ptr<const MithrilSnapshot> snap;
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      snap = mithril_snap_;
    }
    const auto* row = snap->find(context.back());
    if (!row) return std::nullopt;
    for (const Association& assoc : *row)
      if (assoc.confidence >= min_confidence) return assoc;
    return std::nullopt;
  }

  if (params_.threads == 0) {
    // Synchronous mode reads the working model directly: a feed is visible
    // to the very next query, which is what the sim path's determinism
    // (and the legacy-equality test) requires.
    std::lock_guard<std::mutex> lock(mine_mu_);
    const auto p = working_->predictor().predict(context, min_confidence);
    if (!p) return std::nullopt;
    return Association{p->page, p->confidence};
  }
  const auto snapshot = swap_->current();
  const auto p = snapshot->model->predictor().predict(context, min_confidence);
  if (!p) return std::nullopt;
  return Association{p->page, p->confidence};
}

std::vector<Association> PredictionService::query_all(
    std::span<const trace::FileId> context, std::size_t k) {
  predictions_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Association> out;
  if (context.empty() || k == 0) return out;

  if (params_.algo == Algo::kMithril) {
    std::shared_ptr<const MithrilSnapshot> snap;
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      snap = mithril_snap_;
    }
    const auto* row = snap->find(context.back());
    if (!row) return out;
    for (const Association& assoc : *row) {
      out.push_back(assoc);
      if (out.size() >= k) break;
    }
    return out;
  }

  const auto collect = [&](const logmining::Predictor& predictor) {
    for (const auto& p : predictor.predict_all(context, k))
      out.push_back(Association{p.page, p.confidence});
  };
  if (params_.threads == 0) {
    std::lock_guard<std::mutex> lock(mine_mu_);
    collect(working_->predictor());
  } else {
    const auto snapshot = swap_->current();
    collect(snapshot->model->predictor());
  }
  return out;
}

PredictorStats PredictionService::stats() const {
  PredictorStats s;
  s.feeds = feeds_.load(std::memory_order_relaxed);
  s.drops = drops_.load(std::memory_order_relaxed);
  s.mine_passes = mine_passes_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.predictions = predictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    for (const auto& weak : links_)
      if (!weak.expired()) ++s.links;
  }
  std::lock_guard<std::mutex> lock(mine_mu_);
  if (params_.algo == Algo::kMithril) {
    s.record_rows = miner_->record_rows();
    s.mining_rows = miner_->mining_rows();
    s.prefetch_rows = miner_->prefetch_rows();
  } else {
    s.record_rows = history_.size();
    s.mining_rows = working_->predictor().num_entries();
    s.prefetch_rows = 0;  // the graph has no separate promoted table
  }
  return s;
}

std::unique_ptr<IPredictor> make_prediction_service(
    const PredictorParams& params,
    std::shared_ptr<logmining::MiningModel> warm_start) {
  return std::make_unique<PredictionService>(params, std::move(warm_start));
}

}  // namespace prord::predict
