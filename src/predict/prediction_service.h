// PredictionService: the concurrent IPredictor (docs/PREDICTOR.md).
//
// Shape: producers (distributor event loop, worker threads, the sim
// dispatcher in synchronous mode) register links; each link owns a
// bounded single-producer ring the producer pushes observations into
// without ever taking a lock — a full ring drops and counts, it never
// stalls the event loop. One background mining thread drains every live
// ring on a cadence (mine_interval_us), applies the observations to the
// selected algorithm backend, and publishes an immutable prediction
// snapshot:
//
//   * kPrordGraph — observations become observe_transition() calls on a
//     private working MiningModel (per-connection context rows, main
//     pages only, exactly the Prord policy's online-update rule); each
//     pass that applied anything publishes a warm-start *clone* of the
//     working model through adapt::ModelSwap, so readers hold a torn-free
//     generation while the miner keeps mutating its own copy. The graph
//     is bounded by aging: whenever num_entries exceeds
//     mining_table_rows the counters halve until it fits.
//   * kMithril — observations feed the MithrilMiner's bounded tables; a
//     pass runs mine() and publishes a MithrilSnapshot copy.
//
// threads == 0 collapses the whole machine to synchronous: feed() applies
// under the mining mutex immediately and best() reads the working state
// directly — the deterministic mode the sim path and the equality tests
// use (no queue, no drops, no publication delay).
//
// Lifetime: the service must outlive every link it hands out. Links may
// register and drop concurrently with mining; the miner prunes expired
// links each pass.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adapt/model_swap.h"
#include "logmining/mining_model.h"
#include "predict/mithril.h"
#include "predict/predictor_iface.h"

namespace prord::predict {

/// Bounded single-producer/single-consumer observation ring. push() is
/// the producer side (one thread per queue — the link contract); drain()
/// is the consumer side (the mining thread). Neither ever blocks.
class FeedQueue {
 public:
  explicit FeedQueue(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  /// False when full (the observation is dropped, never queued late).
  bool push(const Observation& obs) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail % slots_.size()] = obs;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Appends everything currently queued to `out`; returns the count.
  std::size_t drain(std::vector<Observation>& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    for (std::size_t i = head; i != tail; ++i)
      out.push_back(slots_[i % slots_.size()]);
    head_.store(tail, std::memory_order_release);
    return tail - head;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<Observation> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

class PredictionService final : public IPredictor {
 public:
  /// `warm_start` (may be null) seeds the PRORD-graph backend with an
  /// offline-mined model; the service works on a private clone and never
  /// mutates the caller's object. Mithril ignores it.
  PredictionService(const PredictorParams& params,
                    std::shared_ptr<logmining::MiningModel> warm_start);
  ~PredictionService() override;

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  std::shared_ptr<IPredictorLink> register_link(std::string name) override;
  void start() override;
  void stop() override;
  void mine_now() override;
  PredictorStats stats() const override;
  const PredictorParams& params() const override { return params_; }

 private:
  class Link;

  /// Per-link shared state; the link holds the strong reference, the
  /// service only a weak one (dropping the link unregisters it).
  struct LinkState {
    std::string name;
    FeedQueue queue;
    LinkState(std::string link_name, std::size_t capacity)
        : name(std::move(link_name)), queue(capacity) {}
  };

  struct HistoryRow {
    std::vector<trace::FileId> pages;
    std::list<std::uint32_t>::iterator lru_it;
  };

  void feed_sync(const Observation& obs);            // threads == 0 path
  void apply_locked(const Observation& obs);         // mine_mu_ held
  void drain_and_mine_locked(bool force_publish);    // mine_mu_ held
  void publish_locked(bool changed);                 // mine_mu_ held
  void mining_loop();

  std::optional<Association> query_best(std::span<const trace::FileId> ctx,
                                        double min_confidence);
  std::vector<Association> query_all(std::span<const trace::FileId> ctx,
                                     std::size_t k);

  const PredictorParams params_;
  const std::size_t history_cap_;  ///< graph context length per connection

  mutable std::mutex links_mu_;
  std::vector<std::weak_ptr<LinkState>> links_;

  // Algorithm state, all guarded by mine_mu_.
  mutable std::mutex mine_mu_;
  std::shared_ptr<logmining::MiningModel> working_;  ///< graph, miner-owned
  std::unique_ptr<MithrilMiner> miner_;              ///< mithril backend
  std::unordered_map<std::uint32_t, HistoryRow> history_;
  std::list<std::uint32_t> history_lru_;  ///< front = most recently fed
  std::size_t applied_since_publish_ = 0;
  std::vector<Observation> scratch_;

  // Publication (readers never touch mine_mu_).
  std::unique_ptr<adapt::ModelSwap> swap_;  ///< graph snapshots
  mutable std::mutex snap_mu_;
  std::shared_ptr<const MithrilSnapshot> mithril_snap_;

  // Background mining thread.
  std::thread miner_thread_;
  std::condition_variable cv_;
  std::mutex cv_mu_;
  bool stop_requested_ = false;

  mutable std::atomic<std::uint64_t> feeds_{0};
  mutable std::atomic<std::uint64_t> drops_{0};
  mutable std::atomic<std::uint64_t> mine_passes_{0};
  mutable std::atomic<std::uint64_t> publishes_{0};
  mutable std::atomic<std::uint64_t> predictions_{0};
};

}  // namespace prord::predict
