// InlineLink: the synchronous, zero-thread IPredictorLink over a
// MiningModel's predictor — the sim dispatcher's seam.
//
// The simulated Prord policy used to call model->predictor() directly;
// routing it through this link instead puts sim and live on the same
// prediction interface without changing a single prediction: feed()
// applies observe_transition immediately, best() is predict() verbatim.
// The golden-table tests pin that equivalence.
//
// Header-only on purpose: src/policies links logmining but must not link
// the prediction service (src/predict depends on src/adapt which depends
// on src/policies — the inline seam breaks that cycle).
#pragma once

#include <memory>
#include <utility>

#include "logmining/mining_model.h"
#include "predict/predictor_iface.h"

namespace prord::predict {

class InlineLink final : public IPredictorLink {
 public:
  /// `model` must be non-null; rebind() swaps it (adapt::ModelSwap
  /// publication path).
  explicit InlineLink(std::shared_ptr<logmining::MiningModel> model)
      : model_(std::move(model)) {}

  /// Swaps the underlying model (next call sees the new generation).
  void rebind(std::shared_ptr<logmining::MiningModel> model) {
    model_ = std::move(model);
  }

  bool feed(const Observation& obs) override {
    // Synchronous apply: the context is the caller's history *before*
    // this observation, which the sim policy tracks itself — the inline
    // link only forwards the transition it is told about via
    // feed_transition(). A bare feed() with no context is a no-op for
    // the graph model (it trains on transitions), so record nothing.
    (void)obs;
    return true;
  }

  /// Sim-path extension: the policy knows the exact preceding context,
  /// so the transition (context -> file) is applied in place — this is
  /// logmining::Predictor::observe_transition, unchanged.
  void feed_transition(std::span<const trace::FileId> context,
                       trace::FileId file) {
    model_->predictor().observe_transition(context, file);
  }

  std::optional<Association> best(std::span<const trace::FileId> context,
                                  double min_confidence) override {
    const auto p = model_->predictor().predict(context, min_confidence);
    if (!p) return std::nullopt;
    return Association{p->page, p->confidence};
  }

  std::vector<Association> associations(
      std::span<const trace::FileId> context, std::size_t k) override {
    std::vector<Association> out;
    for (const auto& p : model_->predictor().predict_all(context, k))
      out.push_back({p.page, p.confidence});
    return out;
  }

 private:
  std::shared_ptr<logmining::MiningModel> model_;
};

}  // namespace prord::predict
