#include "predict/mithril.h"

#include <algorithm>
#include <iterator>

namespace prord::predict {
namespace {

/// Row ordering: highest confidence first, FileId ascending on ties — the
/// deterministic rank the eviction test pins.
bool assoc_less(const Association& a, const Association& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  return a.file < b.file;
}

}  // namespace

MithrilMiner::MithrilMiner(const PredictorParams& params) : params_(params) {}

void MithrilMiner::observe(const Observation& obs) {
  if (obs.file == trace::kInvalidFile) return;

  auto it = records_.find(obs.conn);
  if (it == records_.end()) {
    if (records_.size() >= params_.record_table_rows && !record_lru_.empty()) {
      const std::uint32_t victim = record_lru_.back();
      record_lru_.pop_back();
      records_.erase(victim);
    }
    record_lru_.push_front(obs.conn);
    it = records_.emplace(obs.conn, RecordRow{{}, record_lru_.begin()}).first;
  } else {
    record_lru_.splice(record_lru_.begin(), record_lru_, it->second.lru_it);
  }

  RecordRow& row = it->second;
  for (const trace::FileId prior : row.recent) bump_pair(prior, obs.file);

  // Source occurrence: the confidence denominator for pairs mined out of
  // this file. Bounded by the same cap as the pair table; an untracked
  // source simply never promotes (no denominator, no confidence).
  auto sit = sources_.find(obs.file);
  if (sit != sources_.end()) {
    ++sit->second;
  } else if (sources_.size() < params_.mining_table_rows) {
    sources_.emplace(obs.file, 1u);
  }

  row.recent.push_back(obs.file);
  if (row.recent.size() > params_.lookahead_range)
    row.recent.erase(row.recent.begin());
}

void MithrilMiner::bump_pair(trace::FileId a, trace::FileId b) {
  if (a == b) return;
  // The Zipf head: once a source crosses max_support it stops minting new
  // pairs — every cache already holds what follows the home page.
  const auto sit = sources_.find(a);
  if (sit != sources_.end() && sit->second > params_.max_support) return;
  const std::uint64_t key = pair_key(a, b);
  const auto it = pairs_.find(key);
  if (it != pairs_.end()) {
    ++it->second;
    return;
  }
  if (pairs_.size() >= params_.mining_table_rows) {
    ++pair_drops_;
    return;
  }
  pairs_.emplace(key, 1u);
}

std::size_t MithrilMiner::mine() {
  // Sorted candidate list: unordered_map iteration order must never leak
  // into the promoted rows (the determinism contract). Sorting by key also
  // groups every pair sharing a source, so each row rebuilds in one run.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cands;
  cands.reserve(pairs_.size());
  for (const auto& [key, count] : pairs_)
    if (count >= params_.min_support) cands.emplace_back(key, count);
  std::sort(cands.begin(), cands.end());

  std::size_t promoted = 0;
  std::size_t i = 0;
  while (i < cands.size()) {
    const auto source = static_cast<trace::FileId>(cands[i].first >> 32);
    std::vector<Association> row;
    for (; i < cands.size() &&
           static_cast<trace::FileId>(cands[i].first >> 32) == source;
         ++i) {
      const auto dest =
          static_cast<trace::FileId>(cands[i].first & 0xffffffffu);
      const auto sit = sources_.find(source);
      if (sit == sources_.end() || sit->second == 0 ||
          sit->second > params_.max_support)
        continue;
      const double conf = std::min(
          1.0, static_cast<double>(cands[i].second) /
                   static_cast<double>(sit->second));
      row.push_back(Association{dest, conf});
    }
    if (row.empty()) continue;
    std::sort(row.begin(), row.end(), assoc_less);
    if (row.size() > params_.max_associations)
      row.resize(params_.max_associations);
    promoted += row.size();
    for (const Association& assoc : row) promote(source, assoc);
  }

  // Pressure-based aging: halve-and-erase only when the pair table nears
  // its cap, so short runs keep their support but a saturated table always
  // frees rows for the next window.
  if (pairs_.size() * 4 >= params_.mining_table_rows * 3) {
    for (auto it = pairs_.begin(); it != pairs_.end();) {
      it->second /= 2;
      it = (it->second == 0) ? pairs_.erase(it) : std::next(it);
    }
    for (auto it = sources_.begin(); it != sources_.end();) {
      it->second /= 2;
      it = (it->second == 0) ? sources_.erase(it) : std::next(it);
    }
  }
  return promoted;
}

void MithrilMiner::promote(trace::FileId source, const Association& assoc) {
  auto it = prefetch_.find(source);
  if (it == prefetch_.end()) {
    if (prefetch_.size() >= params_.prefetch_table_rows &&
        !promote_order_.empty()) {
      // FIFO by first promotion: the oldest row leaves, deterministically.
      const trace::FileId victim = promote_order_.front();
      promote_order_.pop_front();
      promote_pos_.erase(victim);
      prefetch_.erase(victim);
    }
    promote_order_.push_back(source);
    promote_pos_[source] = std::prev(promote_order_.end());
    it = prefetch_.emplace(source, std::vector<Association>{}).first;
  }
  auto& row = it->second;
  const auto pos =
      std::find_if(row.begin(), row.end(), [&](const Association& existing) {
        return existing.file == assoc.file;
      });
  if (pos != row.end())
    pos->confidence = assoc.confidence;
  else
    row.push_back(assoc);
  std::sort(row.begin(), row.end(), assoc_less);
  if (row.size() > params_.max_associations)
    row.resize(params_.max_associations);
}

std::shared_ptr<const MithrilSnapshot> MithrilMiner::snapshot() const {
  auto snap = std::make_shared<MithrilSnapshot>();
  snap->table = prefetch_;
  return snap;
}

}  // namespace prord::predict
