// Predictor-as-a-service interface (docs/PREDICTOR.md).
//
// PRORD's "proactive" claim needs a prediction seam both the simulated
// dispatcher and the live socket path can share: consumers (a policy, a
// distributor shard, a worker thread) *register a link* with a predictor,
// *feed* observations through it without ever blocking, and *pull* ranked
// associations when they want to prefetch. All synchronization lives
// behind the link — the Mithril/dbsp IPredictorLink shape — so algorithm
// backends (the paper's n-order path graph, Mithril-style association
// mining, future PPE keyword rules) are swappable and A/B-able behind one
// interface.
//
// Contract:
//   * feed() never blocks the caller. A full feed queue drops the
//     observation and returns false; drops are counted, not stalled.
//   * best()/associations() read the most recently *published* model
//     snapshot — a feed is not guaranteed visible until the service's
//     mining pass has drained it and published (threads = 0 collapses
//     this to synchronous apply, which the sim path uses for
//     determinism).
//   * One link is one producer: feed() is single-threaded per link
//     (register one link per producing thread); best()/associations()
//     may be called from any thread.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/log_record.h"

namespace prord::logmining {
class MiningModel;
}

namespace prord::predict {

/// Algorithm backend selector.
enum class Algo : std::uint8_t {
  /// The paper's n-order dependency-graph predictor (Algorithms 1 & 2),
  /// adapted from src/logmining — sequence-aware, per-connection context.
  kPrordGraph = 0,
  /// Mithril-style association mining: paired sampled history feeding a
  /// bounded mining table; pairs whose support lands in
  /// [min_support, max_support] are promoted to a bounded prefetch table.
  kMithril = 1,
};

const char* algo_name(Algo algo) noexcept;

/// Everything a deployment tunes, in one struct (the dbsp
/// PredictorParams shape): lookahead range, support band, confidence,
/// and bounded mining/prefetch/record table sizes so memory is capped by
/// construction.
struct PredictorParams {
  Algo algo = Algo::kPrordGraph;

  /// PRORD-graph: candidate-path order (Fig. 3 uses 2).
  unsigned order = 2;
  /// Mithril: how far apart two requests on one connection may be (in
  /// intervening requests) and still count as an associated pair.
  std::size_t lookahead_range = 4;
  /// Mithril support band: a pair must be seen at least min_support
  /// times to be promoted; a *source* page seen more than max_support
  /// times stops mining new pairs (the head of the Zipf curve is already
  /// cached everywhere — mining it only burns table rows).
  std::uint32_t min_support = 2;
  std::uint32_t max_support = 4096;
  /// Minimum confidence for best() to emit a prediction (Algorithm 2's
  /// Threshold for the graph backend; pair-count / source-count for
  /// Mithril).
  double confidence = 0.4;

  // Bounded-memory caps. Tables never exceed these row counts; insertion
  // beyond a cap evicts deterministically (see docs/PREDICTOR.md).
  std::size_t record_table_rows = 8192;   ///< per-connection history rows
  std::size_t mining_table_rows = 16384;  ///< candidate pair counters
  std::size_t prefetch_table_rows = 4096; ///< promoted associations
  /// Associations retained per source page in the prefetch table.
  std::size_t max_associations = 4;

  /// Per-link feed queue capacity; a full queue drops (never blocks).
  std::size_t feed_queue_capacity = 4096;
  /// Mining-thread cadence: a pass runs when this many observations have
  /// been drained or the interval elapsed, whichever first.
  std::size_t mine_batch = 512;
  std::int64_t mine_interval_us = 20'000;

  /// 0 = synchronous: no background thread, feed() applies immediately
  /// and publishes inline — the deterministic mode the sim dispatcher
  /// and the unit tests use. 1 = one background mining thread (the live
  /// cluster). Values > 1 are reserved.
  unsigned threads = 1;
};

/// One fed event: a request the consumer finished routing/serving.
struct Observation {
  std::uint32_t conn = 0;           ///< persistent-connection id
  trace::FileId file = trace::kInvalidFile;
  bool main_page = true;            ///< false for embedded objects
  std::int64_t t_us = 0;            ///< consumer clock (wall or sim)
};

/// One ranked association: "given the context, `file` comes next with
/// this confidence".
struct Association {
  trace::FileId file = trace::kInvalidFile;
  double confidence = 0.0;
};

/// Service-wide statistics snapshot (metrics surface).
struct PredictorStats {
  std::uint64_t feeds = 0;         ///< observations accepted
  std::uint64_t drops = 0;         ///< observations dropped (queue full)
  std::uint64_t mine_passes = 0;   ///< mining passes completed
  std::uint64_t publishes = 0;     ///< model snapshots published
  std::uint64_t predictions = 0;   ///< best()/associations() calls answered
  std::size_t links = 0;           ///< currently registered links
  // Bounded-table occupancy (rows in use; caps are in PredictorParams).
  std::size_t record_rows = 0;
  std::size_t mining_rows = 0;
  std::size_t prefetch_rows = 0;
};

/// The handle a consumer gets after registering. All synchronization is
/// hidden behind it; dropping the last shared_ptr unregisters.
class IPredictorLink {
 public:
  virtual ~IPredictorLink() = default;

  /// Feeds one observation. Never blocks; returns false when the
  /// observation was dropped (bounded queue full). Single producer per
  /// link.
  virtual bool feed(const Observation& obs) = 0;

  /// Best next-file guess for a context (most recent file last), or
  /// nullopt when nothing clears `min_confidence`. Reads the published
  /// snapshot — wait-free with respect to the mining thread.
  virtual std::optional<Association> best(
      std::span<const trace::FileId> context, double min_confidence) = 0;

  /// Top-k associations for a context, highest confidence first.
  virtual std::vector<Association> associations(
      std::span<const trace::FileId> context, std::size_t k) = 0;
};

/// The shared prediction service. Threads register links; the service
/// owns the algorithm backend, the mining thread, and the double-buffered
/// model publication.
class IPredictor {
 public:
  virtual ~IPredictor() = default;

  /// Registers a consumer. `name` labels the link in stats/flight dumps.
  /// Thread-safe; links may register and unregister while mining runs.
  virtual std::shared_ptr<IPredictorLink> register_link(std::string name) = 0;

  /// Starts the background mining thread (no-op when threads == 0).
  virtual void start() = 0;
  /// Drains, stops and joins (idempotent).
  virtual void stop() = 0;

  /// Synchronous drain-and-mine: applies every queued observation and
  /// publishes. The deterministic path for tests and threads == 0 users;
  /// also safe to call while the background thread runs (serialized with
  /// its passes).
  virtual void mine_now() = 0;

  virtual PredictorStats stats() const = 0;
  virtual const PredictorParams& params() const = 0;
};

/// Factory over the algorithm backends. `warm_start` (optional) seeds the
/// PRORD-graph backend with an offline-mined model; Mithril ignores it.
std::unique_ptr<IPredictor> make_prediction_service(
    const PredictorParams& params,
    std::shared_ptr<logmining::MiningModel> warm_start = nullptr);

}  // namespace prord::predict
