#include "adapt/stream_sessionizer.h"

#include <algorithm>
#include <stdexcept>

namespace prord::adapt {

StreamSessionizer::StreamSessionizer(sim::SimTime window,
                                     logmining::SessionOptions options)
    : span_(window), options_(options) {
  if (window <= 0)
    throw std::invalid_argument("StreamSessionizer: window must be > 0");
}

void StreamSessionizer::close(OpenSession&& open) {
  if (open.session.pages.size() >= options_.min_pages)
    closed_.push_back(std::move(open.session));
}

void StreamSessionizer::observe(const trace::Request& req) {
  ++total_observed_;
  window_.push_back(req);

  if (req.is_embedded) return;  // sessions track main-page navigation only

  const sim::SimTime at = req.at;
  auto it = open_.find(req.client);
  if (it != open_.end() &&
      at - it->second.last_seen > options_.inactivity_timeout) {
    close(std::move(it->second));
    open_.erase(it);
    it = open_.end();
  }
  if (it == open_.end()) {
    OpenSession fresh;
    fresh.session.client = req.client;
    fresh.session.start = at;
    it = open_.emplace(req.client, std::move(fresh)).first;
  }
  it->second.session.pages.push_back(req.file);
  it->second.last_seen = at;
}

void StreamSessionizer::prune(sim::SimTime now) {
  const sim::SimTime horizon = now > span_ ? now - span_ : 0;
  // The stream is only near-sorted across clients, so expiry is a sweep,
  // not a pop-front loop. O(window) per prune; prunes happen per epoch,
  // not per request.
  window_.erase(std::remove_if(window_.begin(), window_.end(),
                               [horizon](const trace::Request& r) {
                                 return r.at < horizon;
                               }),
                window_.end());
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.last_seen > options_.inactivity_timeout) {
      close(std::move(it->second));
      it = open_.erase(it);
    } else if (it->second.last_seen < horizon) {
      // Still open by the inactivity rule, but every page has left the
      // window: the session describes navigation the miner must no longer
      // see. Drop it outright — closing it first would be pointless, the
      // closed-list prune (start <= last_seen < horizon) would discard it
      // on the same sweep. Without this branch one-shot clients (every
      // synthetic session, most real ones) linger forever and "windowed"
      // re-mining silently trains on the whole history.
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  // A session leaves the window with its start time — sessions are short
  // relative to any sensible window, so the approximation only trims tail
  // pages that were about to expire anyway.
  closed_.erase(std::remove_if(closed_.begin(), closed_.end(),
                               [horizon](const logmining::Session& s) {
                                 return s.start < horizon;
                               }),
                closed_.end());
}

StreamSnapshot StreamSessionizer::snapshot(sim::SimTime now) {
  prune(now);
  StreamSnapshot snap;
  snap.requests.assign(window_.begin(), window_.end());
  snap.sessions.reserve(closed_.size() + open_.size());
  snap.sessions.assign(closed_.begin(), closed_.end());
  // Open sessions train too: the current phase's navigation is exactly
  // what a drift re-mine is after, and waiting for the timeout would blind
  // the model to it for a whole epoch.
  for (const auto& [client, open] : open_)
    if (open.session.pages.size() >= options_.min_pages)
      snap.sessions.push_back(open.session);
  std::sort(snap.sessions.begin(), snap.sessions.end(),
            [](const logmining::Session& a, const logmining::Session& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.client < b.client;
            });
  return snap;
}

void StreamSessionizer::clear() {
  window_.clear();
  open_.clear();
  closed_.clear();
}

}  // namespace prord::adapt
