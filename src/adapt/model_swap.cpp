#include "adapt/model_swap.h"

#include <stdexcept>
#include <utility>

namespace prord::adapt {

ModelSwap::ModelSwap(std::shared_ptr<logmining::MiningModel> initial) {
  if (!initial) throw std::invalid_argument("ModelSwap: null initial model");
  current_ = std::make_shared<Snapshot>(Snapshot{0, std::move(initial)});
}

std::shared_ptr<const ModelSwap::Snapshot> ModelSwap::current() const {
  std::lock_guard lock(mu_);
  return current_;
}

std::uint64_t ModelSwap::epoch() const {
  std::lock_guard lock(mu_);
  return current_->epoch;
}

std::uint64_t ModelSwap::publish(
    std::shared_ptr<logmining::MiningModel> model) {
  if (!model) throw std::invalid_argument("ModelSwap: null published model");
  std::shared_ptr<const Snapshot> next;
  std::vector<Listener> listeners;
  {
    std::lock_guard lock(mu_);
    next = std::make_shared<Snapshot>(
        Snapshot{current_->epoch + 1, std::move(model)});
    previous_ = std::exchange(current_, next);
    listeners = listeners_;  // invoke outside the lock
  }
  for (const auto& fn : listeners) fn(*next);
  return next->epoch;
}

void ModelSwap::subscribe(Listener listener) {
  std::lock_guard lock(mu_);
  listeners_.push_back(std::move(listener));
}

}  // namespace prord::adapt
