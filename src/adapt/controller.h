// Online adaptive mining controller.
//
// Closes the loop the paper leaves implicit ("off-line analysis + dynamic
// on-line tracking", Section 3): live dispatches feed a StreamSessionizer;
// an epoch timer (and, optionally, the DriftMonitor) kicks off a re-mine
// of predictor/bundles/popularity over the sliding window; the mining work
// runs on a cost-modeled background "mining thread" — its CPU time charged
// either to a configured back-end or to a dedicated mining node — and the
// finished model is published through the double-buffered ModelSwap into
// the dispatcher policy.
//
// Lifecycle: start() arms the epoch timer, pause() cancels all pending
// work so the event set can drain between plays (warm-up -> measurement).
// Everything runs on the simulation thread; determinism follows from the
// event order alone.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adapt/drift_monitor.h"
#include "adapt/model_swap.h"
#include "adapt/stream_sessionizer.h"
#include "cluster/cluster.h"
#include "policies/adaptation_hooks.h"
#include "simcore/simulator.h"

namespace prord::adapt {

/// Scheduling quantities (epoch, drift horizon, mining cost) are
/// simulation-clock: the experiment layer pre-compresses its trace
/// wall-clock knobs (core::AdaptOptions) by the run's time_scale before
/// building this. The *window* is trace-clock: requests are windowed by
/// their original trace timestamps, so the online miner sees the same
/// timescale as the offline mining scripts (session inactivity splits and
/// popularity halflives carry over unchanged), and a saturated cluster
/// that stretches the simulated run never shrinks the mining sample.
struct ControllerOptions {
  sim::SimTime epoch = sim::sec(1.0);     ///< scheduled re-mine period (sim)
  sim::SimTime window = sim::sec(120.0);  ///< sliding window (trace clock)
  /// Drift-triggered early re-mining; threshold <= 0 leaves only the
  /// epoch schedule.
  DriftMonitorOptions drift{};
  /// Back-end whose CPU the mining thread shares; -1 = dedicated mining
  /// node (costs time, steals no serving capacity).
  std::int32_t mining_backend = -1;
  /// Mining cost model: fixed + per-windowed-request, charged before the
  /// new model publishes.
  sim::SimTime mining_cost_base = sim::msec(50);
  sim::SimTime mining_cost_per_request = sim::usec(20);
  /// Re-mining configuration (predictor kind/order, bundle threshold,
  /// popularity halflife, session split). Trace-clock like the window —
  /// identical to the offline mining configuration.
  logmining::MiningConfig mining{};
  /// Warm-start re-mined models: clone the serving predictor (which
  /// learns every transition online) instead of retraining it from the
  /// thin window. false = retrain from the window alone (mostly tests).
  bool warm_start = true;
  /// Trace-clock halflife of warm-started predictor counts: at each
  /// re-mine the clone is aged by 2^(-elapsed/halflife), so stale-phase
  /// mass decays with *trace* time (independent of how many re-mines the
  /// scheduler happened to run) while fresh traffic re-fills it. 0 = never
  /// age — the measured default: eviction or flattening of transition
  /// counts loses more to reduced coverage than staleness costs, because
  /// the clone keeps re-learning online anyway. Decay is applied once per
  /// elapsed halflife (batched), because integer counters floor on every
  /// aging pass.
  sim::SimTime predictor_halflife = 0;
  /// Trace-clock halflife for the *carried popularity* counters,
  /// defaulting to the mining config's popularity halflife. The tracker's
  /// built-in per-entry decay keys on the simulation clock, which
  /// time_scale compresses to near-standstill — without this re-mine-time
  /// decay the rank table stays pinned to the oldest phase and placement
  /// never follows the hot set. 0 = never age. Batched like the predictor
  /// halflife, with an independent debt.
  sim::SimTime popularity_halflife = sim::sec(600.0);
};

/// Counters the experiment result and the obs exporter surface.
struct AdaptStats {
  std::uint64_t remines = 0;        ///< models published (any cause)
  std::uint64_t drift_remines = 0;  ///< of which drift-triggered
  std::uint64_t skipped = 0;        ///< ticks with mining in flight / empty window
  std::uint64_t drift_triggers = 0;
  std::uint64_t epoch = 0;                 ///< last published generation
  std::uint64_t window_requests = 0;       ///< at the last re-mine
  std::uint64_t window_sessions = 0;
  sim::SimTime mining_busy = 0;            ///< total mining-thread CPU
  sim::SimTime publish_delay = 0;          ///< total snapshot->publish lag
  double final_hit_rate = -1.0;            ///< windowed, at collection time
  double final_prefetch_waste = -1.0;

  bool any() const noexcept {
    return remines || skipped || drift_triggers;
  }
};

class AdaptiveController final : public policies::AdaptationHooks {
 public:
  AdaptiveController(sim::Simulator& sim, cluster::Cluster& cluster,
                     ModelSwap& swap, ControllerOptions options);

  // --- policies::AdaptationHooks (called from the dispatch path).
  void on_request(const trace::Request& req) override;
  void on_prediction(bool correct) override;
  void on_prefetch_issued() override;
  void on_prefetch_used() override;

  /// Arms the epoch timer. Idempotent.
  void start();
  /// Cancels the epoch timer and any scheduled oracle publishes so a play
  /// can drain; an in-flight re-mine still completes and publishes.
  void pause();

  /// Oracle mode (bench upper bound): instead of re-mining online,
  /// publish pre-mined per-phase models — models[0] immediately, then
  /// models[k] at now + k * phase_length. Publishing is free (no mining
  /// cost): the oracle knows the future, it doesn't compute it.
  void schedule_oracle(
      std::vector<std::shared_ptr<logmining::MiningModel>> models,
      sim::SimTime phase_length);

  /// Zeroes the stats at the warm-up -> measurement boundary and restarts
  /// the stream state (window, trace clock, drift ring): warm-up and
  /// measurement play distinct logs whose trace clocks both begin at zero.
  void reset_counters();

  /// Folds the monitor's current windowed gauges into the stats and
  /// returns them (call at result-packaging time).
  const AdaptStats& finalize_stats();
  const AdaptStats& stats() const noexcept { return stats_; }

  DriftMonitor& drift() noexcept { return monitor_; }
  const StreamSessionizer& sessionizer() const noexcept {
    return sessionizer_;
  }
  bool mining_in_flight() const noexcept { return mining_in_flight_; }

 private:
  void remine(bool drift_triggered);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  ModelSwap& swap_;
  ControllerOptions options_;
  StreamSessionizer sessionizer_;
  DriftMonitor monitor_;
  AdaptStats stats_;

  std::optional<sim::PeriodicTask> epoch_task_;
  std::vector<sim::EventHandle> oracle_events_;
  bool mining_in_flight_ = false;
  /// Monotonicized trace clock: max request timestamp seen so far.
  /// Closed-loop scheduling can locally reorder issues across
  /// connections; the window advances on the furthest timestamp.
  sim::SimTime trace_now_ = 0;
  /// Trace time not yet aged away, per model component; aging batches a
  /// full halflife of debt per pass (see ControllerOptions halflives).
  sim::SimTime pred_age_debt_ = 0;
  sim::SimTime pop_age_debt_ = 0;
  sim::SimTime last_age_mark_ = 0;  ///< trace_now_ at the last debt update
};

}  // namespace prord::adapt
