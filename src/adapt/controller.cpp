#include "adapt/controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace prord::adapt {

AdaptiveController::AdaptiveController(sim::Simulator& sim,
                                       cluster::Cluster& cluster,
                                       ModelSwap& swap,
                                       ControllerOptions options)
    : sim_(sim),
      cluster_(cluster),
      swap_(swap),
      options_(options),
      sessionizer_(options.window, options.mining.session),
      monitor_(options.drift) {
  if (options_.epoch <= 0)
    throw std::invalid_argument("AdaptiveController: epoch must be > 0");
}

void AdaptiveController::on_request(const trace::Request& req) {
  if (req.at > trace_now_) trace_now_ = req.at;
  sessionizer_.observe(req);
}

void AdaptiveController::on_prediction(bool correct) {
  const sim::SimTime now = sim_.now();
  monitor_.on_prediction(correct, now);
  // Early re-mine on drift — only while the epoch loop is live (the
  // oracle and paused states must not start background mining).
  if (!epoch_task_ || mining_in_flight_) return;
  if (monitor_.should_trigger(now)) {
    ++stats_.drift_triggers;
    remine(/*drift_triggered=*/true);
  }
}

void AdaptiveController::on_prefetch_issued() {
  monitor_.on_prefetch_issued(sim_.now());
}

void AdaptiveController::on_prefetch_used() {
  monitor_.on_prefetch_used(sim_.now());
}

void AdaptiveController::start() {
  if (epoch_task_) return;
  epoch_task_.emplace(sim_, options_.epoch,
                      [this] { remine(/*drift_triggered=*/false); });
}

void AdaptiveController::pause() {
  epoch_task_.reset();
  for (const auto h : oracle_events_) sim_.cancel(h);
  oracle_events_.clear();
}

void AdaptiveController::schedule_oracle(
    std::vector<std::shared_ptr<logmining::MiningModel>> models,
    sim::SimTime phase_length) {
  if (models.empty()) return;
  if (phase_length <= 0)
    throw std::invalid_argument(
        "AdaptiveController: oracle phase_length must be > 0");
  ++stats_.remines;
  stats_.epoch = swap_.publish(std::move(models.front()));
  for (std::size_t k = 1; k < models.size(); ++k) {
    oracle_events_.push_back(sim_.schedule(
        phase_length * static_cast<sim::SimTime>(k),
        [this, model = std::move(models[k])]() mutable {
          ++stats_.remines;
          stats_.epoch = swap_.publish(std::move(model));
          monitor_.note_remine(sim_.now());
        }));
  }
}

void AdaptiveController::remine(bool drift_triggered) {
  const sim::SimTime now = sim_.now();
  if (mining_in_flight_) {  // the mining thread is still on the last epoch
    ++stats_.skipped;
    return;
  }
  auto snap = sessionizer_.snapshot(trace_now_);
  if (snap.requests.empty()) {
    ++stats_.skipped;
    return;
  }
  stats_.window_requests = snap.requests.size();
  stats_.window_sessions = snap.sessions.size();

  // The model is computed eagerly (deterministic state at tick time) but
  // publishes only once the mining thread's CPU cost has been paid —
  // either on a serving back-end (stealing real capacity) or on a
  // dedicated mining node.
  const auto serving = swap_.current();
  auto model = std::make_shared<logmining::MiningModel>(
      snap.sessions, snap.requests, options_.mining,
      options_.warm_start ? serving->model.get() : nullptr);
  if (options_.warm_start) {
    // Age by trace time elapsed since the state last decayed, batched so
    // the integer counters don't bleed singletons on near-1 multipliers:
    // decay applies once per elapsed halflife, with an independent debt
    // per model component.
    const sim::SimTime elapsed = trace_now_ - last_age_mark_;
    last_age_mark_ = trace_now_;
    if (options_.predictor_halflife > 0) {
      pred_age_debt_ += elapsed;
      if (pred_age_debt_ >= options_.predictor_halflife) {
        const double keep =
            std::exp2(-static_cast<double>(pred_age_debt_) /
                      static_cast<double>(options_.predictor_halflife));
        // min_count 1: decay re-ranks successors toward recent traffic
        // but never evicts a context — losing coverage (no guess at all)
        // costs more accuracy than a stale rank.
        model->predictor().age(std::max(keep, 0.01), /*min_count=*/1);
        pred_age_debt_ = 0;
      }
    }
    if (options_.popularity_halflife > 0) {
      pop_age_debt_ += elapsed;
      if (pop_age_debt_ >= options_.popularity_halflife) {
        const double keep =
            std::exp2(-static_cast<double>(pop_age_debt_) /
                      static_cast<double>(options_.popularity_halflife));
        // The tracker's own per-entry decay keys on the simulation clock,
        // which time_scale compresses to near-standstill — this re-mine
        // decay is the only forgetting the carried counters get, and it
        // is what lets the rank table (placement, replication) follow the
        // hot set across phases.
        model->popularity().age(std::max(keep, 0.01));
        pop_age_debt_ = 0;
      }
    }
  }
  const auto cost = static_cast<sim::SimTime>(
      options_.mining_cost_base +
      options_.mining_cost_per_request *
          static_cast<sim::SimTime>(snap.requests.size()));
  mining_in_flight_ = true;
  stats_.mining_busy += cost;

  auto publish = [this, model = std::move(model), drift_triggered,
                  started = now]() mutable {
    mining_in_flight_ = false;
    ++stats_.remines;
    if (drift_triggered) ++stats_.drift_remines;
    stats_.publish_delay += sim_.now() - started;
    stats_.epoch = swap_.publish(std::move(model));
    monitor_.note_remine(sim_.now());
  };

  const std::int32_t backend = options_.mining_backend;
  if (backend >= 0 &&
      static_cast<std::uint32_t>(backend) < cluster_.size()) {
    cluster_.backend(static_cast<cluster::ServerId>(backend))
        .cpu()
        .submit(sim_, cost, std::move(publish));
  } else {
    sim_.schedule(cost, std::move(publish));
  }
}

void AdaptiveController::reset_counters() {
  stats_ = AdaptStats{};
  stats_.epoch = swap_.epoch();
  // The warm-up and measurement traces are distinct logs whose wall
  // clocks both start at zero — carrying the window across the boundary
  // would freeze it at the warm-up's horizon and it would never prune
  // again. Restart the stream (and the drift verdict) cleanly.
  sessionizer_.clear();
  trace_now_ = 0;
  pred_age_debt_ = 0;
  pop_age_debt_ = 0;
  last_age_mark_ = 0;
  monitor_.note_remine(sim_.now());
}

const AdaptStats& AdaptiveController::finalize_stats() {
  const sim::SimTime now = sim_.now();
  stats_.final_hit_rate = monitor_.hit_rate(now);
  stats_.final_prefetch_waste = monitor_.prefetch_waste(now);
  return stats_;
}

}  // namespace prord::adapt
