// Incremental session reconstruction over the live dispatch stream.
//
// The offline pass (logmining::build_sessions) gets a complete, sorted
// log; the online loop sees one request at a time and must keep only a
// sliding window of recent traffic. This component maintains, in O(1)
// amortized per request:
//   - a window of raw requests (bundle + popularity re-mining input),
//   - per-client open navigation sessions, closed by the same inactivity
//     heuristic the offline pass uses,
//   - a bounded list of recently closed sessions.
// snapshot() hands the epoch miner a self-consistent (sessions, requests)
// view of the window.
//
// Clock: everything here runs on the *trace* clock (`Request::at`, never
// compressed by time_scale), so the online miner shares the offline
// mining configuration verbatim and a saturated cluster that stretches
// the simulated run cannot shrink the mining sample. Closed-loop
// scheduling reorders dispatches *across* clients, so the global stream
// is only near-sorted; per client, HTTP/1.1 serialization keeps
// timestamps monotonic, which is all sessionization needs. Callers track
// the high-water mark (max `at` seen) and prune/snapshot against it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "logmining/session.h"
#include "trace/workload.h"

namespace prord::adapt {

/// What the epoch miner re-mines from: navigation sessions (predictor
/// training) plus the raw windowed requests (bundles + popularity).
struct StreamSnapshot {
  std::vector<logmining::Session> sessions;  ///< by (start, client)
  std::vector<trace::Request> requests;      ///< in dispatch order
};

class StreamSessionizer {
 public:
  /// `window` bounds how far back (in trace time) re-mining looks;
  /// `options` is the same session-splitting heuristic the offline pass
  /// uses, unscaled.
  StreamSessionizer(sim::SimTime window, logmining::SessionOptions options);

  /// Feeds one dispatched request. Windowing and session splitting key on
  /// `req.at` (the trace clock). Per client, timestamps must be
  /// non-decreasing (they are: a client's requests are serialized);
  /// across clients any interleaving is fine.
  void observe(const trace::Request& req);

  /// Drops window-expired requests and sessions; closes open sessions
  /// past the inactivity timeout. `now` is the stream's high-water mark
  /// on the trace clock.
  void prune(sim::SimTime now);

  /// Prunes, then copies out the current window.
  StreamSnapshot snapshot(sim::SimTime now);

  /// Forgets everything (measurement-phase boundary: the warm-up and
  /// measurement logs have independent trace clocks).
  void clear();

  std::size_t window_requests() const noexcept { return window_.size(); }
  /// Open + closed sessions currently inside the window.
  std::size_t window_sessions() const noexcept {
    return open_.size() + closed_.size();
  }
  std::uint64_t total_observed() const noexcept { return total_observed_; }

 private:
  struct OpenSession {
    logmining::Session session;
    sim::SimTime last_seen = 0;
  };

  void close(OpenSession&& open);

  sim::SimTime span_;
  logmining::SessionOptions options_;
  std::deque<trace::Request> window_;  ///< dispatch order, near-sorted `at`
  /// Keyed by client id; ordered so snapshots are deterministic.
  std::map<std::uint32_t, OpenSession> open_;
  std::deque<logmining::Session> closed_;  ///< in close order
  std::uint64_t total_observed_ = 0;
};

}  // namespace prord::adapt
