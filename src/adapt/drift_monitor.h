// Drift detection over a rolling horizon.
//
// The quality signal the paper's online loop lacks: when the request mix
// shifts, the mined model keeps predicting yesterday's hot set — hit-rate
// collapses and prefetches turn into pure waste long before the next
// scheduled re-mine. The monitor keeps prediction and prefetch outcomes in
// a bucketed ring covering a rolling horizon and triggers an early re-mine
// when the windowed prediction hit-rate drops below a threshold (with a
// minimum-sample guard against cold-start noise and a cooldown so one bad
// stretch doesn't cause a re-mining storm).
#pragma once

#include <array>
#include <cstdint>

#include "simcore/sim_time.h"

namespace prord::adapt {

struct DriftMonitorOptions {
  /// Rolling horizon the hit-rate is computed over (simulation clock).
  sim::SimTime horizon = sim::sec(1.0);
  /// Trigger when windowed prediction hit-rate < threshold. <= 0 disables
  /// triggering (the monitor still reports its gauges).
  double threshold = 0.0;
  /// Predictions needed inside the horizon before the rate is trusted.
  std::uint64_t min_samples = 50;
  /// Minimum gap between triggers; any re-mine (scheduled or triggered)
  /// restarts it via note_remine().
  sim::SimTime cooldown = sim::sec(1.0);
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions options);

  void on_prediction(bool correct, sim::SimTime now);
  void on_prefetch_issued(sim::SimTime now);
  void on_prefetch_used(sim::SimTime now);

  /// Windowed prediction hit-rate; -1 while under min_samples.
  double hit_rate(sim::SimTime now);
  /// Windowed fraction of issued prefetches never routed to; -1 without
  /// any issued prefetch in the horizon.
  double prefetch_waste(sim::SimTime now);

  /// True when the hit-rate is trustworthy, below threshold, and the
  /// cooldown has elapsed. A true return arms the cooldown itself, so one
  /// drift episode yields one trigger.
  bool should_trigger(sim::SimTime now);

  /// A re-mine happened (any cause): restart the cooldown and clear the
  /// ring — the new model deserves a fresh verdict.
  void note_remine(sim::SimTime now);

  const DriftMonitorOptions& options() const noexcept { return options_; }

 private:
  struct Bucket {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t issued = 0;
    std::uint64_t used = 0;
  };
  struct Totals {
    std::uint64_t hits = 0, misses = 0, issued = 0, used = 0;
  };

  /// Ring granularity: horizon/16 per bucket keeps expiry error under 7%.
  static constexpr std::size_t kBuckets = 16;

  Bucket& advance(sim::SimTime now);
  Totals totals(sim::SimTime now);

  DriftMonitorOptions options_;
  sim::SimTime bucket_span_;
  std::array<Bucket, kBuckets> ring_{};
  std::int64_t head_ = -1;  ///< absolute index of the newest bucket
  sim::SimTime last_remine_ = 0;
  bool cooldown_armed_ = true;  ///< cold start counts as "just re-mined"
};

}  // namespace prord::adapt
