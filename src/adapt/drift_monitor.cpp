#include "adapt/drift_monitor.h"

#include <algorithm>
#include <stdexcept>

namespace prord::adapt {

DriftMonitor::DriftMonitor(DriftMonitorOptions options)
    : options_(options),
      bucket_span_(std::max<sim::SimTime>(
          1, options.horizon / static_cast<sim::SimTime>(kBuckets))) {
  if (options.horizon <= 0)
    throw std::invalid_argument("DriftMonitor: horizon must be > 0");
}

DriftMonitor::Bucket& DriftMonitor::advance(sim::SimTime now) {
  const std::int64_t abs_index =
      static_cast<std::int64_t>(now / bucket_span_);
  if (head_ < 0) {
    head_ = abs_index;
  } else if (abs_index > head_) {
    // Zero every bucket the clock skipped over; a jump past a full ring
    // wipes everything.
    const std::int64_t steps =
        std::min<std::int64_t>(abs_index - head_, kBuckets);
    for (std::int64_t i = 1; i <= steps; ++i)
      ring_[static_cast<std::size_t>((head_ + i) % kBuckets)] = Bucket{};
    head_ = abs_index;
  }
  return ring_[static_cast<std::size_t>(head_ % kBuckets)];
}

DriftMonitor::Totals DriftMonitor::totals(sim::SimTime now) {
  advance(now);  // expire stale buckets before summing
  Totals t;
  for (const auto& b : ring_) {
    t.hits += b.hits;
    t.misses += b.misses;
    t.issued += b.issued;
    t.used += b.used;
  }
  return t;
}

void DriftMonitor::on_prediction(bool correct, sim::SimTime now) {
  auto& b = advance(now);
  if (correct)
    ++b.hits;
  else
    ++b.misses;
}

void DriftMonitor::on_prefetch_issued(sim::SimTime now) {
  ++advance(now).issued;
}

void DriftMonitor::on_prefetch_used(sim::SimTime now) {
  ++advance(now).used;
}

double DriftMonitor::hit_rate(sim::SimTime now) {
  const Totals t = totals(now);
  const std::uint64_t n = t.hits + t.misses;
  if (n < options_.min_samples) return -1.0;
  return static_cast<double>(t.hits) / static_cast<double>(n);
}

double DriftMonitor::prefetch_waste(sim::SimTime now) {
  const Totals t = totals(now);
  if (t.issued == 0) return -1.0;
  const std::uint64_t used = std::min(t.used, t.issued);
  return static_cast<double>(t.issued - used) /
         static_cast<double>(t.issued);
}

bool DriftMonitor::should_trigger(sim::SimTime now) {
  if (options_.threshold <= 0.0) return false;
  if (cooldown_armed_ && now - last_remine_ < options_.cooldown) return false;
  const double rate = hit_rate(now);
  if (rate < 0.0 || rate >= options_.threshold) return false;
  last_remine_ = now;
  cooldown_armed_ = true;
  return true;
}

void DriftMonitor::note_remine(sim::SimTime now) {
  last_remine_ = now;
  cooldown_armed_ = true;
  // The outcomes in the ring judged the *old* model; keep them and the
  // fresh model inherits a verdict it didn't earn.
  ring_.fill(Bucket{});
}

}  // namespace prord::adapt
