// Double-buffered model publication.
//
// The epoch miner produces a fresh MiningModel on its background mining
// thread; the dispatcher and back-ends must pick it up without ever
// observing a half-swapped mix of old predictor + new bundle table. The
// swap is snapshot-based: readers take one shared_ptr to an immutable
// Snapshot (epoch + model) — a single pointer read — so a reader holds a
// consistent generation for as long as it keeps the handle. Publication
// retires the current snapshot into a one-deep previous buffer, keeping
// the outgoing model alive for whatever in-flight work still references
// it even if every external handle is dropped.
//
// The simulation itself is single-threaded; the mutex makes the component
// safe for the multi-process deployment the paper describes (mining
// process -> distributor hand-off) and costs nothing here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "logmining/mining_model.h"

namespace prord::adapt {

class ModelSwap {
 public:
  /// One published generation. Immutable after publication: readers that
  /// hold a snapshot see this exact (epoch, model) pair forever.
  struct Snapshot {
    std::uint64_t epoch = 0;
    std::shared_ptr<logmining::MiningModel> model;
  };

  using Listener = std::function<void(const Snapshot&)>;

  /// Seeds epoch 0 with the offline-mined model.
  explicit ModelSwap(std::shared_ptr<logmining::MiningModel> initial);

  /// Current generation; never null. A caller-held snapshot stays valid
  /// (and unchanged) across any number of subsequent publishes.
  std::shared_ptr<const Snapshot> current() const;

  std::uint64_t epoch() const;

  /// Publishes a re-mined model as the next epoch and notifies listeners
  /// (outside the lock, in subscription order). Returns the new epoch.
  std::uint64_t publish(std::shared_ptr<logmining::MiningModel> model);

  /// Registers a publication listener (e.g. the dispatcher policy's
  /// set_model). Not invoked for generations published before the call.
  void subscribe(Listener listener);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  std::shared_ptr<const Snapshot> previous_;  ///< retiring generation
  std::vector<Listener> listeners_;
};

}  // namespace prord::adapt
