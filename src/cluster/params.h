// Cluster system parameters (paper Table 1).
//
// Where Table 1 is explicit we use its value verbatim; two rows are garbled
// or underspecified in the published text and are filled from the LARD
// lineage the paper builds on (Pai et al., ASPLOS'98):
//   - "Disk latency ms (fixed) µs per KB": 10 ms fixed + 40 µs/KB,
//   - back-end CPU costs, which Table 1 omits entirely.
// All values are configurable; the benches print the configuration they ran.
#pragma once

#include <cstdint>

#include "cluster/cache.h"
#include "simcore/sim_time.h"

namespace prord::cluster {

using ServerId = std::uint32_t;
inline constexpr ServerId kNoServer = 0xFFFFFFFFu;

struct ClusterParams {
  std::uint32_t num_backends = 8;
  /// Distributor instances. 1 = the paper's Fig. 1 single front-end.
  /// More reproduces the decentralized content-aware architecture of
  /// Aron et al. [4]: an L4 switch spreads connections over co-located
  /// distributors, which still consult one central dispatcher (each
  /// contact then pays a network round trip) — the single point of
  /// failure and dispatch overhead Section 2.1 criticizes.
  std::uint32_t num_frontends = 1;

  // --- Memory (Table 1: 256 MB total, 128 kernel + 128 application;
  //     72 MB pinned, variable). The application memory holds the file
  //     cache; the pinned region inside it is reserved for proactive
  //     placement (prefetch + replication).
  std::uint64_t app_memory_bytes = 128ull * 1024 * 1024;
  std::uint64_t pinned_memory_bytes = 72ull * 1024 * 1024;
  /// Demand-region replacement: LRU (default) or GDSF ([30], extended by
  /// the paper's reference [20]).
  DemandEviction demand_eviction = DemandEviction::kLru;

  // --- Front end.
  sim::SimTime fe_analyze = sim::usec(10);     ///< read+parse one request
  sim::SimTime fe_dispatch = sim::usec(30);    ///< dispatcher (locality) lookup
  sim::SimTime tcp_handoff = sim::usec(200);   ///< Table 1: handoff latency
  /// Distributor CPU consumed per TCP handoff (connection-state packaging
  /// and transfer). This is the front-end overhead that makes per-request
  /// handoff schemes expensive (Section 2.1.1) and that PRORD's
  /// dispatch-free forwarding avoids.
  sim::SimTime fe_handoff_cpu = sim::usec(100);
  sim::SimTime connection_latency = sim::usec(150);  ///< Table 1: conn setup

  // --- Back end CPU.
  sim::SimTime be_request_cpu = sim::usec(40);  ///< per-request processing
  sim::SimTime be_copy_per_kb = sim::usec(10);  ///< memory copy of response
  /// Script/DB execution time for a dynamic (CGI-style) request. Dynamic
  /// responses are generated on the CPU and never cached.
  sim::SimTime dynamic_cpu = sim::msec(3);

  // --- Disk.
  sim::SimTime disk_fixed = sim::msec(10);      ///< seek + rotation
  sim::SimTime disk_per_kb = sim::usec(40);     ///< sequential transfer
  /// Prefetch admission: a proactive read is dropped when the disk already
  /// has this much queued work — prefetching must never starve demand
  /// misses (the flip side of Algorithm 2's confidence threshold).
  sim::SimTime prefetch_backlog_limit = sim::msec(20);

  // --- Failure semantics (fault-injection runs; see docs/FAULTS.md).
  /// Client-side timeout on a dead connection: a request sent to (or in
  /// flight on) a crashed back-end reports failure this long after the
  /// send instead of ever completing.
  sim::SimTime failure_timeout = sim::msec(500);

  // --- Interconnect (Table 1: 100 Mbps Fast Ethernet = 80 µs/KB).
  sim::SimTime net_per_kb = sim::usec(80);
  sim::SimTime net_latency = sim::usec(150);
  /// Replication admission: skip a push when the target NIC already has
  /// this much queued transfer work.
  sim::SimTime replica_backlog_limit = sim::msec(20);

  // --- Power (Table 1): fraction of full power per state.
  double power_on = 1.0;
  double power_hibernate = 0.05;
  double power_off = 0.0;
};

}  // namespace prord::cluster
