#include "cluster/backend_server.h"

#include <utility>

#include "obs/flight_recorder.h"

namespace prord::cluster {
namespace {

sim::SimTime per_kb(sim::SimTime rate, std::uint32_t bytes) {
  // Round up to whole-KB blocks, matching Table 1's "per 1 KB block".
  const std::uint64_t kb = (static_cast<std::uint64_t>(bytes) + 1023) / 1024;
  return rate * static_cast<sim::SimTime>(kb);
}

}  // namespace

BackendServer::BackendServer(sim::Simulator& sim, ServerId id,
                             const ClusterParams& params,
                             std::uint64_t demand_capacity,
                             std::uint64_t pinned_capacity)
    : sim_(sim),
      id_(id),
      params_(params),
      cache_(demand_capacity, pinned_capacity, params.demand_eviction) {}

sim::SimTime BackendServer::cpu_service(std::uint32_t bytes) const {
  return params_.be_request_cpu + per_kb(params_.be_copy_per_kb, bytes);
}

sim::SimTime BackendServer::egress_delay(std::uint32_t bytes) const {
  return params_.net_latency + per_kb(params_.net_per_kb, bytes);
}

void BackendServer::fail_request(ResponseFn done) {
  if (!done) return;
  const sim::SimTime at = sim_.now() + params_.failure_timeout;
  sim_.schedule_at(at, [done = std::move(done), at]() mutable {
    done(at, /*ok=*/false);
  });
}

void BackendServer::read_from_disk(trace::FileId file, std::uint32_t bytes,
                                   bool pinned, sim::EventFn done) {
  auto it = inflight_reads_.find(file);
  if (it != inflight_reads_.end()) {
    // Share the in-flight fetch: no second disk read for the same file.
    if (done) it->second.push_back(std::move(done));
    return;
  }
  auto& waiters = inflight_reads_[file];
  if (done) waiters.push_back(std::move(done));
  ++stats_.disk_reads;
  const sim::SimTime service =
      scaled(params_.disk_fixed + per_kb(params_.disk_per_kb, bytes));
  const std::uint64_t inc = incarnation_;
  disk_.submit(sim_, service, [this, file, bytes, pinned, inc] {
    // The process that issued this read crashed; its waiter map was
    // already drained by crash() and the data never reached memory.
    if (inc != incarnation_) return;
    if (pinned)
      cache_.insert_pinned(file, bytes);
    else
      cache_.insert_demand(file, bytes);
    auto node = inflight_reads_.extract(file);
    if (!node.empty())
      for (auto& waiter : node.mapped()) waiter();
  });
}

void BackendServer::serve(trace::FileId file, std::uint32_t bytes,
                          sim::SimTime extra_latency, ResponseFn done,
                          bool dynamic) {
  if (!alive_ || power_ != PowerState::kOn) {
    fail_request(std::move(done));
    return;
  }
  ++active_;
  const std::uint64_t inc = incarnation_;
  auto finish = [this, bytes, dynamic, inc,
                 done = std::move(done)](sim::SimTime at) mutable {
    if (inc != incarnation_) {
      // The serving process died under this request: the connection hangs
      // until the client times out. crash() already zeroed active_/stats_.
      if (done) done(at + params_.failure_timeout, /*ok=*/false);
      return;
    }
    --active_;
    ++stats_.requests_served;
    stats_.dynamic_served += dynamic;
    stats_.bytes_served += bytes;
    if (done) done(at, /*ok=*/true);
  };
  auto respond = [this, bytes, inc, finish = std::move(finish)]() mutable {
    if (inc != incarnation_) {
      finish(sim_.now());
      return;
    }
    const sim::SimTime completion = sim_.now() + egress_delay(bytes);
    sim_.schedule_at(completion, [finish = std::move(finish), completion]() mutable {
      finish(completion);
    });
  };

  if (dynamic) {
    // Script execution on the CPU; nothing touches cache or disk.
    const sim::SimTime service =
        scaled(cpu_service(bytes) + params_.dynamic_cpu);
    sim_.schedule(extra_latency,
                  [this, service, respond = std::move(respond)]() mutable {
                    cpu_.submit(sim_, service, std::move(respond));
                  });
    return;
  }

  // The extra latency (handoff/forwarding) delays entry into the CPU queue.
  sim_.schedule(extra_latency, [this, file, bytes, inc,
                                respond = std::move(respond)]() mutable {
    if (inc != incarnation_) {
      respond();  // fails through the incarnation guard
      return;
    }
    cpu_.submit(
        sim_, scaled(cpu_service(bytes)),
        [this, file, bytes, inc, respond = std::move(respond)]() mutable {
          if (inc != incarnation_ || cache_.lookup(file)) {
            respond();
            return;
          }
          read_from_disk(file, bytes, /*pinned=*/false, std::move(respond));
        });
  });
}

void BackendServer::serve_cooperative(trace::FileId file, std::uint32_t bytes,
                                      sim::SimTime extra_latency,
                                      BackendServer* source, ResponseFn done) {
  if (!alive_ || power_ != PowerState::kOn) {
    fail_request(std::move(done));
    return;
  }
  ++active_;
  const std::uint64_t inc = incarnation_;
  auto finish = [this, bytes, inc,
                 done = std::move(done)](sim::SimTime at) mutable {
    if (inc != incarnation_) {
      if (done) done(at + params_.failure_timeout, /*ok=*/false);
      return;
    }
    --active_;
    ++stats_.requests_served;
    stats_.bytes_served += bytes;
    if (done) done(at, /*ok=*/true);
  };
  auto respond = [this, bytes, inc, finish = std::move(finish)]() mutable {
    if (inc != incarnation_) {
      finish(sim_.now());
      return;
    }
    const sim::SimTime completion = sim_.now() + egress_delay(bytes);
    sim_.schedule_at(completion, [finish = std::move(finish), completion]() mutable {
      finish(completion);
    });
  };

  sim_.schedule(extra_latency, [this, file, bytes, source, inc,
                                respond = std::move(respond)]() mutable {
    if (inc != incarnation_) {
      respond();
      return;
    }
    cpu_.submit(sim_, scaled(cpu_service(bytes)), [this, file, bytes, source,
                                                   inc,
                                                   respond = std::move(
                                                       respond)]() mutable {
      if (inc != incarnation_ || cache_.lookup(file)) {
        respond();
        return;
      }
      // Re-check the source at pull time: it may have evicted the file,
      // crashed, or powered down since the routing decision.
      if (source && source != this && source->available() &&
          source->alive() && source->caches(file)) {
        ++stats_.cooperative_pulls;
        source->nic().submit(
            sim_, params_.net_latency + per_kb(params_.net_per_kb, bytes),
            [this, file, bytes, inc, respond = std::move(respond)]() mutable {
              if (inc == incarnation_) cache_.insert_demand(file, bytes);
              respond();
            });
        return;
      }
      read_from_disk(file, bytes, /*pinned=*/false, std::move(respond));
    });
  });
}

void BackendServer::prefetch(trace::FileId file, std::uint32_t bytes,
                             bool pinned) {
  if (!alive_ || power_ != PowerState::kOn) return;
  if (cache_.contains(file)) {
    // Refresh the speculative pin so it does not age out mid-burst.
    if (pinned) cache_.insert_pinned(file, bytes);
    return;
  }
  if (inflight_reads_.contains(file)) return;  // already being fetched
  if (disk_.backlog(sim_.now()) > params_.prefetch_backlog_limit) {
    ++stats_.prefetches_skipped;
    return;  // demand reads own the disk right now
  }
  ++stats_.prefetches_issued;
  obs::flight_record(obs::FlightEventType::kPrefetchPush,
                     static_cast<std::uint32_t>(id_), file, bytes);
  if (proactive_observer_) proactive_observer_(file, bytes, pinned);
  read_from_disk(file, bytes, pinned, {});
}

void BackendServer::relay(std::uint32_t bytes) {
  if (!alive_ || power_ != PowerState::kOn) return;
  cpu_.submit(sim_, scaled(per_kb(params_.be_copy_per_kb, bytes)), {});
}

void BackendServer::install_replica(trace::FileId file, std::uint32_t bytes,
                                    bool pinned) {
  if (!alive_ || power_ != PowerState::kOn) return;
  ++stats_.replications_received;
  obs::flight_record(obs::FlightEventType::kReplicaPush,
                     static_cast<std::uint32_t>(id_), file, bytes);
  if (proactive_observer_) proactive_observer_(file, bytes, pinned);
  if (pinned)
    cache_.insert_pinned(file, bytes);
  else
    cache_.insert_demand(file, bytes);
}

void BackendServer::live_begin(trace::FileId file, std::uint32_t bytes,
                               bool dynamic) {
  ++active_;
  ++stats_.requests_served;
  stats_.dynamic_served += dynamic;
  stats_.bytes_served += bytes;
  if (dynamic) return;  // generated content never touches the cache
  if (!cache_.lookup(file)) {
    ++stats_.disk_reads;
    cache_.insert_demand(file, bytes);
  }
}

void BackendServer::crash() {
  if (!alive_ || power_ != PowerState::kOn) return;
  alive_ = false;
  down_since_ = sim_.now();
  ++incarnation_;
  active_ = 0;
  slow_factor_ = 1.0;
  cpu_.clear(sim_.now());
  disk_.clear(sim_.now());
  nic_.clear(sim_.now());
  cache_.clear();
  // Drain the waiter map *after* the incarnation bump: each waiter is a
  // respond-closure that now fails through the guarded finish path, so
  // conservation (completed + failed == issued) holds across the crash.
  auto waiting = std::move(inflight_reads_);
  inflight_reads_.clear();
  for (auto& [file, waiters] : waiting)
    for (auto& waiter : waiters)
      if (waiter) waiter();
}

void BackendServer::restart() {
  if (alive_) return;
  alive_ = true;
  // The cache was lost at crash time; the process rejoins cold. The
  // front-end's marked_down belief clears on the next heartbeat.
}

void BackendServer::set_slowdown(double factor) {
  if (!alive_) return;
  slow_factor_ = factor < 1.0 ? 1.0 : factor;
}

void BackendServer::set_power_state(PowerState s) {
  if (s == power_) return;
  const sim::SimTime now = sim_.now();
  const double factor = power_ == PowerState::kOn ? params_.power_on
                        : power_ == PowerState::kHibernate
                            ? params_.power_hibernate
                            : params_.power_off;
  energy_ += factor * sim::to_seconds(now - power_since_);
  power_ = s;
  power_since_ = now;
  if (s == PowerState::kOff) cache_.clear();  // DRAM loses content
}

double BackendServer::energy(sim::SimTime now) const {
  const double factor = power_ == PowerState::kOn ? params_.power_on
                        : power_ == PowerState::kHibernate
                            ? params_.power_hibernate
                            : params_.power_off;
  return energy_ + factor * sim::to_seconds(now - power_since_);
}

}  // namespace prord::cluster
