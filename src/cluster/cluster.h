// Cluster assembly: front-end (distributor CPU + dispatcher) plus N
// back-end servers sharing one parameter set.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "cluster/backend_server.h"
#include "cluster/dispatcher.h"
#include "cluster/params.h"
#include "cluster/resources.h"
#include "simcore/simulator.h"

namespace prord::cluster {

class Cluster {
 public:
  /// `demand_capacity`/`pinned_capacity` are per-back-end cache sizes in
  /// bytes. Experiments that sweep "fraction of site data in memory" set
  /// these from the trace's total footprint.
  Cluster(sim::Simulator& sim, const ClusterParams& params,
          std::uint64_t demand_capacity, std::uint64_t pinned_capacity);

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(backends_.size());
  }

  BackendServer& backend(ServerId id) { return *backends_.at(id); }
  const BackendServer& backend(ServerId id) const { return *backends_.at(id); }

  Dispatcher& dispatcher() noexcept { return dispatcher_; }
  const Dispatcher& dispatcher() const noexcept { return dispatcher_; }

  /// Front-end distributor CPUs. With one front-end (the default) every
  /// request passes through frontend_cpu(0); with several, the L4 switch
  /// pins each connection to one distributor.
  std::uint32_t num_frontends() const noexcept {
    return static_cast<std::uint32_t>(fe_cpus_.size());
  }
  FifoResource& frontend_cpu(std::uint32_t i = 0) { return fe_cpus_.at(i); }
  const FifoResource& frontend_cpu(std::uint32_t i = 0) const {
    return fe_cpus_.at(i);
  }
  /// Total distributor busy time across front-ends.
  sim::SimTime frontend_busy() const;

  /// Transfers `bytes` of `file` over `to`'s NIC into its pinned region
  /// (Algorithm 3's Replicate step). The interconnect is switched Fast
  /// Ethernet (Table 1), so transfers serialize per receiving NIC.
  /// Returns false (and moves nothing) when the target already holds the
  /// file, an identical transfer is still in flight, or the target NIC is
  /// too backlogged — replication must not melt the interconnect.
  bool push_replica(ServerId to, trace::FileId file, std::uint32_t bytes,
                    bool pinned = true);

  /// NIC service time for a payload of `bytes` at Table 1's 80 µs/KB.
  sim::SimTime transfer_time(std::uint32_t bytes) const;

  /// True if a replica transfer of `file` to `to` is still in flight.
  bool replica_pending(ServerId to, trace::FileId file) const {
    return pending_replicas_.contains(
        (static_cast<std::uint64_t>(file) << 32) | to);
  }

  /// Total NIC busy time across back-ends (interconnect utilization).
  sim::SimTime interconnect_busy() const;

  const ClusterParams& params() const noexcept { return params_; }
  sim::Simulator& sim() noexcept { return sim_; }

  /// Least-loaded available back-end (ties broken by lowest id).
  ServerId least_loaded() const;

  /// Mean open-request load across available back-ends.
  double average_load() const;

  /// Least-loaded among `candidates` (skips unavailable/unknown ids);
  /// kNoServer if none is usable.
  ServerId least_loaded_of(std::span<const ServerId> candidates) const;

  /// Aggregate served-request count across back-ends.
  std::uint64_t total_served() const;

  /// Zeroes all statistics while keeping caches warm: marks the boundary
  /// between a warm-up phase and the measured run.
  void reset_accounting();

 private:
  sim::Simulator& sim_;
  ClusterParams params_;
  std::vector<std::unique_ptr<BackendServer>> backends_;
  Dispatcher dispatcher_;
  std::vector<FifoResource> fe_cpus_;
  std::unordered_set<std::uint64_t> pending_replicas_;  ///< (file,to) keys
};

}  // namespace prord::cluster
