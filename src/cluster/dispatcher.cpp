#include "cluster/dispatcher.h"

#include <algorithm>
#include <utility>

namespace prord::cluster {

std::span<const ServerId> Dispatcher::lookup(trace::FileId file) {
  ++lookups_;
  return peek(file);
}

std::span<const ServerId> Dispatcher::peek(trace::FileId file) const {
  if (file >= entries_.size()) return {};
  return servers_of(entries_[file]);
}

void Dispatcher::assign(trace::FileId file, ServerId server) {
  if (file >= entries_.size()) entries_.resize(file + 1);
  Entry& e = entries_[file];
  const auto cur = servers_of(e);
  if (std::find(cur.begin(), cur.end(), server) != cur.end()) return;
  if (e.count == 0) ++tracked_;
  if (!e.spill.empty()) {
    e.spill.push_back(server);
  } else if (e.count < kInlineServers) {
    e.inline_[e.count] = server;
  } else {
    // Overflow: move the whole set into a (recycled) spill buffer so the
    // span stays contiguous.
    if (!free_spills_.empty()) {
      e.spill = std::move(free_spills_.back());
      free_spills_.pop_back();
    }
    e.spill.assign(e.inline_, e.inline_ + kInlineServers);
    e.spill.push_back(server);
  }
  ++e.count;
}

void Dispatcher::remove_from(Entry& e, ServerId server) {
  if (!e.spill.empty()) {
    std::erase(e.spill, server);
    if (e.spill.size() == e.count) return;  // wasn't assigned
    e.count = static_cast<std::uint32_t>(e.spill.size());
    if (e.count == 0) {
      retire_spill(e);
      --tracked_;
    }
    return;
  }
  ServerId* end = e.inline_ + e.count;
  ServerId* it = std::find(e.inline_, end, server);
  if (it == end) return;
  std::copy(it + 1, end, it);  // keep assignment order, like vector erase
  if (--e.count == 0) --tracked_;
}

void Dispatcher::retire_spill(Entry& e) {
  e.spill.clear();  // keeps capacity; next overflow reuses the buffer
  free_spills_.push_back(std::move(e.spill));
  e.spill = std::vector<ServerId>{};
}

void Dispatcher::unassign(trace::FileId file, ServerId server) {
  if (file >= entries_.size()) return;
  remove_from(entries_[file], server);
}

void Dispatcher::unassign_all(ServerId server) {
  for (Entry& e : entries_)
    if (e.count != 0) remove_from(e, server);
}

}  // namespace prord::cluster
