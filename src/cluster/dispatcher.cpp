#include "cluster/dispatcher.h"

#include <algorithm>

namespace prord::cluster {

std::span<const ServerId> Dispatcher::lookup(trace::FileId file) {
  ++lookups_;
  return peek(file);
}

std::span<const ServerId> Dispatcher::peek(trace::FileId file) const {
  const auto it = table_.find(file);
  if (it == table_.end()) return {};
  return it->second;
}

void Dispatcher::assign(trace::FileId file, ServerId server) {
  auto& servers = table_[file];
  if (std::find(servers.begin(), servers.end(), server) == servers.end())
    servers.push_back(server);
}

void Dispatcher::unassign(trace::FileId file, ServerId server) {
  const auto it = table_.find(file);
  if (it == table_.end()) return;
  std::erase(it->second, server);
  if (it->second.empty()) table_.erase(it);
}

void Dispatcher::unassign_all(ServerId server) {
  for (auto it = table_.begin(); it != table_.end();) {
    std::erase(it->second, server);
    it = it->second.empty() ? table_.erase(it) : std::next(it);
  }
}

}  // namespace prord::cluster
