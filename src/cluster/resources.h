// Queued resources: non-preemptive FIFO servers (CPU, disk, NIC).
//
// The classic lazy "busy-until" formulation: a job arriving at time t on a
// resource free at time b starts at max(t, b) and completes start+service.
// This is exact for work-conserving FIFO single servers and avoids one
// event per queue position.
#pragma once

#include <algorithm>
#include <cstdint>

#include "simcore/simulator.h"

namespace prord::cluster {

class FifoResource {
 public:
  /// Enqueues a job with the given service demand; `done` fires at
  /// completion time. Returns the completion time.
  sim::SimTime submit(sim::Simulator& sim, sim::SimTime service,
                      sim::EventFn done);

  /// Completion time of the last accepted job (== when the queue drains).
  sim::SimTime busy_until() const noexcept { return busy_until_; }

  /// Total service time ever accepted (for utilization reporting).
  sim::SimTime busy_time() const noexcept { return busy_time_; }

  /// Jobs submitted.
  std::uint64_t jobs() const noexcept { return jobs_; }

  /// Queueing delay a new job would currently experience.
  sim::SimTime backlog(sim::SimTime now) const noexcept {
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  /// Zeroes the utilization accounting (measurement-phase start). Pending
  /// work keeps its completion times.
  void reset_accounting() noexcept {
    busy_time_ = 0;
    jobs_ = 0;
  }

  /// Drops all queued work (process crash): new submissions start from
  /// `now`. Completion events already scheduled still fire — their
  /// closures must guard against the lost state themselves (the back-end
  /// does this with an incarnation counter).
  void clear(sim::SimTime now) noexcept {
    if (busy_until_ > now)
      busy_time_ = std::max<sim::SimTime>(0, busy_time_ - (busy_until_ - now));
    busy_until_ = now;
  }

 private:
  sim::SimTime busy_until_ = 0;
  sim::SimTime busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

inline sim::SimTime FifoResource::submit(sim::Simulator& sim,
                                         sim::SimTime service,
                                         sim::EventFn done) {
  const sim::SimTime start =
      busy_until_ > sim.now() ? busy_until_ : sim.now();
  busy_until_ = start + service;
  busy_time_ += service;
  ++jobs_;
  if (done) sim.schedule_at(busy_until_, std::move(done));
  return busy_until_;
}

}  // namespace prord::cluster
