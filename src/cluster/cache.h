// Back-end memory cache.
//
// Two regions, as in the paper's memory model:
//   - demand region: LRU over files loaded on cache misses,
//   - pinned region: files placed proactively (prefetch, replication),
//     managed by its own LRU so stale proactive content ages out.
// A file lives in at most one region; proactive placement of a file that is
// already demand-cached upgrades/refreshes it in place.
#pragma once

#include <cstdint>
#include <list>
#include <set>
#include <unordered_map>
#include <utility>

#include "trace/log_record.h"

namespace prord::cluster {

/// Demand-region replacement policy.
///
/// kLru is the classic web-server page cache. kGdsf is
/// Greedy-Dual-Size-Frequency (Cherkasova [30], extended by the paper's
/// reference [20]): victim = argmin H, with
///     H = L + frequency * cost / size
/// where L is the inflation clock (raised to each victim's H) and cost is
/// a per-KB retrieval estimate. GDSF prefers keeping small, hot, expensive
/// objects — a better fit than LRU when file sizes vary wildly.
enum class DemandEviction : std::uint8_t { kLru, kGdsf };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t demand_evictions = 0;
  std::uint64_t pinned_evictions = 0;

  double hit_rate() const noexcept {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class MemoryCache {
 public:
  /// Capacities in bytes. The pinned region is carved out of the same
  /// physical memory but accounted separately.
  MemoryCache(std::uint64_t demand_capacity, std::uint64_t pinned_capacity,
              DemandEviction eviction = DemandEviction::kLru);

  DemandEviction eviction_policy() const noexcept { return eviction_; }

  /// Look up a file on a request path: updates LRU order and hit/miss
  /// stats. Returns true on hit (either region).
  bool lookup(trace::FileId file);

  /// Non-mutating presence probe (no stats, no LRU update).
  bool contains(trace::FileId file) const;

  /// Inserts after a demand miss. Evicts LRU demand entries as needed.
  /// Files larger than the demand capacity are not cached (streamed).
  void insert_demand(trace::FileId file, std::uint64_t bytes);

  /// Proactive placement into the pinned region (prefetch/replication).
  /// Returns false (and places nothing) if bytes exceed pinned capacity.
  bool insert_pinned(trace::FileId file, std::uint64_t bytes);

  /// Drops a file from whichever region holds it.
  void erase(trace::FileId file);

  /// Drops a file only if it sits in the pinned region (replication
  /// retraction must not evict demand-cached copies).
  void erase_pinned(trace::FileId file);

  /// Drops everything (e.g. cache-size sweep reconfiguration).
  void clear();

  std::uint64_t demand_bytes() const noexcept { return demand_bytes_; }
  std::uint64_t pinned_bytes() const noexcept { return pinned_bytes_; }
  std::uint64_t demand_capacity() const noexcept { return demand_capacity_; }
  std::uint64_t pinned_capacity() const noexcept { return pinned_capacity_; }
  std::size_t num_files() const noexcept { return index_.size(); }

  const CacheStats& stats() const noexcept { return stats_; }

  /// Zeroes hit/miss/eviction counters without touching cache contents
  /// (used when a warm-up phase ends and measurement begins).
  void reset_stats() noexcept { stats_ = CacheStats{}; }

 private:
  struct Entry {
    trace::FileId file;
    std::uint64_t bytes;
    bool pinned;
    double freq = 1.0;      // GDSF access count
    double priority = 0.0;  // GDSF H value
  };
  using LruList = std::list<Entry>;

  void evict_lru(LruList& lru, std::uint64_t& used, std::uint64_t capacity,
                 std::uint64_t needed, std::uint64_t& evictions);
  void evict_gdsf(std::uint64_t needed);
  double gdsf_priority(const Entry& e) const;
  void gdsf_touch(LruList::iterator it);

  DemandEviction eviction_;
  std::uint64_t demand_capacity_;
  std::uint64_t pinned_capacity_;
  std::uint64_t demand_bytes_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  LruList demand_lru_;  // front = most recent (LRU mode); storage (GDSF)
  LruList pinned_lru_;
  std::unordered_map<trace::FileId, LruList::iterator> index_;
  // GDSF victim index: (priority, file) ordered ascending.
  std::set<std::pair<double, trace::FileId>> gdsf_index_;
  double gdsf_clock_ = 0.0;  // inflation clock L
  CacheStats stats_;
};

}  // namespace prord::cluster
