#include "cluster/cluster.h"

#include <stdexcept>

namespace prord::cluster {

Cluster::Cluster(sim::Simulator& sim, const ClusterParams& params,
                 std::uint64_t demand_capacity, std::uint64_t pinned_capacity)
    : sim_(sim), params_(params) {
  if (params.num_backends == 0)
    throw std::invalid_argument("Cluster: num_backends == 0");
  if (params.num_frontends == 0)
    throw std::invalid_argument("Cluster: num_frontends == 0");
  backends_.reserve(params.num_backends);
  for (std::uint32_t i = 0; i < params.num_backends; ++i)
    backends_.push_back(std::make_unique<BackendServer>(
        sim_, i, params_, demand_capacity, pinned_capacity));
  fe_cpus_.resize(params.num_frontends);
}

ServerId Cluster::least_loaded() const {
  ServerId best = kNoServer;
  std::uint32_t best_load = 0;
  for (const auto& be : backends_) {
    if (!be->available()) continue;
    if (best == kNoServer || be->load() < best_load) {
      best = be->id();
      best_load = be->load();
    }
  }
  return best;
}

double Cluster::average_load() const {
  double total = 0;
  std::uint32_t n = 0;
  for (const auto& be : backends_) {
    if (!be->available()) continue;
    total += be->load();
    ++n;
  }
  return n ? total / n : 0.0;
}

ServerId Cluster::least_loaded_of(std::span<const ServerId> candidates) const {
  ServerId best = kNoServer;
  std::uint32_t best_load = 0;
  for (ServerId id : candidates) {
    if (id >= backends_.size()) continue;
    const auto& be = *backends_[id];
    if (!be.available()) continue;
    if (best == kNoServer || be.load() < best_load ||
        (be.load() == best_load && id < best)) {
      best = id;
      best_load = be.load();
    }
  }
  return best;
}

void Cluster::reset_accounting() {
  for (auto& be : backends_) be->reset_stats();
  dispatcher_.reset_lookups();
  for (auto& fe : fe_cpus_) fe.reset_accounting();
}

sim::SimTime Cluster::frontend_busy() const {
  sim::SimTime total = 0;
  for (const auto& fe : fe_cpus_) total += fe.busy_time();
  return total;
}

sim::SimTime Cluster::transfer_time(std::uint32_t bytes) const {
  const std::uint64_t kb = (static_cast<std::uint64_t>(bytes) + 1023) / 1024;
  return params_.net_per_kb * static_cast<sim::SimTime>(kb);
}

sim::SimTime Cluster::interconnect_busy() const {
  sim::SimTime total = 0;
  for (const auto& be : backends_) total += be->nic().busy_time();
  return total;
}

bool Cluster::push_replica(ServerId to, trace::FileId file,
                           std::uint32_t bytes, bool pinned) {
  BackendServer& target = backend(to);
  if (!target.alive() || target.power_state() != PowerState::kOn) return false;
  if (target.caches(file)) return false;
  const std::uint64_t key = (static_cast<std::uint64_t>(file) << 32) | to;
  if (pending_replicas_.contains(key)) return false;
  if (target.nic().backlog(sim_.now()) > params_.replica_backlog_limit)
    return false;
  pending_replicas_.insert(key);
  const std::uint64_t inc = target.incarnation();
  target.nic().submit(sim_, transfer_time(bytes),
                      [this, &target, file, bytes, key, pinned, inc] {
                        // Always release the key; install only if the target
                        // process that accepted the transfer still exists.
                        pending_replicas_.erase(key);
                        if (inc != target.incarnation()) return;
                        target.install_replica(file, bytes, pinned);
                      });
  return true;
}

std::uint64_t Cluster::total_served() const {
  std::uint64_t total = 0;
  for (const auto& be : backends_) total += be->stats().requests_served;
  return total;
}

}  // namespace prord::cluster
