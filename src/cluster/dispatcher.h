// Dispatcher: the locality oracle the distributor consults.
//
// Keeps the file -> {servers believed to cache it} map that locality-aware
// policies build up as they route (LARD's server[target] state, generalized
// to server *sets* for replication). Every lookup is counted — Fig. 6's
// "frequency of dispatches" is exactly this counter, and PRORD's headline
// front-end win is how rarely it needs to ask.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/params.h"
#include "trace/log_record.h"

namespace prord::cluster {

class Dispatcher {
 public:
  /// Servers assigned/known for a file (possibly empty). Counted as one
  /// dispatcher contact.
  std::span<const ServerId> lookup(trace::FileId file);

  /// Uncounted internal read (policy bookkeeping, not a front-end contact).
  std::span<const ServerId> peek(trace::FileId file) const;

  /// Records that `server` now holds/serves `file`.
  void assign(trace::FileId file, ServerId server);

  /// Removes one server from a file's set (eviction/retraction).
  void unassign(trace::FileId file, ServerId server);

  /// Drops all assignments for a server (power-off, failure).
  void unassign_all(ServerId server);

  std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() noexcept { lookups_ = 0; }
  std::size_t num_files_tracked() const noexcept { return table_.size(); }

 private:
  std::unordered_map<trace::FileId, std::vector<ServerId>> table_;
  std::uint64_t lookups_ = 0;
};

}  // namespace prord::cluster
