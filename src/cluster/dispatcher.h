// Dispatcher: the locality oracle the distributor consults.
//
// Keeps the file -> {servers believed to cache it} map that locality-aware
// policies build up as they route (LARD's server[target] state, generalized
// to server *sets* for replication). Every lookup is counted — Fig. 6's
// "frequency of dispatches" is exactly this counter, and PRORD's headline
// front-end win is how rarely it needs to ask.
//
// FileIds are dense (FileTable interns them), so the map is a flat vector
// indexed by file: a lookup is one bounds check and one load instead of a
// hash probe. Each entry keeps up to kInlineServers assignments inline —
// enough for every replication degree the benches use — and spills to a
// vector only beyond that; retired spill buffers are recycled through a
// freelist so steady-state assign/unassign churn allocates nothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/params.h"
#include "trace/log_record.h"

namespace prord::cluster {

class Dispatcher {
 public:
  /// Servers assigned/known for a file (possibly empty). Counted as one
  /// dispatcher contact.
  std::span<const ServerId> lookup(trace::FileId file);

  /// Uncounted internal read (policy bookkeeping, not a front-end contact).
  std::span<const ServerId> peek(trace::FileId file) const;

  /// Records that `server` now holds/serves `file`.
  void assign(trace::FileId file, ServerId server);

  /// Removes one server from a file's set (eviction/retraction).
  void unassign(trace::FileId file, ServerId server);

  /// Drops all assignments for a server (power-off, failure).
  void unassign_all(ServerId server);

  std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() noexcept { lookups_ = 0; }
  std::size_t num_files_tracked() const noexcept { return tracked_; }

 private:
  static constexpr std::uint32_t kInlineServers = 8;

  struct Entry {
    std::uint32_t count = 0;           ///< live servers for this file
    ServerId inline_[kInlineServers];  ///< first assignments, in order
    std::vector<ServerId> spill;       ///< holds *all* of them once spilled
  };

  /// Server list in assignment order. Spilled entries live entirely in
  /// `spill` so the span is always contiguous.
  static std::span<const ServerId> servers_of(const Entry& e) noexcept {
    if (!e.spill.empty()) return {e.spill.data(), e.spill.size()};
    return {e.inline_, e.count};
  }

  void remove_from(Entry& e, ServerId server);
  void retire_spill(Entry& e);

  std::vector<Entry> entries_;                   // indexed by FileId
  std::vector<std::vector<ServerId>> free_spills_;  // recycled spill buffers
  std::size_t tracked_ = 0;  // entries with count > 0
  std::uint64_t lookups_ = 0;
};

}  // namespace prord::cluster
