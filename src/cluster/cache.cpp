#include "cluster/cache.h"

#include <algorithm>
#include <stdexcept>

namespace prord::cluster {

MemoryCache::MemoryCache(std::uint64_t demand_capacity,
                         std::uint64_t pinned_capacity,
                         DemandEviction eviction)
    : eviction_(eviction),
      demand_capacity_(demand_capacity),
      pinned_capacity_(pinned_capacity) {
  if (demand_capacity == 0)
    throw std::invalid_argument("MemoryCache: zero demand capacity");
}

double MemoryCache::gdsf_priority(const Entry& e) const {
  // H = L + F * cost/size with cost 1 per object; size in KB so the
  // frequency and size terms have comparable magnitude.
  const double size_kb =
      std::max(1.0, static_cast<double>(e.bytes) / 1024.0);
  return gdsf_clock_ + e.freq / size_kb;
}

void MemoryCache::gdsf_touch(LruList::iterator it) {
  gdsf_index_.erase({it->priority, it->file});
  it->freq += 1.0;
  it->priority = gdsf_priority(*it);
  gdsf_index_.insert({it->priority, it->file});
}

bool MemoryCache::lookup(trace::FileId file) {
  const auto it = index_.find(file);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (it->second->pinned) {
    pinned_lru_.splice(pinned_lru_.begin(), pinned_lru_, it->second);
  } else if (eviction_ == DemandEviction::kGdsf) {
    gdsf_touch(it->second);
  } else {
    demand_lru_.splice(demand_lru_.begin(), demand_lru_, it->second);
  }
  return true;
}

bool MemoryCache::contains(trace::FileId file) const {
  return index_.contains(file);
}

void MemoryCache::evict_lru(LruList& lru, std::uint64_t& used,
                            std::uint64_t capacity, std::uint64_t needed,
                            std::uint64_t& evictions) {
  while (used + needed > capacity && !lru.empty()) {
    const Entry& victim = lru.back();
    used -= victim.bytes;
    index_.erase(victim.file);
    lru.pop_back();
    ++evictions;
  }
}

void MemoryCache::evict_gdsf(std::uint64_t needed) {
  while (demand_bytes_ + needed > demand_capacity_ && !gdsf_index_.empty()) {
    const auto [priority, file] = *gdsf_index_.begin();
    gdsf_index_.erase(gdsf_index_.begin());
    gdsf_clock_ = priority;  // inflation: future entries outrank the dead
    const auto it = index_.find(file);
    demand_bytes_ -= it->second->bytes;
    demand_lru_.erase(it->second);
    index_.erase(it);
    ++stats_.demand_evictions;
  }
}

void MemoryCache::insert_demand(trace::FileId file, std::uint64_t bytes) {
  if (bytes > demand_capacity_) return;  // streamed, never cached
  const auto it = index_.find(file);
  if (it != index_.end()) {
    // Already resident (e.g. pinned while the miss was in flight).
    if (it->second->pinned) {
      pinned_lru_.splice(pinned_lru_.begin(), pinned_lru_, it->second);
    } else if (eviction_ == DemandEviction::kGdsf) {
      gdsf_touch(it->second);
    } else {
      demand_lru_.splice(demand_lru_.begin(), demand_lru_, it->second);
    }
    return;
  }
  if (eviction_ == DemandEviction::kGdsf)
    evict_gdsf(bytes);
  else
    evict_lru(demand_lru_, demand_bytes_, demand_capacity_, bytes,
              stats_.demand_evictions);

  demand_lru_.push_front(Entry{file, bytes, false, 1.0, 0.0});
  demand_bytes_ += bytes;
  index_[file] = demand_lru_.begin();
  if (eviction_ == DemandEviction::kGdsf) {
    auto entry = demand_lru_.begin();
    entry->priority = gdsf_priority(*entry);
    gdsf_index_.insert({entry->priority, file});
  }
}

bool MemoryCache::insert_pinned(trace::FileId file, std::uint64_t bytes) {
  if (pinned_capacity_ == 0 || bytes > pinned_capacity_) return false;
  const auto it = index_.find(file);
  if (it != index_.end()) {
    if (it->second->pinned) {
      pinned_lru_.splice(pinned_lru_.begin(), pinned_lru_, it->second);
      return true;
    }
    // Upgrade from demand to pinned: remove demand copy first.
    if (eviction_ == DemandEviction::kGdsf)
      gdsf_index_.erase({it->second->priority, file});
    demand_bytes_ -= it->second->bytes;
    demand_lru_.erase(it->second);
    index_.erase(it);
  }
  evict_lru(pinned_lru_, pinned_bytes_, pinned_capacity_, bytes,
            stats_.pinned_evictions);
  pinned_lru_.push_front(Entry{file, bytes, true, 1.0, 0.0});
  pinned_bytes_ += bytes;
  index_[file] = pinned_lru_.begin();
  return true;
}

void MemoryCache::erase(trace::FileId file) {
  const auto it = index_.find(file);
  if (it == index_.end()) return;
  if (it->second->pinned) {
    pinned_bytes_ -= it->second->bytes;
    pinned_lru_.erase(it->second);
  } else {
    if (eviction_ == DemandEviction::kGdsf)
      gdsf_index_.erase({it->second->priority, file});
    demand_bytes_ -= it->second->bytes;
    demand_lru_.erase(it->second);
  }
  index_.erase(it);
}

void MemoryCache::erase_pinned(trace::FileId file) {
  const auto it = index_.find(file);
  if (it == index_.end() || !it->second->pinned) return;
  pinned_bytes_ -= it->second->bytes;
  pinned_lru_.erase(it->second);
  index_.erase(it);
}

void MemoryCache::clear() {
  demand_lru_.clear();
  pinned_lru_.clear();
  index_.clear();
  gdsf_index_.clear();
  demand_bytes_ = 0;
  pinned_bytes_ = 0;
}

}  // namespace prord::cluster
