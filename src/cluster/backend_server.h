// Back-end server model.
//
// One server = CPU FIFO + disk FIFO + two-region memory cache + power
// state. The request path:
//
//     CPU (parse/handle + response copy)
//      └── cache hit  -> respond after NIC egress delay
//      └── cache miss -> disk FIFO (fixed + per-KB) -> insert demand cache
//                        -> respond after NIC egress delay
//
// Proactive work shares the same physical resources: a prefetch occupies
// the disk (so over-eager prefetching hurts, which is why Algorithm 2's
// confidence threshold exists) and replicated content lands in the pinned
// cache region.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cache.h"
#include "cluster/params.h"
#include "cluster/resources.h"
#include "simcore/simulator.h"
#include "util/inplace_function.h"

namespace prord::cluster {

enum class PowerState : std::uint8_t { kOn, kHibernate, kOff };

/// Completion callback of a serve pipeline. `ok` is false when the
/// request died with the server (crash before the response finished); the
/// reported time then includes the client's failure timeout. Callables
/// taking only the completion time still convert (success-oriented
/// callers that predate fault injection).
///
/// Move-only, with a small inline buffer: the player's pooled completion
/// closure captures {player, record} (16 bytes), and keeping the buffer
/// tight lets the serve pipeline's composed respond/finish closures stay
/// inside sim::EventFn's inline capacity instead of spilling to the heap.
class ResponseFn {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  ResponseFn() = default;
  ResponseFn(std::nullptr_t) {}  // NOLINT: mirrors std::function
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, ResponseFn> &&
             std::invocable<F&, sim::SimTime, bool>)
  ResponseFn(F fn) : fn_(std::move(fn)) {}  // NOLINT: callable adapter
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, ResponseFn> &&
             !std::invocable<F&, sim::SimTime, bool> &&
             std::invocable<F&, sim::SimTime>)
  ResponseFn(F fn)  // NOLINT: callable adapter
      : fn_([g = std::move(fn)](sim::SimTime at, bool) mutable { g(at); }) {}

  explicit operator bool() const noexcept { return static_cast<bool>(fn_); }
  void operator()(sim::SimTime at, bool ok) { fn_(at, ok); }

 private:
  util::InplaceFunction<void(sim::SimTime, bool), kInlineBytes> fn_;
};

struct BackendStats {
  std::uint64_t requests_served = 0;
  std::uint64_t dynamic_served = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetches_skipped = 0;  ///< dropped: disk backlog too deep
  std::uint64_t replications_received = 0;
  std::uint64_t cooperative_pulls = 0;  ///< misses served from a peer's memory
};

class BackendServer {
 public:
  using ResponseFn = cluster::ResponseFn;

  BackendServer(sim::Simulator& sim, ServerId id, const ClusterParams& params,
                std::uint64_t demand_capacity, std::uint64_t pinned_capacity);

  ServerId id() const noexcept { return id_; }

  /// Serves one request: runs the CPU/cache/disk pipeline and calls `done`
  /// at response completion (egress included). `extra_latency` is added
  /// before service (e.g. TCP-handoff or forwarding delay charged by the
  /// front-end). Dynamic requests are generated on the CPU (script
  /// execution cost) and bypass the cache entirely.
  void serve(trace::FileId file, std::uint32_t bytes,
             sim::SimTime extra_latency, ResponseFn done,
             bool dynamic = false);

  /// Serve with cooperative caching (PRESS [32]): on a miss, pull the file
  /// from `source` over the interconnect (occupying the source's NIC)
  /// instead of reading disk. Falls back to the local disk when source is
  /// null, unavailable, or no longer caches the file by pull time.
  void serve_cooperative(trace::FileId file, std::uint32_t bytes,
                         sim::SimTime extra_latency, BackendServer* source,
                         ResponseFn done);

  /// Proactively loads a file. Speculative content (predicted pages,
  /// replicas) goes to the pinned region; content that is about to be
  /// demanded (a requested page's bundle) goes to the demand region so it
  /// does not squeeze the speculative budget. If the file is already
  /// resident this is a no-op; otherwise it costs a disk read.
  void prefetch(trace::FileId file, std::uint32_t bytes, bool pinned = true);

  /// Installs a replica that has finished its interconnect transfer
  /// (Cluster::push_replica charges the link time first).
  void install_replica(trace::FileId file, std::uint32_t bytes,
                       bool pinned = true);

  /// Drops a proactively pinned file (replication retraction). Demand
  /// copies are untouched.
  void drop_pinned(trace::FileId file) { cache_.erase_pinned(file); }

  /// Charges relay CPU for a response forwarded through this server
  /// (back-end forwarding mode).
  void relay(std::uint32_t bytes);

  bool caches(trace::FileId file) const { return cache_.contains(file); }

  /// True if the file is resident or a disk read for it is in flight
  /// (i.e. a request arriving now would be served from memory or join the
  /// pending fetch rather than start a new one).
  bool caches_or_fetching(trace::FileId file) const {
    return cache_.contains(file) || inflight_reads_.contains(file);
  }

  /// Open-request count as seen by routing policies: requests this
  /// decider started plus the merged estimate of load other front-end
  /// shards have in flight on the same backend (zero outside sharded
  /// runs, so sim behaviour is unchanged).
  std::uint32_t load() const noexcept { return active_ + external_load_; }

  /// Only the requests *this* decider has in flight. This is what a shard
  /// publishes over load-gossip — publishing load() would echo back the
  /// other shards' contributions and double-count them on every exchange.
  std::uint32_t local_load() const noexcept { return active_; }

  /// Merged in-flight estimate from peer shards (see src/scale/). Each
  /// gossip merge recomputes this from scratch, so stale values decay to
  /// zero rather than accumulate.
  void set_external_load(std::uint32_t n) noexcept { external_load_ = n; }
  std::uint32_t external_load() const noexcept { return external_load_; }

  // --- Live-cluster belief mirror (src/net/). The live distributor keeps
  // one BackendServer per real worker thread as its *belief state*: the
  // policies read load()/caches()/available() here while the actual bytes
  // move over sockets. live_begin/live_end bracket a real in-flight
  // request — mirroring the open-request count, the demand cache, and the
  // served counters — without running the simulated service pipeline,
  // whose timing the real worker replaces.
  void live_begin(trace::FileId file, std::uint32_t bytes, bool dynamic);
  void live_end() noexcept {
    if (active_ > 0) --active_;
  }

  /// Observer for proactive placements (prefetch directives and replica
  /// installs). The live distributor mirrors these into the real worker's
  /// in-memory cache so belief and worker stay in step. Called at
  /// directive time with (file, bytes, pinned).
  void set_proactive_observer(
      std::function<void(trace::FileId, std::uint32_t, bool)> fn) {
    proactive_observer_ = std::move(fn);
  }

  // --- Power accounting. The model is present because Table 1 specifies
  // it; PRORD itself never powers nodes down, but the PARD-style example
  // does. set_power_state is the *planned* path: the front-end's view
  // updates instantly and in-flight work completes.
  void set_power_state(PowerState s);
  PowerState power_state() const noexcept { return power_; }
  /// Energy consumed so far in "full-power seconds".
  double energy(sim::SimTime now) const;

  // --- Failure semantics (abrupt path; see docs/FAULTS.md). A crash is
  // invisible to the front-end until a HealthMonitor heartbeat flips
  // marked_down: available() reports the front-end's *belief*, alive()
  // the ground truth.
  /// Abrupt process death: cache and queued work are lost, in-flight
  /// requests report failure after the client's timeout, the incarnation
  /// counter invalidates every closure the old process scheduled.
  void crash();
  /// Warm restart after a crash: rejoins with a cold cache.
  void restart();
  /// Degraded mode: CPU/disk service times multiply by `factor` (>= 1);
  /// 1.0 restores full speed.
  void set_slowdown(double factor);
  double slowdown() const noexcept { return slow_factor_; }

  bool alive() const noexcept { return alive_; }
  /// Bumped on every crash; closures capture it to detect that the state
  /// they were scheduled against no longer exists.
  std::uint64_t incarnation() const noexcept { return incarnation_; }
  /// Ground-truth time of the last crash (valid while !alive()).
  sim::SimTime down_since() const noexcept { return down_since_; }
  /// Failure-detector belief (set by faults::HealthMonitor).
  void set_marked_down(bool down) noexcept { marked_down_ = down; }
  bool marked_down() const noexcept { return marked_down_; }

  /// Front-end view: powered on and not believed dead. Between a crash
  /// and its heartbeat detection this stays true — requests routed in
  /// that window fail into the player's retry machinery.
  bool available() const noexcept {
    return power_ == PowerState::kOn && !marked_down_;
  }

  const MemoryCache& cache() const noexcept { return cache_; }
  MemoryCache& cache() noexcept { return cache_; }
  const BackendStats& stats() const noexcept { return stats_; }
  const FifoResource& cpu() const noexcept { return cpu_; }
  /// Mutable CPU handle: background work (e.g. the online mining thread)
  /// submits its service time here to steal real serving capacity.
  FifoResource& cpu() noexcept { return cpu_; }
  const FifoResource& disk() const noexcept { return disk_; }
  /// 100 Mbps switched-Ethernet NIC: inbound forwards/replicas queue here.
  FifoResource& nic() noexcept { return nic_; }
  const FifoResource& nic() const noexcept { return nic_; }

  /// Zeroes served/read counters and utilization accounting; cache
  /// contents stay warm (measurement-phase start).
  void reset_stats() noexcept {
    stats_ = BackendStats{};
    cache_.reset_stats();
    cpu_.reset_accounting();
    disk_.reset_accounting();
    nic_.reset_accounting();
  }

 private:
  sim::SimTime cpu_service(std::uint32_t bytes) const;
  sim::SimTime egress_delay(std::uint32_t bytes) const;
  /// Applies the slowdown factor to a CPU/disk service demand.
  sim::SimTime scaled(sim::SimTime t) const noexcept {
    return slow_factor_ == 1.0
               ? t
               : static_cast<sim::SimTime>(static_cast<double>(t) *
                                           slow_factor_);
  }
  /// Schedules `done(now + failure_timeout, false)` — the fate of a
  /// request handed to a dead server.
  void fail_request(ResponseFn done);

  /// Reads `file` from disk and installs it in the chosen cache region,
  /// then runs all waiters. Concurrent requests for the same file share one
  /// disk read (a demand miss joins an in-flight prefetch and vice versa).
  void read_from_disk(trace::FileId file, std::uint32_t bytes, bool pinned,
                      sim::EventFn done);

  sim::Simulator& sim_;
  ServerId id_;
  const ClusterParams& params_;
  MemoryCache cache_;
  FifoResource cpu_;
  FifoResource disk_;
  FifoResource nic_;
  std::uint32_t active_ = 0;
  std::uint32_t external_load_ = 0;
  BackendStats stats_;
  std::function<void(trace::FileId, std::uint32_t, bool)> proactive_observer_;
  /// file -> completion callbacks of reads sharing the in-flight fetch.
  std::unordered_map<trace::FileId, std::vector<sim::EventFn>> inflight_reads_;

  PowerState power_ = PowerState::kOn;
  sim::SimTime power_since_ = 0;
  double energy_ = 0.0;  // accumulated full-power-seconds

  bool alive_ = true;
  std::uint64_t incarnation_ = 0;
  bool marked_down_ = false;     // failure-detector belief, lags alive_
  sim::SimTime down_since_ = 0;  // ground truth, set at crash()
  double slow_factor_ = 1.0;     // >= 1: multiplies CPU/disk service
};

}  // namespace prord::cluster
