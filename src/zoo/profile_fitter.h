// Per-cluster parameter estimation: raw log records -> WorkloadProfile.
//
// Fits the classic web-workload parameters from a parsed access log:
//   - Zipf popularity skew by maximum likelihood (bisection on the
//     log-likelihood derivative over the empirical rank-frequency data),
//   - session lengths and bounded-Pareto think times from streaming
//     sessionization (adapt::StreamSessionizer, same inactivity heuristic
//     as the offline miner),
//   - lognormal size parameters per class (main pages vs embedded
//     objects) from the observed transfer sizes,
//   - site-graph locality (cross-template transition probability) from
//     consecutive page views mapped through the mined template clusters,
//   - arrival-phase structure (hot-set rotation, flash crowds, diurnal
//     swing) from segmented rate/popularity analysis, compiled into the
//     profile's PhaseProfile (-> trace::DriftSpec).
//
// Everything is deterministic: no RNG, stable iteration orders.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/log_record.h"
#include "zoo/profile.h"
#include "zoo/template_miner.h"

namespace prord::zoo {

struct FitOptions {
  /// Trace segments used for hot-set drift and rate-phase analysis.
  std::size_t segments = 12;
  /// Hot-set size compared across segments (mass retention).
  std::size_t hot_set = 30;
  /// A segment whose hot-set mass retention (vs. two segments back) drops
  /// below this marks a popularity phase change; consecutive low
  /// comparisons count as one boundary.
  double phase_overlap_cut = 0.5;
  /// Max/median bucket-rate ratio above which a flash crowd is declared.
  double flash_ratio = 3.0;
  /// Minimum bucket-count amplitude (relative) to declare a diurnal swing.
  double diurnal_min_amplitude = 0.05;
  /// Mined templates carried into the profile for provenance.
  std::size_t keep_templates = 12;
};

/// Intermediate observables, exposed for tests and `prord_zoo describe`.
struct FitDiagnostics {
  std::size_t sessions = 0;
  std::size_t think_samples = 0;
  std::size_t page_views = 0;
  std::size_t transitions = 0;       ///< consecutive page-view pairs
  std::size_t cross_transitions = 0; ///< pairs crossing template clusters
  double flash_ratio = 0.0;          ///< max/median bucket rate
  double mean_segment_overlap = 0.0; ///< hot-set mass retention, lag-2 segs
  std::size_t phase_boundaries = 0;
};

/// Fits a profile from time-sorted records. `mined` supplies the template
/// clustering (section structure + transition locality); pass the result
/// of TemplateMiner::mine() over the same records. Throws
/// std::runtime_error when the log is too small to fit (< 2 records).
WorkloadProfile fit_profile(std::span<const trace::LogRecord> records,
                            const MinedTemplates& mined,
                            const FitOptions& options = {},
                            FitDiagnostics* diagnostics = nullptr);

/// MLE for the Zipf exponent over per-rank request counts (rank r has
/// counts[r-1] requests): solves d/da [ -a*sum(c_r*log r) -
/// n*log H_N(a) ] = 0 by bisection on a in [0.05, 4]. Returns 0 when
/// fewer than three ranks carry requests.
double fit_zipf_alpha_mle(std::span<const std::uint64_t> sorted_counts_desc);

}  // namespace prord::zoo
