#include "zoo/profile_fitter.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "adapt/stream_sessionizer.h"
#include "trace/workload.h"

namespace prord::zoo {
namespace {

struct MeanCv {
  double mean = 0.0;
  double cv = 0.0;
};

MeanCv mean_cv(const std::vector<double>& xs) {
  if (xs.empty()) return {};
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  if (mean <= 0.0) return {mean, 0.0};
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  return {mean, std::sqrt(var) / mean};
}

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

// Bounded-Pareto shape by MLE on samples above `lo` (the Hill estimator
// truncated at the observed bound): alpha = n / sum(log(x/lo)).
double fit_pareto_alpha(const std::vector<double>& samples, double lo) {
  double acc = 0.0;
  std::size_t n = 0;
  for (const double x : samples) {
    if (x <= lo) continue;
    acc += std::log(x / lo);
    ++n;
  }
  if (n < 8 || acc <= 0.0) return 1.4;  // library default on thin data
  return clamp(static_cast<double>(n) / acc, 0.6, 3.0);
}

}  // namespace

double fit_zipf_alpha_mle(std::span<const std::uint64_t> sorted_counts_desc) {
  std::size_t ranks = 0;
  double n = 0.0, sum_c_logr = 0.0;
  for (std::size_t r = 0; r < sorted_counts_desc.size(); ++r) {
    if (sorted_counts_desc[r] == 0) break;
    ++ranks;
    const double c = static_cast<double>(sorted_counts_desc[r]);
    n += c;
    sum_c_logr += c * std::log(static_cast<double>(r + 1));
  }
  if (ranks < 3 || n <= 0.0) return 0.0;

  // d logL / da = -sum_c_logr + n * (sum log r * r^-a) / (sum r^-a).
  auto deriv = [&](double a) {
    double h = 0.0, hp = 0.0;
    for (std::size_t r = 1; r <= ranks; ++r) {
      const double lr = std::log(static_cast<double>(r));
      const double w = std::exp(-a * lr);
      h += w;
      hp += lr * w;
    }
    return -sum_c_logr + n * hp / h;
  };

  double lo = 0.05, hi = 4.0;
  if (deriv(lo) <= 0.0) return lo;  // flatter than the search range
  if (deriv(hi) >= 0.0) return hi;  // steeper than the search range
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (deriv(mid) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

WorkloadProfile fit_profile(std::span<const trace::LogRecord> records,
                            const MinedTemplates& mined,
                            const FitOptions& options,
                            FitDiagnostics* diagnostics) {
  if (records.size() < 2)
    throw std::runtime_error("fit_profile: need at least 2 records");
  FitDiagnostics local;
  FitDiagnostics& diag = diagnostics ? *diagnostics : local;
  diag = {};

  // Real logs are only near-sorted (mixed timezone suffixes, buffered
  // writers, NTP steps); build_workload requires sorted input, so sort a
  // copy. Stable, to keep same-timestamp lines in log order.
  std::vector<trace::LogRecord> sorted(records.begin(), records.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const trace::LogRecord& a, const trace::LogRecord& b) {
                     return a.time < b.time;
                   });
  const auto workload = trace::build_workload(sorted);
  const auto& reqs = workload.requests;
  if (reqs.size() < 2)
    throw std::runtime_error("fit_profile: no usable requests after build");

  WorkloadProfile p;
  p.source_requests = reqs.size();
  p.source_files = workload.files.count();
  const sim::SimTime span = workload.span();
  p.duration_sec = std::max(1.0, sim::to_seconds(span));
  p.target_requests = reqs.size();

  // --- Popularity: MLE Zipf over per-file request counts. ----------------
  std::vector<std::uint64_t> counts(workload.files.count(), 0);
  for (const auto& r : reqs) ++counts[r.file];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const double alpha = fit_zipf_alpha_mle(counts);
  p.zipf_alpha = alpha > 0.0 ? clamp(alpha, 0.3, 2.5) : 0.8;

  // --- Sessions: streaming sessionization over the whole trace. ----------
  logmining::SessionOptions session_options;
  adapt::StreamSessionizer sessionizer(span + session_options.inactivity_timeout
                                           + sim::sec(1.0),
                                      session_options);
  for (const auto& r : reqs) sessionizer.observe(r);
  const auto snapshot = sessionizer.snapshot(
      reqs.back().at + session_options.inactivity_timeout + sim::sec(1.0));
  diag.sessions = snapshot.sessions.size();
  if (!snapshot.sessions.empty()) {
    double pages = 0.0;
    for (const auto& s : snapshot.sessions)
      pages += static_cast<double>(s.pages.size());
    p.mean_pages_per_session =
        std::max(1.0, pages / static_cast<double>(snapshot.sessions.size()));
  }

  // --- Think times: gaps between a client's consecutive page views. ------
  // Sessions carry only page ids, so gaps come from the raw stream: group
  // main-page requests per client (stable in-stream order), keep positive
  // gaps under the inactivity timeout.
  std::map<std::uint32_t, sim::SimTime> last_view;
  std::vector<double> think;
  for (const auto& r : reqs) {
    if (r.is_embedded) continue;
    ++diag.page_views;
    const auto it = last_view.find(r.client);
    if (it != last_view.end()) {
      const sim::SimTime gap = r.at - it->second;
      if (gap > 0 && gap < session_options.inactivity_timeout)
        think.push_back(sim::to_seconds(gap));
    }
    last_view[r.client] = r.at;
  }
  diag.think_samples = think.size();
  if (think.size() >= 8) {
    std::sort(think.begin(), think.end());
    p.think_lo_sec = std::max(0.05, think[think.size() / 20]);  // p5
    p.think_hi_sec = std::max(p.think_lo_sec * 4.0, think.back());
    p.think_alpha = fit_pareto_alpha(think, p.think_lo_sec);
  }

  // --- Sizes and mix, per class. ------------------------------------------
  std::vector<double> page_kb, embedded_kb;
  std::size_t embedded = 0, dynamic_pages = 0;
  for (const auto& r : reqs) {
    const double kb = static_cast<double>(r.bytes) / 1024.0;
    if (r.is_embedded) {
      ++embedded;
      if (r.bytes > 0) embedded_kb.push_back(kb);
    } else {
      if (r.is_dynamic) ++dynamic_pages;
      if (r.bytes > 0) page_kb.push_back(kb);
    }
  }
  const auto page_stats = mean_cv(page_kb);
  const auto emb_stats = mean_cv(embedded_kb);
  if (page_stats.mean > 0.0) {
    p.mean_page_kb = page_stats.mean;
    p.page_size_cv = clamp(page_stats.cv, 0.3, 4.0);
  }
  if (diag.page_views > 0) {
    p.mean_embedded =
        static_cast<double>(embedded) / static_cast<double>(diag.page_views);
    p.dynamic_fraction = clamp(static_cast<double>(dynamic_pages) /
                                   static_cast<double>(diag.page_views),
                               0.0, 0.9);
  }
  if (emb_stats.mean > 0.0) {
    p.mean_embedded_kb = emb_stats.mean;
    p.embedded_size_cv = clamp(emb_stats.cv, 0.3, 4.0);
  }

  // --- Site shape from the template clustering. ---------------------------
  std::size_t page_clusters = 0;
  std::uint64_t page_cluster_support = 0;
  for (const auto& t : mined.templates()) {
    if (t.cls == TemplateClass::kStatic && trace::is_embedded_url(t.pattern))
      continue;  // asset templates are not navigation sections
    ++page_clusters;
    page_cluster_support += t.support;
  }
  (void)page_cluster_support;
  p.sections = static_cast<std::uint32_t>(
      clamp(static_cast<double>(page_clusters), 2.0, 64.0));
  std::size_t page_files = 0;
  for (trace::FileId f = 0; f < workload.files.count(); ++f)
    if (!trace::is_embedded_url(workload.files.url(f))) ++page_files;
  p.pages_per_section = static_cast<std::uint32_t>(clamp(
      std::ceil(static_cast<double>(std::max<std::size_t>(page_files, 1)) /
                static_cast<double>(p.sections)),
      2.0, 4000.0));

  // Transition locality: how often consecutive page views inside a session
  // window cross template clusters.
  std::map<std::uint32_t, std::size_t> last_cluster;  // client -> cluster
  std::map<std::uint32_t, sim::SimTime> last_cluster_at;
  for (const auto& r : reqs) {
    if (r.is_embedded) continue;
    const auto cluster = mined.cluster_of(workload.files.url(r.file));
    const auto it = last_cluster.find(r.client);
    if (it != last_cluster.end() &&
        r.at - last_cluster_at[r.client] <
            session_options.inactivity_timeout) {
      ++diag.transitions;
      if (cluster != it->second) ++diag.cross_transitions;
    }
    last_cluster[r.client] = cluster;
    last_cluster_at[r.client] = r.at;
  }
  if (diag.transitions >= 16) {
    p.cross_section_link_prob =
        clamp(static_cast<double>(diag.cross_transitions) /
                  static_cast<double>(diag.transitions),
              0.02, 0.9);
  }

  // --- Phase structure. ---------------------------------------------------
  // Segment count scales with page-view density: rotation detection needs
  // a few hundred views per segment or its hot sets are sampling noise.
  const std::size_t segs = std::max<std::size_t>(
      2, std::min(options.segments,
                  std::max<std::size_t>(diag.page_views, reqs.size() / 8) /
                      400));
  const sim::SimTime seg_width = std::max<sim::SimTime>(1, span / segs + 1);

  // Hot-set per segment -> rotation boundaries.
  std::vector<std::unordered_map<trace::FileId, std::uint64_t>> seg_counts(
      segs);
  std::vector<std::uint64_t> seg_requests(segs, 0);
  const sim::SimTime t0 = reqs.front().at;
  for (const auto& r : reqs) {
    auto idx = static_cast<std::size_t>((r.at - t0) / seg_width);
    if (idx >= segs) idx = segs - 1;
    ++seg_requests[idx];
    if (!r.is_embedded) ++seg_counts[idx][r.file];
  }
  std::vector<std::vector<trace::FileId>> hot(segs);
  for (std::size_t s = 0; s < segs; ++s) {
    std::vector<std::pair<std::uint64_t, trace::FileId>> ranked;
    ranked.reserve(seg_counts[s].size());
    for (const auto& [file, count] : seg_counts[s])
      ranked.emplace_back(count, file);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    ranked.resize(std::min(ranked.size(), options.hot_set));
    hot[s].reserve(ranked.size());
    for (const auto& [count, file] : ranked) hot[s].push_back(file);
    std::sort(hot[s].begin(), hot[s].end());
  }
  // Hot-set mass retention: the share of segment s's page views landing on
  // an earlier segment's hot set, normalized by the share on its own hot
  // set. Stationary popularity keeps retention near 1 even when sparse
  // top-K sets differ by sampling noise; a rotated hot set drops it toward
  // 0. The comparison skips one segment (s vs s-2): a phase boundary
  // rarely aligns with a segment edge, so the straddling segment blends
  // both phases and adjacent-segment retention never clears the cut —
  // skipping the blend compares pure-old against pure-new populations.
  // One boundary then surfaces as a short *run* of low-retention
  // comparisons, so runs (not comparisons) are counted.
  auto hot_mass = [&](std::size_t seg, const std::vector<trace::FileId>& set) {
    std::uint64_t mass = 0, total = 0;
    for (const auto& [file, count] : seg_counts[seg]) {
      total += count;
      if (std::binary_search(set.begin(), set.end(), file)) mass += count;
    }
    return total ? static_cast<double>(mass) / static_cast<double>(total)
                 : 0.0;
  };
  double retention_sum = 0.0, boundary_shift = 0.0, run_min = 1.0;
  std::size_t retention_n = 0, boundaries = 0;
  bool in_run = false;
  auto close_run = [&] {
    if (!in_run) return;
    in_run = false;
    ++boundaries;
    boundary_shift += 1.0 - run_min;
  };
  for (std::size_t s = 2; s < segs; ++s) {
    if (hot[s - 2].empty() || hot[s].empty()) continue;
    const double own = hot_mass(s, hot[s]);
    if (own <= 0.0) continue;
    const double retention = clamp(hot_mass(s, hot[s - 2]) / own, 0.0, 1.0);
    retention_sum += retention;
    ++retention_n;
    if (retention < options.phase_overlap_cut) {
      run_min = in_run ? std::min(run_min, retention) : retention;
      in_run = true;
    } else {
      close_run();
    }
  }
  close_run();
  diag.mean_segment_overlap =
      retention_n ? retention_sum / static_cast<double>(retention_n) : 1.0;
  diag.phase_boundaries = boundaries;
  if (boundaries > 0) {
    p.phase.phases = boundaries + 1;
    p.phase.rotation =
        clamp(boundary_shift / static_cast<double>(boundaries), 0.05, 1.0);
  }

  // Flash crowds: max/median segment rate.
  std::vector<std::uint64_t> rates(seg_requests);
  std::sort(rates.begin(), rates.end());
  const double median =
      std::max<double>(1.0, static_cast<double>(rates[rates.size() / 2]));
  const double peak = static_cast<double>(rates.back());
  diag.flash_ratio = peak / median;
  if (diag.flash_ratio >= options.flash_ratio) {
    p.phase.flash_multiplier = clamp(diag.flash_ratio, 1.0, 20.0);
    // Width: contiguous run of segments at >= 2x the median rate.
    std::size_t widest = 0, run = 0;
    for (const auto r : seg_requests) {
      if (static_cast<double>(r) >= 2.0 * median)
        widest = std::max(widest, ++run);
      else
        run = 0;
    }
    p.phase.flash_duration_sec =
        std::max(1.0, sim::to_seconds(seg_width)) * static_cast<double>(widest);
  }

  // Diurnal swing: least-squares sin/cos regression of segment counts.
  // The log may cover a fraction of a cycle or several cycles (a trace
  // generator that stops at a request budget, a log rotated mid-day), so
  // a single "period = span" guess attenuates the amplitude badly; scan a
  // harmonic grid around the span instead and keep the period whose
  // two-parameter fit explains the most variance. Multi-day logs snap to
  // the daily harmonic directly.
  if (segs >= 6) {
    std::vector<double> candidates;
    if (p.duration_sec >= 2.0 * 86'400.0) {
      candidates.push_back(86'400.0);
    } else {
      for (const double m : {1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0})
        candidates.push_back(m * p.duration_sec);
    }
    double mean_rate = 0.0;
    for (std::size_t s = 0; s < segs; ++s)
      mean_rate += static_cast<double>(seg_requests[s]);
    mean_rate /= static_cast<double>(segs);
    double ss_tot = 0.0;
    for (std::size_t s = 0; s < segs; ++s) {
      const double dev = static_cast<double>(seg_requests[s]) - mean_rate;
      ss_tot += dev * dev;
    }
    double best_amplitude = 0.0, best_period = 0.0, best_r2 = 0.0;
    if (mean_rate > 0.0 && ss_tot > 0.0) {
      for (const double period : candidates) {
        // Over a partial cycle sin and cos are not orthogonal: solve the
        // full 2x2 normal equations instead of projecting.
        double sss = 0.0, scc = 0.0, ssc = 0.0, sds = 0.0, sdc = 0.0;
        for (std::size_t s = 0; s < segs; ++s) {
          const double t =
              (static_cast<double>(s) + 0.5) * sim::to_seconds(seg_width);
          const double w = 2.0 * M_PI * t / period;
          const double sn = std::sin(w), cs = std::cos(w);
          const double dev = static_cast<double>(seg_requests[s]) - mean_rate;
          sss += sn * sn;
          scc += cs * cs;
          ssc += sn * cs;
          sds += dev * sn;
          sdc += dev * cs;
        }
        const double det = sss * scc - ssc * ssc;
        if (std::abs(det) < 1e-9) continue;
        const double a = (sds * scc - sdc * ssc) / det;
        const double b = (sdc * sss - sds * ssc) / det;
        double ss_res = 0.0;
        for (std::size_t s = 0; s < segs; ++s) {
          const double t =
              (static_cast<double>(s) + 0.5) * sim::to_seconds(seg_width);
          const double w = 2.0 * M_PI * t / period;
          const double dev = static_cast<double>(seg_requests[s]) - mean_rate;
          const double e = dev - a * std::sin(w) - b * std::cos(w);
          ss_res += e * e;
        }
        const double r2 = 1.0 - ss_res / ss_tot;
        if (r2 > best_r2) {
          best_r2 = r2;
          best_period = period;
          best_amplitude = std::sqrt(a * a + b * b) / mean_rate;
        }
      }
    }
    if (best_amplitude >= options.diurnal_min_amplitude &&
        diag.flash_ratio < options.flash_ratio) {
      p.phase.diurnal_amplitude = clamp(best_amplitude, 0.0, 0.95);
      p.phase.diurnal_period_sec = best_period;
    }
  }

  // --- Provenance templates. ----------------------------------------------
  for (const auto& t : mined.templates()) {
    if (p.templates.size() >= options.keep_templates) break;
    p.templates.push_back(TemplateSummary{
        t.pattern, t.support, std::string(template_class_name(t.cls))});
  }
  return p;
}

}  // namespace prord::zoo
