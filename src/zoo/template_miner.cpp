#include "zoo/template_miner.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace prord::zoo {
namespace {

constexpr std::string_view kDynamicExts[] = {
    ".php", ".cgi", ".asp", ".aspx", ".jsp", ".pl", ".py", ".do", ".dll"};

struct SplitUrl {
  std::string_view path;
  bool has_query = false;
};

SplitUrl split_query(std::string_view url) {
  const auto q = url.find('?');
  if (q == std::string_view::npos) return {url, false};
  return {url.substr(0, q), true};
}

bool looks_dynamic(std::string_view path, bool has_query) {
  if (has_query) return true;
  if (path.find("/cgi-bin/") != std::string_view::npos) return true;
  const auto dot = path.rfind('.');
  if (dot == std::string_view::npos) return false;
  const auto ext = path.substr(dot);
  for (const auto e : kDynamicExts)
    if (ext == e) return true;
  return false;
}

// Path segments between '/' separators; empty segments (double slashes,
// trailing slash) are dropped so "/a//b/" and "/a/b" share structure.
std::vector<std::string_view> segments_of(std::string_view path) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    auto end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    out.push_back(path.substr(start, end - start));
    start = end;
  }
  return out;
}

TemplateClass classify(const UrlTemplate& t) {
  const double dynamic_fraction =
      t.support ? static_cast<double>(t.dynamic_lines) /
                      static_cast<double>(t.support)
                : 0.0;
  if (dynamic_fraction > 0.5) return TemplateClass::kDynamic;
  if (t.wildcards > 0) return TemplateClass::kParameterized;
  return TemplateClass::kStatic;
}

}  // namespace

std::string_view template_class_name(TemplateClass cls) {
  switch (cls) {
    case TemplateClass::kStatic:
      return "static";
    case TemplateClass::kParameterized:
      return "parameterized";
    case TemplateClass::kDynamic:
      return "dynamic";
  }
  return "static";
}

std::string MinedTemplates::pattern_of(std::string_view url) const {
  const auto [path, has_query] = split_query(url);
  std::string pattern;
  pattern.reserve(path.size() + 1);
  const auto segs = segments_of(path);
  if (segs.empty()) return "/";
  for (const auto seg : segs) {
    pattern.push_back('/');
    if (frequent_.contains(std::string(seg)))
      pattern.append(seg);
    else
      pattern.push_back('*');
  }
  (void)has_query;  // queries never join the pattern; tracked separately
  return pattern;
}

std::size_t MinedTemplates::cluster_of(std::string_view url) const {
  const auto it = by_pattern_.find(pattern_of(url));
  return it == by_pattern_.end() ? kNoCluster : it->second;
}

std::string MinedTemplates::dump() const {
  std::string out;
  out.reserve(64 + templates_.size() * 64);
  char buf[160];
  for (const auto& t : templates_) {
    std::snprintf(buf, sizeof(buf),
                  "%s support=%llu urls=%lu class=%s wildcards=%lu q=%.3f\n",
                  t.pattern.c_str(),
                  static_cast<unsigned long long>(t.support),
                  static_cast<unsigned long>(t.distinct_urls),
                  std::string(template_class_name(t.cls)).c_str(),
                  static_cast<unsigned long>(t.wildcards),
                  t.query_fraction());
    out.append(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "# lines=%llu templates=%zu rest=%llu threshold=%llu "
                "frequent=%llu\n",
                static_cast<unsigned long long>(lines_), templates_.size(),
                static_cast<unsigned long long>(rest_support_),
                static_cast<unsigned long long>(threshold_),
                static_cast<unsigned long long>(frequent_count_));
  out.append(buf);
  return out;
}

TemplateMiner::TemplateMiner(TemplateMinerOptions options)
    : options_(options) {}

void TemplateMiner::observe(std::string_view url, std::uint32_t bytes) {
  urls_.emplace_back(std::string(url), bytes);
}

MinedTemplates TemplateMiner::mine() const {
  MinedTemplates out;
  out.lines_ = urls_.size();
  if (urls_.empty()) return out;

  // Pass 1: line-support per path segment (each line counts a segment at
  // most once, so "/a/a/a" contributes 1 to "a").
  std::unordered_map<std::string, std::uint64_t> support;
  std::vector<std::string_view> seen_line;
  for (const auto& [url, bytes] : urls_) {
    const auto [path, has_query] = split_query(url);
    const auto segs = segments_of(path);
    seen_line.clear();
    for (const auto seg : segs) {
      if (std::find(seen_line.begin(), seen_line.end(), seg) !=
          seen_line.end())
        continue;
      seen_line.push_back(seg);
      ++support[std::string(seg)];
    }
  }

  const auto threshold = std::max<std::uint64_t>(
      options_.min_support,
      static_cast<std::uint64_t>(options_.support_fraction *
                                 static_cast<double>(urls_.size())));
  out.threshold_ = threshold;
  for (const auto& [seg, count] : support) {
    if (count >= threshold) out.frequent_.insert(seg);
  }
  out.frequent_count_ = out.frequent_.size();

  // Pass 2: wildcard infrequent segments and aggregate per pattern.
  struct Accum {
    UrlTemplate t;
    std::unordered_set<std::string> urls;
  };
  std::unordered_map<std::string, Accum> clusters;
  for (const auto& [url, bytes] : urls_) {
    const auto [path, has_query] = split_query(url);
    auto pattern = out.pattern_of(url);
    auto& acc = clusters[pattern];
    if (acc.t.support == 0) {
      acc.t.pattern = pattern;
      acc.t.wildcards = static_cast<std::uint32_t>(
          std::count(pattern.begin(), pattern.end(), '*'));
    }
    ++acc.t.support;
    acc.t.bytes_total += bytes;
    if (has_query) ++acc.t.query_lines;
    if (looks_dynamic(path, has_query)) ++acc.t.dynamic_lines;
    acc.urls.insert(std::string(url));
  }

  std::vector<UrlTemplate> all;
  all.reserve(clusters.size());
  for (auto& [pattern, acc] : clusters) {
    acc.t.distinct_urls = static_cast<std::uint32_t>(acc.urls.size());
    acc.t.cls = classify(acc.t);
    all.push_back(std::move(acc.t));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.pattern < b.pattern;
  });

  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < options_.max_templates) {
      out.by_pattern_.emplace(all[i].pattern, out.templates_.size());
      out.templates_.push_back(std::move(all[i]));
    } else {
      out.rest_support_ += all[i].support;
    }
  }
  return out;
}

}  // namespace prord::zoo
