#include "zoo/profile.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace prord::zoo {
namespace {

double need_number(const util::JsonValue& json, const char* key) {
  const auto* v = json.find(key);
  if (!v || !v->is_number())
    throw std::runtime_error(std::string("profile: missing numeric field '") +
                            key + "'");
  return v->as_number();
}

double opt_number(const util::JsonValue& json, const char* key,
                  double fallback) {
  const auto* v = json.find(key);
  if (!v) return fallback;
  if (!v->is_number())
    throw std::runtime_error(std::string("profile: field '") + key +
                            "' must be a number");
  return v->as_number();
}

std::string need_string(const util::JsonValue& json, const char* key) {
  const auto* v = json.find(key);
  if (!v || !v->is_string())
    throw std::runtime_error(std::string("profile: missing string field '") +
                            key + "'");
  return v->as_string();
}

}  // namespace

util::JsonValue profile_to_json(const WorkloadProfile& p) {
  auto json = util::JsonValue::object();
  json.set("name", p.name);
  json.set("source", p.source);

  auto volume = util::JsonValue::object();
  volume.set("source_requests", p.source_requests);
  volume.set("source_files", p.source_files);
  volume.set("duration_sec", p.duration_sec);
  volume.set("target_requests", p.target_requests);
  json.set("volume", std::move(volume));

  auto popularity = util::JsonValue::object();
  popularity.set("zipf_alpha", p.zipf_alpha);
  popularity.set("popularity_bias", p.popularity_bias);
  json.set("popularity", std::move(popularity));

  auto site = util::JsonValue::object();
  site.set("sections", static_cast<std::uint64_t>(p.sections));
  site.set("pages_per_section", static_cast<std::uint64_t>(p.pages_per_section));
  site.set("links_per_page", static_cast<std::uint64_t>(p.links_per_page));
  site.set("mean_page_kb", p.mean_page_kb);
  site.set("page_size_cv", p.page_size_cv);
  site.set("mean_embedded", p.mean_embedded);
  site.set("mean_embedded_kb", p.mean_embedded_kb);
  site.set("embedded_size_cv", p.embedded_size_cv);
  site.set("dynamic_fraction", p.dynamic_fraction);
  site.set("cross_section_link_prob", p.cross_section_link_prob);
  site.set("group_affinity", p.group_affinity);
  site.set("num_groups", static_cast<std::uint64_t>(p.num_groups));
  json.set("site", std::move(site));

  auto session = util::JsonValue::object();
  session.set("mean_pages_per_session", p.mean_pages_per_session);
  session.set("think_alpha", p.think_alpha);
  session.set("think_lo_sec", p.think_lo_sec);
  session.set("think_hi_sec", p.think_hi_sec);
  json.set("session", std::move(session));

  auto phase = util::JsonValue::object();
  phase.set("phases", static_cast<std::uint64_t>(p.phase.phases));
  phase.set("rotation", p.phase.rotation);
  phase.set("flash_multiplier", p.phase.flash_multiplier);
  phase.set("flash_duration_sec", p.phase.flash_duration_sec);
  phase.set("diurnal_amplitude", p.phase.diurnal_amplitude);
  phase.set("diurnal_period_sec", p.phase.diurnal_period_sec);
  json.set("phase", std::move(phase));

  json.set("seed", p.seed);

  auto templates = util::JsonValue::array();
  for (const auto& t : p.templates) {
    auto item = util::JsonValue::object();
    item.set("pattern", t.pattern);
    item.set("support", t.support);
    item.set("class", t.cls);
    templates.push_back(std::move(item));
  }
  json.set("templates", std::move(templates));
  return json;
}

WorkloadProfile profile_from_json(const util::JsonValue& json) {
  if (!json.is_object()) throw std::runtime_error("profile: not a JSON object");
  WorkloadProfile p;
  p.name = need_string(json, "name");
  if (p.name.empty()) throw std::runtime_error("profile: empty name");
  const auto* source = json.find("source");
  p.source = source && source->is_string() ? source->as_string() : "unknown";

  const auto* volume = json.find("volume");
  if (!volume || !volume->is_object())
    throw std::runtime_error("profile: missing 'volume' object");
  p.source_requests =
      static_cast<std::uint64_t>(opt_number(*volume, "source_requests", 0));
  p.source_files =
      static_cast<std::uint64_t>(opt_number(*volume, "source_files", 0));
  p.duration_sec = need_number(*volume, "duration_sec");
  p.target_requests =
      static_cast<std::uint64_t>(need_number(*volume, "target_requests"));
  if (p.duration_sec <= 0)
    throw std::runtime_error("profile: duration_sec must be > 0");
  if (p.target_requests == 0)
    throw std::runtime_error("profile: target_requests must be > 0");

  const auto* popularity = json.find("popularity");
  if (!popularity || !popularity->is_object())
    throw std::runtime_error("profile: missing 'popularity' object");
  p.zipf_alpha = need_number(*popularity, "zipf_alpha");
  p.popularity_bias = opt_number(*popularity, "popularity_bias", 1.6);

  const auto* site = json.find("site");
  if (!site || !site->is_object())
    throw std::runtime_error("profile: missing 'site' object");
  p.sections = static_cast<std::uint32_t>(need_number(*site, "sections"));
  p.pages_per_section =
      static_cast<std::uint32_t>(need_number(*site, "pages_per_section"));
  p.links_per_page =
      static_cast<std::uint32_t>(opt_number(*site, "links_per_page", 6));
  p.mean_page_kb = need_number(*site, "mean_page_kb");
  p.page_size_cv = opt_number(*site, "page_size_cv", 1.5);
  p.mean_embedded = need_number(*site, "mean_embedded");
  p.mean_embedded_kb = need_number(*site, "mean_embedded_kb");
  p.embedded_size_cv = opt_number(*site, "embedded_size_cv", 2.0);
  p.dynamic_fraction = opt_number(*site, "dynamic_fraction", 0.0);
  p.cross_section_link_prob =
      opt_number(*site, "cross_section_link_prob", 0.15);
  p.group_affinity = opt_number(*site, "group_affinity", 8.0);
  p.num_groups = static_cast<std::uint32_t>(opt_number(*site, "num_groups", 5));
  if (p.sections == 0 || p.pages_per_section == 0)
    throw std::runtime_error("profile: site must have sections and pages");

  const auto* session = json.find("session");
  if (!session || !session->is_object())
    throw std::runtime_error("profile: missing 'session' object");
  p.mean_pages_per_session = need_number(*session, "mean_pages_per_session");
  p.think_alpha = opt_number(*session, "think_alpha", 1.4);
  p.think_lo_sec = opt_number(*session, "think_lo_sec", 0.5);
  p.think_hi_sec = opt_number(*session, "think_hi_sec", 60.0);
  if (p.mean_pages_per_session < 1.0)
    throw std::runtime_error("profile: mean_pages_per_session must be >= 1");
  if (p.think_lo_sec <= 0 || p.think_hi_sec <= p.think_lo_sec)
    throw std::runtime_error("profile: think time bounds must be 0 < lo < hi");

  const auto* phase = json.find("phase");
  if (phase) {
    if (!phase->is_object())
      throw std::runtime_error("profile: 'phase' must be an object");
    p.phase.phases =
        static_cast<std::size_t>(opt_number(*phase, "phases", 1));
    p.phase.rotation = opt_number(*phase, "rotation", 0.0);
    p.phase.flash_multiplier = opt_number(*phase, "flash_multiplier", 1.0);
    p.phase.flash_duration_sec =
        opt_number(*phase, "flash_duration_sec", 0.0);
    p.phase.diurnal_amplitude = opt_number(*phase, "diurnal_amplitude", 0.0);
    p.phase.diurnal_period_sec =
        opt_number(*phase, "diurnal_period_sec", 86'400.0);
    if (p.phase.rotation < 0.0 || p.phase.rotation > 1.0)
      throw std::runtime_error("profile: phase.rotation must be in [0,1]");
    if (p.phase.flash_multiplier < 1.0)
      throw std::runtime_error("profile: phase.flash_multiplier must be >= 1");
    if (p.phase.diurnal_amplitude < 0.0 || p.phase.diurnal_amplitude >= 1.0)
      throw std::runtime_error(
          "profile: phase.diurnal_amplitude must be in [0,1)");
  }

  p.seed = static_cast<std::uint64_t>(opt_number(json, "seed", 1));

  const auto* templates = json.find("templates");
  if (templates && templates->is_array()) {
    for (const auto& item : templates->items()) {
      if (!item.is_object()) continue;
      TemplateSummary t;
      t.pattern = need_string(item, "pattern");
      t.support = static_cast<std::uint64_t>(opt_number(item, "support", 0));
      const auto* cls = item.find("class");
      t.cls = cls && cls->is_string() ? cls->as_string() : "static";
      p.templates.push_back(std::move(t));
    }
  }
  return p;
}

bool save_profile(const WorkloadProfile& profile, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << profile_to_json(profile).dump() << '\n';
  return static_cast<bool>(out);
}

WorkloadProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open profile: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return profile_from_json(util::json_parse(buffer.str()));
}

trace::WorkloadSpec to_workload_spec(const WorkloadProfile& p) {
  trace::WorkloadSpec spec{};
  spec.name = p.name;

  spec.site.sections = p.sections;
  spec.site.pages_per_section = p.pages_per_section;
  spec.site.links_per_page = p.links_per_page;
  spec.site.mean_page_bytes = p.mean_page_kb * 1024.0;
  spec.site.page_size_cv = p.page_size_cv;
  spec.site.mean_embedded = p.mean_embedded;
  spec.site.mean_embedded_bytes = p.mean_embedded_kb * 1024.0;
  spec.site.embedded_size_cv = p.embedded_size_cv;
  spec.site.dynamic_page_fraction = p.dynamic_fraction;
  spec.site.cross_section_link_prob = p.cross_section_link_prob;
  spec.site.entry_zipf_alpha = p.zipf_alpha;
  spec.site.num_groups = p.num_groups;
  spec.site.group_affinity = p.group_affinity;
  spec.site.seed = p.seed;

  spec.gen.target_requests = static_cast<std::size_t>(p.target_requests);
  spec.gen.duration_sec = p.duration_sec;
  spec.gen.mean_pages_per_session = p.mean_pages_per_session;
  spec.gen.think_alpha = p.think_alpha;
  spec.gen.think_lo_sec = p.think_lo_sec;
  spec.gen.think_hi_sec = p.think_hi_sec;
  spec.gen.popularity_bias = p.popularity_bias;
  spec.gen.diurnal_amplitude = p.phase.diurnal_amplitude;
  spec.gen.diurnal_period_sec = p.phase.diurnal_period_sec;
  spec.gen.drift.phases = p.phase.phases;
  spec.gen.drift.rotation = p.phase.rotation;
  spec.gen.drift.flash_multiplier = p.phase.flash_multiplier;
  spec.gen.drift.flash_duration_sec = p.phase.flash_duration_sec;
  spec.gen.seed = p.seed * 31 + 1;
  return spec;
}

}  // namespace prord::zoo
