#include "zoo/scenario_registry.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace prord::zoo {
namespace {

WorkloadProfile cdn_flash() {
  WorkloadProfile p;
  p.name = "cdn-flash";
  p.source = "builtin";
  p.duration_sec = 1800.0;
  p.target_requests = 60'000;
  p.zipf_alpha = 1.25;  // CDN edges see an extremely hot head
  p.popularity_bias = 1.9;
  p.sections = 6;
  p.pages_per_section = 50;
  p.links_per_page = 5;
  p.mean_page_kb = 14.0;
  p.page_size_cv = 1.8;
  p.mean_embedded = 9.0;  // media-heavy pages
  p.mean_embedded_kb = 24.0;
  p.embedded_size_cv = 2.5;
  p.dynamic_fraction = 0.0;
  p.cross_section_link_prob = 0.10;
  p.group_affinity = 10.0;
  p.num_groups = 4;
  p.mean_pages_per_session = 3.0;  // short grab-and-go visits
  p.think_alpha = 1.2;
  p.think_lo_sec = 0.3;
  p.think_hi_sec = 30.0;
  p.phase.phases = 3;  // event-driven: the hot set moves between events
  p.phase.rotation = 0.45;
  p.phase.flash_multiplier = 8.0;  // kickoff spike at every phase start
  p.phase.flash_duration_sec = 120.0;
  p.seed = 1'137;
  p.templates = {
      {"/live/*/segment-*.ts", 0, "parameterized"},
      {"/static/img/*", 0, "parameterized"},
      {"/events/index.html", 0, "static"},
  };
  return p;
}

WorkloadProfile api_gateway() {
  WorkloadProfile p;
  p.name = "api-gateway";
  p.source = "builtin";
  p.duration_sec = 3600.0;
  p.target_requests = 50'000;
  p.zipf_alpha = 0.7;  // machine clients spread across many endpoints
  p.popularity_bias = 1.1;
  p.sections = 16;  // one per service route family
  p.pages_per_section = 24;
  p.links_per_page = 8;
  p.mean_page_kb = 2.0;  // JSON payloads
  p.page_size_cv = 0.8;
  p.mean_embedded = 0.4;  // almost no secondary fetches
  p.mean_embedded_kb = 1.0;
  p.embedded_size_cv = 0.8;
  p.dynamic_fraction = 0.85;  // served from CPU, uncacheable
  p.cross_section_link_prob = 0.45;  // call chains hop across services
  p.group_affinity = 3.0;
  p.num_groups = 8;
  p.mean_pages_per_session = 12.0;  // long polling/batch client sessions
  p.think_alpha = 1.8;
  p.think_lo_sec = 0.05;
  p.think_hi_sec = 5.0;
  // Stationary: no drift, no diurnal — the control scenario.
  p.seed = 4'242;
  p.templates = {
      {"/api/v1/users/*", 0, "dynamic"},
      {"/api/v1/orders/*/status", 0, "dynamic"},
      {"/healthz", 0, "static"},
  };
  return p;
}

WorkloadProfile ecommerce_diurnal() {
  WorkloadProfile p;
  p.name = "ecommerce-diurnal";
  p.source = "builtin";
  p.duration_sec = 14'400.0;  // 4h window of the daily cycle
  p.target_requests = 40'000;
  p.zipf_alpha = 1.0;
  p.popularity_bias = 1.6;
  p.sections = 10;  // departments
  p.pages_per_section = 80;  // catalog pages
  p.links_per_page = 7;
  p.mean_page_kb = 9.0;
  p.page_size_cv = 1.4;
  p.mean_embedded = 6.0;
  p.mean_embedded_kb = 8.0;
  p.embedded_size_cv = 2.0;
  p.dynamic_fraction = 0.25;  // cart/search/checkout
  p.cross_section_link_prob = 0.2;
  p.group_affinity = 6.0;
  p.num_groups = 5;
  p.mean_pages_per_session = 8.0;  // browse-compare-buy journeys
  p.think_alpha = 1.4;
  p.think_lo_sec = 1.0;
  p.think_hi_sec = 90.0;
  p.phase.phases = 2;  // slow promotion-driven catalog rotation
  p.phase.rotation = 0.25;
  p.phase.diurnal_amplitude = 0.55;
  p.phase.diurnal_period_sec = 14'400.0;  // one swing across the window
  p.seed = 7'700;
  p.templates = {
      {"/product/*/view.html", 0, "parameterized"},
      {"/cart/checkout.cgi", 0, "dynamic"},
      {"/dept/*/index.html", 0, "parameterized"},
  };
  return p;
}

}  // namespace

std::vector<std::string> builtin_scenario_names() {
  return {"api-gateway", "cdn-flash", "ecommerce-diurnal"};
}

WorkloadProfile builtin_profile(std::string_view name) {
  if (name == "cdn-flash") return cdn_flash();
  if (name == "api-gateway") return api_gateway();
  if (name == "ecommerce-diurnal") return ecommerce_diurnal();
  throw std::runtime_error("unknown builtin scenario: " + std::string(name));
}

ScenarioRegistry ScenarioRegistry::with_builtins() {
  ScenarioRegistry reg;
  for (const auto& name : builtin_scenario_names())
    reg.add(builtin_profile(name));
  return reg;
}

void ScenarioRegistry::add(WorkloadProfile profile) {
  for (auto& existing : profiles_) {
    if (existing.name == profile.name) {
      existing = std::move(profile);
      return;
    }
  }
  profiles_.push_back(std::move(profile));
}

const WorkloadProfile* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& p : profiles_)
    if (p.name == name) return &p;
  return nullptr;
}

WorkloadProfile ScenarioRegistry::resolve(
    const std::string& name_or_path) const {
  if (const auto* p = find(name_or_path)) return *p;
  if (std::ifstream probe(name_or_path); probe) return load_profile(name_or_path);
  std::string known;
  for (const auto& name : names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::runtime_error("unknown scenario '" + name_or_path +
                           "' (not a registered name: " + known +
                           "; and not a readable profile JSON)");
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& p : profiles_) out.push_back(p.name);
  std::sort(out.begin(), out.end());
  return out;
}

trace::WorkloadSpec scenario_spec(const std::string& name_or_path) {
  return to_workload_spec(
      ScenarioRegistry::with_builtins().resolve(name_or_path));
}

}  // namespace prord::zoo
