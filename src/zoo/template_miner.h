// LogClusterC-style URL template mining.
//
// Clusters the URLs of an access log into *line templates*: the ordered
// sequence of frequent path segments, with infrequent segments wildcarded.
// Two passes (the LogCluster/LogClusterC algorithm shape, applied to URL
// paths instead of whole syslog lines):
//   1. count the support of every path segment across all observed URLs;
//   2. re-walk the URLs, keep segments whose support clears the threshold,
//      replace the rest with '*', and aggregate per resulting pattern.
// "/product/8711/view.html" and "/product/14/view.html" therefore land in
// one template "/product/*/view.html" once the literal ids fall below the
// support threshold, separating the *structural* page space (what the
// site-graph fit wants) from the parameter space (what would otherwise
// explode the file universe).
//
// Everything is deterministic: observation order does not matter, output
// is sorted by (support desc, pattern asc), and dump() renders a stable
// byte-exact description (the determinism tests diff it).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/log_record.h"

namespace prord::zoo {

/// Template classification: static assets, parameterized page families
/// (wildcard slots), or dynamic endpoints (script extensions / query
/// strings dominate).
enum class TemplateClass { kStatic, kParameterized, kDynamic };

std::string_view template_class_name(TemplateClass cls);

struct UrlTemplate {
  std::string pattern;           ///< "/product/*/view.html"
  std::uint64_t support = 0;     ///< requests matching this template
  std::uint32_t distinct_urls = 0;
  std::uint64_t bytes_total = 0;  ///< response bytes over matching requests
  std::uint64_t query_lines = 0;  ///< matching requests carrying "?query"
  std::uint64_t dynamic_lines = 0;
  std::uint32_t wildcards = 0;    ///< wildcard slot count
  TemplateClass cls = TemplateClass::kStatic;

  double query_fraction() const {
    return support ? static_cast<double>(query_lines) /
                         static_cast<double>(support)
                   : 0.0;
  }
};

struct TemplateMinerOptions {
  /// A segment is frequent when it appears on at least
  /// max(min_support, support_fraction * lines) observed URLs.
  double support_fraction = 0.005;
  std::uint64_t min_support = 2;
  /// Templates kept in the mined output (by support); the tail is
  /// aggregated into rest_support so accounting stays conservative.
  std::size_t max_templates = 256;
};

/// The mined clustering. cluster_of() lets the fitter map any URL (seen
/// or unseen) onto its template id using the frozen frequent-word set.
class MinedTemplates {
 public:
  static constexpr std::size_t kNoCluster = static_cast<std::size_t>(-1);

  const std::vector<UrlTemplate>& templates() const noexcept {
    return templates_;
  }
  std::uint64_t lines() const noexcept { return lines_; }
  std::uint64_t frequent_segments() const noexcept { return frequent_count_; }
  /// Support aggregated over templates beyond max_templates.
  std::uint64_t rest_support() const noexcept { return rest_support_; }
  std::uint64_t support_threshold() const noexcept { return threshold_; }

  /// Template index for a URL, or kNoCluster when its pattern was not
  /// retained (tail template or unseen structure).
  std::size_t cluster_of(std::string_view url) const;

  /// Deterministic text rendering: one line per template plus a footer
  /// with the aggregate counts. Byte-identical across runs on the same
  /// input regardless of observation order.
  std::string dump() const;

 private:
  friend class TemplateMiner;

  std::string pattern_of(std::string_view url) const;

  std::vector<UrlTemplate> templates_;
  std::unordered_map<std::string, std::size_t> by_pattern_;
  std::unordered_set<std::string> frequent_;
  std::uint64_t lines_ = 0;
  std::uint64_t frequent_count_ = 0;
  std::uint64_t rest_support_ = 0;
  std::uint64_t threshold_ = 0;
};

class TemplateMiner {
 public:
  explicit TemplateMiner(TemplateMinerOptions options = {});

  /// Buffers one URL (with its response size) for mining.
  void observe(std::string_view url, std::uint32_t bytes = 0);
  void observe(const trace::LogRecord& record) {
    observe(record.url, record.bytes);
  }

  std::uint64_t observed() const noexcept { return urls_.size(); }

  /// Runs the two-pass clustering over everything observed so far.
  MinedTemplates mine() const;

 private:
  TemplateMinerOptions options_;
  std::vector<std::pair<std::string, std::uint32_t>> urls_;
};

}  // namespace prord::zoo
