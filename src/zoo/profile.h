// Workload profile: the fitted description of an access-log's workload.
//
// A WorkloadProfile is the zoo's unit of exchange — everything the trace
// generator needs to reproduce a mined log's aggregate shape, expressed as
// the classic web-workload parameters (Barford & Crovella): Zipf
// popularity skew, geometric session lengths, bounded-Pareto think times,
// lognormal file sizes, plus the site-graph locality knobs and the cyclic
// phase structure (diurnal swing, flash crowds, hot-set rotation) that
// compiles into trace::DriftSpec. ProfileFitter produces one from raw
// records; ScenarioRegistry stores them by name; to_workload_spec() is the
// generator bridge that turns any profile back into a runnable
// trace::WorkloadSpec. JSON save/load rides util::JsonValue so profiles
// are diffable, checked-in artifacts (examples/profiles/*.json; schema in
// docs/zoo_profile_schema.json).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/models.h"
#include "util/json.h"

namespace prord::zoo {

/// Cyclic/arrival structure of the workload (docs/WORKLOAD_ZOO.md §3).
struct PhaseProfile {
  /// Hot-set rotation phases; <= 1 means the popularity mix is stationary.
  std::size_t phases = 1;
  /// Fraction of the page universe the hot set shifts per phase.
  double rotation = 0.0;
  /// Arrival-rate multiplier at the start of each phase (kickoff spikes).
  double flash_multiplier = 1.0;
  double flash_duration_sec = 0.0;
  /// Sinusoidal day/night swing of the arrival rate, A in [0, 1).
  double diurnal_amplitude = 0.0;
  double diurnal_period_sec = 86'400.0;

  bool drifting() const noexcept { return phases > 1; }
};

/// One mined URL template, kept for provenance/description (the generator
/// bridge uses the statistical fields, not the patterns).
struct TemplateSummary {
  std::string pattern;        ///< e.g. "/product/*/view.html"
  std::uint64_t support = 0;  ///< matching request lines
  std::string cls;            ///< "static" | "parameterized" | "dynamic"
};

struct WorkloadProfile {
  std::string name;    ///< scenario name ("cdn-flash", ...)
  std::string source;  ///< provenance: "builtin", or "fitted:<log>"

  // Volume (from the mined log; target_requests drives the generator).
  std::uint64_t source_requests = 0;
  std::uint64_t source_files = 0;
  double duration_sec = 3600.0;
  std::uint64_t target_requests = 30'000;

  // Popularity.
  double zipf_alpha = 1.0;  ///< MLE fit on file popularity (entry skew)

  // Site shape.
  std::uint32_t sections = 5;  ///< top-level URL-template clusters
  std::uint32_t pages_per_section = 40;
  std::uint32_t links_per_page = 6;
  double mean_page_kb = 8.0;
  double page_size_cv = 1.5;
  double mean_embedded = 4.0;  ///< embedded objects per page view
  double mean_embedded_kb = 6.0;
  double embedded_size_cv = 2.0;
  double dynamic_fraction = 0.0;  ///< share of pages that are dynamic
  double cross_section_link_prob = 0.15;
  double group_affinity = 8.0;
  std::uint32_t num_groups = 5;

  // Session structure.
  double mean_pages_per_session = 6.0;  ///< geometric mean page views
  double think_alpha = 1.4;             ///< bounded-Pareto think times
  double think_lo_sec = 0.5;
  double think_hi_sec = 60.0;
  double popularity_bias = 1.6;  ///< nav-choice popularity exponent

  // Arrival/phase structure.
  PhaseProfile phase{};

  std::uint64_t seed = 1;

  /// Top mined templates, for describe/provenance.
  std::vector<TemplateSummary> templates;
};

/// Serializes a profile with stable member order (diffable artifacts).
util::JsonValue profile_to_json(const WorkloadProfile& profile);

/// Parses a profile; throws std::runtime_error naming the missing or
/// mistyped field. Unknown fields are ignored (forward compatibility).
WorkloadProfile profile_from_json(const util::JsonValue& json);

/// File convenience wrappers around the JSON forms. `load_profile` throws
/// std::runtime_error on I/O or parse failure; `save_profile` returns
/// false on I/O failure.
bool save_profile(const WorkloadProfile& profile, const std::string& path);
WorkloadProfile load_profile(const std::string& path);

/// Generator bridge: compiles a profile into the site-builder and
/// trace-generator parameters, including the trace::DriftSpec phase
/// structure. The existing trace:: pipeline (build_site, generate_trace,
/// build_workload) runs unchanged on the result.
trace::WorkloadSpec to_workload_spec(const WorkloadProfile& profile);

}  // namespace prord::zoo
