// Named scenario registry: the zoo's catalog of workload profiles.
//
// Three builtin scenarios ship in code (and as checked-in JSON under
// examples/profiles/, kept byte-identical by CI):
//   - cdn-flash:          static-heavy CDN edge with phase flash crowds
//                         and aggressive hot-set rotation (drifting);
//   - api-gateway:        dynamic machine-to-machine traffic, stationary;
//   - ecommerce-diurnal:  storefront with a strong day/night swing and a
//                         slow catalog rotation.
// resolve() accepts either a registered name or a path to a profile JSON,
// which is what `--scenario <name|profile.json>` feeds it from prord_sim,
// prord_live and the benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "zoo/profile.h"

namespace prord::zoo {

/// Names of the scenarios compiled into the binary, sorted.
std::vector<std::string> builtin_scenario_names();

/// Builtin profile by name; throws std::runtime_error on unknown names.
WorkloadProfile builtin_profile(std::string_view name);

class ScenarioRegistry {
 public:
  /// Registry pre-loaded with the builtin scenarios.
  static ScenarioRegistry with_builtins();

  /// Registers (or replaces) a profile under profile.name.
  void add(WorkloadProfile profile);

  const WorkloadProfile* find(std::string_view name) const;

  /// Registered name, or — when `name_or_path` is not registered — a
  /// filesystem path to a profile JSON. Throws std::runtime_error when
  /// neither resolves, listing the known names.
  WorkloadProfile resolve(const std::string& name_or_path) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::vector<WorkloadProfile> profiles_;
};

/// One-shot convenience used by the `--scenario` flags: builtin name or
/// profile-JSON path -> generator-ready spec.
trace::WorkloadSpec scenario_spec(const std::string& name_or_path);

}  // namespace prord::zoo
