#include "policies/press.h"

namespace prord::policies {

void Press::start(cluster::Cluster& /*cluster*/) { rr_cursor_ = 0; }

ServerId Press::owner_of(trace::FileId file, cluster::Cluster& /*cluster*/) {
  const auto it = owners_.find(file);
  return it == owners_.end() ? cluster::kNoServer : it->second;
}

RouteDecision Press::route(RouteContext& ctx, cluster::Cluster& cluster) {
  RouteDecision d;
  if (ctx.conn.server != cluster::kNoServer &&
      cluster.backend(ctx.conn.server).available()) {
    d.server = ctx.conn.server;  // connections never move
  } else {
    d.via = obs::RouteVia::kBalance;
    // L4 spreading over available nodes.
    for (std::uint32_t probe = 0; probe < cluster.size(); ++probe) {
      const ServerId s = (rr_cursor_ + probe) % cluster.size();
      if (cluster.backend(s).available()) {
        d.server = s;
        rr_cursor_ = (s + 1) % cluster.size();
        break;
      }
    }
    if (d.server == cluster::kNoServer) d.server = cluster.least_loaded();
    d.handoff = true;
  }

  // The first node to serve a file becomes its owner (it will have paid
  // the disk read); later misses elsewhere pull from the owner's memory.
  const ServerId owner = owner_of(ctx.request.file, cluster);
  if (owner == cluster::kNoServer) {
    owners_.emplace(ctx.request.file, d.server);
  } else if (owner != d.server && cluster.backend(owner).available()) {
    d.fetch_from = owner;
  }
  return d;
}

void Press::on_routed(const trace::Request& /*req*/, ServerId /*server*/,
                      cluster::Cluster& /*cluster*/) {}

void Press::on_server_down(ServerId server, cluster::Cluster& /*cluster*/) {
  std::erase_if(owners_,
                [server](const auto& kv) { return kv.second == server; });
}

}  // namespace prord::policies
