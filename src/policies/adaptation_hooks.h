// Adaptation feedback interface.
//
// PRORD's online adaptive mining loop (src/adapt/) needs to see the live
// dispatch stream and the policy's prediction outcomes without the policy
// layer depending on the adaptation subsystem. The policy calls this tiny
// observer interface; adapt::AdaptiveController implements it. Everything
// is invoked from the single-threaded simulation loop — implementations
// read the clock from their own simulator reference.
#pragma once

#include "trace/workload.h"

namespace prord::policies {

class AdaptationHooks {
 public:
  virtual ~AdaptationHooks() = default;

  /// Every routed request, in dispatch order (embedded objects included —
  /// the stream sessionizer needs them for bundle re-mining).
  virtual void on_request(const trace::Request& req) = 0;

  /// One prediction outcome per routed main page with navigation history:
  /// `correct` iff the model's best guess (above the live threshold) was
  /// the page actually requested. No confident guess counts as incorrect —
  /// a stale model failing to anticipate is exactly the drift signal.
  virtual void on_prediction(bool correct) = 0;

  /// A navigation prefetch was staged (Algorithm 2 fired).
  virtual void on_prefetch_issued() = 0;

  /// A request was routed via the prefetch registry (a prefetch paid off).
  virtual void on_prefetch_used() = 0;
};

}  // namespace prord::policies
