// Locality-Aware Request Distribution (Pai et al., ASPLOS'98).
//
// The front-end maps each target file to the back-end serving it; requests
// follow the map so each back-end's cache converges on a partition of the
// working set. Load imbalance triggers reassignment:
//
//   S = server[target]
//   if S is unset:             S = least-loaded; server[target] = S
//   else if (load(S) > T_high and some node has load < T_low)
//           or load(S) >= 2*T_high:
//                              S = least-loaded; server[target] = S
//
// With `replication` enabled this becomes LARD/R: server[target] is a set;
// the least-loaded member serves; a new member joins when the whole set is
// busy (load > T_high) while some node is idle (< T_low); the most-loaded
// member is dropped when the set has been stable for `replica_ttl`.
//
// Under HTTP/1.1 this policy is the "multiple TCP handoff" flavour
// (Section 2.1.1): every request is dispatched independently, so a
// connection is re-handed whenever consecutive requests map to different
// back-ends — the overhead PRORD attacks.
#pragma once

#include <unordered_map>

#include "policies/policy.h"

namespace prord::policies {

struct LardOptions {
  std::uint32_t t_low = 8;    ///< "lightly loaded" bar
  std::uint32_t t_high = 24;  ///< "overloaded" bar
  /// Relative imbalance trigger: a server also counts as overloaded when
  /// its load exceeds factor*average_load + slack. The absolute T_low /
  /// T_high pair from the LARD paper is tuned to a fixed client count; the
  /// relative rule keeps rebalancing alive at any concurrency while
  /// tolerating the ordinary load spread locality creates.
  double imbalance_factor = 2.0;
  std::uint32_t imbalance_slack = 4;
  bool replication = false;   ///< LARD/R replica sets
  sim::SimTime replica_ttl = sim::sec(20.0);  ///< LARD/R set-shrink age
};

/// True when a server with load `load_s` should shed work given the
/// cluster's least-loaded server at `load_least` and mean load `avg`.
bool should_rebalance(std::uint32_t load_s, std::uint32_t load_least,
                      double avg, const LardOptions& options);

class Lard final : public DistributionPolicy {
 public:
  explicit Lard(LardOptions options = {});

  std::string_view name() const override {
    return options_.replication ? "LARD/R" : "LARD";
  }
  RouteDecision route(RouteContext& ctx, cluster::Cluster& cluster) override;

  /// Shared LARD assignment step (also used by Ext-LARD-PHTTP and PRORD):
  /// consults the dispatcher (counted), applies the (re)assignment rules
  /// and returns the chosen server.
  ServerId assign_server(trace::FileId file, cluster::Cluster& cluster);

  const LardOptions& options() const noexcept { return options_; }

 private:
  struct ReplicaInfo {
    sim::SimTime last_change = 0;
  };

  LardOptions options_;
  std::unordered_map<trace::FileId, ReplicaInfo> replica_info_;
};

}  // namespace prord::policies
