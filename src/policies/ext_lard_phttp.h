// Ext-LARD-PHTTP: LARD with back-end request forwarding for persistent
// HTTP (Aron, Druschel, Zwaenepoel [5]).
//
// The front-end performs a single TCP handoff per persistent connection —
// to the back-end chosen for the connection's first request. Later requests
// still get a LARD locality decision; when the target differs from the
// connection's home back-end the request is *forwarded over the
// interconnect* and the response relayed back, instead of re-handing the
// connection. This trades per-request handoff cost for per-byte forwarding
// cost.
#pragma once

#include "policies/lard.h"

namespace prord::policies {

class ExtLardPhttp final : public DistributionPolicy {
 public:
  explicit ExtLardPhttp(LardOptions options = {});

  std::string_view name() const override { return "Ext-LARD-PHTTP"; }
  RouteDecision route(RouteContext& ctx, cluster::Cluster& cluster) override;

 private:
  Lard lard_;  // reuses the assignment state machine
};

}  // namespace prord::policies
