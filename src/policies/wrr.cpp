#include "policies/wrr.h"

#include <stdexcept>

namespace prord::policies {

WeightedRoundRobin::WeightedRoundRobin(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)) {
  for (std::uint32_t w : weights_)
    if (w == 0)
      throw std::invalid_argument("WeightedRoundRobin: zero weight");
}

void WeightedRoundRobin::start(cluster::Cluster& cluster) {
  if (weights_.empty()) weights_.assign(cluster.size(), 1);
  if (weights_.size() != cluster.size())
    throw std::invalid_argument("WeightedRoundRobin: weight count mismatch");
  cursor_ = 0;
  credits_ = weights_[0];
}

RouteDecision WeightedRoundRobin::route(RouteContext& ctx,
                                        cluster::Cluster& cluster) {
  RouteDecision d;
  if (ctx.conn.server != cluster::kNoServer &&
      cluster.backend(ctx.conn.server).available()) {
    // Connection affinity: HTTP/1.1 keeps the whole connection on one node.
    // A connection stuck to a server the detector marked down falls through
    // and is re-balanced like a fresh connection.
    d.server = ctx.conn.server;
    return d;
  }
  d.via = obs::RouteVia::kBalance;
  // Advance the weighted cycle to an available server.
  for (std::uint32_t probes = 0; probes < cluster.size() + 1; ++probes) {
    if (credits_ == 0) {
      cursor_ = (cursor_ + 1) % cluster.size();
      credits_ = weights_[cursor_];
    }
    if (cluster.backend(cursor_).available()) {
      --credits_;
      d.server = cursor_;
      d.handoff = true;  // initial handoff of the new connection
      return d;
    }
    credits_ = 0;  // skip unavailable server entirely
  }
  d.server = cluster.least_loaded();  // all probed unavailable: best effort
  d.handoff = true;
  return d;
}

}  // namespace prord::policies
