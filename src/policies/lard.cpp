#include "policies/lard.h"

#include <stdexcept>

namespace prord::policies {

bool should_rebalance(std::uint32_t load_s, std::uint32_t load_least,
                      double avg, const LardOptions& options) {
  if (load_s > options.t_high && load_least < options.t_low) return true;
  if (load_s >= 2 * options.t_high) return true;
  // Relative form: pathologically above the cluster mean, with somewhere
  // meaningfully lighter to move to.
  return static_cast<double>(load_s) >=
             options.imbalance_factor * avg +
                 static_cast<double>(options.imbalance_slack) &&
         static_cast<double>(load_least) < avg;
}

Lard::Lard(LardOptions options) : options_(options) {
  if (options.t_low >= options.t_high)
    throw std::invalid_argument("Lard: need t_low < t_high");
  if (options.imbalance_factor < 1.0)
    throw std::invalid_argument("Lard: imbalance_factor < 1");
}

ServerId Lard::assign_server(trace::FileId file, cluster::Cluster& cluster) {
  auto& dispatcher = cluster.dispatcher();
  const auto assigned = dispatcher.lookup(file);  // counted contact

  if (assigned.empty()) {
    const ServerId s = cluster.least_loaded();
    dispatcher.assign(file, s);
    if (options_.replication)
      replica_info_[file].last_change = cluster.sim().now();
    return s;
  }

  if (!options_.replication) {
    ServerId s = assigned.front();
    const auto& be = cluster.backend(s);
    const ServerId least = cluster.least_loaded();
    if (least != cluster::kNoServer &&
        (!be.available() ||
         should_rebalance(be.load(), cluster.backend(least).load(),
                          cluster.average_load(), options_))) {
      dispatcher.unassign(file, s);
      s = least;
      dispatcher.assign(file, s);
    }
    return s;
  }

  // LARD/R: serve from the least-loaded replica; grow the set under
  // pressure, shrink it after a quiet period.
  ServerId s = cluster.least_loaded_of(assigned);
  if (s == cluster::kNoServer) {
    s = cluster.least_loaded();
    dispatcher.assign(file, s);
    replica_info_[file].last_change = cluster.sim().now();
    return s;
  }
  auto& info = replica_info_[file];
  const ServerId least = cluster.least_loaded();
  if (least != cluster::kNoServer && least != s &&
      should_rebalance(cluster.backend(s).load(),
                       cluster.backend(least).load(), cluster.average_load(),
                       options_)) {
    dispatcher.assign(file, least);
    info.last_change = cluster.sim().now();
    s = least;
  } else if (assigned.size() > 1 &&
             cluster.sim().now() - info.last_change > options_.replica_ttl) {
    // Stable for a while: drop the most loaded member to reclaim cache.
    ServerId busiest = assigned.front();
    for (ServerId id : assigned)
      if (cluster.backend(id).load() > cluster.backend(busiest).load())
        busiest = id;
    if (busiest != s) {
      cluster.dispatcher().unassign(file, busiest);
      info.last_change = cluster.sim().now();
    }
  }
  return s;
}

RouteDecision Lard::route(RouteContext& ctx, cluster::Cluster& cluster) {
  RouteDecision d;
  d.server = assign_server(ctx.request.file, cluster);
  d.contacted_dispatcher = true;
  d.via = obs::RouteVia::kDispatcher;
  // Multiple-TCP-handoff P-HTTP (Section 2.1.1): "the LARD policy is
  // applied to each incoming request, requiring TCP handoffs for each
  // request, even though the requests are from the same user."
  d.handoff = true;
  return d;
}

}  // namespace prord::policies
