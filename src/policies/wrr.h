// Weighted round robin.
//
// The content-blind baseline: each new persistent connection is assigned to
// the next back-end in weighted cyclic order and stays there. Excellent
// load balance, no locality (every server's cache ends up holding the whole
// working set).
#pragma once

#include <cstdint>
#include <vector>

#include "policies/policy.h"

namespace prord::policies {

class WeightedRoundRobin final : public DistributionPolicy {
 public:
  /// Empty weights = equal weight 1 per back-end.
  explicit WeightedRoundRobin(std::vector<std::uint32_t> weights = {});

  std::string_view name() const override { return "WRR"; }
  void start(cluster::Cluster& cluster) override;
  RouteDecision route(RouteContext& ctx, cluster::Cluster& cluster) override;

 private:
  std::vector<std::uint32_t> weights_;
  std::uint32_t cursor_ = 0;   ///< current server index
  std::uint32_t credits_ = 0;  ///< remaining picks at cursor_
};

}  // namespace prord::policies
