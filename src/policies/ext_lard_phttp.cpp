#include "policies/ext_lard_phttp.h"

namespace prord::policies {

ExtLardPhttp::ExtLardPhttp(LardOptions options) : lard_(options) {}

RouteDecision ExtLardPhttp::route(RouteContext& ctx,
                                  cluster::Cluster& cluster) {
  RouteDecision d;
  d.server = lard_.assign_server(ctx.request.file, cluster);
  d.contacted_dispatcher = true;
  d.via = obs::RouteVia::kDispatcher;

  if (ctx.conn.server == cluster::kNoServer) {
    // First request: the connection is handed off once, to this target.
    d.handoff = true;
    return d;
  }
  if (d.server != ctx.conn.server) {
    if (!cluster.backend(ctx.conn.server).available()) {
      // The connection's home back-end is believed dead: relaying a
      // response through it would go nowhere. Re-hand the connection.
      d.handoff = true;
    } else {
      // Serve on the target, relay through the connection's home back-end.
      d.forwarded = true;
    }
  }
  return d;
}

}  // namespace prord::policies
