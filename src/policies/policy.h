// Request-distribution policy interface.
//
// The workload player (core/) owns connection state and cost accounting;
// a policy only decides *where* each request goes and what front-end work
// that decision required:
//
//   - contacted_dispatcher: the distributor consulted the dispatcher
//     (locality lookup). Fig. 6 counts exactly these.
//   - handoff: the persistent connection is (re)handed to the chosen
//     back-end — the driver charges Table 1's 200 µs and updates the
//     connection's server.
//   - forwarded: the connection stays put and the response is relayed from
//     the chosen back-end through the connection's front server over the
//     interconnect (back-end forwarding, Aron et al. [5]).
#pragma once

#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "obs/span.h"
#include "trace/workload.h"

namespace prord::policies {

using cluster::ServerId;

/// Per-persistent-connection state, owned by the driver.
struct ConnectionState {
  ServerId server = cluster::kNoServer;  ///< back-end holding the connection
  std::vector<trace::FileId> history;    ///< recent main-page views
  std::uint32_t requests = 0;
};

struct RouteContext {
  const trace::Request& request;
  ConnectionState& conn;
};

struct RouteDecision {
  ServerId server = cluster::kNoServer;
  bool contacted_dispatcher = false;
  bool handoff = false;
  bool forwarded = false;
  /// Cooperative caching (PRESS [32]): if set, a miss at `server` pulls
  /// the file from this peer's memory over the interconnect instead of
  /// reading disk.
  ServerId fetch_from = cluster::kNoServer;
  /// Which mechanism produced this decision (observability: per-request
  /// trace spans and the per-mechanism route counters key on it).
  obs::RouteVia via = obs::RouteVia::kSticky;
};

class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Called once before the run starts (register periodic tasks etc.).
  virtual void start(cluster::Cluster& /*cluster*/) {}

  /// Called once after the last request completes: cancel periodic work so
  /// the event set can drain.
  virtual void finish(cluster::Cluster& /*cluster*/) {}

  /// Zeroes policy-level counters at the warm-up/measurement boundary.
  virtual void reset_counters() {}

  /// Picks a back-end for the request.
  virtual RouteDecision route(RouteContext& ctx,
                              cluster::Cluster& cluster) = 0;

  /// Called after the driver commits the decision and submits the request.
  virtual void on_routed(const trace::Request& /*req*/, ServerId /*server*/,
                         cluster::Cluster& /*cluster*/) {}

  /// Called when the back-end finished serving the request.
  virtual void on_complete(const trace::Request& /*req*/, ServerId /*server*/,
                           cluster::Cluster& /*cluster*/) {}

  // --- Failure-detector callbacks (faults::HealthMonitor). Fired when the
  // front-end's *belief* flips, i.e. at heartbeat detection, not at the
  // actual crash/restart instant. Policies repair routing state here:
  // LARD-family server sets, PRESS content ownership, PRORD's replica
  // registry and rank-table-driven re-warm.
  virtual void on_server_down(ServerId /*server*/,
                              cluster::Cluster& /*cluster*/) {}
  virtual void on_server_up(ServerId /*server*/,
                            cluster::Cluster& /*cluster*/) {}
};

}  // namespace prord::policies
