#include "policies/prord.h"

#include <algorithm>
#include <stdexcept>

namespace prord::policies {

Prord::Prord(std::shared_ptr<logmining::MiningModel> model,
             const trace::FileTable& files, PrordOptions options)
    : model_(std::move(model)),
      predict_link_(model_),
      files_(files),
      options_([&options] {
        // Fig. 4 step 3: "selects a least loaded backend server which hosts
        // the file in the memory" — the base assignment is replica-aware.
        options.lard.replication = true;
        return std::move(options);
      }()),
      lard_(options_.lard) {
  if (!model_) throw std::invalid_argument("Prord: null mining model");
  if (options_.prefetch_threshold <= 0.0 || options_.prefetch_threshold > 1.0)
    throw std::invalid_argument("Prord: prefetch_threshold in (0,1]");
  threshold_ = options_.prefetch_threshold;
}

void Prord::set_model(std::shared_ptr<logmining::MiningModel> model) {
  if (!model) throw std::invalid_argument("Prord::set_model: null model");
  model_ = std::move(model);
  predict_link_.rebind(model_);
}

std::string_view Prord::name() const {
  if (!options_.display_name.empty()) return options_.display_name;
  return "PRORD";
}

void Prord::start(cluster::Cluster& cluster) {
  if (options_.replication || options_.adaptive_threshold) {
    replication_task_.emplace(cluster.sim(), options_.replication_interval,
                              [this, &cluster] { run_maintenance(cluster); });
  }
}

void Prord::run_maintenance(cluster::Cluster& cluster) {
  if (options_.replication) run_replication_round(cluster);
  if (options_.adaptive_threshold) adapt_threshold();
}

void Prord::adapt_threshold() {
  const std::uint64_t triggered =
      prefetches_triggered_ - last_prefetches_triggered_;
  const std::uint64_t used = prefetch_routes_ - last_prefetch_routes_;
  last_prefetches_triggered_ = prefetches_triggered_;
  last_prefetch_routes_ = prefetch_routes_;
  if (triggered < 4) return;  // not enough signal this period
  const double usefulness =
      static_cast<double>(used) / static_cast<double>(triggered);
  if (usefulness < 0.5)
    threshold_ = std::min(0.9, threshold_ + 0.05);  // prefetching wastefully
  else if (usefulness > 1.5)
    threshold_ = std::max(0.1, threshold_ - 0.05);  // leaving demand untapped
}

void Prord::finish(cluster::Cluster& /*cluster*/) {
  replication_task_.reset();
  // Connection ids restart in the next play (warm-up -> measurement).
  conn_history_.clear();
}

void Prord::register_holder(
    std::unordered_map<trace::FileId, std::vector<ServerId>>& registry,
    trace::FileId file, ServerId server) {
  auto& holders = registry[file];
  if (std::find(holders.begin(), holders.end(), server) == holders.end())
    holders.push_back(server);
}

ServerId Prord::proactive_holder(
    std::unordered_map<trace::FileId, std::vector<ServerId>>& registry,
    trace::FileId file, cluster::Cluster& cluster) {
  const auto it = registry.find(file);
  if (it == registry.end()) return cluster::kNoServer;
  std::erase_if(it->second, [&](ServerId s) {
    return !cluster.backend(s).caches(file);
  });
  if (it->second.empty()) {
    registry.erase(it);
    return cluster::kNoServer;
  }
  const ServerId s = cluster.least_loaded_of(it->second);
  if (s == cluster::kNoServer) return cluster::kNoServer;
  // A proactive holder only short-circuits the dispatcher while it is not
  // itself the load problem.
  const ServerId least = cluster.least_loaded();
  if (least != cluster::kNoServer &&
      should_rebalance(cluster.backend(s).load(),
                       cluster.backend(least).load(), cluster.average_load(),
                       options_.lard))
    return cluster::kNoServer;
  return s;
}

RouteDecision Prord::route(RouteContext& ctx, cluster::Cluster& cluster) {
  RouteDecision d;
  const trace::Request& req = ctx.request;

  // Step 1 (Fig. 4): embedded object of this connection's current page —
  // forward to the back-end that served the page; no dispatch, no handoff.
  // The forward only happens while that back-end actually has (or is
  // staging) the object; when memory is too tight to keep bundles resident
  // the front-end falls back to per-object locality below, which is what
  // keeps PRORD from thrashing tiny caches (Fig. 8's low-memory regime).
  if (options_.bundle_forwarding && req.is_embedded &&
      ctx.conn.server != cluster::kNoServer &&
      cluster.backend(ctx.conn.server).available() &&
      (cluster.backend(ctx.conn.server).caches_or_fetching(req.file) ||
       cluster.replica_pending(ctx.conn.server, req.file))) {
    ++bundle_forwards_;
    d.server = ctx.conn.server;
    d.via = obs::RouteVia::kBundle;
    return d;
  }

  // Step 1b (Fig. 4, "already distributed ... backend that already
  // processes it"): the connection's own back-end has the page in memory
  // and is not the load problem — stay put, no dispatch, no handoff.
  if (options_.bundle_forwarding && ctx.conn.server != cluster::kNoServer &&
      cluster.backend(ctx.conn.server).available() &&
      cluster.backend(ctx.conn.server).caches(req.file)) {
    const ServerId least = cluster.least_loaded();
    if (least == cluster::kNoServer ||
        !should_rebalance(cluster.backend(ctx.conn.server).load(),
                          cluster.backend(least).load(),
                          cluster.average_load(), options_.lard)) {
      ++bundle_forwards_;
      d.server = ctx.conn.server;
      d.via = obs::RouteVia::kBundle;
      return d;
    }
  }

  // Dynamic pages (extension): no locality to exploit — balance load.
  if (options_.dynamic_aware && req.is_dynamic) {
    const ServerId s = cluster.least_loaded();
    if (s != cluster::kNoServer) {
      d.server = s;
      d.handoff = (ctx.conn.server != s);
      d.via = obs::RouteVia::kBalance;
      return d;
    }
  }

  // Step 2: proactively placed content known at the front-end. Back-ends
  // notify the front-end of placements and evictions, so prune stale
  // holders before trusting a registry; fall back to the dispatcher when
  // every holder is busy (load balancing still wins).
  ServerId s = proactive_holder(prefetched_, req.file, cluster);
  obs::RouteVia via = obs::RouteVia::kPrefetch;
  if (s == cluster::kNoServer) {
    s = proactive_holder(replicated_, req.file, cluster);
    via = obs::RouteVia::kReplica;
  }
  if (s != cluster::kNoServer) {
    ++prefetch_routes_;
    if (adaptation_ && via == obs::RouteVia::kPrefetch)
      adaptation_->on_prefetch_used();
    d.server = s;
    d.handoff = (ctx.conn.server != s);
    d.via = via;
    return d;
  }

  // Step 3: locality-aware assignment via the dispatcher.
  d.server = lard_.assign_server(req.file, cluster);
  d.contacted_dispatcher = true;
  d.handoff = (ctx.conn.server != d.server);
  d.via = obs::RouteVia::kDispatcher;
  return d;
}

void Prord::stage_bundle(trace::FileId page, ServerId server,
                         cluster::Cluster& cluster) {
  // "When a request for a main page arrives at the backend, the embedded
  // objects associated with the main page are pre-fetched into the cache."
  // The objects will be bundle-forwarded to this connection's server, so
  // they must live *here*. If a sibling already caches an object, pull it
  // over the interconnect (~80 µs/KB) instead of re-reading a duplicate
  // from disk (~10 ms).
  auto& backend = cluster.backend(server);
  // The pinned budget is shared by speculative users: when the replication
  // planner is active it owns that region, and staged bundles — content
  // that is about to be demanded anyway — live in the demand region.
  const bool pin = !options_.replication;
  for (trace::FileId obj : model_->bundles().bundle_of(page)) {
    if (!backend.caches(obj)) {
      bool pulled = false;
      for (ServerId s = 0; s < cluster.size() && !pulled; ++s) {
        if (s == server || !cluster.backend(s).caches(obj)) continue;
        pulled =
            cluster.push_replica(server, obj, files_.size_bytes(obj), pin);
      }
      if (!pulled) backend.prefetch(obj, files_.size_bytes(obj), pin);
    }
    register_holder(prefetched_, obj, server);
  }
}

void Prord::trigger_prefetch(const trace::Request& /*req*/, ServerId server,
                             std::span<const trace::FileId> history,
                             cluster::Cluster& cluster) {
  auto& backend = cluster.backend(server);

  // Prefetch a file onto `server` only when no back-end holds it: if it is
  // warm anywhere, steps 2-3 of the front-end flow will route the future
  // request to that holder, so a disk read here would only duplicate
  // content and burn disk bandwidth the demand path needs.
  auto stage = [&](trace::FileId file) {
    if (backend.caches(file)) {
      backend.prefetch(file, files_.size_bytes(file));  // refresh pin
      register_holder(prefetched_, file, server);
      return;
    }
    for (ServerId s = 0; s < cluster.size(); ++s)
      if (cluster.backend(s).caches(file)) {
        register_holder(prefetched_, file, s);
        return;
      }
    backend.prefetch(file, files_.size_bytes(file));
    register_holder(prefetched_, file, server);
  };

  // Navigation prediction (Algorithm 2): prefetch the likely next page
  // (and its bundle) when confidence clears the threshold.
  const auto prediction = predict_link_.best(history, threshold_);
  if (!prediction) return;
  // Dynamic pages cannot be prefetched (generated per request), but their
  // static bundle can.
  const bool dynamic_page =
      options_.dynamic_aware &&
      trace::is_dynamic_url(files_.url(prediction->file));
  ++prefetches_triggered_;
  if (adaptation_) adaptation_->on_prefetch_issued();
  if (!dynamic_page) stage(prediction->file);
  for (trace::FileId obj : model_->bundles().bundle_of(prediction->file))
    stage(obj);
}

void Prord::on_routed(const trace::Request& req, ServerId server,
                      cluster::Cluster& cluster) {
  // Dynamic popularity tracking feeds Algorithm 3; the adaptation loop's
  // sessionizer sees the same stream.
  model_->popularity().record_hit(req.file, cluster.sim().now());
  cluster.dispatcher().assign(req.file, server);
  if (adaptation_) adaptation_->on_request(req);

  if (req.is_embedded) return;

  // Online model update: this page followed the connection's history.
  auto& history = conn_history_[req.conn];
  if (!history.empty()) {
    // Score the model before it learns from this arrival: would its
    // confident guess have anticipated the page? This is the live quality
    // signal the drift monitor watches.
    const auto guess = predict_link_.best(history, threshold_);
    const bool correct = guess && guess->file == req.file;
    ++(correct ? prediction_hits_ : prediction_misses_);
    if (adaptation_) adaptation_->on_prediction(correct);
    predict_link_.feed_transition(history, req.file);
  }
  history.push_back(req.file);
  if (history.size() > options_.max_history)
    history.erase(history.begin());

  // Bundle staging belongs to the bundle scheme (Fig. 9's "LARD-bundle");
  // navigation prefetching to the prefetch scheme ("LARD-prefetch-nav").
  if (options_.bundle_forwarding || options_.prefetch)
    stage_bundle(req.file, server, cluster);
  if (options_.prefetch) trigger_prefetch(req, server, history, cluster);
}

void Prord::on_server_down(ServerId server, cluster::Cluster& /*cluster*/) {
  const auto purge = [server](auto& registry) {
    for (auto it = registry.begin(); it != registry.end();) {
      std::erase(it->second, server);
      if (it->second.empty())
        it = registry.erase(it);
      else
        ++it;
    }
  };
  purge(prefetched_);
  purge(replicated_);
}

void Prord::on_server_up(ServerId server, cluster::Cluster& cluster) {
  // Without the replication scheme the node re-warms on demand misses
  // alone — the ablation the fault bench compares against.
  if (!options_.replication) return;
  const auto table = model_->popularity().rank_table(cluster.sim().now());
  std::size_t pushes = 0;
  for (const auto& entry : table) {
    if (pushes >= options_.max_replication_pushes) break;
    const std::uint32_t bytes = files_.size_bytes(entry.file);
    // push_replica declines dead/saturated targets and files already
    // resident, so this loop self-limits to useful transfers.
    if (!cluster.push_replica(server, entry.file, bytes)) continue;
    cluster.dispatcher().assign(entry.file, server);
    register_holder(replicated_, entry.file, server);
    ++rewarm_pushes_;
    ++pushes;
  }
}

void Prord::run_replication_round(cluster::Cluster& cluster) {
  ++replication_rounds_;
  const auto now = cluster.sim().now();
  auto plan_opts = options_.replication_plan;
  if (plan_opts.max_directives == 0)
    plan_opts.max_directives = options_.max_replication_pushes * 4;
  // The planner consumes at most max_directives rows (T1 comes from the
  // table's front, and the loop breaks at the directive cap or the
  // min_rank floor), so a bounded top-k selection sees the exact rows the
  // full sort would hand it — without rebuilding and sorting the whole
  // table every interval. rank_scratch_ is reused across rounds.
  model_->popularity().top_rank_table(now, plan_opts.max_directives,
                                      rank_scratch_);
  const auto plan =
      logmining::plan_replication(rank_scratch_, cluster.size(), plan_opts);

  std::size_t pushes = 0;
  for (const auto& directive : plan) {
    if (pushes >= options_.max_replication_pushes) break;
    const trace::FileId file = directive.file;
    const std::uint32_t bytes = files_.size_bytes(file);

    if (directive.tier == logmining::ReplicaTier::kNone) {
      // No proactive replication for this file any more: stop steering
      // requests at its replica set and let the pinned LRU age the copies
      // out. Actively evicting them only forces demand re-reads later.
      replicated_.erase(file);
      continue;
    }
    if (directive.tier == logmining::ReplicaTier::kNoChange) continue;

    // Push replicas to the least-loaded back-ends that lack the file.
    auto& holders = replicated_[file];
    std::uint32_t have = 0;
    for (ServerId s = 0; s < cluster.size(); ++s)
      have += cluster.backend(s).caches(file);
    while (have < directive.target_replicas &&
           pushes < options_.max_replication_pushes) {
      ServerId best = cluster::kNoServer;
      for (ServerId s = 0; s < cluster.size(); ++s) {
        if (!cluster.backend(s).available()) continue;
        if (cluster.backend(s).caches(file)) continue;
        if (std::find(holders.begin(), holders.end(), s) != holders.end())
          continue;
        if (best == cluster::kNoServer ||
            cluster.backend(s).load() < cluster.backend(best).load())
          best = s;
      }
      if (best == cluster::kNoServer) break;
      if (!cluster.push_replica(best, file, bytes)) break;  // NIC saturated
      cluster.dispatcher().assign(file, best);
      register_holder(replicated_, file, best);
      ++replicas_pushed_;
      ++pushes;
      ++have;
    }
  }
}

PrordOptions prord_full_options() { return PrordOptions{}; }

PrordOptions lard_bundle_options() {
  PrordOptions o;
  o.replication = false;
  o.prefetch = false;
  o.display_name = "LARD-bundle";
  return o;
}

PrordOptions lard_distribution_options() {
  PrordOptions o;
  o.bundle_forwarding = false;
  o.prefetch = false;
  o.display_name = "LARD-distribution";
  return o;
}

PrordOptions lard_prefetch_nav_options() {
  PrordOptions o;
  o.bundle_forwarding = false;
  o.replication = false;
  o.display_name = "LARD-prefetch-nav";
  return o;
}

PrordOptions prord_no_replication_options() {
  PrordOptions o;
  o.replication = false;
  o.display_name = "PRORD-norepl";
  return o;
}

}  // namespace prord::policies
