// PRORD: PROactive Request Distribution (the paper's contribution).
//
// Front-end flow (Fig. 4):
//   1. Embedded object of the connection's previous page?  -> same back-end,
//      no dispatcher contact, no handoff  ("bundle" forwarding).
//   2. Known to be prefetched / proactively replicated?    -> route to a
//      holder from the front-end's own prefetch registry, no dispatcher.
//   3. Otherwise LARD-style dispatcher assignment (counted dispatch).
//
// Back-end proactivity (Section 4.1), triggered from on_routed():
//   - the connection's navigation history feeds the mined predictor
//     (Algorithms 1 & 2); a prediction whose confidence clears the
//     threshold is prefetched into the serving back-end's pinned memory,
//     together with the predicted page's bundle;
//   - the requested main page's own bundle is prefetched so the embedded
//     objects that follow hit memory;
//   - every t seconds Algorithm 3 replicates hot files (by decayed rank)
//     across back-ends' pinned regions.
//
// Each mechanism has a toggle so Fig. 9's single-enhancement ablations
// (LARD-bundle / LARD-distribution / LARD-prefetch-nav) are just configs.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "logmining/mining_model.h"
#include "logmining/replication.h"
#include "policies/adaptation_hooks.h"
#include "policies/lard.h"
#include "predict/inline_link.h"
#include "simcore/simulator.h"

namespace prord::policies {

struct PrordOptions {
  bool bundle_forwarding = true;   ///< Fig. 9 "LARD-bundle"
  bool replication = true;         ///< Fig. 9 "LARD-distribution"
  bool prefetch = true;            ///< Fig. 9 "LARD-prefetch-nav"
  /// Dynamic-content extension (the paper's stated future work): dynamic
  /// pages have no cache locality, so route them to the least-loaded
  /// back-end instead of through the locality machinery, and never
  /// prefetch them.
  bool dynamic_aware = true;

  double prefetch_threshold = 0.4;     ///< Algorithm 2's Threshold
  /// Self-tuning threshold (extension): every maintenance period the
  /// threshold moves up when prefetched content goes unused (wasted disk)
  /// and down when nearly every prefetch is consumed (demand untapped),
  /// within [0.1, 0.9]. The fixed threshold the paper uses is the
  /// `false` setting.
  bool adaptive_threshold = false;
  std::size_t max_history = 8;         ///< per-connection context length
  sim::SimTime replication_interval = sim::sec(60.0);  ///< Algorithm 3's t
  logmining::ReplicationPlanOptions replication_plan{};
  std::size_t max_replication_pushes = 64;  ///< per round, hottest first
  LardOptions lard{};

  /// Display name override for ablation runs (empty = "PRORD").
  std::string display_name{};
};

class Prord final : public DistributionPolicy {
 public:
  /// `model` is the offline mining pass output; PRORD keeps updating it
  /// online. `files` supplies sizes for prefetch/replication transfers.
  Prord(std::shared_ptr<logmining::MiningModel> model,
        const trace::FileTable& files, PrordOptions options = {});

  std::string_view name() const override;
  void start(cluster::Cluster& cluster) override;
  void finish(cluster::Cluster& cluster) override;
  void reset_counters() override {
    bundle_forwards_ = prefetch_routes_ = prefetches_triggered_ = 0;
    replication_rounds_ = replicas_pushed_ = rewarm_pushes_ = 0;
    prediction_hits_ = prediction_misses_ = 0;
  }

  /// Swaps in a re-mined model (published by adapt::ModelSwap). Takes
  /// effect for the next routed request; requests already being served
  /// keep whatever shared_ptr copies they hold — the swap is never torn.
  void set_model(std::shared_ptr<logmining::MiningModel> model);

  /// Subscribes the online adaptation loop to this policy's dispatch
  /// stream and prediction outcomes. Borrowed; nullptr detaches.
  void set_adaptation(AdaptationHooks* hooks) noexcept {
    adaptation_ = hooks;
  }
  RouteDecision route(RouteContext& ctx, cluster::Cluster& cluster) override;
  void on_routed(const trace::Request& req, ServerId server,
                 cluster::Cluster& cluster) override;
  /// Purges the dead node from both proactive registries: its memory (and
  /// with it every prefetch/replica placement) is gone.
  void on_server_down(ServerId server, cluster::Cluster& cluster) override;
  /// Re-warms the rejoining node's cold pinned region immediately from the
  /// popularity rank table (Algorithm 3 out of cycle) instead of waiting
  /// for the next periodic round — the availability win the fault bench
  /// measures.
  void on_server_up(ServerId server, cluster::Cluster& cluster) override;

  // --- Introspection for tests/benches.
  std::uint64_t bundle_forwards() const noexcept { return bundle_forwards_; }
  std::uint64_t prefetch_hits() const noexcept { return prefetch_routes_; }
  std::uint64_t prefetches_triggered() const noexcept {
    return prefetches_triggered_;
  }
  std::uint64_t replication_rounds() const noexcept {
    return replication_rounds_;
  }
  std::uint64_t replicas_pushed() const noexcept { return replicas_pushed_; }
  /// Replica pushes issued by on_server_up re-warm rounds.
  std::uint64_t rewarm_pushes() const noexcept { return rewarm_pushes_; }
  /// Current Algorithm 2 threshold (moves only with adaptive_threshold).
  double current_threshold() const noexcept { return threshold_; }
  /// Prediction scoreboard: one outcome per routed main page with
  /// navigation history — a hit iff the model's confident guess was the
  /// page actually requested (no confident guess counts as a miss).
  std::uint64_t prediction_hits() const noexcept { return prediction_hits_; }
  std::uint64_t prediction_misses() const noexcept {
    return prediction_misses_;
  }
  double prediction_hit_rate() const noexcept {
    const auto n = prediction_hits_ + prediction_misses_;
    return n ? static_cast<double>(prediction_hits_) /
                   static_cast<double>(n)
             : 0.0;
  }

 private:
  void run_maintenance(cluster::Cluster& cluster);
  void run_replication_round(cluster::Cluster& cluster);
  void adapt_threshold();
  static void register_holder(
      std::unordered_map<trace::FileId, std::vector<ServerId>>& registry,
      trace::FileId file, ServerId server);
  /// Best still-caching, not-overloaded holder from a registry, pruning
  /// stale entries; kNoServer when the registry cannot serve the request.
  ServerId proactive_holder(
      std::unordered_map<trace::FileId, std::vector<ServerId>>& registry,
      trace::FileId file, cluster::Cluster& cluster);
  void stage_bundle(trace::FileId page, ServerId server,
                    cluster::Cluster& cluster);
  void trigger_prefetch(const trace::Request& req, ServerId server,
                        std::span<const trace::FileId> history,
                        cluster::Cluster& cluster);

  std::shared_ptr<logmining::MiningModel> model_;
  /// Prediction seam: every predict/learn call goes through the same
  /// IPredictorLink interface the live cluster's PredictionService
  /// implements. The inline link delegates verbatim to model_->predictor()
  /// (the golden tables pin that equivalence); set_model() rebinds it.
  predict::InlineLink predict_link_;
  const trace::FileTable& files_;
  PrordOptions options_;
  Lard lard_;

  /// Front-end registries of proactively placed content: file -> holders.
  /// Prefetch placements (Algorithm 2) are short-lived and age out with
  /// the pinned LRU; replication placements (Algorithm 3) are managed —
  /// and retracted — by the periodic planner. Keeping them apart stops a
  /// NONE directive from undoing a prefetch made moments ago.
  std::unordered_map<trace::FileId, std::vector<ServerId>> prefetched_;
  std::unordered_map<trace::FileId, std::vector<ServerId>> replicated_;
  /// Per-connection navigation history (main pages) for prediction.
  std::unordered_map<std::uint32_t, std::vector<trace::FileId>> conn_history_;
  std::optional<sim::PeriodicTask> replication_task_;
  /// Reused top-k buffer for the periodic planner (hot path: one
  /// replication round per interval for the whole run).
  std::vector<logmining::RankEntry> rank_scratch_;

  /// Adaptation observer (adapt::AdaptiveController); null when the
  /// online loop is off.
  AdaptationHooks* adaptation_ = nullptr;

  std::uint64_t bundle_forwards_ = 0;
  std::uint64_t prefetch_routes_ = 0;
  std::uint64_t prefetches_triggered_ = 0;
  std::uint64_t replication_rounds_ = 0;
  std::uint64_t replicas_pushed_ = 0;
  std::uint64_t rewarm_pushes_ = 0;
  std::uint64_t prediction_hits_ = 0;
  std::uint64_t prediction_misses_ = 0;

  double threshold_ = 0.4;  ///< live Algorithm 2 threshold
  std::uint64_t last_prefetch_routes_ = 0;
  std::uint64_t last_prefetches_triggered_ = 0;
};

/// Convenience factories for the Fig. 9 ablation configurations.
PrordOptions prord_full_options();
PrordOptions lard_bundle_options();        ///< bundles only
PrordOptions lard_distribution_options();  ///< popularity replication only
PrordOptions lard_prefetch_nav_options();  ///< navigation prefetch only
PrordOptions prord_no_replication_options();  ///< fault-bench ablation

}  // namespace prord::policies
