// PRESS-style locality-aware distribution with cooperative caching
// (Carrera & Bianchini [32], cited in Section 6's related systems).
//
// The architectural opposite of LARD's smart front-end: connections are
// spread content-blind (an L4 switch), and locality is recovered at the
// *back*: each file has an owner node (consistent assignment by popularity
// of first sight); a server missing a file pulls it from the owner's
// memory over the user-level network instead of its disk. No per-request
// dispatching, no handoffs beyond the initial one — but every remote hit
// pays an interconnect transfer, which is the trade PRORD's proactive
// placement avoids.
#pragma once

#include <unordered_map>

#include "policies/policy.h"

namespace prord::policies {

class Press final : public DistributionPolicy {
 public:
  Press() = default;

  std::string_view name() const override { return "PRESS"; }
  void start(cluster::Cluster& cluster) override;
  RouteDecision route(RouteContext& ctx, cluster::Cluster& cluster) override;
  void on_routed(const trace::Request& req, ServerId server,
                 cluster::Cluster& cluster) override;
  /// A dead node's memory is gone: forget its ownerships so later misses
  /// re-assign owners instead of pulling from a corpse.
  void on_server_down(ServerId server, cluster::Cluster& cluster) override;

  std::uint64_t owner_assignments() const noexcept { return owners_.size(); }

 private:
  /// Owner of a file: assigned on first sight to the then-least-loaded
  /// node (PRESS hashes; least-loaded keeps hot owners spread).
  ServerId owner_of(trace::FileId file, cluster::Cluster& cluster);

  std::uint32_t rr_cursor_ = 0;
  std::unordered_map<trace::FileId, ServerId> owners_;
};

}  // namespace prord::policies
