#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace prord::metrics {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedMean::update(sim::SimTime now, double value) noexcept {
  if (now > last_change_) {
    weighted_sum_ += value_ * static_cast<double>(now - last_change_);
    last_change_ = now;
  }
  value_ = value;
}

double TimeWeightedMean::average(sim::SimTime now) const noexcept {
  const auto span = static_cast<double>(now - start_);
  // Zero elapsed time: the only defensible average is the instantaneous
  // level (0/0 otherwise). Matters for samplers that read at t == start.
  if (span <= 0) return current();
  const double tail = value_ * static_cast<double>(now - last_change_);
  return (weighted_sum_ + tail) / span;
}

}  // namespace prord::metrics
