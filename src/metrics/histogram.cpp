#include "metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace prord::metrics {

Histogram::Histogram(std::uint64_t max_value, unsigned sub_bucket_bits)
    : sub_bits_(sub_bucket_bits),
      sub_count_(1ULL << sub_bucket_bits),
      max_value_(max_value) {
  if (sub_bucket_bits == 0 || sub_bucket_bits > 16)
    throw std::invalid_argument("Histogram: sub_bucket_bits out of range");
  if (max_value < sub_count_)
    throw std::invalid_argument("Histogram: max_value too small");
  // One linear region [0, 2*sub_count), then one half-region of sub_count
  // buckets per further power of two.
  const unsigned top_bit = 63 - static_cast<unsigned>(std::countl_zero(max_value));
  const unsigned regions = top_bit >= sub_bits_ ? top_bit - sub_bits_ + 1 : 1;
  counts_.assign((regions + 1) * sub_count_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  value = std::min(value, max_value_);
  if (value < 2 * sub_count_) return static_cast<std::size_t>(value);
  const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(value));
  const unsigned region = msb - sub_bits_;           // >= 1 here
  const std::uint64_t sub = value >> region;          // in [sub_count, 2*sub_count)
  const std::size_t idx =
      region * sub_count_ + static_cast<std::size_t>(sub);
  return std::min(idx, counts_.size() - 1);
}

std::uint64_t Histogram::bucket_midpoint(std::size_t index) const noexcept {
  if (index < 2 * sub_count_) return index;
  const std::size_t region = index / sub_count_ - 1;
  const std::uint64_t sub = index % sub_count_ + sub_count_;
  const std::uint64_t lo = sub << region;
  const std::uint64_t width = 1ULL << region;
  return lo + width / 2;
}

void Histogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t n) noexcept {
  if (n == 0) return;
  counts_[bucket_index(value)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
}

std::uint64_t Histogram::min() const noexcept {
  return count_ ? min_seen_ : 0;
}

std::uint64_t Histogram::max() const noexcept {
  return count_ ? max_seen_ : 0;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0)
      return std::clamp(bucket_midpoint(i), min_seen_, max_seen_);
  }
  return max_seen_;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.sub_bits_ != sub_bits_)
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_seen_ = ~0ULL;
  max_seen_ = 0;
}

}  // namespace prord::metrics
