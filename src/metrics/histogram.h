// Log-bucketed latency histogram (HdrHistogram-style, fixed precision).
//
// Values are non-negative integers (we record latencies in microseconds).
// Buckets are arranged so that relative error is bounded by
// 1/2^sub_bucket_bits; with the default 5 bits that is ~3%, plenty for
// p50/p90/p99 reporting in the benches.
#pragma once

#include <cstdint>
#include <vector>

namespace prord::metrics {

class Histogram {
 public:
  /// `max_value` bounds recordable values (larger values are clamped and
  /// counted in the top bucket); `sub_bucket_bits` sets precision.
  explicit Histogram(std::uint64_t max_value = (1ULL << 40),
                     unsigned sub_bucket_bits = 5);

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;
  double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile in [0,1]; returns a representative value of the bucket
  /// containing the q-th sample. 0 if empty.
  std::uint64_t quantile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }

  void merge(const Histogram& other);
  void reset() noexcept;

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  std::uint64_t bucket_midpoint(std::size_t index) const noexcept;

  unsigned sub_bits_;
  std::uint64_t sub_count_;      // 1 << sub_bits_
  std::uint64_t max_value_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_seen_ = ~0ULL;
  std::uint64_t max_seen_ = 0;
};

}  // namespace prord::metrics
