// Streaming statistics used by the experiment harness.
#pragma once

#include <cstdint>
#include <limits>

#include "simcore/sim_time.h"

namespace prord::metrics {

/// Mean/variance/min/max over a stream of doubles (Welford's algorithm;
/// numerically stable, O(1) memory).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel-reduction friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or server load over simulated time.
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(sim::SimTime start = sim::kTimeZero)
      : last_change_(start), start_(start) {}

  /// Records that the signal changed to `value` at time `now` (now must be
  /// monotonically non-decreasing).
  void update(sim::SimTime now, double value) noexcept;

  /// Average over [start, now].
  double average(sim::SimTime now) const noexcept;

  double current() const noexcept { return value_; }

 private:
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  sim::SimTime last_change_;
  sim::SimTime start_;
};

}  // namespace prord::metrics
