#include "net/distributor.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

namespace prord::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::uint64_t kListenKey = 0;

std::string relay_headers(const HttpResponse& resp) {
  // Forward the worker's diagnostic headers; everything else (framing,
  // connection management) is re-written by the distributor.
  std::string extra;
  for (const auto& [k, v] : resp.headers)
    if (k.starts_with("X-")) extra += k + ": " + v + "\r\n";
  return extra;
}

}  // namespace

Distributor::Distributor(LiveRouter& router, const SiteStore& site,
                         std::vector<BackendWorker*> workers,
                         std::uint16_t port)
    : router_(router),
      site_(site),
      workers_(std::move(workers)),
      port_(port),
      next_client_key_(1 + workers_.size()) {}

Distributor::~Distributor() { stop(); }

bool Distributor::start() {
  if (started_) return true;
  if (!loop_.valid()) return false;

  upstreams_.clear();
  upstreams_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Upstream up;
    up.worker = static_cast<std::uint32_t>(i);
    up.fd = connect_loopback(workers_[i]->port());
    if (!up.fd || !set_nonblocking(up.fd.get())) return false;
    if (!loop_.add(up.fd.get(), EPOLLIN, 1 + i)) return false;
    upstreams_.push_back(std::move(up));
  }

  listen_ = listen_loopback(port_);
  if (!listen_ || !set_nonblocking(listen_.get())) return false;
  if (!loop_.add(listen_.get(), EPOLLIN, kListenKey)) return false;

  router_.start();  // schedules the policy's periodic belief work
  t0_ = std::chrono::steady_clock::now();
  started_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void Distributor::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  loop_.wake();
  if (thread_.joinable()) thread_.join();
  router_.finish();
  started_ = false;
}

void Distributor::run() {
  std::array<epoll_event, 128> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = loop_.wait(events, /*timeout_ms=*/100);
    if (n < 0) break;
    // Keep the belief clock moving even while idle, so periodic policy
    // work (PRORD replication rounds) fires on schedule.
    router_.advance_to(elapsed_us());
    for (int i = 0; i < n; ++i) {
      const auto& ev = events[static_cast<std::size_t>(i)];
      const std::uint64_t key = ev.data.u64;
      if (key == EpollLoop::kWakeKey) continue;
      if (key == kListenKey) {
        accept_clients();
        continue;
      }
      if (key >= 1 && key <= upstreams_.size()) {
        Upstream& up = upstreams_[key - 1];
        if (!up.fd.valid()) continue;
        if (ev.events & (EPOLLHUP | EPOLLERR)) {
          fail_upstream(up);
          continue;
        }
        if (ev.events & EPOLLIN) handle_upstream_readable(up);
        if (up.fd.valid() && (ev.events & EPOLLOUT) && !flush_upstream(up))
          fail_upstream(up);
        continue;
      }
      auto it = clients_.find(key);
      if (it == clients_.end()) continue;
      ClientConn& conn = it->second;
      bool dead = (ev.events & (EPOLLHUP | EPOLLERR)) != 0;
      if (!dead && (ev.events & EPOLLIN)) handle_client_readable(conn);
      if (!dead && (ev.events & (EPOLLIN | EPOLLOUT)))
        dead = !flush_client(conn);
      if (!dead && conn.parser.failed() && conn.out_off >= conn.out.size())
        dead = true;
      // A closing connection lingers until every routed request answered
      // and flushed (otherwise closed-loop clients would hang).
      if (!dead && conn.closing && conn.done.empty() &&
          conn.next_flush == conn.next_seq && conn.out_off >= conn.out.size())
        dead = true;
      if (dead) drop_client(key);
    }
  }
}

void Distributor::accept_clients() {
  while (true) {
    const int cfd = ::accept4(listen_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) break;
    set_nonblocking(cfd);
    set_nodelay(cfd);
    const std::uint64_t key = next_client_key_++;
    ClientConn conn;
    conn.fd = Fd(cfd);
    conn.key = key;
    conn.conn_id = next_conn_id_++;
    auto [it, ok] = clients_.emplace(key, std::move(conn));
    if (ok && !loop_.add(cfd, EPOLLIN, key)) clients_.erase(it);
  }
}

void Distributor::handle_client_readable(ClientConn& conn) {
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.parser.consume(
              std::string_view(buf, static_cast<std::size_t>(n)))) {
        counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        conn.closing = true;
      }
      while (auto req = conn.parser.pop()) handle_request(conn, *req);
      continue;
    }
    if (n == 0) {
      conn.closing = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.closing = true;
    return;
  }
}

void Distributor::handle_request(ClientConn& conn, const HttpRequest& req) {
  const std::uint64_t seq = conn.next_seq++;
  if (!req.keep_alive) conn.closing = true;

  if (req.target == "/metrics") {
    counters_.metrics_scrapes.fetch_add(1, std::memory_order_relaxed);
    const std::string body =
        metrics_fn_ ? metrics_fn_()
                    : "prord_live_requests_total " +
                          std::to_string(counters_.requests.load()) + "\n";
    local_reply(conn, seq, 200, "OK", body);
    return;
  }

  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const sim::SimTime now_us = elapsed_us();
  router_.advance_to(now_us);

  const trace::FileId file = site_.lookup(req.target);
  if (file == trace::kInvalidFile) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    local_reply(conn, seq, 404, "Not Found", "unknown url\n");
    return;
  }

  trace::Request r;
  r.at = now_us;
  r.client = conn.conn_id;
  r.conn = conn.conn_id;
  r.file = file;
  r.bytes = site_.size_bytes(file);
  r.is_embedded = SiteStore::is_embedded(req.target);
  r.is_dynamic = SiteStore::is_dynamic(req.target);
  r.starts_connection = (seq == 0);

  const core::RoutedRequest routed = router_.route(r);
  if (!routed.valid) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    local_reply(conn, seq, 503, "Service Unavailable", "no backend\n");
    return;
  }
  Upstream& up = upstreams_[routed.decision.server];
  if (!up.fd.valid()) {
    // Routed to a worker whose upstream link already died: undo the
    // connection stickiness and answer 502.
    router_.core().unstick(r.conn, routed.decision.server);
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    local_reply(conn, seq, 502, "Bad Gateway", "backend down\n");
    return;
  }
  up.pending.push_back(Pending{conn.key, seq, r});
  up.out += format_request(req.target,
                           "backend" + std::to_string(up.worker));
  router_.on_forwarded(r, routed.decision.server);
  if (!flush_upstream(up)) fail_upstream(up);
}

void Distributor::local_reply(ClientConn& conn, std::uint64_t seq, int status,
                              std::string_view reason, std::string_view body) {
  finish_response(conn, seq, format_response(status, reason, body));
}

void Distributor::finish_response(ClientConn& conn, std::uint64_t seq,
                                  std::string bytes) {
  conn.done.emplace(seq, std::move(bytes));
  pump_client(conn);
}

void Distributor::pump_client(ClientConn& conn) {
  while (!conn.done.empty() &&
         conn.done.begin()->first == conn.next_flush) {
    conn.out += conn.done.begin()->second;
    conn.done.erase(conn.done.begin());
    ++conn.next_flush;
  }
  flush_client(conn);
}

bool Distributor::flush_client(ClientConn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.mod(conn.fd.get(), EPOLLIN | EPOLLOUT, conn.key);
      }
      return true;
    }
    if (errno == EINTR) continue;
    return false;  // peer is gone; EPOLLHUP will reap the connection
  }
  if (conn.out_off == conn.out.size() && conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  if (conn.want_write) {
    conn.want_write = false;
    loop_.mod(conn.fd.get(), EPOLLIN, conn.key);
  }
  return true;
}

void Distributor::drop_client(std::uint64_t key) {
  auto it = clients_.find(key);
  if (it == clients_.end()) return;
  router_.forget_connection(it->second.conn_id);
  loop_.del(it->second.fd.get());
  clients_.erase(it);
}

void Distributor::handle_upstream_readable(Upstream& up) {
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(up.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (!up.parser.consume(
              std::string_view(buf, static_cast<std::size_t>(n)))) {
        fail_upstream(up);
        return;
      }
      while (auto resp = up.parser.pop()) {
        if (up.pending.empty()) {
          fail_upstream(up);  // response with no matching request
          return;
        }
        Pending p = std::move(up.pending.front());
        up.pending.pop_front();
        router_.advance_to(elapsed_us());
        router_.on_response(p.request, up.worker);
        counters_.responses.fetch_add(1, std::memory_order_relaxed);
        auto cit = clients_.find(p.client_key);
        if (cit == clients_.end()) continue;  // client left mid-flight
        finish_response(cit->second, p.seq,
                        format_response(resp->status, resp->reason,
                                        resp->body, relay_headers(*resp)));
      }
      continue;
    }
    if (n == 0) {
      fail_upstream(up);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail_upstream(up);
    return;
  }
}

bool Distributor::flush_upstream(Upstream& up) {
  while (up.out_off < up.out.size()) {
    const ssize_t n = ::send(up.fd.get(), up.out.data() + up.out_off,
                             up.out.size() - up.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      up.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!up.want_write) {
        up.want_write = true;
        loop_.mod(up.fd.get(), EPOLLIN | EPOLLOUT, 1 + up.worker);
      }
      return true;
    }
    if (errno == EINTR) continue;
    return false;
  }
  if (up.out_off == up.out.size() && up.out_off > 0) {
    up.out.clear();
    up.out_off = 0;
  }
  if (up.want_write) {
    up.want_write = false;
    loop_.mod(up.fd.get(), EPOLLIN, 1 + up.worker);
  }
  return true;
}

void Distributor::fail_upstream(Upstream& up) {
  if (!up.fd.valid()) return;
  // The worker link died: every in-flight request on it fails with 502,
  // the belief model marks the back-end down (policies route elsewhere),
  // and affected client connections are unstuck.
  router_.advance_to(elapsed_us());
  router_.cluster().backend(up.worker).set_marked_down(true);
  auto pending = std::move(up.pending);
  up.pending.clear();
  for (Pending& p : pending) {
    router_.on_failure(p.request, up.worker);
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    auto cit = clients_.find(p.client_key);
    if (cit == clients_.end()) continue;
    finish_response(cit->second, p.seq,
                    format_response(502, "Bad Gateway", "backend lost\n"));
  }
  loop_.del(up.fd.get());
  up.fd.reset();
  up.out.clear();
  up.out_off = 0;
}

}  // namespace prord::net
